#!/bin/sh
# serve_smoke.sh — build embedserver, start it on a random port, hit
# /healthz and one /v1/embed, then shut it down gracefully via SIGTERM.
# Backs the `make serve-smoke` target (part of `make check`).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'status=$?; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

"$GO" build -o "$tmp/embedserver" ./cmd/embedserver

"$tmp/embedserver" -addr 127.0.0.1:0 >"$tmp/log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^embedserver: listening on //p' "$tmp/log" | head -n 1)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died:"; cat "$tmp/log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "serve-smoke: server never bound:"; cat "$tmp/log"; exit 1; }

curl -fsS "http://$addr/healthz" >"$tmp/healthz.json"
grep -q '"ok"' "$tmp/healthz.json" || { echo "serve-smoke: bad healthz: $(cat "$tmp/healthz.json")"; exit 1; }

curl -fsS -X POST -d '{"shape":"5x6x7"}' "http://$addr/v1/embed" >"$tmp/embed.json"
grep -q '"Dilation": 2' "$tmp/embed.json" || { echo "serve-smoke: bad embed response: $(cat "$tmp/embed.json")"; exit 1; }

# A non-mesh guest family end-to-end: a cylinder with a power-of-two wrapped
# axis embeds Gray with dilation 1 and must echo its family.
curl -fsS -X POST -d '{"shape":"3x4x8","family":"cylinder"}' "http://$addr/v1/embed" >"$tmp/cyl.json"
grep -q '"family": "cylinder"' "$tmp/cyl.json" || { echo "serve-smoke: bad cylinder embed: $(cat "$tmp/cyl.json")"; exit 1; }
grep -q '"Dilation": 1' "$tmp/cyl.json" || { echo "serve-smoke: bad cylinder dilation: $(cat "$tmp/cyl.json")"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "serve-smoke: server exited non-zero:"; cat "$tmp/log"; exit 1; }
pid=""
echo "serve-smoke: ok ($addr)"
