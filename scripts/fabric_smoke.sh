#!/bin/sh
# fabric_smoke.sh — end-to-end check of the distributed sweep fabric: boot a
# coordinator and two worker embedservers sharing a fabric secret (one worker
# registers itself with -join/-advertise, the other through `embedctl peers
# join`), run a census job with -distributed so its chunks shard across the
# workers, SIGKILL one worker mid-run, and require the finished job's result
# stream to be byte-identical to a single-node (non-distributed) run of the
# same job on the same server.  Backs `make fabric-smoke` (part of
# `make check`).
set -eu

GO="${GO:-go}"
secret="fabric-smoke-secret"
tmp="$(mktemp -d)"
trap 'status=$?; for p in ${pids:-}; do kill "$p" 2>/dev/null; done; rm -rf "$tmp"; exit $status' EXIT INT TERM
pids=""

"$GO" build -o "$tmp/embedserver" ./cmd/embedserver
"$GO" build -o "$tmp/embedctl" ./cmd/embedctl

# wait_addr LOG PIDVAR: block until the server behind LOG prints its bound
# address, echoing it.
wait_addr() {
    log="$1"; spid="$2"
    i=0
    while [ $i -lt 100 ]; do
        a="$(sed -n 's/^embedserver: listening on //p' "$log" | head -n 1)"
        [ -n "$a" ] && { echo "$a"; return 0; }
        kill -0 "$spid" 2>/dev/null || { echo "fabric-smoke: server died:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
        i=$((i + 1))
    done
    echo "fabric-smoke: server never bound:" >&2; cat "$log" >&2
    return 1
}

# Coordinator: jobs enabled, fabric secret set (worker endpoints + pool),
# single-threaded chunks so the job is slow enough to kill a worker under.
"$tmp/embedserver" -addr 127.0.0.1:0 -no-log -data-dir "$tmp/data" \
    -fabric-secret "$secret" -checkpoint-every 2 -job-workers 1 >"$tmp/coord.log" 2>&1 &
coord_pid=$!
pids="$coord_pid"
coord="$(wait_addr "$tmp/coord.log" "$coord_pid")"

# Worker 1: registered through the CLI join subcommand.
"$tmp/embedserver" -addr 127.0.0.1:0 -no-log -fabric-secret "$secret" \
    -job-workers 1 >"$tmp/w1.log" 2>&1 &
w1_pid=$!
pids="$pids $w1_pid"
w1="$(wait_addr "$tmp/w1.log" "$w1_pid")"
"$tmp/embedctl" peers join -addr "http://$coord" -secret "$secret" "http://$w1" >/dev/null

# Worker 2: self-registration via -join/-advertise needs its port up front,
# so probe for a free one (bind failures just retry with another port).
w2_pid=""
i=0
while [ $i -lt 10 ]; do
    port=$((20000 + $(od -An -N2 -tu2 /dev/urandom | tr -d ' ') % 20000))
    "$tmp/embedserver" -addr "127.0.0.1:$port" -no-log -fabric-secret "$secret" \
        -job-workers 1 -join "http://$coord" -advertise "http://127.0.0.1:$port" \
        >"$tmp/w2.log" 2>&1 &
    w2_pid=$!
    if w2="$(wait_addr "$tmp/w2.log" "$w2_pid" 2>/dev/null)"; then
        pids="$pids $w2_pid"
        break
    fi
    wait "$w2_pid" 2>/dev/null || true
    w2_pid=""
    i=$((i + 1))
done
[ -n "$w2_pid" ] || { echo "fabric-smoke: could not bind worker 2"; exit 1; }

# Both workers must show up in the coordinator's peer listing ("local" is
# the coordinator's own loopback row).
i=0
while [ $i -lt 100 ]; do
    "$tmp/embedctl" peers -addr "http://$coord" >"$tmp/peers.txt" 2>/dev/null || true
    if grep -q "$w1" "$tmp/peers.txt" && grep -q "$w2" "$tmp/peers.txt"; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q "$w1" "$tmp/peers.txt" || { echo "fabric-smoke: worker 1 never joined:"; cat "$tmp/peers.txt"; exit 1; }
grep -q "$w2" "$tmp/peers.txt" || { echo "fabric-smoke: worker 2 never joined:"; cat "$tmp/peers.txt"; exit 1; }

# Distributed census across the two workers.
"$tmp/embedctl" job submit -addr "http://$coord" -kind census -max-n 8 -distributed >"$tmp/submit.json"
id="$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$tmp/submit.json" | head -n 1)"
[ -n "$id" ] || { echo "fabric-smoke: no job id in $(cat "$tmp/submit.json")"; exit 1; }

# Let a few chunks fold, then SIGKILL worker 1 mid-run: its in-flight chunks
# must requeue onto the survivor and fold exactly once.
i=0
while [ $i -lt 400 ]; do
    done_chunks="$("$tmp/embedctl" job status -addr "http://$coord" "$id" | sed -n 's/.*"chunks_done": \([0-9]*\).*/\1/p' | head -n 1)"
    [ "${done_chunks:-0}" -ge 4 ] 2>/dev/null && break
    sleep 0.05
    i=$((i + 1))
done
[ "${done_chunks:-0}" -ge 4 ] || { echo "fabric-smoke: job never progressed"; exit 1; }
kill -KILL "$w1_pid"
wait "$w1_pid" 2>/dev/null || true
pids="$coord_pid $w2_pid"

"$tmp/embedctl" job watch -addr "http://$coord" "$id" >"$tmp/final.json" 2>/dev/null
grep -q '"state": "done"' "$tmp/final.json" || { echo "fabric-smoke: distributed job did not finish after worker kill:"; cat "$tmp/final.json"; exit 1; }
"$tmp/embedctl" job results -addr "http://$coord" "$id" >"$tmp/distributed.ndjson"

# The stitched cross-node trace: one Chrome trace holding the coordinator's
# dispatch and fold spans plus every worker-side exec span the fabric
# carried home — including the chunks requeued off the killed worker, which
# re-executed on the survivor.  Every folded chunk must show all three.
"$tmp/embedctl" trace -job "$id" -addr "http://$coord" -o "$tmp/trace.json" >/dev/null
chunks="$(sed -n 's/.*"chunks_done": \([0-9]*\).*/\1/p' "$tmp/final.json" | head -n 1)"
for kind in dispatch exec fold; do
    n="$(grep -o "\"$kind chunk [0-9]*\"" "$tmp/trace.json" | sort -u | wc -l)"
    [ "$n" -eq "${chunks:-0}" ] || {
        echo "fabric-smoke: trace has $n distinct \"$kind chunk\" spans, want $chunks"
        exit 1
    }
done

# Reference: the same job, single-node, on the same coordinator.
"$tmp/embedctl" job submit -addr "http://$coord" -kind census -max-n 8 -watch >/dev/null 2>&1
ref_id="$("$tmp/embedctl" job list -addr "http://$coord" | awk '$2=="census" && $1!="'"$id"'" {print $1}' | head -n 1)"
[ -n "$ref_id" ] || { echo "fabric-smoke: reference job not found"; exit 1; }
"$tmp/embedctl" job results -addr "http://$coord" "$ref_id" >"$tmp/reference.ndjson"

cmp -s "$tmp/distributed.ndjson" "$tmp/reference.ndjson" || {
    echo "fabric-smoke: distributed result stream differs from the single-node run"
    exit 1
}
[ -s "$tmp/distributed.ndjson" ] || { echo "fabric-smoke: empty result stream"; exit 1; }

requeued="$( (curl -s "http://$coord/metrics" 2>/dev/null || true) \
    | sed -n 's/^embedserver_fabric_chunks_requeued_total \([0-9]*\).*/\1/p')"

kill -TERM "$coord_pid" "$w2_pid"
for p in $coord_pid $w2_pid; do
    wait "$p" || { echo "fabric-smoke: server $p exited non-zero"; exit 1; }
done
pids=""
echo "fabric-smoke: ok (worker killed mid-run, distributed byte-identical: $(wc -c <"$tmp/distributed.ndjson") bytes, requeued=${requeued:-?})"
