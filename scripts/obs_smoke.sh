#!/bin/sh
# obs_smoke.sh — end-to-end check of the observability surface: boot
# embedserver with the debug listener and JSON access log, ask /v1/embed and
# /v1/plan for their own traces, scrape /metrics for the runtime gauges and
# span counters, pull a pprof heap profile off the debug listener, and render
# a Chrome trace with embedctl.  Backs `make obs-smoke` (part of `make check`).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'status=$?; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

"$GO" build -o "$tmp/embedserver" ./cmd/embedserver
"$GO" build -o "$tmp/embedctl" ./cmd/embedctl

"$tmp/embedserver" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -log-format json >"$tmp/log" 2>"$tmp/accesslog" &
pid=$!

addr="" daddr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^embedserver: listening on //p' "$tmp/log" | head -n 1)"
    daddr="$(sed -n 's/^embedserver: debug listening on //p' "$tmp/log" | head -n 1)"
    [ -n "$addr" ] && [ -n "$daddr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: server died:"; cat "$tmp/log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] && [ -n "$daddr" ] || { echo "obs-smoke: server never bound both listeners:"; cat "$tmp/log"; exit 1; }

# A debug-traced embed must carry the span tree and strategy provenance.
curl -fsS -X POST -d '{"shape":"5x6x7"}' "http://$addr/v1/embed?debug=trace" >"$tmp/embed.json"
for want in '"request_id"' '"trace"' '"plan_trace"' '"compute"' '"cache-lookup"'; do
    grep -q "$want" "$tmp/embed.json" || { echo "obs-smoke: embed debug block missing $want:"; cat "$tmp/embed.json"; exit 1; }
done

# The plan provenance must show a chosen strategy (the header variant also works).
curl -fsS -X POST -H 'X-Debug-Trace: 1' -d '{"shape":"5x6x7"}' "http://$addr/v1/plan" >"$tmp/plan.json"
grep -q '"chosen"' "$tmp/plan.json" || { echo "obs-smoke: plan provenance has no chosen strategy:"; cat "$tmp/plan.json"; exit 1; }

# /metrics must expose the runtime gauges, span counters and build info.
curl -fsS "http://$addr/metrics" >"$tmp/metrics"
for want in go_goroutines go_heap_alloc_bytes go_gomaxprocs obs_spans_started_total embedserver_build_info; do
    grep -q "^$want" "$tmp/metrics" || { echo "obs-smoke: /metrics missing $want"; exit 1; }
done

# The debug listener serves pprof and expvar, and is NOT on the API listener.
curl -fsS "http://$daddr/debug/pprof/heap?debug=1" | grep -q 'heap profile' || { echo "obs-smoke: no pprof heap on debug listener"; exit 1; }
curl -fsS "http://$daddr/debug/vars" | grep -q '"memstats"' || { echo "obs-smoke: no expvar on debug listener"; exit 1; }
if curl -fsS "http://$addr/debug/pprof/heap?debug=1" >/dev/null 2>&1; then
    echo "obs-smoke: pprof leaked onto the API listener"; exit 1
fi

# The JSON access log must have recorded the traced requests.
grep -q '"endpoint":"embed"' "$tmp/accesslog" || { echo "obs-smoke: no access-log line for /v1/embed:"; cat "$tmp/accesslog"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "obs-smoke: server exited non-zero:"; cat "$tmp/log"; exit 1; }
pid=""

# embedctl trace must emit a Chrome trace-event document.
"$tmp/embedctl" trace -o "$tmp/trace.json" 5x6x7 >/dev/null
grep -q '"traceEvents"' "$tmp/trace.json" || { echo "obs-smoke: no traceEvents in embedctl trace output"; exit 1; }
grep -q '"ph": *"X"' "$tmp/trace.json" || { echo "obs-smoke: no complete events in trace"; exit 1; }

# embedctl explain must show the strategy provenance markers.
"$tmp/embedctl" explain 5x6x7 >"$tmp/explain.txt"
grep -q '^ *\* .*chosen' "$tmp/explain.txt" || { echo "obs-smoke: explain shows no chosen strategy:"; cat "$tmp/explain.txt"; exit 1; }

echo "obs-smoke: ok ($addr, debug $daddr)"
