#!/bin/sh
# artifact_smoke.sh — end-to-end check of the plan-artifact tier chain:
# build a small artifact with `embedctl artifact build`, inspect and verify
# it, boot embedserver -plan-artifact on it, and require /v1/plan to answer
# from the artifact / closed-form tiers (with the /metrics counters to
# prove it).  Backs the `make artifact-smoke` target (part of `make check`).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'status=$?; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

"$GO" build -o "$tmp/embedserver" ./cmd/embedserver
"$GO" build -o "$tmp/embedctl" ./cmd/embedctl

# Build a small mesh artifact (3-D, axes <= 12: 364 records), then inspect
# and verify every record against a fresh planner.
"$tmp/embedctl" artifact build -o "$tmp/plans.art" -dims 3 -max-axis 12 2>"$tmp/build.log" ||
    { echo "artifact-smoke: build failed:"; cat "$tmp/build.log"; exit 1; }

"$tmp/embedctl" artifact inspect "$tmp/plans.art" >"$tmp/inspect.txt"
grep -q 'family: *mesh' "$tmp/inspect.txt" || { echo "artifact-smoke: bad inspect:"; cat "$tmp/inspect.txt"; exit 1; }
grep -q 'complete: *true' "$tmp/inspect.txt" || { echo "artifact-smoke: artifact not complete:"; cat "$tmp/inspect.txt"; exit 1; }

"$tmp/embedctl" artifact verify -sample 0 "$tmp/plans.art" >"$tmp/verify.txt" ||
    { echo "artifact-smoke: verify failed:"; cat "$tmp/verify.txt"; exit 1; }
grep -q '^ok:' "$tmp/verify.txt" || { echo "artifact-smoke: bad verify output:"; cat "$tmp/verify.txt"; exit 1; }

# Serve it.
"$tmp/embedserver" -addr 127.0.0.1:0 -plan-artifact "$tmp/plans.art" >"$tmp/log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^embedserver: listening on //p' "$tmp/log" | head -n 1)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "artifact-smoke: server died:"; cat "$tmp/log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "artifact-smoke: server never bound:"; cat "$tmp/log"; exit 1; }
grep -q '^embedserver: plan artifact ' "$tmp/log" || { echo "artifact-smoke: artifact not announced:"; cat "$tmp/log"; exit 1; }

# 5x6x7 is in the artifact's domain and not closed-form (not Gray-minimal):
# it must be served from the artifact tier.
curl -fsS -X POST -d '{"shape":"5x6x7"}' "http://$addr/v1/plan" >"$tmp/plan1.json"
grep -q '"source": "artifact"' "$tmp/plan1.json" || { echo "artifact-smoke: expected artifact source: $(cat "$tmp/plan1.json")"; exit 1; }

# 4x8x16 is all powers of two: the closed-form classifier answers before the
# artifact is ever consulted.
curl -fsS -X POST -d '{"shape":"4x8x16"}' "http://$addr/v1/plan" >"$tmp/plan2.json"
grep -q '"source": "closed_form"' "$tmp/plan2.json" || { echo "artifact-smoke: expected closed_form source: $(cat "$tmp/plan2.json")"; exit 1; }

# 5x6x13 exceeds max-axis 12: out of the artifact's domain, L2 computes it.
curl -fsS -X POST -d '{"shape":"5x6x13"}' "http://$addr/v1/plan" >"$tmp/plan3.json"
grep -q '"source": "computed"' "$tmp/plan3.json" || { echo "artifact-smoke: expected computed source: $(cat "$tmp/plan3.json")"; exit 1; }

# Repeat of the first request: the L0 result cache answers.
curl -fsS -X POST -d '{"shape":"5x6x7"}' "http://$addr/v1/plan" >"$tmp/plan4.json"
grep -q '"source": "cache"' "$tmp/plan4.json" || { echo "artifact-smoke: expected cache source: $(cat "$tmp/plan4.json")"; exit 1; }

# The per-tier counters must agree with the four requests above.
curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
for want in \
    'embedserver_plan_tier_l0_total 1' \
    'embedserver_plan_tier_closed_form_total 1' \
    'embedserver_plan_tier_artifact_total 1' \
    'embedserver_plan_tier_compute_total 1' \
    'embedserver_plan_artifact_records 364'; do
    grep -q "^$want\$" "$tmp/metrics.txt" ||
        { echo "artifact-smoke: missing metric '$want':"; grep '^embedserver_plan_' "$tmp/metrics.txt"; exit 1; }
done

kill -TERM "$pid"
wait "$pid" || { echo "artifact-smoke: server exited non-zero:"; cat "$tmp/log"; exit 1; }
pid=""
echo "artifact-smoke: ok ($addr)"
