#!/bin/sh
# loadtest_smoke.sh — boot embedserver with jobs enabled, drive a short
# seeded loadtest mix against it (plan/embed/compare plus one batch job),
# and assert the harness reports a sane run: nonzero requests, zero
# errors, and benchjson-parseable output rows.  Backs `make loadtest-smoke`
# (part of `make check`).
#
# When BENCH=1, the raw go-test-style benchmark lines are echoed to stdout
# after the assertions pass, so `make bench-json` can splice loadtest rows
# into BENCH_PR9.json through cmd/benchjson.
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'status=$?; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

"$GO" build -o "$tmp/embedserver" ./cmd/embedserver
"$GO" build -o "$tmp/loadtest" ./cmd/loadtest

"$tmp/embedserver" -addr 127.0.0.1:0 -no-log -data-dir "$tmp/data" >"$tmp/log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^embedserver: listening on //p' "$tmp/log" | head -n 1)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "loadtest-smoke: server died:"; cat "$tmp/log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "loadtest-smoke: server never bound:"; cat "$tmp/log"; exit 1; }

# Short deterministic run: same seed, same op sequence every time.  The
# harness itself exits non-zero if any request errored.
"$tmp/loadtest" -addr "http://$addr" -seed 7 -c 4 -duration "${LOADTEST_DURATION:-2s}" \
    -jobs 1 -format bench >"$tmp/bench.txt" 2>"$tmp/summary.txt" \
    || { echo "loadtest-smoke: loadtest failed:"; cat "$tmp/summary.txt"; exit 1; }

# The mix must have exercised every op kind, including the job submission.
for kind in plan embed compare job_submit total; do
    grep -q "BenchmarkLoadtest/$kind" "$tmp/bench.txt" \
        || { echo "loadtest-smoke: no $kind rows in output:"; cat "$tmp/bench.txt"; exit 1; }
done
grep -q "0 errors (0.00%)" "$tmp/summary.txt" \
    || { echo "loadtest-smoke: errors reported: $(cat "$tmp/summary.txt")"; exit 1; }

# The rows must survive the benchjson pipeline BENCH_PR9.json uses.
"$GO" run ./cmd/benchjson <"$tmp/bench.txt" >"$tmp/bench.json"
grep -q '"name": "BenchmarkLoadtest/total"' "$tmp/bench.json" \
    || { echo "loadtest-smoke: benchjson dropped the total row:"; cat "$tmp/bench.json"; exit 1; }
grep -q '"req/s"' "$tmp/bench.json" \
    || { echo "loadtest-smoke: req/s extra missing:"; cat "$tmp/bench.json"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "loadtest-smoke: server exited non-zero:"; cat "$tmp/log"; exit 1; }
pid=""

[ "${BENCH:-0}" = "1" ] && cat "$tmp/bench.txt"
echo "loadtest-smoke: ok ($(sed -n 's/^loadtest: \([0-9]*\) requests.*/\1 requests/p' "$tmp/summary.txt"))" >&2
