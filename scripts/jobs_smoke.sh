#!/bin/sh
# jobs_smoke.sh — end-to-end check of the batch-job subsystem's crash
# resilience: boot embedserver with -data-dir, submit a census job through
# embedctl, kill the server with SIGKILL mid-run, restart it on the same
# data dir, let the job resume from its checkpoint, and verify the streamed
# result bytes are identical to an uninterrupted run of the same job.
#
# A live SSE subscriber (`embedctl job events`) watches the job across the
# kill: its connection dies with the server, it reconnects with
# Last-Event-ID after the restart, and the concatenation of everything it
# streamed must be byte-identical to the NDJSON results download — the
# offset-resume contract of GET /v1/jobs/{id}/events.
# Backs `make jobs-smoke` (part of `make check`).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
trap 'status=$?; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null; [ -n "${sse_pid:-}" ] && kill "$sse_pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

"$GO" build -o "$tmp/embedserver" ./cmd/embedserver
"$GO" build -o "$tmp/embedctl" ./cmd/embedctl

start_server() {
    # Frequent checkpoints so the SIGKILL lands between checkpoint and
    # completion; single-threaded chunks keep the job slow enough to kill.
    # An optional argument pins the listen address, so a restart is
    # reachable at the same port the SSE subscriber keeps retrying.
    "$tmp/embedserver" -addr "${1:-127.0.0.1:0}" -no-log -data-dir "$tmp/data" \
        -checkpoint-every 2 -job-workers 1 >"$tmp/log" 2>&1 &
    pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr="$(sed -n 's/^embedserver: listening on //p' "$tmp/log" | head -n 1)"
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "jobs-smoke: server died:"; cat "$tmp/log"; exit 1; }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$addr" ] || { echo "jobs-smoke: server never bound:"; cat "$tmp/log"; exit 1; }
}

start_server

# Submit a census that runs long enough to survive until the kill.
"$tmp/embedctl" job submit -addr "http://$addr" -kind census -max-n 8 >"$tmp/submit.json"
id="$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$tmp/submit.json" | head -n 1)"
[ -n "$id" ] || { echo "jobs-smoke: no job id in $(cat "$tmp/submit.json")"; exit 1; }

# Live SSE subscriber: streams result rows from offset 0, survives the
# SIGKILL below by reconnecting with Last-Event-ID once the server is back.
"$tmp/embedctl" job events -addr "http://$addr" "$id" >"$tmp/sse.ndjson" 2>/dev/null &
sse_pid=$!

# Wait for the first chunks to land, then SIGKILL — no drain, no checkpoint
# flush beyond what the periodic writer already committed.
i=0
while [ $i -lt 200 ]; do
    done_chunks="$("$tmp/embedctl" job status -addr "http://$addr" "$id" | sed -n 's/.*"chunks_done": \([0-9]*\).*/\1/p' | head -n 1)"
    [ "${done_chunks:-0}" -ge 4 ] 2>/dev/null && break
    sleep 0.05
    i=$((i + 1))
done
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""

state="$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' "$tmp/data/$id/job.json" | head -n 1)"
[ "$state" = "done" ] && { echo "jobs-smoke: job finished before the kill — nothing was resumed"; exit 1; }

# Restart on the same data dir and the same address: the job must resume
# and finish, and the SSE subscriber must find the server again.
mv "$tmp/log" "$tmp/log.1"
start_server "$addr"
"$tmp/embedctl" job watch -addr "http://$addr" "$id" >"$tmp/final.json" 2>/dev/null
grep -q '"state": "done"' "$tmp/final.json" || { echo "jobs-smoke: job did not finish after restart:"; cat "$tmp/final.json"; exit 1; }
grep -q '"resumed": [1-9]' "$tmp/final.json" || { echo "jobs-smoke: job did not report a resume:"; cat "$tmp/final.json"; exit 1; }
"$tmp/embedctl" job results -addr "http://$addr" "$id" >"$tmp/resumed.ndjson"

# Reference: the same job, uninterrupted, on the same server.
"$tmp/embedctl" job submit -addr "http://$addr" -kind census -max-n 8 -watch >/dev/null 2>&1
ref_id="$("$tmp/embedctl" job list -addr "http://$addr" | awk '$2=="census" && $1!="'"$id"'" {print $1}' | head -n 1)"
[ -n "$ref_id" ] || { echo "jobs-smoke: reference job not found"; exit 1; }
"$tmp/embedctl" job results -addr "http://$addr" "$ref_id" >"$tmp/reference.ndjson"

cmp -s "$tmp/resumed.ndjson" "$tmp/reference.ndjson" || {
    echo "jobs-smoke: resumed result stream differs from the uninterrupted run"
    exit 1
}
[ -s "$tmp/resumed.ndjson" ] || { echo "jobs-smoke: empty result stream"; exit 1; }

# The SSE subscriber saw the done event and exited; everything it streamed
# across the kill/reconnect must equal the results download byte-for-byte.
i=0
while kill -0 "$sse_pid" 2>/dev/null; do
    [ $i -lt 100 ] || { echo "jobs-smoke: SSE subscriber never finished"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
wait "$sse_pid" || { echo "jobs-smoke: SSE subscriber exited non-zero"; exit 1; }
sse_pid=""
cmp -s "$tmp/sse.ndjson" "$tmp/resumed.ndjson" || {
    echo "jobs-smoke: SSE stream (resumed across the kill) differs from the results download"
    exit 1
}

kill -TERM "$pid"
wait "$pid" || { echo "jobs-smoke: server exited non-zero:"; cat "$tmp/log"; exit 1; }
pid=""
echo "jobs-smoke: ok (killed mid-run, resumed byte-identical: $(wc -c <"$tmp/resumed.ndjson") bytes)"
