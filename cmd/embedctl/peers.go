package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/pkg/api"
	"repro/pkg/client"
)

// cmdPeers inspects and edits a running embedserver's fabric peer set:
//
//	embedctl peers [-addr URL]                          list peers
//	embedctl peers join [-addr URL] -secret S <peer>    register a peer
//
// Listing is public (the same operational surface as /metrics); joining
// routes compute to the new address and therefore needs the fabric secret.
func cmdPeers(args []string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if len(args) > 0 && args[0] == "join" {
		peersJoin(ctx, args[1:])
		return
	}
	fs := flag.NewFlagSet("peers", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		peersUsage()
	}
	resp, err := client.New(*addr).Peers(ctx)
	jobCheck(err)
	printPeers(resp.Peers)
}

func peersJoin(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("peers join", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "coordinator base URL")
	secret := fs.String("secret", "", "fabric shared secret (the coordinator's -fabric-secret)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		peersUsage()
	}
	resp, err := client.New(*addr, client.WithSecret(*secret)).JoinPeer(ctx, fs.Arg(0))
	jobCheck(err)
	printPeers(resp.Peers)
}

func printPeers(peers []api.PeerStatus) {
	fmt.Printf("%-28s %-5s %8s %10s %8s %6s  %s\n",
		"peer", "state", "inflight", "dispatched", "requeued", "failed", "last error")
	for _, p := range peers {
		fmt.Printf("%-28s %-5s %8d %10d %8d %6d  %s\n",
			p.Addr, p.State, p.InFlight, p.Dispatched, p.Requeued, p.Failed, p.LastError)
	}
}

func peersUsage() {
	fmt.Fprintf(os.Stderr, `usage:
  embedctl peers [-addr URL]                        list fabric peers
  embedctl peers join [-addr URL] -secret S <peer>  register a worker URL
`)
	os.Exit(2)
}
