package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
)

// cmdExplain prints the planner's strategy provenance for a shape: which
// pipeline ran, which strategies were tried, skipped (and why) or chosen,
// and the same recursively for every sub-shape the decomposition visited.
// This is the CLI face of Planner.PlanTraced / /v1/plan?debug=trace.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	build := fs.Bool("build", false, "also build, verify and measure the planned embedding")
	_ = fs.Parse(args)
	s := parseShape(fs.Args())

	pl := core.NewPlanner(core.DefaultOptions)
	p, pt, err := pl.PlanTraced(context.Background(), s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	fmt.Printf("shape:  %s (%d nodes)\n", s, s.Nodes())
	fmt.Printf("plan:   %s\n", p)
	fmt.Printf("method: %d\n\n", p.Method)
	printPlanTrace(os.Stdout, pt, "")
	if *build {
		e := p.Build()
		if err := e.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "embedctl: INVALID EMBEDDING:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", e.Measure())
	}
}

// printPlanTrace renders one provenance node and recurses into sub-shapes.
func printPlanTrace(w io.Writer, pt *core.PlanTrace, indent string) {
	if pt == nil {
		return
	}
	fmt.Fprintf(w, "%splan %s", indent, pt.Shape)
	if pt.Canonical != pt.Shape {
		fmt.Fprintf(w, " (canonical %s)", pt.Canonical)
	}
	fmt.Fprintf(w, ": pipeline=%s chosen=%s (%.3f ms)\n",
		pt.Pipeline, pt.Chosen, float64(pt.DurationNS)/1e6)
	for _, a := range pt.Attempts {
		marker := "-"
		switch a.Status {
		case "chosen":
			marker = "*"
		case "skipped":
			marker = "~"
		}
		fmt.Fprintf(w, "%s  %s %-11s %-8s", indent, marker, a.Strategy, a.Status)
		if a.Plan != "" {
			fmt.Fprintf(w, " plan=%s dil=%d", a.Plan, a.Dilation)
		}
		if a.Reason != "" {
			fmt.Fprintf(w, "  (%s)", a.Reason)
		}
		fmt.Fprintln(w)
	}
	for _, sub := range pt.Sub {
		printPlanTrace(w, sub, indent+"    ")
	}
}

// cmdTrace plans, builds, verifies and measures a shape under a span trace
// and writes the result as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "trace.json", "output file for the Chrome trace-event JSON")
	workers := fs.Int("workers", 0, "metrics-engine workers (<1: GOMAXPROCS)")
	_ = fs.Parse(args)
	s := parseShape(fs.Args())

	obs.SetEnabled(true)
	ctx, root := obs.StartRoot(context.Background(), "embedctl "+s.String())
	pl := core.NewPlanner(core.DefaultOptions)
	p, _, err := pl.PlanTraced(ctx, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	_, bspan := obs.Start(ctx, "build")
	e := p.Build()
	bspan.End()
	_, vspan := obs.Start(ctx, "verify")
	verr := e.Verify()
	vspan.End()
	if verr != nil {
		fmt.Fprintln(os.Stderr, "embedctl: INVALID EMBEDDING:", verr)
		os.Exit(1)
	}
	m := e.MeasureParallelCtx(ctx, *workers)
	root.End()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	if err := obs.WriteChromeTrace(f, root.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	fmt.Printf("plan: %s\n%s\n", p, m)
	fmt.Printf("trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *out)
}
