package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/pkg/client"
)

// cmdExplain prints the planner's strategy provenance for a shape: which
// pipeline ran, which strategies were tried, skipped (and why) or chosen,
// and the same recursively for every sub-shape the decomposition visited.
// This is the CLI face of Planner.PlanTraced / /v1/plan?debug=trace.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	build := fs.Bool("build", false, "also build, verify and measure the planned embedding")
	_ = fs.Parse(args)
	s := parseShape(fs.Args())

	pl := core.NewPlanner(core.DefaultOptions)
	p, pt, err := pl.PlanTraced(context.Background(), s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	fmt.Printf("shape:  %s (%d nodes)\n", s, s.Nodes())
	fmt.Printf("plan:   %s\n", p)
	fmt.Printf("method: %d\n\n", p.Method)
	printPlanTrace(os.Stdout, pt, "")
	if *build {
		e := p.Build()
		if err := e.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "embedctl: INVALID EMBEDDING:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", e.Measure())
	}
}

// printPlanTrace renders one provenance node and recurses into sub-shapes.
func printPlanTrace(w io.Writer, pt *core.PlanTrace, indent string) {
	if pt == nil {
		return
	}
	fmt.Fprintf(w, "%splan %s", indent, pt.Shape)
	if pt.Canonical != pt.Shape {
		fmt.Fprintf(w, " (canonical %s)", pt.Canonical)
	}
	fmt.Fprintf(w, ": pipeline=%s chosen=%s (%.3f ms)\n",
		pt.Pipeline, pt.Chosen, float64(pt.DurationNS)/1e6)
	for _, a := range pt.Attempts {
		marker := "-"
		switch a.Status {
		case "chosen":
			marker = "*"
		case "skipped":
			marker = "~"
		}
		fmt.Fprintf(w, "%s  %s %-11s %-8s", indent, marker, a.Strategy, a.Status)
		if a.Plan != "" {
			fmt.Fprintf(w, " plan=%s dil=%d", a.Plan, a.Dilation)
		}
		if a.Reason != "" {
			fmt.Fprintf(w, "  (%s)", a.Reason)
		}
		fmt.Fprintln(w)
	}
	for _, sub := range pt.Sub {
		printPlanTrace(w, sub, indent+"    ")
	}
}

// cmdTrace plans, builds, verifies and measures a shape under a span trace
// and writes the result as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.  With -job it instead fetches
// a finished job's stitched span tree from a running embedserver — for a
// distributed run, one trace covering coordinator dispatch/fold and every
// worker's chunk execution — and exports that.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "trace.json", "output file for the Chrome trace-event JSON")
	workers := fs.Int("workers", 0, "metrics-engine workers (<1: GOMAXPROCS)")
	job := fs.String("job", "", "export a finished job's trace from a server instead of tracing a local run")
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL (with -job)")
	_ = fs.Parse(args)
	if *job != "" {
		if fs.NArg() != 0 {
			usage()
		}
		traceJob(*addr, *job, *out)
		return
	}
	s := parseShape(fs.Args())

	obs.SetEnabled(true)
	ctx, root := obs.StartRoot(context.Background(), "embedctl "+s.String())
	pl := core.NewPlanner(core.DefaultOptions)
	p, _, err := pl.PlanTraced(ctx, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	_, bspan := obs.Start(ctx, "build")
	e := p.Build()
	bspan.End()
	_, vspan := obs.Start(ctx, "verify")
	verr := e.Verify()
	vspan.End()
	if verr != nil {
		fmt.Fprintln(os.Stderr, "embedctl: INVALID EMBEDDING:", verr)
		os.Exit(1)
	}
	m := e.MeasureParallelCtx(ctx, *workers)
	root.End()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	if err := obs.WriteChromeTrace(f, root.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	fmt.Printf("plan: %s\n%s\n", p, m)
	fmt.Printf("trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *out)
}

// traceJob fetches a job's stitched span tree over HTTP and exports it as
// Chrome trace-event JSON.
func traceJob(addr, id, out string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	raw, err := client.New(addr).JobTrace(ctx, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	var root obs.SpanJSON
	if err := json.Unmarshal(raw, &root); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl: decode trace:", err)
		os.Exit(1)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	if err := obs.WriteChromeTrace(f, &root); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	fmt.Printf("job %s: %d spans (trace %s)\n", id, root.Count(), root.TraceID)
	fmt.Printf("trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", out)
}
