package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/pkg/api"
	"repro/pkg/client"
)

// cmdArtifact builds, inspects and verifies plan-census artifacts — the
// mmap-able files embedserver -plan-artifact serves as its O(1) L1 plan
// tier:
//
//	embedctl artifact build -o plans.art -dims 3 -max-axis 64
//	embedctl artifact build -o plans.art -addr URL ...   # via a plancensus job
//	embedctl artifact inspect plans.art
//	embedctl artifact verify -sample 1000 plans.art
func cmdArtifact(args []string) {
	if len(args) < 1 {
		artifactUsage()
	}
	sub, rest := args[0], args[1:]
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch sub {
	case "build":
		artifactBuild(ctx, rest)
	case "inspect":
		artifactInspect(rest)
	case "verify":
		artifactVerify(rest)
	default:
		artifactUsage()
	}
}

func artifactUsage() {
	fmt.Fprintf(os.Stderr, `usage:
  embedctl artifact build   -o FILE [-family mesh|torus] [-dims K]
                            [-max-axis L] [-addr URL]
                            plan every canonical K-D shape with axes ≤ L and
                            write the plan-census artifact to FILE; with
                            -addr the census runs as a plancensus job on a
                            running embedserver and the artifact is
                            downloaded when done
  embedctl artifact inspect FILE
                            print the artifact header (family, domain,
                            record count, checksums, planner fingerprint)
  embedctl artifact verify  [-sample N] FILE
                            load FILE (checksum-gated) and re-plan N random
                            records (0: all) checking byte-identity
`)
	os.Exit(2)
}

func artifactBuild(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("artifact build", flag.ExitOnError)
	out := fs.String("o", "plans.art", "output artifact file")
	family := fs.String("family", "", "guest family: mesh (default) or torus")
	dims := fs.Int("dims", 3, "shape dimensionality")
	maxAxis := fs.Int("max-axis", 64, "axis bound")
	addr := fs.String("addr", "", "run as a plancensus job on this embedserver instead of locally")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		artifactUsage()
	}
	if *addr != "" {
		artifactBuildRemote(ctx, *addr, *out, *family, *dims, *maxAxis)
		return
	}
	desc, err := guest.ByName(*family)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(2)
	}
	fam := desc.Family
	if fam != guest.Mesh && fam != guest.Torus {
		fmt.Fprintln(os.Stderr, "embedctl: artifacts cover the rank-indexable families mesh and torus")
		os.Exit(2)
	}
	total := artifact.TotalRecords(*dims, *maxAxis)
	if total > artifact.MaxRecords {
		fmt.Fprintf(os.Stderr, "embedctl: dims=%d max-axis=%d spans %d records (cap %d)\n",
			*dims, *maxAxis, total, artifact.MaxRecords)
		os.Exit(2)
	}
	pl := core.NewPlanner(core.DefaultOptions)
	b, err := artifact.NewBuilder(*out, fam.String(), *dims, *maxAxis, pl.Fingerprint())
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	start := time.Now()
	var done uint64
	for c := 1; c <= *maxAxis; c++ {
		artifact.EachShapeWithMax(*dims, c, func(s mesh.Shape) {
			if err := b.Add(s, pl.PlanGuest(fam, s)); err != nil {
				fmt.Fprintln(os.Stderr, "embedctl:", err)
				os.Exit(1)
			}
			done++
		})
		fmt.Fprintf(os.Stderr, "\rmax axis %d/%d  %d/%d plans", c, *maxAxis, done, total)
	}
	hdr, err := b.Finalize()
	if err != nil {
		fmt.Fprintln(os.Stderr, "\nembedctl:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\rwrote %s: %d records, %d string bytes, crc %08x, %s\n",
		*out, hdr.RecordCount, hdr.StringBytes, hdr.CRC, time.Since(start).Round(time.Millisecond))
}

// artifactBuildRemote submits a plancensus job, watches it and downloads
// the artifact.
func artifactBuildRemote(ctx context.Context, addr, out, family string, dims, maxAxis int) {
	c := client.New(addr)
	st, err := c.SubmitJob(ctx, api.JobSubmitRequest{
		Kind:       api.JobPlanCensus,
		PlanCensus: &api.PlanCensusParams{Dims: dims, MaxAxis: maxAxis, Family: family},
	})
	jobCheck(err)
	fmt.Fprintf(os.Stderr, "submitted %s\n", st.ID)
	fin, err := c.WatchJob(ctx, st.ID, time.Second, watchLine)
	jobCheck(err)
	fmt.Fprintln(os.Stderr)
	if fin.State != api.JobDone {
		fmt.Fprintf(os.Stderr, "embedctl: job ended %s: %s\n", fin.State, fin.Error)
		os.Exit(1)
	}
	rc, err := c.JobArtifact(ctx, st.ID)
	jobCheck(err)
	defer rc.Close()
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	n, err := io.Copy(f, rc)
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "downloaded %s (%d bytes)\n", out, n)
}

// openArtifact loads an artifact or exits with the loader's complaint.
func openArtifact(path string) *artifact.Artifact {
	a, err := artifact.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	return a
}

func artifactInspect(args []string) {
	if len(args) != 1 {
		artifactUsage()
	}
	a := openArtifact(args[0])
	defer a.Close()
	hdr := a.Header()
	fi, _ := os.Stat(args[0])
	fmt.Printf("file:         %s (%d bytes)\n", args[0], fi.Size())
	fmt.Printf("family:       %s\n", hdr.Family)
	fmt.Printf("domain:       %d-D, axes 1..%d\n", hdr.Dims, hdr.MaxAxis)
	fmt.Printf("records:      %d (%d record bytes, %d string bytes)\n",
		hdr.RecordCount, hdr.RecordCount*artifact.RecordSize, hdr.StringBytes)
	fmt.Printf("body crc32:   %08x\n", hdr.CRC)
	fmt.Printf("fingerprint:  %016x", hdr.Fingerprint)
	if def := artifact.FingerprintHash(core.NewPlanner(core.DefaultOptions).Fingerprint()); def == hdr.Fingerprint {
		fmt.Printf(" (default planner options)")
	}
	fmt.Println()
	fmt.Printf("complete:     %v\n", hdr.Complete)
}

func artifactVerify(args []string) {
	fs := flag.NewFlagSet("artifact verify", flag.ExitOnError)
	sample := fs.Int("sample", 1000, "records to re-plan and compare (0: every record)")
	seed := fs.Int64("seed", 1, "sampling seed")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		artifactUsage()
	}
	a := openArtifact(fs.Arg(0))
	defer a.Close()
	hdr := a.Header()
	desc, err := guest.ByName(hdr.Family)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	pl := core.NewPlanner(core.DefaultOptions)
	if got := artifact.FingerprintHash(pl.Fingerprint()); got != hdr.Fingerprint {
		fmt.Fprintf(os.Stderr, "embedctl: fingerprint %016x does not match the default planner options (%016x); plans may legitimately differ\n",
			hdr.Fingerprint, got)
		os.Exit(1)
	}
	// Open already checksummed every byte; what remains is semantic: the
	// records must be the planner's own output.
	pick := func(uint64) bool { return true }
	if *sample > 0 && uint64(*sample) < hdr.RecordCount {
		frac := float64(*sample) / float64(hdr.RecordCount)
		rng := rand.New(rand.NewSource(*seed))
		pick = func(uint64) bool { return rng.Float64() < frac }
	}
	var checked, mismatched uint64
	for c := 1; c <= hdr.MaxAxis; c++ {
		artifact.EachShapeWithMax(hdr.Dims, c, func(s mesh.Shape) {
			if !pick(checked) {
				return
			}
			rec, ok, err := a.Lookup(s)
			if err != nil || !ok {
				fmt.Fprintf(os.Stderr, "embedctl: Lookup(%v): ok=%v err=%v\n", s, ok, err)
				os.Exit(1)
			}
			p := pl.PlanGuest(desc.Family, s)
			dil := p.Dilation
			if dil == core.DilationUnknown {
				dil = -1
			}
			if rec.Plan != p.String() || rec.Kind != p.Kind || rec.Method != p.Method ||
				rec.CubeDim != p.CubeDim || rec.Dilation != dil || rec.Minimal != p.Minimal() {
				mismatched++
				fmt.Fprintf(os.Stderr, "MISMATCH %v: artifact %+v, planner %v\n", s, rec, p)
			}
			checked++
		})
	}
	if mismatched > 0 {
		fmt.Fprintf(os.Stderr, "embedctl: %d of %d checked records mismatch\n", mismatched, checked)
		os.Exit(1)
	}
	fmt.Printf("ok: %d records checksummed, %d re-planned byte-identical\n", hdr.RecordCount, checked)
}
