package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/sweep"
)

// cmdSweep plans every canonical k-dimensional guest shape of the family
// within the axis and node bounds through one shared Planner, fanning the
// work across the sweep worker pool.  The enumeration order (and therefore
// the report) is deterministic for any worker count.
func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	dims := fs.Int("dims", 3, "mesh dimensionality")
	maxLen := fs.Int("max", 16, "maximum axis length")
	maxNodes := fs.Int("nodes", 4096, "skip shapes with more nodes")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	build := fs.Bool("build", false, "build + verify every embedding and measure real dilation")
	family := fs.String("family", "", "guest family: mesh (default), torus, cylinder or tree")
	_ = fs.Parse(args)
	fam := parseFamily(*family)
	if *dims < 1 || *maxLen < 1 {
		usage()
	}

	shapes := core.FamilyShapes(fam, *dims, *maxLen, *maxNodes)
	if len(shapes) == 0 {
		fmt.Println("no shapes in range")
		return
	}
	planner := core.NewPlanner(core.DefaultOptions)

	type row struct {
		dilation int  // guaranteed bound, or measured when -build
		minimal  bool // minimal cube reached
		measured bool
	}
	rows := sweep.Map(len(shapes), *workers, func(i int) row {
		p := planner.PlanGuest(fam, shapes[i])
		r := row{dilation: p.Dilation, minimal: p.Minimal()}
		if *build {
			e := p.Build()
			if err := e.Verify(); err != nil {
				panic(fmt.Sprintf("embedctl sweep: %s: %v", shapes[i], err))
			}
			r.dilation = e.Dilation()
			r.measured = true
		}
		return r
	})

	hist := map[int]int{}
	minimal, unknown := 0, 0
	for _, r := range rows {
		if r.minimal {
			minimal++
		}
		if r.dilation == core.DilationUnknown {
			unknown++
		} else {
			hist[r.dilation]++
		}
	}
	kind := "guaranteed dilation bound"
	if *build {
		kind = "measured dilation"
	}
	fmt.Printf("%d %s shapes (%d-D, axes ≤ %d, ≤ %d nodes), %s:\n",
		len(shapes), fam, *dims, *maxLen, *maxNodes, kind)
	for d := 0; d <= *maxLen**maxLen; d++ {
		if hist[d] > 0 {
			fmt.Printf("  dilation %d: %d\n", d, hist[d])
		}
	}
	if unknown > 0 {
		fmt.Printf("  no a-priori bound (snake): %d\n", unknown)
	}
	fmt.Printf("minimal cube: %d/%d\n", minimal, len(shapes))
	st := planner.CacheStats()
	fmt.Printf("plan cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Size)
}
