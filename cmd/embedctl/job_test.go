package main

import (
	"strings"
	"testing"
)

func TestDigestResultsOldAndNewSchema(t *testing.T) {
	// One pre-certificate (schema-1) plan row next to a schema-2 row with
	// the certificate columns: both must decode, and the digest must report
	// the certified subset separately.
	stream := `{"type":"plan","shape":"5x6x7","nodes":210,"cube_dim":8,"plan":"p","method":2,"dilation_bound":2,"minimal":true}
{"type":"plan","shape":"4x4x4","nodes":64,"cube_dim":6,"plan":"g","method":1,"dilation_bound":1,"minimal":true,"lower_bounds":{"dilation":1,"wirelength":144,"congestion":1},"gap_to_optimal":0,"optimal":true}
{"type":"summary","schema":2,"kind":"plansweep","chunks":2,"shapes":2,"minimal":2,"optimal":1}
`
	var out strings.Builder
	if err := digestResults(strings.NewReader(stream), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"plan               2",
		"summary            1",
		"plans: 2 minimal of 2; 1 certified, 1 provably dilation-optimal (100.0%)",
		`"optimal":1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("digest missing %q:\n%s", want, got)
		}
	}
}

func TestDigestResultsRejectsUnknownType(t *testing.T) {
	err := digestResults(strings.NewReader(`{"type":"nope"}`+"\n"), &strings.Builder{})
	if err == nil {
		t.Fatal("unknown record type not rejected")
	}
}
