package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/pkg/api"
	"repro/pkg/client"
)

// cmdBench is the load-generator mode: it drives a running embedserver's
// POST /v1/embed with a fixed shape set and reports client-side latency
// percentiles, separating the cold (first-request, cache-filling) cost from
// the warm cached-hit steady state.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	qps := fs.Float64("qps", 0, "request rate limit across all workers (0: unthrottled)")
	shapes := fs.String("shapes", "64x64x64", "comma-separated shapes to query round-robin")
	family := fs.String("family", "", "guest family: mesh (default), torus, cylinder or tree")
	mode := fs.String("mode", "", "embed mode: decomposition (default) or gray; \"torus\" is a deprecated alias for -family torus")
	conc := fs.Int("c", 8, "concurrent client workers")
	duration := fs.Duration("duration", 5*time.Second, "warm-phase length")
	jsonOut := fs.Bool("json", false, "emit a machine-readable summary on stdout (schema family of cmd/benchjson); human output moves to stderr")
	_ = fs.Parse(args)

	// With -json, stdout carries exactly one JSON document; progress lines
	// move to stderr so pipelines stay parseable.
	human := io.Writer(os.Stdout)
	if *jsonOut {
		human = os.Stderr
	}

	var shapeList []string
	for _, s := range strings.Split(*shapes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, err := mesh.ParseShape(s); err != nil {
			fmt.Fprintln(os.Stderr, "embedctl:", err)
			os.Exit(2)
		}
		shapeList = append(shapeList, s)
	}
	if len(shapeList) == 0 {
		fmt.Fprintln(os.Stderr, "embedctl: no shapes")
		os.Exit(2)
	}

	// Retries are disabled: a load generator must report the failure, not
	// smooth it into a longer latency sample.
	c := client.New(*addr,
		client.WithHTTPClient(&http.Client{Timeout: 2 * time.Minute}),
		client.WithRetries(0))
	var certTotal, certOptimal atomic.Uint64
	request := func(shape string) (time.Duration, error) {
		start := time.Now()
		resp, err := c.Embed(context.Background(), api.EmbedRequest{Shape: shape, Family: *family, Mode: *mode})
		if err != nil {
			return 0, err
		}
		if resp.Certificate != nil {
			certTotal.Add(1)
			if resp.Certificate.Optimal {
				certOptimal.Add(1)
			}
		}
		return time.Since(start), nil
	}

	// Tier and fabric counters before the run; deltas are reported at the
	// end so the server-side split (L0 / closed-form / artifact / compute)
	// and any distributed-chunk traffic are visible next to the client-side
	// latencies.  The process-local obs counters reset here for the same
	// reason: span counts in the summary are per-run deltas, not totals
	// accumulated across repeated bench invocations of one process.
	obs.ResetStats()
	tiersBefore := fetchTierCounters(c)
	fabricBefore := fetchFabricCounters(c)

	// Cold phase: one serial request per shape, before any caching.
	var cold []time.Duration
	for _, s := range shapeList {
		d, err := request(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "embedctl: cold %s: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Fprintf(human, "cold  %-16s %s\n", s, round(d))
		cold = append(cold, d)
	}

	// Warm phase: concurrent workers, optional shared rate limit.
	var tokens chan struct{}
	stop := make(chan struct{})
	if *qps > 0 {
		tokens = make(chan struct{})
		interval := time.Duration(float64(time.Second) / *qps)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					case <-stop:
						return
					}
				case <-stop:
					return
				}
			}
		}()
	}
	var (
		mu        sync.Mutex
		warm      []time.Duration
		errsCount int
	)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				d, err := request(shapeList[i%len(shapeList)])
				mu.Lock()
				if err != nil {
					errsCount++
				} else {
					warm = append(warm, d)
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(begin)

	if len(warm) == 0 {
		fmt.Fprintln(os.Stderr, "embedctl: no successful warm requests")
		os.Exit(1)
	}
	sort.Slice(warm, func(a, b int) bool { return warm[a] < warm[b] })
	sort.Slice(cold, func(a, b int) bool { return cold[a] < cold[b] })
	fmt.Fprintf(human, "warm  %d requests in %s (%.1f req/s), %d errors\n",
		len(warm), round(elapsed), float64(len(warm))/elapsed.Seconds(), errsCount)
	fmt.Fprintf(human, "cold  p50=%s\n", round(percentile(cold, 50)))
	fmt.Fprintf(human, "warm  p50=%s p95=%s p99=%s min=%s max=%s\n",
		round(percentile(warm, 50)), round(percentile(warm, 95)), round(percentile(warm, 99)),
		round(warm[0]), round(warm[len(warm)-1]))
	ratio := float64(percentile(cold, 50)) / float64(percentile(warm, 50))
	fmt.Fprintf(human, "cold p50 / warm p50 = %.1fx\n", ratio)
	if ct := certTotal.Load(); ct > 0 {
		co := certOptimal.Load()
		fmt.Fprintf(human, "certificates: %d served, %d optimal (%.1f%% optimal-hit rate)\n",
			ct, co, 100*float64(co)/float64(ct))
	}
	if tiersBefore != nil {
		if after := fetchTierCounters(c); after != nil {
			var parts []string
			for _, t := range tierNames {
				parts = append(parts, fmt.Sprintf("%s=%d", t, after[t]-tiersBefore[t]))
			}
			fmt.Fprintf(human, "plan tiers (server-side deltas): %s\n", strings.Join(parts, " "))
		}
	}
	if len(fabricBefore) > 0 {
		if after := fetchFabricCounters(c); len(after) > 0 {
			var parts []string
			for _, t := range fabricCounterNames {
				parts = append(parts, fmt.Sprintf("%s=%d", t, after[t]-fabricBefore[t]))
			}
			fmt.Fprintf(human, "fabric chunks (server-side deltas): %s\n", strings.Join(parts, " "))
		}
	}
	if *jsonOut {
		writeBenchJSON(cold, warm, elapsed, errsCount, *family, *mode, shapeList,
			certTotal.Load(), certOptimal.Load())
	}
}

// tierNames are the plan-tier counters of the server's /metrics, in
// hierarchy order.
var tierNames = []string{"l0", "closed_form", "artifact", "compute"}

// fetchTierCounters scrapes the embedserver_plan_tier_*_total counters.
// Any failure returns nil — the bench must not fail because a proxy strips
// /metrics.
func fetchTierCounters(c *client.Client) map[string]uint64 {
	text, err := c.RawMetrics(context.Background())
	if err != nil {
		return nil
	}
	out := make(map[string]uint64, len(tierNames))
	for _, line := range strings.Split(text, "\n") {
		for _, t := range tierNames {
			if v, ok := strings.CutPrefix(line, "embedserver_plan_tier_"+t+"_total "); ok {
				var f float64
				if _, err := fmt.Sscanf(v, "%g", &f); err == nil {
					out[t] = uint64(f)
				}
			}
		}
	}
	return out
}

// fabricCounterNames are the distributed-fabric chunk counters of the
// server's /metrics, in dispatch order.
var fabricCounterNames = []string{"dispatched", "requeued", "folded"}

// fetchFabricCounters scrapes the embedserver_fabric_chunks_*_total
// counters.  An empty map means the server has no fabric pool attached (the
// metric lines are absent); any scrape failure returns nil.
func fetchFabricCounters(c *client.Client) map[string]uint64 {
	text, err := c.RawMetrics(context.Background())
	if err != nil {
		return nil
	}
	out := make(map[string]uint64, len(fabricCounterNames))
	for _, line := range strings.Split(text, "\n") {
		for _, t := range fabricCounterNames {
			if v, ok := strings.CutPrefix(line, "embedserver_fabric_chunks_"+t+"_total "); ok {
				var f float64
				if _, err := fmt.Sscanf(v, "%g", &f); err == nil {
					out[t] = uint64(f)
				}
			}
		}
	}
	return out
}

// benchResult is one summary statistic in the record shape of cmd/benchjson,
// so downstream tooling can treat client-side latencies and go-test
// benchmarks uniformly.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// benchSummary is the -json document.
type benchSummary struct {
	Family     string   `json:"family,omitempty"`
	Mode       string   `json:"mode,omitempty"`
	Shapes     []string `json:"shapes"`
	Requests   int      `json:"requests"`
	Errors     int      `json:"errors"`
	ElapsedSec float64  `json:"elapsed_seconds"`
	ReqPerSec  float64  `json:"req_per_sec"`
	// Certificate hit rates across every response of the run (cold +
	// warm): how many carried a certificate and how many of those were
	// provably optimal on all three measures.
	CertServed  uint64        `json:"certificates_served"`
	CertOptimal uint64        `json:"certificates_optimal"`
	OptimalRate float64       `json:"optimal_rate"`
	Benchmarks  []benchResult `json:"benchmarks"`
	// Obs reports this process's tracer counters for the run — per-run
	// deltas thanks to the ResetStats at bench start, mirroring how the
	// server-side tier counters are reported as deltas.
	Obs benchObsStats `json:"obs"`
}

// benchObsStats is the per-run obs tracer delta.
type benchObsStats struct {
	Traces     uint64 `json:"traces"`
	Spans      uint64 `json:"spans"`
	OverheadNS int64  `json:"span_overhead_ns"`
}

func writeBenchJSON(cold, warm []time.Duration, elapsed time.Duration, errsCount int, family, mode string, shapes []string, certServed, certOptimal uint64) {
	stat := func(name string, iters int, d time.Duration) benchResult {
		return benchResult{Name: name, Iterations: int64(iters), NsPerOp: float64(d.Nanoseconds())}
	}
	st := obs.ReadStats()
	var rate float64
	if certServed > 0 {
		rate = float64(certOptimal) / float64(certServed)
	}
	sum := benchSummary{
		Family:      family,
		Mode:        mode,
		Shapes:      shapes,
		Requests:    len(warm),
		Errors:      errsCount,
		ElapsedSec:  elapsed.Seconds(),
		ReqPerSec:   float64(len(warm)) / elapsed.Seconds(),
		CertServed:  certServed,
		CertOptimal: certOptimal,
		OptimalRate: rate,
		Obs:         benchObsStats{Traces: st.Traces, Spans: st.Spans, OverheadNS: st.OverheadNS},
		Benchmarks: []benchResult{
			stat("cold/p50", len(cold), percentile(cold, 50)),
			stat("warm/p50", len(warm), percentile(warm, 50)),
			stat("warm/p95", len(warm), percentile(warm, 95)),
			stat("warm/p99", len(warm), percentile(warm, 99)),
			stat("warm/min", len(warm), warm[0]),
			stat("warm/max", len(warm), warm[len(warm)-1]),
		},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
