package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

// cmdJob drives the batch-job endpoints of a running embedserver through
// the pkg/client SDK:
//
//	embedctl job submit -kind census -max-n 9
//	embedctl job status <id>
//	embedctl job watch <id>            # live progress until terminal (SSE)
//	embedctl job results <id>          # stream NDJSON to stdout (resumable)
//	embedctl job events <id>           # live SSE rows to stdout (resumable)
//	embedctl job cancel <id>
//	embedctl job list
func cmdJob(args []string) {
	if len(args) < 1 {
		jobUsage()
	}
	sub, rest := args[0], args[1:]
	// Ctrl-C aborts the in-flight call cleanly; a job keeps running
	// server-side unless explicitly cancelled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch sub {
	case "submit":
		jobSubmit(ctx, rest)
	case "status":
		st, err := jobClient(rest, 1).c.Job(ctx, jobID(rest))
		jobCheck(err)
		printJSON(st)
	case "watch":
		jobWatch(ctx, rest)
	case "results":
		jobResults(ctx, rest)
	case "events":
		jobEvents(ctx, rest)
	case "cancel":
		st, err := jobClient(rest, 1).c.CancelJob(ctx, jobID(rest))
		jobCheck(err)
		printJSON(st)
	case "list":
		list, err := jobClient(rest, 0).c.Jobs(ctx)
		jobCheck(err)
		for _, st := range list {
			fmt.Printf("%-20s %-10s %-10s %6.1f%%  %s\n", st.ID, st.Kind, st.State,
				pct(st.Progress.ChunksDone, st.Progress.ChunksTotal), jobNote(st))
		}
	default:
		jobUsage()
	}
}

func jobUsage() {
	fmt.Fprintf(os.Stderr, `usage:
  embedctl job submit [-addr URL] -kind census|epsilon|plansweep|plancensus
                      [-max-n N] [-dims K] [-max-axis L] [-max-nodes M]
                      [-family F] [-workers W] [-distributed] [-watch]
  embedctl job status  [-addr URL] <id>
  embedctl job watch   [-addr URL] <id>
  embedctl job results [-addr URL] [-offset B] [-parse] <id>
  embedctl job events  [-addr URL] [-from B] <id>
  embedctl job cancel  [-addr URL] <id>
  embedctl job list    [-addr URL]
`)
	os.Exit(2)
}

// jobFlags is the flag set every job subcommand shares; positional args
// after the flags are the job ID (when the subcommand takes one).
type jobFlags struct {
	c    *client.Client
	fs   *flag.FlagSet
	args []string
}

func jobClient(args []string, positional int) *jobFlags {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	_ = fs.Parse(args)
	if fs.NArg() != positional {
		jobUsage()
	}
	return &jobFlags{c: client.New(*addr), fs: fs, args: fs.Args()}
}

func jobID(args []string) string {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	fs.String("addr", "", "")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		jobUsage()
	}
	return fs.Arg(0)
}

func jobCheck(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func pct(done, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(done) / float64(total)
}

func jobNote(st api.JobStatus) string {
	switch st.State {
	case api.JobFailed:
		return st.Error
	case api.JobRunning:
		if st.Progress.ETAMS > 0 {
			return fmt.Sprintf("%.0f shapes/s, ETA %s",
				st.Progress.ShapesPerSec, (time.Duration(st.Progress.ETAMS) * time.Millisecond).Round(time.Second))
		}
	}
	return ""
}

func jobSubmit(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("job submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	kind := fs.String("kind", "", "job kind: census, epsilon, plansweep or plancensus")
	maxN := fs.Int("max-n", 0, "census/epsilon domain exponent (axes range over 1..2^N)")
	dims := fs.Int("dims", 3, "plansweep/plancensus shape dimensionality")
	maxAxis := fs.Int("max-axis", 16, "plansweep/plancensus axis bound")
	maxNodes := fs.Int("max-nodes", 1<<12, "plansweep node bound")
	family := fs.String("family", "", "plansweep/plancensus guest family (default mesh)")
	workers := fs.Int("workers", 0, "per-chunk worker bound (0: server default)")
	distributed := fs.Bool("distributed", false, "shard chunks across the server's fabric peers (server must run with -fabric-secret)")
	watch := fs.Bool("watch", false, "watch progress until the job finishes")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		jobUsage()
	}
	req := api.JobSubmitRequest{Kind: api.JobKind(*kind), Workers: *workers, Distributed: *distributed}
	switch req.Kind {
	case api.JobCensus:
		req.Census = &api.CensusParams{MaxN: *maxN}
	case api.JobEpsilon:
		req.Epsilon = &api.EpsilonParams{MaxN: *maxN}
	case api.JobPlanSweep:
		req.PlanSweep = &api.PlanSweepParams{Dims: *dims, MaxAxis: *maxAxis, MaxNodes: *maxNodes, Family: *family}
	case api.JobPlanCensus:
		req.PlanCensus = &api.PlanCensusParams{Dims: *dims, MaxAxis: *maxAxis, Family: *family}
	default:
		jobUsage()
	}
	c := client.New(*addr)
	st, err := c.SubmitJob(ctx, req)
	jobCheck(err)
	if !*watch {
		printJSON(st)
		return
	}
	fmt.Fprintf(os.Stderr, "submitted %s\n", st.ID)
	fin, err := c.WatchJobLive(ctx, st.ID, time.Second, watchLine)
	jobCheck(err)
	fmt.Fprintln(os.Stderr)
	printJSON(fin)
}

// jobWatch renders live progress from the SSE event stream (falling back to
// polling inside WatchJobLive when the server predates /events).
func jobWatch(ctx context.Context, args []string) {
	jf := jobClient(args, 1)
	fin, err := jf.c.WatchJobLive(ctx, jf.args[0], time.Second, watchLine)
	jobCheck(err)
	fmt.Fprintln(os.Stderr)
	printJSON(fin)
	if fin.State != api.JobDone {
		os.Exit(1)
	}
}

// watchLine renders one carriage-returned progress line per poll.
func watchLine(st api.JobStatus) {
	fmt.Fprintf(os.Stderr, "\r%-10s %5.1f%%  %d/%d chunks  %d shapes  %s   ",
		st.State, pct(st.Progress.ChunksDone, st.Progress.ChunksTotal),
		st.Progress.ChunksDone, st.Progress.ChunksTotal, st.Progress.Shapes, jobNote(st))
}

func jobResults(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("job results", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	offset := fs.Int64("offset", 0, "resume the stream from this byte offset")
	parse := fs.Bool("parse", false, "decode every record instead of raw streaming; print a per-type digest (works on result files from any schema version)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		jobUsage()
	}
	c := client.New(*addr)
	rc, err := c.JobResults(ctx, fs.Arg(0), *offset)
	jobCheck(err)
	defer rc.Close()
	if !*parse {
		_, err = io.Copy(os.Stdout, rc)
		jobCheck(err)
		return
	}
	jobCheck(digestResults(rc, os.Stdout))
}

// digestResults decodes a result stream with client.DecodeRecords —
// schema-tolerantly, so files written before the certificate columns still
// parse — and prints a per-type digest: record counts, the plan-row
// optimality tally, and the summary line.
func digestResults(r io.Reader, w io.Writer) error {
	counts := make(map[string]int)
	var plans, minimal, certified, optimal int
	var summaries []*api.SummaryRecord
	err := client.DecodeRecords(r, func(rec any) error {
		switch rec := rec.(type) {
		case *api.CensusShardRecord:
			counts["census_shard"]++
		case *api.CensusRowRecord:
			counts["census_row"]++
		case *api.EpsilonRowRecord:
			counts["epsilon_row"]++
		case *api.PlanRecord:
			counts["plan"]++
			plans++
			if rec.Minimal {
				minimal++
			}
			if rec.LowerBounds != nil {
				certified++
				if rec.Optimal {
					optimal++
				}
			}
		case *api.PlanCensusChunkRecord:
			counts["plan_census_chunk"]++
		case *api.SummaryRecord:
			counts["summary"]++
			summaries = append(summaries, rec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, t := range []string{"census_shard", "census_row", "epsilon_row", "plan", "plan_census_chunk", "summary"} {
		if counts[t] > 0 {
			fmt.Fprintf(w, "%-18s %d\n", t, counts[t])
		}
	}
	if plans > 0 {
		fmt.Fprintf(w, "plans: %d minimal of %d", minimal, plans)
		if certified > 0 {
			fmt.Fprintf(w, "; %d certified, %d provably dilation-optimal (%.1f%%)",
				certified, optimal, 100*float64(optimal)/float64(certified))
		} else {
			fmt.Fprintf(w, "; no certificate columns (pre-schema-%d results file)", api.JobSchemaVersion)
		}
		fmt.Fprintln(w)
	}
	for _, s := range summaries {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", b)
	}
	return nil
}

// jobEvents follows the SSE event stream, writing row payloads to stdout as
// NDJSON (byte-identical to `job results` from the same offset) and progress
// lines to stderr.  If the server drops the stream mid-job — slow-client
// eviction, restart — it reconnects with the last row's id, so the stdout
// stream stays gapless and duplicate-free.
func jobEvents(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("job events", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	from := fs.Int64("from", 0, "resume the row stream from this byte offset")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		jobUsage()
	}
	c := client.New(*addr)
	id, offset := fs.Arg(0), *from
	for {
		s, err := c.JobEvents(ctx, id, offset, true)
		if err != nil {
			// A typed API rejection (not_found, bad offset) is final; a
			// transport failure means the server is down or restarting —
			// keep trying, the stream resumes from offset once it's back.
			var apiErr *api.Error
			if errors.As(err, &apiErr) || ctx.Err() != nil {
				jobCheck(err) // prints and exits
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		done := false
		for !done {
			ev, nerr := s.Next()
			if nerr != nil {
				break
			}
			switch ev.Type {
			case "row":
				os.Stdout.Write(ev.Data)
				os.Stdout.Write([]byte{'\n'})
			case "progress":
				var st api.JobStatus
				if json.Unmarshal(ev.Data, &st) == nil {
					watchLine(st)
				}
			case "done":
				done = true
			}
		}
		offset = s.LastRowID()
		s.Close()
		if done {
			fmt.Fprintln(os.Stderr)
			return
		}
		if ctx.Err() != nil {
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond) // dropped; reconnect from offset
	}
}
