// Command embedctl plans, builds, verifies and prints mesh-in-cube
// embeddings from the command line.
//
// Usage:
//
//	embedctl plan 5x6x7              # show the decomposition plan
//	embedctl plan -family torus 6x10 # plan a non-mesh guest family
//	embedctl embed 5x6x7             # print metrics and the node map
//	embedctl embed -torus 6x10       # wraparound mesh (= -family torus)
//	embedctl embed -family tree 127  # complete binary tree guest
//	embedctl embed -gray 5x6x7       # Gray-code baseline
//	embedctl embed -o map.txt 5x6x7  # save the embedding to a file
//	embedctl verify map.txt          # reload and verify a saved embedding
//	embedctl manyone -cube 5 19x19   # many-to-one per Corollary 5
//	embedctl compare 12x20           # decomposition vs Gray vs reshaping
//	embedctl sweep -dims 3 -max 16   # plan every sorted shape in a range
//	embedctl artifact build -o p.art # precompute a plan-census artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/manyone"
	"repro/internal/mesh"
	"repro/internal/reshape"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  embedctl plan [-family F] <shape>     show the decomposition plan
  embedctl embed [-family F|-gray|-torus] [-map] <shape>
                                        build, verify and measure; F is the
                                        guest family (mesh, torus, cylinder,
                                        tree; -torus = -family torus)
  embedctl verify <file>                reload and verify a saved embedding
  embedctl manyone -cube <n> <shape>    many-to-one embedding (Corollary 5)
  embedctl compare <l1>x<l2>            reshaping-vs-decomposition table
  embedctl sweep [-family F] [-dims k] [-max L] [-nodes N] [-workers W]
                 [-build]
                                        plan every sorted k-D shape with axes
                                        ≤ L and ≤ N nodes through one shared
                                        Planner; report dilation histogram
                                        and cache statistics
  embedctl bench [-addr URL] [-qps Q] [-shapes S1,S2] [-c N] [-duration D]
                 [-json]                load-generate against a running
                                        embedserver; report cold latency and
                                        warm p50/p95/p99 (-json: machine-
                                        readable, schema of cmd/benchjson)
  embedctl job submit|status|watch|results|events|cancel|list
                                        drive batch-sweep jobs on a running
                                        embedserver; watch/events stream live
                                        SSE progress and result rows (run
                                        "embedctl job" for the full flag list)
  embedctl peers [join]                 list a running embedserver's fabric
                                        peers, or register a worker with a
                                        coordinator (run "embedctl peers -h"
                                        for flags)
  embedctl artifact build|inspect|verify
                                        build, inspect and verify the
                                        plan-census artifacts served by
                                        embedserver -plan-artifact (run
                                        "embedctl artifact" for flags)
  embedctl explain [-build] <shape>     show the planner's strategy
                                        provenance: every strategy tried,
                                        skipped (with the gate reason) or
                                        chosen, per sub-shape
  embedctl trace [-o trace.json] <shape>
                                        plan+build+measure under a span
                                        trace; write Chrome trace-event JSON
                                        for chrome://tracing / Perfetto
  embedctl trace -job <id> [-addr URL] [-o trace.json]
                                        export a finished job's stitched
                                        trace (distributed: coordinator +
                                        every worker) from a server
shapes look like 5x6x7
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "plan":
		cmdPlan(args)
	case "embed":
		cmdEmbed(args)
	case "verify":
		cmdVerify(args)
	case "manyone":
		cmdManyOne(args)
	case "compare":
		cmdCompare(args)
	case "sweep":
		cmdSweep(args)
	case "bench":
		cmdBench(args)
	case "job":
		cmdJob(args)
	case "peers":
		cmdPeers(args)
	case "artifact":
		cmdArtifact(args)
	case "explain":
		cmdExplain(args)
	case "trace":
		cmdTrace(args)
	default:
		usage()
	}
}

func parseShape(args []string) mesh.Shape {
	if len(args) != 1 {
		usage()
	}
	s, err := mesh.ParseShape(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(2)
	}
	return s
}

// parseFamily resolves a -family flag value ("" means mesh).
func parseFamily(name string) guest.Family {
	d, err := guest.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(2)
	}
	return d.Family
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	family := fs.String("family", "", "guest family: mesh (default), torus, cylinder or tree")
	_ = fs.Parse(args)
	fam := parseFamily(*family)
	s := parseShape(fs.Args())
	p, err := core.PlanGuest(fam, s, core.DefaultOptions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(2)
	}
	fmt.Printf("shape:        %s (%d nodes, family %s)\n", s, s.Nodes(), fam)
	fmt.Printf("minimal cube: %d dimensions (%d nodes)\n", s.MinCubeDim(), 1<<uint(s.MinCubeDim()))
	fmt.Printf("plan:         %s\n", p)
	fmt.Printf("paper method: %d\n", p.Method)
	if p.Dilation == core.DilationUnknown {
		fmt.Printf("dilation:     no a-priori bound (snake fallback; build to measure)\n")
	} else {
		fmt.Printf("dilation:     ≤ %d guaranteed by construction\n", p.Dilation)
	}
	b, gap, opt := core.PlanCertificate(fam, s, p)
	fmt.Printf("lower bounds: dilation ≥ %d, wirelength ≥ %d, congestion ≥ %d (in a %d-cube)\n",
		b.Dilation, b.Wirelength, b.Congestion, p.CubeDim)
	switch {
	case opt:
		fmt.Printf("certificate:  dilation-optimal (gap 0: the bound meets the floor)\n")
	case gap < 0:
		fmt.Printf("certificate:  dilation gap unknown (no a-priori bound; embed to measure)\n")
	default:
		fmt.Printf("certificate:  dilation gap ≤ %d over the floor\n", gap)
	}
}

func cmdEmbed(args []string) {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	gray := fs.Bool("gray", false, "use the Gray-code baseline instead of decomposition")
	torus := fs.Bool("torus", false, "treat the shape as a wraparound mesh (= -family torus)")
	family := fs.String("family", "", "guest family: mesh (default), torus, cylinder or tree")
	dumpMap := fs.Bool("map", false, "print the full node map")
	outFile := fs.String("o", "", "write the embedding to this file")
	_ = fs.Parse(args)
	fam := parseFamily(*family)
	if *torus {
		if *family != "" && fam != guest.Torus {
			fmt.Fprintln(os.Stderr, "embedctl: -torus conflicts with -family", *family)
			os.Exit(2)
		}
		fam = guest.Torus
	}
	s := parseShape(fs.Args())

	var e *embed.Embedding
	if *gray {
		if fam != guest.Mesh {
			fmt.Fprintln(os.Stderr, "embedctl: -gray applies to the mesh family only")
			os.Exit(2)
		}
		e = embed.Gray(s)
	} else {
		p, err := core.PlanGuest(fam, s, core.DefaultOptions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embedctl:", err)
			os.Exit(2)
		}
		fmt.Printf("plan: %s\n", p)
		e = p.Build()
	}
	if err := e.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl: INVALID EMBEDDING:", err)
		os.Exit(1)
	}
	m := e.Measure()
	fmt.Println(m)
	printMeasuredCertificate(fam, s, m)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embedctl:", err)
			os.Exit(1)
		}
		if _, err := e.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "embedctl:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "embedctl:", err)
			os.Exit(1)
		}
		fmt.Printf("written to %s\n", *outFile)
	}
	if *dumpMap {
		coord := make([]int, s.Dims())
		for idx, h := range e.Map {
			s.CoordInto(idx, coord)
			fmt.Printf("%v -> %0*b\n", coord, e.N, h)
		}
	}
}

func cmdVerify(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl:", err)
		os.Exit(1)
	}
	defer f.Close()
	e, err := embed.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedctl: INVALID:", err)
		os.Exit(1)
	}
	oneToOne := e.LoadFactor() == 1
	if oneToOne {
		if err := e.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "embedctl: INVALID:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("valid (one-to-one: %v)\n%s\n", oneToOne, e.Measure())
}

func cmdManyOne(args []string) {
	fs := flag.NewFlagSet("manyone", flag.ExitOnError)
	n := fs.Int("cube", 0, "target cube dimension")
	_ = fs.Parse(args)
	s := parseShape(fs.Args())
	e, plan, ok := manyone.Corollary5(s, *n)
	if !ok {
		fmt.Fprintf(os.Stderr, "embedctl: no Corollary-5 cover for %s into a %d-cube\n", s, *n)
		os.Exit(1)
	}
	if err := e.VerifyManyToOne(); err != nil {
		fmt.Fprintln(os.Stderr, "embedctl: INVALID EMBEDDING:", err)
		os.Exit(1)
	}
	fmt.Printf("cover: loads %v, powers %v\n", plan.Loads, plan.Pows)
	fmt.Printf("%s (optimal load %d)\n", e.Measure(), manyone.OptimalLoad(s, *n))
}

func cmdCompare(args []string) {
	s := parseShape(args)
	if s.Dims() != 2 {
		fmt.Fprintln(os.Stderr, "embedctl: compare needs a two-dimensional shape")
		os.Exit(2)
	}
	rows := reshape.Compare(s)
	fmt.Printf("%-14s %4s %9s %8s %6s %6s %8s\n", "technique", "dil", "avgdil", "wl", "cong", "cube", "minimal")
	for _, row := range rows {
		fmt.Printf("%-14s %4d %9.4f %8d %6d %6d %8v\n",
			row.Technique, row.Dilation, row.AvgDilation, row.Wirelength, row.Congestion, row.CubeDim, row.Minimal)
	}

	// Certify the comparison as a whole at the minimal cube: the best any
	// minimal-cube technique achieved on each measure, against the floors
	// of internal/bounds.  The snake rewrap always reaches the minimal
	// cube, so at least one row qualifies.
	nmin := s.MinCubeDim()
	bestDil, bestCong := -1, -1
	var bestWL int64 = -1
	for _, row := range rows {
		if row.CubeDim != nmin {
			continue
		}
		if bestDil < 0 {
			bestDil, bestWL, bestCong = row.Dilation, row.Wirelength, row.Congestion
			continue
		}
		bestDil = min(bestDil, row.Dilation)
		bestWL = min(bestWL, row.Wirelength)
		bestCong = min(bestCong, row.Congestion)
	}
	if bestDil < 0 {
		return
	}
	b := bounds.For(guest.Mesh, s, nmin)
	fmt.Printf("lower bounds (in the minimal %d-cube): dilation ≥ %d, wirelength ≥ %d, congestion ≥ %d\n",
		nmin, b.Dilation, b.Wirelength, b.Congestion)
	gap := int64(bestDil-b.Dilation) + (bestWL - b.Wirelength) + int64(bestCong-b.Congestion)
	if gap == 0 {
		fmt.Printf("certificate: best minimal-cube technique is optimal on all three measures\n")
	} else {
		fmt.Printf("certificate: gap_to_optimal=%d (dilation +%d, wirelength +%d, congestion +%d)\n",
			gap, bestDil-b.Dilation, bestWL-b.Wirelength, bestCong-b.Congestion)
	}
}

// printMeasuredCertificate prints the optimality certificate for fully
// measured metrics: every gap is evaluable against the floors of
// internal/bounds at the embedding's cube.
func printMeasuredCertificate(fam guest.Family, s mesh.Shape, m embed.Metrics) {
	b := bounds.For(fam, s, m.CubeDim)
	fmt.Printf("lower bounds: dilation ≥ %d, wirelength ≥ %d, congestion ≥ %d (in a %d-cube)\n",
		b.Dilation, b.Wirelength, b.Congestion, m.CubeDim)
	gap := int64(m.Dilation-b.Dilation) + (m.Wirelength - b.Wirelength) + int64(m.Congestion-b.Congestion)
	if gap == 0 {
		fmt.Printf("certificate:  optimal (dilation, wirelength and congestion all meet their floors)\n")
	} else {
		fmt.Printf("certificate:  gap_to_optimal=%d (dilation +%d, wirelength +%d, congestion +%d)\n",
			gap, m.Dilation-b.Dilation, m.Wirelength-b.Wirelength, m.Congestion-b.Congestion)
	}
}
