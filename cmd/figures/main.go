// Command figures regenerates every table and figure of the paper as text.
//
// Usage:
//
//	figures                 # everything
//	figures -only fig1      # one artifact: fig1, fig2, exceptions,
//	                        # twodim, examples, wrap, manyone, avgdil,
//	                        # reshape, simnet, highdim
//	figures -n 7            # smaller Figure 2 domain (default 9)
//	figures -workers 4      # sweep worker pool size (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/manyone"
	"repro/internal/mesh"
	"repro/internal/reshape"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wrap"
)

func main() {
	only := flag.String("only", "", "emit a single artifact (fig1, fig2, exceptions, twodim, examples, wrap, manyone, avgdil, reshape, simnet, highdim)")
	maxN := flag.Int("n", 9, "Figure 2 domain exponent (1..2^n per axis)")
	samples := flag.Int("samples", 1_000_000, "Monte-Carlo samples for Figure 1")
	flag.IntVar(&workers, "workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	artifacts := []struct {
		name string
		fn   func(n, samples int)
	}{
		{"fig1", figure1},
		{"fig2", figure2},
		{"exceptions", exceptions},
		{"twodim", twoDim},
		{"examples", examples},
		{"wrap", wraparound},
		{"manyone", manyOne},
		{"avgdil", avgDilation},
		{"reshape", reshapeAblation},
		{"simnet", simnetExperiment},
		{"highdim", higherDim},
	}
	ran := false
	for _, a := range artifacts {
		if *only == "" || *only == a.name {
			a.fn(*maxN, *samples)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown artifact %q\n", *only)
		os.Exit(2)
	}
}

// workers sizes the worker pool for the enumeration sweeps; results are
// deterministic for any value (see internal/sweep).
var workers int

func header(title string) {
	fmt.Printf("\n===== %s =====\n", title)
}

func figure1(_, samples int) {
	header("Figure 1: asymptotic fraction of k-D meshes with minimal-expansion Gray embedding")
	rows := stats.Figure1(10, samples, 20260706)
	fmt.Print(stats.FormatFigure1(rows))
	fmt.Printf("paper quotes f2 ≈ 0.61, f3 ≈ 0.27\n")
	fmt.Printf("exact finite-domain (k=2, 1..1024): %.4f\n", stats.ExactGrayFraction(2, 10))
	fmt.Printf("exact finite-domain (k=3, 1..512): %.4f (matches Figure 2's S1 at n=9)\n",
		stats.ExactGrayFraction(3, 9))
}

func figure2(maxN, _ int) {
	header(fmt.Sprintf("Figure 2: cumulative %% of 3-D meshes (1..2^n per axis) at relative expansion 1"))
	rows := stats.Figure2Parallel(maxN, workers)
	fmt.Print(stats.FormatFigure2(rows))
	if maxN == 9 {
		last := rows[len(rows)-1]
		fmt.Printf("paper's sequence at n=9: 28.5%%, 81.5%%, 82.9%%, 96.1%% — measured %.1f / %.1f / %.1f / %.1f\n",
			last.S[0], last.S[1], last.S[2], last.S[3])
	}
}

func exceptions(_, _ int) {
	header("§5 exceptional meshes (no minimal-expansion dilation-2 method applies)")
	for _, limit := range []int{128, 256} {
		ex := stats.ExceptionsParallel(limit, workers)
		names := make([]string, len(ex))
		for i, e := range ex {
			names[i] = fmt.Sprintf("%dx%dx%d", e.L1, e.L2, e.L3)
		}
		fmt.Printf("≤ %3d nodes: %s\n", limit, strings.Join(names, ", "))
	}
	fmt.Println("paper: ≤128 only 5x5x5; ≤256 adds 5x7x7, 3x9x9, 5x5x10, 3x5x17")
}

func twoDim(_, _ int) {
	header("§3.3: all 2-D meshes ≤ 64 nodes, constructive dilation/congestion")
	var over []string
	count := 0
	for a := 1; a <= 64; a++ {
		for b := a; a*b <= 64; b++ {
			s := mesh.Shape{a, b}
			e := core.PlanShape(s, core.DefaultOptions).Build()
			if err := e.Verify(); err != nil {
				panic(err)
			}
			count++
			if e.Dilation() > 2 {
				over = append(over, fmt.Sprintf("%s (dil %d)", s, e.Dilation()))
			}
		}
	}
	if len(over) == 0 {
		fmt.Printf("%d shapes built; ALL have dilation ≤ 2\n", count)
	} else {
		fmt.Printf("%d shapes built; dilation > 2 only for: %s\n", count, strings.Join(over, ", "))
	}
	fmt.Println("paper: all except 3x21; axis folding (3x21 ⊂ 3x3x7) removes the paper's exception")
}

func examples(_, _ int) {
	header("§4.2/§5 worked examples: plans and measured metrics")
	for _, str := range []string{
		"12x20", "3x25x3", "3x3x23", "5x6x7", "21x9x5", "5x10x11", "6x11x7",
		"12x16x20x32",
	} {
		s := mesh.MustParse(str)
		p := core.PlanShape(s, core.DefaultOptions)
		e := p.Build()
		if err := e.Verify(); err != nil {
			panic(err)
		}
		fmt.Printf("%-12s method %d  plan %-46s  %s\n", str, p.Method, p, e.Measure())
	}
}

func wraparound(_, _ int) {
	header("§6 / Corollary 3: two-dimensional wraparound meshes")
	var quarterOK, halvingOK, evenOK, total int
	for a := 1; a <= 64; a++ {
		for b := a; b <= 64; b++ {
			total++
			s := mesh.Shape{a, b}
			if wrap.QuarteringMinimal(s) {
				quarterOK++
			}
			if wrap.HalvingMinimal(s) {
				halvingOK++
			}
			if wrap.AllEven(s) {
				evenOK++
			}
		}
	}
	fmt.Printf("of %d sorted 2-D torus shapes ≤ 64x64: quartering-minimal %d, halving-minimal %d, all-even %d\n",
		total, quarterOK, halvingOK, evenOK)
	fmt.Println("\nconstructive samples (dilation bound per Corollary 3):")
	for _, str := range []string{"6x10", "12x11", "5x7", "12x20", "9x9", "17x3"} {
		s := mesh.MustParse(str)
		e := wrap.Embed(s, core.DefaultOptions)
		if err := e.Verify(); err != nil {
			panic(err)
		}
		fmt.Printf("  torus %-7s %s\n", str, e.Measure())
	}
}

func manyOne(_, _ int) {
	header("§7 many-to-one: the 19x19 example and Corollary 4 congestion")
	e, plan, ok := manyone.Corollary5(mesh.Shape{19, 19}, 5)
	if !ok {
		panic("19x19 cover not found")
	}
	fmt.Printf("19x19 -> 5-cube: load %d (paper: 15), optimal %d (paper: 12), dilation %d, cover %vx2^%v\n",
		e.LoadFactor(), manyone.OptimalLoad(mesh.Shape{19, 19}, 5), e.Dilation(), plan.Loads, plan.Pows)
	g := manyone.GrayContracted(mesh.Shape{3, 5}, []int{3, 2})
	fmt.Printf("24x20 -> 5-cube (Corollary 4): load %d, dilation %d, congestion %d (bound (3·5)/3 = 5)\n",
		g.LoadFactor(), g.Dilation(), g.Congestion())
}

func avgDilation(_, _ int) {
	header("§4.1 average dilation of product embeddings vs inner axis length")
	inner, err := core.PlanShape(mesh.Shape{3, 5}, core.DefaultOptions), error(nil)
	_ = err
	d2 := inner.Build()
	fmt.Printf("outer factor: 3x5 direct embedding, avg dilation %.4f\n", d2.AvgDilation())
	fmt.Printf("%-10s %-14s %-14s\n", "inner", "measured d̄", "formula ≈1+Σ(d̄ᵢ-1)/(k·2^nᵢ)")
	for _, g := range []mesh.Shape{{2, 2}, {4, 4}, {8, 8}, {16, 16}} {
		prod := core.Product(embed.Gray(g), d2)
		formula := 1.0
		k := 2
		for i := 0; i < k; i++ {
			ni := 0
			for (1 << uint(ni)) < g[i] {
				ni++
			}
			formula += (d2.AxisAvgDilation(i) - 1) / float64(k*(1<<uint(ni)))
		}
		fmt.Printf("%-10s %-14.4f %-14.4f\n", g, prod.AvgDilation(), formula)
	}
}

func reshapeAblation(_, _ int) {
	header("§3.2 ablation: reshaping baselines vs graph decomposition")
	fmt.Printf("%-8s %-14s %4s %8s %8s %6s\n", "guest", "technique", "dil", "avgdil", "cong", "cube")
	for _, str := range []string{"3x5", "5x6", "7x9", "11x11", "3x21", "13x17"} {
		for _, row := range reshape.Compare(mesh.MustParse(str)) {
			fmt.Printf("%-8s %-14s %4d %8.4f %8d %6d\n",
				row.Guest, row.Technique, row.Dilation, row.AvgDilation, row.Congestion, row.CubeDim)
		}
	}
}

func higherDim(_, _ int) {
	header("§8 conjecture: higher-dimensional meshes with 2-D/3-D group embeddings")
	rows := []stats.HigherDimRow{
		stats.HigherDimCoverageParallel(4, 3, workers),
		stats.HigherDimCoverageParallel(4, 4, workers),
		stats.HigherDimCoverageParallel(4, 5, workers),
		stats.HigherDimCoverageParallel(5, 3, workers),
		stats.HigherDimCoverageParallel(5, 4, workers),
		stats.HigherDimCoverageParallel(6, 3, workers),
	}
	fmt.Print(stats.FormatHigherDim(rows))
	fmt.Println("paper conjectures a majority; the grouping predicate covers far more than half")
}

func simnetExperiment(_, _ int) {
	header("§1 motivation: stencil-exchange cost on the simulated cube network")
	type entry struct {
		name string
		st   simnet.RoundStats
		dim  int
	}
	for _, str := range []string{"12x20", "5x6x7", "21x9x5"} {
		s := mesh.MustParse(str)
		dec := core.PlanShape(s, core.DefaultOptions).Build()
		gr := embed.Gray(s)
		res := simnet.CompareEmbeddings(map[string]*embed.Embedding{
			"decomposition": dec, "gray": gr,
		})
		entries := []entry{
			{"decomposition", res["decomposition"], dec.N},
			{"gray", res["gray"], gr.N},
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
		for _, en := range entries {
			fmt.Printf("%-8s %-14s %2d-cube  makespan %2d  maxhops %d  maxlink %d  avghops %.3f\n",
				str, en.name, en.dim, en.st.Makespan, en.st.MaxHops, en.st.MaxLink, en.st.AvgHops)
		}
	}
	fmt.Println("decomposition uses the minimal cube (often half the nodes) at a small makespan cost")
}
