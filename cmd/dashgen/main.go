// Command dashgen generates the deploy/grafana dashboard pack from Go
// definitions, so dashboards live in code review rather than in a Grafana
// instance's click-state.
//
// Every panel's PromQL is validated against the metric families the server
// actually registers (server.MetricFamilies, the canonical list in
// internal/server/promtext.go): a panel referencing a renamed or deleted
// family is a build error here, not a silently-empty graph in production.
//
// Usage:
//
//	dashgen -out deploy/grafana/dashboards   # (re)write the dashboard JSON
//	dashgen -check deploy/grafana/dashboards # fail if on-disk JSON drifted
//
// make dash-check wires the second form into make check.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dash"
)

func main() {
	out := flag.String("out", "", "write the generated dashboard JSON files into this directory")
	check := flag.String("check", "", "compare generated JSON against this directory; non-zero exit on drift")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "dashgen: exactly one of -out or -check is required")
		os.Exit(2)
	}

	files, err := dash.Render()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dashgen:", err)
		os.Exit(1)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dashgen:", err)
			os.Exit(1)
		}
		for name, data := range files {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "dashgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
		}
		return
	}

	drifted := false
	for name, data := range files {
		path := filepath.Join(*check, name)
		disk, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dashgen: %s: %v (run `make dash` to regenerate)\n", path, err)
			drifted = true
			continue
		}
		if !bytes.Equal(disk, data) {
			fmt.Fprintf(os.Stderr, "dashgen: %s drifted from the Go definitions (run `make dash` to regenerate)\n", path)
			drifted = true
		}
	}
	if drifted {
		os.Exit(1)
	}
	fmt.Printf("dashboards in %s match the Go definitions (%d files)\n", *check, len(files))
}
