// Command embedserver runs the embedding service: an HTTP API over the
// planner, the fused metrics engine and the network simulator, with a
// canonical-shape LRU result cache, singleflight request coalescing,
// per-request timeouts, load shedding and Prometheus metrics.
//
// Usage:
//
//	embedserver -addr :8080 -workers 0 -cache-size 1024 -max-inflight 256 -timeout 30s
//
// Observability:
//
//	-log-level debug|info|warn|error   access-log verbosity (default info)
//	-log-format text|json              access-log encoding (default text)
//	-no-log                            disable the access log entirely
//	-debug-addr HOST:PORT              opt-in second listener serving
//	                                   net/http/pprof and expvar; kept off
//	                                   the API listener so profiling is
//	                                   never exposed by accident
//	-tracing=false                     kill switch for the span tracer
//	                                   behind ?debug=trace
//
// Plan tiers:
//
//	-plan-artifact FILE                load a precomputed plan-census
//	                                   artifact (internal/artifact) as the
//	                                   O(1) L1 plan tier; the artifact's
//	                                   planner-option fingerprint must match
//	                                   this server's, or startup fails
//
// Batch jobs:
//
//	-data-dir DIR                      enable the /v1/jobs batch subsystem,
//	                                   persisting job state, checkpoints and
//	                                   NDJSON results under DIR; on restart
//	                                   unfinished jobs resume from their
//	                                   last checkpoint with byte-identical
//	                                   result streams
//	-job-queue N                       bounded submission queue (429 beyond)
//	-job-runners N                     concurrent job executors
//	-job-workers N                     default per-chunk worker bound
//	-checkpoint-every N                chunks between checkpoints
//
// Distributed sweep fabric:
//
//	-fabric-secret S                   join the fabric trust domain: serve
//	                                   POST /v1/internal/chunks (worker mode)
//	                                   and accept peer registrations, all
//	                                   guarded by the shared secret
//	-peers URL,URL,...                 coordinator mode: dispatch distributed
//	                                   job chunks to these embedserver peers
//	-join URL                          register this server with a running
//	                                   coordinator (requires -advertise)
//	-advertise URL                     the base URL peers should dial to
//	                                   reach this server
//	-fabric-inflight N                 concurrently executing chunks per peer
//
// The server prints "embedserver: listening on HOST:PORT" once the listener
// is bound (so -addr :0 is scriptable) and drains in-flight requests on
// SIGINT/SIGTERM before exiting; running jobs checkpoint and park as queued
// so the next start picks them up.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"repro/internal/artifact"
	"repro/internal/fabric"
	"repro/internal/fabric/fabrichttp"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "metrics-engine workers per measurement (<1: GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "fully-measured result LRU entries (negative disables)")
	maxInflight := flag.Int("max-inflight", 256, "concurrently served API requests before shedding with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
	logLevel := flag.String("log-level", "info", "minimum access-log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "access-log encoding: text or json")
	noLog := flag.Bool("no-log", false, "disable the structured access log")
	debugAddr := flag.String("debug-addr", "", "optional debug listener serving net/http/pprof and expvar (empty: off)")
	tracing := flag.Bool("tracing", true, "enable the span tracer behind ?debug=trace / X-Debug-Trace")
	planArtifact := flag.String("plan-artifact", "", "plan-census artifact file served as the O(1) L1 plan tier (build one with a plancensus job or embedctl artifact build)")
	dataDir := flag.String("data-dir", "", "enable /v1/jobs, persisting job state and results under this directory (empty: jobs disabled)")
	jobQueue := flag.Int("job-queue", 8, "bounded job submission queue; full submissions get 429")
	jobRunners := flag.Int("job-runners", 1, "concurrent job executors")
	jobWorkers := flag.Int("job-workers", 0, "default per-chunk worker bound for jobs (<1: GOMAXPROCS)")
	checkpointEvery := flag.Int("checkpoint-every", 8, "chunks between job checkpoints")
	fabricSecret := flag.String("fabric-secret", "", "shared secret enabling the fabric endpoints (worker chunk execution and peer registration)")
	peersFlag := flag.String("peers", "", "comma-separated embedserver base URLs to dispatch distributed job chunks to")
	joinURL := flag.String("join", "", "coordinator base URL to register this server with (requires -advertise)")
	advertise := flag.String("advertise", "", "base URL peers should dial to reach this server")
	fabricInflight := flag.Int("fabric-inflight", 2, "concurrently executing chunks per fabric peer")
	flag.Parse()

	obs.SetEnabled(*tracing)

	var logger *slog.Logger
	if !*noLog {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "embedserver: bad -log-level %q: %v\n", *logLevel, err)
			os.Exit(2)
		}
		opts := &slog.HandlerOptions{Level: lvl}
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, opts))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, opts))
		default:
			fmt.Fprintf(os.Stderr, "embedserver: bad -log-format %q (want text or json)\n", *logFormat)
			os.Exit(2)
		}
	}

	s := server.New(server.Config{
		Workers:      *workers,
		CacheSize:    *cacheSize,
		MaxInflight:  *maxInflight,
		Timeout:      *timeout,
		Logger:       logger,
		FabricSecret: *fabricSecret,
	})
	if *planArtifact != "" {
		a, err := artifact.Open(*planArtifact)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embedserver: plan artifact:", err)
			os.Exit(1)
		}
		if err := s.AttachArtifact(a); err != nil {
			fmt.Fprintln(os.Stderr, "embedserver:", err)
			os.Exit(1)
		}
		hdr := a.Header()
		fmt.Printf("embedserver: plan artifact %s (%s, %dd, axes ≤%d, %d records)\n",
			*planArtifact, hdr.Family, hdr.Dims, hdr.MaxAxis, hdr.RecordCount)
	}
	if (*peersFlag != "" || *joinURL != "") && *fabricSecret == "" {
		fmt.Fprintln(os.Stderr, "embedserver: -peers/-join require -fabric-secret")
		os.Exit(2)
	}
	if *joinURL != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "embedserver: -join requires -advertise (the URL the coordinator should dial back)")
		os.Exit(2)
	}
	var pool *fabric.Pool
	if *fabricSecret != "" {
		// The local loopback executes chunks in-process through the same
		// entry point the HTTP worker endpoint uses, so a coordinator that
		// loses every worker keeps folding byte-identical results.
		pool = fabric.NewPool(fabric.Config{
			Dial: fabrichttp.Dialer(*fabricSecret),
			Local: fabric.Loopback(func(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
				return jobs.ExecuteChunk(ctx, req, *jobWorkers, s.Planner())
			}),
			InFlightPerPeer: *fabricInflight,
			Logger:          logger,
		})
		for _, addr := range strings.Split(*peersFlag, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			if err := pool.Add(addr); err != nil {
				fmt.Fprintln(os.Stderr, "embedserver: fabric:", err)
				os.Exit(2)
			}
		}
		s.AttachFabric(pool)
		fmt.Printf("embedserver: fabric enabled (%d remote peers)\n", len(pool.Peers())-1)
	}
	var jobMgr *jobs.Manager
	if *dataDir != "" {
		var err error
		jobMgr, err = jobs.Open(jobs.Config{
			DataDir:         *dataDir,
			QueueDepth:      *jobQueue,
			Runners:         *jobRunners,
			DefaultWorkers:  *jobWorkers,
			CheckpointEvery: *checkpointEvery,
			Planner:         s.Planner(), // jobs warm the serving path's plan cache
			Fabric:          pool,        // nil unless -fabric-secret: distributed jobs rejected
			Logger:          logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "embedserver: jobs:", err)
			os.Exit(1)
		}
		s.AttachJobs(jobMgr)
		fmt.Printf("embedserver: batch jobs enabled under %s\n", *dataDir)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedserver:", err)
		os.Exit(1)
	}
	fmt.Printf("embedserver: listening on %s\n", ln.Addr())

	if *joinURL != "" {
		// Register with the coordinator only after the listener is bound, so
		// the coordinator's first health probe of the advertised address can
		// succeed.  The client retries refused connections with backoff, so
		// "worker starts a moment before the coordinator" also works.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			c := client.New(*joinURL, client.WithSecret(*fabricSecret), client.WithRetries(5))
			if _, err := c.JoinPeer(ctx, *advertise); err != nil {
				fmt.Fprintf(os.Stderr, "embedserver: fabric join %s failed: %v\n", *joinURL, err)
				return
			}
			fmt.Printf("embedserver: joined fabric at %s as %s\n", *joinURL, *advertise)
		}()
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embedserver: debug listener:", err)
			os.Exit(1)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		fmt.Printf("embedserver: debug listening on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "embedserver: debug listener:", err)
			}
		}()
	}

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "embedserver:", err)
		os.Exit(1)
	case sig := <-stop:
		fmt.Printf("embedserver: %v, draining for up to %s\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "embedserver: shutdown:", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "embedserver:", err)
			os.Exit(1)
		}
		if jobMgr != nil {
			// Running jobs checkpoint and park as queued; the next start
			// resumes them with byte-identical result streams.
			if err := jobMgr.Close(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "embedserver: jobs shutdown:", err)
				os.Exit(1)
			}
		}
		if pool != nil {
			pool.Close()
		}
	}
}
