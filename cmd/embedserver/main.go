// Command embedserver runs the embedding service: an HTTP API over the
// planner, the fused metrics engine and the network simulator, with a
// canonical-shape LRU result cache, singleflight request coalescing,
// per-request timeouts, load shedding and Prometheus metrics.
//
// Usage:
//
//	embedserver -addr :8080 -workers 0 -cache-size 1024 -max-inflight 256 -timeout 30s
//
// The server prints "embedserver: listening on HOST:PORT" once the listener
// is bound (so -addr :0 is scriptable) and drains in-flight requests on
// SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "metrics-engine workers per measurement (<1: GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "fully-measured result LRU entries (negative disables)")
	maxInflight := flag.Int("max-inflight", 256, "concurrently served API requests before shedding with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	s := server.New(server.Config{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		MaxInflight: *maxInflight,
		Timeout:     *timeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embedserver:", err)
		os.Exit(1)
	}
	fmt.Printf("embedserver: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "embedserver:", err)
		os.Exit(1)
	case sig := <-stop:
		fmt.Printf("embedserver: %v, draining for up to %s\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "embedserver: shutdown:", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "embedserver:", err)
			os.Exit(1)
		}
	}
}
