// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON summary on stdout, one record per benchmark with ns/op, B/op
// and allocs/op.  Multi-package runs are supported: each record carries the
// package whose `pkg:` header preceded it.  benchjson backs the Makefile
// bench-json target, which records the repo's perf trajectory
// (BENCH_PR2.json, BENCH_PR3.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/embed ./internal/server | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Summary is the emitted document.  Pkg is kept for single-package runs
// (and holds the last package seen on multi-package input); the per-record
// Pkg field is authoritative.
type Summary struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	sum := Summary{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			sum.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			sum.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = sum.Pkg
				sum.Benchmarks = append(sum.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench parses a line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
//
// Unknown value/unit pairs are ignored so custom ReportMetric units pass
// through harmlessly.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
