// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON summary on stdout, one record per benchmark with ns/op, B/op
// and allocs/op.  Multi-package runs are supported: each record carries the
// package whose `pkg:` header preceded it.  benchjson backs the Makefile
// bench-json target, which records the repo's perf trajectory
// (BENCH_PR2.json, BENCH_PR3.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/embed ./internal/server | go run ./cmd/benchjson
//
// Every run is stamped with a bench_id — unique per invocation unless -id
// pins it — so runs of the same suite remain distinguishable after their
// documents are merged or archived together.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.  Extra carries any units beyond
// the standard three — custom b.ReportMetric values such as the classify
// census's Mshapes/s pass through under their reported unit.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Summary is the emitted document.  Pkg is kept for single-package runs
// (and holds the last package seen on multi-package input); the per-record
// Pkg field is authoritative.
type Summary struct {
	// BenchID identifies this run: the -id flag when given, else
	// host-pid-unixms, unique per invocation.
	BenchID    string   `json:"bench_id"`
	UnixMS     int64    `json:"unix_ms"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	id := flag.String("id", "", "bench_id to stamp on the summary (default: host-pid-unixms)")
	flag.Parse()
	now := time.Now()
	sum := Summary{BenchID: *id, UnixMS: now.UnixMilli(), Benchmarks: []Result{}}
	if sum.BenchID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "unknown"
		}
		sum.BenchID = fmt.Sprintf("%s-%d-%d", host, os.Getpid(), now.UnixMilli())
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			sum.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			sum.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = sum.Pkg
				sum.Benchmarks = append(sum.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench parses a line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
//
// Unknown value/unit pairs land in Extra so custom ReportMetric units are
// preserved.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
