// Command loadtest replays a seeded heavy-traffic mix against a running
// embedserver and reports client-observed latency percentiles plus shed
// and error rates.
//
// The mix is deterministic: a fixed-size op sequence (plan, embed and
// compare calls over a small shape pool, plus a bounded number of batch
// job submissions) is generated up front from -seed, and -c workers
// replay it round-robin for -duration.  The same seed therefore always
// issues the same requests — reruns are comparable and regressions
// bisectable.  Shape axes are randomly permuted per op so a share of the
// traffic resolves through the canonical-shape cache rather than the
// planner, the way mixed production traffic would.
//
// The client runs with retries disabled: a 429 over_capacity or
// queue_full response is counted as a shed, not retried away, so the
// tool measures what the server actually did under load.
//
// Output formats:
//
//	-format bench  go-test benchmark lines (default) — pipe through
//	               cmd/benchjson to land rows in BENCH_PR9.json
//	-format json   a self-contained benchjson-schema summary document
//
// A human-readable table always goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

// op is one replayable request from the seeded mix.
type op struct {
	kind  string // "plan", "embed", "compare" or "job"
	shape string
}

// opKinds is the reporting order; job rows appear as "job_submit".
var opKinds = []string{"plan", "embed", "compare", "job_submit"}

// baseShapes is the canonical (sorted-axes) shape pool.  Small axes keep a
// single op cheap enough that the harness saturates the server with
// request handling, not with one giant measurement.
var baseShapes = []string{
	"3x4x5", "4x4x4", "2x5x7", "3x3x8", "4x5x6", "2x4x8",
	"5x5x5", "3x5x6", "2x6x7", "4x4x7", "2x3x9", "3x6x6",
}

// buildMix generates the deterministic op sequence.  Weights: ~45% plan,
// ~30% embed, ~20% compare, ~5% job-submission markers (the run caps how
// many markers actually submit; the rest degrade to plans).
func buildMix(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, n)
	for i := range ops {
		shape := permuteShape(rng, baseShapes[rng.Intn(len(baseShapes))])
		switch r := rng.Float64(); {
		case r < 0.45:
			ops[i] = op{kind: "plan", shape: shape}
		case r < 0.75:
			ops[i] = op{kind: "embed", shape: shape}
		case r < 0.95:
			ops[i] = op{kind: "compare", shape: shape}
		default:
			ops[i] = op{kind: "job"}
		}
	}
	return ops
}

// permuteShape shuffles the axis order of an AxBxC shape string.  The
// server canonicalizes axes before planning, so permutations of one base
// shape share a cache entry — this is what exercises the canonical-shape
// cache under load.
func permuteShape(rng *rand.Rand, shape string) string {
	axes := strings.Split(shape, "x")
	rng.Shuffle(len(axes), func(i, j int) { axes[i], axes[j] = axes[j], axes[i] })
	return strings.Join(axes, "x")
}

// collector accumulates one worker's observations; workers never share a
// collector, so no locking on the hot path.
type collector struct {
	lat   map[string][]time.Duration
	sheds int64
	errs  int64
}

func newCollector() *collector {
	return &collector{lat: make(map[string][]time.Duration)}
}

func (c *collector) merge(o *collector) {
	for k, v := range o.lat {
		c.lat[k] = append(c.lat[k], v...)
	}
	c.sheds += o.sheds
	c.errs += o.errs
}

// record classifies one completed op.  Sheds (the server's 429 rejections)
// and errors are counted but their latency is not mixed into the success
// percentiles.
func (c *collector) record(kind string, d time.Duration, err error) {
	if err == nil {
		c.lat[kind] = append(c.lat[kind], d)
		return
	}
	var apiErr *api.Error
	if errors.As(err, &apiErr) &&
		(apiErr.Code == api.CodeOverCapacity || apiErr.Code == api.CodeQueueFull) {
		c.sheds++
		return
	}
	c.errs++
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// benchRow mirrors cmd/benchjson's Result schema so -format json emits a
// document shaped exactly like BENCH_PR9.json rows.
type benchRow struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type benchSummary struct {
	BenchID    string     `json:"bench_id"`
	UnixMS     int64      `json:"unix_ms"`
	Goos       string     `json:"goos,omitempty"`
	Goarch     string     `json:"goarch,omitempty"`
	CPU        string     `json:"cpu,omitempty"`
	Pkg        string     `json:"pkg,omitempty"`
	Benchmarks []benchRow `json:"benchmarks"`
}

const loadtestPkg = "repro/cmd/loadtest"

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "embedserver base URL")
	seed := flag.Int64("seed", 1, "mix seed; the same seed replays the same op sequence")
	conc := flag.Int("c", 8, "concurrent workers")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive traffic")
	maxJobs := flag.Int("jobs", 2, "max batch job submissions in the mix (0 disables; requires a -data-dir server)")
	jobMaxN := flag.Int("job-max-n", 3, "census max_n for submitted jobs")
	format := flag.String("format", "bench", "stdout format: bench (go-test lines for cmd/benchjson) or json")
	benchID := flag.String("bench-id", "loadtest", "bench_id stamped into -format json output")
	flag.Parse()
	if *format != "bench" && *format != "json" {
		fmt.Fprintf(os.Stderr, "loadtest: unknown -format %q\n", *format)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := client.New(*addr, client.WithRetries(0))
	if _, err := c.Healthz(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: server not reachable at %s: %v\n", *addr, err)
		os.Exit(1)
	}

	ops := buildMix(*seed, 4096)

	var (
		next     atomic.Int64 // global replay cursor
		jobsLeft atomic.Int64
		jobMu    sync.Mutex
		jobIDs   []string
	)
	jobsLeft.Store(int64(*maxJobs))

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	start := time.Now()
	workers := make([]*collector, *conc)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		col := newCollector()
		workers[w] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				o := ops[next.Add(1)%int64(len(ops))]
				kind := o.kind
				if kind == "job" && jobsLeft.Add(-1) < 0 {
					// Job budget spent — degrade the marker to a plan so
					// the replayed sequence length stays identical.
					kind, o.shape = "plan", permutedFallbackShape(o)
				}
				t0 := time.Now()
				var err error
				switch kind {
				case "plan":
					_, err = c.Plan(runCtx, api.PlanRequest{Shape: o.shape})
				case "embed":
					_, err = c.Embed(runCtx, api.EmbedRequest{Shape: o.shape})
				case "compare":
					_, err = c.Compare(runCtx, api.CompareRequest{Shape: o.shape})
				case "job":
					kind = "job_submit"
					var st *api.JobStatus
					st, err = c.SubmitJob(runCtx, api.JobSubmitRequest{
						Kind:   api.JobCensus,
						Census: &api.CensusParams{MaxN: *jobMaxN},
					})
					if err == nil {
						jobMu.Lock()
						jobIDs = append(jobIDs, st.ID)
						jobMu.Unlock()
					}
				}
				if runCtx.Err() != nil && err != nil {
					return // deadline hit mid-request; not a server failure
				}
				col.record(kind, time.Since(t0), err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()

	total := newCollector()
	for _, col := range workers {
		total.merge(col)
	}

	// Drain submitted jobs to terminal state so the server is idle when we
	// exit; a failed job counts as an error.
	for _, id := range jobIDs {
		waitCtx, waitCancel := context.WithTimeout(ctx, time.Minute)
		st, err := c.WatchJob(waitCtx, id, 100*time.Millisecond, nil)
		waitCancel()
		if err != nil || st.State != api.JobDone {
			total.errs++
			fmt.Fprintf(os.Stderr, "loadtest: job %s did not complete cleanly (err=%v)\n", id, err)
		}
	}

	report(total, elapsed, *format, *benchID)
}

// permutedFallbackShape derives a deterministic plan shape for a degraded
// job marker from the op's position-independent state.  Job markers carry
// no shape, so reuse the first base shape — cheap and cache-friendly.
func permutedFallbackShape(o op) string {
	if o.shape != "" {
		return o.shape
	}
	return baseShapes[0]
}

func report(total *collector, elapsed time.Duration, format, benchID string) {
	var requests int64 = total.sheds + total.errs
	var sumAll time.Duration
	for _, v := range total.lat {
		requests += int64(len(v))
		for _, d := range v {
			sumAll += d
		}
	}
	shedRate, errRate := 0.0, 0.0
	if requests > 0 {
		shedRate = float64(total.sheds) / float64(requests)
		errRate = float64(total.errs) / float64(requests)
	}

	var rows []benchRow
	for _, kind := range opKinds {
		lats := total.lat[kind]
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		for _, pc := range []struct {
			label string
			p     float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			rows = append(rows, benchRow{
				Name:       fmt.Sprintf("BenchmarkLoadtest/%s/%s", kind, pc.label),
				Pkg:        loadtestPkg,
				Iterations: int64(len(lats)),
				NsPerOp:    float64(percentile(lats, pc.p).Nanoseconds()),
			})
		}
	}
	meanNS := 0.0
	succeeded := requests - total.sheds - total.errs
	if succeeded > 0 {
		meanNS = float64(sumAll.Nanoseconds()) / float64(succeeded)
	}
	rows = append(rows, benchRow{
		Name:       "BenchmarkLoadtest/total",
		Pkg:        loadtestPkg,
		Iterations: requests,
		NsPerOp:    meanNS,
		Extra: map[string]float64{
			"req/s":     float64(requests) / elapsed.Seconds(),
			"shed-rate": shedRate,
			"err-rate":  errRate,
		},
	})

	// Human-readable table on stderr regardless of the stdout format.
	fmt.Fprintf(os.Stderr, "loadtest: %d requests in %v (%.0f req/s), %d shed (%.2f%%), %d errors (%.2f%%)\n",
		requests, elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds(),
		total.sheds, 100*shedRate, total.errs, 100*errRate)
	for _, r := range rows {
		if strings.HasSuffix(r.Name, "/total") {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-32s n=%-6d %10.3fms\n",
			strings.TrimPrefix(r.Name, "BenchmarkLoadtest/"), r.Iterations, r.NsPerOp/1e6)
	}

	switch format {
	case "bench":
		// go-test style lines, parseable by cmd/benchjson.
		fmt.Printf("pkg: %s\n", loadtestPkg)
		for _, r := range rows {
			line := fmt.Sprintf("%s\t%d\t%.0f ns/op", r.Name, r.Iterations, r.NsPerOp)
			for _, unit := range sortedExtraUnits(r.Extra) {
				line += fmt.Sprintf("\t%.6f %s", r.Extra[unit], unit)
			}
			fmt.Println(line)
		}
	case "json":
		sum := benchSummary{
			BenchID:    benchID,
			UnixMS:     time.Now().UnixMilli(),
			Goos:       runtime.GOOS,
			Goarch:     runtime.GOARCH,
			CPU:        fmt.Sprintf("%d-core %s", runtime.NumCPU(), runtime.GOARCH),
			Pkg:        loadtestPkg,
			Benchmarks: rows,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			os.Exit(1)
		}
	}

	if total.errs > 0 {
		os.Exit(1)
	}
}

func sortedExtraUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}
