// Command findembed searches for low-dilation minimal-expansion embeddings
// of small meshes and prints them as Go tables suitable for package direct.
//
// Usage:
//
//	findembed -shape 7x9 -dilation 2 -seed 1 -restarts 64 -iters 2000000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/embed"
	"repro/internal/mesh"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("findembed: ")
	shapeStr := flag.String("shape", "3x5", "mesh shape, e.g. 7x9 or 3x3x7")
	dilation := flag.Int("dilation", 2, "maximum dilation to search for")
	seed := flag.Int64("seed", 1, "RNG seed")
	restarts := flag.Int("restarts", 32, "annealing restarts")
	iters := flag.Int("iters", 1_000_000, "annealing iterations per restart")
	flag.Parse()

	s, err := mesh.ParseShape(*shapeStr)
	if err != nil {
		log.Fatal(err)
	}
	e := solver.Find(s, solver.Options{
		MaxDilation: *dilation,
		Seed:        *seed,
		Restarts:    *restarts,
		Iterations:  *iters,
	})
	if e == nil {
		log.Fatalf("no dilation-%d embedding of %s found within budget", *dilation, s)
	}
	if err := e.Verify(); err != nil {
		log.Fatalf("solver returned invalid embedding: %v", err)
	}
	e.RealizeMinCongestion()
	fmt.Fprintf(os.Stderr, "found: %s\n", e.Measure())
	printTable(e)
}

func printTable(e *embed.Embedding) {
	fmt.Printf("// %s, found by cmd/findembed\n", e.Measure())
	fmt.Printf("var map%s = []cube.Node{", e.Guest)
	for i, h := range e.Map {
		if i%12 == 0 {
			fmt.Printf("\n\t")
		}
		fmt.Printf("%d, ", h)
	}
	fmt.Printf("\n}\n")
}
