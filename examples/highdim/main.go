// Highdim: embed meshes of four and more dimensions (§4.2's strategy and
// §8's conjecture) and sweep the fraction of higher-dimensional meshes the
// 2-D/3-D toolset covers.
//
//	go run ./examples/highdim
package main

import (
	"fmt"

	"repro"
	"repro/internal/stats"
)

func main() {
	// The paper's own 4-D example: 12x16x20x32.  Power-of-two axes (16,
	// 32) peel off as a Gray factor; the 12x20 remainder decomposes as
	// (3x5) ⊗ (4x4).  Dilation 2 in the minimal 17-cube (131072 nodes for
	// 122880 mesh points — 94% utilization, where plain Gray would need a
	// 19-cube at 23%).
	for _, str := range []string{"12x16x20x32", "3x5x3x5", "6x6x6x6", "3x3x3x3x3"} {
		r := repro.Embed(repro.MustShape(str))
		if err := r.Embedding.Verify(); err != nil {
			panic(err)
		}
		fmt.Printf("%-12s plan %-52s %s\n", str, r.Plan, r.Metrics)
	}

	// §8: "We conjecture that a majority of the higher dimensional meshes
	// can be embedded with dilation two using the existing two-, and
	// three-dimensional mesh embeddings of dilation two."
	fmt.Println("\ncoverage of the §8 grouping predicate (Gray singletons + 2-D pairs + 3-D triples):")
	rows := []stats.HigherDimRow{
		stats.HigherDimCoverage(4, 4),
		stats.HigherDimCoverage(5, 3),
		stats.HigherDimCoverage(6, 3),
	}
	fmt.Print(stats.FormatHigherDim(rows))
	fmt.Println("the conjecture holds with large margins on every swept domain")
}
