// Quickstart: embed a 5x6x7 mesh in its minimal Boolean cube and inspect
// the plan, the metrics and a few node assignments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	shape := repro.MustShape("5x6x7")

	// The decomposition planner: minimal expansion, dilation ≤ 2 for every
	// shape the paper's methods cover (96% of all meshes within 512³).
	result := repro.Embed(shape)
	fmt.Println("plan:   ", result.Plan)
	fmt.Println("method: ", result.Plan.Method, "(of the paper's §5 methods)")
	fmt.Println("metrics:", result.Metrics)

	// The classical Gray-code baseline needs a 9-cube for the same mesh —
	// twice the hardware.
	gray := repro.EmbedGray(shape)
	fmt.Println("gray:   ", gray.Metrics)

	// The embedding is a plain node map: mesh coordinate -> cube address.
	e := result.Embedding
	for _, coord := range [][]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {4, 5, 6}} {
		idx := shape.Index(coord)
		fmt.Printf("mesh %v -> cube node %08b\n", coord, e.Map[idx])
	}

	// Every guest edge's images are at Hamming distance ≤ 2.
	fmt.Printf("verified: %v, dilation %d, congestion %d\n",
		e.Verify() == nil, e.Dilation(), e.Congestion())
}
