// Stencil: run a Jacobi iteration (5-point stencil) for Laplace's equation
// on a 12x20 grid whose points are placed on a simulated Boolean cube
// multicomputer, and compare the communication cost of the paper's
// decomposition embedding against the Gray-code baseline.
//
// The decomposition embedding packs the grid into the minimal 8-cube (256
// nodes); Gray needs a 9-cube (512 nodes).  The experiment shows the price:
// a few extra routing steps per exchange sweep, for half the machine.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/simnet"
)

const (
	rows, cols = 12, 20
	iterations = 500
)

func main() {
	shape := repro.Shape{rows, cols}

	dec := repro.Embed(shape)
	gray := repro.EmbedGray(shape)

	fmt.Println("decomposition:", dec.Metrics)
	fmt.Println("gray baseline:", gray.Metrics)

	// Communication: one exchange sweep per Jacobi iteration.
	for _, r := range []struct {
		name string
		res  repro.Result
	}{{"decomposition", dec}, {"gray", gray}} {
		nw := simnet.New(r.res.Embedding.N)
		stats := nw.Run(simnet.StencilExchange(r.res.Embedding))
		fmt.Printf("%-14s per-sweep: makespan %d steps, max hops %d, max link load %d\n",
			r.name, stats.Makespan, stats.MaxHops, stats.MaxLink)
		fmt.Printf("%-14s %d iterations cost %d routing steps on a %d-node machine\n",
			r.name, iterations, iterations*stats.Makespan, 1<<uint(r.res.Embedding.N))
	}

	// The computation: solve Laplace's equation ∇²u = 0 on the grid with
	// Dirichlet boundary u = x·y (a discrete-harmonic function, so the
	// interior must converge to exactly x·y).  One exchange sweep per
	// iteration is what the simulated rounds above price out.
	exact := func(i, j int) float64 { return float64(i) * float64(j) }
	u := make([][]float64, rows+2)
	next := make([][]float64, rows+2)
	for i := range u {
		u[i] = make([]float64, cols+2)
		next[i] = make([]float64, cols+2)
		for j := range u[i] {
			onBoundary := i == 0 || i == rows+1 || j == 0 || j == cols+1
			if onBoundary {
				u[i][j] = exact(i, j)
				next[i][j] = exact(i, j)
			}
		}
	}
	for it := 0; it < iterations; it++ {
		for i := 1; i <= rows; i++ {
			for j := 1; j <= cols; j++ {
				next[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]) / 4
			}
		}
		u, next = next, u
	}
	maxErr := 0.0
	for i := 1; i <= rows; i++ {
		for j := 1; j <= cols; j++ {
			if e := math.Abs(u[i][j] - exact(i, j)); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("jacobi: %d sweeps on the %dx%d grid, max error vs harmonic solution %.2e\n",
		iterations, rows, cols, maxErr)
}
