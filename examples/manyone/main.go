// Manyone: place a mesh larger than the machine on a small Boolean cube
// with dilation one and near-optimal load, per Section 7 — the paper's
// 19x19-into-5-cube example plus a balance report.
//
//	go run ./examples/manyone
package main

import (
	"fmt"

	"repro"
	"repro/internal/manyone"
	"repro/internal/mesh"
)

func main() {
	shape := repro.MustShape("19x19")

	// Corollary 5: 19x19 (361 nodes) onto 32 processors.  The axis cover
	// 24x20 = (3·2³)x(5·2²) gives load 15 vs the optimal 12 — within the
	// promised factor of two — and every mesh edge is at most one hop.
	for _, n := range []int{5, 4, 3} {
		r, ok := repro.EmbedManyToOne(shape, n)
		if !ok {
			fmt.Printf("no Corollary-5 cover for %s into a %d-cube\n", shape, n)
			continue
		}
		opt := manyone.OptimalLoad(shape, n)
		fmt.Printf("%s -> %d-cube: load %d (optimal %d, ratio %.2f), dilation %d\n",
			shape, n, r.Metrics.LoadFactor, opt,
			float64(r.Metrics.LoadFactor)/float64(opt), r.Metrics.Dilation)
	}

	// Load balance detail for the 5-cube placement: how many mesh points
	// each processor hosts.
	r, _ := repro.EmbedManyToOne(shape, 5)
	counts := make(map[uint64]int)
	for _, h := range r.Embedding.Map {
		counts[uint64(h)]++
	}
	hist := make(map[int]int)
	for _, c := range counts {
		hist[c]++
	}
	fmt.Printf("processors by load: %v (%d processors used)\n", hist, len(counts))

	// Lemma 5 directly: contract a 48x40 mesh onto the 16x8 Gray-embedded
	// mesh by grouping 3x5 blocks — dilation stays one.
	base := repro.EmbedGray(repro.Shape{16, 8}).Embedding
	big := repro.Contract(base, mesh.Shape{3, 5})
	fmt.Printf("%s contracted onto 16x8: %s\n", big.Guest, big.Measure())
}
