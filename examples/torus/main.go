// Torus: embed wraparound meshes per Section 6 and run a cyclic
// shift-and-reduce — the communication pattern of Cannon's matrix-multiply
// algorithm — on the simulated cube to show the wraparound edges are as
// cheap as the paper's lemmas promise.
//
//	go run ./examples/torus
package main

import (
	"fmt"

	"repro"
	"repro/internal/simnet"
)

func main() {
	// A 6x10 torus: both axes even, so Lemma 3's halving construction over
	// the dilation-2 3x5 base gives dilation ≤ 2 in the minimal 6-cube.
	for _, str := range []string{"6x10", "12x11", "5x7", "16x16"} {
		r := repro.EmbedTorus(repro.MustShape(str))
		if err := r.Embedding.Verify(); err != nil {
			panic(err)
		}
		fmt.Println(r.Metrics)
	}

	// Cannon-style cyclic shifts on the 6x10 torus: every node sends to
	// its +1 neighbor along one axis, wraparound included.  With the
	// torus embedding each shift costs at most the dilation in hops.
	shape := repro.MustShape("6x10")
	t := repro.EmbedTorus(shape)
	nw := simnet.New(t.Embedding.N)

	for axis := 0; axis < 2; axis++ {
		var msgs []simnet.Message
		coord := make([]int, 2)
		for idx := range t.Embedding.Map {
			shape.CoordInto(idx, coord)
			dst := []int{coord[0], coord[1]}
			dst[axis] = (dst[axis] + 1) % shape[axis]
			msgs = append(msgs, simnet.Message{
				Src: t.Embedding.Map[idx],
				Dst: t.Embedding.Map[shape.Index(dst)],
			})
		}
		stats := nw.Run(msgs)
		fmt.Printf("cyclic shift along axis %d: %d messages, makespan %d, max hops %d\n",
			axis, stats.Messages, stats.Makespan, stats.MaxHops)
	}

	// Contrast: embeddings not built for wraparound leave the wrap edges
	// to chance.  Under a plain Gray code an axis of length 43 puts its
	// wrap neighbors G(42) and G(0) six hops apart; the torus construction
	// keeps every edge within its dilation bound.
	contrast := repro.MustShape("6x43")
	plain := repro.EmbedGray(contrast).Embedding
	worst := 0
	c := make([]int, 2)
	for idx := range plain.Map {
		contrast.CoordInto(idx, c)
		for axis := 0; axis < 2; axis++ {
			if c[axis] != contrast[axis]-1 {
				continue
			}
			o := []int{c[0], c[1]}
			o[axis] = 0
			other := contrast.Index(o)
			if d := hamming(uint64(plain.Map[idx]), uint64(plain.Map[other])); d > worst {
				worst = d
			}
		}
	}
	tc := repro.EmbedTorus(contrast)
	fmt.Printf("6x43 wraparound edges: %d hops worst-case under plain Gray, dilation %d under the torus construction\n",
		worst, tc.Metrics.Dilation)
}

func hamming(a, b uint64) int {
	d := a ^ b
	n := 0
	for d != 0 {
		d &= d - 1
		n++
	}
	return n
}
