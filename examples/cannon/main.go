// Cannon: run Cannon's matrix-multiplication algorithm on a 6x6 process
// torus embedded in the minimal 6-cube — a process grid that plain Gray
// coding cannot place without doubling the machine — and verify the result
// against a serial reference while pricing every cyclic shift on the
// simulated network.
//
//	go run ./examples/cannon
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/linalg"
)

func main() {
	// A 6x6 process torus: 36 processes on the 64-node cube (minimal).
	// Gray coding would need an 8x8 grid → 64 processes forced, or
	// padding waste; the torus embedding keeps every cyclic shift at
	// dilation ≤ 2 (here even 1: halving over the Gray-coded 3x3 mesh).
	torus := repro.EmbedTorus(repro.Shape{6, 6})
	fmt.Println("torus:", torus.Metrics)

	r := rand.New(rand.NewSource(42))
	n := 24 // matrix order; 4x4 blocks per process
	a := linalg.NewMatrix(n, n)
	b := linalg.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = r.Float64()*2 - 1
		b.Data[i] = r.Float64()*2 - 1
	}

	c, stats := linalg.Cannon(a, b, torus.Embedding)
	diff := c.MaxAbsDiff(a.Mul(b))
	fmt.Printf("C = A·B on the embedded torus: max error vs serial %.2e\n", diff)
	fmt.Printf("communication: %d shift rounds, %d total steps, worst shift %d hop(s), %d messages\n",
		stats.ShiftRounds, stats.TotalSteps, stats.MaxHops, stats.MessageCount)

	// The same run on a padded 8x8 Gray torus for contrast: single-hop
	// shifts, but 64 processes for 36 processes' worth of work.
	gray := repro.EmbedGray(repro.Shape{8, 8})
	gray.Embedding.Family = repro.FamilyTorus
	a2 := linalg.NewMatrix(32, 32)
	b2 := linalg.NewMatrix(32, 32)
	for i := range a2.Data {
		a2.Data[i] = r.Float64()
		b2.Data[i] = r.Float64()
	}
	_, gstats := linalg.Cannon(a2, b2, gray.Embedding)
	fmt.Printf("contrast 8x8 Gray torus: %d rounds, %d steps, %d-node machine vs %d-node\n",
		gstats.ShiftRounds, gstats.TotalSteps, 1<<uint(gray.Embedding.N), 1<<uint(torus.Embedding.N))
}
