// Benchmarks: one per experiment of EXPERIMENTS.md.  Each bench regenerates
// the corresponding paper artifact (or a bounded version of it) so that
// `go test -bench=. -benchmem` exercises every reproduction end to end.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/manyone"
	"repro/internal/mesh"
	"repro/internal/reshape"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wrap"
)

// BenchmarkFigure1 (EXP-F1): Theorem 2 closed form plus Monte-Carlo for
// k = 1..10.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := stats.Figure1(10, 100_000, 1)
		if rows[2].Asymptotic < 0.26 || rows[2].Asymptotic > 0.28 {
			b.Fatalf("f3 = %v", rows[2].Asymptotic)
		}
	}
}

// BenchmarkFigure2 (EXP-F2): the cumulative method coverage S1..S4.  The
// full n=9 sweep takes ~2s; the bench runs n=6 per iteration and one n=9
// validation on the first iteration.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := stats.Figure2(6)
		if rows[5].S[3] < 90 {
			b.Fatalf("S4(n=6) = %v", rows[5].S[3])
		}
	}
}

// BenchmarkFigure2FullDomain (EXP-F2/EXP-T1): the full 512³ sweep with the
// published 28.5 / 81.5 / 82.9 / 96.1 sequence.
func BenchmarkFigure2FullDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := stats.Figure2(9)
		last := rows[8]
		want := [4]float64{28.5, 81.5, 82.9, 96.1}
		for j, w := range want {
			if last.S[j] < w-0.05 || last.S[j] >= w+0.05 {
				b.Fatalf("S%d = %v, want ≈%v", j+1, last.S[j], w)
			}
		}
	}
}

// BenchmarkExceptions (EXP-E1): the exceptional-mesh enumeration ≤ 256
// nodes (5x5x5, 5x7x7, 3x9x9, 5x5x10, 3x5x17).
func BenchmarkExceptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ex := stats.Exceptions(256); len(ex) != 5 {
			b.Fatalf("exceptions = %v", ex)
		}
	}
}

// BenchmarkTwoDim64 (EXP-E2): constructive embeddings of every 2-D mesh
// with ≤ 64 nodes; all reach dilation ≤ 2 (the paper's 3x21 exception is
// resolved by the axis-folding plan).
func BenchmarkTwoDim64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		over := 0
		for x := 1; x <= 64; x++ {
			for y := x; x*y <= 64; y++ {
				e := core.PlanShape(mesh.Shape{x, y}, core.DefaultOptions).Build()
				if e.Dilation() > 2 {
					over++
				}
			}
		}
		if over != 0 {
			b.Fatalf("dilation > 2 for %d shapes, want 0", over)
		}
	}
}

// BenchmarkPlanner (EXP-E3): plan+build+measure across the paper's worked
// examples.
func BenchmarkPlanner(b *testing.B) {
	shapes := []mesh.Shape{
		{12, 20}, {3, 25, 3}, {3, 3, 23}, {5, 6, 7}, {21, 9, 5},
		{5, 10, 11}, {12, 16, 20, 32},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := shapes[i%len(shapes)]
		e := core.PlanShape(s, core.Options{}).Build()
		if !e.Minimal() {
			b.Fatalf("%v not minimal", s)
		}
	}
}

// BenchmarkWraparound (EXP-W1): torus embeddings per Corollary 3.
func BenchmarkWraparound(b *testing.B) {
	shapes := []mesh.Shape{{6, 10}, {12, 11}, {5, 7}, {16, 16}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := shapes[i%len(shapes)]
		e := wrap.Embed(s, core.Options{})
		if !e.Minimal() {
			b.Fatalf("%v not minimal", s)
		}
	}
}

// BenchmarkManyOne (EXP-M1): the 19x19-into-5-cube example of §7.
func BenchmarkManyOne(b *testing.B) {
	s := mesh.Shape{19, 19}
	for i := 0; i < b.N; i++ {
		e, _, ok := manyone.Corollary5(s, 5)
		if !ok || e.LoadFactor() != 15 {
			b.Fatal("19x19 example broken")
		}
	}
}

// BenchmarkAvgDilation (EXP-A1): the §4.1 average-dilation formula for
// products with growing inner factors.
func BenchmarkAvgDilation(b *testing.B) {
	outer := core.PlanShape(mesh.Shape{3, 5}, core.DefaultOptions).Build()
	inners := []mesh.Shape{{2, 2}, {4, 4}, {8, 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := embed.Gray(inners[i%len(inners)])
		p := core.Product(in, outer)
		if p.AvgDilation() >= outer.AvgDilation() {
			b.Fatal("product should dilute the average dilation")
		}
	}
}

// BenchmarkReshapeAblation (EXP-A1 companion): reshaping baselines vs the
// decomposition technique.
func BenchmarkReshapeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := reshape.Compare(mesh.Shape{7, 9})
		last := rows[len(rows)-1]
		if last.Technique != "decomposition" || last.Dilation > 2 {
			b.Fatalf("ablation rows: %+v", rows)
		}
	}
}

// BenchmarkSimnet (EXP-S1): one stencil-exchange sweep on the simulated
// cube under the decomposition embedding.
func BenchmarkSimnet(b *testing.B) {
	e := repro.Embed(repro.Shape{12, 20}).Embedding
	nw := simnet.New(e.N)
	msgs := simnet.StencilExchange(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := nw.Run(msgs)
		if st.MaxHops > 2 {
			b.Fatalf("stats %+v", st)
		}
	}
}

// BenchmarkEmbedLargeMesh: throughput of the full pipeline on a large 3-D
// mesh (plan, build, verify).
func BenchmarkEmbedLargeMesh(b *testing.B) {
	s := repro.Shape{30, 36, 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := repro.EmbedWith(s, core.Options{})
		if r.Metrics.Dilation > 2 {
			b.Fatalf("%s", r.Metrics)
		}
	}
}

// BenchmarkGrayBaseline: the dilation-one baseline for reference.
func BenchmarkGrayBaseline(b *testing.B) {
	s := repro.Shape{30, 36, 42}
	for i := 0; i < b.N; i++ {
		_ = repro.EmbedGray(s)
	}
}

// BenchmarkHigherDimConjecture (EXP-X1): the §8 conjecture sweep for
// four-dimensional meshes.
func BenchmarkHigherDimConjecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := stats.HigherDimCoverage(4, 4)
		if r.CoveredPct <= 50 {
			b.Fatalf("conjecture fails: %+v", r)
		}
	}
}

// plannerSweepShapes enumerates every sorted triple with axes ≤ 10 — the
// workload for the cache benchmarks below.  The shapes share many
// sub-shapes (axis pairs, factors, fold children), which is exactly what
// the canonical-shape cache exploits.
func plannerSweepShapes() []repro.Shape {
	var shapes []repro.Shape
	for a := 1; a <= 10; a++ {
		for b := a; b <= 10; b++ {
			for c := b; c <= 10; c++ {
				shapes = append(shapes, repro.Shape{a, b, c})
			}
		}
	}
	return shapes
}

// BenchmarkPlannerCached: one shared caching Planner across a 220-shape
// sweep (cold cache on the first shape, warm after).
func BenchmarkPlannerCached(b *testing.B) {
	shapes := plannerSweepShapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := repro.NewPlanner(repro.Options{})
		for _, s := range shapes {
			if !pl.Plan(s).Minimal() {
				b.Fatalf("%v not minimal", s)
			}
		}
	}
}

// BenchmarkPlannerUncached: the identical sweep with memoization disabled
// (same canonicalization, so the plans are identical — only the work
// repeats).
func BenchmarkPlannerUncached(b *testing.B) {
	shapes := plannerSweepShapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := repro.NewUncachedPlanner(repro.Options{})
		for _, s := range shapes {
			if !pl.Plan(s).Minimal() {
				b.Fatalf("%v not minimal", s)
			}
		}
	}
}

// BenchmarkFigure2N7Serial: the Figure 2 sweep at n=7 on one worker — the
// serial reference path.
func BenchmarkFigure2N7Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := stats.Figure2Parallel(7, 1)
		if rows[6].S[3] < 90 {
			b.Fatalf("S4(n=7) = %v", rows[6].S[3])
		}
	}
}

// BenchmarkFigure2N7Parallel: the same sweep on GOMAXPROCS workers.  The
// first iteration asserts the output is byte-identical to the serial path.
func BenchmarkFigure2N7Parallel(b *testing.B) {
	want := stats.FormatFigure2(stats.Figure2Parallel(7, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := stats.Figure2Parallel(7, 0)
		if i == 0 && stats.FormatFigure2(rows) != want {
			b.Fatal("parallel Figure 2 output differs from serial")
		}
	}
}
