GO ?= go

.PHONY: check vet build test race bench figures fmt

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with shared mutable state: the planner cache,
# the sweep engine, and the root facade's shared default planner.
race:
	$(GO) test -race ./internal/core ./internal/stats ./internal/sweep .

bench:
	$(GO) test -bench=. -benchmem .

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l -w .
