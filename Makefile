GO ?= go

.PHONY: check vet build test race bench bench-short bench-json figures fmt

check: vet build test race bench-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with shared mutable state: the planner cache,
# the sweep engine, the fused metrics engine (concurrent Measure on a
# shared Embedding), and the root facade's shared default planner.
race:
	$(GO) test -race ./internal/core ./internal/embed ./internal/stats ./internal/sweep .

bench:
	$(GO) test -bench=. -benchmem .

# One pass over every benchmark as a smoke test (each runs a single
# iteration) — keeps `check` fast while still compiling and exercising the
# bench bodies.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./internal/... .

# Machine-readable metrics-engine benchmarks for the repo's perf
# trajectory; see EXPERIMENTS.md for the recorded before/after numbers.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkMeasure|BenchmarkLinkLoads' -benchmem ./internal/embed | $(GO) run ./cmd/benchjson > BENCH_PR2.json

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l -w .
