GO ?= go

.PHONY: check vet build test race bench bench-short bench-json bounds-check figures fmt gen gen-check serve-smoke obs-smoke jobs-smoke artifact-smoke fabric-smoke dash dash-check loadtest-smoke

check: vet build gen-check test race bounds-check bench-short serve-smoke obs-smoke jobs-smoke artifact-smoke fabric-smoke dash-check loadtest-smoke

# The optimality gate: the golden known-optimal table of internal/bounds,
# run on its own so a strategy regression (a planner change that stops
# achieving a certified floor) or a weakened bound fails CI with a named
# shape, not a buried test diff.
bounds-check:
	$(GO) test -count=1 -run 'TestKnownOptimalFloors|TestPlannerAchievesKnownOptimal|TestGrayBaselineStaysOptimalOnGrayMinimalMeshes' ./internal/bounds

# Regenerate the enumgen boilerplate (strategy names, plan kinds, guest
# families).
gen:
	$(GO) generate ./...

# Fail when a generated file drifted from its enum declaration — the wire
# names of strategies, plan kinds and guest families are locked by
# generated code, so forgetting `make gen` is a CI failure, not a silent
# skew.
gen-check:
	@before=$$(find . -name '*_enumgen.go' | sort | xargs cksum); \
	$(GO) generate ./... || exit 1; \
	after=$$(find . -name '*_enumgen.go' | sort | xargs cksum); \
	if [ "$$before" != "$$after" ]; then \
		echo "gen-check: generated files drifted from their enum declarations;"; \
		echo "gen-check: the regenerated files are now on disk - review and commit them."; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with shared mutable state: the planner cache,
# the sweep engine, the fused metrics engine (concurrent Measure on a
# shared Embedding), the HTTP server (result cache + coalescer under a
# 32-goroutine herd), the job manager (concurrent submit/cancel/watch over
# checkpointing runners), the client SDK, the span tracer (concurrent child
# registration), and the root facade's shared default planner.
race:
	$(GO) test -race ./internal/core ./internal/embed ./internal/fabric ./internal/jobs ./internal/obs ./internal/server ./internal/simnet ./internal/stats ./internal/sweep ./pkg/client .

bench:
	$(GO) test -bench=. -benchmem .

# One pass over every benchmark as a smoke test (each runs a single
# iteration) — keeps `check` fast while still compiling and exercising the
# bench bodies.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./internal/... .

# Machine-readable benchmarks for the repo's perf trajectory: the PR 2
# metrics-engine suite (which since PR 6 includes the torus and cylinder
# guest families on the 64³ shape), the PR 3 server-path handlers (cached
# vs uncached /v1/embed via httptest), the PR 4 observability overhead
# pairs (Measure vs MeasureTraced, cached handler vs tracing-off vs
# ?debug=trace), the PR 5 batch-job end-to-end throughput (submit →
# chunks → checkpoints → finish, reported as shapes/sec), the PR 7 plan
# tiers (closed-form classifier, census-mode classification throughput,
# artifact lookup, and the resolver-level closed_form / artifact / compute
# split), and the PR 8 fabric dispatch scaling (coordinator chunk throughput
# against 1/2/4 fixed-service-time peers — the peers=2/peers=1 chunks/sec
# ratio is the 2-worker scaling factor), the PR 9 SSE fanout (events/sec
# into 1/16/128 live subscribers) and the PR 9 loadtest mix (client-side
# p50/p95/p99 + shed/error rates against a booted server, via the smoke
# script in BENCH=1 mode); since PR 10 the embed suite also covers the
# wirelength accumulator inside the fused pass (same 8 allocs/op budget);
# see EXPERIMENTS.md for the recorded numbers.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkMeasure|BenchmarkLinkLoads' -benchmem ./internal/embed; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEmbedHandler|BenchmarkPlanTier|BenchmarkSSEFanout' -benchmem ./internal/server; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCensusJob|BenchmarkPlanSweepJob' -benchmem ./internal/jobs; \
	  $(GO) test -run '^$$' -bench 'BenchmarkClassify' -benchmem ./internal/core; \
	  $(GO) test -run '^$$' -bench 'BenchmarkDispatch' ./internal/fabric; \
	  $(GO) test -run '^$$' -bench . -benchmem ./internal/artifact; \
	  BENCH=1 sh scripts/loadtest_smoke.sh; } \
	  | $(GO) run ./cmd/benchjson > BENCH_PR10.json

# Build embedserver, boot it on a random port, hit /healthz and /v1/embed,
# and check it drains cleanly on SIGTERM.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end observability check: debug-traced requests, /metrics gauges,
# the pprof/expvar debug listener, the JSON access log and embedctl
# explain/trace.
obs-smoke:
	sh scripts/obs_smoke.sh

# Crash-resilience check for the batch-job subsystem: submit a census via
# embedctl, SIGKILL the server mid-run, restart on the same -data-dir, and
# require the resumed job's result stream to be byte-identical to an
# uninterrupted run.
jobs-smoke:
	sh scripts/jobs_smoke.sh

# End-to-end check of the plan-artifact tier chain: embedctl artifact
# build/inspect/verify on a small domain, embedserver -plan-artifact, and
# /v1/plan answering with artifact / closed_form / computed / cache sources
# (with the per-tier /metrics counters to prove it).
artifact-smoke:
	sh scripts/artifact_smoke.sh

# End-to-end check of the distributed sweep fabric: coordinator + two worker
# embedservers over a shared secret, a -distributed census sharded across
# them, one worker SIGKILLed mid-run, and the folded result stream compared
# byte-for-byte against a single-node run.
fabric-smoke:
	sh scripts/fabric_smoke.sh

# Regenerate the Grafana dashboard pack from the Go definitions in
# internal/dash.  Every panel query is validated against
# server.MetricFamilies() at render time.
dash:
	$(GO) run ./cmd/dashgen -out deploy/grafana/dashboards

# Fail when deploy/grafana/dashboards drifted from internal/dash — the
# dashboards-as-code gate: metric renames must update the dashboards in
# the same change.
dash-check:
	$(GO) run ./cmd/dashgen -check deploy/grafana/dashboards

# Replayable seeded traffic mix against a booted server: plan/embed/compare
# plus a batch job, asserting zero errors and benchjson-parseable
# percentile rows.
loadtest-smoke:
	sh scripts/loadtest_smoke.sh

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l -w .
