// Package repro embeds multidimensional meshes in Boolean cubes
// (hypercubes) by graph decomposition, reproducing
//
//	Ching-Tien Ho and S. Lennart Johnsson,
//	"Embedding Three-Dimensional Meshes in Boolean Cubes by Graph
//	Decomposition", ICPP 1990.
//
// The facade exposes the library's main entry points; the construction
// machinery lives in the internal packages (core, embed, wrap, manyone,
// stats — see DESIGN.md for the map).
//
// # Quick start
//
//	shape := repro.MustShape("5x6x7")
//	result := repro.Embed(shape)
//	fmt.Println(result.Plan)           // how the embedding is built
//	fmt.Println(result.Metrics)        // expansion, dilation, congestion
//	host := result.Embedding.Map[idx]  // cube address of a mesh node
//
// Every embedding targets the minimal cube (⌈log₂|V|⌉ dimensions).  Shapes
// whose decomposition matches one of the paper's methods get guaranteed
// dilation ≤ 2; the rest fall back to a valid snake embedding whose
// dilation is measured and reported.
package repro

import (
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/manyone"
	"repro/internal/mesh"
	"repro/internal/wrap"
)

// Shape is the vector of mesh axis lengths; see mesh.Shape.
type Shape = mesh.Shape

// Family identifies a guest topology family: how a shape's node set is
// turned into a graph.  See the Family* constants for the registered
// families.
type Family = guest.Family

// The registered guest families.
const (
	FamilyMesh     = guest.Mesh     // plain mesh (the paper's guest)
	FamilyTorus    = guest.Torus    // wraparound on every axis (Section 6)
	FamilyCylinder = guest.Cylinder // wraparound on the last axis only
	FamilyTree     = guest.Tree     // complete binary tree on 2^h−1 nodes
)

// ParseFamily resolves a family wire name ("mesh", "torus", "cylinder",
// "tree"); the empty string means FamilyMesh.
func ParseFamily(name string) (Family, error) {
	d, err := guest.ByName(name)
	if err != nil {
		return FamilyMesh, err
	}
	return d.Family, nil
}

// Embedding maps a guest mesh into a Boolean cube; see embed.Embedding.
type Embedding = embed.Embedding

// Metrics bundles the quality measures of an embedding.
type Metrics = embed.Metrics

// Plan is a construction tree produced by the planner.
type Plan = core.Plan

// Options tunes the planner; the zero value disables the solver fallback.
type Options = core.Options

// ParseShape parses "5x6x7"-style shape strings.
func ParseShape(s string) (Shape, error) { return mesh.ParseShape(s) }

// MustShape is ParseShape panicking on error, for literals in examples.
func MustShape(s string) Shape {
	out, err := mesh.ParseShape(s)
	if err != nil {
		panic(err)
	}
	return out
}

// Result is an embedding together with its plan and measured metrics.
type Result struct {
	Plan      *Plan
	Embedding *Embedding
	Metrics   Metrics
}

// CacheStats reports a Planner's plan-cache counters.
type CacheStats = core.CacheStats

// CostModel ranks competing candidate plans; see DefaultCostModel and
// NewLexCost.
type CostModel = core.CostModel

// CostKey names one component of a lexicographic cost model.
type CostKey = core.CostKey

// The lexicographic cost-model components, in the default order.
const (
	CostExpansion  = core.CostExpansion
	CostDilation   = core.CostDilation
	CostFactors    = core.CostFactors
	CostCongestion = core.CostCongestion
	CostDepth      = core.CostDepth
)

// DefaultCostModel is the planner's standard plan preference: minimal
// expansion, then dilation bound, factor count, congestion bound, depth.
var DefaultCostModel = core.DefaultCostModel

// NewLexCost builds a lexicographic cost model over the given keys, for
// Options.Cost.
func NewLexCost(keys ...CostKey) CostModel { return core.NewLexCost(keys...) }

// Planner plans shapes through a shared, concurrency-safe plan cache keyed
// by canonical (axis-sorted) shape: all permutations of a shape, and every
// sub-shape the strategies revisit, share one cache entry.  One Planner may
// be used from many goroutines; plans it returns are never aliased to cache
// state.
type Planner struct {
	p *core.Planner
}

// NewPlanner returns a caching planner with the given options.
func NewPlanner(opts Options) *Planner { return &Planner{p: core.NewPlanner(opts)} }

// NewUncachedPlanner returns a planner that plans identically to
// NewPlanner but memoizes nothing — the reference for cache-equivalence
// tests and benchmarks.
func NewUncachedPlanner(opts Options) *Planner {
	return &Planner{p: core.NewUncachedPlanner(opts)}
}

// Plan returns a minimal-expansion plan for the shape without building it.
func (pl *Planner) Plan(shape Shape) *Plan { return pl.p.Plan(shape) }

// TryPlan is Plan returning shape-validation failures as errors instead of
// panicking, for untrusted input (servers, RPC boundaries).
func (pl *Planner) TryPlan(shape Shape) (*Plan, error) { return pl.p.TryPlan(shape) }

// PlanFamily plans the guest (family, shape) through the shared cache; it
// panics when the shape is not a valid member of the family (TryPlanFamily
// returns the error instead).  PlanFamily(FamilyMesh, s) == Plan(s).
func (pl *Planner) PlanFamily(f Family, shape Shape) *Plan { return pl.p.PlanGuest(f, shape) }

// TryPlanFamily is PlanFamily returning guest-validation failures as
// errors, for untrusted input.
func (pl *Planner) TryPlanFamily(f Family, shape Shape) (*Plan, error) {
	return pl.p.TryPlanGuest(f, shape)
}

// EmbedFamily plans, builds and measures a guest of the family in one call.
func (pl *Planner) EmbedFamily(f Family, shape Shape) Result {
	plan := pl.p.PlanGuest(f, shape)
	e := plan.Build()
	return Result{Plan: plan, Embedding: e, Metrics: e.Measure()}
}

// Embed plans, builds and measures in one call.
func (pl *Planner) Embed(shape Shape) Result {
	plan := pl.p.Plan(shape)
	e := plan.Build()
	return Result{Plan: plan, Embedding: e, Metrics: e.Measure()}
}

// CacheStats returns the planner's cache counters (all zero when built by
// NewUncachedPlanner).
func (pl *Planner) CacheStats() CacheStats { return pl.p.CacheStats() }

// defaultPlanner backs Embed: one process-wide cache under default options.
var defaultPlanner = NewPlanner(core.DefaultOptions)

// Embed builds a minimal-expansion embedding of the mesh into its minimal
// Boolean cube using the graph-decomposition planner (methods 1-4 of the
// paper plus solver/snake fallbacks) with default options.  All Embed
// calls share one cached Planner; use NewPlanner for an isolated cache or
// custom options.
func Embed(shape Shape) Result {
	return defaultPlanner.Embed(shape)
}

// EmbedWith is Embed with explicit planner options (no shared cache).
func EmbedWith(shape Shape, opts Options) Result {
	return NewPlanner(opts).Embed(shape)
}

// EmbedGray builds the classical Gray-code embedding (dilation one,
// congestion one, expansion Π⌈ℓᵢ⌉₂/Πℓᵢ — minimal only when
// shape.GrayMinimal() holds).  It is the baseline the paper improves on.
func EmbedGray(shape Shape) Result {
	e := embed.Gray(shape)
	return Result{Plan: nil, Embedding: e, Metrics: e.Measure()}
}

// EmbedTorus builds a minimal-expansion embedding of the wraparound mesh
// using the constructions of Section 6 (cyclic Gray codes, quartering,
// halving, snake fallback).  It is EmbedFamily(FamilyTorus, shape) without
// the plan tree, kept for compatibility.
func EmbedTorus(shape Shape) Result {
	e := wrap.Embed(shape, core.DefaultOptions)
	return Result{Plan: nil, Embedding: e, Metrics: e.Measure()}
}

// EmbedFamily builds a minimal-expansion embedding of the guest
// (family, shape) with default options, sharing the process-wide planner
// cache.  EmbedFamily(FamilyMesh, s) == Embed(s).
func EmbedFamily(f Family, shape Shape) Result {
	return defaultPlanner.EmbedFamily(f, shape)
}

// EmbedManyToOne embeds the mesh into an n-cube smaller than the mesh with
// dilation one and load factor within a factor of two of optimal, per
// Corollary 5.  ok is false when no axis cover satisfies the corollary's
// conditions.
func EmbedManyToOne(shape Shape, n int) (Result, bool) {
	e, _, ok := manyone.Corollary5(shape, n)
	if !ok {
		return Result{}, false
	}
	return Result{Plan: nil, Embedding: e, Metrics: e.Measure()}, true
}

// Contract collapses factors[i] consecutive indices along axis i of the
// base embedding's guest (Lemma 5): load multiplies by Πfactors, dilation
// is unchanged.
func Contract(base *Embedding, factors Shape) *Embedding {
	return manyone.Contract(base, factors)
}

// Product composes two mesh embeddings into an embedding of the
// componentwise-product mesh (Theorem 3 / Corollary 2): dilation and
// congestion are the maxima over the factors, expansion multiplies.
func Product(e1, e2 *Embedding) *Embedding { return core.Product(e1, e2) }

// SubMesh restricts an embedding to a componentwise-smaller guest.
func SubMesh(e *Embedding, target Shape) *Embedding { return core.SubMesh(e, target) }
