package repro_test

import (
	"fmt"

	"repro"
)

// The basic flow: plan, build, inspect.
func ExampleEmbed() {
	r := repro.Embed(repro.MustShape("12x20"))
	fmt.Println(r.Plan)
	fmt.Println("minimal:", r.Metrics.Minimal, "dilation:", r.Metrics.Dilation)
	// Output:
	// (3x5[direct] ⊗ 4x4[gray])
	// minimal: true dilation: 2
}

// The Gray-code baseline wastes up to half the cube on non-power-of-two
// axes but keeps dilation one.
func ExampleEmbedGray() {
	r := repro.EmbedGray(repro.MustShape("12x20"))
	fmt.Println("cube dimension:", r.Embedding.N, "minimal:", r.Metrics.Minimal)
	// Output:
	// cube dimension: 9 minimal: false
}

// Wraparound meshes embed with the §6 constructions.
func ExampleEmbedTorus() {
	r := repro.EmbedTorus(repro.MustShape("6x10"))
	fmt.Println("dilation:", r.Metrics.Dilation, "minimal:", r.Metrics.Minimal)
	// Output:
	// dilation: 2 minimal: true
}

// Meshes larger than the machine embed many-to-one per Corollary 5.
func ExampleEmbedManyToOne() {
	r, ok := repro.EmbedManyToOne(repro.MustShape("19x19"), 5)
	fmt.Println(ok, "load:", r.Metrics.LoadFactor, "dilation:", r.Metrics.Dilation)
	// Output:
	// true load: 15 dilation: 1
}

// Theorem 3: the product of embeddings embeds the product mesh with the
// max of the factor dilations.
func ExampleProduct() {
	a := repro.Embed(repro.MustShape("3x5")).Embedding     // dilation 2
	b := repro.EmbedGray(repro.MustShape("8x8")).Embedding // dilation 1
	p := repro.Product(a, b)
	fmt.Println(p.Guest, "dilation:", p.Dilation())
	// Output:
	// 24x40 dilation: 2
}
