// Package reshape implements the classical grid-reshaping baselines of
// Section 3.2 — embedding an ℓ1×ℓ2 mesh into a power-of-two N1×N2 mesh and
// then applying a Gray code — against which the paper's graph-decomposition
// technique is compared.  Step embedding (row-major rewrap) and snake
// rewrap are position-arithmetic reshapes with measured dilation; folding
// is expressed through graph decomposition and achieves dilation one into
// the folded three-dimensional mesh.
package reshape

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/gray"
	"repro/internal/mesh"
)

// hostFor picks the canonical power-of-two host grid for a guest: the host
// row count is the largest power of two ≤ ℓ1 and the column count fills the
// minimal cube, N1·N2 = ⌈ℓ1ℓ2⌉₂.
func hostFor(guest mesh.Shape) mesh.Shape {
	if guest.Dims() != 2 {
		panic("reshape: two-dimensional guests only")
	}
	n := guest.MinCubeDim()
	r := 0
	for (1 << uint(r+1)) <= guest[0] {
		r++
	}
	if r > n {
		r = n
	}
	return mesh.Shape{1 << uint(r), 1 << uint(n-r)}
}

// RowMajor embeds the guest into its minimal cube by the step-embedding
// rewrap: guest position p = r·ℓ2 + c (row major) lands at host grid cell
// (p / N2, p mod N2), and the host grid is Gray-coded per axis.  Guest rows
// "step" through the host grid; the dilation depends on ℓ2 mod N2 and is
// measured, not bounded.
func RowMajor(guest mesh.Shape) *embed.Embedding {
	host := hostFor(guest)
	g := gray.NewProduct(host...)
	e := embed.New(guest, guest.MinCubeDim())
	n2 := host[1]
	for idx := range e.Map {
		// guest index: axis 0 fastest (column index c is axis 0 here,
		// matching mesh.Shape order: coord[0] ∈ [0,ℓ1) rows? —
		// mesh.Shape{ℓ1, ℓ2} has axis 0 of length ℓ1. Use row-major over
		// (axis1, axis0): p = coord1*ℓ0 + coord0.
		c0 := idx % guest[0]
		c1 := idx / guest[0]
		p := c1*guest[0] + c0
		e.Map[idx] = cube.Node(g.Code([]int{p / n2 % host[0], p % n2}))
	}
	// p/n2 can exceed host[0]−1 only if host too small; guard above keeps
	// N1·N2 = ⌈|V|⌉₂ ≥ |V|, so p < N1·N2 and p/n2 < N1.
	return e
}

// Snake embeds the guest into its minimal cube by rewrapping the guest's
// boustrophedon order onto the host grid's boustrophedon order, Gray-coded.
// Snake-consecutive guest nodes stay adjacent (dilation one along the
// snake); cross-snake mesh edges are measured.
func Snake(guest mesh.Shape) *embed.Embedding {
	host := hostFor(guest)
	g := gray.NewProduct(host...)
	e := embed.New(guest, guest.MinCubeDim())
	guestOrder := core.SnakeOrder(guest)
	hostOrder := core.SnakeOrder(host)
	coord := make([]int, 2)
	for pos, gi := range guestOrder {
		host.CoordInto(hostOrder[pos], coord)
		e.Map[gi] = cube.Node(g.Code(coord))
	}
	return e
}

// Fold embeds the guest by folding axis 1 into c strips: the guest is a
// subgraph of the three-dimensional mesh ℓ1 × c × ⌈ℓ2/c⌉ (consecutive
// strips reflected), which is then embedded by the decomposition planner.
// The fold itself costs no dilation — strip-boundary neighbors coincide
// across the reflection — so the result's dilation is that of the
// three-dimensional plan.
func Fold(guest mesh.Shape, c int) *embed.Embedding {
	if guest.Dims() != 2 {
		panic("reshape: two-dimensional guests only")
	}
	if c < 1 || c > guest[1] {
		panic(fmt.Sprintf("reshape: fold factor %d out of range", c))
	}
	w := (guest[1] + c - 1) / c
	folded := mesh.Shape{guest[0], c, w}
	plan := core.PlanShape(folded, core.Options{})
	fe := plan.Build()
	e := embed.New(guest, fe.N)
	coord := make([]int, 3)
	for idx := range e.Map {
		c0 := idx % guest[0]
		y := idx / guest[0]
		q := y / w
		j := y % w
		if q&1 == 1 { // reflect odd strips so strip seams coincide
			j = w - 1 - j
		}
		coord[0], coord[1], coord[2] = c0, q, j
		e.Map[idx] = fe.Map[folded.Index(coord)]
	}
	return e
}

// BestFold tries all fold factors that keep the folded mesh within the
// guest's minimal cube and returns the embedding with the smallest measured
// dilation (ties broken toward smaller average dilation).
func BestFold(guest mesh.Shape) *embed.Embedding {
	var best *embed.Embedding
	bestD, bestAvg := int(^uint(0)>>1), 0.0
	n := guest.MinCubeDim()
	for c := 1; c <= guest[1]; c++ {
		w := (guest[1] + c - 1) / c
		folded := mesh.Shape{guest[0], c, w}
		if folded.MinCubeDim() != n {
			continue // folding wasted space beyond the minimal cube
		}
		e := Fold(guest, c)
		if e.N != n {
			continue
		}
		d, avg := e.Dilation(), e.AvgDilation()
		if d < bestD || (d == bestD && avg < bestAvg) {
			best, bestD, bestAvg = e, d, avg
		}
	}
	return best
}

// Comparison is one row of the reshaping-vs-decomposition ablation.
type Comparison struct {
	Guest       string
	Technique   string
	CubeDim     int
	Minimal     bool
	Dilation    int
	AvgDilation float64
	Wirelength  int64
	Congestion  int
}

// Compare builds the guest with every technique and returns the rows:
// row-major step rewrap, snake rewrap, best fold, and the decomposition
// planner.
func Compare(guest mesh.Shape) []Comparison {
	row := func(name string, e *embed.Embedding) Comparison {
		m := e.Measure()
		return Comparison{
			Guest:       guest.String(),
			Technique:   name,
			CubeDim:     m.CubeDim,
			Minimal:     e.Minimal(),
			Dilation:    m.Dilation,
			AvgDilation: m.AvgDilation,
			Wirelength:  m.Wirelength,
			Congestion:  m.Congestion,
		}
	}
	out := []Comparison{
		row("rowmajor", RowMajor(guest)),
		row("snake", Snake(guest)),
	}
	if f := BestFold(guest); f != nil {
		out = append(out, row("fold", f))
	}
	out = append(out, row("decomposition", core.PlanShape(guest, core.DefaultOptions).Build()))
	return out
}
