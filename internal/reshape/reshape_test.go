package reshape

import (
	"testing"

	"repro/internal/mesh"
)

func TestHostFor(t *testing.T) {
	cases := []struct {
		guest mesh.Shape
		want  mesh.Shape
	}{
		{mesh.Shape{3, 5}, mesh.Shape{2, 8}},  // 15 → 16, rows 2
		{mesh.Shape{5, 6}, mesh.Shape{4, 8}},  // 30 → 32
		{mesh.Shape{7, 9}, mesh.Shape{4, 16}}, // 63 → 64
		{mesh.Shape{8, 8}, mesh.Shape{8, 8}},  // exact
		{mesh.Shape{11, 11}, mesh.Shape{8, 16}},
	}
	for _, c := range cases {
		if got := hostFor(c.guest); !got.Equal(c.want) {
			t.Errorf("hostFor(%v) = %v, want %v", c.guest, got, c.want)
		}
	}
}

func TestRowMajorValidMinimal(t *testing.T) {
	for _, s := range []mesh.Shape{{3, 5}, {5, 6}, {7, 9}, {11, 11}, {8, 8}, {2, 2}, {1, 7}} {
		e := RowMajor(s)
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !e.Minimal() {
			t.Errorf("%v: not minimal", s)
		}
	}
}

func TestSnakeValidMinimal(t *testing.T) {
	for _, s := range []mesh.Shape{{3, 5}, {5, 6}, {7, 9}, {11, 11}, {4, 4}} {
		e := Snake(s)
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !e.Minimal() {
			t.Errorf("%v: not minimal", s)
		}
	}
}

func TestRowMajorExactPowerIsGraylike(t *testing.T) {
	// For a power-of-two guest matching its host, the rewrap is a perfect
	// dilation-1 embedding.
	e := RowMajor(mesh.Shape{8, 8})
	if e.Dilation() != 1 {
		t.Errorf("8x8 row-major dilation %d, want 1", e.Dilation())
	}
}

func TestFoldValid(t *testing.T) {
	for _, c := range []int{1, 2, 3} {
		e := Fold(mesh.Shape{5, 6}, c)
		if err := e.Verify(); err != nil {
			t.Fatalf("fold %d: %v", c, err)
		}
	}
}

func TestFoldSeamsCostNothing(t *testing.T) {
	// Folding by c=2 with Gray-minimal folded shape: the guest's
	// strip-boundary edges must not exceed the folded plan's dilation.
	guest := mesh.Shape{3, 10}
	e := Fold(guest, 2) // folded 3x2x5, ⌈30⌉₂ = 32 = 4·2·8 ✓ gray-minimal? 4·2·8 = 64 ≠ 32
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	// validity is the main claim; dilation recorded for info
	t.Logf("3x10 fold 2: %s", e.Measure())
}

func TestBestFoldFindsMinimalCube(t *testing.T) {
	for _, s := range []mesh.Shape{{5, 6}, {3, 10}, {7, 9}, {6, 10}} {
		e := BestFold(s)
		if e == nil {
			t.Fatalf("%v: no fold stayed minimal", s)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !e.Minimal() {
			t.Errorf("%v: best fold not minimal", s)
		}
	}
}

func TestCompareAblation(t *testing.T) {
	rows := Compare(mesh.Shape{5, 6})
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTech := map[string]Comparison{}
	for _, r := range rows {
		byTech[r.Technique] = r
		if !r.Minimal {
			t.Errorf("%s not minimal: %+v", r.Technique, r)
		}
	}
	dec, ok := byTech["decomposition"]
	if !ok {
		t.Fatal("missing decomposition row")
	}
	if dec.Dilation > 2 {
		t.Errorf("decomposition dilation %d on 5x6", dec.Dilation)
	}
	// The decomposition technique must be at least as good as the
	// position-arithmetic rewraps on max dilation.
	for _, tech := range []string{"rowmajor", "snake"} {
		if r, ok := byTech[tech]; ok && r.Dilation < dec.Dilation {
			t.Errorf("%s beats decomposition on 5x6: %d < %d", tech, r.Dilation, dec.Dilation)
		}
	}
	t.Logf("5x6 ablation: %+v", rows)
}

func TestFoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Fold(mesh.Shape{5, 6}, 0)
}

func BenchmarkRowMajor(b *testing.B) {
	s := mesh.Shape{31, 33}
	for i := 0; i < b.N; i++ {
		_ = RowMajor(s)
	}
}

func BenchmarkCompare(b *testing.B) {
	s := mesh.Shape{7, 9}
	for i := 0; i < b.N; i++ {
		_ = Compare(s)
	}
}
