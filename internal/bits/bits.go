// Package bits provides the small bit-arithmetic helpers used throughout the
// embedding library: Hamming distance, power-of-two roundings and base-2
// logarithms in the forms used by the paper (⌈x⌉₂ = 2^⌈log₂ x⌉).
package bits

import "math/bits"

// Hamming returns the Hamming distance between x and y, i.e. the number of
// bit positions in which they differ.  It is the graph distance between two
// nodes of a Boolean cube.
func Hamming(x, y uint64) int {
	return bits.OnesCount64(x ^ y)
}

// OnesCount returns the number of one bits in x.
func OnesCount(x uint64) int {
	return bits.OnesCount64(x)
}

// CeilLog2 returns ⌈log₂ x⌉ for x ≥ 1.  CeilLog2(1) == 0.
// It panics for x < 1: the paper's ⌈·⌉₂ operator is only defined on
// positive mesh cardinalities.
func CeilLog2(x uint64) int {
	if x < 1 {
		panic("bits: CeilLog2 of non-positive value")
	}
	return bits.Len64(x - 1)
}

// FloorLog2 returns ⌊log₂ x⌋ for x ≥ 1.  FloorLog2(1) == 0.
func FloorLog2(x uint64) int {
	if x < 1 {
		panic("bits: FloorLog2 of non-positive value")
	}
	return bits.Len64(x) - 1
}

// CeilPow2 returns ⌈x⌉₂ = 2^⌈log₂ x⌉, the smallest power of two ≥ x.
// This is the paper's minimal-cube cardinality for a graph of x nodes.
func CeilPow2(x uint64) uint64 {
	return 1 << CeilLog2(x)
}

// FloorPow2 returns 2^⌊log₂ x⌋, the largest power of two ≤ x.
func FloorPow2(x uint64) uint64 {
	return 1 << FloorLog2(x)
}

// IsPow2 reports whether x is a power of two (x ≥ 1).
func IsPow2(x uint64) bool {
	return x >= 1 && x&(x-1) == 0
}

// Bit returns bit m of x (0 or 1), with bit 0 the least significant.
func Bit(x uint64, m int) uint64 {
	return (x >> uint(m)) & 1
}

// SetBit returns x with bit m set to b (b must be 0 or 1).
func SetBit(x uint64, m int, b uint64) uint64 {
	return (x &^ (1 << uint(m))) | (b << uint(m))
}

// FlipBit returns x with bit m inverted.
func FlipBit(x uint64, m int) uint64 {
	return x ^ (1 << uint(m))
}

// DiffBits returns the positions of the bits in which x and y differ, in
// increasing order.  len(DiffBits(x,y)) == Hamming(x,y).
func DiffBits(x, y uint64) []int {
	d := x ^ y
	out := make([]int, 0, bits.OnesCount64(d))
	for d != 0 {
		b := bits.TrailingZeros64(d)
		out = append(out, b)
		d &= d - 1
	}
	return out
}
