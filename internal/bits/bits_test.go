package bits

import (
	"testing"
	"testing/quick"
)

func TestHamming(t *testing.T) {
	cases := []struct {
		x, y uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0b1010, 0b0101, 4},
		{0xFFFF, 0, 16},
		{0xFFFFFFFFFFFFFFFF, 0, 64},
		{7, 7, 0},
		{0b100, 0b101, 1},
	}
	for _, c := range cases {
		if got := Hamming(c.x, c.y); got != c.want {
			t.Errorf("Hamming(%b,%b) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestHammingMetricAxioms(t *testing.T) {
	// Identity, symmetry and triangle inequality on random triples.
	f := func(x, y, z uint64) bool {
		if Hamming(x, x) != 0 {
			return false
		}
		if Hamming(x, y) != Hamming(y, x) {
			return false
		}
		return Hamming(x, z) <= Hamming(x, y)+Hamming(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingTranslationInvariance(t *testing.T) {
	// Hamming distance is invariant under XOR translation, the cube's
	// vertex-transitivity.
	f := func(x, y, t uint64) bool {
		return Hamming(x, y) == Hamming(x^t, y^t)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{511, 9}, {512, 9}, {513, 10}, {1 << 40, 40}, {1<<40 + 1, 41},
	}
	for _, c := range cases {
		if got := CeilLog2(c.x); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{511, 8}, {512, 9}, {513, 9},
	}
	for _, c := range cases {
		if got := FloorLog2(c.x); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ x, want uint64 }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {15, 16}, {16, 16}, {17, 32},
		{27, 32}, {63, 64}, {121, 128}, {125, 128},
	}
	for _, c := range cases {
		if got := CeilPow2(c.x); got != c.want {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCeilFloorPow2Properties(t *testing.T) {
	f := func(x uint64) bool {
		x = x%(1<<50) + 1 // keep in range, positive
		c, fl := CeilPow2(x), FloorPow2(x)
		if !IsPow2(c) || !IsPow2(fl) {
			return false
		}
		if c < x || fl > x {
			return false
		}
		if c >= 2*x && x > 0 { // c is the *smallest* power of two >= x
			return false
		}
		if 2*fl <= x { // fl is the *largest* power of two <= x
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, x := range []uint64{1, 2, 4, 8, 1024, 1 << 62} {
		if !IsPow2(x) {
			t.Errorf("IsPow2(%d) = false, want true", x)
		}
	}
	for _, x := range []uint64{0, 3, 5, 6, 7, 9, 1023, 1<<62 + 1} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true, want false", x)
		}
	}
}

func TestBitOps(t *testing.T) {
	x := uint64(0b1010)
	if Bit(x, 0) != 0 || Bit(x, 1) != 1 || Bit(x, 3) != 1 || Bit(x, 4) != 0 {
		t.Errorf("Bit extraction wrong for %b", x)
	}
	if got := SetBit(x, 0, 1); got != 0b1011 {
		t.Errorf("SetBit(%b,0,1) = %b", x, got)
	}
	if got := SetBit(x, 1, 0); got != 0b1000 {
		t.Errorf("SetBit(%b,1,0) = %b", x, got)
	}
	if got := FlipBit(x, 3); got != 0b0010 {
		t.Errorf("FlipBit(%b,3) = %b", x, got)
	}
}

func TestSetBitRoundTrip(t *testing.T) {
	f := func(x uint64, m uint8, b bool) bool {
		pos := int(m % 64)
		var bit uint64
		if b {
			bit = 1
		}
		y := SetBit(x, pos, bit)
		return Bit(y, pos) == bit && (y^x)&^(1<<uint(pos)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffBits(t *testing.T) {
	got := DiffBits(0b1010, 0b0110)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("DiffBits = %v, want [2 3]", got)
	}
	if len(DiffBits(5, 5)) != 0 {
		t.Errorf("DiffBits(x,x) should be empty")
	}
}

func TestDiffBitsMatchesHamming(t *testing.T) {
	f := func(x, y uint64) bool {
		d := DiffBits(x, y)
		if len(d) != Hamming(x, y) {
			return false
		}
		// Flipping all listed bits of x must yield y.
		z := x
		for _, b := range d {
			z = FlipBit(z, b)
		}
		return z == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilLog2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilLog2(0) did not panic")
		}
	}()
	CeilLog2(0)
}

func BenchmarkHamming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hamming(uint64(i), uint64(i)*2654435761)
	}
}

func BenchmarkCeilPow2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = CeilPow2(uint64(i) + 1)
	}
}
