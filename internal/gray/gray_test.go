package gray

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

func TestEncodeSmall(t *testing.T) {
	want := []uint64{0, 1, 3, 2, 6, 7, 5, 4, 12, 13, 15, 14, 10, 11, 9, 8}
	for i, w := range want {
		if got := Encode(uint64(i)); got != w {
			t.Errorf("Encode(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestDecodeInvertsEncode(t *testing.T) {
	f := func(x uint64) bool { return Decode(Encode(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x uint64) bool { return Encode(Decode(x)) == x }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeAdjacency(t *testing.T) {
	// Consecutive ranks are cube neighbors.
	f := func(x uint64) bool {
		if x == ^uint64(0) {
			x--
		}
		return bits.Hamming(Encode(x), Encode(x+1)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeCyclic(t *testing.T) {
	// The code is cyclic on every power-of-two domain.
	for n := 1; n <= 20; n++ {
		last := uint64(1)<<uint(n) - 1
		if d := bits.Hamming(Encode(0), Encode(last)); d != 1 {
			t.Errorf("n=%d: Hamming(G(0),G(2^n-1)) = %d, want 1", n, d)
		}
	}
}

func TestEncodeBijectiveOnPrefix(t *testing.T) {
	// Encode is a bijection on [0, 2^n): x < 2^n implies Encode(x) < 2^n.
	for n := 0; n <= 12; n++ {
		seen := make(map[uint64]bool)
		lim := uint64(1) << uint(n)
		for x := uint64(0); x < lim; x++ {
			g := Encode(x)
			if g >= lim {
				t.Fatalf("Encode(%d) = %d escapes [0,%d)", x, g, lim)
			}
			if seen[g] {
				t.Fatalf("Encode not injective at %d", x)
			}
			seen[g] = true
		}
	}
}

func TestSequence(t *testing.T) {
	seq := Sequence(3)
	want := []uint64{0, 1, 3, 2, 6, 7, 5, 4}
	if len(seq) != len(want) {
		t.Fatalf("Sequence(3) length %d, want %d", len(seq), len(want))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("Sequence(3)[%d] = %d, want %d", i, seq[i], want[i])
		}
	}
}

func TestReflected(t *testing.T) {
	n := 3
	// Even y: plain Gray code; odd y: reversed traversal.
	for x := uint64(0); x < 8; x++ {
		if got := Reflected(0, x, n); got != Encode(x) {
			t.Errorf("Reflected(0,%d) = %d, want %d", x, got, Encode(x))
		}
		if got := Reflected(1, x, n); got != Encode(7-x) {
			t.Errorf("Reflected(1,%d) = %d, want %d", x, got, Encode(7-x))
		}
	}
}

func TestReflectedSeam(t *testing.T) {
	// The key property exploited by Corollary 2: along a guest axis of
	// length ℓ₂·2^n with coordinate z = y·2^n + x, the last cell of copy y
	// (x = 2^n-1) and the first cell of copy y+1 (x = 0) receive the SAME
	// inner codeword, so the seam edge's cost comes only from the outer
	// embedding of y.
	for n := 1; n <= 10; n++ {
		last := uint64(1)<<uint(n) - 1
		for y := uint64(0); y < 8; y++ {
			a := Reflected(y, last, n)
			b := Reflected(y+1, 0, n)
			if a != b {
				t.Errorf("n=%d y=%d: seam codewords %d != %d", n, y, a, b)
			}
		}
	}
}

func TestAxisAdjacency(t *testing.T) {
	for _, l := range []int{1, 2, 3, 5, 7, 12, 17, 100} {
		a := NewAxis(l)
		if a.Bits != bits.CeilLog2(uint64(l)) {
			t.Errorf("axis %d: Bits = %d", l, a.Bits)
		}
		for x := 0; x+1 < l; x++ {
			if d := bits.Hamming(a.Code(x), a.Code(x+1)); d != 1 {
				t.Errorf("axis %d: dilation at %d is %d", l, x, d)
			}
		}
	}
}

func TestProductCode(t *testing.T) {
	p := NewProduct(4, 8) // 2 + 3 bits
	if p.Bits() != 5 {
		t.Fatalf("Bits = %d, want 5", p.Bits())
	}
	// Moving one step along either axis flips exactly one bit.
	for x0 := 0; x0 < 4; x0++ {
		for x1 := 0; x1 < 8; x1++ {
			c := p.Code([]int{x0, x1})
			if x0+1 < 4 {
				c2 := p.Code([]int{x0 + 1, x1})
				if bits.Hamming(c, c2) != 1 {
					t.Errorf("axis0 step at (%d,%d): dist %d", x0, x1, bits.Hamming(c, c2))
				}
			}
			if x1+1 < 8 {
				c2 := p.Code([]int{x0, x1 + 1})
				if bits.Hamming(c, c2) != 1 {
					t.Errorf("axis1 step at (%d,%d): dist %d", x0, x1, bits.Hamming(c, c2))
				}
			}
		}
	}
}

func TestProductCodeInjective(t *testing.T) {
	p := NewProduct(3, 5, 7)
	seen := make(map[uint64][3]int)
	for a := 0; a < 3; a++ {
		for b := 0; b < 5; b++ {
			for c := 0; c < 7; c++ {
				code := p.Code([]int{a, b, c})
				if prev, dup := seen[code]; dup {
					t.Fatalf("collision: %v and %v -> %d", prev, [3]int{a, b, c}, code)
				}
				seen[code] = [3]int{a, b, c}
			}
		}
	}
}

func TestReflectedProductCode(t *testing.T) {
	p := NewProduct(4, 4)
	y := []int{1, 0} // axis 0 of the outer mesh is at an odd position
	got := p.ReflectedProductCode(y, []int{0, 2})
	want := Encode(3) | Encode(2)<<2 // axis0 reflected: index 0 -> 2^2-1-0 = 3
	if got != want {
		t.Errorf("ReflectedProductCode = %b, want %b", got, want)
	}
}

func TestAxisPanics(t *testing.T) {
	a := NewAxis(5)
	for _, bad := range []int{-1, 5, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Code(%d) did not panic", bad)
				}
			}()
			a.Code(bad)
		}()
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i))
	}
}

func BenchmarkDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Decode(uint64(i))
	}
}

func BenchmarkProductCode(b *testing.B) {
	p := NewProduct(512, 512, 512)
	x := []int{123, 456, 78}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x[0] = i & 511
		_ = p.Code(x)
	}
}
