// Package gray implements the binary-reflected Gray code and the reflected
// variants used by the graph-decomposition embedding of Ho and Johnsson.
//
// The binary-reflected Gray code G maps the integers 0..2^n-1 onto the nodes
// of an n-cube such that consecutive integers map to cube neighbors
// (Hamming distance one), and G(0) and G(2^n-1) are also neighbors, so the
// code is cyclic.  Encoding the index along each mesh axis in a Gray code
// yields a dilation-one embedding of any mesh with power-of-two axis lengths
// (Johnsson 1987, [15] in the paper).
package gray

import (
	"fmt"

	"repro/internal/bits"
)

// Encode returns the binary-reflected Gray code of x: G(x) = x XOR (x >> 1).
func Encode(x uint64) uint64 {
	return x ^ (x >> 1)
}

// Decode returns the rank of a Gray codeword, the inverse of Encode.
func Decode(g uint64) uint64 {
	x := g
	for s := uint(1); s < 64; s <<= 1 {
		x ^= x >> s
	}
	return x
}

// Reflected returns G̃(y, x) from Corollary 2 of the paper: the Gray code of
// x over n bits when y is even, and the Gray code of 2^n-1-x (the reflected
// traversal) when y is odd.  Traversing x = 0..2^n-1 with consecutive y
// values walks the axis forth and back, which keeps the seam between
// consecutive copies of the factor mesh at Hamming distance zero in the
// low-order bits.
func Reflected(y, x uint64, n int) uint64 {
	if y&1 == 0 {
		return Encode(x)
	}
	return Encode((uint64(1)<<uint(n) - 1) - x)
}

// Sequence returns the full n-bit Gray code sequence G(0), …, G(2^n-1).
// It panics if n < 0 or n > 30 (the sequence would not fit in memory).
func Sequence(n int) []uint64 {
	if n < 0 || n > 30 {
		panic(fmt.Sprintf("gray: Sequence dimension %d out of range", n))
	}
	seq := make([]uint64, 1<<uint(n))
	for i := range seq {
		seq[i] = Encode(uint64(i))
	}
	return seq
}

// Axis is a Gray code for one mesh axis: it encodes indices 0..Len-1 into
// Bits-bit codewords.  Len may be smaller than 2^Bits (the axis is padded to
// the next power of two); consecutive indices still map to cube neighbors.
type Axis struct {
	Len  int // number of valid indices (axis length)
	Bits int // codeword width, ⌈log₂ Len⌉
}

// NewAxis returns the Gray code axis for length ℓ ≥ 1, using ⌈log₂ ℓ⌉ bits.
func NewAxis(length int) Axis {
	if length < 1 {
		panic("gray: axis length must be ≥ 1")
	}
	return Axis{Len: length, Bits: bits.CeilLog2(uint64(length))}
}

// Code returns the codeword for index x (0 ≤ x < a.Len).
func (a Axis) Code(x int) uint64 {
	if x < 0 || x >= a.Len {
		panic(fmt.Sprintf("gray: axis index %d out of range [0,%d)", x, a.Len))
	}
	return Encode(uint64(x))
}

// ReflectedCode returns the codeword for index x when the enclosing product
// construction is at position y along the same axis of the outer mesh
// (Corollary 2's G̃).
func (a Axis) ReflectedCode(y, x int) uint64 {
	if x < 0 || x >= a.Len {
		panic(fmt.Sprintf("gray: axis index %d out of range [0,%d)", x, a.Len))
	}
	return Reflected(uint64(y), uint64(x), a.Bits)
}

// Product is a multi-axis Gray code: the codewords of the axes are
// concatenated, axis 0 occupying the least significant bits.  It is the
// embedding function φ₁ of Corollary 2 when every factor-axis length is a
// power of two, and the standard Gray-code mesh embedding otherwise
// (each axis padded to 2^Bits).
type Product struct {
	Axes []Axis
	n    int // total bits
}

// NewProduct builds a multi-axis Gray code for the given axis lengths.
func NewProduct(lengths ...int) *Product {
	p := &Product{Axes: make([]Axis, len(lengths))}
	for i, l := range lengths {
		p.Axes[i] = NewAxis(l)
		p.n += p.Axes[i].Bits
	}
	return p
}

// Bits returns the total codeword width, Σ ⌈log₂ ℓi⌉.
func (p *Product) Bits() int { return p.n }

// Code returns the concatenated codeword for the coordinate vector x.
// len(x) must equal the number of axes.
func (p *Product) Code(x []int) uint64 {
	if len(x) != len(p.Axes) {
		panic("gray: coordinate arity mismatch")
	}
	var out uint64
	shift := 0
	for i, a := range p.Axes {
		out |= a.Code(x[i]) << uint(shift)
		shift += a.Bits
	}
	return out
}

// ReflectedProductCode returns the concatenated codeword
// G̃(y₁,x₁) ‖ G̃(y₂,x₂) ‖ … of Corollary 2, with axis 0 in the least
// significant bits. y and x must have the same arity as the product.
func (p *Product) ReflectedProductCode(y, x []int) uint64 {
	if len(x) != len(p.Axes) || len(y) != len(p.Axes) {
		panic("gray: coordinate arity mismatch")
	}
	var out uint64
	shift := 0
	for i, a := range p.Axes {
		out |= a.ReflectedCode(y[i], x[i]) << uint(shift)
		shift += a.Bits
	}
	return out
}
