package gray_test

import (
	"fmt"

	"repro/internal/gray"
)

// Consecutive integers map to Boolean-cube neighbors.
func ExampleEncode() {
	for x := uint64(0); x < 8; x++ {
		fmt.Printf("%03b ", gray.Encode(x))
	}
	fmt.Println()
	// Output:
	// 000 001 011 010 110 111 101 100
}
