package guest

import (
	"sort"
	"testing"

	"repro/internal/mesh"
)

// conformanceShapes lists, per family, shapes that exercise the corners of
// the edge enumerations: single nodes, single axes, unit axes mixed with
// long ones, odd/even wrap lengths, and higher dimensions.  Every shape must
// pass the family's Validate, so the tree list is the 2^h−1 ladder.
func conformanceShapes(f Family) []mesh.Shape {
	if f == Tree {
		return []mesh.Shape{{1}, {3}, {7}, {15}, {31}, {63}}
	}
	return []mesh.Shape{
		{1}, {2}, {5}, {8},
		{1, 1}, {1, 6}, {4, 4}, {3, 5}, {2, 7},
		{1, 1, 1}, {2, 3, 4}, {5, 1, 3}, {3, 3, 3},
		{2, 2, 2, 2}, {1, 2, 1, 5},
	}
}

// edgeKey folds an edge into a comparable value; edges are emitted with
// both endpoints in 0..Nodes()−1, so U*Nodes+V is injective.
func edgeKey(s mesh.Shape, e mesh.Edge) int { return e.U*s.Nodes() + e.V }

func collectRange(d Desc, s mesh.Shape, lo, hi int) []int {
	var keys []int
	d.EachEdgeRange(s, lo, hi, func(e mesh.Edge) {
		keys = append(keys, edgeKey(s, e))
	})
	sort.Ints(keys)
	return keys
}

// TestConformanceEdgeCount checks the edge-count identity for every
// registered family: Edges(s) equals the number of edges the full
// enumeration emits, and every emitted edge has in-range distinct endpoints.
func TestConformanceEdgeCount(t *testing.T) {
	for _, d := range All() {
		for _, s := range conformanceShapes(d.Family) {
			if err := Validate(d.Family, s); err != nil {
				t.Fatalf("%v %s: shape invalid: %v", d.Family, s, err)
			}
			n := s.Nodes()
			count := 0
			seen := make(map[int]bool)
			d.EachEdgeRange(s, 0, n, func(e mesh.Edge) {
				count++
				if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
					t.Fatalf("%v %s: edge endpoint out of range: %+v", d.Family, s, e)
				}
				if e.U == e.V {
					t.Fatalf("%v %s: self-loop emitted: %+v", d.Family, s, e)
				}
				k := edgeKey(s, e)
				if seen[k] {
					t.Fatalf("%v %s: duplicate edge: %+v", d.Family, s, e)
				}
				seen[k] = true
			})
			if want := d.Edges(s); count != want {
				t.Errorf("%v %s: enumeration emitted %d edges, Edges() says %d",
					d.Family, s, count, want)
			}
		}
	}
}

// TestConformancePartition checks the EachEdgeRange sharding contract: for
// several split points, the union of the edges of the parts equals the full
// enumeration (disjointness falls out of the equal counts).
func TestConformancePartition(t *testing.T) {
	for _, d := range All() {
		for _, s := range conformanceShapes(d.Family) {
			n := s.Nodes()
			full := collectRange(d, s, 0, n)
			for _, parts := range [][]int{
				{0, n},
				{0, n / 2, n},
				{0, 1, n},
				{0, n - 1, n},
				{0, n / 3, 2 * n / 3, n},
			} {
				var got []int
				for i := 0; i+1 < len(parts); i++ {
					got = append(got, collectRange(d, s, parts[i], parts[i+1])...)
				}
				sort.Ints(got)
				if len(got) != len(full) {
					t.Fatalf("%v %s split %v: %d edges, full enumeration has %d",
						d.Family, s, parts, len(got), len(full))
				}
				for i := range got {
					if got[i] != full[i] {
						t.Fatalf("%v %s split %v: edge sets differ at %d", d.Family, s, parts, i)
					}
				}
			}
		}
	}
}

// TestConformanceCanonical checks canonical-form validity and idempotence:
// the axis map is a permutation reconstructing the original shape, the
// canonical shape is a fixed point of Canonical, and it validates.
func TestConformanceCanonical(t *testing.T) {
	for _, d := range All() {
		for _, s := range conformanceShapes(d.Family) {
			canon, axmap := d.Canonical(s)
			if len(canon) != len(s) || len(axmap) != len(s) {
				t.Fatalf("%v %s: canonical form %s / axmap %v wrong length", d.Family, s, canon, axmap)
			}
			used := make([]bool, len(s))
			for j, src := range axmap {
				if src < 0 || src >= len(s) || used[src] {
					t.Fatalf("%v %s: axmap %v is not a permutation", d.Family, s, axmap)
				}
				used[src] = true
				if canon[j] != s[src] {
					t.Fatalf("%v %s: canon[%d]=%d but s[axmap[%d]]=%d",
						d.Family, s, j, canon[j], j, s[src])
				}
			}
			if err := Validate(d.Family, canon); err != nil {
				t.Fatalf("%v %s: canonical form %s invalid: %v", d.Family, s, canon, err)
			}
			again, idmap := d.Canonical(canon)
			if again.String() != canon.String() {
				t.Errorf("%v %s: Canonical not idempotent: %s → %s", d.Family, s, canon, again)
			}
			for j, src := range idmap {
				if canon[j] != canon[src] {
					t.Errorf("%v %s: re-canonicalizing permuted axes of equal form", d.Family, s)
					break
				}
			}
		}
	}
}

// TestConformanceEdgeCountInvariantUnderCanonical checks that the canonical
// relabeling preserves the edge count — a cheap proxy for isomorphism that
// catches families whose Canonical sorts an axis it should not.
func TestConformanceEdgeCountInvariantUnderCanonical(t *testing.T) {
	for _, d := range All() {
		for _, s := range conformanceShapes(d.Family) {
			canon, _ := d.Canonical(s)
			if d.Edges(s) != d.Edges(canon) {
				t.Errorf("%v: %s has %d edges but canonical %s has %d",
					d.Family, s, d.Edges(s), canon, d.Edges(canon))
			}
		}
	}
}

// TestByName checks wire-name resolution including the empty-string default
// and rejection of unknown names.
func TestByName(t *testing.T) {
	for _, d := range All() {
		got, err := ByName(d.Family.String())
		if err != nil || got.Family != d.Family {
			t.Errorf("ByName(%q) = %v, %v", d.Family.String(), got.Family, err)
		}
	}
	if d, err := ByName(""); err != nil || d.Family != Mesh {
		t.Errorf("ByName(\"\") = %v, %v; want Mesh", d.Family, err)
	}
	if _, err := ByName("klein-bottle"); err == nil {
		t.Error("ByName accepted an unknown family")
	}
}

// TestValidateRejections checks the family-specific gates.
func TestValidateRejections(t *testing.T) {
	if err := Validate(Tree, mesh.Shape{6}); err == nil {
		t.Error("tree accepted 6 nodes (not 2^h-1)")
	}
	if err := Validate(Tree, mesh.Shape{3, 3}); err == nil {
		t.Error("tree accepted a 2-axis shape")
	}
	if err := Validate(Mesh, mesh.Shape{0, 4}); err == nil {
		t.Error("mesh accepted a zero-length axis")
	}
}
