// Package fabric is the distributed sweep fabric: a coordinator-side
// dispatcher that shards a job's chunk range across worker embedserver
// peers and folds the results back strictly in chunk-index order, so a
// distributed run is byte-identical to a single-node run of the same job.
//
// The package is split along the dispatch/transport seam (the decoupled-bus
// idiom): the scheduler (Dispatch) talks only to the Transport interface.
// The HTTP transport over the pkg/client SDK lives in the fabrichttp
// subpackage; an in-process Loopback transport runs chunks through an
// injected executor, which is what makes the byte-identity and kill-resume
// tests hermetic — and what lets a coordinator with zero live peers degrade
// to local execution instead of stalling.
//
// fabric deliberately imports only pkg/api.  The jobs layer imports fabric
// (never the reverse), and pkg/client's own tests exercise the jobs layer —
// so the client-backed transport must sit one package out (fabrichttp) or
// the test build becomes an import cycle.  The in-process executor behind
// Loopback is injected as a function for the same reason.
package fabric

import (
	"context"

	"repro/pkg/api"
)

// Transport executes chunks on one peer.  Implementations must be safe for
// concurrent use; Execute must be side-effect free from the coordinator's
// point of view (the dispatcher freely re-executes a chunk elsewhere after
// a failure, deduping at fold time).
type Transport interface {
	// Execute runs exactly one chunk and returns its deterministic output.
	Execute(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error)
	// Healthy probes the peer's liveness (the pool's health loop).
	Healthy(ctx context.Context) error
}

// Dialer turns a peer address into a Transport.  It must not block on the
// network — dialing is lazy, failures surface on first use.
type Dialer func(addr string) Transport

// ExecFunc is an in-process chunk executor (jobs.ExecuteChunk, or a test
// stub) behind a Loopback transport.
type ExecFunc func(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error)

// Loopback returns a Transport that executes chunks in-process via fn.  It
// is always healthy.
func Loopback(fn ExecFunc) Transport { return loopback{fn} }

type loopback struct{ fn ExecFunc }

func (l loopback) Execute(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
	return l.fn(ctx, req)
}

func (l loopback) Healthy(context.Context) error { return nil }
