package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/api"
)

// maxAttempts bounds executions of one chunk across peers before the job
// fails: a chunk that keeps erroring everywhere is deterministic poison
// (e.g. a worker-side panic), not a transport flake.
const maxAttempts = 5

// Dispatch shards one job's chunk range across a Pool's peers and folds
// the results strictly in chunk-index order.
//
// Concurrency model: all scheduling state is mutated only by the Run
// goroutine — executions run in worker goroutines that report back over a
// channel, and the fold callback runs on the Run goroutine itself (it
// writes the job's result files).  The mutex exists solely so Progress and
// Owners can snapshot the state from other goroutines (job status, the
// checkpoint writer).
//
// Determinism: a chunk may execute more than once (requeue after a peer
// failure, client-level retry), but every execution of a chunk returns the
// same bytes, and each index is folded exactly once, in order — late
// duplicate results are dropped.  So the folded stream is the same bytes a
// single-node run produces, regardless of peer count, completion order, or
// worker loss.
type Dispatch struct {
	pool   *Pool
	job    api.JobSubmitRequest
	total  int
	window int
	// idleWait paces the scheduler while no peer is live (waiting for a
	// health-probe revival); swappable for tests.
	idleWait time.Duration
	// span is the job-level parent captured from Run's context: every
	// execution attempt opens a "dispatch chunk N" child under it (failed
	// attempts carry an error attr, so requeues show up as extra spans with
	// gaps), and each worker's returned snapshot is stitched under its
	// dispatch span.  Set once before any exec goroutine starts; nil when
	// tracing is off.
	span *obs.Span

	mu       sync.Mutex
	lanes    map[string]int // peer addr → Chrome-export lane (2+)
	next     int            // next fresh chunk index to dispatch
	nextFold int            // next chunk index to fold
	pending  []int
	buffered map[int]*api.ChunkResult
	running  map[int]*peer
	attempts map[int]int
	done     map[string]uint64
	requeued uint64
	fatal    error
}

// execDone is one execution attempt's outcome.
type execDone struct {
	chunk int
	pr    *peer
	res   *api.ChunkResult
	err   error
}

// NewDispatch prepares a dispatcher for one job run over [0, total)
// chunks.  The job spec is sent verbatim to workers (minus nothing — the
// worker re-validates it and rebuilds the same kind runner).
func NewDispatch(pool *Pool, job api.JobSubmitRequest, total int) *Dispatch {
	w := 2 * pool.slots()
	if w < 16 {
		w = 16
	}
	return &Dispatch{
		pool:     pool,
		job:      job,
		total:    total,
		window:   w,
		idleWait: 50 * time.Millisecond,
		buffered: make(map[int]*api.ChunkResult),
		running:  make(map[int]*peer),
		attempts: make(map[int]int),
		done:     make(map[string]uint64),
	}
}

// Run dispatches chunks [start, total) and calls fold once per chunk,
// strictly in index order, on the calling goroutine.  It returns nil when
// every chunk through total-1 has been folded, ctx.Err() on cancellation
// (the checkpointed fold position makes the interruption resumable), a
// fold error verbatim, or a fatal dispatch error (a chunk rejected as
// invalid, or failing maxAttempts times).
func (d *Dispatch) Run(ctx context.Context, start int, fold func(*api.ChunkResult) error) error {
	d.span = obs.FromContext(ctx)
	d.mu.Lock()
	d.next, d.nextFold = start, start
	d.mu.Unlock()
	if start >= d.total {
		return nil
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	ectx, cancel := context.WithCancel(ctx)
	defer cancel() // runs before wg.Wait: unblocks undelivered senders
	results := make(chan execDone)
	inflight := 0
	for {
		// Fold everything deliverable at the in-order frontier.
		for {
			d.mu.Lock()
			res, ok := d.buffered[d.nextFold]
			if ok {
				delete(d.buffered, d.nextFold)
			}
			d.mu.Unlock()
			if !ok {
				break
			}
			fs := d.span.StartChild(fmt.Sprintf("fold chunk %d", res.Chunk))
			err := fold(res)
			fs.End()
			if err != nil {
				return err
			}
			d.pool.folded.Add(1)
			d.mu.Lock()
			d.nextFold++
			doneAll := d.nextFold >= d.total
			d.mu.Unlock()
			if doneAll {
				return nil
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		d.mu.Lock()
		fatal := d.fatal
		d.mu.Unlock()
		if fatal != nil {
			return fatal
		}
		// Launch every dispatchable chunk: requeued indexes first (they
		// are the fold frontier), then fresh ones while the reorder window
		// has room and a peer slot is free.
		launched := 0
		for {
			chunk, pr, ok := d.pick()
			if !ok {
				break
			}
			launched++
			inflight++
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := api.ChunkRequest{Version: api.Version, Job: d.job, Chunk: chunk}
				dspan := d.span.StartChild(fmt.Sprintf("dispatch chunk %d", chunk))
				if dspan != nil {
					dspan.SetAttr("peer", pr.addr)
					dspan.SetLane(d.lane(pr.addr))
					d.mu.Lock()
					att := d.attempts[chunk] + 1
					d.mu.Unlock()
					dspan.SetAttr("attempt", att)
					sc := dspan.Context()
					req.Trace = &api.TraceContext{TraceID: sc.TraceID, ParentSpanID: sc.SpanID}
				}
				res, err := pr.t.Execute(ectx, req)
				if err != nil {
					dspan.SetAttr("error", err.Error())
				} else if res != nil && len(res.Span) > 0 && req.Trace != nil {
					var snap obs.SpanJSON
					if json.Unmarshal(res.Span, &snap) == nil && snap.TraceID == req.Trace.TraceID {
						dspan.AttachRemote(&snap)
					}
				}
				dspan.End()
				select {
				case results <- execDone{chunk: chunk, pr: pr, res: res, err: err}:
				case <-ectx.Done():
					d.pool.release(pr)
				}
			}()
		}
		if inflight == 0 {
			if launched != 0 {
				continue
			}
			// Nothing running and nothing dispatchable — every peer is
			// down and there is no local fallback.  Wait for the health
			// loop to revive someone.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d.idleWait):
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case r := <-results:
			inflight--
			d.finish(ctx, r)
		}
	}
}

// pick claims the next chunk to execute and a peer slot for it, or reports
// none available.  Requeued chunks go first; fresh chunks only while they
// stay within the reorder window of the fold frontier (bounding buffered
// out-of-order results).
func (d *Dispatch) pick() (int, *peer, bool) {
	d.mu.Lock()
	chunk := -1
	fromPending := len(d.pending) > 0
	if fromPending {
		chunk = d.pending[0]
	} else if d.next < d.total && d.next-d.nextFold < d.window {
		chunk = d.next
	}
	d.mu.Unlock()
	if chunk < 0 {
		return 0, nil, false
	}
	pr := d.pool.acquire()
	if pr == nil {
		return 0, nil, false
	}
	d.mu.Lock()
	if fromPending {
		d.pending = d.pending[1:]
	} else {
		d.next++
	}
	d.running[chunk] = pr
	d.mu.Unlock()
	return chunk, pr, true
}

// finish folds one execution outcome into the scheduling state: buffer a
// valid result (dropping late duplicates), or demote the peer and requeue
// the chunk on failure.
func (d *Dispatch) finish(ctx context.Context, r execDone) {
	d.pool.release(r.pr)
	d.mu.Lock()
	delete(d.running, r.chunk)
	d.mu.Unlock()
	if r.err == nil {
		switch {
		case r.res == nil:
			r.err = fmt.Errorf("fabric: peer %s returned no result for chunk %d", r.pr.addr, r.chunk)
		case r.res.Version != api.Version:
			r.err = fmt.Errorf("fabric: peer %s speaks schema v%d, want v%d", r.pr.addr, r.res.Version, api.Version)
		case r.res.Chunk != r.chunk:
			r.err = fmt.Errorf("fabric: peer %s answered chunk %d for chunk %d", r.pr.addr, r.res.Chunk, r.chunk)
		}
	}
	if r.err != nil {
		if ctx.Err() != nil {
			return // shutting down; the error is ours, not the peer's
		}
		d.failChunk(r)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if r.chunk < d.nextFold || d.buffered[r.chunk] != nil {
		return // late duplicate of an already-requeued chunk; folded once only
	}
	d.buffered[r.chunk] = r.res
	d.done[r.pr.addr]++
}

// failChunk handles one failed execution: deterministic rejections and
// local-executor failures are fatal (re-running cannot change them);
// transport-level failures demote the peer and requeue the chunk for a
// survivor, up to maxAttempts executions.
func (d *Dispatch) failChunk(r execDone) {
	d.pool.fail(r.pr, r.err)
	var apiErr *api.Error
	deterministic := errors.As(r.err, &apiErr) &&
		(apiErr.Code == api.CodeBadRequest || apiErr.Code == api.CodeShapeTooLarge ||
			apiErr.Code == api.CodeUnauthorized || apiErr.Code == api.CodeNotFound)
	if deterministic || r.pr.local {
		d.setFatal(fmt.Errorf("fabric: chunk %d on %s: %w", r.chunk, r.pr.addr, r.err))
		return
	}
	d.mu.Lock()
	d.attempts[r.chunk]++
	att := d.attempts[r.chunk]
	d.mu.Unlock()
	if att >= maxAttempts {
		d.setFatal(fmt.Errorf("fabric: chunk %d failed on %d peers, last on %s: %w", r.chunk, att, r.pr.addr, r.err))
		return
	}
	d.pool.noteRequeue(r.pr)
	d.mu.Lock()
	d.requeued++
	d.pending = insertSorted(d.pending, r.chunk)
	d.mu.Unlock()
}

// lane returns the Chrome-export lane for a peer, assigning 2, 3, ... in
// first-seen order (lane 1 is the coordinator's own root row).
func (d *Dispatch) lane(addr string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lanes == nil {
		d.lanes = make(map[string]int)
	}
	l, ok := d.lanes[addr]
	if !ok {
		l = len(d.lanes) + 2
		d.lanes[addr] = l
	}
	return l
}

func (d *Dispatch) setFatal(err error) {
	d.mu.Lock()
	if d.fatal == nil {
		d.fatal = err
	}
	d.mu.Unlock()
}

// insertSorted inserts v into ascending s, skipping duplicates.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Progress snapshots the per-peer chunk assignment for job status.
func (d *Dispatch) Progress() api.FabricProgress {
	peers := d.pool.Peers()
	d.mu.Lock()
	defer d.mu.Unlock()
	byPeer := make(map[string][]int)
	for chunk, pr := range d.running {
		byPeer[pr.addr] = append(byPeer[pr.addr], chunk)
	}
	out := api.FabricProgress{Requeued: d.requeued}
	for _, ps := range peers {
		inf := byPeer[ps.Addr]
		sort.Ints(inf)
		out.Peers = append(out.Peers, api.JobPeer{
			Addr:     ps.Addr,
			State:    ps.State,
			InFlight: inf,
			Done:     d.done[ps.Addr],
		})
	}
	return out
}

// Owners maps currently-executing chunk indexes (as decimal strings, for
// JSON) to their peer address — the checkpoint's ownership record.  The
// fold frontier, not ownership, carries resume correctness; owners make a
// recovered coordinator's first status report (and debugging) honest about
// where interrupted chunks were.
func (d *Dispatch) Owners() map[string]string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.running) == 0 {
		return nil
	}
	m := make(map[string]string, len(d.running))
	for chunk, pr := range d.running {
		m[strconv.Itoa(chunk)] = pr.addr
	}
	return m
}
