package fabric

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/pkg/api"
)

// BenchmarkDispatch measures coordinator chunk throughput against peers
// with a fixed per-chunk service time — the coordinator's view of a remote
// worker, where chunk execution is wall-clock wait on another machine, not
// local CPU.  The peers=2 / peers=1 chunks/sec ratio is the fabric's
// scaling factor: with InFlightPerPeer=1 an ideal dispatcher doubles
// throughput, and anything the scheduler wastes between completion and the
// next launch shows up as a ratio below 2.
func BenchmarkDispatch(b *testing.B) {
	for _, peers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			benchmarkDispatch(b, peers)
		})
	}
}

func benchmarkDispatch(b *testing.B, peers int) {
	const (
		serviceTime = 2 * time.Millisecond
		totalChunks = 64
	)
	transports := make(map[string]*fakeTransport, peers)
	for i := 0; i < peers; i++ {
		transports[fmt.Sprintf("worker-%d", i)] = &fakeTransport{
			delay: func(int) time.Duration { return serviceTime },
		}
	}
	pool := NewPool(Config{
		Dial:            func(addr string) Transport { return transports[addr] },
		InFlightPerPeer: 1,
		HealthEvery:     -1,
	})
	defer pool.Close()
	for addr := range transports {
		if err := pool.Add(addr); err != nil {
			b.Fatal(err)
		}
	}

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDispatch(pool, api.JobSubmitRequest{Kind: api.JobCensus}, totalChunks)
		folded := 0
		err := d.Run(ctx, 0, func(*api.ChunkResult) error {
			folded++
			return nil
		})
		if err != nil || folded != totalChunks {
			b.Fatalf("run %d: folded %d/%d chunks, err %v", i, folded, totalChunks, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalChunks*b.N)/b.Elapsed().Seconds(), "chunks/sec")
}
