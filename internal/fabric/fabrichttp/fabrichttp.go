// Package fabrichttp is the wire transport of the sweep fabric: it dials
// worker peers through the pkg/client SDK, authenticating with the fabric
// shared secret.
//
// It lives outside internal/fabric on purpose.  fabric is imported by the
// jobs layer, and pkg/client's tests stand up a full server (which imports
// jobs) — so a client import inside fabric would close an import cycle in
// the client test build.  Keeping the HTTP transport one package out keeps
// fabric's import set at pkg/api alone.
package fabrichttp

import (
	"context"

	"repro/internal/fabric"
	"repro/pkg/api"
	"repro/pkg/client"
)

// Dialer returns a fabric.Dialer producing pkg/client-backed transports
// that authenticate with the fabric shared secret.  Extra client options
// (test http.Clients, tighter retry budgets) apply to every dialed peer.
func Dialer(secret string, opts ...client.Option) fabric.Dialer {
	return func(addr string) fabric.Transport {
		all := append([]client.Option{client.WithSecret(secret)}, opts...)
		return transport{c: client.New(addr, all...)}
	}
}

type transport struct{ c *client.Client }

func (t transport) Execute(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
	return t.c.ExecuteChunk(ctx, req)
}

func (t transport) Healthy(ctx context.Context) error {
	_, err := t.c.Healthz(ctx)
	return err
}
