package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

// chunkResult fabricates the deterministic result every execution of a chunk
// must return: the bytes are a pure function of the index.
func chunkResult(chunk int) *api.ChunkResult {
	return &api.ChunkResult{
		Version: api.Version,
		Chunk:   chunk,
		Shapes:  1,
		Rows:    []byte(fmt.Sprintf("row-%04d\n", chunk)),
	}
}

// fakeTransport is a scriptable peer: per-call delay, a per-chunk failure
// predicate, and a health switch.
type fakeTransport struct {
	mu       sync.Mutex
	delay    func(chunk int) time.Duration
	failExec func(chunk int, call int) error
	healthy  error // non-nil: probes fail
	calls    int
}

func (f *fakeTransport) Execute(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
	f.mu.Lock()
	f.calls++
	call := f.calls
	delay := time.Duration(0)
	if f.delay != nil {
		delay = f.delay(req.Chunk)
	}
	var fail error
	if f.failExec != nil {
		fail = f.failExec(req.Chunk, call)
	}
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if fail != nil {
		return nil, fail
	}
	return chunkResult(req.Chunk), nil
}

func (f *fakeTransport) Healthy(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healthy
}

// poolWith builds a pool whose dialer hands out the given transports by
// address, with the health loop off (tests drive CheckPeers directly).
func poolWith(t *testing.T, transports map[string]*fakeTransport, local Transport) *Pool {
	t.Helper()
	p := NewPool(Config{
		Dial: func(addr string) Transport {
			ft, ok := transports[addr]
			if !ok {
				t.Fatalf("dialed unknown address %q", addr)
			}
			return ft
		},
		Local:       local,
		HealthEvery: -1,
	})
	t.Cleanup(p.Close)
	for addr := range transports {
		if err := p.Add(addr); err != nil {
			t.Fatalf("Add(%s): %v", addr, err)
		}
	}
	return p
}

// runDispatch drives a full job and returns the folded chunk order.
func runDispatch(t *testing.T, pool *Pool, total int) []int {
	t.Helper()
	d := NewDispatch(pool, api.JobSubmitRequest{Kind: api.JobCensus}, total)
	d.idleWait = time.Millisecond
	var folded []int
	err := d.Run(context.Background(), 0, func(res *api.ChunkResult) error {
		folded = append(folded, res.Chunk)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return folded
}

// TestDispatchFoldsInOrder: random per-chunk delays force completions to
// arrive wildly out of order across three peers; the fold sequence must
// still be exactly 0,1,2,...  This is the property that makes a distributed
// stream byte-identical to a single-node one.
func TestDispatchFoldsInOrder(t *testing.T) {
	// Pseudo-random but data-race-free: the delay is a pure function of the
	// chunk index, scattering completion order across the window.
	delay := func(chunk int) time.Duration { return time.Duration(chunk*7%5) * time.Millisecond }
	transports := map[string]*fakeTransport{
		"w1": {delay: delay}, "w2": {delay: delay}, "w3": {delay: delay},
	}
	pool := poolWith(t, transports, nil)
	const total = 60
	folded := runDispatch(t, pool, total)
	if len(folded) != total {
		t.Fatalf("folded %d chunks, want %d", len(folded), total)
	}
	for i, c := range folded {
		if c != i {
			t.Fatalf("fold order broken at position %d: got chunk %d", i, c)
		}
	}
	st := pool.Stats()
	if st.Folded != total {
		t.Errorf("Stats.Folded = %d, want %d", st.Folded, total)
	}
	if st.Dispatched < total {
		t.Errorf("Stats.Dispatched = %d, want >= %d", st.Dispatched, total)
	}
}

// TestDispatchRequeuesToSurvivor: one peer dies permanently mid-run (every
// execution after its third fails).  Its chunks must requeue to the
// survivor, every index folded exactly once, in order.
func TestDispatchRequeuesToSurvivor(t *testing.T) {
	boom := errors.New("connection reset")
	transports := map[string]*fakeTransport{
		"dying": {failExec: func(chunk, call int) error {
			if call > 3 {
				return boom
			}
			return nil
		}},
		"survivor": {},
	}
	pool := poolWith(t, transports, nil)
	const total = 24
	folded := runDispatch(t, pool, total)
	for i, c := range folded {
		if c != i {
			t.Fatalf("fold order broken at position %d: got chunk %d (len %d)", i, c, len(folded))
		}
	}
	if len(folded) != total {
		t.Fatalf("folded %d chunks, want %d (duplicates or drops)", len(folded), total)
	}
	st := pool.Stats()
	if st.Requeued == 0 {
		t.Error("no chunks recorded as requeued after a peer death")
	}
	if st.Down != 1 || st.Up != 1 {
		t.Errorf("peer states up=%d down=%d, want 1/1", st.Up, st.Down)
	}
}

// TestDispatchLocalFallback: with every remote peer down from the start, the
// local loopback must carry the whole job — a coordinator with no live
// workers still finishes.
func TestDispatchLocalFallback(t *testing.T) {
	dead := &fakeTransport{failExec: func(int, int) error { return errors.New("refused") }}
	var localRuns atomic.Int64
	local := Loopback(func(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
		localRuns.Add(1)
		return chunkResult(req.Chunk), nil
	})
	pool := poolWith(t, map[string]*fakeTransport{"dead": dead}, local)
	const total = 8
	folded := runDispatch(t, pool, total)
	if len(folded) != total {
		t.Fatalf("folded %d chunks, want %d", len(folded), total)
	}
	if localRuns.Load() == 0 {
		t.Error("local loopback never ran despite every remote being down")
	}
}

// TestDispatchFatalOnPoisonChunk: a chunk failing on every peer must fail
// the job after maxAttempts executions, not spin forever.
func TestDispatchFatalOnPoisonChunk(t *testing.T) {
	poison := func(chunk, call int) error {
		if chunk == 3 {
			return errors.New("poison")
		}
		return nil
	}
	transports := map[string]*fakeTransport{
		"w1": {failExec: poison}, "w2": {failExec: poison},
	}
	pool := poolWith(t, transports, nil)
	d := NewDispatch(pool, api.JobSubmitRequest{Kind: api.JobCensus}, 8)
	d.idleWait = time.Millisecond
	// Keep the pool alive: revive peers after each failure demotes them, so
	// the poison chunk gets its full attempt budget.
	stopRevive := make(chan struct{})
	defer close(stopRevive)
	go func() {
		for {
			select {
			case <-stopRevive:
				return
			case <-time.After(time.Millisecond):
				pool.mu.Lock()
				for _, pr := range pool.peers {
					pr.state = api.PeerUp
				}
				pool.mu.Unlock()
			}
		}
	}()
	err := d.Run(context.Background(), 0, func(*api.ChunkResult) error { return nil })
	if err == nil {
		t.Fatal("Run succeeded despite a poison chunk")
	}
}

// TestDispatchDeterministicRejectionFatal: an api.Error with a
// deterministic code (bad_request) must fail the job immediately — retrying
// an invalid spec on another peer cannot change the answer.
func TestDispatchDeterministicRejectionFatal(t *testing.T) {
	reject := &api.Error{Code: api.CodeBadRequest, Message: "no such kind"}
	transports := map[string]*fakeTransport{
		"w1": {failExec: func(int, int) error { return reject }},
	}
	pool := poolWith(t, transports, nil)
	d := NewDispatch(pool, api.JobSubmitRequest{Kind: "nonsense"}, 4)
	d.idleWait = time.Millisecond
	err := d.Run(context.Background(), 0, func(*api.ChunkResult) error { return nil })
	if err == nil || !errors.Is(err, reject) {
		t.Fatalf("Run = %v, want the peer's bad_request error", err)
	}
	if st := pool.Stats(); st.Requeued != 0 {
		t.Errorf("deterministic rejection was requeued %d times", st.Requeued)
	}
}

// TestPoolHealthTransitions: CheckPeers demotes an unhealthy peer and
// revives it when probes succeed again; Add re-dials a known address.
func TestPoolHealthTransitions(t *testing.T) {
	ft := &fakeTransport{}
	pool := poolWith(t, map[string]*fakeTransport{"w1": ft}, nil)
	ctx := context.Background()

	if st := pool.Stats(); st.Up != 1 {
		t.Fatalf("fresh peer not up: %+v", st)
	}
	ft.mu.Lock()
	ft.healthy = errors.New("probe timeout")
	ft.mu.Unlock()
	pool.CheckPeers(ctx)
	if st := pool.Stats(); st.Down != 1 || st.Up != 0 {
		t.Fatalf("after failed probe: up=%d down=%d, want 0/1", st.Up, st.Down)
	}
	ft.mu.Lock()
	ft.healthy = nil
	ft.mu.Unlock()
	pool.CheckPeers(ctx)
	if st := pool.Stats(); st.Up != 1 {
		t.Fatalf("peer not revived: %+v", st)
	}

	if err := pool.Add("w1"); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	if err := pool.Add(""); err == nil {
		t.Error("Add(\"\") accepted")
	}
	if err := pool.Add(LocalAddr); err == nil {
		t.Error("Add(local) accepted")
	}
}

// TestDispatchCancelled: a cancelled context surfaces ctx.Err() and leaves
// no goroutines wedged (Run's defers drain the exec workers).
func TestDispatchCancelled(t *testing.T) {
	slow := &fakeTransport{delay: func(int) time.Duration { return 50 * time.Millisecond }}
	pool := poolWith(t, map[string]*fakeTransport{"slow": slow}, nil)
	d := NewDispatch(pool, api.JobSubmitRequest{Kind: api.JobCensus}, 100)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := d.Run(ctx, 0, func(*api.ChunkResult) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

// TestProgressAndOwners: the status snapshot groups running chunks by peer
// and Owners maps them for the checkpoint.
func TestProgressAndOwners(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan int, 8)
	local := Loopback(func(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
		running <- req.Chunk
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return chunkResult(req.Chunk), nil
	})
	pool := NewPool(Config{Local: local, HealthEvery: -1, InFlightPerPeer: 2})
	t.Cleanup(pool.Close)
	d := NewDispatch(pool, api.JobSubmitRequest{Kind: api.JobCensus}, 4)
	done := make(chan error, 1)
	go func() {
		done <- d.Run(context.Background(), 0, func(*api.ChunkResult) error { return nil })
	}()
	<-running // at least one chunk is executing
	waitOwners := time.Now().Add(5 * time.Second)
	for {
		if len(d.Owners()) > 0 {
			break
		}
		if time.Now().After(waitOwners) {
			t.Fatal("Owners never reported a running chunk")
		}
		time.Sleep(time.Millisecond)
	}
	fp := d.Progress()
	found := false
	for _, p := range fp.Peers {
		if p.Addr == LocalAddr && len(p.InFlight) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("Progress does not show the local peer's in-flight chunks: %+v", fp)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if owners := d.Owners(); owners != nil {
		t.Errorf("Owners after completion = %v, want nil", owners)
	}
}
