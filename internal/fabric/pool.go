package fabric

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/api"
)

// LocalAddr is the pseudo-address of the coordinator's own in-process
// loopback transport in peer listings.
const LocalAddr = "local"

// Config configures a Pool.
type Config struct {
	// Dial produces transports for remote peer addresses.  Required when
	// any remote peer is added.
	Dial Dialer
	// Local, when set, is an in-process transport the dispatcher falls back
	// to while no remote peer is up — a coordinator that loses every worker
	// keeps making progress (byte-identically) instead of stalling.
	Local Transport
	// InFlightPerPeer bounds concurrently executing chunks per peer
	// (default 2).
	InFlightPerPeer int
	// HealthEvery is the background health-probe period (default 5s).
	// Negative disables the loop — tests drive CheckPeers directly.
	HealthEvery time.Duration
	// HealthTimeout bounds one liveness probe (default 2s).
	HealthTimeout time.Duration
	Logger        *slog.Logger
}

// peer is one transport plus its dispatch bookkeeping.  All mutable fields
// are guarded by the owning Pool's mu.
type peer struct {
	addr  string
	t     Transport
	local bool

	state      api.PeerState
	inflight   int
	dispatched uint64
	requeued   uint64
	failed     uint64
	lastErr    string
}

// Pool is the coordinator's set of fabric peers: remote workers added via
// -peers / -join, plus an optional local loopback.  It owns peer health
// (background probes revive down peers and detect dead ones) and the
// process-wide fabric counters exported on /metrics.  Safe for concurrent
// use; one Pool serves every distributed job on the server.
type Pool struct {
	cfg Config
	log *slog.Logger

	mu    sync.Mutex
	peers map[string]*peer
	order []string // remote peers, join order

	dispatched atomic.Uint64
	requeued   atomic.Uint64
	folded     atomic.Uint64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// Stats is the pool's /metrics snapshot.
type Stats struct {
	// Up / Down count remote peers by health state (the local loopback is
	// excluded — it is always up).
	Up, Down int
	// Dispatched / Requeued / Folded are process-wide chunk counters:
	// executions started, chunks re-dispatched after a peer failure, and
	// chunk results folded into job streams.
	Dispatched, Requeued, Folded uint64
	// Peers is the full per-peer status (including the local loopback).
	Peers []api.PeerStatus
}

// NewPool builds a pool and starts its health loop (unless disabled).
func NewPool(cfg Config) *Pool {
	if cfg.InFlightPerPeer <= 0 {
		cfg.InFlightPerPeer = 2
	}
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = 5 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	p := &Pool{
		cfg:   cfg,
		log:   cfg.Logger,
		peers: make(map[string]*peer),
		stop:  make(chan struct{}),
	}
	if cfg.Local != nil {
		p.peers[LocalAddr] = &peer{addr: LocalAddr, t: cfg.Local, local: true, state: api.PeerUp}
	}
	if cfg.HealthEvery > 0 {
		p.wg.Add(1)
		go p.healthLoop()
	}
	return p
}

// Add registers (or re-dials) a remote peer address.  A re-added address
// gets a fresh transport and is optimistically marked up — this is how a
// restarted worker rejoins via -join; the health loop demotes it again if
// it is in fact unreachable.
func (p *Pool) Add(addr string) error {
	if addr == "" || addr == LocalAddr {
		return fmt.Errorf("fabric: invalid peer address %q", addr)
	}
	if p.cfg.Dial == nil {
		return fmt.Errorf("fabric: pool has no dialer")
	}
	t := p.cfg.Dial(addr)
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.peers[addr]; ok {
		pr.t = t
		pr.state = api.PeerUp
		pr.lastErr = ""
		p.log.Info("fabric: peer rejoined", "peer", addr)
		return nil
	}
	p.peers[addr] = &peer{addr: addr, t: t, state: api.PeerUp}
	p.order = append(p.order, addr)
	p.log.Info("fabric: peer added", "peer", addr)
	return nil
}

// Close stops the health loop.  In-flight dispatches are unaffected (their
// jobs own their contexts).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
}

func (p *Pool) healthLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.CheckPeers(context.Background())
		}
	}
}

// CheckPeers probes every remote peer once, demoting unreachable peers and
// reviving recovered ones.  The health loop calls it periodically; tests
// call it directly.
func (p *Pool) CheckPeers(ctx context.Context) {
	p.mu.Lock()
	probes := make([]*peer, 0, len(p.order))
	for _, addr := range p.order {
		probes = append(probes, p.peers[addr])
	}
	p.mu.Unlock()
	for _, pr := range probes {
		pctx, cancel := context.WithTimeout(ctx, p.cfg.HealthTimeout)
		err := pr.t.Healthy(pctx)
		cancel()
		p.mu.Lock()
		switch {
		case err != nil && pr.state == api.PeerUp:
			pr.state = api.PeerDown
			pr.lastErr = err.Error()
			p.log.Warn("fabric: peer down", "peer", pr.addr, "err", err)
		case err == nil && pr.state == api.PeerDown:
			pr.state = api.PeerUp
			pr.lastErr = ""
			p.log.Info("fabric: peer recovered", "peer", pr.addr)
		}
		p.mu.Unlock()
	}
}

// Peers snapshots every peer's status: remote peers in join order, then
// the local loopback.
func (p *Pool) Peers() []api.PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]api.PeerStatus, 0, len(p.peers))
	for _, addr := range p.order {
		out = append(out, p.peers[addr].status())
	}
	if lp, ok := p.peers[LocalAddr]; ok {
		out = append(out, lp.status())
	}
	return out
}

func (pr *peer) status() api.PeerStatus {
	return api.PeerStatus{
		Addr:       pr.addr,
		State:      pr.state,
		InFlight:   pr.inflight,
		Dispatched: pr.dispatched,
		Requeued:   pr.requeued,
		Failed:     pr.failed,
		LastError:  pr.lastErr,
	}
}

// Stats snapshots the pool for /metrics.
func (p *Pool) Stats() Stats {
	st := Stats{
		Dispatched: p.dispatched.Load(),
		Requeued:   p.requeued.Load(),
		Folded:     p.folded.Load(),
		Peers:      p.Peers(),
	}
	for _, ps := range st.Peers {
		if ps.Addr == LocalAddr {
			continue
		}
		if ps.State == api.PeerUp {
			st.Up++
		} else {
			st.Down++
		}
	}
	return st
}

// acquire claims an execution slot: the least-loaded up remote peer with a
// free slot, or — only while no remote peer is up at all — the local
// loopback.  Returns nil when nothing is available (the dispatcher waits
// for a completion or a revival).
func (p *Pool) acquire() *peer {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *peer
	anyUp := false
	for _, addr := range p.order {
		pr := p.peers[addr]
		if pr.state != api.PeerUp {
			continue
		}
		anyUp = true
		if pr.inflight < p.cfg.InFlightPerPeer && (best == nil || pr.inflight < best.inflight) {
			best = pr
		}
	}
	if best == nil && !anyUp {
		if lp, ok := p.peers[LocalAddr]; ok && lp.inflight < p.cfg.InFlightPerPeer {
			best = lp
		}
	}
	if best != nil {
		best.inflight++
		best.dispatched++
		p.dispatched.Add(1)
	}
	return best
}

// release returns an execution slot.
func (p *Pool) release(pr *peer) {
	p.mu.Lock()
	pr.inflight--
	p.mu.Unlock()
}

// fail records an execution failure on a peer and, for remote peers, marks
// it down so no further chunks land there until a health probe revives it.
func (p *Pool) fail(pr *peer, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr.failed++
	pr.lastErr = err.Error()
	if !pr.local && pr.state == api.PeerUp {
		pr.state = api.PeerDown
		p.log.Warn("fabric: peer failed, marking down", "peer", pr.addr, "err", err)
	}
}

// noteRequeue counts a chunk taken back from a failed peer.
func (p *Pool) noteRequeue(pr *peer) {
	p.mu.Lock()
	pr.requeued++
	p.mu.Unlock()
	p.requeued.Add(1)
}

// slots reports the total concurrent execution slots currently live, for
// sizing the dispatch window.
func (p *Pool) slots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.order)
	if _, ok := p.peers[LocalAddr]; ok {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n * p.cfg.InFlightPerPeer
}
