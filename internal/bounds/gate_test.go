// The bounds gate (`make bounds-check`): a golden table of shapes the
// planner is known to embed optimally, asserted against both the certified
// floors of this package and the embeddings the planner actually builds
// today.  A failure here means either a bound got weaker (a floor rose
// above a provably achievable value) or a strategy regressed (the planner
// stopped achieving a floor it used to reach).  It lives in an external
// test package so it can drive internal/core and internal/embed against
// the bounds without an import cycle.
package bounds_test

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// knownOptimal is the golden table.  For every entry the planner's built
// embedding provably meets the dilation floor; entries with fullyOptimal
// also meet the wirelength and congestion floors (gap_to_optimal == 0 on
// all three measures).
//
//   - Gray-minimal meshes (Σ⌈lg aᵢ⌉ == ⌈lg m⌉): the Gray embedding is
//     dilation-1, so wirelength == E and congestion == 1 — optimal on
//     everything.
//   - Power-of-two tori and cylinders: the reflected Gray code is cyclic
//     (first and last codewords differ in one bit), so wrap edges are also
//     dilation-1.
//   - Complete binary trees (2^k−1 nodes, k ≥ 3): not subgraphs of their
//     minimal cube (the bipartition argument of Rajan et al.), so the
//     floor is 2 and the inorder-numbering construction achieves it.
var knownOptimal = []struct {
	family       guest.Family
	shape        mesh.Shape
	dilation     int  // the certified floor the planner must achieve
	fullyOptimal bool // wirelength and congestion floors met too
}{
	{guest.Mesh, mesh.Shape{2, 2}, 1, true},
	{guest.Mesh, mesh.Shape{2, 3}, 1, true},
	{guest.Mesh, mesh.Shape{4, 4}, 1, true},
	{guest.Mesh, mesh.Shape{2, 3, 4}, 1, true},
	{guest.Mesh, mesh.Shape{2, 4, 8}, 1, true},
	{guest.Mesh, mesh.Shape{4, 4, 4}, 1, true},
	{guest.Mesh, mesh.Shape{8, 8}, 1, true},
	{guest.Mesh, mesh.Shape{16, 16}, 1, true},
	{guest.Torus, mesh.Shape{4, 4}, 1, true},
	{guest.Torus, mesh.Shape{4, 8}, 1, true},
	{guest.Torus, mesh.Shape{8, 8}, 1, true},
	{guest.Torus, mesh.Shape{16, 16}, 1, true},
	{guest.Torus, mesh.Shape{4, 4, 4}, 1, true},
	{guest.Cylinder, mesh.Shape{4, 8}, 1, true},
	{guest.Cylinder, mesh.Shape{4, 16}, 1, true},
	{guest.Cylinder, mesh.Shape{16, 16}, 1, true},
	{guest.Tree, mesh.Shape{7}, 2, false},
	{guest.Tree, mesh.Shape{15}, 2, false},
	{guest.Tree, mesh.Shape{31}, 2, false},
	{guest.Tree, mesh.Shape{63}, 2, false},
	{guest.Tree, mesh.Shape{127}, 2, false},
}

// TestKnownOptimalFloors pins the floors themselves: if a formula change
// moves a bound on a golden shape, the table catches it before the planner
// comparison can mask it.
func TestKnownOptimalFloors(t *testing.T) {
	for _, kc := range knownOptimal {
		b := bounds.Minimal(kc.family, kc.shape)
		if b.Dilation != kc.dilation {
			t.Errorf("%s %s: dilation floor = %d, golden table says %d",
				kc.family, kc.shape, b.Dilation, kc.dilation)
		}
		if kc.fullyOptimal {
			e := int64(guest.Get(kc.family).Edges(kc.shape))
			if b.Wirelength != e {
				t.Errorf("%s %s: wirelength floor = %d, want E = %d (dilation-1 shapes)",
					kc.family, kc.shape, b.Wirelength, e)
			}
			if b.Congestion != 1 {
				t.Errorf("%s %s: congestion floor = %d, want 1", kc.family, kc.shape, b.Congestion)
			}
		}
	}
}

// TestPlannerAchievesKnownOptimal is the regression gate: the planner's
// built embedding must meet the dilation floor on every golden shape, and
// the wirelength/congestion floors where the table promises them.  The
// plan-level certificate must agree before anything is built.
func TestPlannerAchievesKnownOptimal(t *testing.T) {
	for _, kc := range knownOptimal {
		p, err := core.PlanGuest(kc.family, kc.shape, core.DefaultOptions)
		if err != nil {
			t.Errorf("%s %s: plan: %v", kc.family, kc.shape, err)
			continue
		}
		b, gap, opt := core.PlanCertificate(kc.family, kc.shape, p)
		if !opt || gap != 0 {
			t.Errorf("%s %s: plan certificate gap = %d (optimal=%v), want 0 — strategy regressed a known-optimal shape (plan %s)",
				kc.family, kc.shape, gap, opt, p)
		}
		em := p.Build()
		if err := em.Verify(); err != nil {
			t.Errorf("%s %s: %v", kc.family, kc.shape, err)
			continue
		}
		m := em.Measure()
		if m.CubeDim != kc.shape.MinCubeDim() {
			t.Errorf("%s %s: built into a %d-cube, minimal is %d",
				kc.family, kc.shape, m.CubeDim, kc.shape.MinCubeDim())
		}
		if m.Dilation != b.Dilation {
			t.Errorf("%s %s: measured dilation %d, certified floor %d",
				kc.family, kc.shape, m.Dilation, b.Dilation)
		}
		if kc.fullyOptimal {
			if m.Wirelength != b.Wirelength {
				t.Errorf("%s %s: measured wirelength %d, certified floor %d",
					kc.family, kc.shape, m.Wirelength, b.Wirelength)
			}
			if m.Congestion != b.Congestion {
				t.Errorf("%s %s: measured congestion %d, certified floor %d",
					kc.family, kc.shape, m.Congestion, b.Congestion)
			}
		}
	}
}

// TestGrayBaselineStaysOptimalOnGrayMinimalMeshes gates the baseline
// strategy separately from the planner: on Gray-minimal meshes the Gray
// embedding itself (not whatever the planner happens to choose) must stay
// optimal on all three measures.
func TestGrayBaselineStaysOptimalOnGrayMinimalMeshes(t *testing.T) {
	for _, kc := range knownOptimal {
		if kc.family != guest.Mesh {
			continue
		}
		em := embed.Gray(kc.shape)
		if err := em.Verify(); err != nil {
			t.Fatalf("gray %s: %v", kc.shape, err)
		}
		m := em.Measure()
		b := bounds.For(guest.Mesh, kc.shape, m.CubeDim)
		if m.Dilation != b.Dilation || m.Wirelength != b.Wirelength || m.Congestion != b.Congestion {
			t.Errorf("gray %s: measured dil=%d wl=%d cong=%d, floors dil=%d wl=%d cong=%d",
				kc.shape, m.Dilation, m.Wirelength, m.Congestion,
				b.Dilation, b.Wirelength, b.Congestion)
		}
	}
}
