package bounds

import (
	"math/bits"
	"testing"

	"repro/internal/guest"
	"repro/internal/mesh"
)

// shapesUpTo enumerates every shape of 1..3 axes with at most maxNodes
// nodes that the family accepts, including all axis orderings (the bounds
// must be permutation-consistent where the family is).
func shapesUpTo(f guest.Family, maxNodes int) []mesh.Shape {
	var out []mesh.Shape
	var rec func(prefix mesh.Shape, nodes int)
	rec = func(prefix mesh.Shape, nodes int) {
		if len(prefix) > 0 {
			s := prefix.Clone()
			if guest.Validate(f, s) == nil {
				out = append(out, s)
			}
		}
		if len(prefix) == 3 {
			return
		}
		for a := 1; nodes*a <= maxNodes; a++ {
			rec(append(prefix, a), nodes*a)
		}
	}
	rec(mesh.Shape{}, 1)
	return out
}

// edgeList materializes the family's edge set through the same iterator
// the fused metrics pass shards over.
func edgeList(f guest.Family, s mesh.Shape) [][2]int {
	var edges [][2]int
	guest.Get(f).EachEdgeRange(s, 0, s.Nodes(), func(e mesh.Edge) {
		edges = append(edges, [2]int{e.U, e.V})
	})
	return edges
}

// TestHarperNaive checks the per-bit closed form against the defining sum.
func TestHarperNaive(t *testing.T) {
	var sum int64
	for m := int64(1); m <= 1<<13; m++ {
		if got := Harper(m); got != sum {
			t.Fatalf("Harper(%d) = %d, want %d", m, got, sum)
		}
		sum += int64(bits.OnesCount64(uint64(m)))
	}
}

// TestBallNaive checks the incremental-binomial ball size against a count
// over all codes of the cube.
func TestBallNaive(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for d := 0; d <= n+2; d++ {
			var want int64
			for c := 0; c < 1<<uint(n); c++ {
				if p := bits.OnesCount(uint(c)); p >= 1 && p <= d {
					want++
				}
			}
			if got := ballMinusOne(n, d); got != want {
				t.Fatalf("ballMinusOne(%d,%d) = %d, want %d", n, d, got, want)
			}
		}
	}
}

func TestPairsWithinSaturates(t *testing.T) {
	if got := pairsWithin(1<<22, 62, 20); got != ballSat {
		t.Fatalf("pairsWithin huge = %d, want saturation %d", got, ballSat)
	}
	if got := pairsWithin(6, 3, 1); got != 9 {
		t.Fatalf("pairsWithin(6,3,1) = %d, want 9", got)
	}
}

// TestGraphParametersNaive brute-force-recomputes every combinatorial
// input of the bounds — edge count, maximum degree, bipartiteness, color
// classes, and the disjoint odd rings — from the materialized edge list,
// on every shape with at most 64 nodes per family.
func TestGraphParametersNaive(t *testing.T) {
	for _, d := range guest.All() {
		f := d.Family
		for _, s := range shapesUpTo(f, 64) {
			edges := edgeList(f, s)
			m := s.Nodes()
			if got := int64(len(edges)); got != int64(d.Edges(s)) {
				t.Fatalf("%s %v: iterator edges %d != Edges() %d", f, s, got, d.Edges(s))
			}

			deg := make([]int, m)
			adj := make([][]int, m)
			for _, e := range edges {
				deg[e[0]]++
				deg[e[1]]++
				adj[e[0]] = append(adj[e[0]], e[1])
				adj[e[1]] = append(adj[e[1]], e[0])
			}
			maxDeg := 0
			for _, dv := range deg {
				maxDeg = max(maxDeg, dv)
			}
			if got := MaxDegree(f, s); got != maxDeg {
				t.Fatalf("%s %v: MaxDegree = %d, naive %d", f, s, got, maxDeg)
			}

			// 2-color by BFS; the guests are connected, so one sweep from
			// node 0 settles bipartiteness and both class sizes.
			color := make([]int8, m)
			for i := range color {
				color[i] = -1
			}
			color[0] = 0
			queue := []int{0}
			bipartite := true
			classes := [2]int64{1, 0}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range adj[u] {
					if color[v] == -1 {
						color[v] = 1 - color[u]
						classes[color[v]]++
						queue = append(queue, v)
					} else if color[v] == color[u] {
						bipartite = false
					}
				}
			}
			seen := int64(0)
			for _, c := range color {
				if c != -1 {
					seen++
				}
			}
			if len(edges) > 0 && seen != int64(m) {
				t.Fatalf("%s %v: guest not connected (%d/%d reached)", f, s, seen, m)
			}

			odd := disjointOddCycles(f, s)
			if (odd > 0) == bipartite {
				t.Fatalf("%s %v: disjointOddCycles=%d but bipartite=%v", f, s, odd, bipartite)
			}
			if bipartite && len(edges) > 0 {
				if got := maxColorClass(f, s); got != max(classes[0], classes[1]) {
					t.Fatalf("%s %v: maxColorClass = %d, naive %d/%d", f, s, got, classes[0], classes[1])
				}
			}
			if odd > 0 {
				checkDisjointOddRings(t, f, s, edges, odd)
			}
		}
	}
}

// checkDisjointOddRings verifies the combinatorial object behind the
// odd-cycle bound: some wrapped odd axis of length a really does carry
// `count` vertex-disjoint a-cycles whose edges are all present.
func checkDisjointOddRings(t *testing.T, f guest.Family, s mesh.Shape, edges [][2]int, count int64) {
	t.Helper()
	present := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		present[[2]int{min(e[0], e[1]), max(e[0], e[1])}] = true
	}
	m := s.Nodes()
	for i, a := range s {
		if !(a >= 3 && a%2 == 1 && wrapsAxis(f, s, i)) || int64(m/a) != count {
			continue
		}
		stride := 1
		for j := 0; j < i; j++ {
			stride *= s[j]
		}
		used := make([]bool, m)
		rings := int64(0)
		for base := 0; base < m; base++ {
			if s.Coord(base)[i] != 0 {
				continue
			}
			for k := 0; k < a; k++ {
				u, v := base+k*stride, base+((k+1)%a)*stride
				if !present[[2]int{min(u, v), max(u, v)}] {
					t.Fatalf("%s %v: claimed ring edge (%d,%d) missing", f, s, u, v)
				}
				if used[u] {
					t.Fatalf("%s %v: ring node %d reused", f, s, u)
				}
				used[u] = true
			}
			rings++
		}
		if rings != count {
			t.Fatalf("%s %v: found %d disjoint odd rings, bound claims %d", f, s, rings, count)
		}
		return
	}
	t.Fatalf("%s %v: no axis matches disjointOddCycles=%d", f, s, count)
}

// bruteOptimum exhaustively minimizes dilation and wirelength over every
// one-to-one embedding into the n-cube (node 0 pinned to host 0 — the
// XOR-translation symmetry of the cube preserves all Hamming distances),
// and minimizes the e-cube-routed congestion over the same maps (an upper
// bound on the optimum over all routings).
func bruteOptimum(edges [][2]int, m, n int) (minDil int, minWL int64, minCong int) {
	nHost := 1 << uint(n)
	code := make([]int, m)
	usedHost := make([]bool, nHost)
	code[0] = 0
	usedHost[0] = true
	minDil, minWL, minCong = 1<<30, 1<<62, 1<<30
	loads := make([]int, nHost*n)

	var rec func(g int)
	rec = func(g int) {
		if g == m {
			dil, wl := 0, int64(0)
			for _, e := range edges {
				d := bits.OnesCount(uint(code[e[0]] ^ code[e[1]]))
				wl += int64(d)
				dil = max(dil, d)
			}
			minDil = min(minDil, dil)
			minWL = min(minWL, wl)
			// e-cube routing: flip differing bits lowest-first, counting
			// the load on each undirected link (node, axis).
			for i := range loads {
				loads[i] = 0
			}
			cong := 0
			for _, e := range edges {
				cur, diff := code[e[0]], code[e[0]]^code[e[1]]
				for diff != 0 {
					b := bits.TrailingZeros(uint(diff))
					lo := cur &^ (1 << uint(b))
					loads[lo*n+b]++
					cong = max(cong, loads[lo*n+b])
					cur ^= 1 << uint(b)
					diff &^= 1 << uint(b)
				}
			}
			minCong = min(minCong, cong)
			return
		}
		for h := 1; h < nHost; h++ {
			if !usedHost[h] {
				usedHost[h] = true
				code[g] = h
				rec(g + 1)
				usedHost[h] = false
			}
		}
	}
	rec(1)
	return minDil, minWL, minCong
}

// TestBoundsExhaustiveSmall compares the closed-form bounds against the
// exhaustively computed optimum on every shape with at most 8 nodes per
// family (so the minimal cube has at most 8 hosts and full enumeration of
// one-to-one maps is feasible).  Dilation and wirelength bounds are tight
// on this entire set; congestion is checked for soundness against the best
// e-cube-routed map.
func TestBoundsExhaustiveSmall(t *testing.T) {
	for _, d := range guest.All() {
		f := d.Family
		for _, s := range shapesUpTo(f, 8) {
			edges := edgeList(f, s)
			if len(edges) == 0 {
				b := Minimal(f, s)
				if b.Dilation != 0 || b.Wirelength != 0 || b.Congestion != 0 {
					t.Fatalf("%s %v: edgeless shape has nonzero bounds %+v", f, s, b)
				}
				continue
			}
			n := s.MinCubeDim()
			b := For(f, s, n)
			minDil, minWL, minCong := bruteOptimum(edges, s.Nodes(), n)
			if b.Dilation != minDil {
				t.Errorf("%s %v n=%d: dilation LB %d, exhaustive optimum %d", f, s, n, b.Dilation, minDil)
			}
			if b.Wirelength != minWL {
				t.Errorf("%s %v n=%d: wirelength LB %d, exhaustive optimum %d", f, s, n, b.Wirelength, minWL)
			}
			if b.Congestion > minCong {
				t.Errorf("%s %v n=%d: congestion LB %d exceeds best e-cube congestion %d", f, s, n, b.Congestion, minCong)
			}
		}
	}
}

// TestBoundsMonotoneInCube checks that a roomier cube never raises a
// bound: every criterion weakens as n grows.
func TestBoundsMonotoneInCube(t *testing.T) {
	for _, d := range guest.All() {
		for _, s := range shapesUpTo(d.Family, 64) {
			n := s.MinCubeDim()
			b0 := For(d.Family, s, n)
			b1 := For(d.Family, s, n+1)
			if b1.Dilation > b0.Dilation || b1.Wirelength > b0.Wirelength || b1.Congestion > b0.Congestion {
				t.Fatalf("%s %v: bounds grew with cube: n=%d %+v, n+1 %+v", d.Family, s, n, b0, b1)
			}
		}
	}
}
