// Package bounds computes certified per-shape lower bounds for the three
// edge-routing quality measures of an embedding — dilation, wirelength
// (total routed path length) and edge congestion — for every registered
// guest family, in O(dims) integer arithmetic per shape.
//
// The bounds are *sound*: no one-to-one embedding of the guest into the
// stated cube can beat them, under any path realization.  They are the
// floors the service's optimality certificates are measured against
// (api.Certificate): a strategy whose achieved metrics equal the bounds is
// provably optimal, and the gap is an upper bound on how much any better
// strategy could still recover.  Tightness is a separate, empirical
// question — the golden tables in bounds_test pin the shapes where the
// bounds are known to be achieved.
//
// The criteria combine the classical edge-isoperimetric and parity
// arguments for hypercube embeddings (Harper's theorem; the bipartite and
// odd-cycle obstructions; degree pigeonholes), as used by the wirelength
// lower bounds of Rajan et al. (arXiv:1807.06787) and the grid-into-cube
// analysis of Miller–Pritikin–Sudborough (arXiv:1403.2749):
//
//   - Q_n is bipartite, so every odd cycle of the guest forces an edge of
//     dilation ≥ 2, and vertex-disjoint odd cycles force one such edge each.
//   - A connected bipartite guest whose larger color class exceeds 2^(n-1)
//     cannot be a subgraph of Q_n (the class must land in one parity class
//     of the cube).
//   - Harper's theorem: an m-vertex subgraph of Q_n has at most
//     H(m) = Σ_{k<m} popcount(k) edges, so at least E − H(m) guest edges
//     have dilation ≥ 2.
//   - Distance-d pigeonholes: a vertex of Q_n has Σ_{i≤d} C(n,i) − 1
//     neighbors within distance d, bounding both the realizable maximum
//     degree and (via m·|ball|/2) the number of edges of dilation ≤ d.
//   - Wirelength telescopes over dilation levels:
//     WL = Σ_{t≥1} #{e : dil(e) ≥ t}, each level bounded as above.
//   - Congestion: the deg(v) paths leaving a host node share its n links,
//     and the WL lower bound's link crossings share all n·2^(n-1) links.
package bounds

import (
	"repro/internal/guest"
	"repro/internal/mesh"
)

// Bounds holds the certified floors for one-to-one embeddings of a guest
// into the CubeDim-cube.  An edgeless guest has all-zero bounds.
type Bounds struct {
	CubeDim    int
	Dilation   int
	Wirelength int64
	Congestion int
}

// Minimal returns the bounds at the guest's minimal cube,
// n = ⌈log₂ nodes⌉ — the dimension every minimal-expansion strategy
// targets.
func Minimal(f guest.Family, s mesh.Shape) Bounds {
	return For(f, s, s.MinCubeDim())
}

// For returns the lower bounds for embedding the (f, s) guest one-to-one
// into the n-cube.  n must admit a one-to-one embedding (2^n ≥ nodes);
// for smaller cubes the returned bounds are vacuous.
func For(f guest.Family, s mesh.Shape, n int) Bounds {
	m := int64(s.Nodes())
	e := int64(guest.Get(f).Edges(s))
	b := Bounds{CubeDim: n}
	if e == 0 {
		return b
	}
	deg := MaxDegree(f, s)
	odd := disjointOddCycles(f, s)
	var bmax int64
	if odd == 0 {
		bmax = maxColorClass(f, s)
	}
	b.Dilation = dilationLB(n, m, e, deg, odd, bmax)
	b.Wirelength = wirelengthLB(n, m, e, odd, b.Dilation)
	b.Congestion = congestionLB(n, deg, b.Wirelength)
	return b
}

// Harper returns H(m) = Σ_{k=0}^{m-1} popcount(k), the maximum number of
// edges an m-vertex subgraph of a hypercube can have (Harper's
// edge-isoperimetric theorem; the maximizer is the first m nodes in binary
// order).  Computed per bit position in O(log m).
func Harper(m int64) int64 {
	var total int64
	for b := uint(0); b < 62; b++ {
		half := int64(1) << b
		if half >= m {
			break
		}
		block := half << 1
		total += (m / block) * half
		if rem := m % block; rem > half {
			total += rem - half
		}
	}
	return total
}

// MaxDegree returns the guest's maximum vertex degree.  For the grid
// families an axis of length a contributes min(2, a−1) to some shared
// node — wrapping changes which nodes are extremal, not the maximum
// (a length-2 wrapped axis still carries a single edge per line).
func MaxDegree(f guest.Family, s mesh.Shape) int {
	if f == guest.Tree {
		switch {
		case s[0] <= 1:
			return 0
		case s[0] <= 3:
			return 2
		default:
			return 3
		}
	}
	deg := 0
	for _, a := range s {
		deg += min(2, a-1)
	}
	return deg
}

// wrapsAxis reports whether axis i of the family wraps around.
func wrapsAxis(f guest.Family, s mesh.Shape, i int) bool {
	switch f {
	case guest.Torus:
		return true
	case guest.Cylinder:
		return i == len(s)-1
	}
	return false
}

// disjointOddCycles returns the largest number of vertex-disjoint odd
// cycles a single wrapped odd axis induces: an axis of odd length a ≥ 3
// partitions the nodes into m/a disjoint a-cycles, and Q_n's bipartiteness
// forces at least one dilation-≥2 edge on each.
func disjointOddCycles(f guest.Family, s mesh.Shape) int64 {
	m := int64(s.Nodes())
	var best int64
	for i, a := range s {
		if a >= 3 && a%2 == 1 && wrapsAxis(f, s, i) {
			if c := m / int64(a); c > best {
				best = c
			}
		}
	}
	return best
}

// maxColorClass returns the size of the larger class of the guest's unique
// 2-coloring.  Callers invoke it only for bipartite guests (no wrapped odd
// axis); every registered family is connected, so the coloring — and the
// obstruction maxColorClass > 2^(n-1) — is well defined.
func maxColorClass(f guest.Family, s mesh.Shape) int64 {
	if f == guest.Tree {
		// Alternate the level sums of the complete binary tree.
		var even, odd int64
		size := int64(1)
		for total, j := int64(0), 0; total < int64(s[0]); j++ {
			if j%2 == 0 {
				even += size
			} else {
				odd += size
			}
			total += size
			size <<= 1
		}
		return max(even, odd)
	}
	// Grid families 2-color by coordinate-sum parity (wrapped even axes
	// preserve it); the classes are balanced unless every axis is odd.
	allOdd := int64(0)
	if func() bool {
		for _, a := range s {
			if a%2 == 0 {
				return false
			}
		}
		return true
	}() {
		allOdd = 1
	}
	return (int64(s.Nodes()) + allOdd) / 2
}

// ballSat is the saturation value for the distance-ball sums: far larger
// than any guest degree or edge count the service admits (≤ 2^22 nodes),
// and small enough that m·ballSat cannot overflow int64.
const ballSat = int64(1) << 38

// ballMinusOne returns min(Σ_{i=1..d} C(n,i), ballSat): the number of
// cube nodes within distance d of a fixed node, excluding itself.
func ballMinusOne(n, d int) int64 {
	var sum int64
	c := int64(1)
	for i := 1; i <= d && i <= n; i++ {
		c = c * int64(n-i+1) / int64(i)
		sum += c
		if sum >= ballSat {
			return ballSat
		}
	}
	return sum
}

// pairsWithin bounds the number of unordered node pairs at cube distance
// ≤ d inside any m-subset of Q_n — and therefore the number of guest edges
// realizable with dilation ≤ d.
func pairsWithin(m int64, n, d int) int64 {
	v := ballMinusOne(n, d)
	if m > 0 && v > ballSat/m {
		return ballSat
	}
	return m * v / 2
}

// dilationLB raises the dilation floor criterion by criterion: the guest
// is not a subgraph of Q_n (level 1), and more generally not a subgraph of
// the distance-≤d graph of Q_n (level d).
func dilationLB(n int, m, e int64, deg int, odd, bmax int64) int {
	d := 1
	for d <= n {
		violated := false
		if d == 1 {
			violated = int64(deg) > int64(n) ||
				e > Harper(m) ||
				odd > 0 ||
				(odd == 0 && bmax > int64(1)<<uint(max(n-1, 0)))
		} else {
			violated = int64(deg) > ballMinusOne(n, d) || e > pairsWithin(m, n, d)
		}
		if !violated {
			break
		}
		d++
	}
	return d
}

// wirelengthLB telescopes WL = Σ_{t≥1} #{e : dil(e) ≥ t}.  Level 1 is all
// E edges (one-to-one maps leave no edge at distance 0); level 2 is the
// Harper excess, the disjoint odd cycles, or — whenever the dilation floor
// already reached t — at least one edge; deeper levels use the distance
// pigeonhole.
func wirelengthLB(n int, m, e, odd int64, dil int) int64 {
	wl := e
	for t := 2; ; t++ {
		var ex int64
		if t == 2 {
			ex = max(e-Harper(m), odd)
		} else {
			ex = max(e-pairsWithin(m, n, t-1), 0)
		}
		if dil >= t && ex < 1 {
			ex = 1
		}
		if ex <= 0 {
			break
		}
		wl += ex
	}
	return wl
}

// congestionLB combines the per-node pigeonhole (deg(v) realized paths
// leave v through its n links) with the global one (the WL floor's link
// crossings share n·2^(n-1) links).
func congestionLB(n, deg int, wl int64) int {
	if wl == 0 {
		return 0
	}
	c := 1
	if n > 0 {
		if d := (deg + n - 1) / n; d > c {
			c = d
		}
		links := int64(n) << uint(n-1)
		if l := (wl + links - 1) / links; l > int64(c) {
			c = int(l)
		}
	}
	return c
}
