// Package artifact defines the plan-census artifact: a compact, versioned,
// mmap-able table holding the planner's answer for every canonical shape of
// one guest family within an axis bound, indexed by a closed-form shape
// rank so a loaded artifact serves O(1) plan lookups with no planner run.
//
// The rank is the colexicographic rank of the canonical (ascending-sorted)
// shape among all multisets of size dims drawn from {1..maxAxis}:
//
//	rank(ℓ1 ≤ … ≤ ℓd) = Σᵢ C(ℓᵢ + i − 1, i + 1)   (i zero-based)
//
// via the usual bijection xᵢ = ℓᵢ + i onto strictly increasing sequences.
// Colex order sorts by the largest axis last, so the shapes with largest
// axis exactly c occupy the contiguous rank interval
// [C(c+d−2, d), C(c+d−1, d)) — which is what makes "one chunk per largest
// axis" both resumable and append-only for the builder.
package artifact

import (
	"fmt"

	"repro/internal/mesh"
)

// binomial returns C(n, k) without overflow for the argument ranges the
// artifact admits (n ≤ maxAxis+dims, k ≤ dims; the record-count cap keeps
// every intermediate product within uint64).
func binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := uint64(1)
	for i := 1; i <= k; i++ {
		r = r * uint64(n-k+i) / uint64(i)
	}
	return r
}

// TotalRecords returns the number of canonical shapes with dims axes each
// in 1..maxAxis: C(maxAxis+dims−1, dims).
func TotalRecords(dims, maxAxis int) uint64 {
	return binomial(maxAxis+dims-1, dims)
}

// ChunkRange returns the rank interval [lo, hi) of the shapes whose
// largest axis is exactly c.
func ChunkRange(dims, c int) (lo, hi uint64) {
	return binomial(c+dims-2, dims), binomial(c+dims-1, dims)
}

// Rank returns the colex rank of a canonical shape.  The shape must be
// ascending-sorted; IsCanonical reports whether it is.
func Rank(s mesh.Shape) uint64 {
	var r uint64
	for i, l := range s {
		r += binomial(l+i-1, i+1)
	}
	return r
}

// IsCanonical reports whether the shape is in the artifact's canonical
// (ascending-sorted) axis order.
func IsCanonical(s mesh.Shape) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// EachShapeWithMax calls fn for every canonical shape with dims axes whose
// largest axis is exactly c, in rank order (ranks ChunkRange(dims, c) lo,
// lo+1, …, hi−1).  The shape passed to fn is reused between calls; clone it
// to retain it.  Colex rank order nests as "later axes vary slower", so the
// loops run ℓ_{d−1} outermost down to ℓ_0 innermost.
func EachShapeWithMax(dims, c int, fn func(mesh.Shape)) {
	if dims < 1 || c < 1 {
		return
	}
	cur := make(mesh.Shape, dims)
	cur[dims-1] = c
	var rec func(i int)
	rec = func(i int) {
		if i < 0 {
			fn(cur)
			return
		}
		for l := 1; l <= cur[i+1]; l++ {
			cur[i] = l
			rec(i - 1)
		}
	}
	rec(dims - 2)
}

// CheckShape validates that a shape is a rankable canonical shape within
// the artifact bounds.
func CheckShape(s mesh.Shape, dims, maxAxis int) error {
	if len(s) != dims {
		return fmt.Errorf("artifact: shape %s has %d axes, artifact covers %d", s, len(s), dims)
	}
	if !IsCanonical(s) {
		return fmt.Errorf("artifact: shape %s is not in canonical (ascending) order", s)
	}
	for _, l := range s {
		if l < 1 || l > maxAxis {
			return fmt.Errorf("artifact: axis %d of %s outside 1..%d", l, s, maxAxis)
		}
	}
	return nil
}
