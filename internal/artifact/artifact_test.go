package artifact

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
)

// buildSmall builds a dims×maxAxis mesh artifact through the real planner
// and returns its path.
func buildSmall(t *testing.T, dims, maxAxis int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plans.art")
	pl := core.NewPlanner(core.DefaultOptions)
	b, err := NewBuilder(path, "mesh", dims, maxAxis, pl.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= maxAxis; c++ {
		EachShapeWithMax(dims, c, func(s mesh.Shape) {
			if err := b.Add(s, pl.Plan(s)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRankEnumerationParity pins the rank formula to the chunk enumeration:
// EachShapeWithMax must emit exactly the ChunkRange ranks in order, and the
// chunks must tile TotalRecords.
func TestRankEnumerationParity(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 4} {
		maxAxis := 9
		var next uint64
		for c := 1; c <= maxAxis; c++ {
			lo, hi := ChunkRange(dims, c)
			if lo != next {
				t.Fatalf("dims=%d chunk %d starts at %d, want %d", dims, c, lo, next)
			}
			EachShapeWithMax(dims, c, func(s mesh.Shape) {
				if !IsCanonical(s) {
					t.Fatalf("enumeration emitted non-canonical %v", s)
				}
				if got := Rank(s); got != next {
					t.Fatalf("dims=%d shape %v has rank %d, enumeration position %d", dims, s, got, next)
				}
				next++
			})
			if next != hi {
				t.Fatalf("dims=%d chunk %d ended at %d, want %d", dims, c, next, hi)
			}
		}
		if total := TotalRecords(dims, maxAxis); next != total {
			t.Fatalf("dims=%d enumerated %d shapes, TotalRecords says %d", dims, next, total)
		}
	}
}

// TestGoldenRoundTrip builds an artifact, loads it, and checks every record
// byte-identical to a fresh planner run — including a second loader pass to
// prove reads are stable — plus resume-at-checkpoint byte-identity.
func TestGoldenRoundTrip(t *testing.T) {
	const dims, maxAxis = 3, 12
	path := buildSmall(t, dims, maxAxis)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	hdr := a.Header()
	if hdr.Family != "mesh" || hdr.Dims != dims || hdr.MaxAxis != maxAxis || !hdr.Complete {
		t.Fatalf("header = %+v", hdr)
	}
	pl := core.NewPlanner(core.DefaultOptions)
	if hdr.Fingerprint != FingerprintHash(pl.Fingerprint()) {
		t.Fatalf("fingerprint %x does not match planner %q", hdr.Fingerprint, pl.Fingerprint())
	}
	checked := 0
	for c := 1; c <= maxAxis; c++ {
		EachShapeWithMax(dims, c, func(s mesh.Shape) {
			p := pl.Plan(s)
			for pass := 0; pass < 2; pass++ {
				rec, ok, err := a.Lookup(s)
				if err != nil || !ok {
					t.Fatalf("Lookup(%v): ok=%v err=%v", s, ok, err)
				}
				dil := p.Dilation
				if dil == core.DilationUnknown {
					dil = -1
				}
				if rec.Plan != p.String() || rec.Kind != p.Kind || rec.Method != p.Method ||
					rec.CubeDim != p.CubeDim || rec.Dilation != dil || rec.Minimal != p.Minimal() {
					t.Fatalf("Lookup(%v) = %+v, planner says %v (dil %d method %d cube %d minimal %v)",
						s, rec, p, dil, p.Method, p.CubeDim, p.Minimal())
				}
			}
			checked++
		})
	}
	if uint64(checked) != hdr.RecordCount {
		t.Fatalf("checked %d records, header says %d", checked, hdr.RecordCount)
	}

	// Out-of-domain and non-canonical shapes must miss, not error.
	for _, s := range []mesh.Shape{{5, 3, 4}, {1, 2}, {1, 2, 3, 4}, {1, 2, 13}} {
		if _, ok, err := a.Lookup(s); ok || err != nil {
			t.Fatalf("Lookup(%v) = ok=%v err=%v, want miss", s, ok, err)
		}
	}

	// Kill-and-resume byte-identity: rebuild interrupted at a chunk
	// boundary, resuming with OpenBuilderAt, and require the same bytes.
	resumed := filepath.Join(t.TempDir(), "resumed.art")
	b, err := NewBuilder(resumed, "mesh", dims, maxAxis, pl.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	stop := maxAxis / 2
	for c := 1; c <= stop; c++ {
		EachShapeWithMax(dims, c, func(s mesh.Shape) {
			if err := b.Add(s, pl.Plan(s)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	nextRank, cursor := b.Pos()
	if err := b.Abort(); err != nil { // simulated crash after checkpoint
		t.Fatal(err)
	}
	b, err = OpenBuilderAt(resumed, "mesh", dims, maxAxis, pl.Fingerprint(), nextRank, cursor)
	if err != nil {
		t.Fatal(err)
	}
	for c := stop + 1; c <= maxAxis; c++ {
		EachShapeWithMax(dims, c, func(s mesh.Shape) {
			if err := b.Add(s, pl.Plan(s)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact differs from uninterrupted build (%d vs %d bytes)", len(got), len(want))
	}
}

// TestOpenRejectsCorruption checks every guarded failure mode: truncation,
// magic/version/checksum damage, body bit-flips, and a torn (unfinalized)
// build.
func TestOpenRejectsCorruption(t *testing.T) {
	path := buildSmall(t, 2, 6)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T, b []byte) string {
		p := filepath.Join(t.TempDir(), "bad.art")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	mutate := func(f func([]byte)) []byte {
		b := bytes.Clone(good)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:HeaderSize-1],
		"truncated body":   good[:len(good)-1],
		"bad magic":        mutate(func(b []byte) { b[0] = 'X' }),
		"bad version":      mutate(func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 99) }),
		"header bit flip":  mutate(func(b []byte) { b[17] ^= 1 }),
		"body bit flip":    mutate(func(b []byte) { b[HeaderSize+3] ^= 0x04 }),
		"string bit flip":  mutate(func(b []byte) { b[len(b)-1] ^= 1 }),
		"not finalized":    mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[44:48], 0); binary.LittleEndian.PutUint32(b[56:60], 0) }),
		"trailing garbage": append(bytes.Clone(good), 0),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Open(write(t, b)); err == nil {
				t.Fatalf("Open accepted a %s artifact", name)
			}
		})
	}
	// "not finalized" with a fixed-up header checksum must still be
	// rejected, by the complete flag itself.
	b := bytes.Clone(good)
	binary.LittleEndian.PutUint32(b[44:48], 0)
	binary.LittleEndian.PutUint32(b[56:60], 0)
	// Recompute the header checksum so only the flag is "wrong".
	hdr, err := decodeHeaderLoose(b[:HeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	copy(b, hdr.encode())
	if _, err := Open(write(t, b)); err == nil {
		t.Fatal("Open accepted an unfinalized artifact with a valid header checksum")
	}
}

// decodeHeaderLoose decodes without the checksum gate, for tests that
// re-encode a mutated header.
func decodeHeaderLoose(b []byte) (*Header, error) {
	h := &Header{
		Family:      "mesh",
		Dims:        int(b[16]),
		MaxAxis:     int(binary.LittleEndian.Uint16(b[18:20])),
		RecordCount: binary.LittleEndian.Uint64(b[24:32]),
		StringBytes: binary.LittleEndian.Uint64(b[32:40]),
		CRC:         binary.LittleEndian.Uint32(b[40:44]),
		Complete:    binary.LittleEndian.Uint32(b[44:48])&flagComplete != 0,
		Fingerprint: binary.LittleEndian.Uint64(b[48:56]),
	}
	return h, nil
}

// FuzzDecodeRecord fuzzes the fixed-width record decoder: it must never
// panic, and every accepted record must re-encode consistently.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(bytes.Repeat([]byte{0}, RecordSize))
	f.Add([]byte{0, 1, 1, 3, 9, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{8, 5, 0xFF, 1, 27, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, strOff, strLen, ok, err := DecodeRecord(b)
		if err != nil || !ok {
			return
		}
		if rec.Dilation < -1 || rec.CubeDim < 0 || rec.Method < 0 || strLen < 0 {
			t.Fatalf("accepted record with impossible fields: %+v strOff=%d strLen=%d", rec, strOff, strLen)
		}
	})
}

// BenchmarkArtifactLookup measures the O(1) mmap lookup path.
func BenchmarkArtifactLookup(b *testing.B) {
	path := filepath.Join(b.TempDir(), "plans.art")
	const dims, maxAxis = 3, 24
	pl := core.NewPlanner(core.DefaultOptions)
	bl, err := NewBuilder(path, "mesh", dims, maxAxis, pl.Fingerprint())
	if err != nil {
		b.Fatal(err)
	}
	var shapes []mesh.Shape
	for c := 1; c <= maxAxis; c++ {
		EachShapeWithMax(dims, c, func(s mesh.Shape) {
			shapes = append(shapes, s.Clone())
			if err := bl.Add(s, pl.Plan(s)); err != nil {
				b.Fatal(err)
			}
		})
	}
	if _, err := bl.Finalize(); err != nil {
		b.Fatal(err)
	}
	a, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		rec, ok, err := a.Lookup(shapes[i%len(shapes)])
		if err != nil || !ok {
			b.Fatalf("lookup failed: %+v %v %v", rec, ok, err)
		}
		sink += rec.CubeDim
	}
	benchCubeDims = sink
}

// benchCubeDims keeps the benchmarked lookups from being dead-code
// eliminated.
var benchCubeDims int
