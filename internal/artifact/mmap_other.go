//go:build !unix

package artifact

import (
	"errors"
	"os"
)

// mapFile always fails off unix; Open falls back to pread.
func mapFile(*os.File, uint64) (sectionReader, error) {
	return nil, errors.New("artifact: mmap unsupported on this platform")
}
