//go:build unix

package artifact

import (
	"fmt"
	"os"
	"syscall"
)

// mmapReader serves slices straight out of a read-only shared mapping —
// the O(1) lookup path: no copy, no syscall after open.
type mmapReader struct {
	b []byte
}

func (r *mmapReader) slice(off, n uint64) ([]byte, error) {
	if off+n > uint64(len(r.b)) {
		return nil, fmt.Errorf("artifact: read [%d,%d) beyond mapping size %d", off, off+n, len(r.b))
	}
	return r.b[off : off+n : off+n], nil
}

func (r *mmapReader) close() error { return syscall.Munmap(r.b) }

// mapFile maps the whole file read-only.
func mapFile(f *os.File, size uint64) (sectionReader, error) {
	if size == 0 || size > uint64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("artifact: size %d not mappable", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapReader{b: b}, nil
}
