package artifact

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/mesh"
)

// On-disk layout (all integers little-endian):
//
//	header   64 bytes (below)
//	records  RecordCount × 16 bytes, indexed by shape rank
//	strings  StringBytes of UTF-8, the rendered plan trees
//
// record (16 bytes):
//
//	off 0  kind     u8   core.Kind of the plan root
//	off 1  method   u8   paper method (§5) of the plan
//	off 2  dilation u8   a-priori dilation bound; 0xFF = no bound
//	off 3  flags    u8   bit0 present, bit1 minimal cube
//	off 4  cubeDim  u8   host cube dimension
//	off 5  reserved u8
//	off 6  strLen   u16  length of the rendered plan tree
//	off 8  strOff   u32  offset into the string section
//	off 12 reserved u32
//
// The header is written provisionally at build start (complete flag clear)
// and rewritten by Finalize with the section CRC and the flag set, so a
// torn build is never mistaken for a valid artifact.
const (
	Magic      = "PLNART"
	Version    = 1
	HeaderSize = 64
	RecordSize = 16

	flagComplete = 1 << 0 // header: Finalize ran

	recPresent = 1 << 0 // record: rank was swept
	recMinimal = 1 << 1 // record: plan reaches the minimal cube

	dilationNone = 0xFF // record dilation byte: no a-priori bound

	// MaxRecords caps an artifact's record count.  2^25 admits the full
	// paper domain — the ≤ 512³ mesh census is 22,500,864 canonical
	// shapes (360 MiB of fixed records before the string section).
	MaxRecords = 1 << 25
)

// Header describes an artifact file.
type Header struct {
	Family      string // guest family name ("mesh", "torus")
	Dims        int
	MaxAxis     int
	RecordCount uint64
	StringBytes uint64
	CRC         uint32 // IEEE CRC-32 of records ∥ strings
	Complete    bool
	Fingerprint uint64 // FNV-64a of the planner option fingerprint
}

// FingerprintHash hashes a planner option fingerprint (core.Planner.
// Fingerprint) for the header stamp.
func FingerprintHash(fp string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, fp)
	return h.Sum64()
}

func (h *Header) encode() []byte {
	b := make([]byte, HeaderSize)
	copy(b[0:6], Magic)
	binary.LittleEndian.PutUint16(b[6:8], Version)
	fam := make([]byte, 8)
	copy(fam, h.Family)
	copy(b[8:16], fam)
	b[16] = byte(h.Dims)
	binary.LittleEndian.PutUint16(b[18:20], uint16(h.MaxAxis))
	binary.LittleEndian.PutUint64(b[24:32], h.RecordCount)
	binary.LittleEndian.PutUint64(b[32:40], h.StringBytes)
	binary.LittleEndian.PutUint32(b[40:44], h.CRC)
	var flags uint32
	if h.Complete {
		flags |= flagComplete
	}
	binary.LittleEndian.PutUint32(b[44:48], flags)
	binary.LittleEndian.PutUint64(b[48:56], h.Fingerprint)
	binary.LittleEndian.PutUint32(b[56:60], crc32.ChecksumIEEE(b[:56]))
	return b
}

func decodeHeader(b []byte) (*Header, error) {
	if len(b) < HeaderSize {
		return nil, fmt.Errorf("artifact: file shorter than the %d-byte header", HeaderSize)
	}
	if string(b[0:6]) != Magic {
		return nil, fmt.Errorf("artifact: bad magic %q", b[0:6])
	}
	if v := binary.LittleEndian.Uint16(b[6:8]); v != Version {
		return nil, fmt.Errorf("artifact: version %d, this build reads %d", v, Version)
	}
	if got, want := crc32.ChecksumIEEE(b[:56]), binary.LittleEndian.Uint32(b[56:60]); got != want {
		return nil, fmt.Errorf("artifact: header checksum mismatch (%08x != %08x)", got, want)
	}
	fam := b[8:16]
	n := 0
	for n < len(fam) && fam[n] != 0 {
		n++
	}
	h := &Header{
		Family:      string(fam[:n]),
		Dims:        int(b[16]),
		MaxAxis:     int(binary.LittleEndian.Uint16(b[18:20])),
		RecordCount: binary.LittleEndian.Uint64(b[24:32]),
		StringBytes: binary.LittleEndian.Uint64(b[32:40]),
		CRC:         binary.LittleEndian.Uint32(b[40:44]),
		Complete:    binary.LittleEndian.Uint32(b[44:48])&flagComplete != 0,
		Fingerprint: binary.LittleEndian.Uint64(b[48:56]),
	}
	if h.Dims < 1 || h.MaxAxis < 1 {
		return nil, fmt.Errorf("artifact: degenerate bounds dims=%d max_axis=%d", h.Dims, h.MaxAxis)
	}
	if want := TotalRecords(h.Dims, h.MaxAxis); h.RecordCount != want {
		return nil, fmt.Errorf("artifact: record count %d does not match dims=%d max_axis=%d (want %d)",
			h.RecordCount, h.Dims, h.MaxAxis, want)
	}
	return h, nil
}

// Rec is one decoded artifact record.
type Rec struct {
	Kind     core.Kind
	Method   int
	Dilation int // -1: no a-priori bound (mirrors the API encoding)
	CubeDim  int
	Minimal  bool
	Plan     string
}

// DecodeRecord decodes the 16 fixed bytes of a record.  It validates only
// record-local structure; section-relative bounds (strOff/strLen against
// the string section) are the loader's job.  A non-present record returns
// ok = false.
func DecodeRecord(b []byte) (rec Rec, strOff uint64, strLen int, ok bool, err error) {
	if len(b) < RecordSize {
		return Rec{}, 0, 0, false, fmt.Errorf("artifact: record truncated (%d bytes)", len(b))
	}
	flags := b[3]
	if flags&^byte(recPresent|recMinimal) != 0 {
		return Rec{}, 0, 0, false, fmt.Errorf("artifact: unknown record flags %#02x", flags)
	}
	if flags&recPresent == 0 {
		return Rec{}, 0, 0, false, nil
	}
	if b[5] != 0 || binary.LittleEndian.Uint32(b[12:16]) != 0 {
		return Rec{}, 0, 0, false, fmt.Errorf("artifact: nonzero reserved record bytes")
	}
	rec = Rec{
		Kind:    core.Kind(b[0]),
		Method:  int(b[1]),
		CubeDim: int(b[4]),
		Minimal: flags&recMinimal != 0,
	}
	if b[2] == dilationNone {
		rec.Dilation = -1
	} else {
		rec.Dilation = int(b[2])
	}
	return rec, uint64(binary.LittleEndian.Uint32(b[8:12])), int(binary.LittleEndian.Uint16(b[6:8])), true, nil
}

// RecFromPlan normalizes a plan into its record form — the same
// normalization Add has always applied before encoding: DilationUnknown
// becomes -1, Minimal() is materialized, Plan is the serialized plan
// string.  A Rec is position-independent (no string offsets), which is
// what lets a distributed plancensus worker ship records for the
// coordinator's builder to replay byte-identically.
func RecFromPlan(p *core.Plan) Rec {
	dil := p.Dilation
	if dil == core.DilationUnknown {
		dil = -1
	}
	return Rec{
		Kind: p.Kind, Method: p.Method, Dilation: dil,
		CubeDim: p.CubeDim, Minimal: p.Minimal(), Plan: p.String(),
	}
}

// encodeRec renders a record into the 16 fixed record bytes.
func encodeRec(rec Rec, strOff uint64, strLen int) ([]byte, error) {
	b := make([]byte, RecordSize)
	if rec.Kind < 0 || int(rec.Kind) > 0xFF {
		return nil, fmt.Errorf("artifact: plan kind %d out of range", rec.Kind)
	}
	switch {
	case rec.Dilation == -1:
		b[2] = dilationNone
	case rec.Dilation < 0 || rec.Dilation >= dilationNone:
		return nil, fmt.Errorf("artifact: dilation bound %d out of range", rec.Dilation)
	default:
		b[2] = byte(rec.Dilation)
	}
	if rec.CubeDim < 0 || rec.CubeDim > 0xFF {
		return nil, fmt.Errorf("artifact: cube dimension %d out of range", rec.CubeDim)
	}
	if rec.Method < 0 || rec.Method > 0xFF {
		return nil, fmt.Errorf("artifact: method %d out of range", rec.Method)
	}
	if strLen > 0xFFFF {
		return nil, fmt.Errorf("artifact: plan string of %d bytes exceeds the record limit", strLen)
	}
	if strOff > 0xFFFFFFFF {
		return nil, fmt.Errorf("artifact: string section exceeds 4 GiB")
	}
	b[0] = byte(rec.Kind)
	b[1] = byte(rec.Method)
	flags := byte(recPresent)
	if rec.Minimal {
		flags |= recMinimal
	}
	b[3] = flags
	b[4] = byte(rec.CubeDim)
	binary.LittleEndian.PutUint16(b[6:8], uint16(strLen))
	binary.LittleEndian.PutUint32(b[8:12], uint32(strOff))
	return b, nil
}

// Builder writes an artifact sequentially: records in rank order, plan
// strings appended to the trailing string section.  It is resumable — Pos
// reports (nextRank, stringCursor) after any Flush, and OpenBuilderAt
// reopens the file truncated back to exactly that position, so a replayed
// chunk rewrites bytes identically.
type Builder struct {
	f       *os.File
	hdr     Header
	strBase uint64 // file offset of the string section
	next    uint64 // next rank to be written
	cursor  uint64 // string-section bytes written
}

// NewBuilder creates (truncating) the artifact file and writes the
// provisional header.
func NewBuilder(path, family string, dims, maxAxis int, fingerprint string) (*Builder, error) {
	return openBuilder(path, family, dims, maxAxis, fingerprint, 0, 0)
}

// OpenBuilderAt reopens a partially built artifact at a checkpointed
// (nextRank, stringCursor) position, truncating anything a torn chunk may
// have written past it.
func OpenBuilderAt(path, family string, dims, maxAxis int, fingerprint string, nextRank, cursor uint64) (*Builder, error) {
	return openBuilder(path, family, dims, maxAxis, fingerprint, nextRank, cursor)
}

func openBuilder(path, family string, dims, maxAxis int, fingerprint string, nextRank, cursor uint64) (*Builder, error) {
	if len(family) == 0 || len(family) > 8 {
		return nil, fmt.Errorf("artifact: family name %q must be 1..8 bytes", family)
	}
	total := TotalRecords(dims, maxAxis)
	if total == 0 || total > MaxRecords {
		return nil, fmt.Errorf("artifact: dims=%d max_axis=%d spans %d records (cap %d)", dims, maxAxis, total, MaxRecords)
	}
	if nextRank > total {
		return nil, fmt.Errorf("artifact: resume rank %d beyond record count %d", nextRank, total)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	b := &Builder{
		f: f,
		hdr: Header{
			Family: family, Dims: dims, MaxAxis: maxAxis,
			RecordCount: total, Fingerprint: FingerprintHash(fingerprint),
		},
		strBase: HeaderSize + total*RecordSize,
		next:    nextRank,
		cursor:  cursor,
	}
	// Provisional header (complete flag clear), then cut the file back to
	// the resume position: records are pre-sized (sparse until written) and
	// the string section ends exactly at the checkpointed cursor.
	if _, err := f.WriteAt(b.hdr.encode(), 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(b.strBase + cursor)); err != nil {
		f.Close()
		return nil, err
	}
	return b, nil
}

// Pos returns the resume position after the records written so far.
func (b *Builder) Pos() (nextRank, cursor uint64) { return b.next, b.cursor }

// Add writes the plan record for the next shape in rank order.  The shape
// must be the canonical shape of rank Pos() — the builder verifies it.
func (b *Builder) Add(s mesh.Shape, p *core.Plan) error {
	return b.AddRec(s, RecFromPlan(p))
}

// AddRec writes an already-normalized record for the next shape in rank
// order — the replay path of a distributed plancensus fold, where the plan
// was computed on a worker and shipped as a Rec.  Byte-for-byte equivalent
// to Add of the plan it came from.
func (b *Builder) AddRec(s mesh.Shape, rec Rec) error {
	if err := CheckShape(s, b.hdr.Dims, b.hdr.MaxAxis); err != nil {
		return err
	}
	if r := Rank(s); r != b.next {
		return fmt.Errorf("artifact: shape %s has rank %d, builder expects %d", s, r, b.next)
	}
	enc, err := encodeRec(rec, b.cursor, len(rec.Plan))
	if err != nil {
		return err
	}
	if _, err := b.f.WriteAt(enc, int64(HeaderSize+b.next*RecordSize)); err != nil {
		return err
	}
	if _, err := b.f.WriteAt([]byte(rec.Plan), int64(b.strBase+b.cursor)); err != nil {
		return err
	}
	b.next++
	b.cursor += uint64(len(rec.Plan))
	return nil
}

// Flush fsyncs everything written so far; call it before checkpointing
// Pos so a crash never loses acknowledged records.
func (b *Builder) Flush() error { return b.f.Sync() }

// Finalize checksums the sections, writes the completed header, closes the
// file and returns the final header.  Every rank must have been added.
func (b *Builder) Finalize() (Header, error) {
	if b.next != b.hdr.RecordCount {
		return Header{}, fmt.Errorf("artifact: finalize after %d of %d records", b.next, b.hdr.RecordCount)
	}
	if err := b.f.Sync(); err != nil {
		return Header{}, err
	}
	crc := crc32.NewIEEE()
	if _, err := b.f.Seek(HeaderSize, io.SeekStart); err != nil {
		return Header{}, err
	}
	if _, err := io.Copy(crc, b.f); err != nil {
		return Header{}, err
	}
	b.hdr.StringBytes = b.cursor
	b.hdr.CRC = crc.Sum32()
	b.hdr.Complete = true
	if _, err := b.f.WriteAt(b.hdr.encode(), 0); err != nil {
		return Header{}, err
	}
	if err := b.f.Sync(); err != nil {
		return Header{}, err
	}
	return b.hdr, b.f.Close()
}

// Abort closes the builder without finalizing (the provisional header
// keeps the file invalid for loaders).
func (b *Builder) Abort() error { return b.f.Close() }

// Artifact is a loaded, validated artifact serving O(1) lookups.  It is
// immutable and safe for concurrent use.
type Artifact struct {
	hdr  Header
	path string
	data sectionReader
}

// sectionReader abstracts the two byte sources: the mmap window and the
// pread fallback.
type sectionReader interface {
	slice(off, n uint64) ([]byte, error)
	close() error
}

// fileReader is the pread fallback when mmap is unavailable.
type fileReader struct {
	f    *os.File
	size uint64
}

func (r *fileReader) slice(off, n uint64) ([]byte, error) {
	if off+n > r.size {
		return nil, fmt.Errorf("artifact: read [%d,%d) beyond file size %d", off, off+n, r.size)
	}
	b := make([]byte, n)
	if _, err := r.f.ReadAt(b, int64(off)); err != nil {
		return nil, err
	}
	return b, nil
}

func (r *fileReader) close() error { return r.f.Close() }

// Open loads an artifact: header validation (magic, version, checksums,
// complete flag, section sizes against the file size), then an mmap of the
// whole file — falling back to pread when the platform or filesystem
// refuses the mapping.  The full-body CRC is verified once at open.
func Open(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := uint64(st.Size())
	hb := make([]byte, HeaderSize)
	if _, err := io.ReadFull(f, hb); err != nil {
		f.Close()
		return nil, fmt.Errorf("artifact: %s: short header read: %v", path, err)
	}
	hdr, err := decodeHeader(hb)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("artifact: %s: %v", path, err)
	}
	if !hdr.Complete {
		f.Close()
		return nil, fmt.Errorf("artifact: %s: build did not finalize (torn or in progress)", path)
	}
	want := HeaderSize + hdr.RecordCount*RecordSize + hdr.StringBytes
	if size != want {
		f.Close()
		return nil, fmt.Errorf("artifact: %s: file is %d bytes, header describes %d", path, size, want)
	}
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, f); err != nil {
		f.Close()
		return nil, err
	}
	if got := crc.Sum32(); got != hdr.CRC {
		f.Close()
		return nil, fmt.Errorf("artifact: %s: body checksum mismatch (%08x != %08x)", path, got, hdr.CRC)
	}
	data, err := mapFile(f, size)
	if err != nil {
		// pread fallback: keep the descriptor.
		data = &fileReader{f: f, size: size}
	} else {
		f.Close()
	}
	return &Artifact{hdr: *hdr, path: path, data: data}, nil
}

// Header returns a copy of the artifact's header.
func (a *Artifact) Header() Header { return a.hdr }

// Path returns the file the artifact was loaded from.
func (a *Artifact) Path() string { return a.path }

// Close releases the mapping or descriptor.
func (a *Artifact) Close() error { return a.data.close() }

// Covers reports whether a canonical shape is inside the artifact's domain.
func (a *Artifact) Covers(s mesh.Shape) bool {
	return CheckShape(s, a.hdr.Dims, a.hdr.MaxAxis) == nil
}

// Lookup returns the record for a canonical shape, or ok = false when the
// shape is outside the artifact's domain (wrong arity, axis bound, or
// non-canonical order).  Corrupt in-domain records return an error.
func (a *Artifact) Lookup(s mesh.Shape) (Rec, bool, error) {
	if !a.Covers(s) {
		return Rec{}, false, nil
	}
	return a.At(Rank(s))
}

// At returns the record at a rank.
func (a *Artifact) At(rank uint64) (Rec, bool, error) {
	if rank >= a.hdr.RecordCount {
		return Rec{}, false, fmt.Errorf("artifact: rank %d beyond record count %d", rank, a.hdr.RecordCount)
	}
	rb, err := a.data.slice(HeaderSize+rank*RecordSize, RecordSize)
	if err != nil {
		return Rec{}, false, err
	}
	rec, strOff, strLen, ok, err := DecodeRecord(rb)
	if err != nil || !ok {
		return Rec{}, false, err
	}
	if strOff+uint64(strLen) > a.hdr.StringBytes {
		return Rec{}, false, fmt.Errorf("artifact: record %d string [%d,%d) beyond section size %d",
			rank, strOff, strOff+uint64(strLen), a.hdr.StringBytes)
	}
	sb, err := a.data.slice(HeaderSize+a.hdr.RecordCount*RecordSize+strOff, uint64(strLen))
	if err != nil {
		return Rec{}, false, err
	}
	rec.Plan = string(sb)
	return rec, true, nil
}
