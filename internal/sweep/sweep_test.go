package sweep

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("Workers should normalize non-positive requests to >= 1")
	}
	if Workers(5) != 5 {
		t.Error("Workers should pass explicit counts through")
	}
}

func TestMapMatchesSerial(t *testing.T) {
	fn := func(i int) int { return i*i - 3*i }
	want := Map(1000, 1, fn)
	for _, w := range []int{2, 3, 7, 0} {
		got := Map(1000, w, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapOrderDeterministic(t *testing.T) {
	got := Map(64, 8, func(i int) string { return fmt.Sprintf("item-%02d", i) })
	for i, s := range got {
		if want := fmt.Sprintf("item-%02d", i); s != want {
			t.Fatalf("slot %d holds %q, want %q", i, s, want)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); out != nil {
		t.Errorf("Map(0) = %v, want nil", out)
	}
	if out := Map(-5, 4, func(i int) int { return i }); out != nil {
		t.Errorf("Map(-5) = %v, want nil", out)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the worker panic to reach the caller")
		}
		if s, ok := r.(string); !ok || s != "boom 13" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Map(100, 4, func(i int) int {
		if i == 13 {
			panic("boom 13")
		}
		return i
	})
}

func TestFold(t *testing.T) {
	sum := Fold(101, 5, func(i int) int { return i }, 0, func(acc, r int) int { return acc + r })
	if sum != 100*101/2 {
		t.Errorf("Fold sum = %d, want %d", sum, 100*101/2)
	}
	// Merge order is index order: string concatenation must come out sorted.
	s := Fold(10, 4, func(i int) string { return fmt.Sprint(i) }, "",
		func(acc, r string) string { return acc + r })
	if s != "0123456789" {
		t.Errorf("Fold merge order broken: %q", s)
	}
}

func TestEachCoversAllOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	Each(n, 6, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
