// Package sweep is the shared bounded worker-pool engine behind the
// shape-space enumerations (Figure 2, the exceptional-mesh lists, the §8
// conjecture sweep) and the CLI tools.  Work items are indexed 0..n-1 and
// handed to workers through an atomic cursor; results land in slots indexed
// by item, so output order — and therefore every golden rendering built
// from it — is independent of the worker count and the scheduling.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Workers normalizes a requested worker count: values below one mean "use
// GOMAXPROCS".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Map computes fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results indexed by i.  fn must be safe for concurrent calls.
// A panic in any fn is re-raised on the caller after the pool drains, so a
// failing sweep fails loudly instead of deadlocking.
func Map[R any](n, workers int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	workers = min(Workers(workers), n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
		once     sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out
}

// MapCtx is Map with observability: when ctx carries an active obs span the
// pool runs under a "sweep" child span with one span per worker recording
// items processed, busy time (cumulative time inside fn) and a lane for the
// Chrome export, plus an imbalance summary (max worker busy time over the
// even-share average) on the pool span.  fn receives a context carrying its
// worker's span, so work items can open their own child spans.
//
// When no span rides ctx — or the tracer is disabled — MapCtx delegates to
// Map and the only cost is the closure adapting fn.  Results are indexed by
// item exactly like Map, so output is independent of scheduling either way.
func MapCtx[R any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) R) []R {
	if n <= 0 {
		return nil
	}
	sctx, pool := obs.Start(ctx, "sweep")
	if pool == nil {
		return Map(n, workers, func(i int) R { return fn(ctx, i) })
	}
	defer pool.End()
	w := min(Workers(workers), n)
	pool.SetAttr("items", n)
	pool.SetAttr("workers", w)
	out := make([]R, n)
	busy := make([]int64, w)
	items := make([]int64, w)
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
		once     sync.Once
	)
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			wctx, ws := obs.Start(sctx, fmt.Sprintf("worker %d", wi))
			ws.SetLane(wi + 1)
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
				ws.SetAttr("items", items[wi])
				ws.SetAttr("busy_ns", busy[wi])
				ws.End()
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				t0 := time.Now()
				out[i] = fn(wctx, i)
				busy[wi] += int64(time.Since(t0))
				items[wi]++
			}
		}(wi)
	}
	wg.Wait()
	var sum, maxBusy int64
	minBusy := busy[0]
	for _, b := range busy {
		sum += b
		maxBusy = max(maxBusy, b)
		minBusy = min(minBusy, b)
	}
	pool.SetAttr("busy_total_ns", sum)
	pool.SetAttr("busy_max_ns", maxBusy)
	pool.SetAttr("busy_min_ns", minBusy)
	if sum > 0 {
		// 1.0 = perfectly even; w = one worker did everything.
		pool.SetAttr("imbalance", float64(maxBusy)*float64(w)/float64(sum))
	}
	if panicked.Load() {
		panic(panicVal)
	}
	return out
}

// Fold maps fn across [0, n) in parallel and merges the results into acc
// in index order.  merge runs on the caller's goroutine, so accumulators
// need no locking and the reduction is deterministic.
func Fold[A, R any](n, workers int, fn func(i int) R, acc A, merge func(A, R) A) A {
	for _, r := range Map(n, workers, fn) {
		acc = merge(acc, r)
	}
	return acc
}

// FoldCtx is Fold with cooperative cancellation: workers stop pulling new
// items once ctx is done, and the partial results are discarded — on
// cancellation FoldCtx returns acc untouched along with ctx.Err(), so a
// caller never observes a reduction over an incomplete item set.  A nil or
// never-cancelled ctx makes FoldCtx behave exactly like Fold (same item
// order, same deterministic merge).  Long-running shard loops (the batch-job
// chunks) use this so a cancelled job stops within one item, not one chunk.
func FoldCtx[A, R any](ctx context.Context, n, workers int, fn func(i int) R, acc A, merge func(A, R) A) (A, error) {
	if n <= 0 {
		return acc, ctx.Err()
	}
	out := make([]R, n)
	workers = min(Workers(workers), n)
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
		once     sync.Once
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(cursor.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	if err := ctx.Err(); err != nil {
		return acc, err
	}
	for _, r := range out {
		acc = merge(acc, r)
	}
	return acc, nil
}

// Each runs fn(i) for every i in [0, n) for its side effects, with the same
// pool semantics as Map.
func Each(n, workers int, fn func(i int)) {
	Map(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
