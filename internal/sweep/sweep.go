// Package sweep is the shared bounded worker-pool engine behind the
// shape-space enumerations (Figure 2, the exceptional-mesh lists, the §8
// conjecture sweep) and the CLI tools.  Work items are indexed 0..n-1 and
// handed to workers through an atomic cursor; results land in slots indexed
// by item, so output order — and therefore every golden rendering built
// from it — is independent of the worker count and the scheduling.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below one mean "use
// GOMAXPROCS".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Map computes fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results indexed by i.  fn must be safe for concurrent calls.
// A panic in any fn is re-raised on the caller after the pool drains, so a
// failing sweep fails loudly instead of deadlocking.
func Map[R any](n, workers int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	workers = min(Workers(workers), n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
		once     sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out
}

// Fold maps fn across [0, n) in parallel and merges the results into acc
// in index order.  merge runs on the caller's goroutine, so accumulators
// need no locking and the reduction is deterministic.
func Fold[A, R any](n, workers int, fn func(i int) R, acc A, merge func(A, R) A) A {
	for _, r := range Map(n, workers, fn) {
		acc = merge(acc, r)
	}
	return acc
}

// Each runs fn(i) for every i in [0, n) for its side effects, with the same
// pool semantics as Map.
func Each(n, workers int, fn func(i int)) {
	Map(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
