package sweep

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestMapCtxMatchesMap(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(100, 4, fn)
	got := MapCtx(context.Background(), 100, 4, func(_ context.Context, i int) int { return fn(i) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapCtx[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if MapCtx(context.Background(), 0, 4, func(_ context.Context, i int) int { return i }) != nil {
		t.Fatal("n=0 must return nil")
	}
}

// TestMapCtxTracedTree runs concurrent workers under an active trace (this
// test is part of the -race suite) and checks the span tree is well-formed:
// one pool span, one span per worker, item counts summing to n, and an
// imbalance summary on the pool span.
func TestMapCtxTracedTree(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	ctx, root := obs.StartRoot(context.Background(), "test")
	const n, workers = 257, 8
	var calls atomic.Int64
	out := MapCtx(ctx, n, workers, func(wctx context.Context, i int) int {
		calls.Add(1)
		_, sp := obs.Start(wctx, "item")
		sp.End()
		return i
	})
	root.End()

	if len(out) != n || calls.Load() != n {
		t.Fatalf("ran %d items (len %d), want %d", calls.Load(), len(out), n)
	}
	snap := root.Snapshot()
	pool := snap.Find("sweep")
	if pool == nil {
		t.Fatal("no sweep span")
	}
	if len(pool.Children) != workers {
		t.Fatalf("worker spans = %d, want %d", len(pool.Children), workers)
	}
	var items int64
	lanes := map[int]bool{}
	for _, ws := range pool.Children {
		if ws.Unfinished {
			t.Fatalf("worker span %s unfinished", ws.Name)
		}
		lanes[ws.Lane] = true
		var wItems, wBusy int64 = -1, -1
		for _, a := range ws.Attrs {
			switch a.Key {
			case "items":
				wItems = a.Value.(int64)
			case "busy_ns":
				wBusy = a.Value.(int64)
			}
		}
		if wItems < 0 || wBusy < 0 {
			t.Fatalf("worker span %s missing items/busy attrs: %+v", ws.Name, ws.Attrs)
		}
		items += wItems
		if int64(len(ws.Children)) != wItems {
			t.Fatalf("worker %s: %d item spans for %d items", ws.Name, len(ws.Children), wItems)
		}
	}
	if items != n {
		t.Fatalf("worker items sum to %d, want %d", items, n)
	}
	if len(lanes) != workers {
		t.Fatalf("lanes not distinct: %v", lanes)
	}
	hasImbalance := false
	for _, a := range pool.Attrs {
		if a.Key == "imbalance" {
			hasImbalance = true
			if v := a.Value.(float64); v < 1 {
				t.Fatalf("imbalance = %v, want >= 1", v)
			}
		}
	}
	if !hasImbalance {
		t.Fatalf("no imbalance summary on pool span: %+v", pool.Attrs)
	}
}

func TestMapCtxPanicPropagates(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	ctx, root := obs.StartRoot(context.Background(), "test")
	defer root.End()
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	MapCtx(ctx, 64, 4, func(_ context.Context, i int) int {
		if i == 13 {
			panic("boom")
		}
		return i
	})
}
