package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// withEnabled runs f with the tracer forced to the given state and restores
// the previous state afterwards.
func withEnabled(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(on)
	defer SetEnabled(prev)
	f()
}

func TestDisabledHotPathZeroAllocs(t *testing.T) {
	withEnabled(t, false, func() {
		ctx := context.Background()
		allocs := testing.AllocsPerRun(1000, func() {
			c, sp := Start(ctx, "hot")
			sp.SetAttr("k", 1)
			sp.End()
			if c != ctx {
				t.Fatal("disabled Start must return the original context")
			}
		})
		if allocs != 0 {
			t.Fatalf("disabled Start/SetAttr/End allocated %.1f times per run, want 0", allocs)
		}
		if _, sp := StartRoot(ctx, "r"); sp != nil {
			t.Fatal("disabled StartRoot returned a span")
		}
	})
}

func TestEnabledNoSpanZeroAllocs(t *testing.T) {
	withEnabled(t, true, func() {
		// The server's non-debug request path: tracer armed, but the
		// context carries no span — still allocation-free.
		ctx := context.Background()
		allocs := testing.AllocsPerRun(1000, func() {
			_, sp := Start(ctx, "hot")
			sp.End()
		})
		if allocs != 0 {
			t.Fatalf("enabled no-span Start allocated %.1f times per run, want 0", allocs)
		}
	})
}

func TestSpanTree(t *testing.T) {
	withEnabled(t, true, func() {
		ctx, root := StartRoot(context.Background(), "root")
		if root == nil {
			t.Fatal("StartRoot returned nil while enabled")
		}
		cctx, a := Start(ctx, "a")
		a.SetAttr("k", "v")
		_, aa := Start(cctx, "aa")
		aa.End()
		a.End()
		_, b := Start(ctx, "b")
		b.End()
		root.End()

		snap := root.Snapshot()
		if snap.Count() != 4 {
			t.Fatalf("span count = %d, want 4", snap.Count())
		}
		if len(snap.Children) != 2 || snap.Children[0].Name != "a" || snap.Children[1].Name != "b" {
			t.Fatalf("unexpected children: %+v", snap.Children)
		}
		if got := snap.Find("aa"); got == nil {
			t.Fatal("Find(aa) = nil")
		}
		if snap.Children[0].Attrs[0].Key != "k" {
			t.Fatalf("attr not recorded: %+v", snap.Children[0].Attrs)
		}
		if snap.Unfinished || snap.DurationNS < 0 {
			t.Fatalf("root should be finished with non-negative duration: %+v", snap)
		}
	})
}

func TestUnfinishedSnapshot(t *testing.T) {
	withEnabled(t, true, func() {
		_, root := StartRoot(context.Background(), "root")
		snap := root.Snapshot()
		if !snap.Unfinished {
			t.Fatal("running span must snapshot as unfinished")
		}
		if snap.DurationNS < 0 {
			t.Fatalf("unfinished duration = %d, want elapsed-so-far", snap.DurationNS)
		}
	})
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", 1)
	s.SetLane(3)
	if s.StartChild("c") != nil {
		t.Fatal("nil StartChild must return nil")
	}
	if s.Snapshot() != nil {
		t.Fatal("nil Snapshot must return nil")
	}
	if s.Name() != "" {
		t.Fatal("nil Name must be empty")
	}
}

func TestConcurrentChildren(t *testing.T) {
	withEnabled(t, true, func() {
		ctx, root := StartRoot(context.Background(), "root")
		const workers, per = 16, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					_, sp := Start(ctx, fmt.Sprintf("w%d-%d", w, i))
					sp.SetAttr("worker", w)
					sp.SetLane(w + 1)
					sp.End()
				}
			}(w)
		}
		wg.Wait()
		root.End()
		snap := root.Snapshot()
		if got := len(snap.Children); got != workers*per {
			t.Fatalf("children = %d, want %d", got, workers*per)
		}
		for _, c := range snap.Children {
			if c.Unfinished {
				t.Fatalf("child %s unfinished", c.Name)
			}
			if c.Lane < 1 || c.Lane > workers {
				t.Fatalf("child %s lane = %d", c.Name, c.Lane)
			}
		}
	})
}

func TestStatsCounters(t *testing.T) {
	withEnabled(t, true, func() {
		before := ReadStats()
		ctx, root := StartRoot(context.Background(), "root")
		_, c := Start(ctx, "c")
		c.End()
		root.End()
		after := ReadStats()
		if after.Traces != before.Traces+1 {
			t.Fatalf("traces %d -> %d, want +1", before.Traces, after.Traces)
		}
		if after.Spans != before.Spans+2 {
			t.Fatalf("spans %d -> %d, want +2", before.Spans, after.Spans)
		}
		if after.OverheadNS < before.OverheadNS {
			t.Fatalf("overhead went backwards: %d -> %d", before.OverheadNS, after.OverheadNS)
		}
	})
}

func TestResetStats(t *testing.T) {
	withEnabled(t, true, func() {
		_, root := StartRoot(context.Background(), "root")
		root.End()
		if s := ReadStats(); s.Spans == 0 || s.Traces == 0 {
			t.Fatalf("expected non-zero stats before reset: %+v", s)
		}
		ResetStats()
		if s := ReadStats(); s.Spans != 0 || s.Traces != 0 || s.OverheadNS != 0 {
			t.Fatalf("stats after reset = %+v, want zeros", s)
		}
	})
}

func TestSpanContext(t *testing.T) {
	withEnabled(t, true, func() {
		ctx, root := StartRoot(context.Background(), "root")
		_, child := Start(ctx, "child")
		rc, cc := root.Context(), child.Context()
		if rc.TraceID == "" || rc.SpanID == "" {
			t.Fatalf("root context incomplete: %+v", rc)
		}
		if cc.TraceID != rc.TraceID {
			t.Fatalf("child trace ID %q != root trace ID %q", cc.TraceID, rc.TraceID)
		}
		if cc.SpanID == rc.SpanID {
			t.Fatalf("child span ID %q collides with root", cc.SpanID)
		}
		if again := child.Context(); again != cc {
			t.Fatalf("Context not stable: %+v then %+v", cc, again)
		}
		_, other := StartRoot(context.Background(), "other")
		if other.Context().TraceID == rc.TraceID {
			t.Fatal("two roots share a trace ID")
		}
		var nilSpan *Span
		if sc := nilSpan.Context(); sc != (SpanContext{}) {
			t.Fatalf("nil Context = %+v, want zero", sc)
		}
		child.End()
		root.End()
		// Only spans whose Context was taken carry a span_id in the export.
		snap := root.Snapshot()
		if snap.SpanID != rc.SpanID || snap.Children[0].SpanID != cc.SpanID {
			t.Fatalf("snapshot IDs not preserved: %+v", snap)
		}
		_, plain := StartRoot(context.Background(), "plain")
		plain.End()
		if got := plain.Snapshot().SpanID; got != "" {
			t.Fatalf("untouched span exported span_id %q, want empty", got)
		}
	})
}

func TestAttachRemote(t *testing.T) {
	withEnabled(t, true, func() {
		_, root := StartRoot(context.Background(), "root")
		local := root.StartChild("local")
		local.End()
		remote := &SpanJSON{
			Name:         "remote chunk",
			DurationNS:   42,
			TraceID:      root.Context().TraceID,
			ParentSpanID: root.Context().SpanID,
		}
		root.AttachRemote(remote)
		root.AttachRemote(nil) // no-op
		root.End()
		snap := root.Snapshot()
		if len(snap.Children) != 2 {
			t.Fatalf("children = %d, want local + remote", len(snap.Children))
		}
		if snap.Children[0].Name != "local" || snap.Children[1].Name != "remote chunk" {
			t.Fatalf("remote subtree not appended after local children: %+v", snap.Children)
		}
		if snap.Children[1].ParentSpanID != snap.SpanID {
			t.Fatal("remote parent_span_id does not match the stitched parent")
		}
		if snap.Count() != 3 {
			t.Fatalf("count = %d, want 3", snap.Count())
		}
		var nilSpan *Span
		nilSpan.AttachRemote(remote) // nil-safe
	})
}

func TestChromeExport(t *testing.T) {
	withEnabled(t, true, func() {
		ctx, root := StartRoot(context.Background(), "root")
		cctx, a := Start(ctx, "a")
		a.SetLane(2)
		_, aa := Start(cctx, "aa") // inherits lane 2
		aa.SetAttr("items", 7)
		aa.End()
		a.End()
		root.End()

		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, root.Snapshot()); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				TS   float64        `json:"ts"`
				Dur  float64        `json:"dur"`
				PID  int            `json:"pid"`
				TID  int            `json:"tid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("export is not valid JSON: %v", err)
		}
		if len(doc.TraceEvents) != 3 {
			t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
		}
		byName := map[string]int{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				t.Fatalf("event %s: ph = %q, want X", ev.Name, ev.Ph)
			}
			if ev.TS <= 0 || ev.PID != 1 {
				t.Fatalf("event %s: bad ts/pid: %+v", ev.Name, ev)
			}
			byName[ev.Name] = ev.TID
		}
		if byName["root"] != 1 || byName["a"] != 2 || byName["aa"] != 2 {
			t.Fatalf("lane inheritance broken: %v", byName)
		}
	})
}
