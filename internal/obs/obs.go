// Package obs is a zero-dependency, context-propagated span tracer for the
// embedding stack.  A trace is a tree of spans: StartRoot opens the root for
// one unit of work (an HTTP request, a CLI invocation) and Start opens a
// child of whatever span the context already carries.  Spans record wall
// time and free-form attributes; the finished tree is exported as JSON
// (Snapshot) or as Chrome trace-event JSON (WriteChromeTrace).
//
// The tracer is built to disappear from the hot path:
//
//   - A package-level atomic enable flag gates every Start*; when tracing is
//     disabled (SetEnabled(false)) the fast path is a single atomic load and
//     performs zero allocations.
//   - When enabled but no span rides the context — the common case for every
//     non-debug request — Start is an atomic load plus one context lookup,
//     still allocation-free.
//   - All Span methods are nil-receiver safe, so instrumented code never
//     branches on whether tracing is active.
//
// Package counters (ReadStats) expose how many spans and traces were started
// and the cumulative time spent creating spans, so the tracer's own overhead
// is observable from /metrics.
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// disabled is inverted so the zero value means "enabled": per-request debug
// tracing works out of the box and the flag is purely a kill switch.
var (
	disabled      atomic.Bool
	spansStarted  atomic.Uint64
	tracesStarted atomic.Uint64
	overheadNS    atomic.Int64
)

// SetEnabled arms or kills the tracer globally.  Disabling mid-flight is
// safe: spans already started keep working, new Start* calls return nil.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether the tracer is armed.
func Enabled() bool { return !disabled.Load() }

// Stats are the tracer's own counters, for the /metrics exposition.
type Stats struct {
	// Spans counts spans started (roots included).
	Spans uint64
	// Traces counts root spans started.
	Traces uint64
	// OverheadNS is the cumulative wall time spent inside span creation —
	// an upper-bound estimate of the tracer's cost while enabled.
	OverheadNS int64
}

// ReadStats returns the current counter values.
func ReadStats() Stats {
	return Stats{
		Spans:      spansStarted.Load(),
		Traces:     tracesStarted.Load(),
		OverheadNS: overheadNS.Load(),
	}
}

// ResetStats zeroes the tracer counters.  Benchmark drivers (embedctl bench)
// call it so ReadStats deltas are per-run, matching the server-side metric
// deltas; the /metrics exposition never resets, so the two are only
// comparable per run window.
func ResetStats() {
	spansStarted.Store(0)
	tracesStarted.Store(0)
	overheadNS.Store(0)
}

// Span identity for cross-process propagation: IDs are assigned lazily (only
// spans that actually cross a process boundary pay for one) from a
// per-process random prefix plus a counter, so coordinator- and
// worker-minted IDs cannot collide within a trace.
var (
	idSeed    = rand.Uint64()
	idCounter atomic.Uint64
)

func newID() string {
	return fmt.Sprintf("%08x-%x", uint32(idSeed), idCounter.Add(1))
}

// SpanContext is a span's propagable wire identity: enough for a remote
// process to run work under a child of this span and for the originator to
// validate the returned snapshot before stitching it in.  The zero value
// means "no trace" — both sides treat it as tracing-off.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Context returns the span's wire identity, minting IDs on first use.  The
// trace ID is shared by every span of the trace (assigned at StartRoot); the
// span ID is unique to s.  Nil-safe: returns the zero SpanContext.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	if s.id == "" {
		s.id = newID()
	}
	sc := SpanContext{TraceID: s.traceID, SpanID: s.id}
	s.mu.Unlock()
	return sc
}

// Attr is one span attribute.  Values should be JSON-marshalable scalars.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed node of a trace tree.  A Span is safe for concurrent
// use: children may be started and ended from many goroutines (the sweep
// worker pool does exactly that).  The nil *Span is a valid no-op span.
type Span struct {
	name  string
	start time.Time
	// traceID is inherited root → children at creation and immutable after,
	// so it is read without the lock.
	traceID string

	mu       sync.Mutex
	id       string // wire span ID; minted lazily by Context()
	durNS    int64  // -1 while running
	lane     int    // Chrome-export lane (tid); 0 inherits the parent's
	attrs    []Attr
	children []*Span
	remote   []*SpanJSON // pre-snapshotted subtrees grafted by AttachRemote
}

type ctxKey struct{}

// ContextWith returns ctx carrying s; a nil span returns ctx unchanged.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span riding ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartRoot opens a new trace and returns ctx carrying its root span.  When
// the tracer is disabled it returns (ctx, nil) after one atomic load.
func StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	t0 := time.Now()
	s := &Span{name: name, start: t0, durNS: -1, traceID: newID()}
	tracesStarted.Add(1)
	spansStarted.Add(1)
	overheadNS.Add(int64(time.Since(t0)))
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start opens a child of the span riding ctx and returns ctx carrying the
// child.  When the tracer is disabled, or no span rides ctx, it returns
// (ctx, nil) without allocating.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return context.WithValue(ctx, ctxKey{}, c), c
}

// StartChild opens a child span directly on s (for callers that hold a span
// rather than a context).  Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t0 := time.Now()
	c := &Span{name: name, start: t0, durNS: -1, traceID: s.traceID}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	spansStarted.Add(1)
	overheadNS.Add(int64(time.Since(t0)))
	return c
}

// End fixes the span's duration.  Ending twice keeps the first duration;
// nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := int64(time.Since(s.start))
	s.mu.Lock()
	if s.durNS < 0 {
		s.durNS = d
	}
	s.mu.Unlock()
}

// SetAttr appends one attribute.  Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetLane assigns the span (and, by inheritance, its subtree) to a Chrome
// trace-export lane, so concurrent siblings — sweep workers — render on
// separate rows instead of overlapping.  Nil-safe.
func (s *Span) SetLane(l int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.lane = l
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// AttachRemote grafts a snapshot produced by another process — a worker's
// chunk subtree — under s: Snapshot() appends it after the locally started
// children.  The caller hands over ownership of snap (it is not deep-copied).
// Nil-safe on both sides.
func (s *Span) AttachRemote(snap *SpanJSON) {
	if s == nil || snap == nil {
		return
	}
	s.mu.Lock()
	s.remote = append(s.remote, snap)
	s.mu.Unlock()
}

// SpanJSON is the exported form of a span tree: a deep, immutable copy safe
// to marshal and to hand across API boundaries.
type SpanJSON struct {
	Name        string `json:"name"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	// TraceID / SpanID / ParentSpanID are the wire-propagation identity.
	// SpanID appears only on spans whose Context() was taken (e.g. fabric
	// dispatch spans); TraceID and ParentSpanID are stamped by whoever ships
	// the snapshot across a process boundary (jobs.ExecuteChunk on workers,
	// writeTrace on the root), so purely-local traces stay byte-stable.
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Unfinished marks spans still running at snapshot time (their
	// DurationNS is the elapsed time so far) — the per-request root and the
	// encode phase are snapshotted mid-flight by design.
	Unfinished bool        `json:"unfinished,omitempty"`
	Lane       int         `json:"lane,omitempty"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanJSON `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree.  Safe to call while other goroutines
// still add children; spans not yet ended are flagged Unfinished.
func (s *Span) Snapshot() *SpanJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := &SpanJSON{
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurationNS:  s.durNS,
		SpanID:      s.id,
		Lane:        s.lane,
	}
	if len(s.attrs) > 0 {
		out.Attrs = append([]Attr(nil), s.attrs...)
	}
	kids := append([]*Span(nil), s.children...)
	remote := append([]*SpanJSON(nil), s.remote...)
	s.mu.Unlock()
	if out.DurationNS < 0 {
		out.Unfinished = true
		out.DurationNS = int64(time.Since(s.start))
	}
	for _, c := range kids {
		out.Children = append(out.Children, c.Snapshot())
	}
	out.Children = append(out.Children, remote...)
	return out
}

// Count returns the number of spans in the tree (zero for nil).
func (t *SpanJSON) Count() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Count()
	}
	return n
}

// Find returns the first span in pre-order whose name matches, or nil.
func (t *SpanJSON) Find(name string) *SpanJSON {
	if t == nil {
		return nil
	}
	if t.Name == name {
		return t
	}
	for _, c := range t.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}
