package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: the span tree rendered as the JSON Object
// Format understood by chrome://tracing and Perfetto.  Every span becomes
// one complete ("ph":"X") event; lanes map to thread ids so concurrent
// sweep workers render as parallel rows.

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the snapshot as Chrome trace-event JSON, loadable
// in chrome://tracing and Perfetto.  Spans with no explicit lane inherit
// their parent's; the root defaults to lane 1.
func WriteChromeTrace(w io.Writer, root *SpanJSON) error {
	doc := chromeTrace{TraceEvents: collectChromeEvents(root), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func collectChromeEvents(root *SpanJSON) []chromeEvent {
	var evs []chromeEvent
	var walk func(s *SpanJSON, lane int)
	walk = func(s *SpanJSON, lane int) {
		if s == nil {
			return
		}
		if s.Lane != 0 {
			lane = s.Lane
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "obs",
			Ph:   "X",
			TS:   float64(s.StartUnixNS) / 1e3,
			Dur:  float64(s.DurationNS) / 1e3,
			PID:  1,
			TID:  lane,
		}
		if len(s.Attrs) > 0 || s.Unfinished {
			ev.Args = make(map[string]any, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if s.Unfinished {
				ev.Args["unfinished"] = true
			}
		}
		evs = append(evs, ev)
		for _, c := range s.Children {
			walk(c, lane)
		}
	}
	walk(root, 1)
	return evs
}
