// Package linalg runs the linear-algebra workloads that motivate the paper
// (§1: "Many linear algebra computations can be performed effectively on
// processor networks configured as two-dimensional meshes, with or without
// wraparound") on embedded meshes: Cannon's matrix multiplication on a
// torus and a block matrix-vector product on a mesh.  The arithmetic is
// computed exactly (so results are verifiable against a serial reference)
// while every inter-process transfer is charged against the embedding on
// the simulated Boolean cube, tying the embedding's dilation and congestion
// to wall-clock communication cost.
package linalg

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/simnet"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Mul returns the serial product m·b, the reference for the parallel runs.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: dimension mismatch")
	}
	worst := 0.0
	for i, v := range m.Data {
		d := v - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// CannonStats reports the simulated communication cost of a Cannon run.
type CannonStats struct {
	P            int // process grid is P×P
	Block        int // block size per process
	ShiftRounds  int // number of cyclic-shift rounds (2 per step + skew)
	TotalSteps   int // simulated makespan over all rounds
	MaxHops      int // worst per-message hops seen (≤ torus dilation)
	MessageCount int
}

// Cannon multiplies two n×n matrices on a P×P process torus placed by the
// given embedding (its guest must be the P×P wraparound mesh).  The
// algorithm: skew A left by row index and B up by column index, then P
// times multiply local blocks and cyclically shift A left / B up by one.
// Every shift is one message per process along a torus edge; the simulator
// prices each round against the embedding.
func Cannon(a, b *Matrix, e *embed.Embedding) (*Matrix, CannonStats) {
	if e.Family != guest.Torus || e.Guest.Dims() != 2 || e.Guest[0] != e.Guest[1] {
		panic("linalg: Cannon needs a square torus embedding")
	}
	p := e.Guest[0]
	n := a.Rows
	if a.Cols != n || b.Rows != n || b.Cols != n || n%p != 0 {
		panic(fmt.Sprintf("linalg: matrices must be square with order divisible by %d", p))
	}
	bs := n / p
	shape := e.Guest
	nw := simnet.New(e.N)

	// Local blocks, indexed by process (r, c).
	blockA := make([]*Matrix, p*p)
	blockB := make([]*Matrix, p*p)
	blockC := make([]*Matrix, p*p)
	at := func(r, c int) int { return shape.Index([]int{r, c}) }
	for r := 0; r < p; r++ {
		for c := 0; c < p; c++ {
			blockA[at(r, c)] = subBlock(a, r, c, bs)
			blockB[at(r, c)] = subBlock(b, r, c, bs)
			blockC[at(r, c)] = NewMatrix(bs, bs)
		}
	}

	stats := CannonStats{P: p, Block: bs}
	shift := func(blocks []*Matrix, axis, by int) {
		if by%p == 0 {
			return
		}
		moved := make([]*Matrix, len(blocks))
		msgs := make([]simnet.Message, 0, p*p)
		for r := 0; r < p; r++ {
			for c := 0; c < p; c++ {
				dst := []int{r, c}
				dst[axis] = ((dst[axis]-by)%p + p) % p // shifting "left/up by one" sends to lower index
				moved[at(dst[0], dst[1])] = blocks[at(r, c)]
				msgs = append(msgs, simnet.Message{
					Src: e.Map[at(r, c)],
					Dst: e.Map[at(dst[0], dst[1])],
				})
			}
		}
		copy(blocks, moved)
		st := nw.Run(msgs)
		stats.ShiftRounds++
		stats.TotalSteps += st.Makespan
		stats.MessageCount += st.Messages
		if st.MaxHops > stats.MaxHops {
			stats.MaxHops = st.MaxHops
		}
	}

	// Initial skew: row r of A shifts left by r; column c of B shifts up
	// by c.  Done as p−1 unit shifts on the affected rows/columns for
	// simplicity of cost accounting (each unit shift is a full round).
	for step := 1; step < p; step++ {
		// Rows r ≥ step still need shifting; approximate by shifting the
		// whole array once per step with per-row masks folded into the
		// permutation.
		msgsA := make([]simnet.Message, 0, p*p)
		movedA := make([]*Matrix, len(blockA))
		msgsB := make([]simnet.Message, 0, p*p)
		movedB := make([]*Matrix, len(blockB))
		for r := 0; r < p; r++ {
			for c := 0; c < p; c++ {
				src := at(r, c)
				// A: row r shifts left once if r ≥ step.
				if r >= step {
					dst := at(r, (c-1+p)%p)
					movedA[dst] = blockA[src]
					msgsA = append(msgsA, simnet.Message{Src: e.Map[src], Dst: e.Map[dst]})
				} else {
					if movedA[src] == nil {
						movedA[src] = blockA[src]
					}
				}
				// B: column c shifts up once if c ≥ step.
				if c >= step {
					dst := at((r-1+p)%p, c)
					movedB[dst] = blockB[src]
					msgsB = append(msgsB, simnet.Message{Src: e.Map[src], Dst: e.Map[dst]})
				} else {
					if movedB[src] == nil {
						movedB[src] = blockB[src]
					}
				}
			}
		}
		copy(blockA, movedA)
		copy(blockB, movedB)
		for _, msgs := range [][]simnet.Message{msgsA, msgsB} {
			if len(msgs) == 0 {
				continue
			}
			st := nw.Run(msgs)
			stats.ShiftRounds++
			stats.TotalSteps += st.Makespan
			stats.MessageCount += st.Messages
			if st.MaxHops > stats.MaxHops {
				stats.MaxHops = st.MaxHops
			}
		}
	}

	// Main loop: local multiply, then unit shifts.
	for step := 0; step < p; step++ {
		for idx := range blockC {
			acc := blockA[idx].Mul(blockB[idx])
			for i, v := range acc.Data {
				blockC[idx].Data[i] += v
			}
		}
		if step+1 < p {
			shift(blockA, 1, 1) // A left by one
			shift(blockB, 0, 1) // B up by one
		}
	}

	// Gather C.
	out := NewMatrix(n, n)
	for r := 0; r < p; r++ {
		for c := 0; c < p; c++ {
			blk := blockC[at(r, c)]
			for i := 0; i < bs; i++ {
				for j := 0; j < bs; j++ {
					out.Set(r*bs+i, c*bs+j, blk.At(i, j))
				}
			}
		}
	}
	return out, stats
}

func subBlock(m *Matrix, r, c, bs int) *Matrix {
	out := NewMatrix(bs, bs)
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			out.Set(i, j, m.At(r*bs+i, c*bs+j))
		}
	}
	return out
}

// MatVecStats reports the simulated cost of a mesh matrix-vector product.
type MatVecStats struct {
	Mesh       string
	Sweeps     int
	TotalSteps int
}

// MatVec computes y = A·x on a p1×p2 process mesh placed by the embedding.
// A is block-distributed — process (r, c) owns block A(r, c) — and x is
// distributed along the columns, so block x_c starts aligned with column c.
// Each process performs one local block multiply, then the partial sums
// reduce along each mesh row into column 0 (p2−1 nearest-neighbor sweeps,
// each priced by the simulator against the embedding).
func MatVec(a *Matrix, x []float64, e *embed.Embedding) ([]float64, MatVecStats) {
	if e.Guest.Dims() != 2 {
		panic("linalg: MatVec needs a 2-D mesh embedding")
	}
	p1, p2 := e.Guest[0], e.Guest[1]
	n := a.Rows
	if a.Cols != len(x) || n%p1 != 0 || a.Cols%p2 != 0 {
		panic("linalg: block distribution mismatch")
	}
	br, bc := n/p1, a.Cols/p2
	shape := e.Guest
	nw := simnet.New(e.N)
	stats := MatVecStats{Mesh: shape.String()}

	at := func(r, c int) int { return shape.Index([]int{r, c}) }
	part := make([][]float64, p1*p2)
	for r := 0; r < p1; r++ {
		for c := 0; c < p2; c++ {
			idx := at(r, c)
			part[idx] = make([]float64, br)
			for i := 0; i < br; i++ {
				sum := 0.0
				for j := 0; j < bc; j++ {
					sum += a.At(r*br+i, c*bc+j) * x[c*bc+j]
				}
				part[idx][i] = sum
			}
		}
	}

	// Reduce partials along each row into column 0.
	for c := p2 - 1; c > 0; c-- {
		msgs := make([]simnet.Message, 0, p1)
		for r := 0; r < p1; r++ {
			src, dst := at(r, c), at(r, c-1)
			for i := range part[dst] {
				part[dst][i] += part[src][i]
			}
			msgs = append(msgs, simnet.Message{Src: e.Map[src], Dst: e.Map[dst]})
		}
		st := nw.Run(msgs)
		stats.Sweeps++
		stats.TotalSteps += st.Makespan
	}
	y := make([]float64, n)
	for r := 0; r < p1; r++ {
		copy(y[r*br:(r+1)*br], part[at(r, 0)])
	}
	return y, stats
}
