package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/wrap"
)

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float64()*2 - 1
	}
	return m
}

func TestSerialMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestCannonCorrectOnGrayTorus(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	e := embed.Gray(mesh.Shape{4, 4})
	e.Family = guest.Torus
	a := randomMatrix(r, 8, 8)
	b := randomMatrix(r, 8, 8)
	got, stats := Cannon(a, b, e)
	want := a.Mul(b)
	if d := got.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("Cannon result off by %v", d)
	}
	if stats.MaxHops > 1 {
		t.Errorf("Gray 4x4 torus shifts should be single hops, got %d", stats.MaxHops)
	}
	// 2(p−1) skew rounds + 2(p−1) loop shifts
	if stats.ShiftRounds != 4*(stats.P-1) {
		t.Errorf("rounds = %d, want %d", stats.ShiftRounds, 4*(stats.P-1))
	}
}

func TestCannonCorrectOnDecompositionTorus(t *testing.T) {
	// 6x6 torus: halving over 3x3 — a non-power-of-two process grid on
	// the minimal 6-cube, the setting the paper enables.
	r := rand.New(rand.NewSource(2))
	e := wrap.Embed(mesh.Shape{6, 6}, core.DefaultOptions)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	a := randomMatrix(r, 12, 12)
	b := randomMatrix(r, 12, 12)
	got, stats := Cannon(a, b, e)
	want := a.Mul(b)
	if d := got.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("Cannon result off by %v", d)
	}
	if stats.MaxHops > e.Dilation() {
		t.Errorf("shift hops %d exceed torus dilation %d", stats.MaxHops, e.Dilation())
	}
	t.Logf("6x6 torus Cannon: %+v (torus dilation %d)", stats, e.Dilation())
}

func TestCannonPanicsOnNonTorus(t *testing.T) {
	e := embed.Gray(mesh.Shape{4, 4}) // not marked wraparound
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Cannon(NewMatrix(8, 8), NewMatrix(8, 8), e)
}

func TestMatVecCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, shape := range []mesh.Shape{{4, 4}, {3, 5}, {2, 2}} {
		e := core.PlanShape(shape, core.DefaultOptions).Build()
		n := shape[0] * 3
		m := shape[1] * 2
		a := randomMatrix(r, n, m)
		x := make([]float64, m)
		for i := range x {
			x[i] = r.Float64()
		}
		got, stats := MatVec(a, x, e)
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < m; j++ {
				want += a.At(i, j) * x[j]
			}
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("%v: y[%d] = %v, want %v", shape, i, got[i], want)
			}
		}
		if stats.Sweeps != shape[1]-1 {
			t.Errorf("%v: sweeps = %d, want %d", shape, stats.Sweeps, shape[1]-1)
		}
	}
}

func TestMatVecPanicsOnMismatch(t *testing.T) {
	e := embed.Gray(mesh.Shape{4, 4})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatVec(NewMatrix(7, 8), make([]float64, 8), e) // 7 not divisible by 4
}

func BenchmarkCannon6x6(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	e := wrap.Embed(mesh.Shape{6, 6}, core.Options{})
	a := randomMatrix(r, 12, 12)
	m := randomMatrix(r, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Cannon(a, m, e)
	}
}

func BenchmarkMatVec(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	e := embed.Gray(mesh.Shape{4, 4})
	a := randomMatrix(r, 32, 32)
	x := make([]float64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = MatVec(a, x, e)
	}
}
