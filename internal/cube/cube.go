// Package cube models the Boolean n-cube (hypercube) host graph: node
// addressing, Hamming distance, link identification, and shortest-path
// routing used to realize embedding paths.
package cube

import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/bits"
)

// Node is a Boolean-cube node address.  In an n-cube the valid addresses are
// 0 … 2^n−1, and two nodes are adjacent iff their addresses differ in
// exactly one bit.
type Node uint64

// Dist returns the cube (Hamming) distance between two nodes.
func Dist(a, b Node) int {
	return bits.Hamming(uint64(a), uint64(b))
}

// Link identifies an (undirected) cube edge by its lower endpoint and the
// dimension of the differing bit.
type Link struct {
	Lo  Node // endpoint with bit Dim == 0
	Dim int
}

// LinkBetween returns the link joining two adjacent nodes.  It panics if the
// nodes are not cube neighbors.  It performs no heap allocation, so it is
// safe in per-edge hot loops.
func LinkBetween(a, b Node) Link {
	d := uint64(a) ^ uint64(b)
	if d == 0 || d&(d-1) != 0 {
		panic(fmt.Sprintf("cube: nodes %d and %d are not adjacent", a, b))
	}
	// Clearing the differing bit of either endpoint yields the endpoint
	// whose bit Dim is zero.
	return Link{Lo: Node(uint64(a) &^ d), Dim: mathbits.TrailingZeros64(d)}
}

// Other returns the endpoint of l opposite to lo.
func (l Link) Other() Node {
	return Node(bits.FlipBit(uint64(l.Lo), l.Dim))
}

// Path is a walk through the cube given as the ordered node sequence,
// including both endpoints.  A path of k edges has length k and k+1 nodes.
type Path []Node

// Len returns the number of edges in the path.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Validate checks that consecutive nodes are cube neighbors and that the
// path stays inside an n-cube.
func (p Path) Validate(n int) error {
	limit := Node(1) << uint(n)
	for i, v := range p {
		if v >= limit {
			return fmt.Errorf("cube: path node %d = %d outside %d-cube", i, v, n)
		}
		if i > 0 && Dist(p[i-1], v) != 1 {
			return fmt.Errorf("cube: path step %d: %d and %d not adjacent", i, p[i-1], v)
		}
	}
	return nil
}

// Links returns the links traversed by the path.
func (p Path) Links() []Link {
	if len(p) < 2 {
		return nil
	}
	return p.AppendLinks(make([]Link, 0, len(p)-1))
}

// AppendLinks appends the links traversed by the path to dst and returns the
// extended slice.  Callers reusing a scratch buffer pass dst[:0] to walk
// paths without per-path allocation.
func (p Path) AppendLinks(dst []Link) []Link {
	for i := 1; i < len(p); i++ {
		dst = append(dst, LinkBetween(p[i-1], p[i]))
	}
	return dst
}

// Route returns the e-cube (dimension-ordered) shortest path from a to b:
// the differing bits are corrected in increasing dimension order.  The
// returned path has exactly Dist(a, b) edges.
func Route(a, b Node) Path {
	return RouteInto(make(Path, 0, Dist(a, b)+1), a, b)
}

// RouteInto appends the e-cube route from a to b (including both endpoints)
// to dst and returns the extended slice.  It is Route with caller-managed
// storage: pass dst[:0] to reuse one buffer across many edges.
func RouteInto(dst Path, a, b Node) Path {
	dst = append(dst, a)
	cur := uint64(a)
	diff := cur ^ uint64(b)
	for diff != 0 {
		bit := diff & -diff // lowest differing dimension first
		cur ^= bit
		dst = append(dst, Node(cur))
		diff ^= bit
	}
	return dst
}

// ShortestPaths returns all shortest paths from a to b.  For nodes at
// distance d there are d! dimension orders; this is intended for the small
// distances (≤ 3) that arise in low-dilation embeddings.  It panics when
// Dist(a, b) > 4 to guard against factorial blowup.
func ShortestPaths(a, b Node) []Path {
	diff := bits.DiffBits(uint64(a), uint64(b))
	if len(diff) > 4 {
		panic("cube: ShortestPaths limited to distance ≤ 4")
	}
	var out []Path
	perm := make([]int, len(diff))
	var rec func(used uint, depth int)
	rec = func(used uint, depth int) {
		if depth == len(diff) {
			p := make(Path, 0, len(diff)+1)
			p = append(p, a)
			cur := uint64(a)
			for _, d := range perm {
				cur = bits.FlipBit(cur, d)
				p = append(p, Node(cur))
			}
			out = append(out, p)
			return
		}
		for i, d := range diff {
			if used&(1<<uint(i)) == 0 {
				perm[depth] = d
				rec(used|1<<uint(i), depth+1)
			}
		}
	}
	rec(0, 0)
	return out
}

// Neighbors returns the n neighbors of v in an n-cube.
func Neighbors(v Node, n int) []Node {
	out := make([]Node, n)
	for i := 0; i < n; i++ {
		out[i] = Node(bits.FlipBit(uint64(v), i))
	}
	return out
}

// NumLinks returns the number of links in an n-cube: n · 2^(n−1).
func NumLinks(n int) int {
	if n == 0 {
		return 0
	}
	return n << uint(n-1)
}

// LinkIndex maps a link of an n-cube to a dense index in [0, NumLinks(n)),
// for congestion accounting arrays.
func LinkIndex(l Link, n int) int {
	// Remove bit Dim from Lo to get a (n-1)-bit row index, then add the
	// dimension stride.
	lo := uint64(l.Lo)
	low := lo & ((1 << uint(l.Dim)) - 1)
	high := lo >> uint(l.Dim+1)
	row := low | high<<uint(l.Dim)
	return l.Dim<<uint(n-1) | int(row)
}
