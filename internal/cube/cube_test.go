package cube

import (
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if Dist(0, 0b111) != 3 {
		t.Error("Dist(0,7) != 3")
	}
	if Dist(5, 5) != 0 {
		t.Error("Dist(x,x) != 0")
	}
}

func TestLinkBetween(t *testing.T) {
	l := LinkBetween(0b100, 0b110)
	if l.Lo != 0b100 || l.Dim != 1 {
		t.Errorf("LinkBetween = %+v", l)
	}
	// order-independent
	l2 := LinkBetween(0b110, 0b100)
	if l != l2 {
		t.Errorf("LinkBetween not symmetric: %+v vs %+v", l, l2)
	}
	if l.Other() != 0b110 {
		t.Errorf("Other = %d", l.Other())
	}
}

func TestLinkBetweenPanicsNonAdjacent(t *testing.T) {
	for _, pair := range [][2]Node{{0, 3}, {1, 1}, {0, 7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinkBetween(%d,%d) did not panic", pair[0], pair[1])
				}
			}()
			LinkBetween(pair[0], pair[1])
		}()
	}
}

func TestRoute(t *testing.T) {
	f := func(a, b uint16) bool {
		p := Route(Node(a), Node(b))
		if p.Len() != Dist(Node(a), Node(b)) {
			return false
		}
		if p[0] != Node(a) || p[len(p)-1] != Node(b) {
			return false
		}
		return p.Validate(16) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	p := Route(0b000, 0b101)
	want := Path{0b000, 0b001, 0b101}
	if len(p) != len(want) {
		t.Fatalf("Route = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("Route[%d] = %d, want %d", i, p[i], want[i])
		}
	}
}

func TestShortestPaths(t *testing.T) {
	paths := ShortestPaths(0b00, 0b11)
	if len(paths) != 2 {
		t.Fatalf("distance-2 pair has %d shortest paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Len() != 2 || p.Validate(2) != nil {
			t.Errorf("bad path %v", p)
		}
	}
	// The two paths use the two distinct intermediate nodes.
	if paths[0][1] == paths[1][1] {
		t.Error("shortest paths share an intermediate node")
	}
	if got := len(ShortestPaths(0, 0b111)); got != 6 {
		t.Errorf("distance-3 pair has %d paths, want 6", got)
	}
	if got := len(ShortestPaths(5, 5)); got != 1 {
		t.Errorf("distance-0 pair has %d paths, want 1", got)
	}
}

func TestPathValidate(t *testing.T) {
	if err := (Path{0, 1, 3, 2}).Validate(2); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{0, 3}).Validate(2); err == nil {
		t.Error("non-adjacent step accepted")
	}
	if err := (Path{0, 4}).Validate(2); err == nil {
		t.Error("out-of-cube node accepted")
	}
}

func TestNeighbors(t *testing.T) {
	nb := Neighbors(0, 4)
	if len(nb) != 4 {
		t.Fatalf("len = %d", len(nb))
	}
	seen := map[Node]bool{}
	for _, v := range nb {
		if Dist(0, v) != 1 {
			t.Errorf("neighbor %d at distance %d", v, Dist(0, v))
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Error("duplicate neighbors")
	}
}

func TestNumLinks(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {2, 4}, {3, 12}, {4, 32}, {10, 5120}}
	for _, c := range cases {
		if got := NumLinks(c.n); got != c.want {
			t.Errorf("NumLinks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLinkIndexDenseBijection(t *testing.T) {
	for n := 1; n <= 6; n++ {
		seen := make(map[int]Link)
		count := 0
		for v := Node(0); v < Node(1)<<uint(n); v++ {
			for d := 0; d < n; d++ {
				w := Node(uint64(v) ^ (1 << uint(d)))
				if w < v {
					continue // count each undirected link once
				}
				l := LinkBetween(v, w)
				idx := LinkIndex(l, n)
				if idx < 0 || idx >= NumLinks(n) {
					t.Fatalf("n=%d: index %d out of range", n, idx)
				}
				if prev, dup := seen[idx]; dup {
					t.Fatalf("n=%d: index collision %d: %+v and %+v", n, idx, prev, l)
				}
				seen[idx] = l
				count++
			}
		}
		if count != NumLinks(n) {
			t.Fatalf("n=%d: enumerated %d links, want %d", n, count, NumLinks(n))
		}
	}
}

func TestPathLinks(t *testing.T) {
	p := Route(0b000, 0b110)
	links := p.Links()
	if len(links) != 2 {
		t.Fatalf("links = %v", links)
	}
	if (Path{}).Links() != nil {
		t.Error("empty path should have nil links")
	}
	if (Path{5}).Links() != nil {
		t.Error("single-node path should have nil links")
	}
}

func BenchmarkRoute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Route(Node(i), Node(i)*2654435761%1024)
	}
}

func BenchmarkLinkIndex(b *testing.B) {
	l := Link{Lo: 12345, Dim: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LinkIndex(l, 20)
	}
}

func TestRouteIntoReusesBuffer(t *testing.T) {
	pairs := [][2]Node{{0, 0}, {0, 1}, {5, 10}, {0b1011, 0b0110}, {127, 0}}
	var buf Path
	for _, pr := range pairs {
		buf = RouteInto(buf[:0], pr[0], pr[1])
		want := Route(pr[0], pr[1])
		if len(buf) != len(want) {
			t.Fatalf("RouteInto(%d,%d) length %d, want %d", pr[0], pr[1], len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Errorf("RouteInto(%d,%d)[%d] = %d, want %d", pr[0], pr[1], i, buf[i], want[i])
			}
		}
	}
}

func TestAppendLinksMatchesLinks(t *testing.T) {
	p := Route(0b0000, 0b1011)
	var buf []Link
	buf = p.AppendLinks(buf[:0])
	want := p.Links()
	if len(buf) != len(want) {
		t.Fatalf("AppendLinks length %d, want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Errorf("link %d = %v, want %v", i, buf[i], want[i])
		}
	}
	// Appending after existing content must preserve the prefix.
	pre := []Link{{Lo: 9, Dim: 3}}
	out := p.AppendLinks(pre)
	if out[0] != pre[0] || len(out) != 1+len(want) {
		t.Errorf("AppendLinks clobbered the prefix: %v", out)
	}
	if Path(nil).AppendLinks(nil) != nil {
		t.Error("empty path should append nothing")
	}
}

func TestLinkBetweenLowEndpoint(t *testing.T) {
	// Lo must always be the endpoint whose differing bit is zero, whichever
	// argument order is used.
	for dim := 0; dim < 6; dim++ {
		for lo := Node(0); lo < 64; lo++ {
			if (lo>>uint(dim))&1 == 1 {
				continue
			}
			hi := Node(uint64(lo) | 1<<uint(dim))
			want := Link{Lo: lo, Dim: dim}
			if got := LinkBetween(lo, hi); got != want {
				t.Fatalf("LinkBetween(%d,%d) = %v, want %v", lo, hi, got, want)
			}
			if got := LinkBetween(hi, lo); got != want {
				t.Fatalf("LinkBetween(%d,%d) = %v, want %v", hi, lo, got, want)
			}
		}
	}
}
