package solver

import (
	"math/rand"

	"repro/internal/bits"
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// FindBacktracking searches for a dilation-≤ maxDil minimal-expansion
// embedding by placing guest nodes in BFS order, each restricted to unused
// host nodes within maxDil of every already-placed guest neighbor.
// Candidate order is randomized per restart (deterministic for a seed), and
// each restart abandons after a bounded number of backtracks.  It
// complements the annealing search: backtracking excels on small instances
// with tight structure, annealing on larger ones.
func FindBacktracking(s mesh.Shape, opts Options) *embed.Embedding {
	opts = opts.withDefaults()
	if s.GrayMinimal() {
		return embed.Gray(s)
	}
	n := s.MinCubeDim()
	hostN := 1 << uint(n)
	el := buildEdges(s)
	order := bfsOrder(s, el)

	for restart := 0; restart < opts.Restarts; restart++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(restart)*104729))
		assign := make([]cube.Node, s.Nodes())
		used := make([]bool, hostN)
		budget := 200_000 // backtrack steps per restart

		var place func(i int) bool
		place = func(i int) bool {
			if i == len(order) {
				return true
			}
			if budget <= 0 {
				return false
			}
			g := order[i]
			cands := candidates(g, assign, used, el, order[:i], n, opts.MaxDilation, rng)
			for _, c := range cands {
				budget--
				assign[g] = c
				used[c] = true
				if place(i + 1) {
					return true
				}
				used[c] = false
				if budget <= 0 {
					return false
				}
			}
			return false
		}
		// Seed the first node randomly; by vertex transitivity node 0 of
		// the cube suffices, but varying it diversifies restarts.
		first := order[0]
		start := cube.Node(rng.Intn(hostN))
		assign[first] = start
		used[start] = true
		if place(1) {
			e := embed.New(s, n)
			copy(e.Map, assign)
			return e
		}
		used[start] = false
	}
	return nil
}

// bfsOrder returns guest nodes in breadth-first order from node 0, so every
// node after the first has at least one earlier neighbor.
func bfsOrder(s mesh.Shape, el *edgeList) []int {
	n := s.Nodes()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range el.adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, int(w))
			}
		}
	}
	return order
}

// candidates lists the unused host nodes within maxDil of every placed
// neighbor of g, in randomized order biased toward smaller total distance.
func candidates(g int, assign []cube.Node, used []bool, el *edgeList,
	placed []int, n, maxDil int, rng *rand.Rand) []cube.Node {
	// Find one placed neighbor to enumerate a ball around; all others
	// filter.
	isPlaced := func(v int32) (cube.Node, bool) {
		for _, p := range placed {
			if int32(p) == v {
				return assign[v], true
			}
		}
		return 0, false
	}
	var anchor cube.Node
	var anchors []cube.Node
	found := false
	for _, w := range el.adj[g] {
		if h, ok := isPlaced(w); ok {
			if !found {
				anchor, found = h, true
			}
			anchors = append(anchors, h)
		}
	}
	if !found {
		// Disconnected-from-placed guest node (cannot happen with BFS
		// order on a connected mesh, but keep it total): any unused host.
		var out []cube.Node
		for v := 0; v < 1<<uint(n); v++ {
			if !used[v] {
				out = append(out, cube.Node(v))
			}
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	ball := ballAround(anchor, n, maxDil)
	out := make([]cube.Node, 0, len(ball))
	score := make(map[cube.Node]int, len(ball))
	for _, c := range ball {
		if used[c] {
			continue
		}
		ok := true
		total := 0
		for _, a := range anchors {
			d := bits.Hamming(uint64(c), uint64(a))
			if d > maxDil {
				ok = false
				break
			}
			total += d
		}
		if ok {
			out = append(out, c)
			score[c] = total
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	// Stable-ish greedy: prefer candidates closer to all anchors.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && score[out[j]] < score[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ballAround enumerates the cube nodes within distance r of center.
func ballAround(center cube.Node, n, r int) []cube.Node {
	var out []cube.Node
	var rec func(start int, cur uint64, depth int)
	rec = func(start int, cur uint64, depth int) {
		out = append(out, cube.Node(cur))
		if depth == r {
			return
		}
		for d := start; d < n; d++ {
			rec(d+1, bits.FlipBit(cur, d), depth+1)
		}
	}
	rec(0, uint64(center), 0)
	return out
}
