package solver

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/mesh"
)

func TestSnakeOrderAdjacent(t *testing.T) {
	for _, s := range []mesh.Shape{{5}, {3, 5}, {4, 4}, {2, 3, 4}, {3, 3, 3}, {1, 7, 2}} {
		order := snakeOrder(s)
		seen := make([]bool, s.Nodes())
		for i, g := range order {
			if seen[g] {
				t.Fatalf("%v: duplicate node %d in snake order", s, g)
			}
			seen[g] = true
			if i > 0 {
				// consecutive entries must be mesh neighbors
				cu, cv := s.Coord(order[i-1]), s.Coord(g)
				diff := 0
				for j := range cu {
					d := cu[j] - cv[j]
					if d < 0 {
						d = -d
					}
					diff += d
				}
				if diff != 1 {
					t.Fatalf("%v: snake step %d: %v -> %v not adjacent", s, i, cu, cv)
				}
			}
		}
	}
}

func TestFindGrayMinimalShortcut(t *testing.T) {
	e := Find(mesh.Shape{3, 4}, Options{Seed: 1})
	if e == nil {
		t.Fatal("Find failed on Gray-minimal shape")
	}
	if e.Dilation() != 1 {
		t.Errorf("dilation %d", e.Dilation())
	}
}

func TestFind3x5(t *testing.T) {
	s := mesh.Shape{3, 5}
	e := Find(s, Options{MaxDilation: 2, Seed: 42})
	if e == nil {
		t.Fatal("no dilation-2 embedding of 3x5 found")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("bad embedding: %s", e.Measure())
	}
}

func TestFind3x3x3(t *testing.T) {
	s := mesh.Shape{3, 3, 3}
	e := Find(s, Options{MaxDilation: 2, Seed: 42, Restarts: 12})
	if e == nil {
		t.Fatal("no dilation-2 embedding of 3x3x3 found")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("bad embedding: %s", e.Measure())
	}
}

func TestFastExpMonotone(t *testing.T) {
	prev := 1.0
	for x := 0.0; x < 10; x += 0.25 {
		y := fastExp(-x)
		if y < 0 || y > prev+1e-12 {
			t.Fatalf("fastExp(-%v) = %v not monotone", x, y)
		}
		prev = y
	}
	if fastExp(-30) != 0 {
		t.Error("deep tail should clamp to 0")
	}
}

func BenchmarkFind3x5(b *testing.B) {
	s := mesh.Shape{3, 5}
	for i := 0; i < b.N; i++ {
		if Find(s, Options{MaxDilation: 2, Seed: int64(i + 1)}) == nil {
			b.Fatal("solver failed")
		}
	}
}

func TestBacktracking3x5(t *testing.T) {
	e := FindBacktracking(mesh.Shape{3, 5}, Options{MaxDilation: 2, Seed: 1, Restarts: 8})
	if e == nil {
		t.Fatal("backtracking failed on 3x5")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("bad: %s", e.Measure())
	}
}

func TestBacktracking3x3x3(t *testing.T) {
	e := FindBacktracking(mesh.Shape{3, 3, 3}, Options{MaxDilation: 2, Seed: 1, Restarts: 16})
	if e == nil {
		t.Fatal("backtracking failed on 3x3x3")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("bad: %s", e.Measure())
	}
}

func TestBacktrackingGrayShortcut(t *testing.T) {
	e := FindBacktracking(mesh.Shape{4, 8}, Options{Seed: 1})
	if e == nil || e.Dilation() != 1 {
		t.Error("Gray-minimal shortcut broken")
	}
}

func TestBallAround(t *testing.T) {
	// |ball(r)| = Σ_{i≤r} C(n,i)
	ball := ballAround(0, 6, 2)
	want := 1 + 6 + 15
	if len(ball) != want {
		t.Fatalf("ball size %d, want %d", len(ball), want)
	}
	seen := map[cube.Node]bool{}
	for _, v := range ball {
		if cube.Dist(0, v) > 2 {
			t.Errorf("node %d outside ball", v)
		}
		if seen[v] {
			t.Errorf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestBFSOrderConnected(t *testing.T) {
	s := mesh.Shape{3, 4, 2}
	el := buildEdges(s)
	order := bfsOrder(s, el)
	if len(order) != s.Nodes() {
		t.Fatalf("order covers %d of %d", len(order), s.Nodes())
	}
	placed := map[int]bool{order[0]: true}
	for _, g := range order[1:] {
		ok := false
		for _, w := range el.adj[g] {
			if placed[int(w)] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d has no placed neighbor", g)
		}
		placed[g] = true
	}
}

func BenchmarkBacktracking3x5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if FindBacktracking(mesh.Shape{3, 5}, Options{MaxDilation: 2, Seed: int64(i + 1), Restarts: 8}) == nil {
			b.Fatal("failed")
		}
	}
}
