// Package solver searches for low-dilation minimal-expansion embeddings of
// small meshes in Boolean cubes.  It is the tool with which the "direct
// embedding" tables of Section 3.3 (3x5, 7x9, 11x11, 3x3x3, 3x3x7) are
// re-discovered; the found maps are frozen into package direct and verified
// by its tests.  The solver combines simulated annealing over node maps with
// a backtracking placement search, both deterministic for a given seed.
package solver

import (
	"math/rand"

	"repro/internal/bits"
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// Options configures a search.
type Options struct {
	MaxDilation int   // target maximum dilation (e.g. 2)
	Seed        int64 // RNG seed; searches are deterministic per seed
	Restarts    int   // annealing restarts (default 8)
	Iterations  int   // annealing iterations per restart (default 200k)
}

func (o Options) withDefaults() Options {
	if o.MaxDilation == 0 {
		o.MaxDilation = 2
	}
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.Iterations == 0 {
		o.Iterations = 200_000
	}
	return o
}

// Find searches for an embedding of the shape into its minimal cube with
// dilation ≤ opts.MaxDilation.  It returns nil if the search fails within
// its budget (which does not prove non-existence).  A found embedding is
// polished: a second annealing pass lowers the average dilation while
// keeping the maximum-dilation constraint as a hard invariant.
func Find(s mesh.Shape, opts Options) *embed.Embedding {
	opts = opts.withDefaults()
	n := s.MinCubeDim()
	if s.GrayMinimal() {
		return embed.Gray(s) // dilation 1, nothing to search for
	}
	if e := anneal(s, n, opts); e != nil {
		Polish(e, opts)
		return e
	}
	return nil
}

// Polish anneals an already-feasible embedding to reduce the total (hence
// average) edge dilation, rejecting any move that would push an edge above
// opts.MaxDilation.  Lower average dilation also tends to lower congestion,
// since fewer edges need multi-hop paths.
func Polish(e *embed.Embedding, opts Options) {
	opts = opts.withDefaults()
	s := e.Guest
	el := buildEdges(s)
	guestN := s.Nodes()
	hostN := 1 << uint(e.N)
	maxDil := opts.MaxDilation

	slot := make([]cube.Node, hostN)
	copy(slot, e.Map)
	used := make([]bool, hostN)
	for _, h := range e.Map {
		used[h] = true
	}
	next := guestN
	for v := 0; v < hostN; v++ {
		if !used[v] {
			slot[next] = cube.Node(v)
			next++
		}
	}

	dist := func(a, b cube.Node) int { return bits.Hamming(uint64(a), uint64(b)) }
	nodeSum := func(g int) (sum, worst int) {
		for _, h := range el.adj[g] {
			d := dist(slot[g], slot[h])
			sum += d
			if d > worst {
				worst = d
			}
		}
		return
	}

	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5f5f5f))
	temp := 0.8
	cooling := 1 - 4.0/float64(opts.Iterations)
	for it := 0; it < opts.Iterations; it++ {
		p := rng.Intn(guestN)
		q := rng.Intn(hostN)
		if p == q {
			continue
		}
		sumP, _ := nodeSum(p)
		sumQ := 0
		if q < guestN {
			sumQ, _ = nodeSum(q)
		}
		slot[p], slot[q] = slot[q], slot[p]
		newSumP, worstP := nodeSum(p)
		newSumQ, worstQ := 0, 0
		if q < guestN {
			newSumQ, worstQ = nodeSum(q)
		}
		delta := (newSumP + newSumQ) - (sumP + sumQ)
		feasible := worstP <= maxDil && worstQ <= maxDil
		if feasible && (delta <= 0 || rng.Float64() < fastExp(-float64(delta)/temp)) {
			// accept
		} else {
			slot[p], slot[q] = slot[q], slot[p]
		}
		temp *= cooling
		if temp < 0.02 {
			temp = 0.02
		}
	}
	copy(e.Map, slot[:guestN])
}

// edgeList precomputes guest adjacency as flat index pairs.
type edgeList struct {
	pairs [][2]int32
	adj   [][]int32
}

func buildEdges(s mesh.Shape) *edgeList {
	el := &edgeList{adj: make([][]int32, s.Nodes())}
	s.EachEdge(func(e mesh.Edge) {
		el.pairs = append(el.pairs, [2]int32{int32(e.U), int32(e.V)})
		el.adj[e.U] = append(el.adj[e.U], int32(e.V))
		el.adj[e.V] = append(el.adj[e.V], int32(e.U))
	})
	return el
}

// anneal runs simulated annealing over bijections from guest∪padding onto
// the 2^n cube nodes.  Cost = Σ_e max(0, dist(e) − maxDil); a zero-cost
// state is a feasible embedding.  Moves swap the cube images of two
// positions (guest or padding).
func anneal(s mesh.Shape, n int, opts Options) *embed.Embedding {
	el := buildEdges(s)
	guestN := s.Nodes()
	hostN := 1 << uint(n)
	maxDil := opts.MaxDilation

	edgeCost := func(a, b cube.Node) int {
		d := bits.Hamming(uint64(a), uint64(b))
		if d > maxDil {
			return d - maxDil
		}
		return 0
	}

	for restart := 0; restart < opts.Restarts; restart++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(restart)*7919))
		// position p (0..hostN-1) holds cube node slot[p]; guest node g
		// lives at position g; positions ≥ guestN are padding.
		slot := make([]cube.Node, hostN)
		// Greedy-ish start: Gray code order of a snake through the mesh
		// tends to start with low cost.
		startGray(s, slot, rng)

		nodeCost := func(g int) int {
			c := 0
			for _, h := range el.adj[g] {
				c += edgeCost(slot[g], slot[h])
			}
			return c
		}
		total := 0
		for _, e := range el.pairs {
			total += edgeCost(slot[e[0]], slot[e[1]])
		}
		if total == 0 {
			return finish(s, n, slot)
		}

		temp := 2.5
		cooling := 1 - 6.0/float64(opts.Iterations)
		for it := 0; it < opts.Iterations && total > 0; it++ {
			// Pick a violated guest node half of the time to focus moves.
			var p int
			if it%2 == 0 {
				p = rng.Intn(guestN)
			} else {
				p = rng.Intn(hostN)
			}
			q := rng.Intn(hostN)
			if p == q {
				continue
			}
			delta := 0
			if p < guestN {
				delta -= nodeCost(p)
			}
			if q < guestN {
				delta -= nodeCost(q)
			}
			slot[p], slot[q] = slot[q], slot[p]
			if p < guestN {
				delta += nodeCost(p)
			}
			if q < guestN {
				delta += nodeCost(q)
			}
			// If p and q are guest-adjacent, their shared edge was counted
			// twice on both sides; the double count cancels in the delta,
			// so no correction is needed.
			if delta <= 0 || rng.Float64() < fastExp(-float64(delta)/temp) {
				total += delta
			} else {
				slot[p], slot[q] = slot[q], slot[p] // reject
			}
			temp *= cooling
			if temp < 0.05 {
				temp = 0.05
			}
		}
		if total == 0 {
			return finish(s, n, slot)
		}
	}
	return nil
}

// startGray initializes slot with a snake-order Gray assignment followed by
// the unused codes, then applies a small random shuffle.
func startGray(s mesh.Shape, slot []cube.Node, rng *rand.Rand) {
	hostN := len(slot)
	guestN := s.Nodes()
	used := make([]bool, hostN)
	// Snake enumeration of guest nodes → Gray codes of 0..guestN-1.
	order := snakeOrder(s)
	for i, g := range order {
		c := cube.Node(uint64(i) ^ (uint64(i) >> 1))
		slot[g] = c
		used[c] = true
	}
	next := guestN
	for v := 0; v < hostN; v++ {
		c := cube.Node(uint64(v) ^ (uint64(v) >> 1))
		if !used[c] {
			slot[next] = c
			next++
		}
	}
	// Light shuffle of padding to diversify restarts.
	for i := guestN; i < hostN; i++ {
		j := guestN + rng.Intn(hostN-guestN)
		slot[i], slot[j] = slot[j], slot[i]
	}
}

// snakeOrder returns guest indices in reflected mixed-radix (boustrophedon)
// order: consecutive entries are mesh neighbors.  Digit j of the odometer is
// reflected when the sum of the higher digits is odd.
func snakeOrder(s mesh.Shape) []int {
	n := s.Nodes()
	out := make([]int, n)
	coord := make([]int, s.Dims())
	digits := make([]int, s.Dims())
	for i := 0; i < n; i++ {
		rem := i
		for j := 0; j < s.Dims(); j++ {
			digits[j] = rem % s[j]
			rem /= s[j]
		}
		for j := 0; j < s.Dims(); j++ {
			parity := 0
			for k := j + 1; k < s.Dims(); k++ {
				parity += digits[k]
			}
			if parity&1 == 1 {
				coord[j] = s[j] - 1 - digits[j]
			} else {
				coord[j] = digits[j]
			}
		}
		out[i] = s.Index(coord)
	}
	return out
}

func finish(s mesh.Shape, n int, slot []cube.Node) *embed.Embedding {
	e := embed.New(s, n)
	copy(e.Map, slot[:s.Nodes()])
	return e
}

// fastExp is a cheap exp(-x) approximation adequate for Metropolis tests.
func fastExp(x float64) float64 {
	if x < -20 {
		return 0
	}
	// exp(x) ≈ (1 + x/64)^64 for x ≤ 0
	y := 1 + x/64
	if y < 0 {
		return 0
	}
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	y *= y
	return y
}
