// Package dash defines the Grafana dashboard pack as code.  The dashboards
// deploy/grafana ships are rendered from these definitions by cmd/dashgen;
// every panel query is validated against server.MetricFamilies() — the
// canonical family list of the /metrics exposition — so a dashboard can
// never reference a metric the server does not register.
package dash

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/server"
)

// Target is one PromQL query on a panel.
type Target struct {
	Expr   string `json:"expr"`
	Legend string `json:"legendFormat,omitempty"`
	RefID  string `json:"refId"`
}

// GridPos is a panel's position on Grafana's 24-column grid.
type GridPos struct {
	H int `json:"h"`
	W int `json:"w"`
	X int `json:"x"`
	Y int `json:"y"`
}

// Panel is one dashboard panel in the (small) subset of Grafana's panel
// model this pack needs.
type Panel struct {
	ID          int      `json:"id"`
	Title       string   `json:"title"`
	Type        string   `json:"type"` // timeseries | stat
	Description string   `json:"description,omitempty"`
	GridPos     GridPos  `json:"gridPos"`
	Targets     []Target `json:"targets"`
	Datasource  string   `json:"datasource"`
	Unit        string   `json:"-"` // folded into fieldConfig on marshal
}

// panelJSON is the marshalled form: Unit moves into Grafana's fieldConfig.
type panelJSON struct {
	Panel
	FieldConfig map[string]any `json:"fieldConfig,omitempty"`
}

// Dashboard is the top-level document.
type Dashboard struct {
	UID           string   `json:"uid"`
	Title         string   `json:"title"`
	Tags          []string `json:"tags"`
	Timezone      string   `json:"timezone"`
	Refresh       string   `json:"refresh"`
	SchemaVersion int      `json:"schemaVersion"`
	Version       int      `json:"version"`
	Time          struct {
		From string `json:"from"`
		To   string `json:"to"`
	} `json:"time"`
	Panels []Panel `json:"panels"`
}

// row lays panels out two-across (12 columns each, 8 rows tall); stat
// panels are half height.
func layout(panels []Panel) []Panel {
	y := 0
	for i := range panels {
		h := 8
		if panels[i].Type == "stat" {
			h = 4
		}
		panels[i].ID = i + 1
		panels[i].GridPos = GridPos{H: h, W: 12, X: (i % 2) * 12, Y: y}
		panels[i].Datasource = "${DS_PROMETHEUS}"
		if i%2 == 1 {
			y += h
		}
	}
	return panels
}

func ts(title, desc, unit string, targets ...Target) Panel {
	for i := range targets {
		targets[i].RefID = string(rune('A' + i))
	}
	return Panel{Title: title, Type: "timeseries", Description: desc, Unit: unit, Targets: targets}
}

func stat(title, desc, unit string, targets ...Target) Panel {
	for i := range targets {
		targets[i].RefID = string(rune('A' + i))
	}
	return Panel{Title: title, Type: "stat", Description: desc, Unit: unit, Targets: targets}
}

func q(expr, legend string) Target { return Target{Expr: expr, Legend: legend} }

// Definitions returns the dashboard pack, laid out and numbered.
func Definitions() []Dashboard {
	serving := Dashboard{
		UID:   "embedserver-serving",
		Title: "Embedserver · Serving",
		Tags:  []string{"embedserver"},
		Panels: layout([]Panel{
			ts("Request rate", "Requests per second by endpoint.", "reqps",
				q(`sum by (endpoint) (rate(embedserver_requests_total[5m]))`, "{{endpoint}}")),
			ts("Non-2xx rate", "Error responses per second by endpoint and code.", "reqps",
				q(`sum by (endpoint, code) (rate(embedserver_requests_total{code!~"2.."}[5m]))`, "{{endpoint}} {{code}}")),
			ts("Latency percentiles", "Request latency p50/p95/p99 across endpoints.", "s",
				q(`histogram_quantile(0.50, sum by (le) (rate(embedserver_request_seconds_bucket[5m])))`, "p50"),
				q(`histogram_quantile(0.95, sum by (le) (rate(embedserver_request_seconds_bucket[5m])))`, "p95"),
				q(`histogram_quantile(0.99, sum by (le) (rate(embedserver_request_seconds_bucket[5m])))`, "p99")),
			ts("Shed and coalesce", "Load shedding (429s at the concurrency limit) and requests merged into in-flight duplicates.", "reqps",
				q(`rate(embedserver_shed_total[5m])`, "shed"),
				q(`rate(embedserver_coalesced_total[5m])`, "coalesced"),
				q(`embedserver_inflight`, "inflight")),
			ts("Plan tier hit split", "Where plan requests are answered: L0 result cache, closed-form classifier, mmap artifact, or full compute.", "reqps",
				q(`rate(embedserver_plan_tier_l0_total[5m])`, "L0 cache"),
				q(`rate(embedserver_plan_tier_closed_form_total[5m])`, "closed form"),
				q(`rate(embedserver_plan_tier_artifact_total[5m])`, "artifact"),
				q(`rate(embedserver_plan_tier_compute_total[5m])`, "compute")),
			ts("Cache hit ratios", "Result- and plan-cache hit fractions (1.0 = every lookup hit).", "percentunit",
				q(`rate(embedserver_result_cache_hits_total[5m]) / (rate(embedserver_result_cache_hits_total[5m]) + rate(embedserver_result_cache_misses_total[5m]))`, "result cache"),
				q(`rate(embedserver_plan_cache_hits_total[5m]) / (rate(embedserver_plan_cache_hits_total[5m]) + rate(embedserver_plan_cache_misses_total[5m]))`, "plan cache")),
			ts("Cache occupancy", "Entries held by the result and plan caches, and LRU evictions.", "short",
				q(`embedserver_result_cache_entries`, "result entries"),
				q(`embedserver_plan_cache_entries`, "plan entries"),
				q(`rate(embedserver_result_cache_evictions_total[5m])`, "evictions/s")),
			stat("Plan artifact", "Records in the attached plan-census artifact (absent when no artifact is attached).", "short",
				q(`embedserver_plan_artifact_records`, "records")),
			ts("Optimality certificates", "Certificates served on plan/embed/compare responses, and the provably-optimal fraction (achieved metrics meeting the internal/bounds floors).", "reqps",
				q(`rate(embedserver_certificates_total[5m])`, "served"),
				q(`rate(embedserver_certificates_optimal_total[5m])`, "optimal"),
				q(`rate(embedserver_certificates_optimal_total[5m]) / rate(embedserver_certificates_total[5m])`, "optimal fraction")),
		}),
	}

	jobs := Dashboard{
		UID:   "embedserver-jobs",
		Title: "Embedserver · Jobs & Streaming",
		Tags:  []string{"embedserver"},
		Panels: layout([]Panel{
			stat("Job states", "Jobs by lifecycle state.", "short",
				q(`embedserver_jobs_queued`, "queued"),
				q(`embedserver_jobs_running`, "running"),
				q(`embedserver_jobs_done`, "done"),
				q(`embedserver_jobs_failed`, "failed"),
				q(`embedserver_jobs_cancelled`, "cancelled")),
			stat("Queue headroom", "Free slots in the submission queue.", "short",
				q(`embedserver_jobs_queue_capacity - embedserver_jobs_queued`, "free slots")),
			ts("Chunk and shape throughput", "Progress velocity: chunks and shapes completed per second, with chunk retries.", "ops",
				q(`rate(embedserver_jobs_chunks_done_total[5m])`, "chunks/s"),
				q(`rate(embedserver_jobs_shapes_total[5m])`, "shapes/s"),
				q(`rate(embedserver_jobs_retries_total[5m])`, "retries/s")),
			ts("Result stream volume", "NDJSON result bytes committed to disk per second.", "Bps",
				q(`rate(embedserver_jobs_result_bytes_total[5m])`, "committed")),
			ts("SSE subscribers", "Live /v1/jobs/{id}/events subscribers.", "short",
				q(`embedserver_sse_subscribers`, "subscribers")),
			ts("SSE delivery and drops", "Events fanned out per second, and slow clients evicted (a drop is a client that stopped reading, never a stalled job).", "ops",
				q(`rate(embedserver_sse_events_total[5m])`, "events/s"),
				q(`rate(embedserver_sse_dropped_total[5m])`, "drops/s")),
		}),
	}

	fabric := Dashboard{
		UID:   "embedserver-fabric",
		Title: "Embedserver · Fabric & Runtime",
		Tags:  []string{"embedserver"},
		Panels: layout([]Panel{
			stat("Peer health", "Fabric peers by health state.", "short",
				q(`embedserver_fabric_peers{state="up"}`, "up"),
				q(`embedserver_fabric_peers{state="down"}`, "down")),
			ts("Per-peer inflight", "Chunks currently executing on each peer — skew here means a slow or oversized peer.", "short",
				q(`embedserver_fabric_peer_inflight`, "{{peer}}")),
			ts("Chunk flow", "Dispatched vs folded chunk rates; requeues are chunks re-dispatched after a peer failure.", "ops",
				q(`rate(embedserver_fabric_chunks_dispatched_total[5m])`, "dispatched/s"),
				q(`rate(embedserver_fabric_chunks_folded_total[5m])`, "folded/s"),
				q(`rate(embedserver_fabric_chunks_requeued_total[5m])`, "requeued/s")),
			ts("Tracer activity", "Spans and root traces started per second, and the tracer's own overhead.", "ops",
				q(`rate(obs_spans_started_total[5m])`, "spans/s"),
				q(`rate(obs_traces_started_total[5m])`, "traces/s"),
				q(`rate(obs_span_overhead_seconds_total[5m])`, "overhead s/s")),
			ts("Go runtime", "Goroutines and GC pause accumulation.", "short",
				q(`go_goroutines`, "goroutines"),
				q(`rate(go_gc_pause_total_seconds[5m])`, "gc pause s/s")),
			ts("Heap", "Allocated heap bytes.", "bytes",
				q(`go_heap_alloc_bytes`, "heap")),
		}),
	}

	out := []Dashboard{serving, jobs, fabric}
	for i := range out {
		out[i].Timezone = "browser"
		out[i].Refresh = "10s"
		out[i].SchemaVersion = 39
		out[i].Version = 1
		out[i].Time.From = "now-1h"
		out[i].Time.To = "now"
	}
	return out
}

// metricToken matches candidate metric names inside a PromQL expression.
var metricToken = regexp.MustCompile(`[a-zA-Z_:][a-zA-Z0-9_:]*`)

// promqlKeywords are tokens the extractor must not mistake for metrics.
var promqlKeywords = map[string]bool{
	"rate": true, "sum": true, "by": true, "le": true, "avg": true,
	"max": true, "min": true, "histogram_quantile": true, "increase": true,
	"irate": true, "on": true, "ignoring": true, "group_left": true,
	"group_right": true, "without": true, "count": true,
	"endpoint": true, "code": true, "peer": true, "state": true,
}

// Validate checks that every metric a dashboard references is a family the
// server registers.  Histogram sample suffixes (_bucket/_sum/_count) resolve
// to their base family.
func Validate(dashboards []Dashboard) error {
	known := make(map[string]bool)
	for _, f := range server.MetricFamilies() {
		known[f] = true
	}
	var bad []string
	for _, d := range dashboards {
		for _, p := range d.Panels {
			for _, t := range p.Targets {
				for _, tok := range metricToken.FindAllString(t.Expr, -1) {
					if promqlKeywords[tok] || !strings.Contains(tok, "_") {
						continue
					}
					base := tok
					for _, suffix := range []string{"_bucket", "_sum", "_count"} {
						if b, ok := strings.CutSuffix(tok, suffix); ok && known[b] {
							base = b
						}
					}
					if !known[base] {
						bad = append(bad, fmt.Sprintf("%s / %q references unregistered metric %q", d.UID, p.Title, tok))
					}
				}
			}
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("dashboard queries reference metrics the server does not expose:\n  %s",
			strings.Join(bad, "\n  "))
	}
	return nil
}

// Render validates the definitions and returns filename → JSON bytes.  The
// output is deterministic (struct field order, trailing newline) so the
// drift gate can byte-compare.
func Render() (map[string][]byte, error) {
	dashboards := Definitions()
	if err := Validate(dashboards); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(dashboards))
	for _, d := range dashboards {
		wrapped := struct {
			UID           string      `json:"uid"`
			Title         string      `json:"title"`
			Tags          []string    `json:"tags"`
			Timezone      string      `json:"timezone"`
			Refresh       string      `json:"refresh"`
			SchemaVersion int         `json:"schemaVersion"`
			Version       int         `json:"version"`
			Time          any         `json:"time"`
			Panels        []panelJSON `json:"panels"`
		}{d.UID, d.Title, d.Tags, d.Timezone, d.Refresh, d.SchemaVersion, d.Version, d.Time, nil}
		for _, p := range d.Panels {
			pj := panelJSON{Panel: p}
			if p.Unit != "" {
				pj.FieldConfig = map[string]any{
					"defaults": map[string]any{"unit": p.Unit},
				}
			}
			wrapped.Panels = append(wrapped.Panels, pj)
		}
		data, err := json.MarshalIndent(wrapped, "", "  ")
		if err != nil {
			return nil, err
		}
		out[strings.TrimPrefix(d.UID, "embedserver-")+".json"] = append(data, '\n')
	}
	return out, nil
}
