package dash

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestRenderDeterministic: Render succeeds (i.e. every panel query passes
// family validation) and two renders are byte-identical, which is what the
// make dash-check drift gate relies on.
func TestRenderDeterministic(t *testing.T) {
	a, err := Render()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("rendered %d dashboards, want 3", len(a))
	}
	for name, data := range a {
		if string(b[name]) != string(data) {
			t.Errorf("%s: two renders differ", name)
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Errorf("%s: invalid JSON: %v", name, err)
		}
		if doc["uid"] == "" || doc["panels"] == nil {
			t.Errorf("%s: missing uid/panels", name)
		}
	}
}

// TestValidateCatchesUnknownMetric: a panel referencing a family the server
// does not register must fail validation — that is the whole point of
// dashboards-as-code here.
func TestValidateCatchesUnknownMetric(t *testing.T) {
	bad := []Dashboard{{
		UID: "bad",
		Panels: []Panel{ts("broken", "", "short",
			q(`rate(embedserver_nonexistent_total[5m])`, ""))},
	}}
	err := Validate(bad)
	if err == nil {
		t.Fatal("Validate accepted an unregistered metric")
	}
	if !strings.Contains(err.Error(), "embedserver_nonexistent_total") {
		t.Fatalf("error does not name the offending metric: %v", err)
	}
}

// TestEveryPanelHasQueries: no placeholder panels, and every target's
// referenced families resolve (Validate) — plus the reverse direction: the
// pack as a whole should exercise a decent share of the registry, so a
// metric added to the server without a dashboard home shows up in review.
func TestEveryPanelHasQueries(t *testing.T) {
	dashboards := Definitions()
	if err := Validate(dashboards); err != nil {
		t.Fatal(err)
	}
	referenced := make(map[string]bool)
	for _, d := range dashboards {
		for _, p := range d.Panels {
			if len(p.Targets) == 0 {
				t.Errorf("%s / %q has no queries", d.UID, p.Title)
			}
			for _, tg := range p.Targets {
				if tg.Expr == "" {
					t.Errorf("%s / %q has an empty expr", d.UID, p.Title)
				}
				for _, tok := range metricToken.FindAllString(tg.Expr, -1) {
					base := tok
					for _, suffix := range []string{"_bucket", "_sum", "_count"} {
						base = strings.TrimSuffix(base, suffix)
					}
					referenced[base] = true
				}
			}
		}
	}
	var unreferenced []string
	for _, f := range server.MetricFamilies() {
		// build_info and gomaxprocs are label/config metrics with no
		// time-series panel value.
		if f == "embedserver_build_info" || f == "go_gomaxprocs" {
			continue
		}
		if !referenced[f] {
			unreferenced = append(unreferenced, f)
		}
	}
	if len(unreferenced) > 0 {
		t.Errorf("registered families with no dashboard panel: %v", unreferenced)
	}
}
