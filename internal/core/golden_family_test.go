package core

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/mesh"
)

// The pinned values below were captured from the pre-refactor planner and
// fused metrics engine (PR 5 tree) with:
//
//	plan   := PlanShape(s, DefaultOptions)   // resp. wrap.Embed for tori
//	metric := plan.Build().Measure().String()
//
// The guest-family refactor must keep mesh and torus results byte-identical:
// same plan tree, same method, same dilation bound, and the same fused
// metrics line character for character.

// TestGoldenMeshPlansUnchanged pins the mesh planner + metrics output.
func TestGoldenMeshPlansUnchanged(t *testing.T) {
	cases := []struct {
		shape   string
		plan    string
		method  int
		metrics string
	}{
		{"64x64x64", "64x64x64[gray]", 1,
			"64x64x64 -> 18-cube: exp=1.0000 minimal=true dil=1 avgdil=1.0000 wl=774144 cong=1 avgcong=0.3281 load=1"},
		{"5x6x7", "(5x3x1[direct] ⊗ 1x2x7[gray])", 2,
			"5x6x7 -> 8-cube: exp=1.2190 minimal=true dil=2 avgdil=1.0803 wl=565 cong=2 avgcong=0.5518 load=1"},
		{"3x5x17", "3x5x17[snake]", 5,
			"3x5x17 -> 8-cube: exp=1.0039 minimal=true dil=5 avgdil=2.0619 wl=1266 cong=5 avgcong=1.2363 load=1"},
		{"6x10", "(3x5[direct] ⊗ 2x2[gray])", 5,
			"6x10 -> 6-cube: exp=1.0667 minimal=true dil=2 avgdil=1.1154 wl=116 cong=2 avgcong=0.6042 load=1"},
		{"12x20", "(3x5[direct] ⊗ 4x4[gray])", 5,
			"12x20 -> 8-cube: exp=1.0667 minimal=true dil=2 avgdil=1.1071 wl=496 cong=2 avgcong=0.4844 load=1"},
	}
	for _, tc := range cases {
		s, err := mesh.ParseShape(tc.shape)
		if err != nil {
			t.Fatal(err)
		}
		p := PlanShape(s, DefaultOptions)
		if got := p.String(); got != tc.plan {
			t.Errorf("%s: plan drifted: %s, want %s", tc.shape, got, tc.plan)
		}
		if p.Method != tc.method {
			t.Errorf("%s: method drifted: %d, want %d", tc.shape, p.Method, tc.method)
		}
		if got := p.Build().Measure().String(); got != tc.metrics {
			t.Errorf("%s: metrics drifted:\n got %s\nwant %s", tc.shape, got, tc.metrics)
		}
		// The family entry point must produce the identical plan for meshes.
		pg, err := PlanGuest(guest.Mesh, s, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if pg.String() != tc.plan || pg.Method != tc.method {
			t.Errorf("%s: PlanGuest(mesh) diverges from PlanShape: %s method %d", tc.shape, pg, pg.Method)
		}
	}
}

// TestGoldenTorusMetricsUnchanged pins the torus construction choice and
// fused metrics against the pre-refactor wrap.Embed output.
func TestGoldenTorusMetricsUnchanged(t *testing.T) {
	cases := []struct {
		shape   string
		metrics string
	}{
		{"6x10", "6x10 (wraparound) -> 6-cube: exp=1.0667 minimal=true dil=2 avgdil=1.1000 wl=132 cong=2 avgcong=0.6875 load=1"},
		{"5x6x7", "5x6x7 (wraparound) -> 8-cube: exp=1.2190 minimal=true dil=7 avgdil=2.5143 wl=1584 cong=7 avgcong=1.5469 load=1"},
		{"16x16", "16x16 (wraparound) -> 8-cube: exp=1.0000 minimal=true dil=1 avgdil=1.0000 wl=512 cong=1 avgcong=0.5000 load=1"},
	}
	for _, tc := range cases {
		s, err := mesh.ParseShape(tc.shape)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PlanGuest(guest.Torus, s, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Build().Measure().String(); got != tc.metrics {
			t.Errorf("torus %s: metrics drifted:\n got %s\nwant %s", tc.shape, got, tc.metrics)
		}
	}
}
