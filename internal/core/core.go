package core
