package core

// StrategyID enumerates the planner's registered strategies.  The wire
// names — the strings Strategy.Name returns, the keys of provenance traces
// and `embedctl explain` output — are generated from this constant block
// (strategyid_enumgen.go), so adding a strategy means adding a constant
// here and its Name method delegating to String.
type StrategyID int

const (
	StrategyDirect StrategyID = iota
	StrategySolver
	StrategyFactor
	StrategyExtend
	StrategyHighDim
	StrategyPairGray // pair+gray
	StrategySplit2D
	StrategySplit3D
	StrategyFold
)
