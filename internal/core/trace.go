package core

import (
	"context"
	"time"

	"repro/internal/mesh"
	"repro/internal/obs"
)

// Plan provenance: a traced planning run records, for every shape the
// recursion visits, which strategies were tried, skipped (and why, quoting
// the pipeline's gate reason) or chosen, what each candidate looked like and
// how long each attempt took.  The result is the PlanTrace tree returned by
// Planner.PlanTraced and served under /v1/*?debug=trace.
//
// Tracing rides a private copy of the planner's context with the plan cache
// detached, so every strategy genuinely runs — a provenance answer must not
// degenerate to "cache hit" — and the shared Planner stays immutable and
// concurrency-safe.  The traced run still plans in canonical axis order, so
// the plan it returns is identical to Planner.Plan's.

// StrategyAttempt is one pipeline stage's outcome for one shape.
type StrategyAttempt struct {
	Strategy string `json:"strategy"`
	// Status is "tried", "skipped" or "chosen" (chosen implies tried and
	// won the cost-model comparison).
	Status string `json:"status"`
	// Reason explains the status: the gate reason for skips, the
	// cost-model outcome for tried candidates, "no candidate" for misses.
	Reason string `json:"reason,omitempty"`
	// Plan is the candidate construction, when the strategy produced one.
	Plan     string `json:"plan,omitempty"`
	CubeDim  int    `json:"cube_dim,omitempty"`
	Dilation int    `json:"dilation,omitempty"` // -1: no a-priori bound
	// Stopped marks the attempt after which the pipeline's stop gate fired.
	Stopped    bool  `json:"stopped_pipeline,omitempty"`
	DurationNS int64 `json:"duration_ns"`
}

// PlanTrace is the provenance tree of one traced planning run: one node per
// shape the recursion visited, in deterministic pipeline order.
type PlanTrace struct {
	// Shape is the shape as requested; Canonical is the axis-sorted shape
	// the strategies actually searched.
	Shape     string `json:"shape"`
	Canonical string `json:"canonical"`
	// Pipeline names the strategy pipeline that ran: "2d", "3d", "highd",
	// or the shortcut labels "gray-minimal" / "path".
	Pipeline string            `json:"pipeline"`
	Attempts []StrategyAttempt `json:"attempts,omitempty"`
	// Chosen is the winning strategy's name; "gray" for shortcut nodes,
	// "snake" when the top-level run fell back, "none" when no structured
	// plan exists for a sub-shape.
	Chosen     string       `json:"chosen,omitempty"`
	Plan       string       `json:"plan,omitempty"`
	DurationNS int64        `json:"duration_ns"`
	Sub        []*PlanTrace `json:"sub,omitempty"`
}

// Walk calls f for every node of the tree in pre-order.
func (pt *PlanTrace) Walk(f func(*PlanTrace)) {
	if pt == nil {
		return
	}
	f(pt)
	for _, sub := range pt.Sub {
		sub.Walk(f)
	}
}

// tracedNode is one open PlanTrace frame plus its obs span.
type tracedNode struct {
	pt   *PlanTrace
	span *obs.Span
	t0   time.Time
}

// planTracer accumulates the provenance tree and mirrors it into obs spans.
// A tracer belongs to exactly one PlanTraced call (planning recursion is
// single-goroutine), so no locking is needed.  All methods are nil-receiver
// safe so the untraced hot path carries only nil checks.
type planTracer struct {
	// ctxs is the innermost-last stack of span contexts: plan nodes and
	// strategy attempts both push, so sub-shape spans nest under the
	// attempt that searched them.
	ctxs  []context.Context
	nodes []*tracedNode
	root  *PlanTrace
}

func newPlanTracer(ctx context.Context) *planTracer {
	return &planTracer{ctxs: []context.Context{ctx}}
}

func (tr *planTracer) topCtx() context.Context { return tr.ctxs[len(tr.ctxs)-1] }
func (tr *planTracer) cur() *tracedNode        { return tr.nodes[len(tr.nodes)-1] }

// push opens a provenance node for a shape the recursion is about to plan.
func (tr *planTracer) push(s mesh.Shape) {
	canon, _ := canonicalShape(s)
	pt := &PlanTrace{Shape: s.String(), Canonical: canon.String()}
	if len(tr.nodes) > 0 {
		top := tr.cur()
		top.pt.Sub = append(top.pt.Sub, pt)
	} else {
		tr.root = pt
	}
	ctx, span := obs.Start(tr.topCtx(), "plan "+canon.String())
	tr.ctxs = append(tr.ctxs, ctx)
	tr.nodes = append(tr.nodes, &tracedNode{pt: pt, span: span, t0: time.Now()})
}

// pop closes the current node with the plan the recursion settled on.
func (tr *planTracer) pop(p *Plan) {
	node := tr.cur()
	tr.nodes = tr.nodes[:len(tr.nodes)-1]
	tr.ctxs = tr.ctxs[:len(tr.ctxs)-1]
	node.pt.DurationNS = time.Since(node.t0).Nanoseconds()
	if p != nil {
		node.pt.Plan = p.String()
	} else if node.pt.Chosen == "" {
		node.pt.Chosen = "none"
	}
	node.span.SetAttr("chosen", node.pt.Chosen)
	if node.pt.Plan != "" {
		node.span.SetAttr("plan", node.pt.Plan)
	}
	node.span.End()
}

// setPipeline labels the current node with the pipeline about to run.
func (tr *planTracer) setPipeline(name string) {
	if tr == nil {
		return
	}
	cur := tr.cur()
	cur.pt.Pipeline = name
	cur.span.SetAttr("pipeline", name)
}

// shortcut records a node resolved without running any pipeline (the
// Gray-minimal and path fast paths of planDispatch).
func (tr *planTracer) shortcut(pipeline, chosen string) {
	if tr == nil {
		return
	}
	tr.setPipeline(pipeline)
	tr.cur().pt.Chosen = chosen
}

// attemptDilation maps the plan's bound onto the JSON convention (-1 for
// "no a-priori bound").
func attemptDilation(p *Plan) int {
	if p.Dilation == DilationUnknown {
		return -1
	}
	return p.Dilation
}

// runPipelineTraced is runPipeline with provenance recording: one
// StrategyAttempt (and one obs span) per stage, in pipeline order.
func (pc *planContext) runPipelineTraced(stages []stage, s mesh.Shape, foldDepth int) *Plan {
	tr := pc.tr
	cur := tr.cur().pt
	var best *Plan
	bestIdx := -1
	bestName := ""
	for _, st := range stages {
		name := st.strat.Name()
		if st.skip != nil && st.skip(best) {
			_, sp := obs.Start(tr.topCtx(), "strategy:"+name)
			sp.SetAttr("status", "skipped")
			sp.SetAttr("reason", st.skipReason)
			sp.End()
			cur.Attempts = append(cur.Attempts, StrategyAttempt{
				Strategy: name, Status: "skipped", Reason: st.skipReason})
			continue
		}
		actx, sp := obs.Start(tr.topCtx(), "strategy:"+name)
		tr.ctxs = append(tr.ctxs, actx)
		t0 := time.Now()
		cand := st.strat.Search(pc, s, foldDepth)
		a := StrategyAttempt{Strategy: name, Status: "tried",
			DurationNS: time.Since(t0).Nanoseconds()}
		tr.ctxs = tr.ctxs[:len(tr.ctxs)-1]
		if cand == nil {
			a.Reason = "no candidate"
		} else {
			a.Plan = cand.String()
			a.CubeDim = cand.CubeDim
			a.Dilation = attemptDilation(cand)
			merged := pc.better(best, cand)
			switch {
			case best == nil:
				a.Reason = "first candidate"
			case merged == cand && merged != best:
				a.Reason = "beats " + bestName + " under " + pc.cost.Name()
			default:
				a.Reason = "kept " + bestName + " under " + pc.cost.Name()
			}
			if merged == cand && merged != best || best == nil {
				bestIdx = len(cur.Attempts)
				bestName = name
			}
			best = merged
			sp.SetAttr("plan", a.Plan)
		}
		sp.SetAttr("status", a.Status)
		sp.SetAttr("reason", a.Reason)
		sp.End()
		cur.Attempts = append(cur.Attempts, a)
		if st.stop != nil && st.stop(best) {
			last := &cur.Attempts[len(cur.Attempts)-1]
			last.Stopped = true
			if st.stopReason != "" {
				last.Reason += "; stopped pipeline: " + st.stopReason
			}
			break
		}
	}
	if bestIdx >= 0 {
		cur.Attempts[bestIdx].Status = "chosen"
		cur.Chosen = bestName
	}
	return best
}

// PlanTraced is Plan with full provenance: it returns the same plan as Plan
// (traced runs plan in canonical axis order, exactly like the cached path)
// plus the PlanTrace tree recording every strategy attempt.  When ctx
// carries an obs span, each visited shape and each strategy attempt also
// becomes a child span ("plan <shape>" / "strategy:<name>").
//
// The plan cache is bypassed so every strategy genuinely runs; a traced plan
// is therefore as expensive as a cold one.  Safe for concurrent use.
func (pl *Planner) PlanTraced(ctx context.Context, s mesh.Shape) (*Plan, *PlanTrace, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	pctx, span := obs.Start(ctx, "planner")
	tpc := *pl.pc
	tpc.cache = nil
	tpc.tr = newPlanTracer(pctx)
	p := tpc.planTop(s)
	rt := tpc.tr.root
	if rt != nil {
		if p.Kind == KindSnake && rt.Plan == "" {
			// planTop's snake fallback happens above the recursion point.
			rt.Chosen = "snake"
			rt.Plan = p.String()
		}
	}
	span.SetAttr("plan", p.String())
	span.SetAttr("method", p.Method)
	span.End()
	return p, rt, nil
}
