package core

import (
	"repro/internal/direct"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// DirectStrategy matches the frozen direct tables (§3.3), possibly after
// axis permutation and padding (handled by direct.Lookup).  A hit is final:
// the registry stops the two-axis pipeline on it.
type DirectStrategy struct{}

func (DirectStrategy) Name() string { return StrategyDirect.String() }

func (DirectStrategy) Search(pc *planContext, s mesh.Shape, _ int) *Plan {
	tab, _, ok := direct.Lookup(s)
	if !ok {
		return nil
	}
	return &Plan{Kind: KindDirect, Shape: s.Clone(), CubeDim: tab.Shape.MinCubeDim(),
		Dilation: tab.Dilation, Method: 2}
}

// SolverStrategy runs the deterministic annealing solver on shapes within
// the configured node budget.  Last resort: the registry skips it whenever
// a structured plan exists.
type SolverStrategy struct{}

func (SolverStrategy) Name() string { return StrategySolver.String() }

func (SolverStrategy) Search(pc *planContext, s mesh.Shape, _ int) *Plan {
	return pc.planBySolver(s)
}

// planBySolver runs the deterministic solver when the shape is within the
// configured budget.
func (pc *planContext) planBySolver(s mesh.Shape) *Plan {
	if pc.opts.SolverBudget <= 0 || s.Nodes() > pc.opts.SolverBudget {
		return nil
	}
	e := solver.Find(s, solver.Options{MaxDilation: 2, Seed: pc.opts.SolverSeed,
		Restarts: 6, Iterations: 150_000})
	if e == nil {
		return nil
	}
	e.RealizeMinCongestion()
	return &Plan{Kind: KindSolver, Shape: s.Clone(), CubeDim: e.N,
		Dilation: e.Dilation(), Method: 5, solved: e}
}
