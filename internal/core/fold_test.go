package core

import (
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/mesh"
)

func TestFoldedShape(t *testing.T) {
	got := foldedShape(mesh.Shape{3, 21}, 1, 3, 7)
	if !got.Equal(mesh.Shape{3, 3, 7}) {
		t.Errorf("foldedShape = %v", got)
	}
	got = foldedShape(mesh.Shape{10, 4}, 0, 5, 2)
	if !got.Equal(mesh.Shape{5, 4, 2}) {
		t.Errorf("foldedShape = %v", got)
	}
}

func TestUnfoldPreservesAdjacency(t *testing.T) {
	// Guest edges must map to folded-mesh edges: build the folded mesh's
	// Gray embedding (dilation 1) and check the unfolded guest inherits
	// dilation ≤ 1 on every edge that the folded mesh realizes directly.
	f := func(aRaw, bRaw, lRaw, axisRaw uint8) bool {
		a := int(aRaw%4) + 2
		b := int(bRaw%4) + 2
		other := int(lRaw%6) + 1
		guest := mesh.Shape{other, a * b}
		axis := 1
		if axisRaw%2 == 0 {
			guest = mesh.Shape{a * b, other}
			axis = 0
		}
		fshape := foldedShape(guest, axis, a, b)
		fe := embed.Gray(fshape)
		e := unfold(fe, guest, axis, a, b)
		if err := e.Verify(); err != nil {
			return false
		}
		return e.Dilation() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnfoldCoveringFold(t *testing.T) {
	// 13 folded as 2x7 (cover 14): one folded slot unused; the embedding
	// must stay injective and edge-preserving.
	guest := mesh.Shape{13, 3}
	fshape := foldedShape(guest, 0, 2, 7)
	fe := embed.Gray(fshape)
	e := unfold(fe, guest, 0, 2, 7)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.Dilation() > 1 {
		t.Errorf("covering fold dilation %d, want ≤ 1", e.Dilation())
	}
}

func TestUnfoldPanicsOnMismatch(t *testing.T) {
	guest := mesh.Shape{3, 21}
	fe := embed.Gray(mesh.Shape{3, 3, 7})
	for _, bad := range []func(){
		func() { unfold(fe, guest, 1, 3, 5) },             // wrong b
		func() { unfold(fe, guest, 0, 3, 7) },             // wrong axis
		func() { unfold(fe, mesh.Shape{3, 22}, 1, 3, 7) }, // cover too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestPlanByFoldingDepthGuard(t *testing.T) {
	pc := newPlanContext(DefaultOptions, nil, false)
	if p := pc.planByFolding(mesh.Shape{3, 21}, 1); p != nil {
		t.Error("fold at depth 1 should be blocked")
	}
	if p := pc.planByFolding(mesh.Shape{3, 21}, 0); p == nil {
		t.Error("fold at depth 0 should find the 3x3x7 lift")
	}
}

func TestCoveringFoldResolves13x17(t *testing.T) {
	s := mesh.Shape{13, 17}
	p := PlanShape(s, DefaultOptions)
	e := p.Build()
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("13x17: %s (plan %s)", e.Measure(), p)
	}
}

func TestFoldPlanMetricsConsistent(t *testing.T) {
	// The fold plan's guaranteed dilation must hold on the built guest.
	for _, str := range []string{"3x21", "13x17", "9x14", "25x5"} {
		s := mesh.MustParse(str)
		p := PlanShape(s, DefaultOptions)
		e := p.Build()
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if p.Dilation != DilationUnknown && e.Dilation() > p.Dilation {
			t.Errorf("%v: measured %d > guaranteed %d (plan %s)", s, e.Dilation(), p.Dilation, p)
		}
	}
}

func BenchmarkPlanWithFold(b *testing.B) {
	shapes := []mesh.Shape{{3, 21}, {13, 17}}
	for i := 0; i < b.N; i++ {
		_ = PlanShape(shapes[i%2], Options{})
	}
}
