// Package core implements the paper's contribution: embedding meshes in
// Boolean cubes by graph decomposition.  The central operation is the
// product-embedding construction of Theorem 3 with the axis-reflection
// refinement of Corollary 2, on top of which the planner of Section 5
// combines Gray codes, two-dimensional embeddings, the direct
// three-dimensional embeddings and axis extension into minimal-expansion
// dilation-two embeddings of three-dimensional meshes.
package core

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// padShape returns the shape extended with trailing 1s to k axes.
func padShape(s mesh.Shape, k int) mesh.Shape {
	if len(s) >= k {
		return s
	}
	out := make(mesh.Shape, k)
	copy(out, s)
	for i := len(s); i < k; i++ {
		out[i] = 1
	}
	return out
}

// Product composes two mesh embeddings into an embedding of the
// componentwise-product mesh (Corollary 2).  If e1 embeds an
// ℓ₁₁×…×ℓ₁k mesh into an n₁-cube and e2 an ℓ₂₁×…×ℓ₂k mesh into an n₂-cube,
// the result embeds the ℓ₁₁ℓ₂₁ × … × ℓ₁kℓ₂k mesh into the (n₁+n₂)-cube:
//
//	φ(z) = φ₂(y) ‖ φ̃₁(y, x),  zᵢ = yᵢ·ℓ₁ᵢ + xᵢ,
//
// where φ̃₁ reflects axis i of the inner mesh whenever yᵢ is odd, so the
// seam between consecutive inner copies reuses the same inner codeword and
// costs only the outer embedding's dilation.  The dilation of the result is
// ≤ max(dil φ₁, dil φ₂) and the congestion ≤ max(cong φ₁, cong φ₂)
// (Theorem 3); expansion multiplies.
//
// Shapes of different arity are aligned by padding with trailing 1s.
// Wraparound embeddings are not composable here (see package wrap).
func Product(e1, e2 *embed.Embedding) *embed.Embedding {
	if e1.Family != guest.Mesh || e2.Family != guest.Mesh {
		panic("core: Product requires plain mesh factors")
	}
	k := e1.Guest.Dims()
	if e2.Guest.Dims() > k {
		k = e2.Guest.Dims()
	}
	s1 := padShape(e1.Guest, k)
	s2 := padShape(e2.Guest, k)
	gs := s1.Product(s2)

	out := embed.New(gs, e1.N+e2.N)
	zc := make([]int, k)
	xc := make([]int, k)
	yc := make([]int, k)
	for z := range out.Map {
		gs.CoordInto(z, zc)
		for i := 0; i < k; i++ {
			xc[i] = zc[i] % s1[i]
			yc[i] = zc[i] / s1[i]
			if yc[i]&1 == 1 { // reflect inner axis i (φ̃₁)
				xc[i] = s1[i] - 1 - xc[i]
			}
		}
		inner := e1.Map[s1.Index(xc)]
		outer := e2.Map[s2.Index(yc)]
		out.Map[z] = cube.Node(uint64(outer)<<uint(e1.N) | uint64(inner))
	}

	// Compose pinned paths when the factors carry them, so congestion
	// guarantees transfer (Theorem 3's disjoint-copy argument).
	if e1.Paths != nil || e2.Paths != nil {
		out.Paths = make(map[embed.EdgeKey]cube.Path)
		composePaths(out, e1, e2, s1, s2)
	}
	return out
}

// composePaths pins the host path of every product-guest edge whose factor
// edge has a pinned path: inner edges lift φ₁'s path into the copy selected
// by φ₂(y); seam edges lift φ₂'s path with the inner codeword fixed.
func composePaths(out, e1, e2 *embed.Embedding, s1, s2 mesh.Shape) {
	k := out.Guest.Dims()
	zcU := make([]int, k)
	zcV := make([]int, k)
	xc := make([]int, k)
	yc := make([]int, k)
	xc2 := make([]int, k)
	out.Guest.EachEdge(func(ed mesh.Edge) {
		out.Guest.CoordInto(ed.U, zcU)
		out.Guest.CoordInto(ed.V, zcV)
		ax := ed.Axis
		// Decompose the lower endpoint.
		for i := 0; i < k; i++ {
			xc[i] = zcU[i] % s1[i]
			yc[i] = zcU[i] / s1[i]
		}
		vx := zcV[ax] % s1[ax]
		vy := zcV[ax] / s1[ax]
		if vy == yc[ax] {
			// Inner (S1-type) edge: both endpoints in the same copy.
			copy(xc2, xc)
			xc2[ax] = vx
			for i := 0; i < k; i++ {
				if yc[i]&1 == 1 {
					xc[i] = s1[i] - 1 - xc[i]
					xc2[i] = s1[i] - 1 - xc2[i]
				}
			}
			u1, v1 := s1.Index(xc), s1.Index(xc2)
			p := factorPath(e1, u1, v1)
			if p == nil {
				return
			}
			prefix := uint64(e2.Map[s2.Index(yc)]) << uint(e1.N)
			lift := make(cube.Path, len(p))
			for i, node := range p {
				lift[i] = cube.Node(prefix | uint64(node))
			}
			out.Paths[embed.Key(ed.U, ed.V)] = lift
			// restore xc (unreflect) for next iteration is unnecessary:
			// xc is recomputed per edge.
		} else {
			// Seam (S2-type) edge: y advances by one on axis ax; the inner
			// codeword is shared (reflection makes the two sides agree).
			for i := 0; i < k; i++ {
				if yc[i]&1 == 1 {
					xc[i] = s1[i] - 1 - xc[i]
				}
			}
			innerBits := uint64(e1.Map[s1.Index(xc)])
			u2 := s2.Index(yc)
			yc[ax] = vy
			v2 := s2.Index(yc)
			p := factorPath(e2, u2, v2)
			if p == nil {
				return
			}
			lift := make(cube.Path, len(p))
			for i, node := range p {
				lift[i] = cube.Node(uint64(node)<<uint(e1.N) | innerBits)
			}
			out.Paths[embed.Key(ed.U, ed.V)] = lift
		}
	})
}

// factorPath returns the pinned path of a factor edge oriented from u to v,
// or nil when the factor has no pinned path for it (the product edge then
// falls back to e-cube routing, which also stays inside the copy).
func factorPath(e *embed.Embedding, u, v int) cube.Path {
	if e.Paths == nil {
		return nil
	}
	p, ok := e.Paths[embed.Key(u, v)]
	if !ok {
		return nil
	}
	if len(p) > 0 && p[0] == e.Map[u] {
		return p
	}
	// stored in the opposite orientation; reverse
	r := make(cube.Path, len(p))
	for i := range p {
		r[i] = p[len(p)-1-i]
	}
	return r
}

// SubMesh restricts an embedding to a smaller mesh contained in its guest
// (componentwise target ≤ guest, same arity after padding).  Edges of the
// submesh are edges of the mesh, so dilation and congestion cannot increase;
// the host cube is unchanged.
func SubMesh(e *embed.Embedding, target mesh.Shape) *embed.Embedding {
	if e.Family != guest.Mesh {
		panic("core: SubMesh requires a plain mesh embedding")
	}
	big := padShape(e.Guest, target.Dims())
	tgt := padShape(target, e.Guest.Dims())
	if !big.Contains(tgt) {
		panic(fmt.Sprintf("core: %v is not contained in %v", target, e.Guest))
	}
	out := embed.New(tgt, e.N)
	coord := make([]int, tgt.Dims())
	for i := range out.Map {
		tgt.CoordInto(i, coord)
		out.Map[i] = e.Map[big.Index(coord)]
	}
	if e.Paths != nil {
		out.Paths = make(map[embed.EdgeKey]cube.Path)
		coordV := make([]int, tgt.Dims())
		tgt.EachEdge(func(ed mesh.Edge) {
			tgt.CoordInto(ed.U, coord)
			tgt.CoordInto(ed.V, coordV)
			k := embed.Key(big.Index(coord), big.Index(coordV))
			if p, ok := e.Paths[k]; ok {
				out.Paths[embed.Key(ed.U, ed.V)] = p
			}
		})
	}
	return out
}
