package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// Theorem 3 in action: composing a dilation-2 direct embedding with a
// Gray code keeps dilation 2 while multiplying the mesh sizes.
func ExampleProduct() {
	inner := core.PlanShape(mesh.Shape{3, 5}, core.DefaultOptions).Build()
	outer := embed.Gray(mesh.Shape{4, 4})
	p := core.Product(inner, outer)
	fmt.Println(p.Guest, "dilation:", p.Dilation(), "minimal:", p.Minimal())
	// Output:
	// 12x20 dilation: 2 minimal: true
}

// The §5 planner chooses among the paper's methods and reports its tree.
func ExamplePlanShape() {
	p := core.PlanShape(mesh.Shape{21, 9, 5}, core.DefaultOptions)
	fmt.Println("method:", p.Method)
	fmt.Println("guaranteed dilation:", p.Dilation)
	// Output:
	// method: 4
	// guaranteed dilation: 2
}
