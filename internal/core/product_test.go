package core

import (
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/solver"
)

func TestProductOfGrays(t *testing.T) {
	// Gray(3x5) ⊗ Gray(4x4) embeds 12x20; dilation must stay 1.
	e1 := embed.Gray(mesh.Shape{3, 5})
	e2 := embed.Gray(mesh.Shape{4, 4})
	p := Product(e1, e2)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if !p.Guest.Equal(mesh.Shape{12, 20}) {
		t.Fatalf("guest = %v", p.Guest)
	}
	if p.N != e1.N+e2.N {
		t.Fatalf("cube dim = %d", p.N)
	}
	if d := p.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1", d)
	}
}

func TestProductDilationLaw(t *testing.T) {
	// Theorem 3: dil(φ1×φ2) ≤ max(dil φ1, dil φ2), on random small factors.
	r := rand.New(rand.NewSource(7))
	shapes := []mesh.Shape{{3}, {2, 2}, {3, 2}, {5}, {2, 3}}
	for trial := 0; trial < 40; trial++ {
		s1 := shapes[r.Intn(len(shapes))]
		s2 := shapes[r.Intn(len(shapes))]
		e1 := randomEmbedding(r, s1)
		e2 := randomEmbedding(r, s2)
		p := Product(e1, e2)
		if err := p.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d1, d2 := e1.Dilation(), e2.Dilation()
		max := d1
		if d2 > max {
			max = d2
		}
		if d := p.Dilation(); d > max {
			t.Errorf("trial %d: product dilation %d > max(%d,%d)", trial, d, d1, d2)
		}
	}
}

// randomEmbedding builds a random injective map of the shape into a cube
// with one extra dimension (so there is room for bad dilation).
func randomEmbedding(r *rand.Rand, s mesh.Shape) *embed.Embedding {
	n := s.MinCubeDim() + 1
	e := embed.New(s, n)
	perm := r.Perm(1 << uint(n))
	for i := range e.Map {
		e.Map[i] = cube.Node(perm[i])
	}
	return e
}

func TestProductExpansionMultiplies(t *testing.T) {
	e1 := embed.Gray(mesh.Shape{3}) // 3 -> 2-cube, exp 4/3
	e2 := embed.Gray(mesh.Shape{5}) // 5 -> 3-cube, exp 8/5
	p := Product(e1, e2)
	want := e1.Expansion() * e2.Expansion()
	if got := p.Expansion(); got != want {
		t.Errorf("expansion = %v, want %v", got, want)
	}
}

func TestProductReflectionSeam(t *testing.T) {
	// Embed 9 = 3·3 as path(3) ⊗ path(3): inner Gray on 3 (2 bits), outer
	// Gray on 3 (2 bits).  Without reflection the seam edges (z=2→3, z=5→6)
	// would pay inner distance; with φ̃ they cost exactly the outer step.
	e1 := embed.Gray(mesh.Shape{3})
	e2 := embed.Gray(mesh.Shape{3})
	p := Product(e1, e2)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := p.Dilation(); d != 1 {
		t.Errorf("9-node path via product has dilation %d, want 1", d)
	}
	// Explicit seam check: z=2 and z=3 must be cube neighbors.
	if cube.Dist(p.Map[2], p.Map[3]) != 1 {
		t.Errorf("seam 2-3 at distance %d", cube.Dist(p.Map[2], p.Map[3]))
	}
}

func TestProductCongestionWithPinnedPaths(t *testing.T) {
	// A dilation-2 factor with congestion-2 realization keeps congestion ≤ 2
	// in the product with a Gray factor (Theorem 3).
	f := solver.Find(mesh.Shape{3, 5}, solver.Options{MaxDilation: 2, Seed: 3})
	if f == nil {
		t.Skip("solver failed to find 3x5")
	}
	f.RealizeMinCongestion()
	cf := f.Congestion()
	g := embed.Gray(mesh.Shape{4, 4})
	p := Product(f, g)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.Dilation() > 2 {
		t.Errorf("dilation %d", p.Dilation())
	}
	want := cf
	if want < 1 {
		want = 1
	}
	if c := p.Congestion(); c > want {
		t.Errorf("product congestion %d > max factor congestion %d", c, want)
	}
}

func TestProductPathsStayInCopies(t *testing.T) {
	// With pinned factor paths, every product path must stay within one
	// copy: inner-edge paths keep the high bits constant, seam paths keep
	// the low bits constant.
	f := solver.Find(mesh.Shape{3, 5}, solver.Options{MaxDilation: 2, Seed: 3})
	if f == nil {
		t.Skip("solver failed")
	}
	f.RealizeMinCongestion()
	g := embed.Gray(mesh.Shape{2, 2})
	p := Product(f, g)
	if p.Paths == nil {
		t.Fatal("expected composed paths")
	}
	n1 := f.N
	for k, path := range p.Paths {
		loMask := uint64(1)<<uint(n1) - 1
		hiSame, loSame := true, true
		for _, node := range path {
			if uint64(node)>>uint(n1) != uint64(path[0])>>uint(n1) {
				hiSame = false
			}
			if uint64(node)&loMask != uint64(path[0])&loMask {
				loSame = false
			}
		}
		if !hiSame && !loSame {
			t.Fatalf("path for edge %v leaves its copy: %v", k, path)
		}
	}
}

func TestProductArityPadding(t *testing.T) {
	// 1D ⊗ 2D: shapes are aligned with trailing 1s.
	e1 := embed.Gray(mesh.Shape{3})
	e2 := embed.Gray(mesh.Shape{1, 5})
	p := Product(e1, e2)
	if !p.Guest.Equal(mesh.Shape{3, 5}) {
		t.Fatalf("guest = %v", p.Guest)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.Dilation() != 1 {
		t.Errorf("dilation = %d", p.Dilation())
	}
}

func TestSubMesh(t *testing.T) {
	// 3x25x3 is planned as (3x5x1) ⊗ (1x5x3) = 3x25x3; a 3x23x3 target is
	// a submesh of it.
	e1 := embed.Gray(mesh.Shape{3, 5, 1})
	e2 := embed.Gray(mesh.Shape{1, 5, 3})
	p := Product(e1, e2)
	sub := SubMesh(p, mesh.Shape{3, 23, 3})
	if err := sub.Verify(); err != nil {
		t.Fatal(err)
	}
	if sub.Dilation() > p.Dilation() {
		t.Errorf("submesh dilation %d > %d", sub.Dilation(), p.Dilation())
	}
	if sub.N != p.N {
		t.Errorf("cube dim changed")
	}
}

func TestSubMeshPanicsOnBadTarget(t *testing.T) {
	e := embed.Gray(mesh.Shape{3, 5})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SubMesh(e, mesh.Shape{4, 5})
}

func TestProductPanicsOnWrap(t *testing.T) {
	e1 := embed.Gray(mesh.Shape{4})
	e1.Family = guest.Torus
	e2 := embed.Gray(mesh.Shape{4})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Product(e1, e2)
}

func TestProductAvgDilationFormulaDirection(t *testing.T) {
	// Section 4.1: the average dilation of the product decreases as the
	// inner (dilation-one) factor's axes lengthen.
	d2 := solver.Find(mesh.Shape{3, 5}, solver.Options{MaxDilation: 2, Seed: 3})
	if d2 == nil {
		t.Skip("solver failed")
	}
	small := Product(embed.Gray(mesh.Shape{2, 2}), d2)
	big := Product(embed.Gray(mesh.Shape{8, 8}), d2)
	if !(big.AvgDilation() < small.AvgDilation()) {
		t.Errorf("avg dilation should shrink with inner axis length: small=%v big=%v",
			small.AvgDilation(), big.AvgDilation())
	}
}

func BenchmarkProduct(b *testing.B) {
	e1 := embed.Gray(mesh.Shape{3, 5})
	e2 := embed.Gray(mesh.Shape{16, 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Product(e1, e2)
	}
}
