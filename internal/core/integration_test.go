package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/stats"
)

func TestTwoDimCoverage64(t *testing.T) {
	// §3.3: "By using these three embeddings, graph decomposition technique
	// and Gray code embedding, all two-dimensional meshes with ≤ 64 nodes
	// can be embedded into a minimal cube with dilation two and congestion
	// two, with the exception of the embedding of the 3x21 mesh."
	//
	// Our constructive engine goes one better: the axis-folding plan maps
	// 3x21 onto the 3x3x7 direct table (21 = 3·7 makes 3x21 a subgraph of
	// the 3x3x7 mesh), so EVERY 2D shape with ≤ 64 nodes builds a
	// minimal-expansion dilation-≤2 embedding — the paper's single
	// exception included.
	var failures []string
	for a := 1; a <= 64; a++ {
		for b := a; a*b <= 64; b++ {
			s := mesh.Shape{a, b}
			p := PlanShape(s, DefaultOptions)
			if !p.Minimal() {
				t.Fatalf("%v: plan not minimal", s)
			}
			e := p.Build()
			if err := e.Verify(); err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			if e.Dilation() > 2 {
				failures = append(failures, s.String())
			}
		}
	}
	if len(failures) != 0 {
		t.Errorf("dilation > 2 for %v; folding should cover all ≤64-node 2D meshes", failures)
	}
}

func TestFoldResolves3x21(t *testing.T) {
	// The paper's §3.3 exception: 3x21 has no dilation-2 embedding from
	// {direct 2D tables, decomposition, Gray}.  Folding 21 = 3·7 exhibits
	// 3x21 as a subgraph of the 3x3x7 mesh, whose direct table gives
	// dilation two — improving on the paper.
	s := mesh.Shape{3, 21}
	p := PlanShape(s, DefaultOptions)
	if p.Kind != KindFold {
		t.Fatalf("expected fold plan for 3x21, got %s", p)
	}
	e := p.Build()
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("3x21: %s (plan %s)", e.Measure(), p)
	}
}

func TestTwoDimCongestionTwo(t *testing.T) {
	// The congestion-two part of §3.3, for the shapes built from the
	// congestion-two direct tables and Gray codes.
	for _, s := range []mesh.Shape{{12, 20}, {6, 5}, {3, 10}, {9, 7}, {5, 12}, {24, 20}} {
		p := PlanShape(s, DefaultOptions)
		e := p.Build()
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if d := e.Dilation(); d > 2 {
			t.Errorf("%v: dilation %d (plan %s)", s, d, p)
		}
		if c := e.Congestion(); c > 2 {
			t.Errorf("%v: congestion %d, want ≤ 2 (plan %s)", s, c, p)
		}
	}
}

func TestPlannerAgreesWithCountingPredicates(t *testing.T) {
	// Whenever the paper's counting predicates promise a dilation-two
	// minimal-expansion embedding via methods 1-2, the constructive
	// planner must deliver a minimal plan (its measured dilation may rely
	// on the 2D engine, so only the expansion is asserted in general;
	// method 1 also pins dilation one).
	for a := 1; a <= 14; a++ {
		for b := a; b <= 14; b++ {
			for c := b; c <= 14; c++ {
				s := mesh.Shape{a, b, c}
				p := PlanShape(s, Options{})
				if !p.Minimal() {
					t.Fatalf("%v: planner produced non-minimal plan %s", s, p)
				}
				if stats.Method1(a, b, c) {
					if p.Dilation != 1 {
						t.Errorf("%v: Gray-minimal but plan dilation %d (%s)", s, p.Dilation, p)
					}
				}
			}
		}
	}
}

func TestPlannerDilationTwoWhereMethodsApply(t *testing.T) {
	// For small 3D shapes covered by the counting predicates, the
	// constructive planner should reach measured dilation ≤ 2 in the
	// overwhelming majority of cases (the 2D engine stands in for Chan's
	// algorithm; see DESIGN.md substitution 1b).  Track the exceptions.
	covered, achieved := 0, 0
	var missed []string
	for a := 1; a <= 9; a++ {
		for b := a; b <= 9; b++ {
			for c := b; c <= 9; c++ {
				if stats.BestMethod(a, b, c) == 0 {
					continue
				}
				covered++
				s := mesh.Shape{a, b, c}
				e := PlanShape(s, DefaultOptions).Build()
				if err := e.Verify(); err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if e.Dilation() <= 2 {
					achieved++
				} else {
					missed = append(missed, s.String())
				}
			}
		}
	}
	t.Logf("constructive dilation ≤ 2 on %d/%d oracle-covered shapes (missed: %v)",
		achieved, covered, missed)
	if float64(achieved) < 0.85*float64(covered) {
		t.Errorf("constructive engine too weak: %d/%d", achieved, covered)
	}
}

func TestHighDimPlannerMatchesGroupingPredicate(t *testing.T) {
	// Wherever the §8 grouping predicate (stats.CoveredK) promises
	// dilation ≤ 2 at minimal expansion, the constructive planner should
	// deliver it on small 4-D domains.
	covered, achieved := 0, 0
	var missed []string
	for a := 2; a <= 6; a++ {
		for b := a; b <= 6; b++ {
			for c := b; c <= 6; c++ {
				for d := c; d <= 6; d++ {
					if !stats.CoveredK([]int{a, b, c, d}) {
						continue
					}
					covered++
					s := mesh.Shape{a, b, c, d}
					e := PlanShape(s, DefaultOptions).Build()
					if err := e.Verify(); err != nil {
						t.Fatalf("%v: %v", s, err)
					}
					if !e.Minimal() {
						t.Fatalf("%v: not minimal", s)
					}
					if e.Dilation() <= 2 {
						achieved++
					} else {
						missed = append(missed, s.String())
					}
				}
			}
		}
	}
	t.Logf("4-D constructive dilation ≤ 2 on %d/%d predicate-covered shapes (missed: %v)",
		achieved, covered, missed)
	if achieved < covered*9/10 {
		t.Errorf("4-D constructive engine too weak: %d/%d", achieved, covered)
	}
}

func TestDilationAgreesWithGraphBFS(t *testing.T) {
	// Cross-check the Hamming-distance dilation against an independent
	// BFS on the explicit hypercube graph.
	for _, s := range []mesh.Shape{{3, 5}, {5, 6}, {3, 3, 3}} {
		e := PlanShape(s, DefaultOptions).Build()
		h := graph.Hypercube(e.N)
		worst := 0
		s.EachEdge(func(ed mesh.Edge) {
			d := h.BFS(int(e.Map[ed.U]))[e.Map[ed.V]]
			if d > worst {
				worst = d
			}
		})
		if worst != e.Dilation() {
			t.Errorf("%v: BFS dilation %d != Hamming dilation %d", s, worst, e.Dilation())
		}
	}
}
