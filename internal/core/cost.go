package core

import "strings"

// CostModel ranks competing candidate plans for the same shape.  Models must
// be safe for concurrent use; a Planner shares one model across goroutines.
type CostModel interface {
	// Name identifies the model; it participates in the plan-cache key so
	// plans chosen under different models never mix.
	Name() string
	// Compare returns a negative value when a is preferred over b, a
	// positive value when b is preferred, and zero on a tie.  Both
	// arguments are non-nil plans for the same shape.
	Compare(a, b *Plan) int
}

// CostKey names one component of a lexicographic cost model.
type CostKey int

const (
	// CostExpansion is the host cube dimension (minimal expansion first).
	CostExpansion CostKey = iota
	// CostDilation is the construction-guaranteed dilation bound.
	CostDilation
	// CostFactors is the number of product factors (flatter products and
	// direct/submesh wrappers first).
	CostFactors
	// CostCongestion is the construction-guaranteed congestion bound.
	CostCongestion
	// CostDepth is the height of the plan tree.
	CostDepth
)

func (k CostKey) String() string {
	switch k {
	case CostExpansion:
		return "expansion"
	case CostDilation:
		return "dilation"
	case CostFactors:
		return "factors"
	case CostCongestion:
		return "congestion"
	case CostDepth:
		return "depth"
	}
	return "unknown"
}

func costValue(p *Plan, k CostKey) int {
	switch k {
	case CostExpansion:
		return p.CubeDim
	case CostDilation:
		return p.Dilation
	case CostFactors:
		return len(p.Factors)
	case CostCongestion:
		return p.CongestionBound()
	case CostDepth:
		return p.Depth()
	}
	return 0
}

// LexCost compares plans lexicographically over a sequence of cost keys,
// smaller values preferred.
type LexCost struct {
	keys []CostKey
	name string
}

// NewLexCost builds a lexicographic cost model over the given keys in order.
func NewLexCost(keys ...CostKey) *LexCost {
	names := make([]string, len(keys))
	for i, k := range keys {
		names[i] = k.String()
	}
	return &LexCost{keys: append([]CostKey(nil), keys...),
		name: "lex(" + strings.Join(names, ",") + ")"}
}

func (m *LexCost) Name() string { return m.name }

func (m *LexCost) Compare(a, b *Plan) int {
	for _, k := range m.keys {
		if d := costValue(a, k) - costValue(b, k); d != 0 {
			return d
		}
	}
	return 0
}

// DefaultCostModel reproduces the planner's historical preference order —
// minimal expansion, then lowest dilation bound, then fewest product factors
// — refined with congestion bound and plan depth as further tie-breakers.
var DefaultCostModel CostModel = NewLexCost(
	CostExpansion, CostDilation, CostFactors, CostCongestion, CostDepth)

// better picks the preferred of two candidate plans under the context's cost
// model.  Either argument may be nil.  Ties are broken by plan kind and then
// by the rendered plan string, making the preference a strict total order on
// distinct plans: selection never depends on strategy evaluation order.
func (pc *planContext) better(a, b *Plan) *Plan {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if d := pc.cost.Compare(a, b); d != 0 {
		if d < 0 {
			return a
		}
		return b
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return a
		}
		return b
	}
	if b.String() < a.String() {
		return b
	}
	return a
}
