package core

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/mesh"
)

// TestGuestPlanCylinderPermutedHit: cylinders canonicalize by sorting the
// path prefix while the wrapped last axis stays distinguished, so permuting
// the prefix must hit the same cache entry and return the axis-mapped tree
// with identical construction guarantees.
func TestGuestPlanCylinderPermutedHit(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	base := pl.PlanGuest(guest.Cylinder, mesh.Shape{3, 4, 6})
	before := pl.CacheStats()
	perm := pl.PlanGuest(guest.Cylinder, mesh.Shape{4, 3, 6})
	after := pl.CacheStats()
	if after.Hits <= before.Hits {
		t.Errorf("prefix-permuted cylinder missed the cache: %+v -> %+v", before, after)
	}
	if perm.Dilation != base.Dilation || perm.CubeDim != base.CubeDim ||
		perm.Kind != base.Kind || perm.Method != base.Method {
		t.Errorf("permuted cylinder plan diverged: %s (dil %d) vs %s (dil %d)",
			perm, perm.Dilation, base, base.Dilation)
	}
	if perm.Shape.String() != "4x3x6" {
		t.Errorf("permuted plan not mapped back to caller order: %s", perm.Shape)
	}
	e := perm.Build()
	if err := e.Verify(); err != nil {
		t.Fatalf("permuted cylinder embedding invalid: %v", err)
	}
	bm, pm := base.Build().Measure(), e.Measure()
	if pm.CubeDim != bm.CubeDim || pm.Minimal != bm.Minimal || pm.Dilation != bm.Dilation {
		t.Errorf("permuted cylinder metrics diverged: %+v vs %+v", pm, bm)
	}
}

// TestGuestPlanCylinderLastAxisDistinct: a cylinder is NOT invariant under
// moving the wrapped axis — 6x4x3 (wrap 3) is a different guest than 3x4x6
// (wrap 6) — so the planner must not serve one from the other's cache
// entry even though both are permutations of the same multiset.
func TestGuestPlanCylinderLastAxisDistinct(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	a := pl.PlanGuest(guest.Cylinder, mesh.Shape{3, 4, 6})
	before := pl.CacheStats()
	b := pl.PlanGuest(guest.Cylinder, mesh.Shape{6, 4, 3})
	after := pl.CacheStats()
	if after.Misses <= before.Misses {
		t.Errorf("cylinder with a different wrapped axis hit the cache: %+v -> %+v", before, after)
	}
	if err := a.Build().Verify(); err != nil {
		t.Fatal(err)
	}
	if err := b.Build().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestGuestPlanTorusFamilyKeyedSeparately: the same shape planned as a
// torus and as a mesh must occupy distinct cache entries — the family is
// part of the key (the regression behind the /v1 cache fix).
func TestGuestPlanTorusFamilyKeyedSeparately(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	mp := pl.PlanGuest(guest.Mesh, mesh.Shape{4, 4, 4})
	tp := pl.PlanGuest(guest.Torus, mesh.Shape{4, 4, 4})
	// 4x4x4 is all powers of two: the mesh plan is the reflected Gray code
	// (KindGray via strategy pipeline), the torus plan the cyclic Gray code
	// stamped with the torus family.  Both are dilation 1 but the built
	// embeddings differ on wrap edges, so families must not share entries.
	if tp.Family != guest.Torus || mp.Family != guest.Mesh {
		t.Fatalf("family stamps wrong: mesh %v torus %v", mp.Family, tp.Family)
	}
	me, te := mp.Build(), tp.Build()
	if me.Family == te.Family {
		t.Errorf("mesh and torus plans built embeddings of the same family %v", me.Family)
	}
	mm, tm := me.Measure(), te.Measure()
	if mm.Wrap || !tm.Wrap {
		t.Errorf("wrap flags wrong: mesh %+v torus %+v", mm, tm)
	}
}

// TestGuestPlanTreeCached: trees have an identity canonical form; repeated
// planning must hit the cache and the plan must keep the tree guarantees
// (dilation 2, minimal cube).
func TestGuestPlanTreeCached(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	first := pl.PlanGuest(guest.Tree, mesh.Shape{31})
	before := pl.CacheStats()
	again := pl.PlanGuest(guest.Tree, mesh.Shape{31})
	after := pl.CacheStats()
	if after.Hits <= before.Hits {
		t.Errorf("replanning the tree missed the cache: %+v -> %+v", before, after)
	}
	if first.String() != again.String() || first.Dilation != 2 || first.CubeDim != 5 {
		t.Errorf("tree plan drifted: %s dil %d cube %d", first, first.Dilation, first.CubeDim)
	}
	m := first.Build().Measure()
	if m.Dilation != 2 || !m.Minimal {
		t.Errorf("tree embedding metrics: %+v", m)
	}
}
