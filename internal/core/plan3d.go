package core

import (
	"repro/internal/bits"
	"repro/internal/mesh"
)

// plan3D plans a shape with exactly three axes of length > 1 into its
// minimal cube using the methods of Section 5 (Gray is method 1, handled by
// the caller):
//
//  2. a two-dimensional embedding of one axis pair combined with a Gray
//     code on the third axis,
//  3. a direct 3x3x3 or 3x3x7 block combined with Gray codes (via the
//     general factoring search, which also finds richer decompositions),
//  4. axis extension: split one axis as ℓ'·ℓ” ≥ ℓ and embed the product
//     of two two-dimensional meshes (Corollary 2), restricting at the end.
//
// Returns nil when no structured construction reaches the minimal cube.
func plan3D(s mesh.Shape, opts Options, foldDepth int) *Plan {
	var best *Plan
	if p := planPairPlusGray(s, opts, foldDepth); p != nil {
		best = better(best, p)
	}
	if p := planByFactoring(s, opts, 0); p != nil {
		best = better(best, p) // paper method index assigned by classifyMethod
	}
	if best != nil && best.Dilation <= 2 {
		return best // methods 2/3 already optimal; method 4 cannot beat 2
	}
	if p := planBySplit(s, opts, foldDepth); p != nil {
		best = better(best, p)
	}
	if p := planByExtension(s, opts); p != nil {
		best = better(best, p)
	}
	if best == nil || best.Dilation > 2 {
		if p := planByFolding(s, opts, foldDepth); p != nil {
			best = better(best, p)
		}
	}
	if best != nil {
		return best
	}
	if p := planBySolver(s, opts); p != nil {
		return p
	}
	return nil
}

// activeAxes returns the indices of axes with length > 1.
func activeAxes(s mesh.Shape) []int {
	var out []int
	for i, l := range s {
		if l > 1 {
			out = append(out, i)
		}
	}
	return out
}

// planPairPlusGray implements method 2: find an axis pair (i, j) with
// ⌈ℓiℓj⌉₂ · ⌈ℓk⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂, embed the ℓi×ℓj mesh two-dimensionally and
// the remaining axis by a Gray code.  Among valid pairs the one whose 2D
// plan has the lowest guaranteed dilation wins, matching the paper's advice
// to pick the two axes with the smallest ℓ/⌈ℓ⌉₂.
func planPairPlusGray(s mesh.Shape, opts Options, foldDepth int) *Plan {
	axes := activeAxes(s)
	if len(axes) != 3 {
		return nil
	}
	target := s.MinCubeDim()
	k := s.Dims()
	var best *Plan
	for t := 0; t < 3; t++ {
		i, j, rest := axes[t], axes[(t+1)%3], axes[(t+2)%3]
		pairDim := bits.CeilLog2(uint64(s[i] * s[j]))
		grayDim := bits.CeilLog2(uint64(s[rest]))
		if pairDim+grayDim != target {
			continue
		}
		pairShape := shapeWithAxes(k, []int{i, j}, []int{s[i], s[j]})
		pairPlan := planMinimalDepth(pairShape, opts, foldDepth)
		if pairPlan == nil {
			// Chan [4] guarantees a dilation-2 embedding exists; our
			// constructive stand-in is the snake fallback with measured
			// dilation (see DESIGN.md, substitution 1b).
			pairPlan = &Plan{Kind: KindSnake, Shape: pairShape, CubeDim: pairDim,
				Dilation: DilationUnknown}
		}
		grayShape := shapeWithAxes(k, []int{rest}, []int{s[rest]})
		grayPlan := &Plan{Kind: KindGray, Shape: grayShape, CubeDim: grayDim, Dilation: 1}
		prod := &Plan{
			Kind: KindProduct, Shape: s.Clone(), CubeDim: target,
			Dilation: maxInt(pairPlan.Dilation, 1),
			Factors:  []*Plan{pairPlan, grayPlan},
			Method:   2,
		}
		best = better(best, prod)
	}
	return best
}

// planBySplit implements method 4: choose a split axis m and the remaining
// axes a, b; find ℓ'·ℓ” ≥ ℓm with ⌈ℓa·ℓ'⌉₂ · ⌈ℓ”·ℓb⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂; embed
// the product (ℓa × ℓ') ⊗ (ℓ” × ℓb) by Corollary 2 and restrict to the
// guest.  Both factors are two-dimensional meshes.
func planBySplit(s mesh.Shape, opts Options, foldDepth int) *Plan {
	axes := activeAxes(s)
	if len(axes) != 3 {
		return nil
	}
	target := s.MinCubeDim()
	k := s.Dims()
	total := uint64(1) << uint(target)
	var best *Plan
	for t := 0; t < 3; t++ {
		m, a, b := axes[t], axes[(t+1)%3], axes[(t+2)%3]
		lm, la, lb := s[m], s[a], s[b]
		for p := 0; p <= target; p++ {
			P := uint64(1) << uint(p)
			Q := total / P
			lp, lpp, ok := splitFactors(lm, la, lb, P, Q)
			if !ok {
				continue
			}
			f1Shape := shapeWithAxes(k, []int{a, m}, []int{la, lp})
			f2Shape := shapeWithAxes(k, []int{m, b}, []int{lpp, lb})
			f1 := planMinimalOrSnake(f1Shape, opts, foldDepth)
			f2 := planMinimalOrSnake(f2Shape, opts, foldDepth)
			if f1.CubeDim+f2.CubeDim != target {
				continue
			}
			super := f1Shape.Product(f2Shape)
			prod := &Plan{
				Kind: KindProduct, Shape: super, CubeDim: target,
				Dilation: maxInt(f1.Dilation, f2.Dilation),
				Factors:  []*Plan{f1, f2},
			}
			var cand *Plan
			if super.Equal(s) {
				prod.Method = 4
				cand = prod
			} else {
				cand = &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: prod.Dilation, Super: super, Child: prod, Method: 4}
			}
			best = better(best, cand)
			if best.Dilation <= 2 {
				return best
			}
		}
	}
	return best
}

// splitFactors solves method 4's arithmetic for one (P, Q) factorization of
// the minimal cube: find ℓ', ℓ” with ℓ'·ℓ” ≥ ℓm, ⌈ℓa·ℓ'⌉₂ == P and
// ⌈ℓ”·ℓb⌉₂ == Q, keeping the extension waste ℓ'ℓ” − ℓm small.
// A feasible pair exists iff ⌊P/ℓa⌋·⌊Q/ℓb⌋ ≥ ℓm (with both ≥ 1).
func splitFactors(lm, la, lb int, P, Q uint64) (lp, lpp int, ok bool) {
	lpMax := int(P) / la
	lppMax := int(Q) / lb
	if lpMax < 1 || lppMax < 1 || lpMax*lppMax < lm {
		return 0, 0, false
	}
	// With lp = lpMax, ⌈la·lp⌉₂ == P automatically (la·lpMax > P−la ≥ P/2
	// unless lpMax == 1, where la ∈ (P/2, P]).  Pick the smallest ℓ''
	// that still satisfies ⌈ℓ''·ℓb⌉₂ == Q, i.e. ℓ''·ℓb > Q/2.
	lppLo := int(Q/2)/lb + 1
	lpp = (lm + lpMax - 1) / lpMax // ⌈ℓm/ℓ'⌉, the least cover
	if lpp < lppLo {
		lpp = lppLo
	}
	if lpp > lppMax {
		return 0, 0, false
	}
	// Shrink ℓ' back as far as the cover and ⌈ℓa·ℓ'⌉₂ == P allow, to
	// minimize the SubMesh waste.
	lp = (lm + lpp - 1) / lpp
	if lo1 := int(P/2)/la + 1; lp < lo1 {
		lp = lo1
	}
	if lp > lpMax || lp*lpp < lm {
		lp = lpMax
	}
	return lp, lpp, true
}

// planMinimalOrSnake plans the shape into its minimal cube, falling back to
// the snake embedding so a plan always exists.
func planMinimalOrSnake(s mesh.Shape, opts Options, foldDepth int) *Plan {
	if p := planMinimalDepth(s, opts, foldDepth); p != nil {
		return p
	}
	return &Plan{Kind: KindSnake, Shape: s.Clone(), CubeDim: s.MinCubeDim(),
		Dilation: DilationUnknown}
}

// planHighDim plans shapes with four or more axes of length > 1 (the
// strategy of Section 4.2): power-of-two axes are pulled into one Gray
// factor — always free, since ⌈a·2^c⌉₂ = 2^c·⌈a⌉₂ — and the remaining axes
// are planned recursively when three or fewer remain, or paired up
// two-dimensionally otherwise.
func planHighDim(s mesh.Shape, opts Options) *Plan {
	k := s.Dims()
	var pow2Axes, oddAxes []int
	for i, l := range s {
		if l == 1 {
			continue
		}
		if bits.IsPow2(uint64(l)) {
			pow2Axes = append(pow2Axes, i)
		} else {
			oddAxes = append(oddAxes, i)
		}
	}
	target := s.MinCubeDim()

	if len(pow2Axes) > 0 && len(oddAxes) > 0 {
		lengths := make([]int, len(pow2Axes))
		grayDim := 0
		for i, a := range pow2Axes {
			lengths[i] = s[a]
			grayDim += bits.CeilLog2(uint64(s[a]))
		}
		grayShape := shapeWithAxes(k, pow2Axes, lengths)
		grayPlan := &Plan{Kind: KindGray, Shape: grayShape, CubeDim: grayDim, Dilation: 1}
		restLengths := make([]int, len(oddAxes))
		for i, a := range oddAxes {
			restLengths[i] = s[a]
		}
		restShape := shapeWithAxes(k, oddAxes, restLengths)
		restPlan := planMinimalOrSnake(restShape, opts, 1)
		if grayDim+restPlan.CubeDim == target {
			return &Plan{
				Kind: KindProduct, Shape: s.Clone(), CubeDim: target,
				Dilation: maxInt(1, restPlan.Dilation),
				Factors:  []*Plan{grayPlan, restPlan},
				Method:   2,
			}
		}
	}

	// All-odd high-dimensional shapes: pair axes two-dimensionally and
	// check the pairing reaches the minimal cube.
	if len(oddAxes) >= 4 {
		if p := planByPairing(s, oddAxes, opts); p != nil {
			return p
		}
	}
	return nil
}

// planByPairing partitions the given axes into pairs (one axis may remain
// single) and embeds each pair two-dimensionally; valid when the pairwise
// ⌈·⌉₂ products multiply to the minimal cube.
func planByPairing(s mesh.Shape, axes []int, opts Options) *Plan {
	k := s.Dims()
	target := s.MinCubeDim()
	var best *Plan
	var rec func(remaining []int, factors []*Plan, dims int)
	rec = func(remaining []int, factors []*Plan, dims int) {
		if best != nil && best.Dilation <= 2 {
			return
		}
		if len(remaining) == 0 {
			if dims != target {
				return
			}
			fs := make([]*Plan, len(factors))
			copy(fs, factors)
			d := 0
			for _, f := range fs {
				d = maxInt(d, f.Dilation)
			}
			best = better(best, &Plan{Kind: KindProduct, Shape: s.Clone(),
				CubeDim: target, Dilation: d, Factors: fs, Method: 2})
			return
		}
		a := remaining[0]
		// Pair a with each later axis.
		for i := 1; i < len(remaining); i++ {
			b := remaining[i]
			pairShape := shapeWithAxes(k, []int{a, b}, []int{s[a], s[b]})
			pd := pairShape.MinCubeDim()
			if dims+pd > target {
				continue
			}
			rest := append(append([]int{}, remaining[1:i]...), remaining[i+1:]...)
			fp := planMinimalOrSnake(pairShape, opts, 1)
			rec(rest, append(factors, fp), dims+pd)
		}
		// Triple a with two later axes (the §5 three-dimensional methods,
		// e.g. the 3x3x3 block inside 6x6x6x6).
		for i := 1; i < len(remaining); i++ {
			for j := i + 1; j < len(remaining); j++ {
				b, c := remaining[i], remaining[j]
				tripleShape := shapeWithAxes(k, []int{a, b, c}, []int{s[a], s[b], s[c]})
				td := tripleShape.MinCubeDim()
				if dims+td > target {
					continue
				}
				rest := append(append([]int{}, remaining[1:i]...), remaining[i+1:j]...)
				rest = append(rest, remaining[j+1:]...)
				fp := planMinimalOrSnake(tripleShape, opts, 1)
				rec(rest, append(factors, fp), dims+td)
			}
		}
		// Or leave a single (Gray).
		singleShape := shapeWithAxes(k, []int{a}, []int{s[a]})
		gd := bits.CeilLog2(uint64(s[a]))
		if dims+gd <= target {
			gp := &Plan{Kind: KindGray, Shape: singleShape, CubeDim: gd, Dilation: 1}
			rec(remaining[1:], append(factors, gp), dims+gd)
		}
	}
	rec(axes, nil, 0)
	return best
}
