package core

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/mesh"
)

// plansAgree compares the fields /v1/plan and the artifact serve from a
// plan: the rendered tree, kind, family, cube dimension, dilation bound and
// method.  Claimed plans are leaves, so this is full structural equality.
func plansAgree(p, q *Plan) bool {
	return p.Kind == q.Kind && p.Family == q.Family && p.CubeDim == q.CubeDim &&
		p.Dilation == q.Dilation && p.Method == q.Method &&
		p.Shape.Equal(q.Shape) && p.String() == q.String()
}

// classifyBound is the exhaustive-parity bound per axis: the full ≤ 2⁹
// domain of the acceptance criterion, trimmed under -short.
func classifyBound(t *testing.T) int {
	if testing.Short() {
		return 64
	}
	return 512
}

// TestClassifyParityMesh checks the claim contract exhaustively on meshes:
// every sorted 3-D shape with axes ≤ 2⁹ (the full plan-census domain), plus
// 1-D/2-D ranges.  Claimed shapes must reproduce the planner's plan
// exactly; parity on unsorted axis orders is covered separately.
func TestClassifyParityMesh(t *testing.T) {
	bound := classifyBound(t)
	pc := newPlanContext(DefaultOptions, nil, false)
	claimed, checked := 0, 0
	check := func(s mesh.Shape) {
		checked++
		p, ok := ClassifyShape(s)
		if !ok {
			return
		}
		claimed++
		if got := pc.planTop(s); !plansAgree(p, got) {
			t.Fatalf("ClassifyShape(%v) = %v (dil %d method %d cube %d), planner says %v (dil %d method %d cube %d)",
				s, p, p.Dilation, p.Method, p.CubeDim, got, got.Dilation, got.Method, got.CubeDim)
		}
	}
	for a := 1; a <= bound; a++ {
		check(mesh.Shape{a})
		for b := a; b <= bound; b++ {
			check(mesh.Shape{a, b})
			for c := b; c <= bound; c++ {
				check(mesh.Shape{a, b, c})
			}
		}
	}
	if claimed == 0 || claimed == checked {
		t.Fatalf("degenerate parity run: %d of %d shapes claimed", claimed, checked)
	}
	t.Logf("mesh parity: %d of %d shapes claimed and verified", claimed, checked)
}

// TestClassifyParityGuests checks the guest families against the uncached
// family planner: every canonical torus/cylinder up to a 3-D bound and
// every tree up to 2²⁰−1 nodes.
func TestClassifyParityGuests(t *testing.T) {
	bound := 64
	if testing.Short() {
		bound = 24
	}
	for _, fam := range []guest.Family{guest.Torus, guest.Cylinder} {
		claimed, checked := 0, 0
		for _, dims := range []int{1, 2, 3} {
			for _, s := range FamilyShapes(fam, dims, bound, 1<<30) {
				checked++
				p, ok := ClassifyGuest(fam, s)
				if !ok {
					continue
				}
				claimed++
				got, err := PlanGuest(fam, s, DefaultOptions)
				if err != nil {
					t.Fatalf("PlanGuest(%v, %v): %v", fam, s, err)
				}
				if !plansAgree(p, got) {
					t.Fatalf("ClassifyGuest(%v, %v) = %v, planner says %v", fam, s, p, got)
				}
			}
		}
		if claimed == 0 {
			t.Fatalf("family %v: nothing claimed of %d shapes", fam, checked)
		}
		t.Logf("%v parity: %d of %d claimed and verified", fam, claimed, checked)
	}
	for h := 0; h <= 20; h++ {
		s := mesh.Shape{1<<uint(h+1) - 1}
		p, ok := ClassifyGuest(guest.Tree, s)
		if !ok {
			t.Fatalf("tree %v not claimed", s)
		}
		got, err := PlanGuest(guest.Tree, s, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if !plansAgree(p, got) {
			t.Fatalf("ClassifyGuest(tree, %v) = %v, planner says %v", s, p, got)
		}
	}
}

// TestClassifyParityPermuted checks caller-axis-order parity through the
// caching Planner (the exact objects the server substitutes for each
// other): all permutations of a sampled shape set.
func TestClassifyParityPermuted(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	shapes := []mesh.Shape{
		{4, 2, 8}, {8, 2, 4}, {16, 3, 4}, {5, 2, 2}, {2, 5, 2},
		{64, 2, 1}, {1, 32, 2}, {128, 4, 2}, {3, 4, 16}, {7, 2, 32},
	}
	for _, fam := range []guest.Family{guest.Mesh, guest.Torus, guest.Cylinder} {
		for _, s := range shapes {
			if guest.Validate(fam, s) != nil {
				continue
			}
			p, ok := ClassifyGuest(fam, s)
			if !ok {
				continue
			}
			got, err := pl.TryPlanGuest(fam, s)
			if err != nil {
				t.Fatalf("TryPlanGuest(%v, %v): %v", fam, s, err)
			}
			if !plansAgree(p, got) {
				t.Fatalf("ClassifyGuest(%v, %v) = %v, Planner says %v", fam, s, p, got)
			}
		}
	}
}

// TestGrayMinimalCount checks the block-arithmetic census kernel against a
// literal enumeration of the ordered-triple domain.
func TestGrayMinimalCount(t *testing.T) {
	maxN := 6
	if testing.Short() {
		maxN = 5
	}
	for n := 1; n <= maxN; n++ {
		var naive uint64
		bound := 1 << uint(n)
		for a := 1; a <= bound; a++ {
			for b := 1; b <= bound; b++ {
				for c := 1; c <= bound; c++ {
					if (mesh.Shape{a, b, c}).GrayMinimal() {
						naive++
					}
				}
			}
		}
		if got := GrayMinimalCount(n); got != naive {
			t.Fatalf("GrayMinimalCount(%d) = %d, naive count = %d", n, got, naive)
		}
	}
}

// BenchmarkClassifyShape measures the per-shape closed-form classifier on
// the sorted 3-D shapes with axes ≤ 64 (claimed and unclaimed mixed) —
// one op is one shape.
func BenchmarkClassifyShape(b *testing.B) {
	var shapes []mesh.Shape
	for a := 1; a <= 64; a++ {
		shapes = append(shapes, SortedShapesFrom(a, 3, 64, 1<<30)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClassifyShape(shapes[i%len(shapes)])
	}
}

// BenchmarkClassifyCensus measures census mode: one op classifies the full
// ≤ 2⁹-per-axis ordered-triple domain (134M shapes) via the block kernel.
// Compare the derived Mshapes/s against the PR 5 census-job baseline.
func BenchmarkClassifyCensus(b *testing.B) {
	const domain = float64(1 << 27) // 8⁹ ordered triples
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += GrayMinimalCount(9)
	}
	if sink == 0 {
		b.Fatal("empty census")
	}
	b.ReportMetric(domain*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mshapes/s")
}
