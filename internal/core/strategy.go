package core

import (
	"fmt"

	"repro/internal/mesh"
)

// Strategy is one named plan construction.  A strategy inspects a shape and
// either returns a candidate minimal-expansion plan or nil; the pipeline
// runner merges candidates under the context's cost model.  Strategies are
// stateless — all tuning travels in the planContext.
type Strategy interface {
	// Name identifies the strategy in registries and diagnostics.
	Name() string
	// Search returns a candidate plan for the shape or nil.  foldDepth
	// counts fold nodes already above this subtree (at most one fold per
	// plan tree keeps the reflection argument of §3.3 valid).
	Search(pc *planContext, s mesh.Shape, foldDepth int) *Plan
}

// stage wires a Strategy into a pipeline with optional gates replicating
// the planner's historical short-circuits:
//
//   - skip: don't run this strategy given the current best (e.g. the split
//     and fold searches only run while no dilation-2 plan is in hand);
//   - stop: stop the whole pipeline after this strategy (e.g. a direct
//     table hit is final).
//
// The gate reasons are surfaced verbatim in PlanTrace provenance, so they
// are written for the operator reading `embedctl explain`.
type stage struct {
	strat      Strategy
	skip       func(best *Plan) bool
	skipReason string
	stop       func(best *Plan) bool
	stopReason string
}

func whenFound(best *Plan) bool   { return best != nil }
func whenSettled(best *Plan) bool { return best != nil && best.Dilation <= 2 }

const (
	reasonFound   = "a plan is already in hand"
	reasonSettled = "a dilation-2 plan is already in hand"
)

// Registry holds the ordered strategy pipelines, one per active-axis class.
// The default registry encodes the paper's method preferences; tests build
// variants to ablate individual strategies.
type Registry struct {
	twoD   []stage // exactly two axes of length > 1
	threeD []stage // exactly three axes of length > 1
	highD  []stage // four or more axes of length > 1
}

// NewDefaultRegistry returns the standard strategy pipelines.
func NewDefaultRegistry() *Registry {
	return &Registry{
		twoD: []stage{
			{strat: DirectStrategy{}, stop: whenFound, stopReason: "a direct table hit is final"},
			{strat: FactorStrategy{}},
			{strat: ExtendStrategy{}},
			{strat: Split2DStrategy{}, skip: whenSettled, skipReason: reasonSettled},
			{strat: FoldStrategy{}, skip: whenSettled, skipReason: reasonSettled},
			{strat: SolverStrategy{}, skip: whenFound, skipReason: reasonFound},
		},
		threeD: []stage{
			{strat: PairGrayStrategy{}},
			{strat: FactorStrategy{}, stop: whenSettled, stopReason: "dilation-2 factoring settles the pipeline"},
			{strat: Split3DStrategy{}},
			{strat: ExtendStrategy{}},
			{strat: FoldStrategy{}, skip: whenSettled, skipReason: reasonSettled},
			{strat: SolverStrategy{}, skip: whenFound, skipReason: reasonFound},
		},
		highD: []stage{
			{strat: HighDimStrategy{}},
		},
	}
}

// StrategyNames lists the distinct strategies across all pipelines in
// pipeline order (twoD, threeD, highD), without duplicates.
func (r *Registry) StrategyNames() []string {
	var out []string
	seen := make(map[string]bool)
	for _, pipe := range [][]stage{r.twoD, r.threeD, r.highD} {
		for _, st := range pipe {
			if n := st.strat.Name(); !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

var defaultRegistry = NewDefaultRegistry()

// planContext carries one planning run's configuration: options, resolved
// cost model, strategy registry, and (for Planner) the shared plan cache.
// A context is immutable after construction and safe for concurrent use —
// except for tr, which is only ever set on the private per-call copy a
// PlanTraced run makes (see trace.go) and is nil on every shared context.
type planContext struct {
	opts  Options
	cost  CostModel
	reg   *Registry
	cache *planCache  // nil: no memoization
	canon bool        // canonicalize axis order before searching
	fp    string      // options fingerprint, part of every cache key
	tr    *planTracer // nil: provenance recording off (the hot path)
}

func newPlanContext(opts Options, cache *planCache, canon bool) *planContext {
	cost := opts.Cost
	if cost == nil {
		cost = DefaultCostModel
	}
	return &planContext{
		opts:  opts,
		cost:  cost,
		reg:   defaultRegistry,
		cache: cache,
		canon: canon,
		fp:    fmt.Sprintf("b%d.s%d.%s", opts.SolverBudget, opts.SolverSeed, cost.Name()),
	}
}

// planMinimalDepth returns the best structured minimal-expansion plan for
// the shape, or nil if every strategy fails.  It is the recursion point for
// strategies planning sub-shapes, so canonicalization and caching apply at
// every level of the tree.
func (pc *planContext) planMinimalDepth(s mesh.Shape, foldDepth int) *Plan {
	if pc.tr == nil {
		if pc.canon {
			return pc.planCanonical(s, foldDepth)
		}
		return pc.planDispatch(s, foldDepth)
	}
	pc.tr.push(s)
	var p *Plan
	if pc.canon {
		p = pc.planCanonical(s, foldDepth)
	} else {
		p = pc.planDispatch(s, foldDepth)
	}
	pc.tr.pop(p)
	return p
}

// planDispatch routes a shape to the pipeline for its active-axis count.
func (pc *planContext) planDispatch(s mesh.Shape, foldDepth int) *Plan {
	if s.GrayMinimal() {
		pc.tr.shortcut("gray-minimal", "gray")
		return &Plan{Kind: KindGray, Shape: s.Clone(), CubeDim: s.MinCubeDim(),
			Dilation: 1, Method: 1}
	}
	switch len(activeAxes(s)) {
	case 0, 1:
		// A path (or point) is always Gray-minimal; defensive.
		pc.tr.shortcut("path", "gray")
		return &Plan{Kind: KindGray, Shape: s.Clone(), CubeDim: s.GrayCubeDim(),
			Dilation: 1, Method: 1}
	case 2:
		pc.tr.setPipeline("2d")
		return pc.runPipeline(pc.reg.twoD, s, foldDepth)
	case 3:
		pc.tr.setPipeline("3d")
		return pc.runPipeline(pc.reg.threeD, s, foldDepth)
	default:
		pc.tr.setPipeline("highd")
		return pc.runPipeline(pc.reg.highD, s, foldDepth)
	}
}

// runPipeline folds the stages' candidates under the cost model, honoring
// the per-stage skip/stop gates.
func (pc *planContext) runPipeline(stages []stage, s mesh.Shape, foldDepth int) *Plan {
	if pc.tr != nil {
		return pc.runPipelineTraced(stages, s, foldDepth)
	}
	var best *Plan
	for _, st := range stages {
		if st.skip != nil && st.skip(best) {
			continue
		}
		if cand := st.strat.Search(pc, s, foldDepth); cand != nil {
			best = pc.better(best, cand)
		}
		if st.stop != nil && st.stop(best) {
			break
		}
	}
	return best
}

// planMinimalOrSnake never fails: structured plan if possible, else snake.
func (pc *planContext) planMinimalOrSnake(s mesh.Shape, foldDepth int) *Plan {
	if p := pc.planMinimalDepth(s, foldDepth); p != nil {
		return p
	}
	return snakePlan(s)
}

// activeAxes returns the indices of axes with length > 1.
func activeAxes(s mesh.Shape) []int {
	var out []int
	for i, l := range s {
		if l > 1 {
			out = append(out, i)
		}
	}
	return out
}

// shapeWithAxes builds a k-dim shape with the given lengths on the given
// axes and 1 elsewhere.
func shapeWithAxes(k int, axes []int, lengths []int) mesh.Shape {
	s := make(mesh.Shape, k)
	for i := range s {
		s[i] = 1
	}
	for i, ax := range axes {
		s[ax] = lengths[i]
	}
	return s
}
