package core

import (
	"repro/internal/bits"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// Closed-form plan classifier: the provably-trivial strata of the plan
// space are decidable by pure arithmetic on ⌈log₂⌉s, with no embedding
// construction and no strategy-pipeline run.  ClassifyGuest answers exactly
// the shapes whose plan the full planner derives from an O(1) shortcut —
// the Gray-minimal stratum (planDispatch), the all-power-of-two torus and
// the power-of-two-ring cylinder (the Section 6 cyclic Gray codes), and
// every complete binary tree (the inorder labeling) — and returns the very
// plan tree the planner would build, so callers may substitute it for a
// planner run wherever they hold a valid guest shape.
//
// The claim contract is exact: for every (family, shape) ClassifyGuest
// claims, the returned plan must be structurally identical to
// PlanGuest(family, shape, opts) for every opts (the claimed strata never
// consult the solver budget or the cost model).  TestClassifyParity
// enforces this exhaustively.

// ClassifyShape returns the closed-form plan for a mesh shape, or
// (nil, false) when the shape's plan genuinely needs the strategy
// pipeline.  The shape must already be valid (see mesh.Shape.Validate);
// the classifier performs no validation of its own.
func ClassifyShape(s mesh.Shape) (*Plan, bool) {
	if !s.GrayMinimal() {
		return nil, false
	}
	// Mirrors planDispatch's gray-minimal shortcut, including the paths
	// (≤ 1 active axis), which are always Gray-minimal.
	return &Plan{Kind: KindGray, Shape: s.Clone(), CubeDim: s.MinCubeDim(),
		Dilation: 1, Method: 1}, true
}

// ClassifyGuest is the guest-family counterpart of ClassifyShape: the plan
// for (f, s) when it is closed-form decidable, in the caller's axis order
// (the claimed plans are relabeling-invariant, so no canonicalization is
// needed).  The shape must already be a valid guest of the family.
func ClassifyGuest(f guest.Family, s mesh.Shape) (*Plan, bool) {
	switch f {
	case guest.Mesh:
		return ClassifyShape(s)
	case guest.Torus:
		// planTorus: the cyclic Gray code wins when every axis is a power
		// of two (then Σ⌈log₂⌉ = ⌈log₂ Π⌉, so it is minimal too).
		for _, l := range s {
			if !bits.IsPow2(uint64(l)) {
				return nil, false
			}
		}
		return &Plan{Kind: KindGray, Family: guest.Torus, Shape: s.Clone(),
			CubeDim: s.GrayCubeDim(), Dilation: 1, Method: 1}, true
	case guest.Cylinder:
		// planCylinder: a wrapped axis of length ≤ 2 degenerates to a mesh
		// edge (mesh pipeline, family stamped), so the mesh stratum
		// applies; otherwise the cyclic Gray code closes the ring exactly
		// when the last axis is a power of two, and wins when minimal.
		l := s[s.Dims()-1]
		if l <= 2 {
			p, ok := ClassifyShape(s)
			if !ok {
				return nil, false
			}
			p.Family = guest.Cylinder
			return p, true
		}
		if bits.IsPow2(uint64(l)) && s.GrayMinimal() {
			return &Plan{Kind: KindGray, Family: guest.Cylinder, Shape: s.Clone(),
				CubeDim: s.GrayCubeDim(), Dilation: 1, Method: 1}, true
		}
		return nil, false
	case guest.Tree:
		// planTree: the inorder labeling is the plan for every complete
		// binary tree — this family is answered closed-form in full.
		d := 2
		if s[0] == 1 {
			d = 0
		}
		return &Plan{Kind: KindTree, Family: guest.Tree, Shape: s.Clone(),
			CubeDim: s.MinCubeDim(), Dilation: d, Method: 5}, true
	}
	return nil, false
}

// GrayMinimalCount counts the ordered triples (ℓ1, ℓ2, ℓ3) with every axis
// in 1..2^maxN that the classifier claims (the Gray-minimal, dilation-1
// stratum) — the census-mode entry point.  It never enumerates shapes:
// within a power-of-two block of the third axis, ⌈ℓ3⌉₂ is constant and the
// claim condition ⌈ℓ1⌉₂·⌈ℓ2⌉₂·⌈ℓ3⌉₂ = ⌈ℓ1ℓ2ℓ3⌉₂ reduces to an interval
// test ℓ1ℓ2ℓ3 ∈ (X/2, X], so each (ℓ1, ℓ2, block) contributes a closed-form
// count.  O(4^maxN · maxN) for a 8^maxN-shape domain — amortized far below
// one operation per shape.
func GrayMinimalCount(maxN int) uint64 {
	n := uint64(1) << uint(maxN)
	var total uint64
	for a := uint64(1); a <= n; a++ {
		c2a := bits.CeilPow2(a)
		for b := uint64(1); b <= n; b++ {
			ab := a * b
			x := c2a * bits.CeilPow2(b) // running X = ⌈a⌉₂⌈b⌉₂⌈block⌉₂
			// Blocks of the third axis: {1}, then (2^k, 2^(k+1)].
			lo, hi := uint64(1), uint64(1)
			for {
				// Claimed c in this block satisfy c ∈ (X/(2ab), X/ab].
				cHi := min(x/ab, hi)
				cLo := max(x/(2*ab)+1, lo)
				if cHi >= cLo {
					total += cHi - cLo + 1
				}
				if hi >= n {
					break
				}
				lo, hi = hi+1, hi*2
				x *= 2
			}
		}
	}
	return total
}
