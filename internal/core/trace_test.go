package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
)

// stripDurations zeroes every timing so runs can be compared structurally.
func stripDurations(pt *PlanTrace) {
	pt.Walk(func(n *PlanTrace) {
		n.DurationNS = 0
		for i := range n.Attempts {
			n.Attempts[i].DurationNS = 0
		}
	})
}

func tracesEqual(t *testing.T, a, b *PlanTrace) bool {
	t.Helper()
	stripDurations(a)
	stripDurations(b)
	var fa, fb strings.Builder
	flattenTrace(&fa, a)
	flattenTrace(&fb, b)
	if fa.String() != fb.String() {
		t.Logf("trace A:\n%s\ntrace B:\n%s", fa.String(), fb.String())
		return false
	}
	return true
}

func flattenTrace(b *strings.Builder, pt *PlanTrace) {
	pt.Walk(func(n *PlanTrace) {
		b.WriteString(n.Shape + "|" + n.Canonical + "|" + n.Pipeline + "|" + n.Chosen + "|" + n.Plan + "\n")
		for _, a := range n.Attempts {
			b.WriteString("  " + a.Strategy + "|" + a.Status + "|" + a.Reason + "|" + a.Plan + "\n")
		}
	})
}

func TestPlanTracedMatchesPlan(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	for _, spec := range []string{"5x6x7", "6x11x7", "3x3x23", "12x20", "3x5x17", "64x64x64", "7x1x1"} {
		s, err := mesh.ParseShape(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := pl.Plan(s)
		got, pt, err := pl.PlanTraced(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: traced plan %s != plan %s", spec, got, want)
		}
		if pt == nil {
			t.Fatalf("%s: nil PlanTrace", spec)
		}
		if pt.Plan != got.String() {
			t.Errorf("%s: provenance plan %q != plan %q", spec, pt.Plan, got)
		}
	}
}

func TestPlanTracedDeterministic(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	for _, spec := range []string{"5x6x7", "6x11x7", "12x20", "5x10x11"} {
		s, _ := mesh.ParseShape(spec)
		_, a, err := pl.PlanTraced(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		_, b, err := pl.PlanTraced(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !tracesEqual(t, a, b) {
			t.Errorf("%s: strategy attempt order is not deterministic", spec)
		}
	}
}

func TestPlanTraceStatuses(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	s, _ := mesh.ParseShape("5x6x7")
	p, pt, err := pl.PlanTraced(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Pipeline != "3d" {
		t.Errorf("pipeline = %q, want 3d", pt.Pipeline)
	}
	if len(pt.Attempts) == 0 {
		t.Fatal("no attempts recorded for a three-axis shape")
	}
	chosen := 0
	valid := map[string]bool{"tried": true, "skipped": true, "chosen": true}
	for _, a := range pt.Attempts {
		if !valid[a.Status] {
			t.Errorf("attempt %s: bad status %q", a.Strategy, a.Status)
		}
		if a.Status == "skipped" && a.Reason == "" {
			t.Errorf("attempt %s: skipped without a reason", a.Strategy)
		}
		if a.Status == "chosen" {
			chosen++
			if a.Strategy != pt.Chosen {
				t.Errorf("chosen attempt %s != node chosen %s", a.Strategy, pt.Chosen)
			}
		}
	}
	if chosen != 1 {
		t.Errorf("chosen attempts = %d, want exactly 1 (plan %s)", chosen, p)
	}
	// The three-axis pipeline always opens with pair+gray.
	if pt.Attempts[0].Strategy != "pair+gray" {
		t.Errorf("first attempt = %s, want pair+gray", pt.Attempts[0].Strategy)
	}
}

func TestPlanTracedGrayMinimalShortcut(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	s, _ := mesh.ParseShape("16x16x16")
	_, pt, err := pl.PlanTraced(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Pipeline != "gray-minimal" || pt.Chosen != "gray" {
		t.Errorf("shortcut node = pipeline %q chosen %q, want gray-minimal/gray", pt.Pipeline, pt.Chosen)
	}
	if len(pt.Attempts) != 0 {
		t.Errorf("shortcut node recorded %d attempts, want 0", len(pt.Attempts))
	}
}

func TestPlanTracedSpans(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	pl := NewPlanner(DefaultOptions)
	s, _ := mesh.ParseShape("5x6x7")
	ctx, root := obs.StartRoot(context.Background(), "test")
	_, pt, err := pl.PlanTraced(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := root.Snapshot()
	planner := snap.Find("planner")
	if planner == nil {
		t.Fatal("no planner span")
	}
	// Every recorded attempt must have a matching strategy span.
	for _, a := range pt.Attempts {
		if planner.Find("strategy:"+a.Strategy) == nil {
			t.Errorf("no span for strategy %s", a.Strategy)
		}
	}
	// Sub-shape plans nest under the attempt that searched them.
	if len(pt.Sub) > 0 {
		found := false
		for _, sub := range pt.Sub {
			if planner.Find("plan "+sub.Canonical) != nil {
				found = true
			}
		}
		if !found {
			t.Error("no nested plan span for any sub-shape")
		}
	}
}

func TestPlanTracedSnakeFallback(t *testing.T) {
	// With the solver disabled and a hostile shape the planner falls back
	// to snake; provenance must say so rather than come back empty.
	pl := NewPlanner(Options{})
	s, _ := mesh.ParseShape("7x11")
	p, pt, err := pl.PlanTraced(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind == KindSnake {
		if pt.Chosen != "snake" || pt.Plan != p.String() {
			t.Errorf("snake fallback not recorded: chosen=%q plan=%q", pt.Chosen, pt.Plan)
		}
	}
}
