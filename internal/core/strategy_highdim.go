package core

import (
	"repro/internal/bits"
	"repro/internal/mesh"
)

// HighDimStrategy plans shapes with four or more axes of length > 1 (the
// strategy of Section 4.2): power-of-two axes are pulled into one Gray
// factor — always free, since ⌈a·2^c⌉₂ = 2^c·⌈a⌉₂ — and the remaining axes
// are planned recursively when three or fewer remain, or paired up
// two-dimensionally otherwise.
type HighDimStrategy struct{}

func (HighDimStrategy) Name() string { return StrategyHighDim.String() }

func (HighDimStrategy) Search(pc *planContext, s mesh.Shape, _ int) *Plan {
	return pc.planHighDim(s)
}

func (pc *planContext) planHighDim(s mesh.Shape) *Plan {
	k := s.Dims()
	var pow2Axes, oddAxes []int
	for i, l := range s {
		if l == 1 {
			continue
		}
		if bits.IsPow2(uint64(l)) {
			pow2Axes = append(pow2Axes, i)
		} else {
			oddAxes = append(oddAxes, i)
		}
	}
	target := s.MinCubeDim()

	if len(pow2Axes) > 0 && len(oddAxes) > 0 {
		lengths := make([]int, len(pow2Axes))
		grayDim := 0
		for i, a := range pow2Axes {
			lengths[i] = s[a]
			grayDim += bits.CeilLog2(uint64(s[a]))
		}
		grayShape := shapeWithAxes(k, pow2Axes, lengths)
		grayPlan := &Plan{Kind: KindGray, Shape: grayShape, CubeDim: grayDim, Dilation: 1}
		restLengths := make([]int, len(oddAxes))
		for i, a := range oddAxes {
			restLengths[i] = s[a]
		}
		restShape := shapeWithAxes(k, oddAxes, restLengths)
		restPlan := pc.planMinimalOrSnake(restShape, 1)
		if grayDim+restPlan.CubeDim == target {
			return &Plan{
				Kind: KindProduct, Shape: s.Clone(), CubeDim: target,
				Dilation: max(1, restPlan.Dilation),
				Factors:  []*Plan{grayPlan, restPlan},
				Method:   2,
			}
		}
	}

	// All-odd high-dimensional shapes: pair axes two-dimensionally and
	// check the pairing reaches the minimal cube.
	if len(oddAxes) >= 4 {
		if p := pc.planByPairing(s, oddAxes); p != nil {
			return p
		}
	}
	return nil
}

// planByPairing partitions the given axes into pairs (one axis may remain
// single) and embeds each pair two-dimensionally; valid when the pairwise
// ⌈·⌉₂ products multiply to the minimal cube.
func (pc *planContext) planByPairing(s mesh.Shape, axes []int) *Plan {
	k := s.Dims()
	target := s.MinCubeDim()
	var best *Plan
	var rec func(remaining []int, factors []*Plan, dims int)
	rec = func(remaining []int, factors []*Plan, dims int) {
		if best != nil && best.Dilation <= 2 {
			return
		}
		if len(remaining) == 0 {
			if dims != target {
				return
			}
			fs := make([]*Plan, len(factors))
			copy(fs, factors)
			d := 0
			for _, f := range fs {
				d = max(d, f.Dilation)
			}
			best = pc.better(best, &Plan{Kind: KindProduct, Shape: s.Clone(),
				CubeDim: target, Dilation: d, Factors: fs, Method: 2})
			return
		}
		a := remaining[0]
		// Pair a with each later axis.
		for i := 1; i < len(remaining); i++ {
			b := remaining[i]
			pairShape := shapeWithAxes(k, []int{a, b}, []int{s[a], s[b]})
			pd := pairShape.MinCubeDim()
			if dims+pd > target {
				continue
			}
			rest := append(append([]int{}, remaining[1:i]...), remaining[i+1:]...)
			fp := pc.planMinimalOrSnake(pairShape, 1)
			rec(rest, append(factors, fp), dims+pd)
		}
		// Triple a with two later axes (the §5 three-dimensional methods,
		// e.g. the 3x3x3 block inside 6x6x6x6).
		for i := 1; i < len(remaining); i++ {
			for j := i + 1; j < len(remaining); j++ {
				b, c := remaining[i], remaining[j]
				tripleShape := shapeWithAxes(k, []int{a, b, c}, []int{s[a], s[b], s[c]})
				td := tripleShape.MinCubeDim()
				if dims+td > target {
					continue
				}
				rest := append(append([]int{}, remaining[1:i]...), remaining[i+1:j]...)
				rest = append(rest, remaining[j+1:]...)
				fp := pc.planMinimalOrSnake(tripleShape, 1)
				rec(rest, append(factors, fp), dims+td)
			}
		}
		// Or leave a single (Gray).
		singleShape := shapeWithAxes(k, []int{a}, []int{s[a]})
		gd := bits.CeilLog2(uint64(s[a]))
		if dims+gd <= target {
			gp := &Plan{Kind: KindGray, Shape: singleShape, CubeDim: gd, Dilation: 1}
			rec(remaining[1:], append(factors, gp), dims+gd)
		}
	}
	rec(axes, nil, 0)
	return best
}
