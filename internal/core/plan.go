package core

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/cube"
	"repro/internal/direct"
	"repro/internal/embed"
	"repro/internal/gray"
	"repro/internal/mesh"
	"repro/internal/solver"
	"repro/internal/stats"
)

// Kind enumerates the constructions a Plan node can take.
type Kind int

const (
	KindGray    Kind = iota // binary-reflected Gray code embedding
	KindDirect              // frozen direct table (package direct)
	KindProduct             // graph decomposition (Corollary 2)
	KindSubMesh             // restriction of a larger plan's mesh
	KindSolver              // embedding found by internal/solver at plan time
	KindSnake               // snake-order Gray fallback (valid, dilation measured)
	KindFold                // axis folded into two axes (ℓ = a·b), child planned
)

func (k Kind) String() string {
	switch k {
	case KindGray:
		return "gray"
	case KindDirect:
		return "direct"
	case KindProduct:
		return "product"
	case KindSubMesh:
		return "submesh"
	case KindSolver:
		return "solver"
	case KindSnake:
		return "snake"
	case KindFold:
		return "fold"
	}
	return "unknown"
}

// DilationUnknown marks constructions with no a-priori dilation bound.
const DilationUnknown = 1 << 20

// Plan is a construction tree for an embedding.  Build realizes it.
type Plan struct {
	Kind    Kind
	Shape   mesh.Shape // guest shape this node embeds
	CubeDim int        // host cube dimension

	// Dilation is the bound guaranteed by the construction rules
	// (Theorem 3 for products); DilationUnknown when no bound is known
	// before building (snake fallback).
	Dilation int

	// Method records which Section 5 method produced a top-level 3D plan
	// (1..4), 5 for the beyond-paper constructive fallbacks, 0 elsewhere.
	Method int

	Factors []*Plan    // Product: the decomposition factors
	Super   mesh.Shape // SubMesh: the enclosing shape actually embedded
	Child   *Plan      // SubMesh/Fold: plan for the transformed shape

	// Fold parameters: guest axis FoldAxis of length a·b becomes two
	// folded-mesh axes of lengths FoldA (at FoldAxis) and FoldB
	// (appended), consecutive strips reflected so the fold costs no
	// dilation.
	FoldAxis, FoldA, FoldB int

	solved *embed.Embedding // Solver: the embedding found during planning
}

// Minimal reports whether the plan uses the minimal cube for its shape.
func (p *Plan) Minimal() bool { return p.CubeDim == p.Shape.MinCubeDim() }

// RelExpansion returns 2^CubeDim / ⌈|V|⌉₂, the relative expansion of §5
// (1 when minimal).
func (p *Plan) RelExpansion() float64 {
	return float64(uint64(1)<<uint(p.CubeDim)) / float64(bits.CeilPow2(uint64(p.Shape.Nodes())))
}

// String renders the plan tree on one line.
func (p *Plan) String() string {
	var b strings.Builder
	p.render(&b)
	return b.String()
}

func (p *Plan) render(b *strings.Builder) {
	switch p.Kind {
	case KindProduct:
		b.WriteString("(")
		for i, f := range p.Factors {
			if i > 0 {
				b.WriteString(" ⊗ ")
			}
			f.render(b)
		}
		b.WriteString(")")
	case KindSubMesh:
		fmt.Fprintf(b, "%s⊆", p.Shape)
		p.Child.render(b)
	case KindFold:
		fmt.Fprintf(b, "%s↷", p.Shape)
		p.Child.render(b)
	default:
		fmt.Fprintf(b, "%s[%s]", p.Shape, p.Kind)
	}
}

// Build constructs the embedding described by the plan and verifies the
// construction-level invariants (cube dimension, guest shape).
func (p *Plan) Build() *embed.Embedding {
	var e *embed.Embedding
	switch p.Kind {
	case KindGray:
		e = embed.Gray(p.Shape)
	case KindDirect:
		var ok bool
		e, ok = direct.Embedding(p.Shape)
		if !ok {
			panic(fmt.Sprintf("core: no direct table for %v", p.Shape))
		}
	case KindProduct:
		e = p.Factors[0].Build()
		for _, f := range p.Factors[1:] {
			e = Product(e, f.Build())
		}
	case KindSubMesh:
		e = SubMesh(p.Child.Build(), p.Shape)
	case KindSolver:
		if p.solved == nil {
			panic("core: solver plan without solution")
		}
		e = p.solved
	case KindSnake:
		e = Snake(p.Shape)
	case KindFold:
		e = unfold(p.Child.Build(), p.Shape, p.FoldAxis, p.FoldA, p.FoldB)
	default:
		panic("core: unknown plan kind")
	}
	if !e.Guest.Equal(p.Shape) {
		panic(fmt.Sprintf("core: plan for %v built %v", p.Shape, e.Guest))
	}
	if e.N != p.CubeDim {
		panic(fmt.Sprintf("core: plan for %v promised %d-cube, built %d-cube", p.Shape, p.CubeDim, e.N))
	}
	return e
}

// Snake returns the minimal-expansion fallback embedding: guest nodes in
// boustrophedon order are assigned consecutive Gray codewords of the minimal
// cube.  Always valid and minimal; edges along the snake have dilation one
// but cross-snake edges can be long, so the dilation must be measured.
func Snake(s mesh.Shape) *embed.Embedding {
	n := s.MinCubeDim()
	e := embed.New(s, n)
	order := SnakeOrder(s)
	for pos, g := range order {
		e.Map[g] = cube.Node(gray.Encode(uint64(pos)))
	}
	return e
}

// SnakeOrder returns the guest indices in reflected mixed-radix order:
// consecutive entries are mesh neighbors.
func SnakeOrder(s mesh.Shape) []int {
	n := s.Nodes()
	out := make([]int, n)
	coord := make([]int, s.Dims())
	digits := make([]int, s.Dims())
	for i := 0; i < n; i++ {
		rem := i
		for j := 0; j < s.Dims(); j++ {
			digits[j] = rem % s[j]
			rem /= s[j]
		}
		for j := 0; j < s.Dims(); j++ {
			parity := 0
			for k := j + 1; k < s.Dims(); k++ {
				parity += digits[k]
			}
			if parity&1 == 1 {
				coord[j] = s[j] - 1 - digits[j]
			} else {
				coord[j] = digits[j]
			}
		}
		out[i] = s.Index(coord)
	}
	return out
}

// Options tunes the planner.
type Options struct {
	// SolverBudget enables a solver search for shapes with at most this
	// many nodes when the structured methods fail (0 disables).  The
	// search is deterministic (fixed seed) but costs time.
	SolverBudget int
	// SolverSeed seeds the optional solver search.
	SolverSeed int64
}

// DefaultOptions enables a small solver budget: shapes up to 36 nodes are
// searched directly when no structured plan applies.
var DefaultOptions = Options{SolverBudget: 36, SolverSeed: 1}

// PlanShape returns a minimal-expansion plan for the shape, choosing the
// lowest guaranteed dilation among the applicable constructions: Gray
// (method 1), 2D embedding + Gray pairs (method 2), direct 3D blocks
// (method 3), axis-extension decomposition (method 4), and the solver/snake
// fallbacks (method 5, beyond the paper).  The returned plan always embeds
// into the minimal cube.
func PlanShape(s mesh.Shape, opts Options) *Plan {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	best := planMinimal(s, opts)
	if best == nil {
		best = &Plan{Kind: KindSnake, Shape: s.Clone(), CubeDim: s.MinCubeDim(),
			Dilation: DilationUnknown, Method: 5}
	}
	if best.Method == 0 {
		best.Method = classifyMethod(s, best)
	}
	return best
}

// classifyMethod labels a plan with the paper's method index for reporting:
// for three-active-axis shapes the counting predicates of §5 decide; other
// arities use 1 for Gray plans and 5 (beyond-paper constructive) otherwise.
func classifyMethod(s mesh.Shape, p *Plan) int {
	if p.Kind == KindGray {
		return 1
	}
	var active []int
	for _, l := range s {
		if l > 1 {
			active = append(active, l)
		}
	}
	if len(active) == 3 && p.Dilation <= 2 {
		if m := stats.BestMethod(active[0], active[1], active[2]); m != 0 {
			return m
		}
	}
	return 5
}

// planMinimal returns the best structured minimal-expansion plan, or nil.
func planMinimal(s mesh.Shape, opts Options) *Plan {
	return planMinimalDepth(s, opts, 0)
}

// planMinimalDepth is planMinimal with the axis-folding recursion depth
// threaded through (folding may nest only once).
func planMinimalDepth(s mesh.Shape, opts Options, foldDepth int) *Plan {
	// Method 1: Gray code.
	if s.GrayMinimal() {
		return &Plan{Kind: KindGray, Shape: s.Clone(), CubeDim: s.MinCubeDim(),
			Dilation: 1, Method: 1}
	}
	// Reduce axes of length 1: they change nothing structurally but let
	// the 2D/3D machinery below see the true dimensionality.
	active := 0
	for _, l := range s {
		if l > 1 {
			active++
		}
	}
	switch active {
	case 0, 1:
		// A line: Gray is minimal for a single axis, so GrayMinimal would
		// have caught it.  (Unreachable, kept for safety.)
		return &Plan{Kind: KindGray, Shape: s.Clone(), CubeDim: s.GrayCubeDim(),
			Dilation: 1, Method: 1}
	case 2:
		return plan2D(s, opts, foldDepth)
	case 3:
		return plan3D(s, opts, foldDepth)
	default:
		return planHighDim(s, opts)
	}
}

// better returns the preferred of two plans (either may be nil): lower
// guaranteed dilation wins; products with fewer factors break ties.
func better(a, b *Plan) *Plan {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Dilation != b.Dilation {
		if a.Dilation < b.Dilation {
			return a
		}
		return b
	}
	if len(a.Factors) <= len(b.Factors) {
		return a
	}
	return b
}

// shapeWithAxis returns a k-dim shape that is 1 everywhere except the given
// axis positions.
func shapeWithAxes(k int, axes []int, lengths []int) mesh.Shape {
	out := make(mesh.Shape, k)
	for i := range out {
		out[i] = 1
	}
	for i, a := range axes {
		out[a] = lengths[i]
	}
	return out
}

// plan2D plans a shape with exactly two axes of length > 1 into its minimal
// cube.  Returns nil if no structured construction applies.
func plan2D(s mesh.Shape, opts Options, foldDepth int) *Plan {
	target := s.MinCubeDim()

	// Direct table, possibly with permutation / padding.
	if tab, _, ok := direct.Lookup(s); ok {
		return &Plan{Kind: KindDirect, Shape: s.Clone(), CubeDim: tab.Shape.MinCubeDim(),
			Dilation: tab.Dilation, Method: 2}
	}

	// Decomposition over the direct tables: s = direct ∘ residual, residual
	// planned recursively (Gray or a further decomposition).
	var best *Plan
	if p := planByFactoring(s, opts, 0); p != nil && p.CubeDim == target {
		best = better(best, p)
	}

	// Extension: embed a slightly larger mesh that decomposes, then take
	// the submesh (strategy step 3).  Grow one axis while the minimal cube
	// stays put.
	if p := planByExtension(s, opts); p != nil {
		best = better(best, p)
	}

	// Two-dimensional split (the 2D analogue of method 4): write one axis
	// as ℓ'·ℓ'' ≥ ℓ with ⌈ℓother·ℓ'⌉₂·⌈ℓ''⌉₂ == ⌈|V|⌉₂, embed the
	// (ℓother × ℓ') factor recursively and ℓ'' by a Gray code.
	if best == nil || best.Dilation > 2 {
		if p := planBy2DSplit(s, opts); p != nil {
			best = better(best, p)
		}
	}

	// Axis folding: ℓ = a·b refolds the mesh into three dimensions, where
	// the direct 3-D tables may apply (e.g. 3x21 onto 3x3x7).
	if best == nil || best.Dilation > 2 {
		if p := planByFolding(s, opts, foldDepth); p != nil {
			best = better(best, p)
		}
	}

	if best != nil {
		return best
	}

	// Solver fallback for small shapes.
	if p := planBySolver(s, opts); p != nil {
		return p
	}
	return nil
}

// planBy2DSplit splits one axis of a two-active-axis shape as ℓ'·ℓ” and
// embeds (ℓa × ℓ') ⊗ Gray(ℓ”), restricting to the guest at the end.
// Example: 5x6 = (5x3) ⊗ (1x2) — the 3x5 direct table lifts to a
// dilation-two minimal-expansion embedding of 5x6.
func planBy2DSplit(s mesh.Shape, opts Options) *Plan {
	axes := activeAxes(s)
	if len(axes) != 2 {
		return nil
	}
	target := s.MinCubeDim()
	total := uint64(1) << uint(target)
	k := s.Dims()
	var best *Plan
	for t := 0; t < 2; t++ {
		m, a := axes[t], axes[1-t]
		lm, la := s[m], s[a]
		for p := 0; p <= target; p++ {
			P := uint64(1) << uint(p)
			Q := total / P
			lpMax := int(P) / la
			if lpMax < 1 || Q < 1 {
				continue
			}
			// ℓ'' is a Gray factor: ⌈ℓ''⌉₂ == Q means ℓ'' ∈ (Q/2, Q].
			lppMax := int(Q)
			if lpMax*lppMax < lm {
				continue
			}
			lpp := (lm + lpMax - 1) / lpMax
			if lo := int(Q/2) + 1; lpp < lo {
				lpp = lo
			}
			if lpp > lppMax {
				continue
			}
			lp := (lm + lpp - 1) / lpp
			if lo := int(P/2)/la + 1; lp < lo {
				lp = lo
			}
			if lp > lpMax || lp*lpp < lm {
				lp = lpMax
			}
			if bits.CeilPow2(uint64(la*lp))*bits.CeilPow2(uint64(lpp)) != total {
				continue
			}
			if lp == lm && lpp == 1 {
				continue // degenerate: no actual split
			}
			f1Shape := shapeWithAxes(k, []int{a, m}, []int{la, lp})
			var f1 *Plan
			if f1Shape.GrayMinimal() {
				f1 = &Plan{Kind: KindGray, Shape: f1Shape, CubeDim: f1Shape.MinCubeDim(), Dilation: 1}
			} else if _, _, ok := direct.Lookup(f1Shape); ok {
				f1 = &Plan{Kind: KindDirect, Shape: f1Shape, CubeDim: f1Shape.MinCubeDim(), Dilation: 2}
			} else if p := planByFactoring(f1Shape, opts, 2); p != nil {
				f1 = p
			} else if p := planBySolver(f1Shape, opts); p != nil {
				f1 = p
			} else {
				continue
			}
			f2Shape := shapeWithAxes(k, []int{m}, []int{lpp})
			f2 := &Plan{Kind: KindGray, Shape: f2Shape,
				CubeDim: bits.CeilLog2(uint64(lpp)), Dilation: 1}
			if f1.CubeDim+f2.CubeDim != target {
				continue
			}
			super := f1Shape.Product(f2Shape)
			prod := &Plan{Kind: KindProduct, Shape: super, CubeDim: target,
				Dilation: maxInt(f1.Dilation, 1), Factors: []*Plan{f1, f2}}
			var cand *Plan
			if super.Equal(s) {
				cand = prod
			} else {
				cand = &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: prod.Dilation, Super: super, Child: prod}
			}
			best = better(best, cand)
			if best.Dilation <= 2 {
				return best
			}
		}
	}
	return best
}

// planByFactoring searches decompositions s = t ∘ r where t matches a
// direct table and r is planned recursively.  depth caps the recursion.
func planByFactoring(s mesh.Shape, opts Options, depth int) *Plan {
	if depth > 3 {
		return nil
	}
	target := s.MinCubeDim()
	var best *Plan
	k := s.Dims()
	for _, tab := range direct.Tables {
		// The table's axes of length > 1, to be injected into s's axes.
		var tl []int
		for _, l := range tab.Shape {
			if l > 1 {
				tl = append(tl, l)
			}
		}
		perms := axisInjections(tab.Shape, s)
		for _, axes := range perms {
			residual := s.Clone()
			tshape := shapeWithAxes(k, axes, tl)
			ok := true
			for i := range s {
				if s[i]%tshape[i] != 0 {
					ok = false
					break
				}
				residual[i] = s[i] / tshape[i]
			}
			if !ok {
				continue
			}
			tdim := tab.Shape.MinCubeDim()
			rdim := target - tdim
			if rdim < 0 || bits.CeilLog2(uint64(residual.Nodes())) > rdim {
				continue // residual cannot fit the remaining dimensions
			}
			var rplan *Plan
			if residual.GrayCubeDim() == rdim {
				rplan = &Plan{Kind: KindGray, Shape: residual, CubeDim: rdim, Dilation: 1}
			} else if residual.MinCubeDim() == rdim {
				rplan = planByFactoring(residual, opts, depth+1)
				if rplan == nil {
					if p := planBySolver(residual, opts); p != nil && p.CubeDim == rdim {
						rplan = p
					}
				}
			}
			if rplan == nil || rplan.CubeDim != rdim {
				continue
			}
			dplan := &Plan{Kind: KindDirect, Shape: tshape, CubeDim: tdim, Dilation: tab.Dilation}
			prod := &Plan{
				Kind: KindProduct, Shape: s.Clone(), CubeDim: target,
				Dilation: maxInt(dplan.Dilation, rplan.Dilation),
				Factors:  []*Plan{dplan, rplan},
			}
			best = better(best, prod)
		}
	}
	return best
}

// axisInjections lists the ways to assign the axes of t (all of length >1)
// to distinct axes of s.  Axes of t equal to 1 are dropped.
func axisInjections(t, s mesh.Shape) [][]int {
	var tl []int
	for _, l := range t {
		if l > 1 {
			tl = append(tl, l)
		}
	}
	var out [][]int
	used := make([]bool, s.Dims())
	cur := make([]int, len(tl))
	var rec func(i int)
	rec = func(i int) {
		if i == len(tl) {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for j := 0; j < s.Dims(); j++ {
			if !used[j] && s[j]%tl[i] == 0 {
				used[j] = true
				cur[i] = j
				rec(i + 1)
				used[j] = false
			}
		}
	}
	rec(0)
	// Re-express lengths: caller zips axes with t's >1 lengths.
	return out
}

// planByExtension grows one axis of s while ⌈|V|⌉₂ is unchanged and plans
// the grown shape by factoring; the result is wrapped in a SubMesh node.
func planByExtension(s mesh.Shape, opts Options) *Plan {
	target := s.MinCubeDim()
	total := uint64(1) << uint(target)
	var best *Plan
	for i := range s {
		rest := 1
		for j := range s {
			if j != i {
				rest *= s[j]
			}
		}
		maxLen := int(total) / rest
		for l := s[i] + 1; l <= maxLen; l++ {
			grown := s.Clone()
			grown[i] = l
			if grown.MinCubeDim() != target {
				break
			}
			if grown.GrayMinimal() {
				child := &Plan{Kind: KindGray, Shape: grown, CubeDim: target, Dilation: 1}
				sub := &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: 1, Super: grown, Child: child}
				best = better(best, sub)
				continue
			}
			if _, _, ok := direct.Lookup(grown); ok {
				child := &Plan{Kind: KindDirect, Shape: grown, CubeDim: target, Dilation: 2}
				sub := &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: 2, Super: grown, Child: child}
				best = better(best, sub)
				continue
			}
			if p := planByFactoring(grown, opts, 1); p != nil && p.CubeDim == target {
				sub := &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: p.Dilation, Super: grown, Child: p}
				best = better(best, sub)
			}
		}
	}
	return best
}

// planBySolver runs the deterministic solver when the shape is within the
// configured budget.
func planBySolver(s mesh.Shape, opts Options) *Plan {
	if opts.SolverBudget <= 0 || s.Nodes() > opts.SolverBudget {
		return nil
	}
	e := solver.Find(s, solver.Options{MaxDilation: 2, Seed: opts.SolverSeed,
		Restarts: 6, Iterations: 150_000})
	if e == nil {
		return nil
	}
	e.RealizeMinCongestion()
	return &Plan{Kind: KindSolver, Shape: s.Clone(), CubeDim: e.N,
		Dilation: e.Dilation(), Method: 5, solved: e}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
