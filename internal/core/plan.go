package core

import (
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/cube"
	"repro/internal/direct"
	"repro/internal/embed"
	"repro/internal/gray"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/ring"
	"repro/internal/stats"
)

//go:generate go run repro/cmd/enumgen -type Kind,StrategyID

// Kind enumerates the constructions a Plan node can take.  The String/Set
// and text-marshalling boilerplate is generated (kind_enumgen.go) from this
// constant block, so the wire names track the declarations.
type Kind int

const (
	KindGray    Kind = iota // binary-reflected Gray code embedding
	KindDirect              // frozen direct table (package direct)
	KindProduct             // graph decomposition (Corollary 2)
	KindSubMesh             // restriction of a larger plan's mesh
	KindSolver              // embedding found by internal/solver at plan time
	KindSnake               // snake-order Gray fallback (valid, dilation measured)
	KindFold                // axis folded into two axes (ℓ = a·b), child planned
	KindRing                // Section 6 strip construction of the wrapped axes
	KindTree                // inorder labeling of the complete binary tree
)

// DilationUnknown marks constructions with no a-priori dilation bound.
const DilationUnknown = 1 << 20

// CongestionUnknown marks constructions with no a-priori congestion bound.
const CongestionUnknown = 1 << 20

// Plan is a construction tree for an embedding.  Build realizes it.
type Plan struct {
	Kind    Kind
	Family  guest.Family // guest family of this node (zero: mesh)
	Shape   mesh.Shape   // guest shape this node embeds
	CubeDim int          // host cube dimension

	// Dilation is the bound guaranteed by the construction rules
	// (Theorem 3 for products); DilationUnknown when no bound is known
	// before building (snake fallback).
	Dilation int

	// Method records which Section 5 method produced a top-level 3D plan
	// (1..4), 5 for the beyond-paper constructive fallbacks, 0 elsewhere.
	Method int

	Factors []*Plan    // Product: the decomposition factors
	Super   mesh.Shape // SubMesh: the enclosing shape actually embedded
	Child   *Plan      // SubMesh/Fold: plan for the transformed shape

	// Fold parameters: guest axis FoldAxis of length a·b becomes two
	// folded-mesh axes of lengths FoldA (at FoldAxis) and FoldB
	// (appended), consecutive strips reflected so the fold costs no
	// dilation.
	FoldAxis, FoldA, FoldB int

	// RingDiv is the strip divisor of a KindRing node (2: halving, Lemma 3;
	// 4: quartering, Lemma 4), applied to every axis for a torus and to the
	// last axis only for a cylinder.  Child plans the strip-column mesh.
	RingDiv int

	solved *embed.Embedding // Solver: the embedding found during planning
}

// Minimal reports whether the plan uses the minimal cube for its shape.
func (p *Plan) Minimal() bool { return p.CubeDim == p.Shape.MinCubeDim() }

// RelExpansion returns 2^CubeDim / ⌈|V|⌉₂, the relative expansion of §5
// (1 when minimal).
func (p *Plan) RelExpansion() float64 {
	return float64(uint64(1)<<uint(p.CubeDim)) / float64(bits.CeilPow2(uint64(p.Shape.Nodes())))
}

// Depth returns the height of the plan tree; leaves have depth one.
func (p *Plan) Depth() int {
	d := 0
	for _, f := range p.Factors {
		d = max(d, f.Depth())
	}
	if p.Child != nil {
		d = max(d, p.Child.Depth())
	}
	return d + 1
}

// CongestionBound returns the congestion guaranteed by the construction
// rules (Theorem 3 propagates the maximum across product factors), or
// CongestionUnknown for the snake fallback.  Non-mesh families route extra
// (wraparound or tree) edges over the same links, so their congestion is
// always measured rather than bounded.
func (p *Plan) CongestionBound() int {
	if p.Family != guest.Mesh {
		return CongestionUnknown
	}
	switch p.Kind {
	case KindGray:
		return 1
	case KindDirect:
		if tab, _, ok := direct.Lookup(p.Shape); ok {
			return tab.Congestion
		}
		return CongestionUnknown
	case KindProduct:
		c := 1
		for _, f := range p.Factors {
			c = max(c, f.CongestionBound())
		}
		return c
	case KindSubMesh, KindFold:
		return p.Child.CongestionBound()
	case KindSolver:
		if p.solved != nil {
			return p.solved.Congestion()
		}
	}
	return CongestionUnknown
}

// String renders the plan tree on one line.
func (p *Plan) String() string {
	var b strings.Builder
	p.render(&b)
	return b.String()
}

func (p *Plan) render(b *strings.Builder) {
	switch p.Kind {
	case KindProduct:
		b.WriteString("(")
		for i, f := range p.Factors {
			if i > 0 {
				b.WriteString(" ⊗ ")
			}
			f.render(b)
		}
		b.WriteString(")")
	case KindSubMesh:
		fmt.Fprintf(b, "%s⊆", p.Shape)
		p.Child.render(b)
	case KindFold:
		fmt.Fprintf(b, "%s↷", p.Shape)
		p.Child.render(b)
	default:
		fmt.Fprintf(b, "%s[%s]", p.Shape, p.Kind)
	}
}

// Build constructs the embedding described by the plan and verifies the
// construction-level invariants (cube dimension, guest shape).
func (p *Plan) Build() *embed.Embedding {
	var e *embed.Embedding
	switch p.Kind {
	case KindGray:
		e = embed.Gray(p.Shape)
	case KindDirect:
		var ok bool
		e, ok = direct.Embedding(p.Shape)
		if !ok {
			panic(fmt.Sprintf("core: no direct table for %v", p.Shape))
		}
	case KindProduct:
		e = p.Factors[0].Build()
		for _, f := range p.Factors[1:] {
			e = Product(e, f.Build())
		}
	case KindSubMesh:
		e = SubMesh(p.Child.Build(), p.Shape)
	case KindSolver:
		if p.solved == nil {
			panic("core: solver plan without solution")
		}
		e = p.solved
	case KindSnake:
		e = Snake(p.Shape)
	case KindFold:
		e = unfold(p.Child.Build(), p.Shape, p.FoldAxis, p.FoldA, p.FoldB)
	case KindRing:
		base := p.Child.Build()
		k := p.Shape.Dims()
		lays := make([]ring.Layout, k)
		for i := range lays {
			if p.Family == guest.Cylinder && i < k-1 {
				lays[i] = ring.Identity(p.Shape[i])
			} else {
				lays[i] = ring.ForDiv(p.RingDiv, p.Shape[i])
			}
		}
		e = ring.Assemble(base, p.Shape, lays)
	case KindTree:
		e = embed.TreeInorder(p.Shape)
	default:
		panic("core: unknown plan kind")
	}
	if e.Family != p.Family {
		e.Family = p.Family
	}
	if !e.Guest.Equal(p.Shape) {
		panic(fmt.Sprintf("core: plan for %v built %v", p.Shape, e.Guest))
	}
	if e.N != p.CubeDim {
		panic(fmt.Sprintf("core: plan for %v promised %d-cube, built %d-cube", p.Shape, p.CubeDim, e.N))
	}
	return e
}

// Snake returns the minimal-expansion fallback embedding: guest nodes in
// boustrophedon order are assigned consecutive Gray codewords of the minimal
// cube.  Always valid and minimal; edges along the snake have dilation one
// but cross-snake edges can be long, so the dilation must be measured.
func Snake(s mesh.Shape) *embed.Embedding {
	n := s.MinCubeDim()
	e := embed.New(s, n)
	order := SnakeOrder(s)
	for pos, g := range order {
		e.Map[g] = cube.Node(gray.Encode(uint64(pos)))
	}
	return e
}

// SnakeOrder returns the guest indices in reflected mixed-radix order:
// consecutive entries are mesh neighbors.
func SnakeOrder(s mesh.Shape) []int {
	n := s.Nodes()
	out := make([]int, n)
	coord := make([]int, s.Dims())
	digits := make([]int, s.Dims())
	for i := 0; i < n; i++ {
		rem := i
		for j := 0; j < s.Dims(); j++ {
			digits[j] = rem % s[j]
			rem /= s[j]
		}
		for j := 0; j < s.Dims(); j++ {
			parity := 0
			for k := j + 1; k < s.Dims(); k++ {
				parity += digits[k]
			}
			if parity&1 == 1 {
				coord[j] = s[j] - 1 - digits[j]
			} else {
				coord[j] = digits[j]
			}
		}
		out[i] = s.Index(coord)
	}
	return out
}

// snakePlan wraps a shape in the always-valid snake fallback node.
func snakePlan(s mesh.Shape) *Plan {
	return &Plan{Kind: KindSnake, Shape: s.Clone(), CubeDim: s.MinCubeDim(),
		Dilation: DilationUnknown}
}

// Options tunes the planner.
type Options struct {
	// SolverBudget enables a solver search for shapes with at most this
	// many nodes when the structured methods fail (0 disables).  The
	// search is deterministic (fixed seed) but costs time.
	SolverBudget int
	// SolverSeed seeds the optional solver search.
	SolverSeed int64
	// Cost ranks competing candidate plans; nil uses DefaultCostModel.
	// See CostModel and NewLexCost for the available knobs.
	Cost CostModel
}

// DefaultOptions enables a small solver budget: shapes up to 36 nodes are
// searched directly when no structured plan applies.
var DefaultOptions = Options{SolverBudget: 36, SolverSeed: 1}

// PlanShape returns a minimal-expansion plan for the shape, choosing the
// lowest guaranteed dilation among the applicable constructions: Gray
// (method 1), 2D embedding + Gray pairs (method 2), direct 3D blocks
// (method 3), axis-extension decomposition (method 4), and the solver/snake
// fallbacks (method 5, beyond the paper).  The returned plan always embeds
// into the minimal cube.
//
// PlanShape plans the shape in its given axis order with no memoization;
// sweeps that re-plan many (sub-)shapes should use a Planner, which adds a
// canonical-shape cache on top of the same strategy pipelines.
func PlanShape(s mesh.Shape, opts Options) *Plan {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return newPlanContext(opts, nil, false).planTop(s)
}

// planTop runs the full pipeline for a top-level request: structured
// strategies, snake fallback, and method classification.
func (pc *planContext) planTop(s mesh.Shape) *Plan {
	best := pc.planMinimalDepth(s, 0)
	if best == nil {
		best = snakePlan(s)
		best.Method = 5
	}
	if best.Method == 0 {
		best.Method = classifyMethod(s, best)
	}
	return best
}

// classifyMethod labels a plan with the paper's method index for reporting:
// for three-active-axis shapes the counting predicates of §5 decide; other
// arities use 1 for Gray plans and 5 (beyond-paper constructive) otherwise.
func classifyMethod(s mesh.Shape, p *Plan) int {
	if p.Kind == KindGray {
		return 1
	}
	var active []int
	for _, l := range s {
		if l > 1 {
			active = append(active, l)
		}
	}
	if len(active) == 3 && p.Dilation <= 2 {
		if m := stats.BestMethod(active[0], active[1], active[2]); m != 0 {
			return m
		}
	}
	return 5
}
