package core

import (
	"repro/internal/bits"
	"repro/internal/direct"
	"repro/internal/mesh"
)

// PairGrayStrategy implements method 2 for three-axis shapes: embed one
// axis pair two-dimensionally and the remaining axis by a Gray code.
type PairGrayStrategy struct{}

func (PairGrayStrategy) Name() string { return StrategyPairGray.String() }

func (PairGrayStrategy) Search(pc *planContext, s mesh.Shape, foldDepth int) *Plan {
	return pc.planPairPlusGray(s, foldDepth)
}

// planPairPlusGray implements method 2: find an axis pair (i, j) with
// ⌈ℓiℓj⌉₂ · ⌈ℓk⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂, embed the ℓi×ℓj mesh two-dimensionally and
// the remaining axis by a Gray code.  Among valid pairs the one whose 2D
// plan has the lowest guaranteed dilation wins, matching the paper's advice
// to pick the two axes with the smallest ℓ/⌈ℓ⌉₂.
func (pc *planContext) planPairPlusGray(s mesh.Shape, foldDepth int) *Plan {
	axes := activeAxes(s)
	if len(axes) != 3 {
		return nil
	}
	target := s.MinCubeDim()
	k := s.Dims()
	var best *Plan
	for t := 0; t < 3; t++ {
		i, j, rest := axes[t], axes[(t+1)%3], axes[(t+2)%3]
		pairDim := bits.CeilLog2(uint64(s[i] * s[j]))
		grayDim := bits.CeilLog2(uint64(s[rest]))
		if pairDim+grayDim != target {
			continue
		}
		pairShape := shapeWithAxes(k, []int{i, j}, []int{s[i], s[j]})
		pairPlan := pc.planMinimalDepth(pairShape, foldDepth)
		if pairPlan == nil {
			// Chan [4] guarantees a dilation-2 embedding exists; our
			// constructive stand-in is the snake fallback with measured
			// dilation (see DESIGN.md, substitution 1b).
			pairPlan = &Plan{Kind: KindSnake, Shape: pairShape, CubeDim: pairDim,
				Dilation: DilationUnknown}
		}
		grayShape := shapeWithAxes(k, []int{rest}, []int{s[rest]})
		grayPlan := &Plan{Kind: KindGray, Shape: grayShape, CubeDim: grayDim, Dilation: 1}
		prod := &Plan{
			Kind: KindProduct, Shape: s.Clone(), CubeDim: target,
			Dilation: max(pairPlan.Dilation, 1),
			Factors:  []*Plan{pairPlan, grayPlan},
			Method:   2,
		}
		best = pc.better(best, prod)
	}
	return best
}

// Split2DStrategy is the 2D analogue of method 4: split one axis of a
// two-axis shape as ℓ'·ℓ” and embed (ℓother × ℓ') ⊗ Gray(ℓ”),
// restricting to the guest at the end.
type Split2DStrategy struct{}

func (Split2DStrategy) Name() string { return StrategySplit2D.String() }

func (Split2DStrategy) Search(pc *planContext, s mesh.Shape, _ int) *Plan {
	return pc.planBy2DSplit(s)
}

// planBy2DSplit splits one axis of a two-active-axis shape as ℓ'·ℓ” and
// embeds (ℓa × ℓ') ⊗ Gray(ℓ”), restricting to the guest at the end.
// Example: 5x6 = (5x3) ⊗ (1x2) — the 3x5 direct table lifts to a
// dilation-two minimal-expansion embedding of 5x6.
func (pc *planContext) planBy2DSplit(s mesh.Shape) *Plan {
	axes := activeAxes(s)
	if len(axes) != 2 {
		return nil
	}
	target := s.MinCubeDim()
	total := uint64(1) << uint(target)
	k := s.Dims()
	var best *Plan
	for t := 0; t < 2; t++ {
		m, a := axes[t], axes[1-t]
		lm, la := s[m], s[a]
		for p := 0; p <= target; p++ {
			P := uint64(1) << uint(p)
			Q := total / P
			lpMax := int(P) / la
			if lpMax < 1 || Q < 1 {
				continue
			}
			// ℓ'' is a Gray factor: ⌈ℓ''⌉₂ == Q means ℓ'' ∈ (Q/2, Q].
			lppMax := int(Q)
			if lpMax*lppMax < lm {
				continue
			}
			lpp := (lm + lpMax - 1) / lpMax
			if lo := int(Q/2) + 1; lpp < lo {
				lpp = lo
			}
			if lpp > lppMax {
				continue
			}
			lp := (lm + lpp - 1) / lpp
			if lo := int(P/2)/la + 1; lp < lo {
				lp = lo
			}
			if lp > lpMax || lp*lpp < lm {
				lp = lpMax
			}
			if bits.CeilPow2(uint64(la*lp))*bits.CeilPow2(uint64(lpp)) != total {
				continue
			}
			if lp == lm && lpp == 1 {
				continue // degenerate: no actual split
			}
			f1Shape := shapeWithAxes(k, []int{a, m}, []int{la, lp})
			var f1 *Plan
			if f1Shape.GrayMinimal() {
				f1 = &Plan{Kind: KindGray, Shape: f1Shape, CubeDim: f1Shape.MinCubeDim(), Dilation: 1}
			} else if _, _, ok := direct.Lookup(f1Shape); ok {
				f1 = &Plan{Kind: KindDirect, Shape: f1Shape, CubeDim: f1Shape.MinCubeDim(), Dilation: 2}
			} else if p := pc.planByFactoring(f1Shape, 2); p != nil {
				f1 = p
			} else if p := pc.planBySolver(f1Shape); p != nil {
				f1 = p
			} else {
				continue
			}
			f2Shape := shapeWithAxes(k, []int{m}, []int{lpp})
			f2 := &Plan{Kind: KindGray, Shape: f2Shape,
				CubeDim: bits.CeilLog2(uint64(lpp)), Dilation: 1}
			if f1.CubeDim+f2.CubeDim != target {
				continue
			}
			super := f1Shape.Product(f2Shape)
			prod := &Plan{Kind: KindProduct, Shape: super, CubeDim: target,
				Dilation: max(f1.Dilation, 1), Factors: []*Plan{f1, f2}}
			var cand *Plan
			if super.Equal(s) {
				cand = prod
			} else {
				cand = &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: prod.Dilation, Super: super, Child: prod}
			}
			best = pc.better(best, cand)
			if best.Dilation <= 2 {
				return best
			}
		}
	}
	return best
}

// Split3DStrategy implements method 4: split one axis as ℓ'·ℓ” ≥ ℓ and
// embed the product of two two-dimensional meshes (Corollary 2),
// restricting to the guest at the end.
type Split3DStrategy struct{}

func (Split3DStrategy) Name() string { return StrategySplit3D.String() }

func (Split3DStrategy) Search(pc *planContext, s mesh.Shape, foldDepth int) *Plan {
	return pc.planBySplit(s, foldDepth)
}

// planBySplit implements method 4: choose a split axis m and the remaining
// axes a, b; find ℓ'·ℓ” ≥ ℓm with ⌈ℓa·ℓ'⌉₂ · ⌈ℓ”·ℓb⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂; embed
// the product (ℓa × ℓ') ⊗ (ℓ” × ℓb) by Corollary 2 and restrict to the
// guest.  Both factors are two-dimensional meshes.
func (pc *planContext) planBySplit(s mesh.Shape, foldDepth int) *Plan {
	axes := activeAxes(s)
	if len(axes) != 3 {
		return nil
	}
	target := s.MinCubeDim()
	k := s.Dims()
	total := uint64(1) << uint(target)
	var best *Plan
	for t := 0; t < 3; t++ {
		m, a, b := axes[t], axes[(t+1)%3], axes[(t+2)%3]
		lm, la, lb := s[m], s[a], s[b]
		for p := 0; p <= target; p++ {
			P := uint64(1) << uint(p)
			Q := total / P
			lp, lpp, ok := splitFactors(lm, la, lb, P, Q)
			if !ok {
				continue
			}
			f1Shape := shapeWithAxes(k, []int{a, m}, []int{la, lp})
			f2Shape := shapeWithAxes(k, []int{m, b}, []int{lpp, lb})
			f1 := pc.planMinimalOrSnake(f1Shape, foldDepth)
			f2 := pc.planMinimalOrSnake(f2Shape, foldDepth)
			if f1.CubeDim+f2.CubeDim != target {
				continue
			}
			super := f1Shape.Product(f2Shape)
			prod := &Plan{
				Kind: KindProduct, Shape: super, CubeDim: target,
				Dilation: max(f1.Dilation, f2.Dilation),
				Factors:  []*Plan{f1, f2},
			}
			var cand *Plan
			if super.Equal(s) {
				prod.Method = 4
				cand = prod
			} else {
				cand = &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: prod.Dilation, Super: super, Child: prod, Method: 4}
			}
			best = pc.better(best, cand)
			if best.Dilation <= 2 {
				return best
			}
		}
	}
	return best
}

// splitFactors solves method 4's arithmetic for one (P, Q) factorization of
// the minimal cube: find ℓ', ℓ” with ℓ'·ℓ” ≥ ℓm, ⌈ℓa·ℓ'⌉₂ == P and
// ⌈ℓ”·ℓb⌉₂ == Q, keeping the extension waste ℓ'ℓ” − ℓm small.
// A feasible pair exists iff ⌊P/ℓa⌋·⌊Q/ℓb⌋ ≥ ℓm (with both ≥ 1).
func splitFactors(lm, la, lb int, P, Q uint64) (lp, lpp int, ok bool) {
	lpMax := int(P) / la
	lppMax := int(Q) / lb
	if lpMax < 1 || lppMax < 1 || lpMax*lppMax < lm {
		return 0, 0, false
	}
	// With lp = lpMax, ⌈la·lp⌉₂ == P automatically (la·lpMax > P−la ≥ P/2
	// unless lpMax == 1, where la ∈ (P/2, P]).  Pick the smallest ℓ''
	// that still satisfies ⌈ℓ''·ℓb⌉₂ == Q, i.e. ℓ''·ℓb > Q/2.
	lppLo := int(Q/2)/lb + 1
	lpp = (lm + lpMax - 1) / lpMax // ⌈ℓm/ℓ'⌉, the least cover
	if lpp < lppLo {
		lpp = lppLo
	}
	if lpp > lppMax {
		return 0, 0, false
	}
	// Shrink ℓ' back as far as the cover and ⌈ℓa·ℓ'⌉₂ == P allow, to
	// minimize the SubMesh waste.
	lp = (lm + lpp - 1) / lpp
	if lo1 := int(P/2)/la + 1; lp < lo1 {
		lp = lo1
	}
	if lp > lpMax || lp*lpp < lm {
		lp = lpMax
	}
	return lp, lpp, true
}
