package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// This file is the guest-family side of the planner: PlanGuest routes a
// (family, shape) pair to the family's construction pipeline, reusing the
// mesh planner for strip bases.  Mesh guests go through the usual strategy
// pipelines; tori and cylinders through the Section 6 ring constructions
// (KindRing over a planned base mesh, with the cyclic Gray code and snake
// as the power-of-two shortcut and the fallback); trees through the inorder
// labeling (KindTree, dilation 2, always minimal).

// PlanGuest plans an embedding of the guest (f, s) in the caller's axis
// order with no memoization, the family analogue of PlanShape.  Sweeps
// should use Planner.PlanGuest, which adds the canonical-form cache.
func PlanGuest(f guest.Family, s mesh.Shape, opts Options) (*Plan, error) {
	if err := guest.Validate(f, s); err != nil {
		return nil, err
	}
	return planGuest(f, s, opts), nil
}

// planGuest dispatches a validated guest to its family pipeline.
func planGuest(f guest.Family, s mesh.Shape, opts Options) *Plan {
	switch f {
	case guest.Mesh:
		return newPlanContext(opts, nil, false).planTop(s)
	case guest.Torus:
		return planTorus(s, opts)
	case guest.Cylinder:
		return planCylinder(s, opts)
	case guest.Tree:
		return planTree(s)
	}
	panic(fmt.Sprintf("core: no planner for guest family %v", f))
}

// ringCand builds the KindRing candidate for one strip divisor, or nil when
// the construction cannot reach the minimal cube.  wrapped counts the
// wrapped axes (all of them for a torus, the last one for a cylinder); the
// base — the strip-column mesh, every wrapped axis divided by div — is
// planned fresh (PlanShape semantics) and built once to measure the
// dilation d the Section 6 bounds are stated in.
func ringCand(f guest.Family, s mesh.Shape, div int, opts Options) (*Plan, int) {
	k := s.Dims()
	wrapFrom := 0
	if f == guest.Cylinder {
		wrapFrom = k - 1
	}
	base := make(mesh.Shape, k)
	addedBits := 0
	perAxis := 1
	if div == 4 {
		perAxis = 2
	}
	for i, l := range s {
		if i >= wrapFrom {
			base[i] = (l + div - 1) / div
			addedBits += perAxis
		} else {
			base[i] = l
		}
	}
	if !ringMinimal(s, base, addedBits) {
		return nil, 0
	}
	basePlan := PlanShape(base, opts)
	if !basePlan.Minimal() {
		return nil, 0
	}
	d := basePlan.Build().Dilation()
	var bound int
	if div == 4 {
		bound = max(d, 2)
	} else {
		bound = d + 1
		allEven := true
		for i := wrapFrom; i < k; i++ {
			if s[i]%2 != 0 {
				allEven = false
			}
		}
		if allEven {
			bound = max(d, 1)
		}
	}
	return &Plan{Kind: KindRing, Family: f, Shape: s.Clone(), RingDiv: div,
		CubeDim: basePlan.CubeDim + addedBits, Dilation: bound, Method: 5,
		Child: basePlan}, bound
}

// ringMinimal reports whether the strip construction reaches the minimal
// cube: ⌈Πℓi⌉₂ == 2^addedBits · ⌈Π base⌉₂ (the side conditions of Lemmas 3
// and 4, generalized to an arbitrary set of wrapped axes).
func ringMinimal(s, base mesh.Shape, addedBits int) bool {
	var prod, bprod uint64 = 1, 1
	for _, l := range s {
		prod *= uint64(l)
	}
	for _, l := range base {
		bprod *= uint64(l)
	}
	return bits.CeilPow2(prod) == (uint64(1)<<uint(addedBits))*bits.CeilPow2(bprod)
}

// planRings runs the shared torus/cylinder candidate selection: quartering
// first, then halving, keeping the minimal candidate with the strictly
// lowest dilation bound; the snake fallback (valid and minimal, dilation
// measured) covers shapes neither construction reaches.
func planRings(f guest.Family, s mesh.Shape, opts Options) *Plan {
	var best *Plan
	bestBound := int(^uint(0) >> 1)
	for _, div := range []int{4, 2} {
		if cand, bound := ringCand(f, s, div, opts); cand != nil && bound < bestBound {
			best, bestBound = cand, bound
		}
	}
	if best != nil {
		return best
	}
	p := snakePlan(s)
	p.Family = f
	p.Method = 5
	return p
}

// planTorus reproduces the construction choice of the historical
// wrap.Embed: cyclic Gray code when every axis is a power of two, else the
// best of quartering/halving over a planned base mesh, else snake.
func planTorus(s mesh.Shape, opts Options) *Plan {
	allPow2 := true
	for _, l := range s {
		if !bits.IsPow2(uint64(l)) {
			allPow2 = false
			break
		}
	}
	if allPow2 {
		return &Plan{Kind: KindGray, Family: guest.Torus, Shape: s.Clone(),
			CubeDim: s.GrayCubeDim(), Dilation: 1, Method: 1}
	}
	return planRings(guest.Torus, s, opts)
}

// planCylinder embeds the path×…×path×cycle products: the Gray code is
// dilation one when the wrapped last axis has power-of-two length (the
// cyclic code closes the ring), so it wins whenever it is minimal; shapes
// of length ≤ 2 on the last axis are plain meshes and use the mesh
// pipeline; everything else goes through the last-axis ring constructions.
func planCylinder(s mesh.Shape, opts Options) *Plan {
	k := s.Dims()
	l := s[k-1]
	if l <= 2 {
		// The ring edge coincides with (or is) a mesh edge: plan as a mesh
		// and stamp the family.
		p := newPlanContext(opts, nil, false).planTop(s)
		p.Family = guest.Cylinder
		return p
	}
	if bits.IsPow2(uint64(l)) && s.GrayMinimal() {
		return &Plan{Kind: KindGray, Family: guest.Cylinder, Shape: s.Clone(),
			CubeDim: s.GrayCubeDim(), Dilation: 1, Method: 1}
	}
	return planRings(guest.Cylinder, s, opts)
}

// planTree plans the complete binary tree: the inorder labeling is always
// minimal with dilation 2 (1-node trees have no edges, hence dilation 0).
func planTree(s mesh.Shape) *Plan {
	d := 2
	if s[0] == 1 {
		d = 0
	}
	return &Plan{Kind: KindTree, Family: guest.Tree, Shape: s.Clone(),
		CubeDim: s.MinCubeDim(), Dilation: d, Method: 5}
}

// PlanGuest is the caching counterpart of the package-level PlanGuest: the
// family's canonical form (axis-sorted for mesh and torus, sorted prefix
// for the cylinder, identity for the tree) keys the shared plan cache, and
// the cached tree is mapped back to the caller's axis order.  It panics on
// invalid guests; TryPlanGuest returns the error instead.
func (pl *Planner) PlanGuest(f guest.Family, s mesh.Shape) *Plan {
	p, err := pl.TryPlanGuest(f, s)
	if err != nil {
		panic(err)
	}
	return p
}

// TryPlanGuest is PlanGuest returning guest-validation failures as errors,
// for callers planning untrusted input (the HTTP handlers and batch jobs).
func (pl *Planner) TryPlanGuest(f guest.Family, s mesh.Shape) (*Plan, error) {
	if err := guest.Validate(f, s); err != nil {
		return nil, err
	}
	if f == guest.Mesh {
		return pl.pc.planTop(s), nil
	}
	canon, axmap := guest.Get(f).Canonical(s)
	var key string
	if pl.pc.cache != nil {
		key = "g|" + f.String() + "|" + cacheKey(canon, 0, pl.pc.fp)
		if p, ok := pl.pc.cache.get(key); ok {
			return permutePlan(p, axmap), nil
		}
	}
	p := planGuest(f, canon, pl.Options())
	if pl.pc.cache != nil {
		pl.pc.cache.put(key, p)
	}
	return permutePlan(p, axmap), nil
}

// FamilyShapes lists every canonical guest shape of the family within the
// bounds, the family analogue of SortedShapes: the concatenation of
// FamilyShapesFrom over first = 1..maxAxis.
func FamilyShapes(f guest.Family, dims, maxAxis, maxNodes int) []mesh.Shape {
	var out []mesh.Shape
	for first := 1; first <= maxAxis; first++ {
		out = append(out, FamilyShapesFrom(f, first, dims, maxAxis, maxNodes)...)
	}
	return out
}

// FamilyShapesFrom lists the canonical guest shapes of the family whose
// first axis is exactly `first`, the family analogue of SortedShapesFrom
// (and identical to it for mesh and torus).  Cylinders keep their
// distinguished last axis free while the prefix stays sorted, so each
// cache-canonical class appears exactly once; trees are the single-axis
// shapes [2^h − 1], all emitted from the first == 1 chunk.  Concatenating
// first = 1..maxAxis enumerates every canonical shape within the bounds.
func FamilyShapesFrom(f guest.Family, first, dims, maxAxis, maxNodes int) []mesh.Shape {
	switch f {
	case guest.Mesh, guest.Torus:
		return SortedShapesFrom(first, dims, maxAxis, maxNodes)
	case guest.Cylinder:
		if dims == 1 {
			if first >= 1 && first <= maxAxis && first <= maxNodes {
				return []mesh.Shape{{first}}
			}
			return nil
		}
		var out []mesh.Shape
		for _, prefix := range SortedShapesFrom(first, dims-1, maxAxis, maxNodes) {
			nodes := prefix.Nodes()
			for l := 1; l <= maxAxis && nodes*l <= maxNodes; l++ {
				out = append(out, append(prefix.Clone(), l))
			}
		}
		return out
	case guest.Tree:
		if first != 1 {
			return nil
		}
		var out []mesh.Shape
		for n := 1; n <= maxAxis && n <= maxNodes; n = 2*n + 1 {
			out = append(out, mesh.Shape{n})
		}
		return out
	}
	panic(fmt.Sprintf("core: no shape enumeration for guest family %v", f))
}
