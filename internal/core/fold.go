package core

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/mesh"
)

// foldedShape returns the shape with axis `axis` (of length a·b) replaced
// by length a and a new trailing axis of length b.
func foldedShape(s mesh.Shape, axis, a, b int) mesh.Shape {
	out := make(mesh.Shape, len(s)+1)
	copy(out, s)
	out[axis] = a
	out[len(s)] = b
	return out
}

// unfold converts an embedding of the folded mesh back to the guest: guest
// coordinate y on the folded axis splits as y = q·b + j, with j reflected on
// odd strips q so strip seams coincide with folded-mesh edges.  Every guest
// edge maps to a folded-mesh edge, so dilation and congestion are inherited.
func unfold(fe *embed.Embedding, guest mesh.Shape, axis, a, b int) *embed.Embedding {
	fs := fe.Guest
	if fs.Dims() != guest.Dims()+1 || fs[axis] != a || fs[fs.Dims()-1] != b {
		panic(fmt.Sprintf("core: unfold shape mismatch: folded %v, guest %v (axis %d = %dx%d)",
			fs, guest, axis, a, b))
	}
	if a*b < guest[axis] {
		panic("core: fold factors do not cover the axis")
	}
	e := embed.New(guest, fe.N)
	gc := make([]int, guest.Dims())
	fc := make([]int, fs.Dims())
	for idx := range e.Map {
		guest.CoordInto(idx, gc)
		copy(fc, gc)
		q := gc[axis] / b
		j := gc[axis] % b
		if q&1 == 1 {
			j = b - 1 - j
		}
		fc[axis] = q
		fc[fs.Dims()-1] = j
		e.Map[idx] = fe.Map[fs.Index(fc)]
	}
	return e
}

// FoldStrategy factors one axis ℓ = a·b into two axes and plans the folded
// (k+1)-dimensional mesh; the guest is a subgraph of the folded mesh, so a
// dilation-d folded plan yields a dilation-d guest embedding in the same
// cube.  This lifts, e.g., 3x21 onto the 3x3x7 direct table — a case the
// paper's §3.3 toolset classifies as an exception.
type FoldStrategy struct{}

func (FoldStrategy) Name() string { return StrategyFold.String() }

func (FoldStrategy) Search(pc *planContext, s mesh.Shape, foldDepth int) *Plan {
	return pc.planByFolding(s, foldDepth)
}

func (pc *planContext) planByFolding(s mesh.Shape, depth int) *Plan {
	if depth > 0 {
		return nil // one fold per plan tree keeps the search bounded
	}
	target := s.MinCubeDim()
	var best *Plan
	for axis, l := range s {
		if l < 4 {
			continue
		}
		// Candidate strip counts a with widths b = ⌈ℓ/a⌉: exact divisors
		// fold without waste; covering folds (a·b > ℓ, prime lengths) pad
		// the strip, allowed as long as the minimal cube is preserved.
		seen := map[[2]int]bool{}
		var pairs [][2]int
		addPair := func(a, b int) {
			if a < 2 || b < 2 || seen[[2]int{a, b}] {
				return
			}
			seen[[2]int{a, b}] = true
			pairs = append(pairs, [2]int{a, b})
		}
		for x := 2; x*x <= l; x++ {
			y := (l + x - 1) / x
			addPair(x, y)
			addPair(y, x)
			if l%x == 0 {
				addPair(x, l/x)
				addPair(l/x, x)
			}
		}
		for _, pair := range pairs {
			fshape := foldedShape(s, axis, pair[0], pair[1])
			if fshape.MinCubeDim() != target {
				continue // padding overflowed the minimal cube
			}
			child := pc.planMinimalDepth(fshape, depth+1)
			if child == nil || child.CubeDim != target {
				continue
			}
			cand := &Plan{Kind: KindFold, Shape: s.Clone(), CubeDim: target,
				Dilation: child.Dilation, Child: child,
				FoldAxis: axis, FoldA: pair[0], FoldB: pair[1]}
			best = pc.better(best, cand)
			if best.Dilation <= 2 {
				return best
			}
		}
	}
	return best
}
