package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/mesh"
)

// CacheStats reports plan-cache counters.  Size counts cached entries,
// including negative entries (shapes no structured strategy can plan).
type CacheStats struct {
	Hits   uint64
	Misses uint64
	Size   uint64
}

// planCache memoizes planDispatch results keyed by canonical shape, fold
// context and options fingerprint.  Stored plans are never handed out
// directly — every lookup returns a deep copy via permutePlan — so entries
// stay immutable and safe to share across goroutines.
type planCache struct {
	mu     sync.RWMutex
	m      map[string]*Plan
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache() *planCache { return &planCache{m: make(map[string]*Plan)} }

func (c *planCache) get(key string) (*Plan, bool) {
	c.mu.RLock()
	p, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return p, ok
}

func (c *planCache) put(key string, p *Plan) {
	c.mu.Lock()
	c.m[key] = p
	c.mu.Unlock()
}

func (c *planCache) stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Size: uint64(n)}
}

// cacheKey builds the lookup key for a canonical shape.  Fold depth is
// clamped to one bit: strategies only distinguish "may still fold" from
// "fold already spent", so deeper recursion shares entries.
func cacheKey(canon mesh.Shape, foldDepth int, fp string) string {
	f := "|f0|"
	if foldDepth > 0 {
		f = "|f1|"
	}
	return canon.String() + f + fp
}

// CanonicalShape returns the axis-sorted (ascending, stable) copy of s and
// the axis map: axmap[j] is the position in s of canonical axis j.  It is
// the key function of the plan cache, exported so higher layers (the HTTP
// server's result cache) can share entries across axis permutations the way
// the planner does.
func CanonicalShape(s mesh.Shape) (mesh.Shape, []int) {
	return canonicalShape(s)
}

// canonicalShape returns the axis-sorted (ascending, stable) copy of s and
// the axis map: axmap[j] is the position in s of canonical axis j.
func canonicalShape(s mesh.Shape) (mesh.Shape, []int) {
	axmap := make([]int, len(s))
	for i := range axmap {
		axmap[i] = i
	}
	sort.SliceStable(axmap, func(a, b int) bool { return s[axmap[a]] < s[axmap[b]] })
	canon := make(mesh.Shape, len(s))
	for j, i := range axmap {
		canon[j] = s[i]
	}
	return canon, axmap
}

// permuteShape sends canonical axis j back to original position axmap[j].
// Axes beyond len(axmap) — appended by folding below the canonicalization
// point — keep their positions.
func permuteShape(s mesh.Shape, axmap []int) mesh.Shape {
	out := make(mesh.Shape, len(s))
	for j, l := range s {
		if j < len(axmap) {
			out[axmap[j]] = l
		} else {
			out[j] = l
		}
	}
	return out
}

// permutePlan deep-copies a plan tree, remapping every node's axes from
// canonical back to original order.  It always copies, even for the
// identity map, so cached trees are never aliased by callers.
func permutePlan(p *Plan, axmap []int) *Plan {
	if p == nil {
		return nil
	}
	out := *p
	out.Shape = permuteShape(p.Shape, axmap)
	if p.Super != nil {
		out.Super = permuteShape(p.Super, axmap)
	}
	if p.FoldAxis < len(axmap) {
		out.FoldAxis = axmap[p.FoldAxis]
	}
	if len(p.Factors) > 0 {
		out.Factors = make([]*Plan, len(p.Factors))
		for i, f := range p.Factors {
			out.Factors[i] = permutePlan(f, axmap)
		}
	}
	out.Child = permutePlan(p.Child, axmap)
	if p.solved != nil {
		out.solved = permuteEmbedding(p.solved, axmap)
	}
	return &out
}

// permuteEmbedding rebuilds a solver embedding for the axis-permuted guest:
// node maps transfer through the coordinate relabeling, and pinned paths
// are re-realized deterministically on the permuted edge order.
func permuteEmbedding(e *embed.Embedding, axmap []int) *embed.Embedding {
	ns := permuteShape(e.Guest, axmap)
	out := embed.New(ns, e.N)
	out.Family = e.Family
	out.AllowLongPaths = e.AllowLongPaths
	k := ns.Dims()
	oc := make([]int, k)
	nc := make([]int, k)
	for idx := range out.Map {
		ns.CoordInto(idx, nc)
		for j := 0; j < k; j++ {
			pos := j
			if j < len(axmap) {
				pos = axmap[j]
			}
			oc[j] = nc[pos]
		}
		out.Map[idx] = e.Map[e.Guest.Index(oc)]
	}
	if e.Paths != nil {
		out.RealizeMinCongestion()
	}
	return out
}

// planCanonical plans via the canonical axis order, consulting the cache
// when one is attached, and maps the result back to the caller's order.
func (pc *planContext) planCanonical(s mesh.Shape, foldDepth int) *Plan {
	canon, axmap := canonicalShape(s)
	var key string
	if pc.cache != nil {
		key = cacheKey(canon, foldDepth, pc.fp)
		if p, ok := pc.cache.get(key); ok {
			return permutePlan(p, axmap)
		}
	}
	p := pc.planDispatch(canon, foldDepth)
	if pc.cache != nil {
		pc.cache.put(key, p)
	}
	return permutePlan(p, axmap)
}

// Planner runs the strategy pipelines through a canonical-shape plan cache:
// axes are sorted before searching, so all permutations of a shape — and
// every recursive sub-shape the strategies revisit during sweeps — share
// one cache entry.  A Planner is immutable after construction and safe for
// concurrent use.
//
// Unlike PlanShape, a Planner plans in canonical axis order even when the
// cache is bypassed (NewUncachedPlanner), so cached and uncached planning
// agree exactly.
type Planner struct {
	pc *planContext
}

// NewPlanner returns a caching planner with the given options.
func NewPlanner(opts Options) *Planner {
	return &Planner{pc: newPlanContext(opts, newPlanCache(), true)}
}

// NewUncachedPlanner returns a planner with the cache disabled but the
// canonicalization identical to NewPlanner — the reference for cache
// equivalence tests and benchmarks.
func NewUncachedPlanner(opts Options) *Planner {
	return &Planner{pc: newPlanContext(opts, nil, true)}
}

// Plan returns a minimal-expansion plan for the shape (see PlanShape).
// The returned tree is exclusively the caller's: cached state is never
// aliased.
func (pl *Planner) Plan(s mesh.Shape) *Plan {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return pl.pc.planTop(s)
}

// TryPlan is Plan returning shape-validation failures as errors instead of
// panicking, for callers planning untrusted input (the HTTP handlers).
func (pl *Planner) TryPlan(s mesh.Shape) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return pl.pc.planTop(s), nil
}

// CacheStats returns the cache counters (zero values when uncached).
func (pl *Planner) CacheStats() CacheStats {
	if pl.pc.cache == nil {
		return CacheStats{}
	}
	return pl.pc.cache.stats()
}

// Options returns the planner's options (with Cost resolved to the model
// actually in use).
func (pl *Planner) Options() Options {
	o := pl.pc.opts
	o.Cost = pl.pc.cost
	return o
}

// Fingerprint returns the option fingerprint (solver budget, solver seed,
// cost model) that keys this planner's cache entries.  Plan-census
// artifacts are stamped with it so a server can refuse to serve records
// computed under different planner options.
func (pl *Planner) Fingerprint() string { return pl.pc.fp }
