package core

import (
	"repro/internal/bounds"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// PlanCertificate evaluates a plan against the certified lower bounds at
// its cube, before anything is built: it returns the bounds, the gap of
// the plan's a-priori dilation bound over the floor (−1 when the plan
// carries no bound — the snake fallback), and whether the plan provably
// achieves the floor.
//
// The optimality claim is sound without routing: the construction
// guarantees measured dilation ≤ p.Dilation, and every one-to-one
// embedding satisfies measured dilation ≥ the floor, so a plan whose
// bound equals the floor achieves it exactly.
func PlanCertificate(f guest.Family, s mesh.Shape, p *Plan) (b bounds.Bounds, gap int, optimal bool) {
	b = bounds.For(f, s, p.CubeDim)
	if b.Dilation == 0 {
		// Edgeless guest: every metric measures zero, so any embedding is
		// trivially optimal whatever bound the construction quotes.
		return b, 0, true
	}
	if p.Dilation == DilationUnknown {
		return b, -1, false
	}
	gap = p.Dilation - b.Dilation
	return b, gap, gap == 0
}
