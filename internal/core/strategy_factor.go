package core

import (
	"repro/internal/bits"
	"repro/internal/direct"
	"repro/internal/mesh"
)

// FactorStrategy decomposes s = t ∘ r where t matches a direct table and
// the residual r is planned recursively (Gray, deeper factoring, or the
// solver) — the paper's method 3 generalized to richer decompositions.
type FactorStrategy struct{}

func (FactorStrategy) Name() string { return StrategyFactor.String() }

func (FactorStrategy) Search(pc *planContext, s mesh.Shape, _ int) *Plan {
	return pc.planByFactoring(s, 0)
}

// planByFactoring searches decompositions s = t ∘ r where t matches a
// direct table and r is planned recursively.  depth caps the recursion.
func (pc *planContext) planByFactoring(s mesh.Shape, depth int) *Plan {
	if depth > 3 {
		return nil
	}
	target := s.MinCubeDim()
	var best *Plan
	k := s.Dims()
	for _, tab := range direct.Tables {
		// The table's axes of length > 1, to be injected into s's axes.
		var tl []int
		for _, l := range tab.Shape {
			if l > 1 {
				tl = append(tl, l)
			}
		}
		perms := axisInjections(tab.Shape, s)
		for _, axes := range perms {
			residual := s.Clone()
			tshape := shapeWithAxes(k, axes, tl)
			ok := true
			for i := range s {
				if s[i]%tshape[i] != 0 {
					ok = false
					break
				}
				residual[i] = s[i] / tshape[i]
			}
			if !ok {
				continue
			}
			tdim := tab.Shape.MinCubeDim()
			rdim := target - tdim
			if rdim < 0 || bits.CeilLog2(uint64(residual.Nodes())) > rdim {
				continue // residual cannot fit the remaining dimensions
			}
			var rplan *Plan
			if residual.GrayCubeDim() == rdim {
				rplan = &Plan{Kind: KindGray, Shape: residual, CubeDim: rdim, Dilation: 1}
			} else if residual.MinCubeDim() == rdim {
				rplan = pc.planByFactoring(residual, depth+1)
				if rplan == nil {
					if p := pc.planBySolver(residual); p != nil && p.CubeDim == rdim {
						rplan = p
					}
				}
			}
			if rplan == nil || rplan.CubeDim != rdim {
				continue
			}
			dplan := &Plan{Kind: KindDirect, Shape: tshape, CubeDim: tdim, Dilation: tab.Dilation}
			prod := &Plan{
				Kind: KindProduct, Shape: s.Clone(), CubeDim: target,
				Dilation: max(dplan.Dilation, rplan.Dilation),
				Factors:  []*Plan{dplan, rplan},
			}
			best = pc.better(best, prod)
		}
	}
	return best
}

// axisInjections lists the ways to assign the axes of t (all of length >1)
// to distinct axes of s.  Axes of t equal to 1 are dropped.
func axisInjections(t, s mesh.Shape) [][]int {
	var tl []int
	for _, l := range t {
		if l > 1 {
			tl = append(tl, l)
		}
	}
	var out [][]int
	used := make([]bool, s.Dims())
	cur := make([]int, len(tl))
	var rec func(i int)
	rec = func(i int) {
		if i == len(tl) {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for j := 0; j < s.Dims(); j++ {
			if !used[j] && s[j]%tl[i] == 0 {
				used[j] = true
				cur[i] = j
				rec(i + 1)
				used[j] = false
			}
		}
	}
	rec(0)
	// Re-express lengths: caller zips axes with t's >1 lengths.
	return out
}

// ExtendStrategy grows one axis of s while ⌈|V|⌉₂ is unchanged, plans the
// grown shape (Gray, direct, or factoring), and restricts to the guest via
// a SubMesh node — the paper's extension step.
type ExtendStrategy struct{}

func (ExtendStrategy) Name() string { return StrategyExtend.String() }

func (ExtendStrategy) Search(pc *planContext, s mesh.Shape, _ int) *Plan {
	return pc.planByExtension(s)
}

// planByExtension grows one axis of s while ⌈|V|⌉₂ is unchanged and plans
// the grown shape by factoring; the result is wrapped in a SubMesh node.
func (pc *planContext) planByExtension(s mesh.Shape) *Plan {
	target := s.MinCubeDim()
	total := uint64(1) << uint(target)
	var best *Plan
	for i := range s {
		rest := 1
		for j := range s {
			if j != i {
				rest *= s[j]
			}
		}
		maxLen := int(total) / rest
		for l := s[i] + 1; l <= maxLen; l++ {
			grown := s.Clone()
			grown[i] = l
			if grown.MinCubeDim() != target {
				break
			}
			if grown.GrayMinimal() {
				child := &Plan{Kind: KindGray, Shape: grown, CubeDim: target, Dilation: 1}
				sub := &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: 1, Super: grown, Child: child}
				best = pc.better(best, sub)
				continue
			}
			if _, _, ok := direct.Lookup(grown); ok {
				child := &Plan{Kind: KindDirect, Shape: grown, CubeDim: target, Dilation: 2}
				sub := &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: 2, Super: grown, Child: child}
				best = pc.better(best, sub)
				continue
			}
			if p := pc.planByFactoring(grown, 1); p != nil && p.CubeDim == target {
				sub := &Plan{Kind: KindSubMesh, Shape: s.Clone(), CubeDim: target,
					Dilation: p.Dilation, Super: grown, Child: p}
				best = pc.better(best, sub)
			}
		}
	}
	return best
}
