package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mesh"
)

// permutationsOf enumerates all axis orders of 0..k-1.
func permutationsOf(k int) [][]int {
	var out [][]int
	perm := make([]int, k)
	used := make([]bool, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for j := 0; j < k; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i + 1)
				used[j] = false
			}
		}
	}
	rec(0)
	return out
}

func allDistinct(s mesh.Shape) bool {
	seen := map[int]bool{}
	for _, l := range s {
		if seen[l] {
			return false
		}
		seen[l] = true
	}
	return true
}

// TestPlannerDeterministic: planning the same shape twice — in the same
// planner and in a fresh one — yields identical plan trees.
func TestPlannerDeterministic(t *testing.T) {
	shapes := []mesh.Shape{{12, 20}, {3, 21}, {5, 6, 7}, {21, 9, 5}, {6, 11, 7},
		{5, 5, 5}, {2, 3, 4, 5}, {13, 17}}
	for _, s := range shapes {
		pl := NewPlanner(DefaultOptions)
		first := pl.Plan(s)
		again := pl.Plan(s)
		fresh := NewPlanner(DefaultOptions).Plan(s)
		for _, p := range []*Plan{again, fresh} {
			if p.String() != first.String() || p.Dilation != first.Dilation ||
				p.Method != first.Method || p.CubeDim != first.CubeDim {
				t.Errorf("%v: replanning diverged: %s (dil %d) vs %s (dil %d)",
					s, first, first.Dilation, p, p.Dilation)
			}
		}
	}
}

// TestPlannerPermutationInvariant: planning under permuted axis order gives
// the axis-permuted plan tree.  For shapes with all-distinct axis lengths
// the permuted tree must match permutePlan of the base plan exactly; for
// any shape, structural invariants and measured metrics must agree.
func TestPlannerPermutationInvariant(t *testing.T) {
	shapes := []mesh.Shape{{12, 20}, {3, 21}, {5, 6, 7}, {21, 9, 5}, {5, 5, 10}, {2, 3, 4}}
	for _, s := range shapes {
		base := NewPlanner(DefaultOptions).Plan(s)
		baseMetrics := base.Build().Measure()
		for _, perm := range permutationsOf(len(s)) {
			ps := make(mesh.Shape, len(s))
			axmap := make([]int, len(s)) // s-axis j sits at ps position axmap[j]
			for i, j := range perm {
				ps[i] = s[j]
				axmap[j] = i
			}
			got := NewPlanner(DefaultOptions).Plan(ps)
			if got.Dilation != base.Dilation || got.CubeDim != base.CubeDim ||
				got.Kind != base.Kind || got.Method != base.Method {
				t.Errorf("%v perm %v: invariants diverged: got %s (dil %d, method %d), base %s (dil %d, method %d)",
					s, perm, got, got.Dilation, got.Method, base, base.Dilation, base.Method)
				continue
			}
			if allDistinct(s) {
				want := permutePlan(base, axmap)
				want.Method = base.Method
				if got.String() != want.String() {
					t.Errorf("%v perm %v: plan tree %s, want permuted %s", s, perm, got, want)
				}
			}
			e := got.Build()
			if err := e.Verify(); err != nil {
				t.Fatalf("%v perm %v: invalid embedding: %v", s, perm, err)
			}
			// Fine-grained path metrics (congestion, average dilation) may
			// legitimately vary with which table axis a guest axis lands
			// on; the construction guarantees are what must be invariant.
			m := e.Measure()
			if m.CubeDim != baseMetrics.CubeDim || m.Minimal != baseMetrics.Minimal {
				t.Errorf("%v perm %v: cube diverged: %+v vs %+v", s, perm, m, baseMetrics)
			}
			if got.Dilation != DilationUnknown && m.Dilation > got.Dilation {
				t.Errorf("%v perm %v: measured dilation %d exceeds promised %d",
					s, perm, m.Dilation, got.Dilation)
			}
		}
	}
}

// TestCachedMatchesUncachedQuick: property test that cached and
// cache-bypassed planning agree on the plan tree and produce
// metric-identical embeddings across random shapes.
func TestCachedMatchesUncachedQuick(t *testing.T) {
	cached := NewPlanner(DefaultOptions)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := r.Intn(4) + 1
		s := make(mesh.Shape, dims)
		nodes := 1
		for i := range s {
			s[i] = r.Intn(12) + 1
			nodes *= s[i]
		}
		if nodes > 1500 {
			return true // keep the property cheap
		}
		pc := cached.Plan(s)
		pu := NewUncachedPlanner(DefaultOptions).Plan(s)
		if pc.String() != pu.String() || pc.Dilation != pu.Dilation || pc.Method != pu.Method {
			t.Logf("%v: cached %s (dil %d) vs uncached %s (dil %d)",
				s, pc, pc.Dilation, pu, pu.Dilation)
			return false
		}
		ec, eu := pc.Build(), pu.Build()
		if ec.Verify() != nil || eu.Verify() != nil {
			return false
		}
		mc, mu := ec.Measure(), eu.Measure()
		if mc != mu {
			t.Logf("%v: metrics %+v vs %+v", s, mc, mu)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPlannerConcurrentShared drives one shared Planner from many
// goroutines over overlapping shape sets (exercised under -race by the
// Makefile's check target) and cross-checks every plan against a serial
// uncached reference.
func TestPlannerConcurrentShared(t *testing.T) {
	shapes := []mesh.Shape{
		{3, 5}, {5, 3}, {5, 6}, {6, 5}, {12, 20}, {20, 12}, {3, 21}, {21, 3},
		{5, 6, 7}, {7, 6, 5}, {3, 3, 7}, {7, 3, 3}, {2, 3, 4, 5}, {5, 4, 3, 2},
	}
	reference := make(map[string]string, len(shapes))
	for _, s := range shapes {
		reference[s.String()] = NewUncachedPlanner(DefaultOptions).Plan(s).String()
	}
	pl := NewPlanner(DefaultOptions)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range shapes {
				s := shapes[(i+g)%len(shapes)]
				p := pl.Plan(s)
				if got, want := p.String(), reference[s.String()]; got != want {
					t.Errorf("goroutine %d: %v planned %s, want %s", g, s, got, want)
				}
				if err := p.Build().Verify(); err != nil {
					t.Errorf("goroutine %d: %v: %v", g, s, err)
				}
			}
		}(g)
	}
	wg.Wait()
	st := pl.CacheStats()
	if st.Size == 0 || st.Hits == 0 {
		t.Errorf("shared planner cache unused: %+v", st)
	}
}

// TestCacheCounters: permuted replans are pure cache hits.
func TestCacheCounters(t *testing.T) {
	pl := NewPlanner(DefaultOptions)
	if st := pl.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("fresh planner has counters: %+v", st)
	}
	pl.Plan(mesh.Shape{5, 6, 7})
	st1 := pl.CacheStats()
	if st1.Misses == 0 || st1.Size == 0 {
		t.Fatalf("first plan should miss and populate: %+v", st1)
	}
	pl.Plan(mesh.Shape{7, 6, 5})
	st2 := pl.CacheStats()
	if st2.Hits == 0 {
		t.Errorf("permuted replan should hit: %+v", st2)
	}
	if st2.Misses != st1.Misses || st2.Size != st1.Size {
		t.Errorf("permuted replan should add no entries: %+v -> %+v", st1, st2)
	}
	if uncached := NewUncachedPlanner(DefaultOptions); uncached.CacheStats() != (CacheStats{}) {
		t.Error("uncached planner reports cache state")
	}
}

// highDilationCost inverts the dilation preference — a deliberately bad
// model proving Options.Cost actually steers selection while plans stay
// valid and minimal.
type highDilationCost struct{}

func (highDilationCost) Name() string { return "high-dilation" }
func (highDilationCost) Compare(a, b *Plan) int {
	if a.CubeDim != b.CubeDim {
		return a.CubeDim - b.CubeDim
	}
	return b.Dilation - a.Dilation
}

func TestCostModelInjectable(t *testing.T) {
	opts := DefaultOptions
	opts.Cost = highDilationCost{}
	for _, s := range []mesh.Shape{{12, 20}, {5, 6, 7}, {3, 21}} {
		p := PlanShape(s, opts)
		if !p.Minimal() {
			t.Errorf("%v: custom cost model broke minimality", s)
		}
		if err := p.Build().Verify(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
		pl := NewPlanner(opts)
		if q := pl.Plan(s); !q.Minimal() {
			t.Errorf("%v: planner with custom cost model broke minimality", s)
		}
	}
	// A reordered lexicographic model is also accepted.
	opts.Cost = NewLexCost(CostExpansion, CostDilation, CostDepth, CostFactors, CostCongestion)
	if p := PlanShape(mesh.Shape{5, 6, 7}, opts); p.Dilation > 2 {
		t.Errorf("reordered lex model lost the dilation-2 plan: %s", p)
	}
}

// TestCostModelTotalOrder: better() is a strict total order — antisymmetric
// on distinct plans regardless of argument order.
func TestCostModelTotalOrder(t *testing.T) {
	pc := newPlanContext(DefaultOptions, nil, false)
	var plans []*Plan
	for _, s := range []mesh.Shape{{12, 20}, {5, 6}, {3, 21}, {7, 9}} {
		plans = append(plans, PlanShape(s, DefaultOptions))
	}
	for _, a := range plans {
		for _, b := range plans {
			ab, ba := pc.better(a, b), pc.better(b, a)
			if a.String() != b.String() && ab != ba {
				t.Errorf("better not antisymmetric on %s vs %s", a, b)
			}
		}
	}
}

func TestRegistryStrategyNames(t *testing.T) {
	names := NewDefaultRegistry().StrategyNames()
	want := map[string]bool{"direct": true, "factor": true, "extend": true,
		"split2d": true, "fold": true, "solver": true, "pair+gray": true,
		"split3d": true, "highdim": true}
	got := map[string]bool{}
	for _, n := range names {
		if got[n] {
			t.Errorf("duplicate strategy name %q", n)
		}
		got[n] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("registry missing strategy %q (have %v)", n, names)
		}
	}
}

// TestCanonicalShape: axmap round-trips shapes through permuteShape.
func TestCanonicalShape(t *testing.T) {
	for _, s := range []mesh.Shape{{5, 3}, {7, 9, 2}, {5, 5, 10}, {1, 4, 1, 3}} {
		canon, axmap := canonicalShape(s)
		for j := 1; j < len(canon); j++ {
			if canon[j-1] > canon[j] {
				t.Fatalf("%v: canonical %v not sorted", s, canon)
			}
		}
		if back := permuteShape(canon, axmap); !back.Equal(s) {
			t.Errorf("%v: permuteShape(canonicalShape) = %v", s, back)
		}
	}
}
