package core

import (
	"repro/internal/mesh"
)

// SortedShapes lists every shape with dims axes, 1 ≤ a₁ ≤ … ≤ a_k ≤ maxAxis
// and at most maxNodes nodes, in lexicographic order.  It is the enumeration
// behind `embedctl sweep` and the plansweep batch job; both shard it with
// SortedShapesFrom so a fixed first axis is one deterministic unit of work.
func SortedShapes(dims, maxAxis, maxNodes int) []mesh.Shape {
	var out []mesh.Shape
	for first := 1; first <= maxAxis; first++ {
		out = append(out, SortedShapesFrom(first, dims, maxAxis, maxNodes)...)
	}
	return out
}

// SortedShapesFrom lists the SortedShapes slice whose first axis is exactly
// `first`, in lexicographic order.  Concatenating first = 1..maxAxis
// reproduces SortedShapes exactly, which is what makes a first-axis chunking
// of the sweep resume-safe: the record stream is independent of how the
// enumeration was cut.
func SortedShapesFrom(first, dims, maxAxis, maxNodes int) []mesh.Shape {
	if dims < 1 || first < 1 || first > maxAxis || first > maxNodes {
		return nil
	}
	var out []mesh.Shape
	cur := make(mesh.Shape, dims)
	cur[0] = first
	var rec func(i, lo, nodes int)
	rec = func(i, lo, nodes int) {
		if i == dims {
			out = append(out, cur.Clone())
			return
		}
		for l := lo; l <= maxAxis; l++ {
			if nodes*l > maxNodes {
				break
			}
			cur[i] = l
			rec(i+1, l, nodes*l)
		}
	}
	rec(1, first, first)
	return out
}
