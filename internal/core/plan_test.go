package core

import (
	"testing"

	"repro/internal/mesh"
)

// buildAndCheck plans the shape, builds it, verifies, and returns measured
// metrics via the embedding.
func buildAndCheck(t *testing.T, s mesh.Shape) (*Plan, int) {
	t.Helper()
	p := PlanShape(s, DefaultOptions)
	if !p.Shape.Equal(s) {
		t.Fatalf("%v: plan shape %v", s, p.Shape)
	}
	if !p.Minimal() {
		t.Fatalf("%v: plan not minimal expansion (cube %d, want %d): %s",
			s, p.CubeDim, s.MinCubeDim(), p)
	}
	e := p.Build()
	if err := e.Verify(); err != nil {
		t.Fatalf("%v: %v (plan %s)", s, err, p)
	}
	d := e.Dilation()
	if p.Dilation != DilationUnknown && d > p.Dilation {
		t.Fatalf("%v: measured dilation %d exceeds guaranteed %d (plan %s)",
			s, d, p.Dilation, p)
	}
	return p, d
}

func TestPlanGrayMinimal(t *testing.T) {
	p, d := buildAndCheck(t, mesh.Shape{4, 8, 16})
	if p.Method != 1 || d != 1 {
		t.Errorf("plan %s method %d dilation %d", p, p.Method, d)
	}
	// 3x4 is Gray-minimal despite the odd axis.
	p, d = buildAndCheck(t, mesh.Shape{3, 4})
	if p.Method != 1 || d != 1 {
		t.Errorf("plan %s method %d dilation %d", p, p.Method, d)
	}
}

func TestPlanDirectTables(t *testing.T) {
	for _, s := range []mesh.Shape{{3, 5}, {7, 9}, {11, 11}, {3, 3, 3}, {3, 3, 7}} {
		p, d := buildAndCheck(t, s)
		if d > 2 {
			t.Errorf("%v: dilation %d (plan %s)", s, d, p)
		}
	}
}

func TestPlan12x20(t *testing.T) {
	// §4.2: 12x20 reduces to (3x5) ⊗ (4x4).
	p, d := buildAndCheck(t, mesh.Shape{12, 20})
	if d > 2 {
		t.Errorf("dilation %d (plan %s)", d, p)
	}
	if p.Kind != KindProduct {
		t.Errorf("expected product plan, got %s", p)
	}
}

func TestPlan3x25x3(t *testing.T) {
	// §4.2: 3x25x3 reduces to two 3x5 meshes.
	p, d := buildAndCheck(t, mesh.Shape{3, 25, 3})
	if d > 2 {
		t.Errorf("dilation %d (plan %s)", d, p)
	}
}

func TestPlan21x9x5(t *testing.T) {
	// §5: 21x9x5 = (7x9x1) ⊗ (3x1x5), minimal expansion, dilation two.
	p, d := buildAndCheck(t, mesh.Shape{21, 9, 5})
	if d > 2 {
		t.Errorf("dilation %d (plan %s)", d, p)
	}
}

func TestPlan3x3x23Extension(t *testing.T) {
	// §4.2 strategy step 3: 3x3x23 extends to 3x3x25 = (3x1x5) ⊗ (1x3x5).
	p, d := buildAndCheck(t, mesh.Shape{3, 3, 23})
	if d > 2 {
		t.Errorf("dilation %d (plan %s)", d, p)
	}
}

func TestPlan5x6x7(t *testing.T) {
	// §5: 5x6x7 picks the 5x6 pair (smallest ℓ/⌈ℓ⌉₂) + Gray on 7.
	// ⌈30⌉₂·⌈7⌉₂ = 32·8 = 256 = ⌈210⌉₂: minimal.
	p, d := buildAndCheck(t, mesh.Shape{5, 6, 7})
	if p.Method != 2 {
		t.Errorf("method %d, want 2 (plan %s)", p.Method, p)
	}
	_ = d // dilation depends on the 2D engine for 5x6 (solver/snake)
}

func TestPlan5x10x11(t *testing.T) {
	// §5: more than one relative expansion may be one.
	p, _ := buildAndCheck(t, mesh.Shape{5, 10, 11})
	if p.Method == 0 || p.Method > 4 {
		t.Errorf("method %d (plan %s)", p.Method, p)
	}
}

func TestPlan6x11x7NoPairWorks(t *testing.T) {
	// §5: 6x11x7 has no relative expansion one via pairs:
	// ⌈66⌉₂⌈7⌉₂=1024, ⌈77⌉₂⌈6⌉₂=1024, ⌈42⌉₂⌈11⌉₂=1024, ⌈462⌉₂=512.
	s := mesh.Shape{6, 11, 7}
	p := PlanShape(s, DefaultOptions)
	if !p.Minimal() {
		t.Fatalf("plan not minimal: %s", p)
	}
	if p.Method == 2 && p.Kind == KindProduct && len(p.Factors) == 2 {
		// method 2 must not claim a pair+gray here; methods 3/4/5 only
		for _, f := range p.Factors {
			if f.Kind == KindGray && f.Shape.Nodes() > 1 {
				active := 0
				for _, l := range f.Shape {
					if l > 1 {
						active++
					}
				}
				if active == 1 {
					t.Errorf("pair+gray plan should be impossible for 6x11x7: %s", p)
				}
			}
		}
	}
	e := p.Build()
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPlan12x16x20x32HighDim(t *testing.T) {
	// §4.2 step 1: power-of-two axes (16, 32) split off by Gray code,
	// leaving 12x20 = (3x5) ⊗ (4x4).
	p, d := buildAndCheck(t, mesh.Shape{12, 16, 20, 32})
	if d > 2 {
		t.Errorf("dilation %d (plan %s)", d, p)
	}
}

func TestPlanSnakeFallbackIsValid(t *testing.T) {
	// 5x5x5 has no known dilation-2 minimal-expansion embedding (§5);
	// the planner must still produce a valid minimal-expansion embedding.
	s := mesh.Shape{5, 5, 5}
	p := PlanShape(s, DefaultOptions)
	if !p.Minimal() {
		t.Fatalf("not minimal: %s", p)
	}
	e := p.Build()
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	t.Logf("5x5x5 plan %s: measured dilation %d", p, e.Dilation())
}

func TestSnakeEmbeddingProperties(t *testing.T) {
	for _, s := range []mesh.Shape{{5}, {3, 7}, {5, 5, 5}, {2, 3, 4, 5}} {
		e := Snake(s)
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !e.Minimal() {
			t.Errorf("%v: snake not minimal", s)
		}
	}
}

func TestSnakeOrderIsHamiltonianPath(t *testing.T) {
	s := mesh.Shape{3, 4, 5}
	order := SnakeOrder(s)
	seen := make([]bool, s.Nodes())
	for i, g := range order {
		if seen[g] {
			t.Fatalf("duplicate at %d", i)
		}
		seen[g] = true
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := PlanShape(mesh.Shape{12, 20}, DefaultOptions)
	str := p.String()
	if str == "" {
		t.Error("empty plan string")
	}
	t.Logf("12x20 plan: %s", str)
}

func TestPlanLargeShapesFast(t *testing.T) {
	// Planner must stay fast on large shapes (used in sweeps).
	for _, s := range []mesh.Shape{{511, 512, 509}, {100, 200, 300}, {333, 222, 111}} {
		p := PlanShape(s, Options{}) // no solver
		if !p.Minimal() {
			t.Errorf("%v: not minimal", s)
		}
	}
}

func TestPlanMethodOrderMatchesPaper(t *testing.T) {
	// Method indices must be populated for reporting.
	cases := []struct {
		s          mesh.Shape
		wantMethod int
	}{
		{mesh.Shape{8, 8, 8}, 1},
		{mesh.Shape{5, 6, 7}, 2},
	}
	for _, c := range cases {
		p := PlanShape(c.s, DefaultOptions)
		if p.Method != c.wantMethod {
			t.Errorf("%v: method %d, want %d (plan %s)", c.s, p.Method, c.wantMethod, p)
		}
	}
}

func BenchmarkPlan3D(b *testing.B) {
	shapes := []mesh.Shape{{5, 6, 7}, {21, 9, 5}, {3, 3, 23}, {100, 200, 300}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PlanShape(shapes[i%len(shapes)], Options{})
	}
}

func BenchmarkPlanAndBuild21x9x5(b *testing.B) {
	s := mesh.Shape{21, 9, 5}
	for i := 0; i < b.N; i++ {
		p := PlanShape(s, Options{})
		e := p.Build()
		_ = e.Dilation()
	}
}
