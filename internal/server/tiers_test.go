package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/jobs"
	"repro/internal/mesh"
	"repro/pkg/api"
)

// buildArtifact builds a mesh plan-census artifact for the given domain
// under the default planner options and returns it loaded.
func buildArtifact(t testing.TB, dims, maxAxis int) *artifact.Artifact {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plans.art")
	pl := core.NewPlanner(core.DefaultOptions)
	b, err := artifact.NewBuilder(path, "mesh", dims, maxAxis, pl.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= maxAxis; c++ {
		artifact.EachShapeWithMax(dims, c, func(s mesh.Shape) {
			if err := b.Add(s, pl.Plan(s)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	a, err := artifact.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func planResponse(t *testing.T, h http.Handler, body string) (int, PlanResponse) {
	t.Helper()
	rec, _ := post(t, h, "/v1/plan", body)
	var resp PlanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return rec.Code, resp
}

// TestPlanTierClosedForm: shapes the classifier proves are served with
// source "closed_form", identically to the planner, and land in L0 like any
// other result.
func TestPlanTierClosedForm(t *testing.T) {
	h := New(Config{}).Handler()
	pl := core.NewPlanner(core.DefaultOptions)
	cases := []struct {
		body   string
		family guest.Family
		shape  mesh.Shape
	}{
		{`{"shape":"4x8x16"}`, guest.Mesh, mesh.Shape{4, 8, 16}},
		{`{"shape":"2x3x11"}`, guest.Mesh, mesh.Shape{2, 3, 11}}, // 66 of 2·4·16=128=⌈66⌉₂: Gray-minimal, not pow2
		{`{"shape":"4x4x8","family":"torus"}`, guest.Torus, mesh.Shape{4, 4, 8}},
		{`{"shape":"15","family":"tree"}`, guest.Tree, mesh.Shape{15}},
	}
	for _, tc := range cases {
		code, resp := planResponse(t, h, tc.body)
		if code != http.StatusOK || resp.Source != "closed_form" {
			t.Fatalf("%s: code %d source %q", tc.body, code, resp.Source)
		}
		p, err := pl.TryPlanGuest(tc.family, tc.shape)
		if err != nil {
			t.Fatal(err)
		}
		dil := p.Dilation
		if dil == core.DilationUnknown {
			dil = -1
		}
		if resp.Plan != p.String() || resp.Method != p.Method || resp.CubeDim != p.CubeDim || resp.DilationBound != dil {
			t.Fatalf("%s: served %+v, planner says %v (method %d cube %d dil %d)",
				tc.body, resp, p, p.Method, p.CubeDim, dil)
		}
		code, resp = planResponse(t, h, tc.body)
		if code != http.StatusOK || resp.Source != "cache" {
			t.Fatalf("%s repeat: code %d source %q, want cache", tc.body, code, resp.Source)
		}
	}
}

// TestPlanTierArtifact: an attached artifact answers canonical in-domain
// shapes the classifier declines, with a response identical (modulo the
// source field) to the computed one; permuted and out-of-domain shapes fall
// through to the planner.
func TestPlanTierArtifact(t *testing.T) {
	const dims, maxAxis = 3, 12
	s := New(Config{})
	if err := s.AttachArtifact(buildArtifact(t, dims, maxAxis)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	plain := New(Config{}).Handler() // no artifact: the computed baseline

	// 5x6x7 is in-domain and not Gray-minimal (210 of 512), so it must be
	// served by the artifact tier, byte-identical to the computed plan.
	code, got := planResponse(t, h, `{"shape":"5x6x7"}`)
	if code != http.StatusOK || got.Source != "artifact" {
		t.Fatalf("artifact plan: code %d source %q", code, got.Source)
	}
	code, want := planResponse(t, plain, `{"shape":"5x6x7"}`)
	if code != http.StatusOK || want.Source != "computed" {
		t.Fatalf("computed plan: code %d source %q", code, want.Source)
	}
	got.Source, want.Source = "", ""
	if got.Certificate == nil || want.Certificate == nil || *got.Certificate != *want.Certificate {
		t.Fatalf("artifact-served certificate differs from computed:\n got %+v\nwant %+v", got.Certificate, want.Certificate)
	}
	got.Certificate, want.Certificate = nil, nil
	if got != want {
		t.Fatalf("artifact-served response differs from computed:\n got %+v\nwant %+v", got, want)
	}

	// Non-canonical axis order misses the artifact (plan strings are
	// axis-order-specific) and is computed instead — same plan modulo order.
	code, perm := planResponse(t, h, `{"shape":"7x5x6"}`)
	if code != http.StatusOK || perm.Source != "computed" {
		t.Fatalf("permuted plan: code %d source %q, want computed", code, perm.Source)
	}
	// Out-of-domain shapes fall through to the planner.
	code, out := planResponse(t, h, `{"shape":"5x6x13"}`)
	if code != http.StatusOK || out.Source != "computed" {
		t.Fatalf("out-of-domain plan: code %d source %q, want computed", code, out.Source)
	}
	// A family the artifact does not cover bypasses it (4x5x6 cylinder:
	// wrapped axis 6 is not a power of two, so the classifier declines too).
	code, fam := planResponse(t, h, `{"shape":"4x5x6","family":"cylinder"}`)
	if code != http.StatusOK || fam.Source != "computed" {
		t.Fatalf("cylinder plan: code %d source %q, want computed", code, fam.Source)
	}

	// The tier counters must have moved: one artifact hit, the misses
	// computed, and a repeat request counting L0.
	planResponse(t, h, `{"shape":"5x6x7"}`)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	for _, line := range []string{
		"embedserver_plan_tier_l0_total 1",
		"embedserver_plan_tier_artifact_total 1",
		"embedserver_plan_tier_compute_total 3",
		"embedserver_plan_artifact_records " + fmt.Sprint(artifact.TotalRecords(dims, maxAxis)),
	} {
		if !strings.Contains(rec.Body.String(), line) {
			t.Errorf("metrics: missing %q", line)
		}
	}
}

// TestAttachArtifactFingerprintMismatch: an artifact built under different
// planner options is refused at attach time.
func TestAttachArtifactFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.art")
	pl := core.NewPlanner(core.DefaultOptions)
	b, err := artifact.NewBuilder(path, "mesh", 2, 4, "b999.s7.other-cost")
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= 4; c++ {
		artifact.EachShapeWithMax(2, c, func(s mesh.Shape) {
			if err := b.Add(s, pl.Plan(s)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	a, err := artifact.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := New(Config{}).AttachArtifact(a); err == nil {
		t.Fatal("AttachArtifact accepted a fingerprint-mismatched artifact")
	}
}

// TestJobArtifactEndpoint: the artifact download route serves a finished
// plancensus job's file bit-for-bit, and maps the manager's sentinel errors
// (unknown job, wrong kind) onto the envelope.
func TestJobArtifactEndpoint(t *testing.T) {
	s := New(Config{})
	m, err := jobs.Open(jobs.Config{DataDir: t.TempDir(), Planner: s.Planner()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	}()
	s.AttachJobs(m)
	h := s.Handler()

	rec, _ := post(t, h, "/v1/jobs", `{"kind":"plancensus","plancensus":{"dims":3,"max_axis":6}}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var st api.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	waitDone(t, h, st.ID)

	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	dl := get("/v1/jobs/" + st.ID + "/artifact")
	if dl.Code != http.StatusOK {
		t.Fatalf("artifact download: %d %s", dl.Code, dl.Body.String())
	}
	path, err := m.ArtifactPath(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dl.Body.Bytes(), want) {
		t.Fatalf("downloaded artifact differs from disk (%d vs %d bytes)", dl.Body.Len(), len(want))
	}
	// The downloaded bytes must themselves be a loadable artifact.
	tmp := filepath.Join(t.TempDir(), "dl.art")
	if err := os.WriteFile(tmp, dl.Body.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := artifact.Open(tmp)
	if err != nil {
		t.Fatalf("downloaded artifact does not load: %v", err)
	}
	a.Close()

	if rec := get("/v1/jobs/no-such-job/artifact"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", rec.Code)
	}
	rec, _ = post(t, h, "/v1/jobs", `{"kind":"census","census":{"max_n":2}}`)
	var ct api.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	waitDone(t, h, ct.ID)
	if rec := get("/v1/jobs/" + ct.ID + "/artifact"); rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong-kind job: %d %s", rec.Code, rec.Body.String())
	}
}

// TestJobsErrorNotReady pins the ErrNotReady → 409 not_ready mapping.
func TestJobsErrorNotReady(t *testing.T) {
	ae := jobsError(fmt.Errorf("wrapped: %w", jobs.ErrNotReady))
	if ae.status != http.StatusConflict || ae.code != api.CodeNotReady || ae.retryAfter <= 0 {
		t.Fatalf("jobsError(ErrNotReady) = %+v", ae)
	}
}

// waitDone polls the status endpoint until the job is done.
func waitDone(t *testing.T, h http.Handler, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var st api.JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == api.JobDone {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for job %s", id)
}

// The EXP-P7 latency benchmarks: one /v1/plan resolution per tier at the
// paper's 64³ scale.  HTTP and JSON overhead would mask the ns-level tiers,
// so these measure resolvePlan — the exact code the L0-miss path runs.
var benchSink *cachedResult

// BenchmarkPlanTierClosedForm: 64x64x64 is claimed by the classifier.
func BenchmarkPlanTierClosedForm(b *testing.B) {
	s := New(Config{})
	sh := mesh.Shape{64, 64, 64}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, src, err := s.resolvePlan(ctx, guest.Mesh, sh)
		if err != nil || src != "closed_form" {
			b.Fatalf("%q %v", src, err)
		}
		benchSink = res
	}
}

// BenchmarkPlanTierArtifact: 34x41x64 (89k of 256Ki nodes) is declined by
// the classifier and served from the mmap'd artifact.
func BenchmarkPlanTierArtifact(b *testing.B) {
	s := New(Config{})
	if err := s.AttachArtifact(buildArtifact(b, 3, 64)); err != nil {
		b.Fatal(err)
	}
	sh := mesh.Shape{34, 41, 64}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, src, err := s.resolvePlan(ctx, guest.Mesh, sh)
		if err != nil || src != "artifact" {
			b.Fatalf("%q %v", src, err)
		}
		benchSink = res
	}
}

// BenchmarkPlanTierCompute: the same shape through the full planner with no
// cache (core.PlanShape), i.e. what every L2 miss costs.
func BenchmarkPlanTierCompute(b *testing.B) {
	sh := mesh.Shape{34, 41, 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.PlanShape(sh, core.DefaultOptions)
		benchSink = planResult(p)
	}
}
