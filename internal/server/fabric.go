package server

import (
	"crypto/subtle"
	"net/http"

	"repro/internal/jobs"
	"repro/pkg/api"
)

// Fabric endpoints: the worker-mode chunk executor and the peer-admin
// surface.
//
//	POST /v1/internal/chunks  execute one chunk of a job spec (worker mode)
//	GET  /v1/peers            list fabric peers (public, read-only)
//	POST /v1/peers            register a peer (a worker's -join handshake)
//
// The chunk executor and the join endpoint are guarded by the shared fabric
// secret (X-Fabric-Secret): the fabric is an internal trust domain, not part
// of the public API.  Without a configured secret the guarded endpoints
// answer 503 — a server not started with -fabric-secret is not a fabric
// member and must not execute arbitrary compute on behalf of strangers.
//
// Chunk execution is long-running compute (a census chunk can take seconds),
// so like the results stream and the artifact download it is registered
// outside instrument: it must not occupy an inflight slot meant for
// interactive requests nor run under the 30s interactive timeout.

// fabricAuthed enforces the shared-secret guard on an internal endpoint.
// It writes the error response itself and reports whether the caller may
// proceed.
func (s *Server) fabricAuthed(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.FabricSecret == "" {
		respondErr(w, r, errUnavailable("fabric is not enabled (start the server with -fabric-secret)"))
		return false
	}
	got := r.Header.Get(api.FabricSecretHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.FabricSecret)) != 1 {
		respondErr(w, r, errUnauthorized("missing or wrong %s header", api.FabricSecretHeader))
		return false
	}
	return true
}

// handleChunkExecute is worker mode: build a fresh runner for the enclosed
// job spec, execute exactly one chunk, return its portable result.  The
// request is validated exactly like a job submission; determinism of the
// runners means re-execution of the same chunk (a coordinator requeue)
// returns the same bytes.
func (s *Server) handleChunkExecute(w http.ResponseWriter, r *http.Request) {
	if !s.fabricAuthed(w, r) {
		return
	}
	var req api.ChunkRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, r, err)
		return
	}
	res, err := jobs.ExecuteChunk(r.Context(), req, s.cfg.Workers, s.planner)
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handlePeersList reports the fabric pool's peers.  Read-only and
// unauthenticated — the same operational visibility as /metrics.
func (s *Server) handlePeersList(w http.ResponseWriter, r *http.Request) {
	if s.pool == nil {
		respondErr(w, r, errUnavailable("no fabric pool attached (start the server with -fabric-secret)"))
		return
	}
	writeJSON(w, http.StatusOK, api.PeersResponse{Version: APIVersion, Peers: s.pool.Peers()})
}

// handlePeersJoin registers a worker with the coordinator's pool (the
// worker's -join self-registration).  Secret-guarded: joining the fabric
// routes compute to the joined address.  Re-joining an existing address
// re-dials it — this is how a restarted worker comes back.
func (s *Server) handlePeersJoin(w http.ResponseWriter, r *http.Request) {
	if !s.fabricAuthed(w, r) {
		return
	}
	if s.pool == nil {
		respondErr(w, r, errUnavailable("no fabric pool attached"))
		return
	}
	var req api.PeerJoinRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, r, err)
		return
	}
	if err := s.pool.Add(req.Addr); err != nil {
		respondErr(w, r, errBadRequest("%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.PeersResponse{Version: APIVersion, Peers: s.pool.Peers()})
}
