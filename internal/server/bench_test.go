package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// The server-path benchmarks drive the /v1/embed handler through httptest
// for the repo's perf trajectory (BENCH_PR3.json): the cached-vs-uncached
// gap is the service's whole reason to exist.

func benchEmbedRequest(b *testing.B, h http.Handler, shape string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/embed", strings.NewReader(`{"shape":"`+shape+`"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: %d %s", shape, rec.Code, rec.Body.String())
	}
}

func BenchmarkEmbedHandlerCached64(b *testing.B) {
	h := New(Config{}).Handler()
	benchEmbedRequest(b, h, "64x64x64") // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEmbedRequest(b, h, "64x64x64")
	}
}

func BenchmarkEmbedHandlerUncached64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEmbedRequest(b, New(Config{}).Handler(), "64x64x64")
	}
}

func BenchmarkEmbedHandlerCached16(b *testing.B) {
	h := New(Config{}).Handler()
	benchEmbedRequest(b, h, "16x16x16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEmbedRequest(b, h, "16x16x16")
	}
}

func BenchmarkEmbedHandlerUncached16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEmbedRequest(b, New(Config{}).Handler(), "16x16x16")
	}
}

// BenchmarkEmbedHandlerCached64TracingOff is the cached handler with the
// span tracer's kill switch thrown — the configuration the <2%-overhead
// acceptance bar of the observability work is measured against.
func BenchmarkEmbedHandlerCached64TracingOff(b *testing.B) {
	prev := obs.Enabled()
	obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	h := New(Config{}).Handler()
	benchEmbedRequest(b, h, "64x64x64")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEmbedRequest(b, h, "64x64x64")
	}
}

// BenchmarkEmbedHandlerDebugTrace64 is the cached handler with ?debug=trace:
// the full per-request span tree, the cache-bypassed provenance run and the
// doubled encode.  Its gap to BenchmarkEmbedHandlerCached64 is the price of
// asking for a trace — paid only by requests that ask.
func BenchmarkEmbedHandlerDebugTrace64(b *testing.B) {
	h := New(Config{}).Handler()
	benchEmbedRequest(b, h, "64x64x64")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/embed?debug=trace", strings.NewReader(`{"shape":"64x64x64"}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%d %s", rec.Code, rec.Body.String())
		}
	}
}
