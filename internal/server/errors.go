package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/pkg/api"
)

// Every non-2xx response the service emits goes through writeAPIError, so
// the wire sees exactly one failure shape: the api.ErrorResponse envelope,
// with the machine-readable code, the Retry-After hint mirrored between
// header and body, and the request ID for log/trace correlation.

// apiError carries an HTTP status, an envelope code and an optional retry
// hint through the compute path.
type apiError struct {
	status     int
	code       api.ErrorCode
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(format string, a ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: fmt.Sprintf(format, a...)}
}

func errTooLarge(format string, a ...any) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, code: api.CodeShapeTooLarge, msg: fmt.Sprintf(format, a...)}
}

func errUnavailable(msg string) *apiError {
	return &apiError{status: http.StatusServiceUnavailable, code: api.CodeUnavailable, msg: msg}
}

func errUnauthorized(format string, a ...any) *apiError {
	return &apiError{status: http.StatusUnauthorized, code: api.CodeUnauthorized, msg: fmt.Sprintf(format, a...)}
}

// writeAPIError emits the envelope.  A retry hint becomes both the
// Retry-After header (whole seconds, rounded up, per RFC 9110) and the
// millisecond-precision retry_after_ms body field.
func writeAPIError(w http.ResponseWriter, meta *reqMeta, e *apiError) {
	if e.retryAfter > 0 {
		secs := (e.retryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	}
	env := api.ErrorResponse{
		Version: api.Version,
		Error: &api.Error{
			Code:         e.code,
			Message:      e.msg,
			RetryAfterMS: e.retryAfter.Milliseconds(),
		},
	}
	if meta != nil {
		env.Error.RequestID = meta.id
	}
	writeJSON(w, e.status, env)
}

// respondErr maps a compute/flight error onto the envelope.  Context
// deadline becomes 504 with a retry hint — the work continues detached and
// lands in the cache, so the retry is usually a hit; a client cancel gets
// the non-standard 499 purely for the metrics — the client is gone.
func respondErr(w http.ResponseWriter, r *http.Request, err error) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
	case errors.Is(err, context.DeadlineExceeded):
		ae = &apiError{
			status: http.StatusGatewayTimeout, code: api.CodeTimeout,
			msg:        "deadline exceeded; result will be cached when ready",
			retryAfter: time.Second,
		}
	case errors.Is(err, context.Canceled):
		ae = &apiError{status: 499, code: api.CodeCanceled, msg: "client closed request"}
	default:
		ae = &apiError{status: http.StatusInternalServerError, code: api.CodeInternal, msg: err.Error()}
	}
	writeAPIError(w, metaFrom(r.Context()), ae)
}

// jobsError maps the job manager's sentinel errors onto envelope codes.
func jobsError(err error) *apiError {
	switch {
	case errors.Is(err, jobs.ErrBadRequest):
		return &apiError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: err.Error()}
	case errors.Is(err, jobs.ErrNotFound):
		return &apiError{status: http.StatusNotFound, code: api.CodeNotFound, msg: err.Error()}
	case errors.Is(err, jobs.ErrNotReady):
		return &apiError{
			status: http.StatusConflict, code: api.CodeNotReady,
			msg: err.Error(), retryAfter: 2 * time.Second,
		}
	case errors.Is(err, jobs.ErrQueueFull):
		return &apiError{
			status: http.StatusTooManyRequests, code: api.CodeQueueFull,
			msg: "job queue is full; the job was not accepted — resubmit later", retryAfter: 2 * time.Second,
		}
	case errors.Is(err, jobs.ErrClosed):
		return errUnavailable("job manager is draining")
	default:
		return &apiError{status: http.StatusInternalServerError, code: api.CodeInternal, msg: err.Error()}
	}
}
