package server

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, srv *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	return rr.Body.String()
}

// sampleLine matches one exposition sample: name, optional {labels}, value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// parseExposition parses the text format into name → value (label-carrying
// samples keep the braces in the key) and validates basic well-formedness:
// every sample line parses, and every # TYPE'd family that emits samples was
// declared before its first sample.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if !typed[m[1]] && !typed[base] {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestRuntimeGaugesExposed(t *testing.T) {
	srv := New(Config{})
	samples := parseExposition(t, scrape(t, srv))
	for _, name := range []string{
		"go_goroutines",
		"go_heap_alloc_bytes",
		"go_gc_pause_total_seconds",
		"go_gomaxprocs",
		"obs_spans_started_total",
		"obs_traces_started_total",
		"obs_span_overhead_seconds_total",
	} {
		v, ok := samples[name]
		if !ok {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}
	if samples["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", samples["go_goroutines"])
	}
	if samples["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", samples["go_heap_alloc_bytes"])
	}
	if samples["go_gomaxprocs"] < 1 {
		t.Errorf("go_gomaxprocs = %v, want >= 1", samples["go_gomaxprocs"])
	}
}

func TestBuildInfoExposed(t *testing.T) {
	srv := New(Config{})
	body := scrape(t, srv)
	re := regexp.MustCompile(`(?m)^embedserver_build_info\{go_version="go[^"]+",path="[^"]*",version="[^"]*"\} 1$`)
	if !re.MatchString(body) {
		t.Fatalf("no well-formed embedserver_build_info sample in:\n%s", body)
	}
}

// TestObsCountersAdvance: serving a debug-traced request must move the span
// counters the exposition reports.
func TestObsCountersAdvance(t *testing.T) {
	srv := New(Config{})
	before := parseExposition(t, scrape(t, srv))["obs_spans_started_total"]
	req := httptest.NewRequest(http.MethodPost, "/v1/embed?debug=trace", strings.NewReader(`{"shape":"4x4x4"}`))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("embed: %d", rr.Code)
	}
	after := parseExposition(t, scrape(t, srv))["obs_spans_started_total"]
	if after <= before {
		t.Errorf("obs_spans_started_total did not advance: %v -> %v", before, after)
	}
}
