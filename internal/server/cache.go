package server

import (
	"container/list"
	"sync"
)

// ResultCacheStats reports the result cache's counters.  Hits counts LRU
// hits; Misses counts computations actually performed (a thundering herd on
// one key is one miss — the followers are counted by the coalescer, not
// here), so Misses is exactly the number of plan+build+measure runs.
type ResultCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
}

// lruCache is a bounded LRU of fully-measured embedding results keyed by
// canonical shape + options (see resultKey).  Entries are immutable after
// insertion, so a returned value may be shared by any number of concurrent
// readers; the lock covers only the list/map bookkeeping.
type lruCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List               // front = most recent
	items     map[string]*list.Element // value: *lruEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry struct {
	key string
	val *cachedResult
}

// newLRUCache returns a cache holding at most capacity entries; capacity
// below one disables caching (every get misses, puts are dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// countMiss records one performed computation; the caller (the flight
// leader) invokes it after its double-check lookup also missed.
func (c *lruCache) countMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

func (c *lruCache) put(key string, val *cachedResult) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

func (c *lruCache) stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}
