package server

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Hand-rolled Prometheus text exposition (version 0.0.4).  The server's
// metric set is small and fixed, so instead of a client library it keeps
// typed counters/gauges/histograms with atomic hot paths and renders them on
// demand; the output is stable-sorted so scrapes are diffable.

// counterVec is a set of monotonically increasing counters keyed by one
// label value (endpoint, or endpoint+code joined by the caller).
type counterVec struct {
	mu sync.Mutex
	m  map[string]*atomic.Uint64
}

func newCounterVec() *counterVec { return &counterVec{m: make(map[string]*atomic.Uint64)} }

func (c *counterVec) get(key string) *atomic.Uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if !ok {
		v = new(atomic.Uint64)
		c.m[key] = v
	}
	return v
}

func (c *counterVec) add(key string, n uint64) { c.get(key).Add(n) }

func (c *counterVec) snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// cached sub-millisecond hits through multi-second cold plans.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram (cumulative on render, plain
// per-bucket counts internally).
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // len(latencyBuckets)+1; last is the +Inf overflow
	sum    float64
	n      uint64
}

func newHistogram() *histogram { return &histogram{counts: make([]uint64, len(latencyBuckets)+1)} }

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.mu.Lock()
	h.counts[i]++
	h.sum += seconds
	h.n++
	h.mu.Unlock()
}

// histogramVec keys histograms by endpoint.
type histogramVec struct {
	mu sync.Mutex
	m  map[string]*histogram
}

func newHistogramVec() *histogramVec { return &histogramVec{m: make(map[string]*histogram)} }

func (hv *histogramVec) get(key string) *histogram {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h, ok := hv.m[key]
	if !ok {
		h = newHistogram()
		hv.m[key] = h
	}
	return h
}

// metrics is the server's metric registry.
type metrics struct {
	requests  *counterVec   // key "endpoint|code"
	latency   *histogramVec // key endpoint
	inflight  atomic.Int64
	shed      atomic.Uint64
	coalesced atomic.Uint64
	// Plan-resolution tier counters (see tiers.go): L0 result-cache hits,
	// closed-form classifier claims, artifact lookups served, and full
	// planner runs.
	tierL0         atomic.Uint64
	tierClosedForm atomic.Uint64
	tierArtifact   atomic.Uint64
	tierCompute    atomic.Uint64
	// Optimality-certificate counters (see certify.go): certificates
	// served on plan/embed/compare responses, and the subset whose
	// achieved metrics provably meet the lower bounds.
	certTotal   atomic.Uint64
	certOptimal atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{requests: newCounterVec(), latency: newHistogramVec()}
}

func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.requests.add(endpoint+"|"+strconv.Itoa(code), 1)
	m.latency.get(endpoint).observe(seconds)
}

func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// render writes the exposition; the caller supplies the cache and planner
// gauges so the registry stays independent of them.
func (m *metrics) render(b *strings.Builder, gauges []gauge) {
	fmt.Fprintf(b, "# HELP embedserver_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(b, "# TYPE embedserver_requests_total counter\n")
	reqs := m.requests.snapshot()
	keys := make([]string, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ep, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(b, "embedserver_requests_total{endpoint=%q,code=%q} %d\n", ep, code, reqs[k])
	}

	fmt.Fprintf(b, "# HELP embedserver_request_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(b, "# TYPE embedserver_request_seconds histogram\n")
	m.latency.mu.Lock()
	eps := make([]string, 0, len(m.latency.m))
	for ep := range m.latency.m {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	hists := make([]*histogram, len(eps))
	for i, ep := range eps {
		hists[i] = m.latency.m[ep]
	}
	m.latency.mu.Unlock()
	for i, ep := range eps {
		h := hists[i]
		h.mu.Lock()
		cum := uint64(0)
		for j, ub := range latencyBuckets {
			cum += h.counts[j]
			fmt.Fprintf(b, "embedserver_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, fmtFloat(ub), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(b, "embedserver_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(b, "embedserver_request_seconds_sum{endpoint=%q} %s\n", ep, fmtFloat(h.sum))
		fmt.Fprintf(b, "embedserver_request_seconds_count{endpoint=%q} %d\n", ep, h.n)
		h.mu.Unlock()
	}

	for i, g := range gauges {
		// Consecutive gauges sharing a name are one metric family with
		// several label sets; HELP/TYPE are emitted once per family.
		if i == 0 || gauges[i-1].name != g.name {
			fmt.Fprintf(b, "# HELP %s %s\n", g.name, g.help)
			fmt.Fprintf(b, "# TYPE %s %s\n", g.name, g.kind)
		}
		if g.labels != "" {
			fmt.Fprintf(b, "%s{%s} %s\n", g.name, g.labels, fmtFloat(g.value))
		} else {
			fmt.Fprintf(b, "%s %s\n", g.name, fmtFloat(g.value))
		}
	}
}

// metricFamilyNames is the canonical, sorted list of every metric family
// this server can expose on /metrics.  It is the contract three consumers
// check against: cmd/dashgen refuses to emit a dashboard panel whose PromQL
// references a family not listed here, the promtext conformance test
// requires a traffic-exercised scrape to expose exactly this set, and code
// review gets one place to look when a gauge is added.  Adding a metric to
// handleMetrics / runtimeGauges without extending this list is a test
// failure, not a silent drift.
var metricFamilyNames = []string{
	"embedserver_build_info",
	"embedserver_certificates_optimal_total",
	"embedserver_certificates_total",
	"embedserver_coalesced_total",
	"embedserver_fabric_chunks_dispatched_total",
	"embedserver_fabric_chunks_folded_total",
	"embedserver_fabric_chunks_requeued_total",
	"embedserver_fabric_peer_inflight",
	"embedserver_fabric_peers",
	"embedserver_inflight",
	"embedserver_jobs_cancelled",
	"embedserver_jobs_chunks_done_total",
	"embedserver_jobs_done",
	"embedserver_jobs_failed",
	"embedserver_jobs_queue_capacity",
	"embedserver_jobs_queued",
	"embedserver_jobs_result_bytes_total",
	"embedserver_jobs_retries_total",
	"embedserver_jobs_running",
	"embedserver_jobs_shapes_total",
	"embedserver_plan_artifact_records",
	"embedserver_plan_cache_entries",
	"embedserver_plan_cache_hits_total",
	"embedserver_plan_cache_misses_total",
	"embedserver_plan_tier_artifact_total",
	"embedserver_plan_tier_closed_form_total",
	"embedserver_plan_tier_compute_total",
	"embedserver_plan_tier_l0_total",
	"embedserver_request_seconds",
	"embedserver_requests_total",
	"embedserver_result_cache_entries",
	"embedserver_result_cache_evictions_total",
	"embedserver_result_cache_hits_total",
	"embedserver_result_cache_misses_total",
	"embedserver_shed_total",
	"embedserver_sse_dropped_total",
	"embedserver_sse_events_total",
	"embedserver_sse_subscribers",
	"go_gc_pause_total_seconds",
	"go_gomaxprocs",
	"go_goroutines",
	"go_heap_alloc_bytes",
	"obs_span_overhead_seconds_total",
	"obs_spans_started_total",
	"obs_traces_started_total",
}

// MetricFamilies returns the canonical family-name list (a copy, sorted).
func MetricFamilies() []string {
	return append([]string(nil), metricFamilyNames...)
}

// gauge is one single-valued exposition line.  labels, when non-empty, is a
// pre-rendered label set ("k=\"v\",...") emitted inside braces.
type gauge struct {
	name, help, kind string
	value            float64
	labels           string
}

// runtimeGauges samples the Go runtime and the obs tracer for /metrics.
// ReadMemStats costs a stop-the-world on the order of tens of microseconds —
// fine at scrape frequency.
func runtimeGauges() []gauge {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := obs.ReadStats()
	return []gauge{
		{name: "go_goroutines", help: "Number of goroutines that currently exist.",
			kind: "gauge", value: float64(runtime.NumGoroutine())},
		{name: "go_heap_alloc_bytes", help: "Bytes of allocated heap objects.",
			kind: "gauge", value: float64(ms.HeapAlloc)},
		{name: "go_gc_pause_total_seconds", help: "Cumulative GC stop-the-world pause time.",
			kind: "counter", value: float64(ms.PauseTotalNs) / 1e9},
		{name: "go_gomaxprocs", help: "Value of GOMAXPROCS.",
			kind: "gauge", value: float64(runtime.GOMAXPROCS(0))},
		{name: "obs_spans_started_total", help: "Tracing spans started since process start.",
			kind: "counter", value: float64(st.Spans)},
		{name: "obs_traces_started_total", help: "Root traces started since process start.",
			kind: "counter", value: float64(st.Traces)},
		{name: "obs_span_overhead_seconds_total", help: "Cumulative time spent creating tracing spans.",
			kind: "counter", value: float64(st.OverheadNS) / 1e9},
	}
}

// buildInfoGauge is the conventional constant-1 info metric carrying build
// metadata as labels.
func buildInfoGauge() gauge {
	path, version := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Path != "" {
			path = bi.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
	}
	return gauge{
		name:   "embedserver_build_info",
		help:   "Build metadata; the value is always 1.",
		kind:   "gauge",
		value:  1,
		labels: fmt.Sprintf("go_version=%q,path=%q,version=%q", runtime.Version(), path, version),
	}
}
