package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func debugBody(t *testing.T, srv *Server, target, body string, hdr map[string]string) map[string]any {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("%s: status %d: %s", target, rr.Code, rr.Body.String())
	}
	var m map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatalf("%s: bad JSON: %v", target, err)
	}
	return m
}

// spanNames flattens a decoded span-tree JSON object into a name set.
func spanNames(tree map[string]any, into map[string]bool) {
	if tree == nil {
		return
	}
	if n, _ := tree["name"].(string); n != "" {
		into[n] = true
	}
	kids, _ := tree["children"].([]any)
	for _, k := range kids {
		if km, ok := k.(map[string]any); ok {
			spanNames(km, into)
		}
	}
}

func TestPlanDebugTrace(t *testing.T) {
	srv := New(Config{})
	m := debugBody(t, srv, "/v1/plan?debug=trace", `{"shape":"5x6x7"}`, nil)
	dbg, ok := m["debug"].(map[string]any)
	if !ok {
		t.Fatalf("no debug block in response: %v", m)
	}
	if id, _ := dbg["request_id"].(string); id == "" {
		t.Error("debug block has no request_id")
	}
	pt, ok := dbg["plan_trace"].(map[string]any)
	if !ok {
		t.Fatal("no plan_trace in debug block")
	}
	attempts, _ := pt["attempts"].([]any)
	if len(attempts) == 0 {
		t.Fatal("plan_trace has no strategy attempts")
	}
	chosen := 0
	for _, a := range attempts {
		am := a.(map[string]any)
		switch am["status"] {
		case "chosen":
			chosen++
		case "tried", "skipped":
		default:
			t.Errorf("attempt %v: bad status %v", am["strategy"], am["status"])
		}
	}
	if chosen != 1 {
		t.Errorf("chosen attempts = %d, want 1", chosen)
	}

	tree, ok := dbg["trace"].(map[string]any)
	if !ok {
		t.Fatal("no span tree in debug block")
	}
	names := map[string]bool{}
	spanNames(tree, names)
	for _, want := range []string{"request", "queue-wait", "cache-lookup", "planner", "encode"} {
		if !names[want] {
			t.Errorf("span %q missing from trace (have %v)", want, names)
		}
	}
	// The planner provenance must surface every attempt as a strategy span.
	for _, a := range attempts {
		am := a.(map[string]any)
		if n, _ := am["strategy"].(string); n != "" && !names["strategy:"+n] {
			t.Errorf("no strategy:%s span in trace", n)
		}
	}
}

func TestDebugHeaderVariant(t *testing.T) {
	srv := New(Config{})
	m := debugBody(t, srv, "/v1/plan", `{"shape":"3x5x17"}`, map[string]string{"X-Debug-Trace": "1"})
	if _, ok := m["debug"].(map[string]any); !ok {
		t.Fatal("X-Debug-Trace: 1 did not produce a debug block")
	}
}

func TestEmbedDebugCacheHitKeepsProvenance(t *testing.T) {
	srv := New(Config{})
	// Warm the cache, then ask for a debug trace: the serving path must
	// report the hit while provenance still lists genuine attempts.
	_ = debugBody(t, srv, "/v1/embed", `{"shape":"5x6x7"}`, nil)
	m := debugBody(t, srv, "/v1/embed?debug=trace", `{"shape":"5x6x7"}`, nil)
	if src, _ := m["source"].(string); src != "cache" {
		t.Fatalf("source = %q, want cache", src)
	}
	dbg := m["debug"].(map[string]any)
	pt, ok := dbg["plan_trace"].(map[string]any)
	if !ok {
		t.Fatal("cache-hit debug response lost its plan_trace")
	}
	if attempts, _ := pt["attempts"].([]any); len(attempts) == 0 {
		t.Fatal("cache-hit provenance has no attempts — it degenerated to the cache")
	}
	names := map[string]bool{}
	spanNames(dbg["trace"].(map[string]any), names)
	if names["compute"] {
		t.Error("cache hit must not have a compute span")
	}
	if !names["cache-lookup"] {
		t.Error("no cache-lookup span")
	}
}

func TestNonDebugResponseHasNoDebugBlock(t *testing.T) {
	srv := New(Config{})
	m := debugBody(t, srv, "/v1/embed", `{"shape":"4x4x4"}`, nil)
	if _, ok := m["debug"]; ok {
		t.Fatal("non-debug response carries a debug block")
	}
}

func TestEmbedDebugComputePhases(t *testing.T) {
	srv := New(Config{})
	m := debugBody(t, srv, "/v1/embed?debug=trace", `{"shape":"6x11x7"}`, nil)
	if src, _ := m["source"].(string); src != "computed" {
		t.Fatalf("source = %q, want computed", src)
	}
	names := map[string]bool{}
	spanNames(m["debug"].(map[string]any)["trace"].(map[string]any), names)
	for _, want := range []string{"compute", "plan", "build", "verify", "measure", "fused-pass"} {
		if !names[want] {
			t.Errorf("compute phase span %q missing (have %v)", want, names)
		}
	}
}

func TestCompareDebugTrace(t *testing.T) {
	srv := New(Config{})
	m := debugBody(t, srv, "/v1/compare?debug=trace", `{"shape":"3x5"}`, nil)
	dbg := m["debug"].(map[string]any)
	if _, ok := dbg["plan_trace"].(map[string]any); !ok {
		t.Fatal("compare debug block has no plan_trace")
	}
	names := map[string]bool{}
	spanNames(dbg["trace"].(map[string]any), names)
	if !names["technique:gray"] || !names["technique:decomposition"] {
		t.Errorf("per-technique spans missing (have %v)", names)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	srv := New(Config{Logger: logger})
	_ = debugBody(t, srv, "/v1/plan", `{"shape":"5x6x7"}`, nil)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not one JSON record: %v (%q)", err, buf.String())
	}
	for _, k := range []string{"request_id", "endpoint", "shape", "source", "status", "duration"} {
		if _, ok := rec[k]; !ok {
			t.Errorf("access log missing %q: %v", k, rec)
		}
	}
	if rec["shape"] != "5x6x7" || rec["endpoint"] != "plan" {
		t.Errorf("access log fields wrong: %v", rec)
	}
	if rec["source"] != "computed" {
		t.Errorf("source = %v, want computed", rec["source"])
	}
}

func TestRequestIDHeader(t *testing.T) {
	srv := New(Config{})
	req := httptest.NewRequest(http.MethodPost, "/v1/plan?debug=trace", strings.NewReader(`{"shape":"4x4"}`))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	id := rr.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("debug request has no X-Request-Id header")
	}
	var m map[string]any
	_ = json.Unmarshal(rr.Body.Bytes(), &m)
	if dbg, ok := m["debug"].(map[string]any); !ok || dbg["request_id"] != id {
		t.Fatalf("header id %q != body id %v", id, m["debug"])
	}
}

// TestDebugDisabledKillSwitch: with the tracer globally disabled, a debug
// request still answers (request ID, provenance) but carries no span tree.
func TestDebugDisabledKillSwitch(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	srv := New(Config{})
	m := debugBody(t, srv, "/v1/plan?debug=trace", `{"shape":"5x6x7"}`, nil)
	dbg, ok := m["debug"].(map[string]any)
	if !ok {
		t.Fatal("no debug block")
	}
	if _, ok := dbg["trace"]; ok {
		t.Error("disabled tracer still produced a span tree")
	}
	if _, ok := dbg["plan_trace"].(map[string]any); !ok {
		t.Error("provenance must not depend on the span tracer")
	}
}
