package server

import "testing"

func entry() *cachedResult { return &cachedResult{} }

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	a, b, d := entry(), entry(), entry()
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // touch a: b becomes oldest
		t.Fatal("a missing")
	}
	c.put("d", d)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v != a {
		t.Fatal("a lost")
	}
	if v, ok := c.get("d"); !ok || v != d {
		t.Fatal("d lost")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	v1, v2 := entry(), entry()
	c.put("k", v1)
	c.put("k", v2)
	if got, _ := c.get("k"); got != v2 {
		t.Fatal("update did not replace value")
	}
	if st := c.stats(); st.Size != 1 || st.Evictions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.put("k", entry())
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if st := c.stats(); st.Size != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUMissCounting(t *testing.T) {
	c := newLRUCache(4)
	c.get("absent") // raw lookup misses are not counted
	c.countMiss()   // performed computations are
	c.put("k", entry())
	c.get("k")
	st := c.stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
