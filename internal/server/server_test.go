package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/mesh"
)

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &fields); err != nil {
		t.Fatalf("%s: non-JSON response %q: %v", path, rec.Body.String(), err)
	}
	return rec, fields
}

func TestHealthz(t *testing.T) {
	h := New(Config{}).Handler()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestPlanEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/plan", `{"shape":"5x6x7"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", rec.Code, rec.Body.String())
	}
	var resp PlanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != APIVersion || resp.CubeDim != 8 || resp.Plan == "" || resp.Source != "computed" {
		t.Fatalf("plan response: %+v", resp)
	}
	rec, _ = post(t, h, "/v1/plan", `{"shape":"5x6x7"}`)
	var again PlanResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &again)
	if again.Source != "cache" || again.Plan != resp.Plan {
		t.Fatalf("second plan not cached: %+v", again)
	}
}

func TestEmbedEndpointWithMap(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"5x6x7","include_map":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("embed: %d %s", rec.Code, rec.Body.String())
	}
	var resp EmbedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.Guest != "5x6x7" || resp.Metrics.CubeDim != 8 {
		t.Fatalf("metrics: %+v", resp.Metrics)
	}
	if resp.Embedding == nil {
		t.Fatal("include_map: no embedding in response")
	}
	e, err := embed.FromSerial((*embed.Serial)(resp.Embedding))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := e.Measure(); got != embed.Metrics(resp.Metrics) {
		t.Fatalf("served metrics %+v != remeasured %+v", resp.Metrics, got)
	}
}

// TestEmbedPermutedHit exercises the canonical-shape result cache: a
// permuted request must be a cache hit and still receive a valid embedding
// of ITS axis order with identical metric values.
func TestEmbedPermutedHit(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"5x6x7","include_map":true}`)
	var first EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &first)

	rec, _ = post(t, h, "/v1/embed", `{"shape":"7x6x5","include_map":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("permuted embed: %d %s", rec.Code, rec.Body.String())
	}
	var resp EmbedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "cache" {
		t.Fatalf("permuted request source = %q, want cache", resp.Source)
	}
	if resp.Metrics.Guest != "7x6x5" || resp.Embedding.Guest != "7x6x5" {
		t.Fatalf("guest not relabeled: %+v", resp.Metrics)
	}
	e, err := embed.FromSerial((*embed.Serial)(resp.Embedding))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("relabeled map invalid: %v", err)
	}
	got := e.Measure()
	want := embed.Metrics(first.Metrics)
	want.Guest = "7x6x5"
	if got != want {
		t.Fatalf("relabeled metrics %+v, want %+v", got, want)
	}
	if st := s.CacheStats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (permutations share one entry)", st.Misses)
	}
}

func TestEmbedModes(t *testing.T) {
	h := New(Config{}).Handler()
	// The response mode is normalized: the deprecated alias "torus" is
	// served as family torus, mode decomposition, with a deprecation note.
	wantMode := map[string]string{"gray": "gray", "torus": "decomposition"}
	for mode, wantDil := range map[string]int{"gray": 1, "torus": 0} {
		rec, _ := post(t, h, "/v1/embed", fmt.Sprintf(`{"shape":"6x10","mode":%q}`, mode))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", mode, rec.Code, rec.Body.String())
		}
		var resp EmbedResponse
		_ = json.Unmarshal(rec.Body.Bytes(), &resp)
		if resp.Mode != wantMode[mode] {
			t.Fatalf("mode = %q", resp.Mode)
		}
		if (mode == "torus") != (resp.Deprecation != "") {
			t.Fatalf("mode %s: deprecation = %q", mode, resp.Deprecation)
		}
		if mode == "gray" && resp.Metrics.Dilation != wantDil {
			t.Fatalf("gray dilation = %d", resp.Metrics.Dilation)
		}
		if mode == "torus" && !resp.Metrics.Wrap {
			t.Fatal("torus metrics not marked wraparound")
		}
	}
}

func TestCompareEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/compare", `{"shape":"12x20","simnet":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("compare: %d %s", rec.Code, rec.Body.String())
	}
	var resp CompareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	techniques := make(map[string]bool)
	for _, row := range resp.Rows {
		techniques[row.Technique] = true
	}
	for _, want := range []string{"gray", "snake", "rowmajor", "decomposition"} {
		if !techniques[want] {
			t.Fatalf("missing technique %q in %v", want, resp.Rows)
		}
	}
	if len(resp.Simnet) != len(resp.Rows) {
		t.Fatalf("simnet stats for %d of %d techniques", len(resp.Simnet), len(resp.Rows))
	}
	for name, st := range resp.Simnet {
		if st.Messages == 0 || st.Makespan == 0 {
			t.Fatalf("%s: empty round stats %+v", name, st)
		}
	}
}

func TestBadRequests(t *testing.T) {
	h := New(Config{}).Handler()
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/plan", `{"shape":"5xx7"}`, http.StatusBadRequest},
		{"/v1/plan", `not json`, http.StatusBadRequest},
		{"/v1/plan", `{"shape":"5x6x7"} trailing`, http.StatusBadRequest},
		{"/v1/plan", `{"shap":"5x6x7"}`, http.StatusBadRequest}, // unknown field
		{"/v1/embed", `{"shape":"5x6x7","mode":"quantum"}`, http.StatusBadRequest},
		{"/v1/embed", `{"shape":""}`, http.StatusBadRequest},
		{"/v1/compare", `{"shape":"0x4"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, fields := post(t, h, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s %q: code %d, want %d", c.path, c.body, rec.Code, c.want)
		}
		if _, ok := fields["error"]; !ok {
			t.Errorf("%s %q: no error field in %s", c.path, c.body, rec.Body.String())
		}
	}
}

func TestOversizedShape422(t *testing.T) {
	h := New(Config{MaxNodes: 1000}).Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"11x10x10"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized: %d %s", rec.Code, rec.Body.String())
	}
	// Absurd axes must 422 without overflowing the node count.
	rec, _ = post(t, h, "/v1/plan", `{"shape":"1000000000x1000000000x1000000000"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("overflow shape: %d %s", rec.Code, rec.Body.String())
	}
}

func TestTimeout504(t *testing.T) {
	h := New(Config{Timeout: time.Nanosecond}).Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"32x32x32"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout: %d %s", rec.Code, rec.Body.String())
	}
}

// TestTimeoutStillCaches: the detached computation outlives the timed-out
// request and serves the retry from cache.
func TestTimeoutStillCaches(t *testing.T) {
	s := New(Config{Timeout: time.Nanosecond})
	h := s.Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"23x29x31"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("first: %d", rec.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.CacheStats().Size == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached computation never landed in the cache")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.CacheStats(); st.Misses != 1 {
		t.Fatalf("misses = %d", st.Misses)
	}
}

func TestShed429(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	h := s.Handler()
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		// Occupy the single slot with a request whose compute blocks until
		// released (hook the flight group directly to stay deterministic).
		req := httptest.NewRequest(http.MethodPost, "/v1/embed", strings.NewReader(`{"shape":"3x5x7"}`))
		rec := httptest.NewRecorder()
		s.flights.mu.Lock()
		s.flights.m["embed|decomposition|3x5x7"] = &flightCall{done: release}
		s.flights.mu.Unlock()
		h.ServeHTTP(rec, req)
		done <- rec.Code
	}()
	for s.m.inflight.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	rec, _ := post(t, h, "/v1/plan", `{"shape":"3x3"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("no Retry-After header")
	}
	s.flights.mu.Lock()
	c := s.flights.m["embed|decomposition|3x5x7"]
	c.val = &cachedResult{metrics: embed.Metrics{}, emb: embed.New(mesh.Shape{3, 5, 7}, 7)}
	delete(s.flights.m, "embed|decomposition|3x5x7")
	s.flights.mu.Unlock()
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d", code)
	}
	if got := s.m.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d", got)
	}
}

// TestCoalescing hammers one shape from 32 goroutines and asserts the
// computation ran exactly once (one result-cache miss); run under -race via
// the Makefile race target.
func TestCoalescing(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	const clients = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, clients)
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req := httptest.NewRequest(http.MethodPost, "/v1/embed", strings.NewReader(`{"shape":"23x9x5"}`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.String()
		}(i)
	}
	close(start)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d: %d %s", i, code, bodies[i])
		}
	}
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("result-cache misses = %d, want exactly 1", st.Misses)
	}
	if got := st.Hits + s.Coalesced(); got != clients-1 {
		t.Fatalf("hits(%d)+coalesced(%d) = %d, want %d", st.Hits, s.Coalesced(), got, clients-1)
	}
	// All clients saw the same metrics, modulo the source field.
	var want EmbedResponse
	_ = json.Unmarshal([]byte(bodies[0]), &want)
	for i := 1; i < clients; i++ {
		var got EmbedResponse
		_ = json.Unmarshal([]byte(bodies[i]), &got)
		if got.Metrics != want.Metrics || got.Plan != want.Plan {
			t.Fatalf("client %d diverged: %+v vs %+v", i, got.Metrics, want.Metrics)
		}
	}
}

// TestGracefulShutdown starts a real listener, parks a slow request on it,
// and asserts http.Server.Shutdown lets the request complete.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{})
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()

	type result struct {
		code int
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/embed", "application/json",
			strings.NewReader(`{"shape":"37x41x43"}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{code: resp.StatusCode, body: string(body)}
	}()
	for s.m.inflight.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: %d %s", r.code, r.body)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	post(t, h, "/v1/embed", `{"shape":"5x6x7"}`)
	post(t, h, "/v1/embed", `{"shape":"5x6x7"}`)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`embedserver_requests_total{endpoint="embed",code="200"} 2`,
		`embedserver_request_seconds_count{endpoint="embed"} 2`,
		`embedserver_request_seconds_bucket{endpoint="embed",le="+Inf"} 2`,
		"embedserver_result_cache_hits_total 1",
		"embedserver_result_cache_misses_total 1",
		"embedserver_plan_cache_entries",
		"embedserver_inflight 0",
		"embedserver_shed_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, body)
		}
	}
}
