package server

import (
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/pkg/api"
)

// The /v1/jobs handlers.  Submit/list/status/cancel are ordinary
// instrumented endpoints; the results stream is registered outside the
// semaphore and the request timeout because it long-polls until the job
// reaches a terminal state (see Handler).

// jobsManager guards every jobs endpoint: without an attached manager the
// routes answer 503 rather than 404, so a client can tell "no batch
// subsystem configured" from "no such job".
func (s *Server) jobsManager(w http.ResponseWriter, r *http.Request) bool {
	if s.jobs == nil {
		respondErr(w, r, errUnavailable("batch jobs are not enabled on this server (start embedserver with -data-dir)"))
		return false
	}
	return true
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	var req api.JobSubmitRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, r, err)
		return
	}
	st, err := s.jobs.Submit(req)
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, api.JobListResponse{
		Version: APIVersion,
		Jobs:    s.jobs.List(),
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	st, err := s.jobs.Status(r.PathValue("id"))
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobArtifact downloads a finished plancensus job's artifact file.
// Before the job is done the endpoint answers 409 (the file on disk would
// be torn or still growing); ServeFile gives clients range requests for
// free, so an interrupted multi-hundred-MB download can resume.
func (s *Server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	path, err := s.jobs.ArtifactPath(r.PathValue("id"))
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

// handleJobTrace downloads a job's span tree — for a distributed job, the
// single trace stitched from coordinator dispatch/fold spans and every
// worker's chunk subtrees.  409 until a run has written one (embedctl trace
// -job renders it as a Chrome trace).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	path, err := s.jobs.TracePath(r.PathValue("id"))
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, path)
}

// resultsPollInterval paces the long-poll loop in handleJobResults.  A
// variable, not a constant, so tests can tighten it.
var resultsPollInterval = 150 * time.Millisecond

// handleJobResults streams a job's committed NDJSON results from the given
// Last-Event-Offset (default zero) and keeps following the file until the
// job reaches a terminal state and every committed byte has been sent.
// Because only committed bytes (those covered by a checkpoint or the final
// flush) are served, a client that records the byte offset of what it has
// consumed can reconnect with that offset after either side restarts and
// see exactly the missing suffix — the stream is deterministic, so offsets
// remain valid across server crashes.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	info, err := s.jobs.Results(r.PathValue("id"))
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	offset := int64(0)
	if h := r.Header.Get(api.ResultsOffsetHeader); h != "" {
		offset, err = strconv.ParseInt(h, 10, 64)
		if err != nil || offset < 0 {
			respondErr(w, r, errBadRequest("bad %s header %q", api.ResultsOffsetHeader, h))
			return
		}
	}
	if offset > info.Committed {
		respondErr(w, r, errBadRequest("offset %d is past the committed stream length %d", offset, info.Committed))
		return
	}
	f, err := os.Open(info.Path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Queued job that has not produced its results file yet: an
			// empty stream is correct, follow it below once it appears.
			f = nil
		} else {
			respondErr(w, r, err)
			return
		}
	}
	if f != nil {
		defer f.Close()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(api.ResultsOffsetHeader, strconv.FormatInt(offset, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	cur := offset
	for {
		info, err = s.jobs.Results(r.PathValue("id"))
		if err != nil {
			return // job evicted mid-stream; the client sees a truncated body
		}
		if f == nil {
			f, err = os.Open(info.Path)
			if err != nil {
				f = nil
			} else {
				defer f.Close()
			}
		}
		if f != nil && info.Committed > cur {
			n, err := io.Copy(w, io.NewSectionReader(f, cur, info.Committed-cur))
			cur += n
			if err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if info.State.Terminal() && cur >= info.Committed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(resultsPollInterval):
		}
	}
}
