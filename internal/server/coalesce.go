package server

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent computations of the same key
// (singleflight): the first caller becomes the leader and runs fn on a
// detached goroutine; followers arriving before it finishes block on the
// same call.  The computation is deliberately decoupled from any one
// request's context — a leader whose client times out or disconnects must
// not abort the work its followers are waiting on (and the completed result
// still lands in the cache for the retry).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  *cachedResult
	err  error
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flightCall)} }

// do returns fn's result for key, computing it at most once across
// concurrent callers.  led reports whether this caller ran fn (the "one
// planner miss" of the coalescing invariant).  If ctx expires first, do
// returns the context error while the computation keeps running for the
// remaining waiters.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*cachedResult, error)) (val *cachedResult, led bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("embedserver: compute panicked: %v", r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()

	select {
	case <-c.done:
		return c.val, true, c.err
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}
