package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/obs"
)

// Request debugging: any API request may ask for its own trace with
// ?debug=trace or an X-Debug-Trace: 1 header.  A debug request runs under a
// per-request obs root span ("request") whose children record the pipeline
// phases — queue-wait, cache-lookup, coalesce-wait, compute (with plan /
// build / verify / measure below it) and encode — and the response gains a
// "debug" block carrying the request ID, the span tree and, for endpoints
// that exercise the planner, the full PlanTrace strategy provenance.
//
// Provenance is computed by a separate Planner.PlanTraced run: the normal
// lookup path stays exactly as served (a cache hit is reported as a cache
// hit), while the traced run bypasses the caches so the strategy attempts
// are genuine rather than "cache hit, nothing tried".
//
// Non-debug requests with no logger configured skip all of this — no span,
// no request ID, no context value — so the hot path's allocation profile is
// unchanged.

// reqIDPrefix makes request IDs unique across process restarts; the counter
// makes them unique (and ordered) within one.
var (
	reqIDPrefix  = func() string { var b [4]byte; _, _ = rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	reqIDCounter atomic.Uint64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDCounter.Add(1))
}

// reqMeta rides the request context through the handler so the access log
// and the debug block see what the handler learned (shape, mode, source).
// It exists only for debug requests or when a logger is configured; all
// methods tolerate a nil receiver so handlers never branch.
type reqMeta struct {
	id     string
	debug  bool
	root   *obs.Span // nil unless debug
	shape  string
	mode   string
	source string
}

type reqMetaKeyType struct{}

var reqMetaKey reqMetaKeyType

func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(reqMetaKey).(*reqMeta)
	return m
}

// setShape takes the Shape rather than a string so the hot path never pays
// for the String() rendering a nil receiver would throw away.
func (m *reqMeta) setShape(sh mesh.Shape, mode string) {
	if m == nil {
		return
	}
	m.shape, m.mode = sh.String(), mode
	m.root.SetAttr("shape", m.shape)
	if mode != "" {
		m.root.SetAttr("mode", mode)
	}
}

func (m *reqMeta) setSource(source string) {
	if m == nil {
		return
	}
	m.source = source
	m.root.SetAttr("source", source)
}

// debugRequested reports whether the client asked for a per-request trace.
// The query is only parsed when one is present — r.URL.Query() allocates,
// and the hot path must not pay for a feature it isn't using.
func debugRequested(r *http.Request) bool {
	if r.URL.RawQuery != "" && r.URL.Query().Get("debug") == "trace" {
		return true
	}
	return r.Header.Get("X-Debug-Trace") == "1"
}

// debugProvenance runs the cache-bypassed planner provenance pass for a
// debug request and marshals it for api.DebugInfo's raw PlanTrace slot.
// Failures are swallowed: the shape already planned once on the serving
// path, and a debug block without provenance beats a 500.
func (s *Server) debugProvenance(ctx context.Context, sh mesh.Shape) json.RawMessage {
	_, pt, err := s.planner.PlanTraced(ctx, sh)
	if err != nil {
		return nil
	}
	raw, err := json.Marshal(pt)
	if err != nil {
		return nil
	}
	return raw
}

// finishDebug completes a debug block just before the response is encoded:
// it pre-encodes the payload to io.Discard under an "encode" span to measure
// serialization — the trace cannot time the write that carries it — and
// snapshots the span tree into di.Trace.  resp must already reference di so
// the real encode includes the finished block; it is passed by value so the
// handler's response never has its address taken — that would force a heap
// escape the non-debug hot path would pay for.
func (s *Server) finishDebug(ctx context.Context, di *DebugInfo, resp any) {
	m := metaFrom(ctx)
	if m == nil || m.root == nil {
		return
	}
	_, esp := obs.Start(ctx, "encode")
	enc := json.NewEncoder(io.Discard)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
	esp.End()
	if raw, err := json.Marshal(m.root.Snapshot()); err == nil {
		di.Trace = raw
	}
}
