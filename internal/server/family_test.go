package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/embed"
)

// TestEmbedFamilyCacheIsolation is the regression test for the family-less
// cache key: a 4x4x4 torus request must never be served a 4x4x4 mesh cache
// entry (or vice versa).  Both requests are computed, metrics differ on the
// wrap flag, and repeating each family hits its own entry.
func TestEmbedFamilyCacheIsolation(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"4x4x4"}`)
	var meshResp EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &meshResp)
	if meshResp.Source != "computed" || meshResp.Metrics.Wrap {
		t.Fatalf("mesh embed: %+v", meshResp)
	}

	rec, _ = post(t, h, "/v1/embed", `{"shape":"4x4x4","family":"torus"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("torus embed: %d %s", rec.Code, rec.Body.String())
	}
	var torusResp EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &torusResp)
	if torusResp.Source != "computed" {
		t.Fatalf("torus embed served from the mesh cache entry: %+v", torusResp)
	}
	if !torusResp.Metrics.Wrap || torusResp.Family != "torus" || torusResp.Metrics.Family != "torus" {
		t.Fatalf("torus embed response: %+v", torusResp)
	}

	// Each family now hits its own entry.
	rec, _ = post(t, h, "/v1/embed", `{"shape":"4x4x4"}`)
	var meshAgain EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &meshAgain)
	if meshAgain.Source != "cache" || meshAgain.Metrics.Wrap {
		t.Fatalf("mesh re-embed: %+v", meshAgain)
	}
	rec, _ = post(t, h, "/v1/embed", `{"shape":"4x4x4","family":"torus"}`)
	var torusAgain EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &torusAgain)
	if torusAgain.Source != "cache" || !torusAgain.Metrics.Wrap {
		t.Fatalf("torus re-embed: %+v", torusAgain)
	}
}

// TestEmbedModeTorusSharesFamilyEntry: mode "torus" is the deprecated
// spelling of family torus; both spellings must resolve to the same cache
// entry and metrics, with the response normalized to family torus, mode
// decomposition, plus a deprecation note.
func TestEmbedModeTorusSharesFamilyEntry(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/embed", `{"shape":"6x10","family":"torus"}`)
	var byFamily EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &byFamily)
	if byFamily.Source != "computed" || !byFamily.Metrics.Wrap || byFamily.Deprecation != "" {
		t.Fatalf("family torus: %+v", byFamily)
	}
	rec, _ = post(t, h, "/v1/embed", `{"shape":"6x10","mode":"torus"}`)
	var byMode EmbedResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &byMode)
	if byMode.Source != "cache" {
		t.Fatalf("mode torus recomputed instead of sharing the family entry: %+v", byMode)
	}
	if byMode.Mode != "decomposition" || byMode.Family != "torus" || byMode.Deprecation == "" {
		t.Fatalf("mode torus not normalized: %+v", byMode)
	}
	if byMode.Metrics != byFamily.Metrics {
		t.Fatalf("mode torus response: %+v vs %+v", byMode, byFamily)
	}
	// Conflicting spellings are a 400.
	rec, _ = post(t, h, "/v1/embed", `{"shape":"6x10","mode":"torus","family":"cylinder"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("conflicting mode/family accepted: %d %s", rec.Code, rec.Body.String())
	}
}

// TestCompareFamilyEcho: /v1/compare keys and echoes the family, and the
// decomposition row for a torus carries wrap metrics.
func TestCompareFamilyEcho(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/compare", `{"shape":"6x10"}`)
	var meshResp CompareResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &meshResp)
	if meshResp.Family != "mesh" || meshResp.Source != "computed" {
		t.Fatalf("mesh compare: family %q source %q", meshResp.Family, meshResp.Source)
	}

	rec, _ = post(t, h, "/v1/compare", `{"shape":"6x10","family":"torus"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("torus compare: %d %s", rec.Code, rec.Body.String())
	}
	var torusResp CompareResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &torusResp)
	if torusResp.Family != "torus" {
		t.Fatalf("torus compare echo: %+v", torusResp)
	}
	if torusResp.Source != "computed" {
		t.Fatal("torus compare served from the mesh cache entry")
	}
	for _, row := range torusResp.Rows {
		if row.Technique == "decomposition" && !row.Metrics.Wrap {
			t.Fatalf("torus decomposition row lost the wrap flag: %+v", row)
		}
	}
}

// TestEmbedCylinderAndTreeEndToEnd: the two new families are served with
// full fused metrics and verifiable maps.
func TestEmbedCylinderAndTreeEndToEnd(t *testing.T) {
	h := New(Config{}).Handler()
	for _, tc := range []struct {
		body    string
		family  string
		guest   string
		cubeDim int
	}{
		{`{"shape":"3x4x6","family":"cylinder","include_map":true}`, "cylinder", "3x4x6", 7},
		{`{"shape":"31","family":"tree","include_map":true}`, "tree", "31", 5},
	} {
		rec, _ := post(t, h, "/v1/embed", tc.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", tc.family, rec.Code, rec.Body.String())
		}
		var resp EmbedResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Family != tc.family || resp.Metrics.Family != tc.family {
			t.Fatalf("%s: family echo %q / %q", tc.family, resp.Family, resp.Metrics.Family)
		}
		if resp.Metrics.Guest != tc.guest || resp.Metrics.CubeDim != tc.cubeDim || !resp.Metrics.Minimal {
			t.Fatalf("%s metrics: %+v", tc.family, resp.Metrics)
		}
		e, err := embed.FromSerial((*embed.Serial)(resp.Embedding))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%s: served map invalid: %v", tc.family, err)
		}
		if got := e.Measure(); got != embed.Metrics(resp.Metrics) {
			t.Fatalf("%s: served metrics %+v != remeasured %+v", tc.family, resp.Metrics, got)
		}
	}
}

// TestPlanFamilyValidation: bad family names and invalid family shapes are
// 400s, and /v1/plan echoes the family.
func TestPlanFamilyValidation(t *testing.T) {
	h := New(Config{}).Handler()
	rec, _ := post(t, h, "/v1/plan", `{"shape":"3x4x6","family":"cylinder"}`)
	var resp PlanResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if rec.Code != http.StatusOK || resp.Family != "cylinder" || resp.Plan == "" {
		t.Fatalf("cylinder plan: %d %+v", rec.Code, resp)
	}
	rec, _ = post(t, h, "/v1/plan", `{"shape":"4x4","family":"klein-bottle"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown family: %d", rec.Code)
	}
	rec, _ = post(t, h, "/v1/plan", `{"shape":"6","family":"tree"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid tree shape: %d", rec.Code)
	}
	rec, _ = post(t, h, "/v1/embed", `{"shape":"4x4","family":"cylinder","mode":"gray"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("gray mode with non-mesh family: %d", rec.Code)
	}
}
