package server

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/pkg/api"
)

// newJobServer wires a Server to a fresh job manager over a temp data dir
// and registers manager shutdown with the test's cleanup.
func newJobServer(t *testing.T, jcfg jobs.Config) (*Server, http.Handler) {
	t.Helper()
	s := New(Config{})
	jcfg.DataDir = t.TempDir()
	jcfg.Planner = s.Planner()
	jcfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	m, err := jobs.Open(jcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	s.AttachJobs(m)
	return s, s.Handler()
}

func doReq(t *testing.T, h http.Handler, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeEnvelope asserts a response is the api.ErrorResponse envelope with
// the expected status and code and a non-empty message.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder, status int, code api.ErrorCode) api.ErrorResponse {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, status, rec.Body.String())
	}
	var env api.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("non-envelope error body %q: %v", rec.Body.String(), err)
	}
	if env.Error == nil || env.Error.Code != code || env.Error.Message == "" {
		t.Fatalf("envelope = %+v, want code %q", env, code)
	}
	if env.Version != api.Version {
		t.Fatalf("envelope version = %d, want %d", env.Version, api.Version)
	}
	return env
}

func submitJob(t *testing.T, h http.Handler, body string) api.JobStatus {
	t.Helper()
	rec := doReq(t, h, http.MethodPost, "/v1/jobs", body, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var st api.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("submit status: %+v", st)
	}
	return st
}

func waitJobDone(t *testing.T, h http.Handler, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec := doReq(t, h, http.MethodGet, "/v1/jobs/"+id, "", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("status: %d %s", rec.Code, rec.Body.String())
		}
		var st api.JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return api.JobStatus{}
}

// TestJobsRoundTrip submits a census job over HTTP, watches it to
// completion, streams the results, and checks the stream against the
// synchronous census the stats package computes directly.
func TestJobsRoundTrip(t *testing.T) {
	_, h := newJobServer(t, jobs.Config{})
	st := submitJob(t, h, `{"kind":"census","census":{"max_n":3}}`)

	// The job appears in the listing.
	rec := doReq(t, h, http.MethodGet, "/v1/jobs", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d %s", rec.Code, rec.Body.String())
	}
	var list api.JobListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list = %+v", list.Jobs)
	}

	fin := waitJobDone(t, h, st.ID)
	if fin.State != api.JobDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	if fin.Progress.Shapes != 1<<9 {
		t.Fatalf("progress = %+v, want %d shapes", fin.Progress, 1<<9)
	}

	rec = doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("results: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	rows := stats.Figure2Parallel(3, 1)
	var gotRows, summaries int
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &disc); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch disc.Type {
		case api.RecordCensusRow:
			var row api.CensusRowRecord
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				t.Fatal(err)
			}
			want := rows[row.N-1]
			if row.S != want.S || row.Total != want.Total || row.Exceptions != want.Exceptions {
				t.Fatalf("row n=%d: got %+v want %+v", row.N, row, want)
			}
			gotRows++
		case api.RecordSummary:
			summaries++
		}
	}
	if gotRows != 3 || summaries != 1 {
		t.Fatalf("stream had %d rows and %d summaries", gotRows, summaries)
	}
}

// TestJobsResultsOffsetResume re-streams from a mid-stream byte offset and
// must receive exactly the suffix of the full body.
func TestJobsResultsOffsetResume(t *testing.T) {
	_, h := newJobServer(t, jobs.Config{})
	st := submitJob(t, h, `{"kind":"plansweep","plansweep":{"dims":3,"max_axis":6,"max_nodes":128}}`)
	waitJobDone(t, h, st.ID)

	full := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "", nil).Body.String()
	if len(full) < 100 {
		t.Fatalf("stream too short to split: %d bytes", len(full))
	}
	off := len(full) / 2
	rec := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "",
		map[string]string{api.ResultsOffsetHeader: strconv.Itoa(off)})
	if rec.Code != http.StatusOK {
		t.Fatalf("resume: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(api.ResultsOffsetHeader); got != strconv.Itoa(off) {
		t.Fatalf("offset header echoed %q, want %d", got, off)
	}
	if rec.Body.String() != full[off:] {
		t.Fatalf("resumed stream is not the suffix (got %d bytes, want %d)", rec.Body.Len(), len(full)-off)
	}

	// Past-the-end offset is a 400 envelope, not a hang.
	rec = doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "",
		map[string]string{api.ResultsOffsetHeader: strconv.Itoa(len(full) + 1)})
	decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)
}

// TestJobsCancelOverHTTP cancels a queued job via DELETE and sees the
// cancelled state immediately and on subsequent reads.
func TestJobsCancelOverHTTP(t *testing.T) {
	_, h := newJobServer(t, jobs.Config{})
	st := submitJob(t, h, `{"kind":"census","census":{"max_n":8}}`)
	rec := doReq(t, h, http.MethodDelete, "/v1/jobs/"+st.ID, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", rec.Code, rec.Body.String())
	}
	fin := waitJobDone(t, h, st.ID)
	if fin.State != api.JobCancelled {
		t.Fatalf("state after cancel = %s", fin.State)
	}
}

// TestJobsErrorEnvelopes drives every jobs failure path and asserts the
// typed envelope — bad body (400), validation (400), not found (404),
// queue full (429 + Retry-After), and no manager attached (503).
func TestJobsErrorEnvelopes(t *testing.T) {
	_, h := newJobServer(t, jobs.Config{QueueDepth: 1, Runners: 1})

	rec := doReq(t, h, http.MethodPost, "/v1/jobs", `{"kind":`, nil)
	env := decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)
	if env.Error.RetryAfterMS != 0 {
		t.Fatalf("bad request carries retry hint: %+v", env.Error)
	}

	rec = doReq(t, h, http.MethodPost, "/v1/jobs", `{"kind":"census","census":{"max_n":99}}`, nil)
	decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)

	rec = doReq(t, h, http.MethodGet, "/v1/jobs/j-nope-000001", "", nil)
	decodeEnvelope(t, rec, http.StatusNotFound, api.CodeNotFound)
	rec = doReq(t, h, http.MethodDelete, "/v1/jobs/j-nope-000001", "", nil)
	decodeEnvelope(t, rec, http.StatusNotFound, api.CodeNotFound)
	rec = doReq(t, h, http.MethodGet, "/v1/jobs/j-nope-000001/results", "", nil)
	decodeEnvelope(t, rec, http.StatusNotFound, api.CodeNotFound)

	// Saturate the queue: the runner picks up one job, one waits, then the
	// depth-1 queue is full.  Keep submitting until the 429 shows up — the
	// first jobs may drain arbitrarily fast.
	sawFull := false
	for i := 0; i < 20 && !sawFull; i++ {
		rec = doReq(t, h, http.MethodPost, "/v1/jobs", `{"kind":"census","census":{"max_n":7}}`, nil)
		switch rec.Code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			env := decodeEnvelope(t, rec, http.StatusTooManyRequests, api.CodeQueueFull)
			if rec.Header().Get("Retry-After") == "" || env.Error.RetryAfterMS <= 0 {
				t.Fatalf("429 without retry hint: header %q, body %+v", rec.Header().Get("Retry-After"), env.Error)
			}
			sawFull = true
		default:
			t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
		}
	}
	if !sawFull {
		t.Fatal("queue never reported full")
	}

	// A server without an attached manager answers 503 on every jobs route.
	bare := New(Config{}).Handler()
	rec = doReq(t, bare, http.MethodPost, "/v1/jobs", `{"kind":"census","census":{"max_n":3}}`, nil)
	decodeEnvelope(t, rec, http.StatusServiceUnavailable, api.CodeUnavailable)
	rec = doReq(t, bare, http.MethodGet, "/v1/jobs", "", nil)
	decodeEnvelope(t, rec, http.StatusServiceUnavailable, api.CodeUnavailable)
	rec = doReq(t, bare, http.MethodGet, "/v1/jobs/x/results", "", nil)
	decodeEnvelope(t, rec, http.StatusServiceUnavailable, api.CodeUnavailable)
}

// TestJobsMetricsExposition checks the job gauges appear on /metrics once a
// manager is attached.
func TestJobsMetricsExposition(t *testing.T) {
	_, h := newJobServer(t, jobs.Config{})
	st := submitJob(t, h, `{"kind":"census","census":{"max_n":3}}`)
	waitJobDone(t, h, st.ID)
	rec := doReq(t, h, http.MethodGet, "/metrics", "", nil)
	body := rec.Body.String()
	for _, name := range []string{
		"embedserver_jobs_done 1",
		"embedserver_jobs_queue_capacity",
		"embedserver_jobs_shapes_total 512",
		"embedserver_jobs_result_bytes_total",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %q:\n%s", name, body)
		}
	}
}
