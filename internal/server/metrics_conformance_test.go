package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fabric/fabrichttp"
	"repro/internal/jobs"
	"repro/pkg/api"
)

// familyName is the Prometheus metric-name grammar this repo commits to:
// stricter than the spec (no uppercase, no colons) because every family we
// emit is lowercase snake_case and dashboards key off that.
var familyName = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// TestMetricsConformance is the /metrics lint the ISSUE asks for: against a
// server that has served plan, embed, compare, job, fabric, and SSE traffic
// (so no family is dead), the exposition must
//   - expose exactly the families MetricFamilies() declares (dashgen's
//     contract) — nothing missing, nothing undeclared;
//   - carry exactly one HELP and one TYPE line per family;
//   - use names matching [a-z_][a-z0-9_]*;
//   - render histogram _bucket series cumulative, ending in le="+Inf" with a
//     count equal to the _count sample.
func TestMetricsConformance(t *testing.T) {
	// A worker so the coordinator's fabric gauges have a live peer.
	worker := httptest.NewServer(New(Config{FabricSecret: testSecret}).Handler())
	t.Cleanup(worker.Close)

	s := New(Config{FabricSecret: testSecret})
	if err := s.AttachArtifact(buildArtifact(t, 3, 6)); err != nil {
		t.Fatal(err)
	}
	pool := fabric.NewPool(fabric.Config{Dial: fabrichttp.Dialer(testSecret), HealthEvery: -1})
	t.Cleanup(pool.Close)
	if err := pool.Add(worker.URL); err != nil {
		t.Fatal(err)
	}
	s.AttachFabric(pool)
	m, err := jobs.Open(jobs.Config{
		DataDir: t.TempDir(),
		Planner: s.Planner(),
		Fabric:  pool,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	s.AttachJobs(m)
	h := s.Handler()

	// Exercise every subsystem: serving endpoints (traced embed moves the
	// obs counters, a repeated plan moves the cache-hit tiers), a
	// distributed job (fabric dispatch/fold counters), and an SSE stream.
	for _, req := range []struct{ path, body string }{
		{"/v1/plan", `{"shape":"3x4x5"}`},
		{"/v1/plan", `{"shape":"3x4x5"}`},
		{"/v1/embed?debug=trace", `{"shape":"4x4x4"}`},
		{"/v1/compare", `{"shape":"3x3x5"}`},
	} {
		if rec := doReq(t, h, http.MethodPost, req.path, req.body, nil); rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", req.path, rec.Code, rec.Body.String())
		}
	}
	st := submitJob(t, h, `{"kind":"census","census":{"max_n":3},"distributed":true}`)
	if fin := waitJobDone(t, h, st.ID); fin.State != api.JobDone {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Error)
	}
	if rec := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("events: %d", rec.Code)
	}

	body := scrape(t, s)

	// Lint pass over the raw exposition.
	helps := make(map[string]int)
	types := make(map[string]int)
	kind := make(map[string]string)
	var order []string
	type bucketKey struct{ family, labels string }
	bucketSeen := make(map[bucketKey][]struct {
		le  string
		val float64
	})
	counts := make(map[bucketKey]float64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 4 || f[3] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			helps[f[2]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if types[f[2]] == 0 {
				order = append(order, f[2])
			}
			types[f[2]]++
			kind[f[2]] = f[3]
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, labels := m[1], strings.Trim(m[2], "{}")
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && kind[base] == "histogram" {
			// Split off the le label; the rest identifies the series.
			var le, rest string
			for _, kv := range strings.Split(labels, ",") {
				if val, ok := strings.CutPrefix(kv, "le="); ok {
					le = strings.Trim(val, `"`)
				} else if kv != "" {
					rest += kv + ","
				}
			}
			if le == "" {
				t.Fatalf("bucket sample without le label: %q", line)
			}
			k := bucketKey{base, rest}
			bucketSeen[k] = append(bucketSeen[k], struct {
				le  string
				val float64
			}{le, v})
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok && kind[base] == "histogram" {
			counts[bucketKey{base, labels + ","}] = v
		}
	}

	// Exactly one HELP and one TYPE per family, names within the grammar.
	for fam, n := range types {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", fam, n)
		}
		if helps[fam] != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", fam, helps[fam])
		}
		if !familyName.MatchString(fam) {
			t.Errorf("family name %q violates %s", fam, familyName)
		}
	}
	for fam := range helps {
		if types[fam] == 0 {
			t.Errorf("family %s has HELP but no TYPE", fam)
		}
	}

	// The exposed family set is exactly the declared contract.
	sort.Strings(order)
	want := MetricFamilies()
	if strings.Join(order, "\n") != strings.Join(want, "\n") {
		missing, extra := diffStrings(want, order)
		t.Errorf("exposed families diverge from MetricFamilies():\n  missing from scrape: %v\n  undeclared in promtext.go: %v",
			missing, extra)
	}

	// Histogram buckets: cumulative in emission order, ending at +Inf with
	// the series count.
	if len(bucketSeen) == 0 {
		t.Fatal("no histogram bucket series in a traffic-exercised scrape")
	}
	for k, series := range bucketSeen {
		prev := -1.0
		for _, s := range series {
			if s.val < prev {
				t.Errorf("%s{%sle=%q}: bucket value %v below previous %v (not cumulative)",
					k.family, k.labels, s.le, s.val, prev)
			}
			prev = s.val
		}
		last := series[len(series)-1]
		if last.le != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%q, want +Inf", k.family, k.labels, last.le)
		}
		if c, ok := counts[k]; !ok || c != last.val {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", k.family, k.labels, last.val, c)
		}
	}

	// Spot checks that the traffic actually moved the families dashboards
	// alert on — a conformance pass over dead zeros would prove nothing.
	samples := parseExposition(t, body)
	for _, want := range []string{
		"embedserver_plan_cache_hits_total",
		"embedserver_jobs_done",
		"embedserver_fabric_chunks_dispatched_total",
		"embedserver_fabric_chunks_folded_total",
		"embedserver_sse_events_total",
		"obs_spans_started_total",
	} {
		if samples[want] <= 0 {
			t.Errorf("%s = %v after traffic, want > 0", want, samples[want])
		}
	}
}

// diffStrings reports elements of want missing from got and vice versa
// (both sorted).
func diffStrings(want, got []string) (missing, extra []string) {
	w := make(map[string]bool, len(want))
	for _, s := range want {
		w[s] = true
	}
	g := make(map[string]bool, len(got))
	for _, s := range got {
		g[s] = true
		if !w[s] {
			extra = append(extra, s)
		}
	}
	for _, s := range want {
		if !g[s] {
			missing = append(missing, s)
		}
	}
	return missing, extra
}
