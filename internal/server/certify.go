package server

import (
	"repro/internal/bounds"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/pkg/api"
)

// This file assembles the api.Certificate served on /v1/plan, /v1/embed
// and /v1/compare from the certified floors of internal/bounds.  The
// bounds are permutation-consistent with each family's canonical form, so
// certificates are computed in the caller's axis order and agree with the
// cached canonical results.

// countCert records a served certificate on the metrics registry and
// passes it through.
func (s *Server) countCert(c *api.Certificate) *api.Certificate {
	if c != nil {
		s.m.certTotal.Add(1)
		if c.Optimal {
			s.m.certOptimal.Add(1)
		}
	}
	return c
}

// measuredCertificate certifies fully measured metrics: every gap is
// known, and Optimal means the embedding provably cannot be improved on
// any of the three measures in its cube.
func measuredCertificate(fam guest.Family, sh mesh.Shape, m api.Metrics) *api.Certificate {
	b := bounds.For(fam, sh, m.CubeDim)
	c := &api.Certificate{
		CubeDim: m.CubeDim,
		LowerBounds: api.LowerBounds{
			Dilation:   b.Dilation,
			Wirelength: b.Wirelength,
			Congestion: b.Congestion,
		},
		DilationGap:   m.Dilation - b.Dilation,
		WirelengthGap: m.Wirelength - b.Wirelength,
		CongestionGap: m.Congestion - b.Congestion,
	}
	c.GapToOptimal = int64(c.DilationGap) + c.WirelengthGap + int64(c.CongestionGap)
	c.Optimal = c.GapToOptimal == 0
	return c
}

// planCertificate certifies a plan before anything is built: only the
// dilation gap is evaluable (from the construction's a-priori bound;
// dilBound < 0 means the snake fallback carries none), wirelength and
// congestion gaps are unknown (−1).  A zero dilation gap is sound without
// routing — measured dilation is squeezed between the floor and the bound.
func planCertificate(fam guest.Family, sh mesh.Shape, cubeDim, dilBound int) *api.Certificate {
	b := bounds.For(fam, sh, cubeDim)
	c := &api.Certificate{
		CubeDim: cubeDim,
		LowerBounds: api.LowerBounds{
			Dilation:   b.Dilation,
			Wirelength: b.Wirelength,
			Congestion: b.Congestion,
		},
		WirelengthGap: -1,
		CongestionGap: -1,
	}
	if b.Dilation == 0 {
		// Edgeless guest: every metric measures zero, trivially optimal.
		c.WirelengthGap, c.CongestionGap = 0, 0
		c.Optimal = true
		return c
	}
	if dilBound < 0 {
		c.DilationGap = -1
		c.GapToOptimal = -1
		return c
	}
	c.DilationGap = dilBound - b.Dilation
	c.GapToOptimal = int64(c.DilationGap)
	c.Optimal = c.DilationGap == 0
	return c
}

// compareCertificate certifies the comparison as a whole at the minimal
// cube: each gap measures the best any minimal-cube technique achieved
// against the floor (techniques in a larger cube — the Gray baseline on
// non-Gray-minimal shapes — never weaken it).  The snake fallback always
// reaches the minimal cube, so a minimal-cube row exists.
func compareCertificate(fam guest.Family, sh mesh.Shape, rows []api.CompareRow) *api.Certificate {
	nmin := sh.MinCubeDim()
	var bestDil, bestCong int
	var bestWL int64
	found := false
	for _, row := range rows {
		if row.Metrics.CubeDim != nmin {
			continue
		}
		m := row.Metrics
		if !found {
			bestDil, bestWL, bestCong = m.Dilation, m.Wirelength, m.Congestion
			found = true
			continue
		}
		bestDil = min(bestDil, m.Dilation)
		bestWL = min(bestWL, m.Wirelength)
		bestCong = min(bestCong, m.Congestion)
	}
	if !found {
		return nil
	}
	b := bounds.For(fam, sh, nmin)
	c := &api.Certificate{
		CubeDim: nmin,
		LowerBounds: api.LowerBounds{
			Dilation:   b.Dilation,
			Wirelength: b.Wirelength,
			Congestion: b.Congestion,
		},
		DilationGap:   bestDil - b.Dilation,
		WirelengthGap: bestWL - b.Wirelength,
		CongestionGap: bestCong - b.Congestion,
	}
	c.GapToOptimal = int64(c.DilationGap) + c.WirelengthGap + int64(c.CongestionGap)
	c.Optimal = c.GapToOptimal == 0
	return c
}
