package server

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fabric/fabrichttp"
	"repro/internal/jobs"
	"repro/pkg/api"
)

const testSecret = "fabric-test-secret"

func chunkBody(t *testing.T, req api.ChunkRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func censusChunkReq(maxN, chunk int) api.ChunkRequest {
	return api.ChunkRequest{
		Version: api.Version,
		Job:     api.JobSubmitRequest{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: maxN}},
		Chunk:   chunk,
	}
}

// TestFabricEndpointsWithoutSecret: a server not started with a fabric
// secret is not a fabric member — the guarded endpoints answer 503, and
// /v1/peers without a pool answers 503 too.
func TestFabricEndpointsWithoutSecret(t *testing.T) {
	h := New(Config{}).Handler()
	body := chunkBody(t, censusChunkReq(3, 0))
	rec := doReq(t, h, http.MethodPost, "/v1/internal/chunks", body,
		map[string]string{api.FabricSecretHeader: "anything"})
	decodeEnvelope(t, rec, http.StatusServiceUnavailable, api.CodeUnavailable)
	rec = doReq(t, h, http.MethodPost, "/v1/peers", `{"addr":"http://x"}`, nil)
	decodeEnvelope(t, rec, http.StatusServiceUnavailable, api.CodeUnavailable)
	rec = doReq(t, h, http.MethodGet, "/v1/peers", "", nil)
	decodeEnvelope(t, rec, http.StatusServiceUnavailable, api.CodeUnavailable)
}

// TestFabricAuthRejected: with a secret configured, a missing or wrong
// X-Fabric-Secret is 401 with the unauthorized code, and the chunk is never
// executed.
func TestFabricAuthRejected(t *testing.T) {
	h := New(Config{FabricSecret: testSecret}).Handler()
	body := chunkBody(t, censusChunkReq(3, 0))
	for name, hdr := range map[string]map[string]string{
		"missing": nil,
		"wrong":   {api.FabricSecretHeader: "nope"},
	} {
		rec := doReq(t, h, http.MethodPost, "/v1/internal/chunks", body, hdr)
		if rec.Code != http.StatusUnauthorized {
			t.Errorf("%s secret: status %d, want 401", name, rec.Code)
			continue
		}
		decodeEnvelope(t, rec, http.StatusUnauthorized, api.CodeUnauthorized)
	}
}

// TestFabricChunkExecute: worker mode over HTTP — a valid chunk request
// returns the chunk's portable result; an invalid spec is a 400.
func TestFabricChunkExecute(t *testing.T) {
	h := New(Config{FabricSecret: testSecret}).Handler()
	auth := map[string]string{api.FabricSecretHeader: testSecret}

	rec := doReq(t, h, http.MethodPost, "/v1/internal/chunks", chunkBody(t, censusChunkReq(3, 1)), auth)
	if rec.Code != http.StatusOK {
		t.Fatalf("chunk execute: %d %s", rec.Code, rec.Body.String())
	}
	var res api.ChunkResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Version != api.Version || res.Chunk != 1 || res.Shapes == 0 || len(res.Rows) == 0 {
		t.Fatalf("chunk result: version %d chunk %d shapes %d rows %d bytes",
			res.Version, res.Chunk, res.Shapes, len(res.Rows))
	}

	bad := censusChunkReq(3, 0)
	bad.Job.Kind = "nonsense"
	rec = doReq(t, h, http.MethodPost, "/v1/internal/chunks", chunkBody(t, bad), auth)
	decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)

	oob := censusChunkReq(3, 99)
	rec = doReq(t, h, http.MethodPost, "/v1/internal/chunks", chunkBody(t, oob), auth)
	decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)
}

// TestFabricPeersJoinListMetrics: join registers a peer (secret-guarded),
// the public listing shows it, and /metrics exposes the fabric gauges.
func TestFabricPeersJoinListMetrics(t *testing.T) {
	worker := httptest.NewServer(New(Config{FabricSecret: testSecret}).Handler())
	t.Cleanup(worker.Close)

	s := New(Config{FabricSecret: testSecret})
	pool := fabric.NewPool(fabric.Config{Dial: fabrichttp.Dialer(testSecret), HealthEvery: -1})
	t.Cleanup(pool.Close)
	s.AttachFabric(pool)
	h := s.Handler()

	rec := doReq(t, h, http.MethodPost, "/v1/peers", `{"addr":"`+worker.URL+`"}`, nil)
	decodeEnvelope(t, rec, http.StatusUnauthorized, api.CodeUnauthorized)

	auth := map[string]string{api.FabricSecretHeader: testSecret}
	rec = doReq(t, h, http.MethodPost, "/v1/peers", `{"addr":"`+worker.URL+`"}`, auth)
	if rec.Code != http.StatusOK {
		t.Fatalf("join: %d %s", rec.Code, rec.Body.String())
	}
	rec = doReq(t, h, http.MethodGet, "/v1/peers", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("peers list: %d %s", rec.Code, rec.Body.String())
	}
	var pr api.PeersResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Peers) != 1 || pr.Peers[0].Addr != worker.URL || pr.Peers[0].State != api.PeerUp {
		t.Fatalf("peers = %+v, want the joined worker up", pr.Peers)
	}

	rec = doReq(t, h, http.MethodGet, "/metrics", "", nil)
	text := rec.Body.String()
	for _, want := range []string{
		`embedserver_fabric_peers{state="up"} 1`,
		`embedserver_fabric_peers{state="down"} 0`,
		"embedserver_fabric_chunks_dispatched_total",
		"embedserver_fabric_chunks_requeued_total",
		"embedserver_fabric_chunks_folded_total",
		`embedserver_fabric_peer_inflight{peer="` + worker.URL + `"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = doReq(t, h, http.MethodPost, "/v1/peers", `{"addr":""}`, auth)
	decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)
}

// TestFabricDistributedOverHTTP is the full wire-level path: a coordinator
// with two real HTTP workers runs a distributed census; the streamed result
// must be byte-identical to the same job run single-node.
func TestFabricDistributedOverHTTP(t *testing.T) {
	const jobBody = `{"kind":"census","census":{"max_n":4}}`

	// Single-node reference.
	_, hLocal := newJobServer(t, jobs.Config{})
	ref := submitJob(t, hLocal, jobBody)
	if st := waitJobDone(t, hLocal, ref.ID); st.State != api.JobDone {
		t.Fatalf("reference job ended %s", st.State)
	}
	recRef := doReq(t, hLocal, http.MethodGet, "/v1/jobs/"+ref.ID+"/results", "", nil)
	if recRef.Code != http.StatusOK {
		t.Fatalf("reference results: %d", recRef.Code)
	}

	// Two workers, plain servers with the shared secret.
	var workers []string
	for i := 0; i < 2; i++ {
		w := httptest.NewServer(New(Config{FabricSecret: testSecret}).Handler())
		t.Cleanup(w.Close)
		workers = append(workers, w.URL)
	}

	// Coordinator: pool over the real HTTP transport, no local fallback.
	pool := fabric.NewPool(fabric.Config{Dial: fabrichttp.Dialer(testSecret), HealthEvery: -1})
	t.Cleanup(pool.Close)
	for _, w := range workers {
		if err := pool.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Config{FabricSecret: testSecret})
	m, err := jobs.Open(jobs.Config{
		DataDir: t.TempDir(),
		Planner: s.Planner(),
		Fabric:  pool,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	s.AttachJobs(m)
	s.AttachFabric(pool)
	h := s.Handler()

	st := submitJob(t, h, `{"kind":"census","census":{"max_n":4},"distributed":true}`)
	if fin := waitJobDone(t, h, st.ID); fin.State != api.JobDone {
		t.Fatalf("distributed job ended %s (%s)", fin.State, fin.Error)
	}
	rec := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("results: %d", rec.Code)
	}
	if rec.Body.String() != recRef.Body.String() {
		t.Fatalf("distributed-over-HTTP stream differs from single-node (%d vs %d bytes)",
			rec.Body.Len(), recRef.Body.Len())
	}
	// Both workers actually executed chunks.
	for _, ps := range pool.Stats().Peers {
		if ps.Dispatched == 0 {
			t.Errorf("peer %s executed no chunks", ps.Addr)
		}
	}
}
