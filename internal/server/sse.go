package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Server-sent-events live job streaming: GET /v1/jobs/{id}/events is the SSE
// twin of the NDJSON results endpoint, built on the same committed-offset
// protocol.
//
// Event framing: each committed NDJSON result line becomes one "row" event
// whose data is the line without its trailing newline and whose SSE id is
// the byte offset just PAST that line in the result stream.  So the
// concatenation of row payloads, each followed by "\n", is byte-identical to
// the results download — and a client reconnecting with Last-Event-ID
// resumes exactly, because committed offsets are replay-stable across
// coordinator restarts.  "progress", "fabric" and "done" events interleave
// with the rows but carry no id, so they never perturb resume offsets.
//
// Fanout: one follower goroutine per job (started by the first subscriber,
// exiting with the last) polls the manager at resultsPollInterval and
// broadcasts to per-subscriber buffered channels.  A subscriber whose buffer
// is full is dropped on the spot — counted on /metrics, never blocking the
// feed, and certainly never the job runner, which does not know the hub
// exists.  A dropped client reconnects with its Last-Event-ID and misses
// nothing.

// sseSubBuffer bounds each subscriber's event backlog.  At the default poll
// interval a healthy client drains a handful of events per tick; hundreds of
// queued events means the client has stalled for many seconds.
const sseSubBuffer = 256

// sseEvent is one server-sent event.  id is the result-stream byte offset
// after this row for "row" events, -1 for the id-less kinds.
type sseEvent struct {
	typ  string // row | progress | fabric | done
	id   int64
	data []byte
}

// sseSub is one subscriber's endpoint handle.
type sseSub struct {
	ch chan sseEvent
	// frontier is the feed's row frontier at subscribe time: every row at or
	// past it will arrive on ch, everything before it is caught up from the
	// file.
	frontier int64
	// dropped is set (by the feed goroutine, before closing ch) when the
	// subscriber was evicted for falling behind.
	dropped atomic.Bool
}

// sseHub fans job events out to SSE subscribers.  All membership state is
// guarded by one mutex — subscribe/unsubscribe and feed teardown are rare
// next to broadcasts, which only hold it long enough to snapshot.
type sseHub struct {
	s *Server

	mu    sync.Mutex
	feeds map[string]*sseFeed

	subscribers atomic.Int64
	events      atomic.Uint64
	dropped     atomic.Uint64
}

func newSSEHub(s *Server) *sseHub {
	return &sseHub{s: s, feeds: make(map[string]*sseFeed)}
}

// sseFeed is the per-job follower: one goroutine tailing the job's committed
// results and status on behalf of every subscriber.
type sseFeed struct {
	hub *sseHub
	id  string

	// Guarded by hub.mu:
	subs     map[*sseSub]struct{}
	frontier int64 // result bytes already broadcast as row events

	// Owned by the run goroutine:
	lastProgress []byte
	lastFabric   []byte
}

// subscribe registers a new subscriber for a job, starting the feed if it is
// the first.  The returned sub's frontier tells the caller how far to catch
// up from the file before reading the channel.
func (h *sseHub) subscribe(id string) *sseSub {
	sub := &sseSub{ch: make(chan sseEvent, sseSubBuffer)}
	h.mu.Lock()
	f := h.feeds[id]
	if f == nil {
		f = &sseFeed{hub: h, id: id, subs: make(map[*sseSub]struct{})}
		h.feeds[id] = f
		go f.run()
	}
	f.subs[sub] = struct{}{}
	sub.frontier = f.frontier
	h.mu.Unlock()
	h.subscribers.Add(1)
	return sub
}

// unsubscribe removes a subscriber (handler exit).  The channel is never
// closed here — only the feed goroutine closes channels — so an in-flight
// broadcast can still complete its non-blocking send harmlessly.
func (h *sseHub) unsubscribe(id string, sub *sseSub) {
	h.mu.Lock()
	f := h.feeds[id]
	ok := false
	if f != nil {
		_, ok = f.subs[sub]
		delete(f.subs, sub)
	}
	h.mu.Unlock()
	if ok {
		h.subscribers.Add(-1)
	}
}

// broadcast delivers one event to every current subscriber, evicting any
// whose buffer is full.  Row events advance the feed's frontier first, so a
// concurrent subscriber either sees the new frontier (and catches up from
// the file) or is in the snapshot (and gets the event) — never neither.
func (f *sseFeed) broadcast(ev sseEvent) {
	h := f.hub
	h.mu.Lock()
	if ev.typ == "row" {
		f.frontier = ev.id
	}
	subs := make([]*sseSub, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- ev:
			h.events.Add(1)
		default:
			f.drop(s)
		}
	}
}

// drop evicts one slow subscriber.  Runs only on the feed goroutine, which
// is also the only closer of channels, so send/close never race.
func (f *sseFeed) drop(s *sseSub) {
	h := f.hub
	h.mu.Lock()
	_, ok := f.subs[s]
	delete(f.subs, s)
	h.mu.Unlock()
	if ok {
		s.dropped.Store(true)
		close(s.ch)
		h.dropped.Add(1)
		h.subscribers.Add(-1)
	}
}

// finish broadcasts an optional final event, then closes every subscriber
// channel and removes the feed.
func (f *sseFeed) finish(ev *sseEvent) {
	if ev != nil {
		f.broadcast(*ev)
	}
	h := f.hub
	h.mu.Lock()
	delete(h.feeds, f.id)
	subs := make([]*sseSub, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	f.subs = map[*sseSub]struct{}{}
	h.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
	h.subscribers.Add(-int64(len(subs)))
}

// sseReadChunk bounds how many result bytes one poll iteration reads, so a
// huge checkpoint flush cannot stall progress events behind a single read.
const sseReadChunk = 1 << 20

// run is the follower loop: tail committed rows, diff status into progress /
// fabric events, and finish with a "done" event when the job is terminal and
// fully streamed.  Exits when the job disappears or the last subscriber
// leaves.
func (f *sseFeed) run() {
	h := f.hub
	var file *os.File
	defer func() {
		if file != nil {
			file.Close()
		}
	}()
	for {
		info, err := h.s.jobs.Results(f.id)
		if err != nil {
			f.finish(nil) // evicted or unknown; subscribers see the stream end
			return
		}
		if file == nil {
			// Queued jobs have no results file yet; keep trying.
			file, _ = os.Open(info.Path)
		}
		for file != nil && info.Committed > f.rowFrontier() {
			base := f.rowFrontier()
			n := info.Committed - base
			if n > sseReadChunk {
				n = sseReadChunk
			}
			buf := make([]byte, n)
			m, err := file.ReadAt(buf, base)
			if err != nil && err != io.EOF {
				break
			}
			buf = buf[:m]
			// Emit only complete lines; committed offsets are chunk-aligned
			// and chunks are whole NDJSON lines, so a partial tail can only
			// come from the bounded read above.
			emitted := false
			for {
				i := bytes.IndexByte(buf, '\n')
				if i < 0 {
					break
				}
				f.broadcast(sseEvent{typ: "row", id: base + int64(i) + 1, data: buf[:i:i]})
				buf = buf[i+1:]
				base += int64(i) + 1
				emitted = true
			}
			if !emitted {
				break
			}
		}
		st, stErr := h.s.jobs.Status(f.id)
		if stErr == nil {
			if b, err := json.Marshal(st); err == nil && !bytes.Equal(b, f.lastProgress) {
				f.lastProgress = b
				f.broadcast(sseEvent{typ: "progress", id: -1, data: b})
			}
			if st.Fabric != nil {
				if b, err := json.Marshal(st.Fabric); err == nil && !bytes.Equal(b, f.lastFabric) {
					f.lastFabric = b
					f.broadcast(sseEvent{typ: "fabric", id: -1, data: b})
				}
			}
			if st.State.Terminal() && f.rowFrontier() >= info.Committed {
				f.finish(&sseEvent{typ: "done", id: -1, data: f.lastProgress})
				return
			}
		}
		// Last one out turns off the light: no subscribers, no feed.
		h.mu.Lock()
		if len(f.subs) == 0 {
			delete(h.feeds, f.id)
			h.mu.Unlock()
			return
		}
		h.mu.Unlock()
		time.Sleep(resultsPollInterval)
	}
}

func (f *sseFeed) rowFrontier() int64 {
	f.hub.mu.Lock()
	defer f.hub.mu.Unlock()
	return f.frontier
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w io.Writer, ev sseEvent) error {
	var err error
	if ev.id >= 0 {
		_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.typ, ev.id, ev.data)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.typ, ev.data)
	}
	return err
}

// handleJobEvents streams a job live over SSE.  Resume: the Last-Event-ID
// header (or ?offset=) is a result-stream byte offset; rows before it are
// skipped, rows from it on are replayed from the committed file, then the
// stream goes live.  ?rows=off suppresses row events for pure progress
// watching (embedctl job watch).  Registered outside instrument for the same
// reason as the results stream: it follows the job for its whole life.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if !s.jobsManager(w, r) {
		return
	}
	id := r.PathValue("id")
	info, err := s.jobs.Results(id)
	if err != nil {
		respondErr(w, r, jobsError(err))
		return
	}
	offset := int64(0)
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		offset, err = strconv.ParseInt(h, 10, 64)
		if err != nil || offset < 0 {
			respondErr(w, r, errBadRequest("bad Last-Event-ID %q", h))
			return
		}
	} else if q := r.URL.Query().Get("offset"); q != "" {
		offset, err = strconv.ParseInt(q, 10, 64)
		if err != nil || offset < 0 {
			respondErr(w, r, errBadRequest("bad offset %q", q))
			return
		}
	}
	if offset > info.Committed {
		respondErr(w, r, errBadRequest("offset %d is past the committed stream length %d", offset, info.Committed))
		return
	}
	rows := r.URL.Query().Get("rows") != "off"

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	sub := s.sse.subscribe(id)
	defer s.sse.unsubscribe(id, sub)

	// Catch up rows in [offset, feed frontier) straight from the file; the
	// channel carries everything at or past the frontier.
	cur := offset
	if rows && sub.frontier > cur {
		if f, err := os.Open(info.Path); err == nil {
			rd := io.NewSectionReader(f, cur, sub.frontier-cur)
			br := make([]byte, 0, 64<<10)
			tmp := make([]byte, 64<<10)
			for {
				n, rerr := rd.Read(tmp)
				br = append(br, tmp[:n]...)
				for {
					i := bytes.IndexByte(br, '\n')
					if i < 0 {
						break
					}
					if werr := writeSSE(w, sseEvent{typ: "row", id: cur + int64(i) + 1, data: br[:i]}); werr != nil {
						f.Close()
						return
					}
					br = br[i+1:]
					cur += int64(i) + 1
				}
				if rerr != nil {
					break
				}
			}
			f.Close()
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.ch:
			if !ok {
				return // feed finished, or we were dropped as a slow client
			}
			if ev.typ == "row" {
				if !rows || ev.id <= cur {
					continue // already served during catch-up
				}
				cur = ev.id
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
