package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/pkg/api"
)

// sseTestEvent is one parsed text/event-stream frame.  id is -1 when the
// frame carried no id line.
type sseTestEvent struct {
	typ  string
	id   int64
	data string
}

// parseSSE parses a text/event-stream body into its frames, failing the test
// on any framing violation (unknown field, bad id, dataless frame).
func parseSSE(t *testing.T, body string) []sseTestEvent {
	t.Helper()
	var out []sseTestEvent
	for _, block := range strings.Split(body, "\n\n") {
		if block == "" {
			continue
		}
		ev := sseTestEvent{id: -1}
		seenData := false
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.typ = line[len("event: "):]
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseInt(line[len("id: "):], 10, 64)
				if err != nil {
					t.Fatalf("bad SSE id line %q: %v", line, err)
				}
				ev.id = id
			case strings.HasPrefix(line, "data: "):
				ev.data = line[len("data: "):]
				seenData = true
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		if ev.typ == "" || !seenData {
			t.Fatalf("SSE frame missing event/data: %q", block)
		}
		out = append(out, ev)
	}
	return out
}

// sseRows filters the row events and re-derives the NDJSON stream they
// carry, checking that each row's id is the byte offset just past its line.
func sseRows(t *testing.T, evs []sseTestEvent, from int64) (rows []sseTestEvent, ndjson string) {
	t.Helper()
	cur := from
	var b strings.Builder
	for _, ev := range evs {
		if ev.typ != "row" {
			if ev.id != -1 {
				t.Fatalf("%s event carries id %d, want none", ev.typ, ev.id)
			}
			continue
		}
		want := cur + int64(len(ev.data)) + 1
		if ev.id != want {
			t.Fatalf("row id = %d, want %d (offset %d + %d data bytes + newline)",
				ev.id, want, cur, len(ev.data))
		}
		cur = ev.id
		b.WriteString(ev.data)
		b.WriteByte('\n')
		rows = append(rows, ev)
	}
	return rows, b.String()
}

// TestSSEStreamMatchesResultsDownload: the full event stream of a finished
// job re-assembles byte-identically into the NDJSON download, interleaves at
// least one progress event, and terminates with a done event carrying the
// terminal status.
func TestSSEStreamMatchesResultsDownload(t *testing.T) {
	_, h := newJobServer(t, jobs.Config{})
	st := submitJob(t, h, `{"kind":"census","census":{"max_n":4}}`)
	if fin := waitJobDone(t, h, st.ID); fin.State != api.JobDone {
		t.Fatalf("job ended %s", fin.State)
	}
	ndjson := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "", nil)
	if ndjson.Code != http.StatusOK {
		t.Fatalf("results: %d", ndjson.Code)
	}

	rec := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	evs := parseSSE(t, rec.Body.String())
	rows, got := sseRows(t, evs, 0)
	if got != ndjson.Body.String() {
		t.Fatalf("reassembled rows differ from NDJSON download (%d vs %d bytes)",
			len(got), ndjson.Body.Len())
	}
	if len(rows) == 0 {
		t.Fatal("no row events")
	}
	last := evs[len(evs)-1]
	if last.typ != "done" {
		t.Fatalf("last event = %q, want done", last.typ)
	}
	if !strings.Contains(last.data, `"done"`) {
		t.Fatalf("done event data %q does not carry the terminal status", last.data)
	}
	var progress bool
	for _, ev := range evs {
		if ev.typ == "progress" {
			progress = true
		}
	}
	if !progress {
		t.Error("stream carried no progress event")
	}

	// rows=off: same stream shape, no row events.
	rec = doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/events?rows=off", "", nil)
	evs = parseSSE(t, rec.Body.String())
	for _, ev := range evs {
		if ev.typ == "row" {
			t.Fatalf("rows=off stream still carries row events")
		}
	}
	if evs[len(evs)-1].typ != "done" {
		t.Fatalf("rows=off stream did not end with done")
	}
}

// openJobServerAt opens a server over an existing jobs data dir and returns
// the manager so the test can stop it ("kill the server") mid-scenario.
func openJobServerAt(t *testing.T, dir string) (*Server, http.Handler, *jobs.Manager) {
	t.Helper()
	s := New(Config{})
	m, err := jobs.Open(jobs.Config{
		DataDir: dir,
		Planner: s.Planner(),
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachJobs(m)
	return s, s.Handler(), m
}

// TestSSEResumeAcrossRestart is the ISSUE's resume criterion: a client that
// consumed a prefix of the stream before the server died reconnects to a
// fresh process on the same data dir with Last-Event-ID, and the
// concatenation of the two streams' row payloads is byte-identical to the
// NDJSON download.
func TestSSEResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, h, m := openJobServerAt(t, dir)
	st := submitJob(t, h, `{"kind":"census","census":{"max_n":4}}`)
	if fin := waitJobDone(t, h, st.ID); fin.State != api.JobDone {
		t.Fatalf("job ended %s", fin.State)
	}
	ndjson := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/results", "", nil).Body.String()

	// First connection: the "client" processes only the first half of the
	// rows before its server is killed — exactly the state of a consumer cut
	// off mid-stream, since SSE delivers a prefix in order.
	rec := doReq(t, h, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "", nil)
	rows, _ := sseRows(t, parseSSE(t, rec.Body.String()), 0)
	if len(rows) < 2 {
		t.Fatalf("need at least 2 rows to cut the stream, got %d", len(rows))
	}
	prefix := rows[:len(rows)/2]
	lastID := prefix[len(prefix)-1].id
	var got strings.Builder
	for _, ev := range prefix {
		got.WriteString(ev.data)
		got.WriteByte('\n')
	}

	// Kill: stop the manager, then bring up a new server on the same dir.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	m.Close(ctx)
	cancel()
	_, h2, m2 := openJobServerAt(t, dir)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Close(ctx)
	})

	// Reconnect with Last-Event-ID; rows resume at the exact byte offset.
	rec = doReq(t, h2, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "",
		map[string]string{"Last-Event-ID": strconv.FormatInt(lastID, 10)})
	if rec.Code != http.StatusOK {
		t.Fatalf("resumed events: %d %s", rec.Code, rec.Body.String())
	}
	resumed, tail := sseRows(t, parseSSE(t, rec.Body.String()), lastID)
	if len(resumed) == 0 {
		t.Fatal("resumed stream carried no rows")
	}
	if first := resumed[0].id; first <= lastID {
		t.Fatalf("resumed stream replayed already-consumed rows (first id %d <= %d)", first, lastID)
	}
	got.WriteString(tail)
	if got.String() != ndjson {
		t.Fatalf("prefix + resumed rows differ from NDJSON download (%d vs %d bytes)",
			got.Len(), len(ndjson))
	}

	// An offset past the committed length is a client bug, not a hang.
	rec = doReq(t, h2, http.MethodGet, "/v1/jobs/"+st.ID+"/events", "",
		map[string]string{"Last-Event-ID": strconv.FormatInt(int64(len(ndjson))+1, 10)})
	decodeEnvelope(t, rec, http.StatusBadRequest, api.CodeBadRequest)
}

// TestSSESlowSubscriberDropped: a subscriber that stops draining is evicted
// once its buffer fills — the broadcast never blocks — and the eviction is
// visible on /metrics.
func TestSSESlowSubscriberDropped(t *testing.T) {
	s := New(Config{})
	hub := s.sse
	f := &sseFeed{hub: hub, id: "stalled", subs: make(map[*sseSub]struct{})}
	sub := &sseSub{ch: make(chan sseEvent, sseSubBuffer)}
	hub.mu.Lock()
	hub.feeds[f.id] = f
	f.subs[sub] = struct{}{}
	hub.mu.Unlock()
	hub.subscribers.Add(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sseSubBuffer+8; i++ {
			f.broadcast(sseEvent{typ: "progress", id: -1, data: []byte("{}")})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("broadcast blocked on a stalled subscriber")
	}
	if !sub.dropped.Load() {
		t.Fatal("stalled subscriber was not marked dropped")
	}
	closed := false
	timeout := time.After(5 * time.Second)
	for !closed {
		select {
		case _, ok := <-sub.ch:
			closed = !ok
		case <-timeout:
			t.Fatal("dropped subscriber's channel was not closed")
		}
	}
	if got := hub.dropped.Load(); got != 1 {
		t.Fatalf("hub.dropped = %d, want 1", got)
	}
	if got := hub.subscribers.Load(); got != 0 {
		t.Fatalf("hub.subscribers = %d, want 0 after drop", got)
	}
	samples := parseExposition(t, scrape(t, s))
	if v := samples["embedserver_sse_dropped_total"]; v != 1 {
		t.Fatalf("embedserver_sse_dropped_total = %v, want 1", v)
	}
	hub.mu.Lock()
	delete(hub.feeds, f.id)
	hub.mu.Unlock()
}

// BenchmarkSSEFanout measures broadcast-to-drain throughput at several
// fanout widths; the derived events/s metric lands in BENCH_PR9.json via
// make bench-json.  A catch-up barrier every half-buffer keeps the drainers
// within the subscriber buffer, so the number measures delivery to live
// clients rather than the cost of evicting everyone and broadcasting into an
// empty map.
func BenchmarkSSEFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 128} {
		b.Run("subs="+strconv.Itoa(subs), func(b *testing.B) {
			s := New(Config{})
			hub := s.sse
			f := &sseFeed{hub: hub, id: "bench", subs: make(map[*sseSub]struct{})}
			hub.mu.Lock()
			hub.feeds[f.id] = f
			hub.mu.Unlock()
			var delivered atomic.Int64
			var drained sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub := &sseSub{ch: make(chan sseEvent, sseSubBuffer)}
				hub.mu.Lock()
				f.subs[sub] = struct{}{}
				hub.mu.Unlock()
				hub.subscribers.Add(1)
				drained.Add(1)
				go func() {
					defer drained.Done()
					for range sub.ch {
						delivered.Add(1)
					}
				}()
			}
			row := []byte(`{"shape":"4x4x4","plan":"bench"}`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.broadcast(sseEvent{typ: "row", id: int64(i+1) * int64(len(row)+1), data: row})
				if (i+1)%(sseSubBuffer/2) == 0 {
					target := int64(i+1) * int64(subs)
					for delivered.Load() < target {
						runtime.Gosched()
					}
				}
			}
			for delivered.Load() < int64(b.N)*int64(subs) {
				runtime.Gosched()
			}
			b.StopTimer()
			f.finish(nil)
			drained.Wait()
			if n := hub.dropped.Load(); n != 0 {
				b.Fatalf("%d subscribers dropped during a paced benchmark", n)
			}
			b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds(), "events/s")
		})
	}
}
