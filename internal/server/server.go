// Package server exposes the planner, the metrics engine and the network
// simulator as a production HTTP service (stdlib net/http only):
//
//	POST   /v1/plan              plan a shape without building it
//	POST   /v1/embed             plan + build + measure (optionally the serialized map)
//	POST   /v1/compare           per-technique metrics, optionally a simnet stencil round
//	POST   /v1/jobs              submit an asynchronous batch sweep (202)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status and progress
//	GET    /v1/jobs/{id}/results stream the job's NDJSON results (offset-resumable)
//	GET    /v1/jobs/{id}/events  live job stream over SSE (rows + progress; Last-Event-ID resume)
//	GET    /v1/jobs/{id}/artifact download a finished plancensus job's artifact
//	GET    /v1/jobs/{id}/trace   download the job's span tree (stitched across the fabric)
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text exposition
//
// Wire types live in pkg/api — the server serves exactly those shapes (the
// declarations below are aliases), and every non-2xx response is the
// api.ErrorResponse envelope.
//
// The request path is cache → coalescer → planner → metrics engine: a
// bounded LRU holds fully-measured results keyed by canonical (axis-sorted)
// shape + variant, a singleflight group collapses a thundering herd on the
// same key into one computation, and only the flight leader runs the
// planner.  Requests carry a per-request timeout context; a concurrency
// semaphore sheds excess load with 429 + Retry-After.  Computations are
// detached from request contexts, so a timed-out leader still populates the
// cache for its followers and for the retry.
//
// /v1/plan misses additionally walk the tier hierarchy of tiers.go — the
// O(1) closed-form classifier and (when AttachArtifact has loaded one) the
// mmap'd plan-census artifact — before paying for the planner, and
// GET /v1/jobs/{id}/artifact downloads a finished plancensus job's artifact
// file.
//
// Cache entries are computed on the canonical shape.  Every metric the API
// serves is invariant under guest axis relabeling (the multiset of guest
// edges' endpoint images is unchanged), so a hit for a permuted request only
// rewrites the guest string and — when the map is requested — relabels the
// node map; it never re-measures.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/fabric"
	"repro/internal/guest"
	"repro/internal/jobs"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/reshape"
	"repro/internal/simnet"
	"repro/pkg/api"
)

// APIVersion is the version field stamped on every v1 response body.
const APIVersion = api.Version

// Aliases for the versioned wire types: handlers and existing callers keep
// their names, pkg/api keeps the single source of truth.
type (
	PlanRequest     = api.PlanRequest
	PlanResponse    = api.PlanResponse
	EmbedRequest    = api.EmbedRequest
	EmbedResponse   = api.EmbedResponse
	CompareRequest  = api.CompareRequest
	CompareRow      = api.CompareRow
	CompareResponse = api.CompareResponse
	DebugInfo       = api.DebugInfo
)

// maxCompareNodes bounds the guests /v1/compare accepts: a compare builds
// several embeddings and optionally simulates a stencil exchange, so it is
// far more expensive per node than /v1/embed.
const maxCompareNodes = 1 << 20

// Config tunes a Server.  The zero value is usable: defaults are filled in
// by New.
type Config struct {
	// Workers bounds the metrics-engine parallelism per measurement
	// (values below one mean GOMAXPROCS, as in internal/sweep).
	Workers int
	// CacheSize bounds the LRU of fully-measured results (default 1024;
	// negative disables caching).
	CacheSize int
	// MaxInflight bounds concurrently served API requests; excess load is
	// shed with 429 (default 256).
	MaxInflight int
	// Timeout is the per-request deadline (default 30s).
	Timeout time.Duration
	// MaxNodes is the largest guest the API will embed; bigger shapes get
	// 422 (default 1<<24).
	MaxNodes int
	// Opts are the planner options (zero value: core.DefaultOptions).
	Opts core.Options
	// Logger, when non-nil, receives one structured access-log record per
	// API request (request ID, endpoint, shape, source, status, duration).
	// nil disables logging entirely — the hot path then allocates nothing
	// for it, not even the request ID.
	Logger *slog.Logger
	// FabricSecret, when non-empty, enables the fabric worker endpoints
	// (POST /v1/internal/chunks, POST /v1/peers) guarded by the
	// X-Fabric-Secret header.  Empty means this server is not a fabric
	// member: those endpoints answer 503.
	FabricSecret string
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 1 << 24
	}
	if c.Opts.SolverBudget == 0 && c.Opts.SolverSeed == 0 && c.Opts.Cost == nil {
		c.Opts = core.DefaultOptions
	}
	return c
}

// Server is the embedding service.  It is immutable after New and safe for
// concurrent use; plug Handler into an http.Server (whose Shutdown drains
// in-flight requests — handlers never outlive their ResponseWriter).
type Server struct {
	cfg      Config
	planner  *core.Planner
	cache    *lruCache
	flights  *flightGroup
	sem      chan struct{}
	m        *metrics
	jobs     *jobs.Manager      // nil until AttachJobs; jobs endpoints 503 without it
	artifact *artifact.Artifact // nil until AttachArtifact; L1 plan tier (see tiers.go)
	pool     *fabric.Pool       // nil until AttachFabric; peer endpoints 503 without it
	sse      *sseHub            // live job-event fanout (see sse.go)
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		planner: core.NewPlanner(cfg.Opts),
		cache:   newLRUCache(cfg.CacheSize),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.MaxInflight),
		m:       newMetrics(),
	}
	s.sse = newSSEHub(s)
	return s
}

// Planner exposes the server's planner so the job manager can share it (a
// plansweep job then warms the same plan cache the serving path reads).
func (s *Server) Planner() *core.Planner { return s.planner }

// AttachJobs wires a job manager into the /v1/jobs endpoints.  Call it
// before Handler is serving; without it those endpoints answer 503.
func (s *Server) AttachJobs(m *jobs.Manager) { s.jobs = m }

// AttachFabric wires a fabric pool into the /v1/peers endpoints and the
// /metrics fabric gauges.  Call it before Handler is serving.
func (s *Server) AttachFabric(p *fabric.Pool) { s.pool = p }

// CacheStats returns the result cache's counters (for tests and /metrics).
func (s *Server) CacheStats() ResultCacheStats { return s.cache.stats() }

// Coalesced returns how many requests joined an in-flight computation.
func (s *Server) Coalesced() uint64 { return s.m.coalesced.Load() }

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("POST /v1/plan", s.instrument("plan", s.handlePlan))
	mux.Handle("POST /v1/embed", s.instrument("embed", s.handleEmbed))
	mux.Handle("POST /v1/compare", s.instrument("compare", s.handleCompare))
	mux.Handle("POST /v1/jobs", s.instrument("jobs-submit", s.handleJobSubmit))
	mux.Handle("GET /v1/jobs", s.instrument("jobs-list", s.handleJobList))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs-status", s.handleJobStatus))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("jobs-cancel", s.handleJobCancel))
	// The results stream long-polls until the job finishes, so it must not
	// occupy an inflight slot or run under the request timeout; the artifact
	// download can be hundreds of MB, so it too stays outside the timeout.
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleJobArtifact)
	// The SSE stream follows the job for its whole life (same reasoning);
	// the trace download is one small file but pairs with the artifact.
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	// Fabric: chunk execution is long-running compute and lives outside
	// instrument for the same reason as the results stream; the peer
	// endpoints are tiny but share the secret guard, so they stay together.
	mux.HandleFunc("POST /v1/internal/chunks", s.handleChunkExecute)
	mux.HandleFunc("GET /v1/peers", s.handlePeersList)
	mux.HandleFunc("POST /v1/peers", s.handlePeersJoin)
	return mux
}

// statusWriter records the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an API handler with load shedding, the in-flight gauge,
// the per-request timeout context, and latency/request accounting.  A debug
// request (?debug=trace / X-Debug-Trace: 1) additionally runs under a
// per-request obs root span whose phases the handlers fill in; when a logger
// is configured every request emits one structured access-log record.  With
// neither in play the wrapper is byte-for-byte the old hot path.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		logger := s.cfg.Logger
		debug := debugRequested(r)
		var meta *reqMeta
		start := time.Now()
		if debug || logger != nil {
			meta = &reqMeta{id: nextRequestID(), debug: debug}
			w.Header().Set("X-Request-Id", meta.id)
		}
		if debug {
			rctx, root := obs.StartRoot(r.Context(), "request")
			root.SetAttr("endpoint", endpoint)
			root.SetAttr("request_id", meta.id)
			meta.root = root
			r = r.WithContext(rctx)
		}
		// The semaphore acquire is non-blocking (excess load sheds rather
		// than queues), so queue-wait measures the shed decision itself; it
		// is kept as a phase so the span schema is stable if that changes.
		var qspan *obs.Span
		if meta != nil && meta.root != nil {
			_, qspan = obs.Start(r.Context(), "queue-wait")
		}
		select {
		case s.sem <- struct{}{}:
			qspan.End()
		default:
			qspan.End()
			if meta != nil {
				meta.root.End()
			}
			s.m.shed.Add(1)
			writeAPIError(w, meta, &apiError{
				status: http.StatusTooManyRequests, code: api.CodeOverCapacity,
				msg: "server at capacity", retryAfter: time.Second,
			})
			s.m.observe(endpoint, http.StatusTooManyRequests, 0)
			if logger != nil {
				logger.LogAttrs(r.Context(), slog.LevelWarn, "request shed",
					slog.String("request_id", meta.id),
					slog.String("endpoint", endpoint),
					slog.String("method", r.Method),
					slog.Bool("shed", true),
					slog.Int("status", http.StatusTooManyRequests),
					slog.Duration("duration", time.Since(start)))
			}
			return
		}
		s.m.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		if meta != nil {
			ctx = context.WithValue(ctx, reqMetaKey, meta)
		}
		h(sw, r.WithContext(ctx))
		cancel()
		s.m.inflight.Add(-1)
		<-s.sem
		dur := time.Since(start)
		if meta != nil && meta.root != nil {
			meta.root.SetAttr("status", sw.code)
			meta.root.End()
		}
		if logger != nil {
			lvl := slog.LevelInfo
			switch {
			case sw.code >= 500:
				lvl = slog.LevelError
			case sw.code >= 400:
				lvl = slog.LevelWarn
			}
			logger.LogAttrs(r.Context(), lvl, "request",
				slog.String("request_id", meta.id),
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.String("shape", meta.shape),
				slog.String("mode", meta.mode),
				slog.String("source", meta.source),
				slog.Bool("debug", debug),
				slog.Int("status", sw.code),
				slog.Duration("duration", dur))
		}
		s.m.observe(endpoint, sw.code, dur.Seconds())
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// parseShapeField validates a request shape: parse errors are 400 and
// oversized guests are 422.  The node count is computed overflow-checked —
// mesh.Shape.Nodes would wrap silently on absurd axes.
func (s *Server) parseShapeField(shape string, maxNodes int) (mesh.Shape, error) {
	sh, err := mesh.ParseShape(shape)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if err := sh.Validate(); err != nil {
		return nil, errBadRequest("%v", err)
	}
	nodes := 1
	for _, l := range sh {
		if nodes > maxNodes/l {
			return nil, errTooLarge("shape %s exceeds the %d-node limit", sh, maxNodes)
		}
		nodes *= l
	}
	return sh, nil
}

// parseFamilyField resolves a request's guest family ("" means mesh); an
// unregistered name is a 400.
func parseFamilyField(name string) (guest.Family, error) {
	d, err := guest.ByName(name)
	if err != nil {
		return guest.Mesh, errBadRequest("%v", err)
	}
	return d.Family, nil
}

// famEcho is the response echo of a guest family.  Since schema v2 it is
// always the canonical name — "mesh" included — so clients never need the
// empty-means-mesh convention to read a response.
func famEcho(f guest.Family) string {
	return f.String()
}

// famKey is the family's cache-key segment: empty for mesh (pre-family keys
// unchanged), "<family>|" otherwise — a 4x4x4 torus request must never hit
// the 4x4x4 mesh entry.
func famKey(f guest.Family) string {
	if f == guest.Mesh {
		return ""
	}
	return f.String() + "|"
}

// cachedResult is one fully-measured LRU entry, always in canonical axis
// order.  Entries are immutable after insertion.
type cachedResult struct {
	plan     string
	method   int
	dilBound int // plan's a-priori dilation bound; -1 when unknown/none
	cubeDim  int
	measured bool
	metrics  embed.Metrics
	emb      *embed.Embedding // nil for plan-only entries
	compare  *CompareResponse // only for compare entries
}

// lookup is the cache → coalescer → compute path shared by the endpoints.
// source reports how the request was served: "computed", "cache" or
// "coalesced".  Under a debug trace the phases appear as cache-lookup,
// coalesce-wait and compute child spans; compute runs with the request's
// cancellation detached (the flight must outlive a timed-out leader) but its
// span values intact, so a leader's trace still contains the plan / build /
// measure subtree.
func (s *Server) lookup(ctx context.Context, key string, compute func(ctx context.Context) (*cachedResult, error)) (res *cachedResult, source string, err error) {
	_, lspan := obs.Start(ctx, "cache-lookup")
	v, hit := s.cache.get(key)
	if lspan != nil { // guarded: boxing the attrs must not cost the hot path
		lspan.SetAttr("key", key)
		lspan.SetAttr("hit", hit)
		lspan.End()
	}
	if hit {
		return v, "cache", nil
	}
	computed := false // safe: the leader reads it only after the flight's done channel closes
	wctx, wspan := obs.Start(ctx, "coalesce-wait")
	v, led, err := s.flights.do(ctx, key, func() (*cachedResult, error) {
		if v, ok := s.cache.get(key); ok {
			// Lost the race against a flight that finished between our
			// first check and entering the group.
			return v, nil
		}
		s.cache.countMiss()
		computed = true
		cctx, cspan := obs.Start(context.WithoutCancel(wctx), "compute")
		cspan.SetAttr("key", key)
		v, err := compute(cctx)
		cspan.End()
		if err != nil {
			return nil, err
		}
		s.cache.put(key, v)
		return v, nil
	})
	wspan.End()
	if err != nil {
		return nil, "", err
	}
	switch {
	case !led:
		s.m.coalesced.Add(1)
		return v, "coalesced", nil
	case computed:
		return v, "computed", nil
	default:
		return v, "cache", nil
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, r, err)
		return
	}
	fam, err := parseFamilyField(req.Family)
	if err != nil {
		respondErr(w, r, err)
		return
	}
	sh, err := s.parseShapeField(req.Shape, s.cfg.MaxNodes)
	if err != nil {
		respondErr(w, r, err)
		return
	}
	meta := metaFrom(r.Context())
	meta.setShape(sh, "")
	// Plans are served in the caller's axis order — the planner's own
	// canonical-shape cache already de-duplicates the search across
	// permutations, so the LRU key stays exact here.
	key := "plan|" + famKey(fam) + sh.String()
	// tier records which L0-miss tier produced the result; the flight leader
	// reads it only after lookup returns (same safety argument as lookup's
	// own computed flag).
	var tier string
	res, source, err := s.lookup(r.Context(), key, func(ctx context.Context) (*cachedResult, error) {
		res, t, err := s.resolvePlan(ctx, fam, sh)
		tier = t
		return res, err
	})
	if err != nil {
		respondErr(w, r, err)
		return
	}
	switch source {
	case "computed":
		source = tier // closed_form, artifact or computed
	case "cache":
		s.m.tierL0.Add(1)
	}
	meta.setSource(source)
	resp := PlanResponse{
		Version:       APIVersion,
		Shape:         sh.String(),
		Family:        famEcho(fam),
		Nodes:         sh.Nodes(),
		CubeDim:       res.cubeDim,
		Plan:          res.plan,
		Method:        res.method,
		DilationBound: res.dilBound,
		Certificate:   s.countCert(planCertificate(fam, sh, res.cubeDim, res.dilBound)),
		Source:        source,
	}
	if meta != nil && meta.debug {
		resp.Debug = &DebugInfo{
			RequestID: meta.id,
			PlanTrace: s.debugProvenance(r.Context(), sh),
		}
		s.finishDebug(r.Context(), resp.Debug, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func planResult(p *core.Plan) *cachedResult {
	dil := p.Dilation
	if dil == core.DilationUnknown {
		dil = -1
	}
	return &cachedResult{plan: p.String(), method: p.Method, dilBound: dil, cubeDim: p.CubeDim}
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req EmbedRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, r, err)
		return
	}
	famName, mode, deprecation, err := api.NormalizeFamily(req.Family, req.Mode)
	if err != nil {
		respondErr(w, r, errBadRequest("%v", err))
		return
	}
	fam, err := parseFamilyField(famName)
	if err != nil {
		respondErr(w, r, err)
		return
	}
	sh, err := s.parseShapeField(req.Shape, s.cfg.MaxNodes)
	if err != nil {
		respondErr(w, r, err)
		return
	}
	if err := guest.Validate(fam, sh); err != nil {
		respondErr(w, r, errBadRequest("%v", err))
		return
	}
	meta := metaFrom(r.Context())
	meta.setShape(sh, mode)
	canon, _ := guest.Get(fam).Canonical(sh)
	// mode is already normalized ("decomposition" or "gray"), so the
	// deprecated mode "torus" spelling shares the family-torus cache entry
	// by construction.
	key := "embed|" + famKey(fam) + mode + "|" + canon.String()
	res, source, err := s.lookup(r.Context(), key, func(ctx context.Context) (*cachedResult, error) {
		return s.computeEmbed(ctx, fam, canon, mode)
	})
	if err != nil {
		respondErr(w, r, err)
		return
	}
	meta.setSource(source)
	resp := EmbedResponse{
		Version:       APIVersion,
		Shape:         sh.String(),
		Family:        famEcho(fam),
		Mode:          mode,
		Deprecation:   deprecation,
		Plan:          res.plan,
		Method:        res.method,
		DilationBound: res.dilBound,
		Metrics:       api.Metrics(res.metrics),
		Source:        source,
	}
	resp.Metrics.Guest = sh.String() // metrics are relabeling-invariant
	resp.Certificate = s.countCert(measuredCertificate(fam, sh, resp.Metrics))
	if req.IncludeMap {
		ser := res.emb.Serial()
		if !sh.Equal(res.emb.Guest) {
			ser.Map = relabelMap(res.emb, sh)
		}
		ser.Guest = sh.String()
		resp.Embedding = (*api.EmbeddingSerial)(ser)
	}
	if meta != nil && meta.debug {
		resp.Debug = &DebugInfo{RequestID: meta.id}
		if mode == "decomposition" {
			resp.Debug.PlanTrace = s.debugProvenance(r.Context(), canon)
		}
		s.finishDebug(r.Context(), resp.Debug, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// computeEmbed builds and measures the canonical guest under one mode.
func (s *Server) computeEmbed(ctx context.Context, fam guest.Family, canon mesh.Shape, mode string) (*cachedResult, error) {
	var res *cachedResult
	var e *embed.Embedding
	switch mode {
	case "gray":
		_, span := obs.Start(ctx, "build")
		e = embed.Gray(canon)
		span.End()
		res = &cachedResult{cubeDim: e.N, dilBound: 1}
	default:
		p, err := s.planFor(ctx, fam, canon)
		if err != nil {
			return nil, err
		}
		res = planResult(p)
		_, bspan := obs.Start(ctx, "build")
		e = p.Build()
		bspan.End()
	}
	_, vspan := obs.Start(ctx, "verify")
	err := e.Verify()
	vspan.End()
	if err != nil {
		return nil, fmt.Errorf("embedserver: built an invalid embedding: %w", err)
	}
	res.metrics = e.MeasureParallelCtx(ctx, s.cfg.Workers)
	res.measured = true
	res.emb = e
	return res, nil
}

// relabelMap permutes the canonical-order node map into the requested axis
// order (a pure guest relabeling — images, and therefore all metrics, are
// unchanged).  The axis map comes from the embedding's own family, whose
// canonical form may keep some axes in place (the cylinder's wrapped last
// axis, every tree axis).
func relabelMap(e *embed.Embedding, want mesh.Shape) []uint64 {
	_, axmap := guest.Get(e.Family).Canonical(want)
	out := make([]uint64, len(e.Map))
	cw := make([]int, want.Dims())
	cc := make([]int, want.Dims())
	for idx := range out {
		want.CoordInto(idx, cw)
		for j := range cc {
			cc[j] = cw[axmap[j]]
		}
		out[idx] = uint64(e.Map[e.Guest.Index(cc)])
	}
	return out
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, r, err)
		return
	}
	fam, err := parseFamilyField(req.Family)
	if err != nil {
		respondErr(w, r, err)
		return
	}
	sh, err := s.parseShapeField(req.Shape, min(s.cfg.MaxNodes, maxCompareNodes))
	if err != nil {
		respondErr(w, r, err)
		return
	}
	if err := guest.Validate(fam, sh); err != nil {
		respondErr(w, r, errBadRequest("%v", err))
		return
	}
	meta := metaFrom(r.Context())
	meta.setShape(sh, "")
	canon, _ := guest.Get(fam).Canonical(sh)
	key := fmt.Sprintf("compare|%s%s|simnet=%v", famKey(fam), canon, req.Simnet)
	res, source, err := s.lookup(r.Context(), key, func(ctx context.Context) (*cachedResult, error) {
		return s.computeCompare(ctx, fam, canon, req.Simnet)
	})
	if err != nil {
		respondErr(w, r, err)
		return
	}
	meta.setSource(source)
	resp := *res.compare
	resp.Shape = sh.String()
	resp.Family = famEcho(fam)
	resp.Certificate = s.countCert(compareCertificate(fam, sh, resp.Rows))
	resp.Source = source
	if meta != nil && meta.debug {
		resp.Debug = &DebugInfo{
			RequestID: meta.id,
			PlanTrace: s.debugProvenance(r.Context(), canon),
		}
		s.finishDebug(r.Context(), resp.Debug, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// computeCompare builds the canonical guest with every applicable technique
// — Gray, snake, the family planner, and (for two-dimensional plain meshes)
// the reshaping paths of internal/reshape — measures each under the guest
// family's edge set, and optionally simulates one stencil-exchange round per
// technique.
func (s *Server) computeCompare(ctx context.Context, fam guest.Family, canon mesh.Shape, withSimnet bool) (*cachedResult, error) {
	bctx, bspan := obs.Start(ctx, "build")
	gr := embed.Gray(canon)
	gr.Family = fam
	sn := core.Snake(canon)
	sn.Family = fam
	es := map[string]*embed.Embedding{
		"gray":  gr,
		"snake": sn,
	}
	p, err := s.planFor(bctx, fam, canon)
	if err != nil {
		bspan.End()
		return nil, err
	}
	es["decomposition"] = p.Build()
	if fam == guest.Mesh && canon.Dims() == 2 {
		es["rowmajor"] = reshape.RowMajor(canon)
		if f := reshape.BestFold(canon); f != nil {
			es["fold"] = f
		}
	}
	bspan.End()
	names := make([]string, 0, len(es))
	for name := range es {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := &CompareResponse{Version: APIVersion}
	for _, name := range names {
		tctx, tspan := obs.Start(ctx, "technique:"+name)
		m := es[name].MeasureParallelCtx(tctx, s.cfg.Workers)
		tspan.End()
		resp.Rows = append(resp.Rows, CompareRow{Technique: name, Metrics: api.Metrics(m)})
	}
	if withSimnet {
		_, sspan := obs.Start(ctx, "simnet")
		rounds := simnet.CompareEmbeddingsParallel(es, s.cfg.Workers)
		resp.Simnet = make(map[string]api.SimRoundStats, len(rounds))
		for name, rs := range rounds {
			resp.Simnet[name] = api.SimRoundStats(rs)
		}
		sspan.End()
	}
	return &cachedResult{compare: resp}, nil
}

// decodeBody parses a JSON request body, rejecting trailing garbage and
// unknown fields so schema typos fail loudly.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("bad request body: %v", err)
	}
	if dec.More() {
		return errBadRequest("bad request body: trailing data")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.HealthzResponse{Status: "ok", Version: APIVersion})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rs := s.cache.stats()
	ps := s.planner.CacheStats()
	gauges := []gauge{
		{name: "embedserver_inflight", help: "API requests currently being served.", kind: "gauge", value: float64(s.m.inflight.Load())},
		{name: "embedserver_shed_total", help: "Requests shed with 429 at the concurrency limit.", kind: "counter", value: float64(s.m.shed.Load())},
		{name: "embedserver_coalesced_total", help: "Requests that joined an in-flight computation.", kind: "counter", value: float64(s.m.coalesced.Load())},
		{name: "embedserver_result_cache_hits_total", help: "Result-cache (LRU) hits.", kind: "counter", value: float64(rs.Hits)},
		{name: "embedserver_result_cache_misses_total", help: "Computations performed (thundering herds count once).", kind: "counter", value: float64(rs.Misses)},
		{name: "embedserver_result_cache_evictions_total", help: "Result-cache LRU evictions.", kind: "counter", value: float64(rs.Evictions)},
		{name: "embedserver_result_cache_entries", help: "Result-cache current size.", kind: "gauge", value: float64(rs.Size)},
		{name: "embedserver_plan_cache_hits_total", help: "Planner plan-cache hits.", kind: "counter", value: float64(ps.Hits)},
		{name: "embedserver_plan_cache_misses_total", help: "Planner plan-cache misses.", kind: "counter", value: float64(ps.Misses)},
		{name: "embedserver_plan_cache_entries", help: "Planner plan-cache current size.", kind: "gauge", value: float64(ps.Size)},
		{name: "embedserver_plan_tier_l0_total", help: "Plan requests served from the in-memory result cache (L0).", kind: "counter", value: float64(s.m.tierL0.Load())},
		{name: "embedserver_plan_tier_closed_form_total", help: "Plan resolutions answered by the O(1) closed-form classifier.", kind: "counter", value: float64(s.m.tierClosedForm.Load())},
		{name: "embedserver_plan_tier_artifact_total", help: "Plan resolutions answered by the mmap'd plan-census artifact (L1).", kind: "counter", value: float64(s.m.tierArtifact.Load())},
		{name: "embedserver_plan_tier_compute_total", help: "Plan resolutions that ran the full decomposition planner (L2).", kind: "counter", value: float64(s.m.tierCompute.Load())},
		{name: "embedserver_certificates_total", help: "Optimality certificates served on plan/embed/compare responses.", kind: "counter", value: float64(s.m.certTotal.Load())},
		{name: "embedserver_certificates_optimal_total", help: "Served certificates whose achieved metrics provably meet the lower bounds.", kind: "counter", value: float64(s.m.certOptimal.Load())},
	}
	if s.artifact != nil {
		ah := s.artifact.Header()
		gauges = append(gauges,
			gauge{name: "embedserver_plan_artifact_records", help: "Records in the attached plan-census artifact.", kind: "gauge", value: float64(ah.RecordCount)},
		)
	}
	if s.jobs != nil {
		js := s.jobs.Stats()
		gauges = append(gauges,
			gauge{name: "embedserver_jobs_queued", help: "Batch jobs waiting for a runner.", kind: "gauge", value: float64(js.Queued)},
			gauge{name: "embedserver_jobs_running", help: "Batch jobs currently executing.", kind: "gauge", value: float64(js.Running)},
			gauge{name: "embedserver_jobs_done", help: "Batch jobs that finished successfully.", kind: "gauge", value: float64(js.Done)},
			gauge{name: "embedserver_jobs_failed", help: "Batch jobs that ended in failure.", kind: "gauge", value: float64(js.Failed)},
			gauge{name: "embedserver_jobs_cancelled", help: "Batch jobs cancelled by the caller.", kind: "gauge", value: float64(js.Cancelled)},
			gauge{name: "embedserver_jobs_queue_capacity", help: "Slots in the job submission queue.", kind: "gauge", value: float64(js.QueueCap)},
			gauge{name: "embedserver_jobs_chunks_done_total", help: "Job chunks completed (including resumed runs).", kind: "counter", value: float64(js.ChunksDone)},
			gauge{name: "embedserver_jobs_shapes_total", help: "Shapes processed by batch jobs.", kind: "counter", value: float64(js.Shapes)},
			gauge{name: "embedserver_jobs_retries_total", help: "Job chunk attempts retried after a panic or error.", kind: "counter", value: float64(js.Retries)},
			gauge{name: "embedserver_jobs_result_bytes_total", help: "Bytes of NDJSON results committed to disk.", kind: "counter", value: float64(js.ResultBytes)},
		)
	}
	if s.pool != nil {
		fs := s.pool.Stats()
		gauges = append(gauges,
			gauge{name: "embedserver_fabric_peers", help: "Remote fabric peers by health state.", kind: "gauge", value: float64(fs.Up), labels: `state="up"`},
			gauge{name: "embedserver_fabric_peers", help: "Remote fabric peers by health state.", kind: "gauge", value: float64(fs.Down), labels: `state="down"`},
			gauge{name: "embedserver_fabric_chunks_dispatched_total", help: "Chunk executions dispatched to fabric peers.", kind: "counter", value: float64(fs.Dispatched)},
			gauge{name: "embedserver_fabric_chunks_requeued_total", help: "Chunks re-dispatched after a fabric peer failure.", kind: "counter", value: float64(fs.Requeued)},
			gauge{name: "embedserver_fabric_chunks_folded_total", help: "Distributed chunk results folded into job streams.", kind: "counter", value: float64(fs.Folded)},
		)
		for _, ps := range fs.Peers {
			gauges = append(gauges,
				gauge{name: "embedserver_fabric_peer_inflight", help: "Chunks currently executing, by fabric peer.", kind: "gauge", value: float64(ps.InFlight), labels: fmt.Sprintf("peer=%q", ps.Addr)},
			)
		}
	}
	gauges = append(gauges,
		gauge{name: "embedserver_sse_subscribers", help: "Live SSE job-event subscribers.", kind: "gauge", value: float64(s.sse.subscribers.Load())},
		gauge{name: "embedserver_sse_events_total", help: "SSE events delivered to subscriber buffers.", kind: "counter", value: float64(s.sse.events.Load())},
		gauge{name: "embedserver_sse_dropped_total", help: "SSE subscribers dropped for falling behind (slow clients).", kind: "counter", value: float64(s.sse.dropped.Load())},
	)
	gauges = append(gauges, runtimeGauges()...)
	gauges = append(gauges, buildInfoGauge())
	var b strings.Builder
	s.m.render(&b, gauges)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}
