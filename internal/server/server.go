// Package server exposes the planner, the metrics engine and the network
// simulator as a production HTTP service (stdlib net/http only):
//
//	POST /v1/plan     plan a shape without building it
//	POST /v1/embed    plan + build + measure (optionally the serialized map)
//	POST /v1/compare  per-technique metrics, optionally a simnet stencil round
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text exposition
//
// The request path is cache → coalescer → planner → metrics engine: a
// bounded LRU holds fully-measured results keyed by canonical (axis-sorted)
// shape + variant, a singleflight group collapses a thundering herd on the
// same key into one computation, and only the flight leader runs the
// planner.  Requests carry a per-request timeout context; a concurrency
// semaphore sheds excess load with 429 + Retry-After.  Computations are
// detached from request contexts, so a timed-out leader still populates the
// cache for its followers and for the retry.
//
// Cache entries are computed on the canonical shape.  Every metric the API
// serves is invariant under guest axis relabeling (the multiset of guest
// edges' endpoint images is unchanged), so a hit for a permuted request only
// rewrites the guest string and — when the map is requested — relabels the
// node map; it never re-measures.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/mesh"
	"repro/internal/reshape"
	"repro/internal/simnet"
	"repro/internal/wrap"
)

// APIVersion is the version field stamped on every v1 response body.
const APIVersion = 1

// maxCompareNodes bounds the guests /v1/compare accepts: a compare builds
// several embeddings and optionally simulates a stencil exchange, so it is
// far more expensive per node than /v1/embed.
const maxCompareNodes = 1 << 20

// Config tunes a Server.  The zero value is usable: defaults are filled in
// by New.
type Config struct {
	// Workers bounds the metrics-engine parallelism per measurement
	// (values below one mean GOMAXPROCS, as in internal/sweep).
	Workers int
	// CacheSize bounds the LRU of fully-measured results (default 1024;
	// negative disables caching).
	CacheSize int
	// MaxInflight bounds concurrently served API requests; excess load is
	// shed with 429 (default 256).
	MaxInflight int
	// Timeout is the per-request deadline (default 30s).
	Timeout time.Duration
	// MaxNodes is the largest guest the API will embed; bigger shapes get
	// 422 (default 1<<24).
	MaxNodes int
	// Opts are the planner options (zero value: core.DefaultOptions).
	Opts core.Options
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 1 << 24
	}
	if c.Opts.SolverBudget == 0 && c.Opts.SolverSeed == 0 && c.Opts.Cost == nil {
		c.Opts = core.DefaultOptions
	}
	return c
}

// Server is the embedding service.  It is immutable after New and safe for
// concurrent use; plug Handler into an http.Server (whose Shutdown drains
// in-flight requests — handlers never outlive their ResponseWriter).
type Server struct {
	cfg     Config
	planner *core.Planner
	cache   *lruCache
	flights *flightGroup
	sem     chan struct{}
	m       *metrics
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		planner: core.NewPlanner(cfg.Opts),
		cache:   newLRUCache(cfg.CacheSize),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.MaxInflight),
		m:       newMetrics(),
	}
}

// CacheStats returns the result cache's counters (for tests and /metrics).
func (s *Server) CacheStats() ResultCacheStats { return s.cache.stats() }

// Coalesced returns how many requests joined an in-flight computation.
func (s *Server) Coalesced() uint64 { return s.m.coalesced.Load() }

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("POST /v1/plan", s.instrument("plan", s.handlePlan))
	mux.Handle("POST /v1/embed", s.instrument("embed", s.handleEmbed))
	mux.Handle("POST /v1/compare", s.instrument("compare", s.handleCompare))
	return mux
}

// apiError carries an HTTP status through the compute path.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(format string, a ...any) *apiError {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, a...)}
}

func errTooLarge(format string, a ...any) *apiError {
	return &apiError{code: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, a...)}
}

// statusWriter records the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an API handler with load shedding, the in-flight gauge,
// the per-request timeout context, and latency/request accounting.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.m.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "server at capacity")
			s.m.observe(endpoint, http.StatusTooManyRequests, 0)
			return
		}
		s.m.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		h(sw, r.WithContext(ctx))
		cancel()
		s.m.inflight.Add(-1)
		<-s.sem
		s.m.observe(endpoint, sw.code, time.Since(start).Seconds())
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"version": APIVersion, "error": msg})
}

// respondErr maps a compute/flight error onto the response.  Context
// deadline becomes 504 (the work continues detached and lands in the
// cache); a client cancel gets the non-standard 499 purely for the metrics
// — the client is gone.
func respondErr(w http.ResponseWriter, err error) {
	var api *apiError
	switch {
	case errors.As(err, &api):
		writeErr(w, api.code, api.msg)
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, "deadline exceeded; result will be cached when ready")
	case errors.Is(err, context.Canceled):
		writeErr(w, 499, "client closed request")
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

// parseShapeField validates a request shape: parse errors are 400 and
// oversized guests are 422.  The node count is computed overflow-checked —
// mesh.Shape.Nodes would wrap silently on absurd axes.
func (s *Server) parseShapeField(shape string, maxNodes int) (mesh.Shape, error) {
	sh, err := mesh.ParseShape(shape)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if err := sh.Validate(); err != nil {
		return nil, errBadRequest("%v", err)
	}
	nodes := 1
	for _, l := range sh {
		if nodes > maxNodes/l {
			return nil, errTooLarge("shape %s exceeds the %d-node limit", sh, maxNodes)
		}
		nodes *= l
	}
	return sh, nil
}

// cachedResult is one fully-measured LRU entry, always in canonical axis
// order.  Entries are immutable after insertion.
type cachedResult struct {
	plan     string
	method   int
	dilBound int // plan's a-priori dilation bound; -1 when unknown/none
	cubeDim  int
	measured bool
	metrics  embed.Metrics
	emb      *embed.Embedding // nil for plan-only entries
	compare  *CompareResponse // only for compare entries
}

// lookup is the cache → coalescer → compute path shared by the endpoints.
// source reports how the request was served: "computed", "cache" or
// "coalesced".
func (s *Server) lookup(ctx context.Context, key string, compute func() (*cachedResult, error)) (res *cachedResult, source string, err error) {
	if v, ok := s.cache.get(key); ok {
		return v, "cache", nil
	}
	computed := false // safe: the leader reads it only after the flight's done channel closes
	v, led, err := s.flights.do(ctx, key, func() (*cachedResult, error) {
		if v, ok := s.cache.get(key); ok {
			// Lost the race against a flight that finished between our
			// first check and entering the group.
			return v, nil
		}
		s.cache.countMiss()
		computed = true
		v, err := compute()
		if err != nil {
			return nil, err
		}
		s.cache.put(key, v)
		return v, nil
	})
	if err != nil {
		return nil, "", err
	}
	switch {
	case !led:
		s.m.coalesced.Add(1)
		return v, "coalesced", nil
	case computed:
		return v, "computed", nil
	default:
		return v, "cache", nil
	}
}

// PlanRequest is the /v1/plan body.
type PlanRequest struct {
	Shape string `json:"shape"`
}

// PlanResponse is the /v1/plan reply.
type PlanResponse struct {
	Version       int    `json:"version"`
	Shape         string `json:"shape"`
	Nodes         int    `json:"nodes"`
	CubeDim       int    `json:"cube_dim"`
	Plan          string `json:"plan"`
	Method        int    `json:"method"`
	DilationBound int    `json:"dilation_bound"` // -1: no a-priori bound
	Source        string `json:"source"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, err)
		return
	}
	sh, err := s.parseShapeField(req.Shape, s.cfg.MaxNodes)
	if err != nil {
		respondErr(w, err)
		return
	}
	// Plans are served in the caller's axis order — the planner's own
	// canonical-shape cache already de-duplicates the search across
	// permutations, so the LRU key stays exact here.
	key := "plan|" + sh.String()
	res, source, err := s.lookup(r.Context(), key, func() (*cachedResult, error) {
		p, err := s.planner.TryPlan(sh)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		return planResult(p), nil
	})
	if err != nil {
		respondErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		Version:       APIVersion,
		Shape:         sh.String(),
		Nodes:         sh.Nodes(),
		CubeDim:       res.cubeDim,
		Plan:          res.plan,
		Method:        res.method,
		DilationBound: res.dilBound,
		Source:        source,
	})
}

func planResult(p *core.Plan) *cachedResult {
	dil := p.Dilation
	if dil == core.DilationUnknown {
		dil = -1
	}
	return &cachedResult{plan: p.String(), method: p.Method, dilBound: dil, cubeDim: p.CubeDim}
}

// EmbedRequest is the /v1/embed body.  Mode selects the construction:
// "" or "decomposition" (the planner), "gray" (the baseline), "torus"
// (wraparound guest, Section 6 constructions).
type EmbedRequest struct {
	Shape      string `json:"shape"`
	Mode       string `json:"mode,omitempty"`
	IncludeMap bool   `json:"include_map,omitempty"`
}

// EmbedResponse is the /v1/embed reply.
type EmbedResponse struct {
	Version       int           `json:"version"`
	Shape         string        `json:"shape"`
	Mode          string        `json:"mode"`
	Plan          string        `json:"plan,omitempty"`
	Method        int           `json:"method,omitempty"`
	DilationBound int           `json:"dilation_bound,omitempty"`
	Metrics       embed.Metrics `json:"metrics"`
	Source        string        `json:"source"`
	Embedding     *embed.Serial `json:"embedding,omitempty"`
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req EmbedRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, err)
		return
	}
	mode := req.Mode
	switch mode {
	case "", "decomposition":
		mode = "decomposition"
	case "gray", "torus":
	default:
		respondErr(w, errBadRequest("unknown mode %q (want decomposition, gray or torus)", req.Mode))
		return
	}
	sh, err := s.parseShapeField(req.Shape, s.cfg.MaxNodes)
	if err != nil {
		respondErr(w, err)
		return
	}
	canon, _ := core.CanonicalShape(sh)
	key := "embed|" + mode + "|" + canon.String()
	res, source, err := s.lookup(r.Context(), key, func() (*cachedResult, error) {
		return s.computeEmbed(canon, mode)
	})
	if err != nil {
		respondErr(w, err)
		return
	}
	resp := EmbedResponse{
		Version:       APIVersion,
		Shape:         sh.String(),
		Mode:          mode,
		Plan:          res.plan,
		Method:        res.method,
		DilationBound: res.dilBound,
		Metrics:       res.metrics,
		Source:        source,
	}
	resp.Metrics.Guest = sh.String() // metrics are relabeling-invariant
	if req.IncludeMap {
		ser := res.emb.Serial()
		if !sh.Equal(res.emb.Guest) {
			ser.Map = relabelMap(res.emb, sh)
		}
		ser.Guest = sh.String()
		resp.Embedding = ser
	}
	writeJSON(w, http.StatusOK, resp)
}

// computeEmbed builds and measures the canonical shape under one mode.
func (s *Server) computeEmbed(canon mesh.Shape, mode string) (*cachedResult, error) {
	var res *cachedResult
	var e *embed.Embedding
	switch mode {
	case "gray":
		e = embed.Gray(canon)
		res = &cachedResult{cubeDim: e.N, dilBound: 1}
	case "torus":
		e = wrap.Embed(canon, s.cfg.Opts)
		res = &cachedResult{cubeDim: e.N, dilBound: -1}
	default:
		p, err := s.planner.TryPlan(canon)
		if err != nil {
			return nil, errBadRequest("%v", err)
		}
		res = planResult(p)
		e = p.Build()
	}
	if err := e.Verify(); err != nil {
		return nil, fmt.Errorf("embedserver: built an invalid embedding: %w", err)
	}
	res.metrics = e.MeasureParallel(s.cfg.Workers)
	res.measured = true
	res.emb = e
	return res, nil
}

// relabelMap permutes the canonical-order node map into the requested axis
// order (a pure guest relabeling — images, and therefore all metrics, are
// unchanged).
func relabelMap(e *embed.Embedding, want mesh.Shape) []uint64 {
	_, axmap := core.CanonicalShape(want)
	out := make([]uint64, len(e.Map))
	cw := make([]int, want.Dims())
	cc := make([]int, want.Dims())
	for idx := range out {
		want.CoordInto(idx, cw)
		for j := range cc {
			cc[j] = cw[axmap[j]]
		}
		out[idx] = uint64(e.Map[e.Guest.Index(cc)])
	}
	return out
}

// CompareRequest is the /v1/compare body.
type CompareRequest struct {
	Shape  string `json:"shape"`
	Simnet bool   `json:"simnet,omitempty"`
}

// CompareRow is one technique's measured quality.
type CompareRow struct {
	Technique string        `json:"technique"`
	Metrics   embed.Metrics `json:"metrics"`
}

// CompareResponse is the /v1/compare reply.  Simnet, when requested, holds
// one deterministic store-and-forward stencil-exchange round per technique.
type CompareResponse struct {
	Version int                          `json:"version"`
	Shape   string                       `json:"shape"`
	Rows    []CompareRow                 `json:"rows"`
	Simnet  map[string]simnet.RoundStats `json:"simnet,omitempty"`
	Source  string                       `json:"source"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	if err := decodeBody(r.Body, &req); err != nil {
		respondErr(w, err)
		return
	}
	sh, err := s.parseShapeField(req.Shape, min(s.cfg.MaxNodes, maxCompareNodes))
	if err != nil {
		respondErr(w, err)
		return
	}
	canon, _ := core.CanonicalShape(sh)
	key := fmt.Sprintf("compare|%s|simnet=%v", canon, req.Simnet)
	res, source, err := s.lookup(r.Context(), key, func() (*cachedResult, error) {
		return s.computeCompare(canon, req.Simnet)
	})
	if err != nil {
		respondErr(w, err)
		return
	}
	resp := *res.compare
	resp.Shape = sh.String()
	resp.Source = source
	writeJSON(w, http.StatusOK, resp)
}

// computeCompare builds the canonical shape with every applicable technique
// — Gray, snake, the decomposition planner, and (for two-dimensional
// guests) the reshaping paths of internal/reshape — measures each, and
// optionally simulates one stencil-exchange round per technique.
func (s *Server) computeCompare(canon mesh.Shape, withSimnet bool) (*cachedResult, error) {
	es := map[string]*embed.Embedding{
		"gray":  embed.Gray(canon),
		"snake": core.Snake(canon),
	}
	p, err := s.planner.TryPlan(canon)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	es["decomposition"] = p.Build()
	if canon.Dims() == 2 {
		es["rowmajor"] = reshape.RowMajor(canon)
		if f := reshape.BestFold(canon); f != nil {
			es["fold"] = f
		}
	}
	names := make([]string, 0, len(es))
	for name := range es {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := &CompareResponse{Version: APIVersion}
	for _, name := range names {
		resp.Rows = append(resp.Rows, CompareRow{Technique: name, Metrics: es[name].MeasureParallel(s.cfg.Workers)})
	}
	if withSimnet {
		resp.Simnet = simnet.CompareEmbeddingsParallel(es, s.cfg.Workers)
	}
	return &cachedResult{compare: resp}, nil
}

// decodeBody parses a JSON request body, rejecting trailing garbage and
// unknown fields so schema typos fail loudly.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("bad request body: %v", err)
	}
	if dec.More() {
		return errBadRequest("bad request body: trailing data")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "version": APIVersion})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rs := s.cache.stats()
	ps := s.planner.CacheStats()
	var b strings.Builder
	s.m.render(&b, []gauge{
		{"embedserver_inflight", "API requests currently being served.", "gauge", float64(s.m.inflight.Load())},
		{"embedserver_shed_total", "Requests shed with 429 at the concurrency limit.", "counter", float64(s.m.shed.Load())},
		{"embedserver_coalesced_total", "Requests that joined an in-flight computation.", "counter", float64(s.m.coalesced.Load())},
		{"embedserver_result_cache_hits_total", "Result-cache (LRU) hits.", "counter", float64(rs.Hits)},
		{"embedserver_result_cache_misses_total", "Computations performed (thundering herds count once).", "counter", float64(rs.Misses)},
		{"embedserver_result_cache_evictions_total", "Result-cache LRU evictions.", "counter", float64(rs.Evictions)},
		{"embedserver_result_cache_entries", "Result-cache current size.", "gauge", float64(rs.Size)},
		{"embedserver_plan_cache_hits_total", "Planner plan-cache hits.", "counter", float64(ps.Hits)},
		{"embedserver_plan_cache_misses_total", "Planner plan-cache misses.", "counter", float64(ps.Misses)},
		{"embedserver_plan_cache_entries", "Planner plan-cache current size.", "gauge", float64(ps.Size)},
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}
