package server

import (
	"context"
	"fmt"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// Tiered plan resolution.  A /v1/plan miss in the L0 result cache walks
// down a fixed hierarchy, each tier strictly cheaper than the next and each
// hit populating the tiers above it through the ordinary cache fill:
//
//	L0  in-memory LRU of fully-formed results      (~100ns, bounded)
//	    closed-form classifier (core.ClassifyGuest) (~40ns, no state)
//	L1  mmap'd plan-census artifact (-plan-artifact) (~100ns, one file)
//	L2  the decomposition planner                    (µs..ms, search)
//
// The classifier sits between L0 and L1 because it is cheaper than the
// artifact probe and needs no configuration; it answers exactly the strata
// it can prove (Gray-minimal meshes/cylinders, all-power-of-two tori,
// every complete binary tree) with plans byte-identical to the planner's.
// The artifact tier answers any canonical-order shape inside its prebuilt
// domain with the planner's own serialized plan.  Everything else pays L2.
//
// The response Source field reports the tier that produced the result:
// "cache" (L0), "closed_form", "artifact" or "computed" (L2), plus the
// pre-existing "coalesced" for requests that joined another's computation.

// AttachArtifact wires a plan-census artifact (internal/artifact, built by
// a plancensus job or embedctl artifact build) in as the L1 plan tier.
// Call it before Handler is serving.  The artifact must have been built
// under this server's exact planner options — the option fingerprint is
// stamped in its header — or it is refused: serving plans computed under
// different options would silently break the cache-vs-computed identity.
func (s *Server) AttachArtifact(a *artifact.Artifact) error {
	hdr := a.Header()
	if _, err := guest.ByName(hdr.Family); err != nil {
		return fmt.Errorf("embedserver: artifact %s: %v", a.Path(), err)
	}
	if want := artifact.FingerprintHash(s.planner.Fingerprint()); hdr.Fingerprint != want {
		return fmt.Errorf("embedserver: artifact %s was built under planner options %016x, this server runs %016x (%q)",
			a.Path(), hdr.Fingerprint, want, s.planner.Fingerprint())
	}
	s.artifact = a
	return nil
}

// resolvePlan is the L0-miss path of /v1/plan: classifier, then artifact,
// then planner.  The returned source is "closed_form", "artifact" or
// "computed".  Requests are resolved in the caller's axis order — the
// classifier is order-insensitive and the artifact simply misses on
// non-canonical shapes (plan strings are axis-order-specific, so a sorted
// record must not answer a permuted request).
func (s *Server) resolvePlan(ctx context.Context, fam guest.Family, sh mesh.Shape) (*cachedResult, string, error) {
	// The classifier's contract assumes a valid guest shape, so validation
	// cannot be left to the planner tier; the error matches TryPlanGuest's.
	if err := guest.Validate(fam, sh); err != nil {
		return nil, "", errBadRequest("%v", err)
	}
	_, cspan := obs.Start(ctx, "classify")
	p, ok := core.ClassifyGuest(fam, sh)
	cspan.End()
	if ok {
		s.m.tierClosedForm.Add(1)
		return planResult(p), "closed_form", nil
	}
	if a := s.artifact; a != nil && a.Header().Family == fam.String() {
		_, aspan := obs.Start(ctx, "artifact-lookup")
		rec, hit, err := a.Lookup(sh)
		aspan.End()
		if err != nil {
			return nil, "", fmt.Errorf("embedserver: artifact lookup: %w", err)
		}
		if hit {
			s.m.tierArtifact.Add(1)
			return &cachedResult{plan: rec.Plan, method: rec.Method, dilBound: rec.Dilation, cubeDim: rec.CubeDim}, "artifact", nil
		}
	}
	_, span := obs.Start(ctx, "plan")
	p, err := s.planner.TryPlanGuest(fam, sh)
	span.End()
	if err != nil {
		return nil, "", errBadRequest("%v", err)
	}
	s.m.tierCompute.Add(1)
	return planResult(p), "computed", nil
}

// planFor resolves the plan stage of an embed/compare computation through
// the closed-form tier before falling back to the planner.  The artifact
// tier does not apply here: building an embedding needs the live *core.Plan
// tree, and the artifact stores only its serialized form.
func (s *Server) planFor(ctx context.Context, fam guest.Family, canon mesh.Shape) (*core.Plan, error) {
	_, span := obs.Start(ctx, "plan")
	defer span.End()
	if p, ok := core.ClassifyGuest(fam, canon); ok {
		s.m.tierClosedForm.Add(1)
		return p, nil
	}
	p, err := s.planner.TryPlanGuest(fam, canon)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	s.m.tierCompute.Add(1)
	return p, nil
}
