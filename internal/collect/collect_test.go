package collect

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

func TestBroadcastReachesAll(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for _, root := range []cube.Node{0, cube.Node(1<<uint(n) - 1)} {
			rounds := BroadcastSchedule(root, n)
			if len(rounds) != n {
				t.Fatalf("n=%d: %d rounds", n, len(rounds))
			}
			have := map[cube.Node]bool{root: true}
			for d, msgs := range rounds {
				for _, m := range msgs {
					if !have[m.Src] {
						t.Fatalf("n=%d round %d: sender %d has no datum", n, d, m.Src)
					}
					if cube.Dist(m.Src, m.Dst) != 1 {
						t.Fatalf("non-neighbor message %v", m)
					}
					have[m.Dst] = true
				}
			}
			if len(have) != 1<<uint(n) {
				t.Errorf("n=%d root=%d: reached %d of %d nodes", n, root, len(have), 1<<uint(n))
			}
		}
	}
}

func TestBroadcastMessageCount(t *testing.T) {
	// A spanning tree on 2^n nodes has exactly 2^n − 1 edges.
	for n := 1; n <= 10; n++ {
		total := 0
		for _, msgs := range BroadcastSchedule(0, n) {
			total += len(msgs)
		}
		if total != 1<<uint(n)-1 {
			t.Errorf("n=%d: %d messages, want %d", n, total, 1<<uint(n)-1)
		}
	}
}

func TestReduceValueSum(t *testing.T) {
	for n := 0; n <= 8; n++ {
		vals := make([]float64, 1<<uint(n))
		want := 0.0
		for i := range vals {
			vals[i] = float64(i + 1)
			want += vals[i]
		}
		ReduceValue(vals, func(a, b float64) float64 { return a + b })
		for i, v := range vals {
			if math.Abs(v-want) > 1e-9 {
				t.Fatalf("n=%d: node %d holds %v, want %v", n, i, v, want)
			}
		}
	}
}

func TestReduceValueMax(t *testing.T) {
	f := func(seed uint32) bool {
		vals := make([]float64, 16)
		max := math.Inf(-1)
		x := uint64(seed) + 1
		for i := range vals {
			x = x*6364136223846793005 + 1442695040888963407
			vals[i] = float64(x % 1000)
			if vals[i] > max {
				max = vals[i]
			}
		}
		ReduceValue(vals, math.Max)
		for _, v := range vals {
			if v != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReducePanicsOnNonPower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ReduceValue(make([]float64, 12), func(a, b float64) float64 { return a })
}

func TestCollectiveCostsOptimal(t *testing.T) {
	// Both collectives cost exactly n rounds of unit makespan: dimension
	// exchange is a perfect matching per round, the binomial tree never
	// reuses a link within a round.
	for n := 1; n <= 8; n++ {
		if c := AllReduceCost(n); c != n {
			t.Errorf("all-reduce on %d-cube costs %d, want %d", n, c, n)
		}
		if c := BroadcastCost(0, n); c != n {
			t.Errorf("broadcast on %d-cube costs %d, want %d", n, c, n)
		}
	}
}

func BenchmarkAllReduce(b *testing.B) {
	vals := make([]float64, 1024)
	for i := 0; i < b.N; i++ {
		ReduceValue(vals, func(a, c float64) float64 { return a + c })
	}
}

func BenchmarkBroadcastSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BroadcastSchedule(0, 10)
	}
}
