// Package collect implements the collective-communication kernels of
// Boolean-cube multicomputers — one-to-all broadcast over the binomial
// spanning tree and all-reduce by dimension exchange (Johnsson 1987, the
// paper's reference [15]) — scheduled as message rounds for the simulator.
// Embeddings place mesh processes on cube nodes; these collectives supply
// the global operations (dot products, norms, convergence tests) that
// mesh-local stencil exchanges cannot.
package collect

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/cube"
	"repro/internal/simnet"
)

// BroadcastSchedule returns the message rounds of a one-to-all broadcast
// from root in an n-cube over the binomial spanning tree: in round d every
// node that already holds the datum forwards it across dimension d.  All
// messages are nearest-neighbor, so each round has makespan one and the
// whole broadcast takes exactly n rounds — optimal, since the cube diameter
// is n.
func BroadcastSchedule(root cube.Node, n int) [][]simnet.Message {
	rounds := make([][]simnet.Message, n)
	holders := []cube.Node{root}
	for d := 0; d < n; d++ {
		var msgs []simnet.Message
		next := make([]cube.Node, 0, 2*len(holders))
		for _, h := range holders {
			peer := cube.Node(bits.FlipBit(uint64(h), d))
			msgs = append(msgs, simnet.Message{Src: h, Dst: peer})
			next = append(next, h, peer)
		}
		rounds[d] = msgs
		holders = next
	}
	return rounds
}

// ReduceValue performs an all-reduce of per-node float64 values by
// dimension exchange: in round d every node pairs with its dimension-d
// neighbor and both end up with op applied across the pair.  After n rounds
// every node holds the reduction over all 2^n nodes.  vals is indexed by
// cube address and modified in place; the rounds of messages are returned
// for cost accounting.
func ReduceValue(vals []float64, op func(a, b float64) float64) [][]simnet.Message {
	n := bits.CeilLog2(uint64(len(vals)))
	if len(vals) != 1<<uint(n) {
		panic(fmt.Sprintf("collect: %d values is not a power of two", len(vals)))
	}
	rounds := make([][]simnet.Message, n)
	for d := 0; d < n; d++ {
		msgs := make([]simnet.Message, 0, len(vals))
		for v := range vals {
			peer := int(bits.FlipBit(uint64(v), d))
			msgs = append(msgs, simnet.Message{Src: cube.Node(v), Dst: cube.Node(peer)})
		}
		rounds[d] = msgs
		// Apply the exchange once per pair.
		for v := range vals {
			peer := int(bits.FlipBit(uint64(v), d))
			if peer > v {
				r := op(vals[v], vals[peer])
				vals[v], vals[peer] = r, r
			}
		}
	}
	return rounds
}

// AllReduceCost simulates the dimension-exchange all-reduce on an n-cube
// and returns the total makespan (steps) over all rounds.  Every round is
// a perfect nearest-neighbor permutation, so the cost is exactly n.
func AllReduceCost(n int) int {
	nw := simnet.New(n)
	vals := make([]float64, 1<<uint(n))
	rounds := ReduceValue(vals, func(a, b float64) float64 { return a + b })
	total := 0
	for _, msgs := range rounds {
		total += nw.Run(msgs).Makespan
	}
	return total
}

// BroadcastCost simulates the binomial-tree broadcast and returns the total
// makespan, which equals n on an idle network.
func BroadcastCost(root cube.Node, n int) int {
	nw := simnet.New(n)
	total := 0
	for _, msgs := range BroadcastSchedule(root, n) {
		if len(msgs) == 0 {
			continue
		}
		total += nw.Run(msgs).Makespan
	}
	return total
}
