package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
)

func TestRunSingleMessage(t *testing.T) {
	nw := New(3)
	stats := nw.Run([]Message{{Src: 0, Dst: 7}})
	if stats.Messages != 1 || stats.TotalHops != 3 || stats.MaxHops != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Makespan != 3 {
		t.Errorf("makespan = %d, want 3", stats.Makespan)
	}
	if stats.MaxLink != 1 {
		t.Errorf("max link = %d", stats.MaxLink)
	}
}

func TestRunZeroHopMessages(t *testing.T) {
	nw := New(2)
	stats := nw.Run([]Message{{Src: 1, Dst: 1}, {Src: 2, Dst: 2}})
	if stats.Makespan != 0 || stats.TotalHops != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRunContention(t *testing.T) {
	// Two messages over the same directed link must serialize.
	nw := New(2)
	msgs := []Message{
		{Src: 0, Dst: 1, Path: cube.Path{0, 1}},
		{Src: 0, Dst: 3, Path: cube.Path{0, 1, 3}},
	}
	stats := nw.Run(msgs)
	if stats.MaxLink != 2 {
		t.Errorf("max link = %d, want 2", stats.MaxLink)
	}
	// First message takes the link at step 0; second waits one step then
	// needs two more hops: makespan 3.
	if stats.Makespan != 3 {
		t.Errorf("makespan = %d, want 3", stats.Makespan)
	}
}

func TestRunOppositeDirectionsDontContend(t *testing.T) {
	nw := New(1)
	stats := nw.Run([]Message{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 0},
	})
	if stats.Makespan != 1 {
		t.Errorf("makespan = %d, want 1 (full duplex)", stats.Makespan)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// makespan ≥ max(MaxHops, MaxLink) always.
	e := embed.Gray(mesh.Shape{4, 8})
	nw := New(e.N)
	stats := nw.Run(StencilExchange(e))
	lower := stats.MaxHops
	if stats.MaxLink > lower {
		lower = stats.MaxLink
	}
	if stats.Makespan < lower {
		t.Errorf("makespan %d below bound %d", stats.Makespan, lower)
	}
}

func TestStencilGrayOptimal(t *testing.T) {
	// A power-of-two mesh under Gray embedding: all hops are 1, and each
	// directed link carries at most one message, so the sweep finishes in
	// one step.
	e := embed.Gray(mesh.Shape{8, 8})
	nw := New(e.N)
	stats := nw.Run(StencilExchange(e))
	if stats.MaxHops != 1 || stats.Makespan != 1 || stats.MaxLink != 1 {
		t.Errorf("Gray stencil: %+v", stats)
	}
	if stats.Messages != 2*(mesh.Shape{8, 8}).Edges() {
		t.Errorf("message count %d", stats.Messages)
	}
}

func TestStencilDecompositionBeatsGrayPadding(t *testing.T) {
	// The experiment of EXP-S1: on a 12x20 mesh the decomposition
	// embedding uses a 8-cube (minimal) while Gray needs a 9-cube.
	// Decomposition needs half the machine at a modest makespan increase.
	s := mesh.Shape{12, 20}
	dec := core.PlanShape(s, core.DefaultOptions).Build()
	gray := embed.Gray(s)
	if dec.N >= gray.N {
		t.Fatalf("decomposition should use fewer dimensions: %d vs %d", dec.N, gray.N)
	}
	res := CompareEmbeddings(map[string]*embed.Embedding{
		"decomposition": dec,
		"gray":          gray,
	})
	d, g := res["decomposition"], res["gray"]
	if g.Makespan != 1 {
		t.Errorf("gray makespan %d, want 1", g.Makespan)
	}
	if d.Makespan > 6 {
		t.Errorf("decomposition makespan %d unexpectedly high", d.Makespan)
	}
	if d.MaxHops > 2 {
		t.Errorf("decomposition max hops %d, want ≤ 2", d.MaxHops)
	}
	t.Logf("12x20 stencil: decomposition (8-cube): %+v; gray (9-cube): %+v", d, g)
}

func TestStencilTorus(t *testing.T) {
	e := embed.Gray(mesh.Shape{8})
	e.Family = guest.Torus
	msgs := StencilExchange(e)
	if len(msgs) != 16 { // 8 ring edges, both directions
		t.Errorf("messages = %d, want 16", len(msgs))
	}
}

func TestRunPanicsOnBadPath(t *testing.T) {
	nw := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nw.Run([]Message{{Src: 0, Dst: 3, Path: cube.Path{0, 1}}})
}

func BenchmarkStencilSweep(b *testing.B) {
	e := embed.Gray(mesh.Shape{16, 16})
	nw := New(e.N)
	msgs := StencilExchange(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.Run(msgs)
	}
}

func TestCompareEmbeddingsParallelEqualsSerial(t *testing.T) {
	s := mesh.Shape{5, 6, 7}
	es := map[string]*embed.Embedding{
		"gray":          embed.Gray(s),
		"decomposition": core.PlanShape(s, core.DefaultOptions).Build(),
		"snake":         core.Snake(s),
	}
	serial := CompareEmbeddingsParallel(es, 1)
	for _, workers := range []int{2, 4, 8} {
		par := CompareEmbeddingsParallel(es, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d entries, want %d", workers, len(par), len(serial))
		}
		for name, want := range serial {
			if got := par[name]; got != want {
				t.Errorf("workers=%d: %s: %+v, want %+v", workers, name, got, want)
			}
		}
	}
}
