// Package simnet simulates a Boolean-cube multicomputer with
// store-and-forward e-cube routing, the setting the paper's embeddings are
// designed for.  It charges every message one time step per link and
// serializes messages contending for the same directed link, so the cost of
// a communication round reflects both dilation (path lengths) and
// congestion (link contention) of the embedding that placed the processes.
//
// The simulator is deterministic: messages are injected in a fixed order
// and links service their queues first-come-first-served.
package simnet

import (
	"fmt"
	"sort"

	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/sweep"
)

// Network is an n-cube of nodes connected by bidirectional links, each
// direction with unit bandwidth (one flit per step).
type Network struct {
	N int // cube dimension
}

// New returns an n-cube network.
func New(n int) *Network {
	if n < 0 || n > 30 {
		panic(fmt.Sprintf("simnet: cube dimension %d out of range", n))
	}
	return &Network{N: n}
}

// Message is a unit-size message to be delivered between two cube nodes.
type Message struct {
	Src, Dst cube.Node
	// Path optionally fixes the route; nil uses e-cube routing.
	Path cube.Path
}

// RoundStats reports the outcome of simulating one communication round.
type RoundStats struct {
	Messages  int
	TotalHops int     // Σ path lengths
	MaxHops   int     // longest path (≥ dilation of the worst pair)
	Makespan  int     // steps until every message is delivered
	MaxLink   int     // most messages crossing one directed link
	AvgHops   float64 // TotalHops / Messages
}

// directedLink identifies one direction of a cube link.
type directedLink struct {
	from cube.Node
	dim  int
}

// Run delivers all messages and returns the round statistics.
//
// The model: time advances in steps; a message occupies one link per step
// along its (fixed) path; each directed link carries at most one message
// per step; contending messages queue in injection order.  This is the
// classical store-and-forward model with unit-size messages, for which
// makespan ≥ max(MaxHops, MaxLink) and the gap above that bound reflects
// head-of-line blocking.
func (nw *Network) Run(msgs []Message) RoundStats {
	stats := RoundStats{Messages: len(msgs)}
	type flight struct {
		path cube.Path
		pos  int // next hop index
	}
	flights := make([]flight, 0, len(msgs))
	linkLoad := make(map[directedLink]int)
	for _, m := range msgs {
		p := m.Path
		if p == nil {
			p = cube.Route(m.Src, m.Dst)
		}
		if len(p) == 0 || p[0] != m.Src || p[len(p)-1] != m.Dst {
			panic("simnet: message path does not join src and dst")
		}
		if err := p.Validate(nw.N); err != nil {
			panic(fmt.Sprintf("simnet: %v", err))
		}
		hops := p.Len()
		stats.TotalHops += hops
		if hops > stats.MaxHops {
			stats.MaxHops = hops
		}
		for i := 1; i < len(p); i++ {
			l := linkOf(p[i-1], p[i])
			linkLoad[l]++
		}
		if hops > 0 {
			flights = append(flights, flight{path: p})
		}
	}
	for _, c := range linkLoad {
		if c > stats.MaxLink {
			stats.MaxLink = c
		}
	}
	if stats.Messages > 0 {
		stats.AvgHops = float64(stats.TotalHops) / float64(stats.Messages)
	}

	// Step the network until all flights land.
	for step := 0; len(flights) > 0; step++ {
		if step > stats.TotalHops+1 {
			panic("simnet: livelock — scheduling bug")
		}
		claimed := make(map[directedLink]bool)
		next := flights[:0]
		for i := range flights {
			f := flights[i]
			l := linkOf(f.path[f.pos], f.path[f.pos+1])
			if !claimed[l] {
				claimed[l] = true
				f.pos++
			}
			if f.pos+1 < len(f.path) {
				next = append(next, f)
			}
		}
		flights = next
		stats.Makespan = step + 1
	}
	return stats
}

func linkOf(a, b cube.Node) directedLink {
	l := cube.LinkBetween(a, b)
	return directedLink{from: a, dim: l.Dim}
}

// StencilExchange builds the message set of one nearest-neighbor exchange
// sweep on an embedded mesh: every mesh node sends one message to each of
// its mesh neighbors (both directions), the communication pattern of
// iterative PDE solvers on regular grids (§1 of the paper).  Wraparound
// edges are included when the embedding is marked Wrap.
func StencilExchange(e *embed.Embedding) []Message {
	var msgs []Message
	add := func(ed mesh.Edge) {
		a, b := e.Map[ed.U], e.Map[ed.V]
		msgs = append(msgs, Message{Src: a, Dst: b}, Message{Src: b, Dst: a})
	}
	guest.Get(e.Family).EachEdgeRange(e.Guest, 0, e.Guest.Nodes(), add)
	return msgs
}

// CompareEmbeddings runs the same stencil exchange over several embeddings
// of the same guest and returns the per-embedding stats, for the
// Gray-vs-decomposition communication experiment.  The rounds are
// independent simulations, so they run in parallel (one sweep item per
// embedding); each simulation is itself deterministic and the results are
// assembled by sorted name, so the output is identical for every worker
// count.
func CompareEmbeddings(es map[string]*embed.Embedding) map[string]RoundStats {
	return CompareEmbeddingsParallel(es, 0)
}

// CompareEmbeddingsParallel is CompareEmbeddings with an explicit worker
// count (values below one mean GOMAXPROCS, as in package sweep).
func CompareEmbeddingsParallel(es map[string]*embed.Embedding, workers int) map[string]RoundStats {
	names := make([]string, 0, len(es))
	for name := range es {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic item order
	stats := sweep.Map(len(names), workers, func(i int) RoundStats {
		e := es[names[i]]
		return New(e.N).Run(StencilExchange(e))
	})
	out := make(map[string]RoundStats, len(es))
	for i, name := range names {
		out[name] = stats[i]
	}
	return out
}
