// Package ring holds the strip layouts behind the wraparound constructions
// of Section 6: the halving layout of Lemma 3 (a ring of length ℓ in a
// 2×⌈ℓ/2⌉ strip whose two rows are one cube dimension apart) and the
// quartering layout of Lemma 4 (a 4×⌈ℓ/4⌉ strip whose four rows carry a
// cyclic Gray code on two cube dimensions).  Assemble combines per-axis
// layouts with a base embedding of the strip-column mesh into the final
// embedding, concatenating each axis's row bits above the base address.
//
// The package is a leaf (it depends only on the embedding and mesh types),
// so both the torus planner in internal/core and the historical
// constructors in internal/wrap build on the same layout code without an
// import cycle.
package ring

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// gray4 is the cyclic Gray code on 2 bits: consecutive rows (mod 4) are one
// cube dimension apart, and rows two apart differ in both bits.
var gray4 = [4]uint64{0b00, 0b01, 0b11, 0b10}

// Layout places the ring 0..l-1 into a strip of 2^Bits rows: position w of
// the ring maps to row code Codes[w] (already Gray-encoded) and strip
// column Cols[w].  Bits is the number of cube dimensions the row code
// occupies (0 for the identity layout of a non-wrapped axis).
type Layout struct {
	Codes []uint64
	Cols  []int
	Bits  int
}

// Identity is the layout of an axis that does not wrap: every position maps
// to its own column in row zero and contributes no row bits.
func Identity(l int) Layout {
	lay := Layout{Codes: make([]uint64, l), Cols: make([]int, l)}
	for w := 0; w < l; w++ {
		lay.Cols[w] = w
	}
	return lay
}

// Half lays the ring of length l into a 2×⌈l/2⌉ strip (Lemma 3): down one
// row and back along the other.  For odd l the strip slot (1,0) stays
// unused; the wrap edge (l−1, 0) becomes the "logical edge" through it with
// dilation ≤ d+1.
func Half(l int) Layout {
	m := (l + 1) / 2
	lay := Layout{Codes: make([]uint64, l), Cols: make([]int, l), Bits: 1}
	for w := 0; w < l; w++ {
		if w < m {
			lay.Codes[w], lay.Cols[w] = 0, w
		} else {
			lay.Codes[w], lay.Cols[w] = 1, 2*m-1-w
		}
	}
	return lay
}

// Quarter lays the ring of length l into a 4×⌈l/4⌉ strip (Lemma 4).  The
// four rows carry the cyclic Gray code gray4, so row steps of one cost one
// cube dimension and row jumps of two cost two; every ring edge then has
// dilation ≤ max(d, 2) where d is the dilation of the column embedding.
func Quarter(l int) Layout {
	m := (l + 3) / 4
	lay := Layout{Codes: make([]uint64, 0, l), Cols: make([]int, 0, l), Bits: 2}
	add := func(row, col int) {
		lay.Codes = append(lay.Codes, gray4[row])
		lay.Cols = append(lay.Cols, col)
	}
	if m == 1 {
		// Rings of length ≤ 4 live on the Gray 4-ring itself; for l = 3
		// the wrap edge jumps two rows (distance 2).
		for w := 0; w < l; w++ {
			add(w, 0)
		}
		return lay
	}
	r := 4*m - l // surplus strip slots: 0..3
	if r == 3 && m == 2 {
		// l = 5: (0,0) (0,1) (1,1) (2,1) (2,0), closing with a row jump.
		add(0, 0)
		add(0, 1)
		add(1, 1)
		add(2, 1)
		add(2, 0)
		return lay
	}
	// General pattern: row 0 rightward, row 1 leftward down to column c1,
	// row 2 rightward from column c1, row 3 leftward, and for odd surplus
	// an extra stop at (2,0) before the closing row jump (2,0)→(0,0).
	switch r {
	case 0:
		// Full boustrophedon; closure (3,0)→(0,0) is one row step.
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(1, c)
		}
		for c := 0; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
	case 2:
		// Skip (1,0) and (2,0); closure (3,0)→(0,0).
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 1; c-- {
			add(1, c)
		}
		for c := 1; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
	case 1:
		// Skip (1,0); detour through (2,0) and close with a row jump of
		// two, (2,0)→(0,0).
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 1; c-- {
			add(1, c)
		}
		for c := 1; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
		add(2, 0)
	case 3:
		// Skip (1,0), (1,1) and (2,1); needs m ≥ 3 (m = 2 handled above).
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 2; c-- {
			add(1, c)
		}
		for c := 2; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
		add(2, 0)
	}
	return lay
}

// ForDiv returns the ring layout for the given strip divisor: Half for 2,
// Quarter for 4.
func ForDiv(div, l int) Layout {
	switch div {
	case 2:
		return Half(l)
	case 4:
		return Quarter(l)
	}
	panic(fmt.Sprintf("ring: unsupported divisor %d", div))
}

// Assemble builds the wraparound embedding from per-axis layouts and a base
// embedding of the strip-column mesh: host address = axis row codes (axis 0
// lowest, each axis contributing its layout's Bits) concatenated above
// base.Map[cols].  The family of the result is left to the caller.
func Assemble(base *embed.Embedding, shape mesh.Shape, lays []Layout) *embed.Embedding {
	k := shape.Dims()
	total := 0
	for _, lay := range lays {
		total += lay.Bits
	}
	e := embed.New(shape, base.N+total)
	coord := make([]int, k)
	colCoord := make([]int, k)
	for idx := range e.Map {
		shape.CoordInto(idx, coord)
		var rowBits uint64
		shift := 0
		for i := 0; i < k; i++ {
			w := coord[i]
			rowBits |= lays[i].Codes[w] << uint(shift)
			shift += lays[i].Bits
			colCoord[i] = lays[i].Cols[w]
		}
		inner := base.Map[base.Guest.Index(colCoord)]
		e.Map[idx] = cube.Node(rowBits<<uint(base.N) | uint64(inner))
	}
	return e
}
