package ring

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// ringLayoutOK walks the ring layout and checks every consecutive (and the
// closing) step stays within the allowed per-step structure: row codes at
// Hamming distance ≤ maxRow and columns differing by ≤ 1, never both.
func ringLayoutOK(t *testing.T, lay Layout, l int, maxRow int) {
	t.Helper()
	if len(lay.Codes) != l || len(lay.Cols) != l {
		t.Fatalf("layout length %d/%d, want %d", len(lay.Codes), len(lay.Cols), l)
	}
	seen := make(map[[2]int]bool)
	for w := 0; w < l; w++ {
		key := [2]int{int(lay.Codes[w]), lay.Cols[w]}
		if seen[key] {
			t.Fatalf("l=%d: duplicate strip slot %v", l, key)
		}
		seen[key] = true
	}
	if l == 1 {
		return
	}
	for w := 0; w < l; w++ {
		v := (w + 1) % l
		rowDist := bits.Hamming(lay.Codes[w], lay.Codes[v])
		colDist := lay.Cols[w] - lay.Cols[v]
		if colDist < 0 {
			colDist = -colDist
		}
		if rowDist > maxRow {
			t.Errorf("l=%d: step %d→%d row distance %d > %d", l, w, v, rowDist, maxRow)
		}
		if colDist > 1 {
			t.Errorf("l=%d: step %d→%d column distance %d", l, w, v, colDist)
		}
		if rowDist > 1 && colDist > 0 {
			t.Errorf("l=%d: step %d→%d moves %d rows and %d columns", l, w, v, rowDist, colDist)
		}
	}
}

func TestHalfLayouts(t *testing.T) {
	for l := 1; l <= 64; l++ {
		lay := Half(l)
		m := (l + 1) / 2
		if lay.Bits != 1 {
			t.Fatalf("l=%d: Half bits %d, want 1", l, lay.Bits)
		}
		for w := 0; w < l; w++ {
			if lay.Cols[w] < 0 || lay.Cols[w] >= m {
				t.Fatalf("l=%d: column %d out of strip", l, lay.Cols[w])
			}
		}
		// Even rings: every step moves one row xor one column.  Odd rings:
		// the wrap step may move a row and a column together (the logical
		// edge through the removed slot), so only the slot/dup checks and
		// the host-level dilation tests in package wrap apply.
		if l%2 == 0 {
			ringLayoutOK(t, lay, l, 1)
		}
	}
}

func TestQuarterLayouts(t *testing.T) {
	for l := 1; l <= 101; l++ {
		lay := Quarter(l)
		m := (l + 3) / 4
		if lay.Bits != 2 {
			t.Fatalf("l=%d: Quarter bits %d, want 2", l, lay.Bits)
		}
		for w := 0; w < l; w++ {
			if lay.Cols[w] < 0 || lay.Cols[w] >= m {
				t.Fatalf("l=%d: column %d out of strip", l, lay.Cols[w])
			}
		}
		ringLayoutOK(t, lay, l, 2)
	}
}

func TestIdentityLayout(t *testing.T) {
	lay := Identity(5)
	if lay.Bits != 0 || len(lay.Codes) != 5 {
		t.Fatalf("Identity(5) = %+v", lay)
	}
	for w, c := range lay.Cols {
		if c != w || lay.Codes[w] != 0 {
			t.Fatalf("Identity(5) slot %d = (%d, %d)", w, lay.Codes[w], c)
		}
	}
}

// TestAssembleMixedLayouts drives the cylinder case: identity layouts on the
// prefix axes and a ring layout on the last, over a Gray base of the strip
// columns.  Mesh edges on all axes plus the last-axis wrap edge must stay
// within the lemma's dilation bound.
func TestAssembleMixedLayouts(t *testing.T) {
	shape := mesh.Shape{3, 10}
	base := embed.Gray(mesh.Shape{3, 5})
	lays := []Layout{Identity(3), Half(10)}
	e := Assemble(base, shape, lays)
	if e.N != base.N+1 {
		t.Fatalf("cube dim %d, want %d", e.N, base.N+1)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	// All mesh edges plus the wrap edge of axis 1 (even length → ≤ max(d,1)
	// with Gray base d = 1... the base 3x5 Gray has dilation 1).
	maxDil := 0
	check := func(u, v int) {
		if d := e.EdgeDilation(u, v); d > maxDil {
			maxDil = d
		}
	}
	shape.EachEdge(func(ed mesh.Edge) { check(ed.U, ed.V) })
	for x := 0; x < 3; x++ {
		check(shape.Index([]int{x, 9}), shape.Index([]int{x, 0}))
	}
	if maxDil > 1 {
		t.Errorf("mixed-layout dilation %d, want ≤ 1", maxDil)
	}
}
