package stats

import (
	"testing"
)

func TestMethodPredicatesOnPaperExamples(t *testing.T) {
	cases := []struct {
		l1, l2, l3 int
		method     int
	}{
		{8, 8, 8, 1},   // powers of two: Gray
		{3, 4, 1, 1},   // ⌈3⌉₂⌈4⌉₂ = 16 = ⌈12⌉₂
		{5, 6, 7, 2},   // §5: pair 5x6 + Gray(7)
		{5, 10, 11, 2}, // §5: more than one valid pair
		{9, 3, 7, 2},   // ⌈27⌉₂⌈7⌉₂ = 32·8 = 256 = ⌈189⌉₂
		{21, 9, 5, 4},  // §5 example: split 21 = 7·3 into (7x9) ⊗ (3x5); no pair works (all give 2048 vs ⌈945⌉₂ = 1024)
		{3, 3, 3, 3},   // the direct block itself (Gray/pairs both fail)
		{3, 3, 7, 3},   // likewise
		{6, 3, 7, 3},   // 3x3x7 ⊗ gray(2,1,1): 64·2 = 128 = ⌈126⌉₂
		{3, 3, 11, 3},  // extension: 3x3x12 = 3x3x3 ⊗ 1x1x4, 32·4 = 128 = ⌈99⌉₂
		{3, 3, 23, 3},  // extension: 3x3x28 = 3x3x7 ⊗ 1x1x4, 64·4 = 256 = ⌈207⌉₂ (the paper extends to 3x3x25 instead)
		{9, 9, 9, 4},   // split 9 = 3·3 into (9x3) ⊗ (3x9): ⌈27⌉₂² = 1024 = ⌈729⌉₂
		{5, 5, 5, 0},   // §5: the only exception ≤ 128 nodes
		{5, 7, 7, 0},   // §5 exceptions ≤ 256 nodes
		{3, 9, 9, 0},
		{5, 5, 10, 0},
		{3, 5, 17, 0},
	}
	for _, c := range cases {
		if got := BestMethod(c.l1, c.l2, c.l3); got != c.method {
			t.Errorf("BestMethod(%d,%d,%d) = %d, want %d", c.l1, c.l2, c.l3, got, c.method)
		}
	}
}

func TestMethodsMonotoneUnderPermutation(t *testing.T) {
	// The predicates must be symmetric in the axes.
	triples := [][3]int{{5, 6, 7}, {3, 3, 23}, {5, 5, 5}, {21, 9, 5}, {3, 9, 9}}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, tr := range triples {
		want := BestMethod(tr[0], tr[1], tr[2])
		for _, p := range perms {
			if got := BestMethod(tr[p[0]], tr[p[1]], tr[p[2]]); got != want {
				t.Errorf("BestMethod not symmetric on %v: perm %v gives %d, want %d", tr, p, got, want)
			}
		}
	}
}

func TestRelExpansionMonotone(t *testing.T) {
	for _, tr := range [][3]int{{5, 6, 7}, {5, 5, 5}, {6, 11, 7}, {17, 17, 17}} {
		e := RelExpansion(tr[0], tr[1], tr[2])
		for i := 1; i < 4; i++ {
			if e[i] > e[i-1] {
				t.Errorf("RelExpansion(%v) not monotone: %v", tr, e)
			}
		}
		if e[0] < 1 {
			t.Errorf("RelExpansion(%v) below 1: %v", tr, e)
		}
		if (BestMethod(tr[0], tr[1], tr[2]) != 0) != (e[3] == 1) {
			t.Errorf("RelExpansion(%v) inconsistent with BestMethod: %v", tr, e)
		}
	}
}

func TestExceptionsUpTo128(t *testing.T) {
	// §5: "For the three-dimensional meshes of 128 nodes or less, the
	// 5x5x5 mesh is the only mesh for which we do not know of a
	// minimal-expansion dilation-two embedding."
	ex := Exceptions(128)
	if len(ex) != 1 || ex[0].L1 != 5 || ex[0].L2 != 5 || ex[0].L3 != 5 {
		t.Errorf("exceptions ≤128 = %v, want only 5x5x5", ex)
	}
}

func TestExceptionsUpTo256(t *testing.T) {
	// §5: up to 256 nodes there are four additional meshes:
	// 5x7x7, 3x9x9, 5x5x10 and 3x5x17.
	ex := Exceptions(256)
	want := map[[3]int]bool{
		{5, 5, 5}:  true,
		{5, 7, 7}:  true,
		{3, 9, 9}:  true,
		{5, 5, 10}: true,
		{3, 5, 17}: true,
	}
	if len(ex) != len(want) {
		t.Fatalf("exceptions ≤256: got %v, want %v", ex, want)
	}
	for _, e := range ex {
		if !want[[3]int{e.L1, e.L2, e.L3}] {
			t.Errorf("unexpected exception %v", e)
		}
	}
}

func TestFigure2SmallDomain(t *testing.T) {
	rows := Figure2(3) // 1..8 per axis: 512 ordered triples
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[2]
	if last.Total != 512 {
		t.Errorf("total = %d, want 512", last.Total)
	}
	// S values are cumulative percentages in [0,100], non-decreasing in i.
	for i := 1; i < 4; i++ {
		if last.S[i] < last.S[i-1] {
			t.Errorf("S not monotone: %v", last.S)
		}
	}
	// Brute-force cross-check of S1 at n=3.
	count := 0
	for a := 1; a <= 8; a++ {
		for b := 1; b <= 8; b++ {
			for c := 1; c <= 8; c++ {
				if Method1(a, b, c) {
					count++
				}
			}
		}
	}
	want := 100 * float64(count) / 512
	if diff := last.S[0] - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("S1(n=3) = %v, brute force %v", last.S[0], want)
	}
}

func TestFigure2CumulativeAcrossN(t *testing.T) {
	rows := Figure2(4)
	// Row n must describe the full domain [1,2^n]^3.
	for i, r := range rows {
		wantTotal := uint64(1) << uint(3*(i+1))
		if r.Total != wantTotal {
			t.Errorf("n=%d: total %d, want %d", r.N, r.Total, wantTotal)
		}
	}
}

func TestPermCount(t *testing.T) {
	if permCount(1, 1, 1) != 1 || permCount(1, 1, 2) != 3 || permCount(1, 2, 2) != 3 || permCount(1, 2, 3) != 6 {
		t.Error("permCount wrong")
	}
}

func BenchmarkBestMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BestMethod(i%512+1, (i*7)%512+1, (i*13)%512+1)
	}
}

func BenchmarkFigure2N5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Figure2(5)
	}
}

func TestFigure2GoldenN9(t *testing.T) {
	// The headline result of the paper (§5): "For a mesh of size less than
	// or equal to 512x512x512, the cumulated percentages grows as the
	// sequence: 28.5%, 81.5%, 82.9%, 96.1%."
	if testing.Short() {
		t.Skip("full 512^3 sweep skipped in -short mode")
	}
	rows := Figure2(9)
	last := rows[8]
	want := [4]float64{28.5, 81.5, 82.9, 96.1}
	for i := range want {
		got := last.S[i]
		if got < want[i]-0.05 || got >= want[i]+0.05 {
			t.Errorf("S%d(n=9) = %.4f%%, paper reports %.1f%%", i+1, got, want[i])
		}
	}
	t.Logf("n=9: S = %.4f / %.4f / %.4f / %.4f (paper: 28.5 / 81.5 / 82.9 / 96.1)",
		last.S[0], last.S[1], last.S[2], last.S[3])
}

func TestFigure2Epsilon(t *testing.T) {
	d := Figure2Epsilon(4)
	sum := d.Eps1 + d.Eps2 + d.Eps4 + d.EpsWorse
	if sum < 99.999 || sum > 100.001 {
		t.Errorf("distribution sums to %v", sum)
	}
	// Every mesh reaches ε ≤ 2 with the method family (dilation-one Gray
	// never wastes more than a factor two per §3.1 when applied after the
	// best pairing — empirically ε ≤ 2 everywhere).
	if d.Eps4 != 0 || d.EpsWorse != 0 {
		t.Errorf("unexpected ε > 2 mass: %+v", d)
	}
	rows := Figure2(4)
	if diff := d.Eps1 - rows[3].S[3]; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ε=1 mass %v disagrees with S4 %v", d.Eps1, rows[3].S[3])
	}
}
