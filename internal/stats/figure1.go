package stats

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/bits"
)

// GrayMinimalFraction returns the closed form of Theorem 2: the asymptotic
// fraction f_k(1/2) of k-dimensional meshes for which the binary-reflected
// Gray-code embedding yields minimum expansion,
//
//	f_k(1/2) = 2^k · (1 − ½ Σ_{i=0}^{k−1} lnⁱ2 / i!).
//
// f_2 ≈ 0.61 and f_3 ≈ 0.27 (quoted in §3.1).
func GrayMinimalFraction(k int) float64 {
	if k < 1 {
		panic("stats: dimension must be ≥ 1")
	}
	sum := 0.0
	term := 1.0 // lnⁱ2 / i!, starting at i = 0
	for i := 0; i < k; i++ {
		sum += term
		term *= math.Ln2 / float64(i+1)
	}
	return math.Pow(2, float64(k)) * (1 - sum/2)
}

// MonteCarloGrayFraction estimates f_k(1/2) by sampling: each aᵢ is uniform
// on (1/2, 1] and the event is Π aᵢ > 1/2 (the probability formulation of
// §3.1).  Deterministic for a given seed.
func MonteCarloGrayFraction(k int, samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for s := 0; s < samples; s++ {
		prod := 1.0
		for i := 0; i < k; i++ {
			prod *= 0.5 + rng.Float64()/2
			if prod <= 0.5 {
				break
			}
		}
		if prod > 0.5 {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// ExactGrayFraction counts, over the finite domain 1 ≤ ℓᵢ ≤ 2^n, the
// fraction of k-dimensional meshes with Π⌈ℓᵢ⌉₂ == ⌈Πℓᵢ⌉₂.  The finite
// fraction exceeds the asymptotic one because short axes (notably ℓ = 1 and
// exact powers of two) are over-represented.  Supported for k ≤ 4 with
// k·n ≤ 30.
func ExactGrayFraction(k, n int) float64 {
	if k < 1 || k > 4 || k*n > 30 {
		panic("stats: ExactGrayFraction domain too large")
	}
	limit := 1 << uint(n)
	lens := make([]int, k)
	var hits, total uint64
	var rec func(i int, prodCeil uint64, prod uint64)
	rec = func(i int, prodCeil, prod uint64) {
		if i == k {
			total++
			if prodCeil == bits.CeilPow2(prod) {
				hits++
			}
			return
		}
		for l := 1; l <= limit; l++ {
			lens[i] = l
			rec(i+1, prodCeil*bits.CeilPow2(uint64(l)), prod*uint64(l))
		}
	}
	rec(0, 1, 1)
	return float64(hits) / float64(total)
}

// Figure1Row is one point of Figure 1.
type Figure1Row struct {
	K          int
	Asymptotic float64 // Theorem 2 closed form
	MonteCarlo float64 // sampling estimate
}

// Figure1 evaluates f_k(1/2) for k = 1..maxK with a Monte-Carlo cross-check.
func Figure1(maxK, samples int, seed int64) []Figure1Row {
	rows := make([]Figure1Row, 0, maxK)
	for k := 1; k <= maxK; k++ {
		rows = append(rows, Figure1Row{
			K:          k,
			Asymptotic: GrayMinimalFraction(k),
			MonteCarlo: MonteCarloGrayFraction(k, samples, seed+int64(k)),
		})
	}
	return rows
}

// FormatFigure1 renders the rows as the text table printed by cmd/figures.
func FormatFigure1(rows []Figure1Row) string {
	var out strings.Builder
	out.WriteString("  k   f_k(1/2)   Monte-Carlo\n")
	for _, r := range rows {
		fmt.Fprintf(&out, "%3d   %.6f   %.6f\n", r.K, r.Asymptotic, r.MonteCarlo)
	}
	return out.String()
}
