package stats

import (
	"math"
	"testing"
)

func TestGrayMinimalFractionClosedForm(t *testing.T) {
	// §3.1: f2(1/2) = 2(1−ln2) ≈ 0.61, f3(1/2) = 4(1−ln2−ln²2/2) ≈ 0.27.
	if got, want := GrayMinimalFraction(2), 2*(1-math.Ln2); math.Abs(got-want) > 1e-12 {
		t.Errorf("f2 = %v, want %v", got, want)
	}
	if got, want := GrayMinimalFraction(3), 4*(1-math.Ln2-math.Ln2*math.Ln2/2); math.Abs(got-want) > 1e-12 {
		t.Errorf("f3 = %v, want %v", got, want)
	}
	if got := GrayMinimalFraction(2); math.Abs(got-0.61) > 0.01 {
		t.Errorf("f2 = %v, expected ≈0.61", got)
	}
	if got := GrayMinimalFraction(3); math.Abs(got-0.27) > 0.01 {
		t.Errorf("f3 = %v, expected ≈0.27", got)
	}
	// k=1: every 1-D mesh is Gray-minimal.
	if got := GrayMinimalFraction(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("f1 = %v, want 1", got)
	}
}

func TestGrayMinimalFractionDecreasing(t *testing.T) {
	prev := 2.0
	for k := 1; k <= 12; k++ {
		f := GrayMinimalFraction(k)
		if f <= 0 || f > 1+1e-12 {
			t.Fatalf("f%d = %v out of (0,1]", k, f)
		}
		if f > prev {
			t.Fatalf("f%d = %v not decreasing", k, f)
		}
		prev = f
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	for k := 1; k <= 5; k++ {
		want := GrayMinimalFraction(k)
		got := MonteCarloGrayFraction(k, 400_000, 12345)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("k=%d: Monte-Carlo %v vs closed form %v", k, got, want)
		}
	}
}

func TestExactGrayFractionMatchesFigure2S1(t *testing.T) {
	// The exact 3-D count over 1..2^n must equal Figure 2's S1 column.
	rows := Figure2(4)
	for n := 1; n <= 4; n++ {
		exact := 100 * ExactGrayFraction(3, n)
		if math.Abs(exact-rows[n-1].S[0]) > 1e-9 {
			t.Errorf("n=%d: ExactGrayFraction %v vs Figure2 S1 %v", n, exact, rows[n-1].S[0])
		}
	}
}

func TestExactApproachesAsymptotic(t *testing.T) {
	// 2-D: the exact fraction should approach f2 ≈ 0.614 from above as the
	// domain grows.
	f8 := ExactGrayFraction(2, 8)
	f10 := ExactGrayFraction(2, 10)
	asym := GrayMinimalFraction(2)
	if !(f10 < f8) {
		t.Errorf("exact fraction not decreasing: n=8 %v, n=10 %v", f8, f10)
	}
	if f10 < asym {
		t.Errorf("exact fraction %v fell below asymptotic %v", f10, asym)
	}
	if f10-asym > 0.05 {
		t.Errorf("exact fraction %v too far above asymptotic %v", f10, asym)
	}
}

func TestFigure1Format(t *testing.T) {
	rows := Figure1(4, 10_000, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if FormatFigure1(rows) == "" {
		t.Error("empty format")
	}
}

func BenchmarkMonteCarloGray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = MonteCarloGrayFraction(3, 10_000, int64(i))
	}
}
