package stats

import (
	"testing"
	"testing/quick"
)

func TestCoveredKMatchesBestMethodFor3D(t *testing.T) {
	// For k = 3 the grouping predicate must subsume BestMethod: any
	// 3D-covered triple is covered (as one triple group), and Gray/pair
	// groupings are exactly methods 1–2, already inside BestMethod.
	f := func(a, b, c uint8) bool {
		l1, l2, l3 := int(a%20)+1, int(b%20)+1, int(c%20)+1
		m := BestMethod(l1, l2, l3)
		cov := CoveredK([]int{l1, l2, l3})
		if m != 0 && !cov {
			return false // grouping must cover everything the methods do
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoveredKExamples(t *testing.T) {
	cases := []struct {
		lengths []int
		want    bool
	}{
		{[]int{8, 8, 8, 8}, true},     // Gray
		{[]int{12, 16, 20, 32}, true}, // §4.2's 4-D example
		{[]int{3, 5, 3, 5}, true},     // two 2-D pairs: 16·16 = ⌈225⌉₂ ✓
		{[]int{5, 5, 5}, false},       // §5's exception survives grouping
		{[]int{3, 3, 3, 3}, true},     // 3x3x3 triple ⊗ gray(3): 32·4 = 128 = ⌈81⌉₂
		{[]int{5, 5, 5, 5}, true},     // two 5x5 pairs: 32·32 = 1024 = ⌈625⌉₂
		{[]int{5, 5, 5, 1}, false},    // the 5x5x5 exception with a unit axis
		{[]int{3, 3, 3, 7}, true},     // 3x3x7 triple ⊗ gray(3): 64·4 = 256 = ⌈189⌉₂
	}
	for _, c := range cases {
		if got := CoveredK(c.lengths); got != c.want {
			t.Errorf("CoveredK(%v) = %v, want %v", c.lengths, got, c.want)
		}
	}
}

func TestCoveredKOrderInvariant(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		l := []int{int(a%12) + 1, int(b%12) + 1, int(c%12) + 1, int(d%12) + 1}
		want := CoveredK(l)
		perm := []int{l[3], l[1], l[0], l[2]}
		return CoveredK(perm) == want && CoveredK(sortedCopy(l)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestHigherDimCoverageSmall(t *testing.T) {
	r := HigherDimCoverage(4, 3) // 1..8 per axis
	if r.Total != 8*8*8*8 {
		t.Fatalf("total = %d", r.Total)
	}
	if r.CoveredPct < r.GrayPct {
		t.Errorf("grouped %.1f%% below Gray %.1f%%", r.CoveredPct, r.GrayPct)
	}
	if r.CoveredPct <= 50 {
		t.Errorf("§8 conjecture fails already at k=4, n=3: %.1f%%", r.CoveredPct)
	}
}

func TestHigherDimConjecture(t *testing.T) {
	// §8: "We conjecture that a majority of the higher dimensional meshes
	// can be embedded with dilation two using the existing two-, and
	// three-dimensional mesh embeddings."  Check k = 4 and 5 over the
	// largest domains that sweep quickly.
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for _, c := range []struct{ k, n int }{{4, 5}, {5, 4}} {
		r := HigherDimCoverage(c.k, c.n)
		t.Logf("k=%d, 1..%d: Gray %.1f%%, grouped %.1f%% (of %d meshes)",
			c.k, 1<<uint(c.n), r.GrayPct, r.CoveredPct, r.Total)
		if r.CoveredPct <= 50 {
			t.Errorf("conjecture refuted at k=%d n=%d: %.1f%%", c.k, c.n, r.CoveredPct)
		}
	}
}

func TestPermutationsHelper(t *testing.T) {
	cases := []struct {
		s    []int
		want uint64
	}{
		{[]int{1, 1, 1, 1}, 1},
		{[]int{1, 1, 2, 2}, 6},
		{[]int{1, 2, 3, 4}, 24},
		{[]int{1, 1, 1, 2}, 4},
		{[]int{2, 3}, 2},
	}
	for _, c := range cases {
		if got := permutations(c.s); got != c.want {
			t.Errorf("permutations(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func BenchmarkCoveredK(b *testing.B) {
	l := []int{6, 10, 14, 18}
	for i := 0; i < b.N; i++ {
		_ = CoveredK(l)
	}
}

func BenchmarkHigherDim4D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = HigherDimCoverage(4, 3)
	}
}
