package stats

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bits"
	"repro/internal/sweep"
)

// Figure2Row holds, for one domain bound 2^n, the cumulative percentage of
// ℓ1×ℓ2×ℓ3 meshes (1 ≤ ℓi ≤ 2^n, ordered triples) that achieve relative
// expansion one with methods 1..i, for i = 1..4 — the four curves S1..S4 of
// Figure 2 — plus the percentage that achieve relative expansion ≤ 2 after
// all four methods.
type Figure2Row struct {
	N          int        // domain bound exponent: 1 ≤ ℓi ≤ 2^N
	S          [4]float64 // cumulative % with ε = 1 after methods ≤ i
	S4Eps2     float64    // % with ε ≤ 2 after all methods
	Total      uint64     // number of ordered triples, 2^(3N)
	Exceptions uint64     // ordered triples with no method (ε = 1) at all
}

// CensusTally accumulates one domain bucket of the Figure 2 coverage
// census.  It is exported (with JSON tags) because the batch-job subsystem
// checkpoints running aggregates to disk and must round-trip them exactly;
// all fields are integers, so the tally — and everything rendered from it —
// is identical for any worker count, chunking, or resume point.
type CensusTally struct {
	Count [5]uint64 `json:"count"` // per method index 0..4 (0 = none works at ε=1)
	Eps2  uint64    `json:"eps2"`  // best ε ≤ 2 after all methods
	Total uint64    `json:"total"`
}

// censusTriple tallies one sorted triple a ≤ b ≤ c into its domain bucket,
// weighted by the number of distinct axis permutations.
func censusTriple(part []CensusTally, a, b, c int) {
	mult := permCount(a, b, c)
	bucket := bits.CeilLog2(uint64(c))
	if bucket == 0 {
		bucket = 1 // 1x1x1 lives in every domain, smallest is n=1
	}
	m := BestMethod(a, b, c)
	part[bucket].Count[m] += mult
	part[bucket].Total += mult
	if m == 0 {
		// ε = 1 unreachable; check ε ≤ 2 via method-4 family.
		e := RelExpansion(a, b, c)
		if e[3] <= 2 {
			part[bucket].Eps2 += mult
		}
	} else {
		part[bucket].Eps2 += mult
	}
}

// CensusShard tallies every sorted triple with fixed first axis a
// (a ≤ b ≤ c ≤ 2^maxN) into per-bucket tallies indexed 0..maxN.  It is the
// unit of work both for Figure2Parallel (one shard per goroutine, serial
// inside) and for the batch-job census (one shard per chunk, parallel over b
// inside with `workers`).  Cancellation is cooperative: a done ctx stops the
// shard between b-columns and returns ctx.Err() with a nil tally.
func CensusShard(ctx context.Context, a, maxN, workers int) ([]CensusTally, error) {
	limit := 1 << uint(maxN)
	if a < 1 || a > limit {
		return nil, fmt.Errorf("stats: census shard a=%d out of domain 1..%d", a, limit)
	}
	cols := limit - a + 1
	if sweep.Workers(workers) == 1 {
		part := make([]CensusTally, maxN+1)
		for b := a; b <= limit; b++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for c := b; c <= limit; c++ {
				censusTriple(part, a, b, c)
			}
		}
		return part, nil
	}
	return sweep.FoldCtx(ctx, cols, workers,
		func(i int) []CensusTally {
			b := a + i
			part := make([]CensusTally, maxN+1)
			for c := b; c <= limit; c++ {
				censusTriple(part, a, b, c)
			}
			return part
		},
		nil, MergeCensusTallies)
}

// MergeCensusTallies adds part into acc elementwise, allocating acc on first
// use so it can seed a sweep.Fold / FoldCtx reduction.
func MergeCensusTallies(acc, part []CensusTally) []CensusTally {
	if acc == nil {
		acc = make([]CensusTally, len(part))
	}
	for n := range acc {
		for i := range acc[n].Count {
			acc[n].Count[i] += part[n].Count[i]
		}
		acc[n].Eps2 += part[n].Eps2
		acc[n].Total += part[n].Total
	}
	return acc
}

// CensusRows converts per-bucket tallies into the cumulative Figure 2 rows
// (one per domain exponent n = 1..maxN).
func CensusRows(maxN int, buckets []CensusTally) []Figure2Row {
	rows := make([]Figure2Row, 0, maxN)
	var cum CensusTally
	for n := 1; n <= maxN; n++ {
		for i := range cum.Count {
			cum.Count[i] += buckets[n].Count[i]
		}
		cum.Eps2 += buckets[n].Eps2
		cum.Total += buckets[n].Total
		row := Figure2Row{N: n, Total: cum.Total, Exceptions: cum.Count[0]}
		running := uint64(0)
		for i := 1; i <= 4; i++ {
			running += cum.Count[i]
			row.S[i-1] = 100 * float64(running) / float64(cum.Total)
		}
		row.S4Eps2 = 100 * float64(cum.Eps2) / float64(cum.Total)
		rows = append(rows, row)
	}
	return rows
}

// Figure2 sweeps every mesh contained in a 2^maxN-cube domain and returns
// one row per n = 1..maxN, using all available cores.  The paper's domain
// is maxN = 9 (512×512×512); its reported sequence at n = 9 is 28.5, 81.5,
// 82.9, 96.1.
func Figure2(maxN int) []Figure2Row { return Figure2Parallel(maxN, 0) }

// Figure2Parallel is Figure2 with an explicit worker count (< 1 means
// GOMAXPROCS; 1 is the serial reference).  The sweep enumerates sorted
// triples a ≤ b ≤ c once — sharded over a, the per-shard bucket
// accumulators merged in shard order — and weights each triple by its
// number of axis permutations; a triple is bucketed at the smallest n whose
// domain contains it (n = ⌈log₂ c⌉) and contributes to every larger domain
// cumulatively.  All tallies are integers, so the result is identical for
// every worker count.
func Figure2Parallel(maxN, workers int) []Figure2Row {
	if maxN < 1 || maxN > 10 {
		panic("stats: Figure2 domain exponent out of range")
	}
	limit := 1 << uint(maxN)
	buckets := sweep.Fold(limit, workers,
		func(i int) []CensusTally {
			part, err := CensusShard(context.Background(), i+1, maxN, 1)
			if err != nil {
				panic(err) // unreachable: a is in range and ctx never cancels
			}
			return part
		},
		make([]CensusTally, maxN+1),
		MergeCensusTallies)
	return CensusRows(maxN, buckets)
}

// permCount returns the number of distinct ordered triples obtained by
// permuting (a ≤ b ≤ c).
func permCount(a, b, c int) uint64 {
	switch {
	case a == b && b == c:
		return 1
	case a == b || b == c:
		return 3
	default:
		return 6
	}
}

// FormatFigure2 renders the rows as the text table printed by cmd/figures.
func FormatFigure2(rows []Figure2Row) string {
	var out strings.Builder
	out.WriteString("  n   domain        S1      S2      S3      S4   S4(ε≤2)\n")
	for _, r := range rows {
		fmt.Fprintf(&out, "%3d   1..%-6d %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
			r.N, 1<<uint(r.N), r.S[0], r.S[1], r.S[2], r.S[3], r.S4Eps2)
	}
	return out.String()
}

// Exception is a mesh for which none of the four methods yields a
// minimal-expansion dilation-two embedding.
type Exception struct {
	L1, L2, L3 int
	Nodes      int
}

// Exceptions enumerates the sorted shapes (ℓ1 ≤ ℓ2 ≤ ℓ3) with at most
// maxNodes nodes for which BestMethod is 0.  Section 5 quotes the answers:
// maxNodes=128 → only 5x5x5; maxNodes=256 adds 5x7x7, 3x9x9, 5x5x10 and
// 3x5x17.
func Exceptions(maxNodes int) []Exception { return ExceptionsParallel(maxNodes, 0) }

// ExceptionsParallel is Exceptions sharded over ℓ1; shard outputs are
// concatenated in ℓ1 order, reproducing the serial enumeration order
// exactly for any worker count.
func ExceptionsParallel(maxNodes, workers int) []Exception {
	amax := 0
	for a := 1; a*a*a <= maxNodes; a++ {
		amax = a
	}
	parts := sweep.Map(amax, workers, func(i int) []Exception {
		a := i + 1
		var part []Exception
		for b := a; a*b*b <= maxNodes; b++ {
			for c := b; a*b*c <= maxNodes; c++ {
				if BestMethod(a, b, c) == 0 {
					part = append(part, Exception{a, b, c, a * b * c})
				}
			}
		}
		return part
	})
	var out []Exception
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// EpsilonDistribution tabulates, for one domain bound 2^n, the fraction of
// meshes whose best relative expansion after all four methods is exactly ε,
// for ε = 1, 2, 4 and ≥8 — the full S4(ε) profile of Figure 2 rather than
// just its ε = 1 slice.
type EpsilonDistribution struct {
	N        int
	Eps1     float64
	Eps2     float64
	Eps4     float64
	EpsWorse float64
}

// Figure2Epsilon computes the ε distribution over the full domain 1..2^n.
func Figure2Epsilon(n int) EpsilonDistribution { return Figure2EpsilonParallel(n, 0) }

// Figure2EpsilonParallel is Figure2Epsilon sharded over the first axis with
// an explicit worker count; integer tallies make the result identical for
// any worker count.
func Figure2EpsilonParallel(n, workers int) EpsilonDistribution {
	d, err := Figure2EpsilonCtx(context.Background(), n, workers)
	if err != nil {
		panic(err) // unreachable: the background ctx never cancels
	}
	return d
}

// Figure2EpsilonCtx is Figure2EpsilonParallel with cooperative cancellation
// for the batch-job subsystem: a done ctx stops the sweep between first-axis
// shards and returns ctx.Err().
func Figure2EpsilonCtx(ctx context.Context, n, workers int) (EpsilonDistribution, error) {
	if n < 1 || n > 9 {
		panic("stats: Figure2Epsilon domain exponent out of range")
	}
	limit := 1 << uint(n)
	type epsAcc struct{ c1, c2, c4, cw, total uint64 }
	acc, err := sweep.FoldCtx(ctx, limit, workers,
		func(i int) epsAcc {
			a := i + 1
			var part epsAcc
			for b := a; b <= limit; b++ {
				for c := b; c <= limit; c++ {
					mult := permCount(a, b, c)
					part.total += mult
					e := RelExpansion(a, b, c)
					switch {
					case e[3] <= 1:
						part.c1 += mult
					case e[3] <= 2:
						part.c2 += mult
					case e[3] <= 4:
						part.c4 += mult
					default:
						part.cw += mult
					}
				}
			}
			return part
		},
		epsAcc{},
		func(acc, part epsAcc) epsAcc {
			acc.c1 += part.c1
			acc.c2 += part.c2
			acc.c4 += part.c4
			acc.cw += part.cw
			acc.total += part.total
			return acc
		})
	if err != nil {
		return EpsilonDistribution{}, err
	}
	f := func(x uint64) float64 { return 100 * float64(x) / float64(acc.total) }
	return EpsilonDistribution{N: n, Eps1: f(acc.c1), Eps2: f(acc.c2), Eps4: f(acc.c4), EpsWorse: f(acc.cw)}, nil
}
