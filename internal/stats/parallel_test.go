package stats

import "testing"

// The parallel sweeps shard over the first axis and merge integer tallies
// in shard order, so every worker count must reproduce the serial output
// byte for byte.

func TestFigure2ParallelMatchesSerial(t *testing.T) {
	serial := FormatFigure2(Figure2Parallel(5, 1))
	for _, w := range []int{2, 3, 8, 0} {
		if got := FormatFigure2(Figure2Parallel(5, w)); got != serial {
			t.Errorf("workers=%d:\n%s\nwant:\n%s", w, got, serial)
		}
	}
}

func TestExceptionsParallelMatchesSerial(t *testing.T) {
	serial := ExceptionsParallel(256, 1)
	for _, w := range []int{2, 5, 0} {
		got := ExceptionsParallel(256, w)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d exceptions, want %d", w, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("workers=%d: entry %d = %+v, want %+v", w, i, got[i], serial[i])
			}
		}
	}
}

func TestFigure2EpsilonParallelMatchesSerial(t *testing.T) {
	serial := Figure2EpsilonParallel(4, 1)
	for _, w := range []int{3, 0} {
		if got := Figure2EpsilonParallel(4, w); got != serial {
			t.Errorf("workers=%d: %+v, want %+v", w, got, serial)
		}
	}
}

func TestHigherDimCoverageParallelMatchesSerial(t *testing.T) {
	serial := HigherDimCoverageParallel(4, 3, 1)
	for _, w := range []int{2, 6, 0} {
		if got := HigherDimCoverageParallel(4, 3, w); got != serial {
			t.Errorf("workers=%d: %+v, want %+v", w, got, serial)
		}
	}
}
