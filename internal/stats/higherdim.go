package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bits"
	"repro/internal/sweep"
)

// CoveredK reports whether a k-dimensional mesh can be embedded with
// minimal expansion and dilation ≤ 2 by grouping its axes into singletons
// (Gray codes), pairs (dilation-2 two-dimensional embeddings, [4]) and
// triples (the §5 methods), per the conjecture of §8: "a majority of the
// higher dimensional meshes can be embedded with dilation two using the
// existing two-, and three-dimensional mesh embeddings of dilation two."
//
// The condition is the existence of a partition of the axes into groups of
// size ≤ 3 such that every triple group is covered by BestMethod and the
// product of the groups' minimal cubes equals the mesh's minimal cube.
func CoveredK(lengths []int) bool {
	prod := uint64(1)
	for _, l := range lengths {
		if l < 1 {
			panic("stats: non-positive axis length")
		}
		prod *= uint64(l)
	}
	target := bits.CeilPow2(prod)
	return coverRec(lengths, 1, target)
}

// coverRec tries to consume the first remaining axis in a singleton, pair
// or triple group; dims accumulates the product of group cube sizes.
func coverRec(rest []int, dims uint64, target uint64) bool {
	if dims > target {
		return false
	}
	if len(rest) == 0 {
		return dims == target
	}
	a := rest[0]
	tail := rest[1:]
	// Singleton: Gray code.
	if coverRec(tail, dims*bits.CeilPow2(uint64(a)), target) {
		return true
	}
	// Pair with each later axis (Chan's 2-D oracle).
	for i := 0; i < len(tail); i++ {
		b := tail[i]
		others := without(tail, i)
		if coverRec(others, dims*bits.CeilPow2(uint64(a)*uint64(b)), target) {
			return true
		}
		// Triple with two later axes (§5 methods).
		for j := i + 1; j < len(tail); j++ {
			c := tail[j]
			if BestMethod(a, b, c) == 0 {
				continue
			}
			rest2 := without(without(tail, j), i)
			if coverRec(rest2, dims*bits.CeilPow2(uint64(a)*uint64(b)*uint64(c)), target) {
				return true
			}
		}
	}
	return false
}

func without(s []int, i int) []int {
	out := make([]int, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// HigherDimRow is one row of the §8 conjecture experiment.
type HigherDimRow struct {
	K, N       int
	GrayPct    float64 // minimal expansion by Gray alone
	CoveredPct float64 // minimal expansion with dilation ≤ 2 by grouping
	Total      uint64
}

// HigherDimCoverage sweeps all k-dimensional meshes with 1 ≤ ℓᵢ ≤ 2^n
// (ordered, counted via sorted tuples with multiplicity) and returns the
// fraction covered by Gray alone and by the §8 grouping.  Runs on all
// available cores; see HigherDimCoverageParallel.
func HigherDimCoverage(k, n int) HigherDimRow {
	return HigherDimCoverageParallel(k, n, 0)
}

// HigherDimCoverageParallel is HigherDimCoverage sharded over the first
// (smallest) axis length with an explicit worker count (< 1 means
// GOMAXPROCS).  Shards tally integers, so every worker count produces the
// same row.
func HigherDimCoverageParallel(k, n, workers int) HigherDimRow {
	if k < 2 || k > 6 {
		panic("stats: HigherDimCoverage supports k in 2..6")
	}
	limit := 1 << uint(n)
	type coverAcc struct{ total, grayHit, coverHit uint64 }
	acc := sweep.Fold(limit, workers,
		func(i int) coverAcc {
			var part coverAcc
			lens := make([]int, k)
			lens[0] = i + 1
			var rec func(i, min int)
			rec = func(i, min int) {
				if i == k {
					mult := permutations(lens)
					part.total += mult
					grayDim, prod := 0, uint64(1)
					for _, l := range lens {
						grayDim += bits.CeilLog2(uint64(l))
						prod *= uint64(l)
					}
					if uint64(1)<<uint(grayDim) == bits.CeilPow2(prod) {
						part.grayHit += mult
						part.coverHit += mult
						return
					}
					if CoveredK(lens) {
						part.coverHit += mult
					}
					return
				}
				for l := min; l <= limit; l++ {
					lens[i] = l
					rec(i+1, l)
				}
			}
			rec(1, lens[0])
			return part
		},
		coverAcc{},
		func(acc, part coverAcc) coverAcc {
			acc.total += part.total
			acc.grayHit += part.grayHit
			acc.coverHit += part.coverHit
			return acc
		})
	row := HigherDimRow{K: k, N: n, Total: acc.total}
	row.GrayPct = 100 * float64(acc.grayHit) / float64(acc.total)
	row.CoveredPct = 100 * float64(acc.coverHit) / float64(acc.total)
	return row
}

// permutations returns the number of distinct orderings of a sorted tuple.
func permutations(sorted []int) uint64 {
	n := len(sorted)
	fact := func(x int) uint64 {
		f := uint64(1)
		for i := 2; i <= x; i++ {
			f *= uint64(i)
		}
		return f
	}
	total := fact(n)
	run := 1
	for i := 1; i < n; i++ {
		if sorted[i] == sorted[i-1] {
			run++
		} else {
			total /= fact(run)
			run = 1
		}
	}
	return total / fact(run)
}

// FormatHigherDim renders rows as the text table printed by cmd/figures.
func FormatHigherDim(rows []HigherDimRow) string {
	var out strings.Builder
	out.WriteString("  k   domain     Gray-only   grouped (dil ≤ 2)\n")
	for _, r := range rows {
		fmt.Fprintf(&out, "%3d   1..%-6d %8.1f%% %12.1f%%\n", r.K, 1<<uint(r.N), r.GrayPct, r.CoveredPct)
	}
	return out.String()
}

// sortedCopy is a test helper used to canonicalize axis multisets.
func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}
