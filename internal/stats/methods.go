// Package stats reproduces the counting results of the paper: the
// asymptotic Gray-code coverage of Theorem 2 / Figure 1, the cumulative
// coverage of the four embedding methods of Section 5 / Figure 2 (with the
// headline sequence 28.5%, 81.5%, 82.9%, 96.1% at n = 9), and the
// exceptional-mesh enumerations quoted in the text.
package stats

import (
	"repro/internal/bits"
)

// c2 is shorthand for ⌈x⌉₂ on ints.
func c2(x int) uint64 { return bits.CeilPow2(uint64(x)) }

// Method1 reports whether the Gray-code embedding is minimal for the
// ℓ1×ℓ2×ℓ3 mesh: ⌈ℓ1⌉₂⌈ℓ2⌉₂⌈ℓ3⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂.
func Method1(l1, l2, l3 int) bool {
	return c2(l1)*c2(l2)*c2(l3) == c2(l1*l2*l3)
}

// Method2 reports whether some axis pair, embedded two-dimensionally with
// minimal expansion (Chan [4] / modified line compression), combined with a
// Gray code on the third axis, is minimal:
// ∃(i,j): ⌈ℓiℓj⌉₂·⌈ℓk⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂.
func Method2(l1, l2, l3 int) bool {
	T := c2(l1 * l2 * l3)
	return c2(l1*l2)*c2(l3) == T || c2(l2*l3)*c2(l1) == T || c2(l3*l1)*c2(l2) == T
}

// Method3Exact reports whether a direct 3x3x3 or 3x3x7 block, combined with
// Gray codes on the residual axes (Corollary 2), is minimal, without any
// axis extension.  The paper's Figure 2 counts method 3 with extension; see
// Method3.
func Method3Exact(l1, l2, l3 int) bool {
	T := c2(l1 * l2 * l3)
	// 3x3x3 block: every axis divisible by 3, 27 block nodes in a 5-cube.
	if l1%3 == 0 && l2%3 == 0 && l3%3 == 0 {
		if 32*c2(l1/3)*c2(l2/3)*c2(l3/3) == T {
			return true
		}
	}
	// 3x3x7 block: two axes divisible by 3, one by 7, 63 nodes in a 6-cube.
	l := [3]int{l1, l2, l3}
	for sevenAxis := 0; sevenAxis < 3; sevenAxis++ {
		a, b, c := l[sevenAxis], l[(sevenAxis+1)%3], l[(sevenAxis+2)%3]
		if a%7 == 0 && b%3 == 0 && c%3 == 0 {
			if 64*c2(a/7)*c2(b/3)*c2(c/3) == T {
				return true
			}
		}
	}
	return false
}

// Method4Split reports whether the axis-split decomposition of Figure 2's
// item 4 applies: for some split axis m with the remaining axes a, b, there
// are ℓ', ℓ” with ℓ'ℓ” ≥ ℓm and ⌈ℓa·ℓ'⌉₂ · ⌈ℓ”·ℓb⌉₂ == ⌈ℓ1ℓ2ℓ3⌉₂ (both
// factors embedded two-dimensionally per [4]).  Feasibility for a
// factorization P·Q of the minimal cube is ⌊P/ℓa⌋ · ⌊Q/ℓb⌋ ≥ ℓm.
func Method4Split(l1, l2, l3 int) bool {
	T := c2(l1 * l2 * l3)
	n := bits.CeilLog2(uint64(l1 * l2 * l3))
	l := [3]int{l1, l2, l3}
	for m := 0; m < 3; m++ {
		lm, la, lb := l[m], l[(m+1)%3], l[(m+2)%3]
		for p := 0; p <= n; p++ {
			P := uint64(1) << uint(p)
			Q := T / P
			lp := int(P) / la
			lpp := int(Q) / lb
			if lp >= 1 && lpp >= 1 && lp*lpp >= lm {
				return true
			}
		}
	}
	return false
}

// Method3 reports whether a direct 3x3x3 or 3x3x7 block applies, allowing
// the axis extension of strategy step 3 (§4.2): grow ℓᵢ to the next
// multiple of its block divisor provided the minimal cube is unchanged.
// This is the semantics under which Figure 2's S3 reproduces the published
// 82.9% at n = 9 (the no-extension reading gives 81.5%).  Extension cannot
// help methods 1 or 2 — enlarging an axis never lowers an ⌈·⌉₂ factor — so
// blocks are the only beneficiaries, and the minimal extension (next
// multiple) is optimal because larger multiples only grow ⌈ℓᵢ/dᵢ⌉₂.
func Method3(l1, l2, l3 int) bool {
	T := c2(l1 * l2 * l3)
	ceilDiv := func(x, d int) int { return (x + d - 1) / d }
	if 32*c2(ceilDiv(l1, 3))*c2(ceilDiv(l2, 3))*c2(ceilDiv(l3, 3)) == T {
		return true
	}
	l := [3]int{l1, l2, l3}
	for sevenAxis := 0; sevenAxis < 3; sevenAxis++ {
		a, b, c := l[sevenAxis], l[(sevenAxis+1)%3], l[(sevenAxis+2)%3]
		if 64*c2(ceilDiv(a, 7))*c2(ceilDiv(b, 3))*c2(ceilDiv(c, 3)) == T {
			return true
		}
	}
	return false
}

// Method4 reports whether the axis-split decomposition applies; it is
// Method4Split under the canonical reading (extension is already part of
// method 3).
func Method4(l1, l2, l3 int) bool {
	return Method4Split(l1, l2, l3)
}

// BestMethod returns the smallest method index (1..4) that yields a
// minimal-expansion dilation-two embedding for the ℓ1×ℓ2×ℓ3 mesh, or 0 when
// none of the four methods applies.
func BestMethod(l1, l2, l3 int) int {
	switch {
	case Method1(l1, l2, l3):
		return 1
	case Method2(l1, l2, l3):
		return 2
	case Method3(l1, l2, l3):
		return 3
	case Method4(l1, l2, l3):
		return 4
	}
	return 0
}

// RelExpansion returns, for each method prefix S1..S4, the best relative
// expansion 2^(dims used)/⌈ℓ1ℓ2ℓ3⌉₂ achievable with methods 1..i.
// Entries are at least 1; method prefixes that cannot improve keep the
// previous value.
func RelExpansion(l1, l2, l3 int) [4]float64 {
	T := c2(l1 * l2 * l3)
	tf := float64(T)

	e1 := float64(c2(l1)*c2(l2)*c2(l3)) / tf

	e2 := e1
	for _, v := range [3]uint64{
		c2(l1*l2) * c2(l3), c2(l2*l3) * c2(l1), c2(l3*l1) * c2(l2),
	} {
		if f := float64(v) / tf; f < e2 {
			e2 = f
		}
	}

	e3 := e2
	ceilDiv := func(x, d int) int { return (x + d - 1) / d }
	if f := float64(32*c2(ceilDiv(l1, 3))*c2(ceilDiv(l2, 3))*c2(ceilDiv(l3, 3))) / tf; f < e3 {
		e3 = f
	}
	l := [3]int{l1, l2, l3}
	for sevenAxis := 0; sevenAxis < 3; sevenAxis++ {
		a, b, c := l[sevenAxis], l[(sevenAxis+1)%3], l[(sevenAxis+2)%3]
		if f := float64(64*c2(ceilDiv(a, 7))*c2(ceilDiv(b, 3))*c2(ceilDiv(c, 3))) / tf; f < e3 {
			e3 = f
		}
	}

	e4 := e3
	if e4 > 1 {
		// Method 4 with expanded hosts: smallest ε = 2^k such that the
		// split condition holds on a cube of ε·⌈·⌉₂ nodes.
		for eps := uint64(1); float64(eps) < e4; eps *= 2 {
			if method4At(l, T*eps) {
				e4 = float64(eps)
				break
			}
		}
	}
	return [4]float64{e1, e2, e3, e4}
}

// method4At checks the method-4 split condition against a host of `total`
// nodes (a power of two ≥ ⌈ℓ1ℓ2ℓ3⌉₂).
func method4At(l [3]int, total uint64) bool {
	maxP := bits.FloorLog2(total)
	for m := 0; m < 3; m++ {
		lm, la, lb := l[m], l[(m+1)%3], l[(m+2)%3]
		for p := 0; p <= maxP; p++ {
			P := uint64(1) << uint(p)
			Q := total / P
			lp := int(P) / la
			lpp := int(Q) / lb
			if lp >= 1 && lpp >= 1 && lp*lpp >= lm {
				return true
			}
		}
	}
	return false
}
