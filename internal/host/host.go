// Package host abstracts the host graph of an embedding: addressing,
// neighbor enumeration, deterministic shortest-path routing with dense link
// indexing, and address canonicalization.  The Boolean cube is the first
// (and the paper's only) implementation; the interface is the seam a future
// host family (cube-connected cycles, de Bruijn hosts) plugs into without
// touching the guest registry or the metrics definitions.
//
// The specialized hot paths — the fused metrics engine, the routing done
// during congestion realization — stay monomorphic on internal/cube for
// speed.  The interface earns its keep as the reference semantics: the
// generic measurement path (embed.MeasureOnHost) must agree with the fused
// engine on every registered guest family, which the conformance suite
// asserts.
package host

import "repro/internal/cube"

// Node is a host node address.  All hosts address their nodes as integers
// in 0..Nodes(n)-1; the alias keeps embeddings' maps usable without
// conversion.
type Node = cube.Node

// Host is a family of host graphs indexed by a size parameter n (the cube
// dimension for the Boolean cube).  Implementations must be stateless and
// safe for concurrent use.
type Host interface {
	// Name identifies the host family ("boolean-cube").
	Name() string
	// Nodes returns the number of nodes of the size-n host.
	Nodes(n int) int
	// MinSize returns the smallest n whose host holds guestNodes nodes.
	MinSize(guestNodes int) int
	// Dist returns the shortest-path distance between two nodes.
	Dist(u, v Node, n int) int
	// Neighbors enumerates the nodes adjacent to u in ascending order.
	Neighbors(u Node, n int, fn func(Node))
	// Route returns one deterministic shortest path from u to v, both
	// endpoints included.  Every implementation must route u→u as {u}.
	Route(u, v Node, n int) []Node
	// NumLinks returns the number of undirected links, the length of a
	// dense congestion-load table.
	NumLinks(n int) int
	// LinkIndex maps the link between two adjacent nodes to its dense
	// index in 0..NumLinks(n)-1.
	LinkIndex(u, v Node, n int) int
	// Canonicalize translates a node map by a host automorphism into a
	// canonical position (for the cube: the image of guest node 0 becomes
	// address 0).  Distances, link loads and therefore all metrics are
	// unchanged.
	Canonicalize(m []Node, n int) []Node
}

// BooleanCube is the n-dimensional Boolean cube host: 2^n nodes, adjacency
// = Hamming distance one, e-cube routing.
type BooleanCube struct{}

// Name implements Host.
func (BooleanCube) Name() string { return "boolean-cube" }

// Nodes implements Host.
func (BooleanCube) Nodes(n int) int { return 1 << uint(n) }

// MinSize implements Host: ⌈log₂ guestNodes⌉.
func (BooleanCube) MinSize(guestNodes int) int {
	n := 0
	for (1 << uint(n)) < guestNodes {
		n++
	}
	return n
}

// Dist implements Host (Hamming distance).
func (BooleanCube) Dist(u, v Node, n int) int { return cube.Dist(u, v) }

// Neighbors implements Host: flips each of the n bits in ascending order.
func (BooleanCube) Neighbors(u Node, n int, fn func(Node)) {
	for _, w := range cube.Neighbors(u, n) {
		fn(w)
	}
}

// Route implements Host with the deterministic e-cube route (correct bits
// lowest dimension first), the same order cube.Route produces.
func (BooleanCube) Route(u, v Node, n int) []Node { return cube.Route(u, v) }

// NumLinks implements Host: n·2^(n−1) undirected cube edges.
func (BooleanCube) NumLinks(n int) int { return cube.NumLinks(n) }

// LinkIndex implements Host via the dense cube link indexing.
func (BooleanCube) LinkIndex(u, v Node, n int) int {
	return cube.LinkIndex(cube.LinkBetween(u, v), n)
}

// Canonicalize implements Host: XOR-translating every address by the image
// of node 0 is a cube automorphism, so the canonical form maps node 0 to
// address 0.
func (BooleanCube) Canonicalize(m []Node, n int) []Node {
	if len(m) == 0 {
		return nil
	}
	base := m[0]
	out := make([]Node, len(m))
	for i, a := range m {
		out[i] = a ^ base
	}
	return out
}
