package graph

import (
	"testing"

	"repro/internal/mesh"
)

func TestMeshGraph(t *testing.T) {
	s := mesh.Shape{3, 4}
	g := Mesh(s)
	if g.N != 12 || g.NumEdges() != s.Edges() {
		t.Fatalf("N=%d edges=%d", g.N, g.NumEdges())
	}
	if !g.Connected() {
		t.Error("mesh should be connected")
	}
}

func TestTorusGraphDegrees(t *testing.T) {
	g := Torus(mesh.Shape{3, 5})
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus node %d has degree %d", v, g.Degree(v))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N != 16 || g.NumEdges() != 32 {
		t.Fatalf("N=%d E=%d", g.N, g.NumEdges())
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	// Diameter of the n-cube is n.
	dist := g.BFS(0)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	if max != 4 {
		t.Errorf("diameter %d, want 4", max)
	}
}

func TestProductOfPathsIsMesh(t *testing.T) {
	// Path(3) × Path(5) must be the 3×5 mesh (Corollary 2, fact 1).
	p3, p5 := PathGraph(3), PathGraph(5)
	prod := Product(p3, p5)
	m := Mesh(mesh.Shape{3, 5})
	if prod.N != m.N || prod.NumEdges() != m.NumEdges() {
		t.Fatalf("product: N=%d E=%d; mesh: N=%d E=%d", prod.N, prod.NumEdges(), m.N, m.NumEdges())
	}
	// identity map must witness isomorphism (same index convention)
	phi := make([]int, m.N)
	for i := range phi {
		phi[i] = i
	}
	if err := IsSubgraphUnderMap(m, prod, phi); err != nil {
		t.Errorf("mesh ⊄ product: %v", err)
	}
	if err := IsSubgraphUnderMap(prod, m, phi); err != nil {
		t.Errorf("product ⊄ mesh: %v", err)
	}
}

func TestProductOfCubesIsCube(t *testing.T) {
	// Corollary 2, fact 2: Q(n1) × Q(n2) = Q(n1+n2).
	q2, q3 := Hypercube(2), Hypercube(3)
	prod := Product(q2, q3)
	q5 := Hypercube(5)
	if prod.N != q5.N || prod.NumEdges() != q5.NumEdges() {
		t.Fatalf("product: N=%d E=%d; Q5: N=%d E=%d", prod.N, prod.NumEdges(), q5.N, q5.NumEdges())
	}
	// Node [u,v] has index v*4+u = v<<2 | u which is exactly the
	// concatenated cube address, so identity is an isomorphism.
	phi := make([]int, q5.N)
	for i := range phi {
		phi[i] = i
	}
	if err := IsSubgraphUnderMap(q5, prod, phi); err != nil {
		t.Errorf("Q5 ⊄ Q2×Q3: %v", err)
	}
}

func TestMeshSubgraphOfProductMeshes(t *testing.T) {
	// Fact 3 of Corollary 2 (Ma–Tao): a 6-node path is a subgraph of
	// Path(3) × Path(2) via snake order.
	p6 := PathGraph(6)
	prod := Product(PathGraph(3), PathGraph(2))
	// snake: (x,y) with y slow, reflect x when y odd
	phi := []int{0, 1, 2, 5, 4, 3}
	if err := IsSubgraphUnderMap(p6, prod, phi); err != nil {
		t.Errorf("path ⊄ product: %v", err)
	}
}

func TestRingSubgraphOfEvenProduct(t *testing.T) {
	// Lemma 1 ingredient: every ℓ'×ℓ'' mesh with even ℓ'ℓ'' contains a
	// Hamiltonian ring. Check 2×3: ring of 6 via boustrophedon cycle.
	prod := Product(PathGraph(2), PathGraph(3))
	ring := Ring(6)
	// cycle visiting (0,0),(1,0),(1,1),(1,2),(0,2),(0,1) -> indices u + v*2
	phi := []int{0, 1, 3, 5, 4, 2}
	if err := IsSubgraphUnderMap(ring, prod, phi); err != nil {
		t.Errorf("ring ⊄ 2x3 mesh: %v", err)
	}
}

func TestRingEdgeCounts(t *testing.T) {
	if Ring(1).NumEdges() != 0 || Ring(2).NumEdges() != 1 || Ring(3).NumEdges() != 3 || Ring(8).NumEdges() != 8 {
		t.Error("ring edge counts wrong")
	}
}

func TestIsSubgraphUnderMapRejects(t *testing.T) {
	g := PathGraph(3)
	h := PathGraph(3)
	if err := IsSubgraphUnderMap(g, h, []int{0, 2, 1}); err == nil {
		t.Error("non-edge-preserving map accepted")
	}
	if err := IsSubgraphUnderMap(g, h, []int{0, 0, 1}); err == nil {
		t.Error("non-injective map accepted")
	}
	if err := IsSubgraphUnderMap(g, h, []int{0, 1}); err == nil {
		t.Error("partial map accepted")
	}
	if err := IsSubgraphUnderMap(g, h, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range map accepted")
	}
	if err := IsSubgraphUnderMap(g, h, []int{0, 1, 2}); err != nil {
		t.Errorf("identity rejected: %v", err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	for _, f := range []func(){
		func() { g.AddEdge(0, 0) },
		func() { g.AddEdge(0, 1) },
		func() { g.AddEdge(1, 0) },
		func() { g.AddEdge(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[1] != 1 || dist[2] != -1 || dist[3] != -1 {
		t.Errorf("dist = %v", dist)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestProductEdgeCount(t *testing.T) {
	// |E(G1×G2)| = |V1||E2| + |V2||E1| (Definition 4).
	g1, g2 := Mesh(mesh.Shape{3, 4}), Ring(5)
	prod := Product(g1, g2)
	want := g1.N*g2.NumEdges() + g2.N*g1.NumEdges()
	if prod.NumEdges() != want {
		t.Errorf("edges = %d, want %d", prod.NumEdges(), want)
	}
}

func BenchmarkHypercubeBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hypercube(10)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := Hypercube(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(i & (g.N - 1))
	}
}
