// Package graph provides an explicit undirected-graph representation with
// constructors for the graph families of the paper — meshes, wraparound
// meshes (tori), Boolean cubes, paths, rings and Cartesian products — plus
// BFS utilities.  It backs the solver, the verifier's cross-checks and the
// structural facts (e.g. Lemma 1) used by the torus embeddings.
package graph

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/mesh"
)

// Graph is a simple undirected graph on nodes 0..N-1 with adjacency lists.
type Graph struct {
	N   int
	Adj [][]int32
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	return &Graph{N: n, Adj: make([][]int32, n)}
}

// AddEdge inserts the undirected edge {u, v}.  Self-loops and duplicate
// edges are rejected with a panic: the graph families here are all simple.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N))
	}
	for _, w := range g.Adj[u] {
		if int(w) == v {
			panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
		}
	}
	g.Adj[u] = append(g.Adj[u], int32(v))
	g.Adj[v] = append(g.Adj[v], int32(u))
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.Adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a)
	}
	return total / 2
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// EachEdge calls fn once per undirected edge with u < v.
func (g *Graph) EachEdge(fn func(u, v int)) {
	for u := 0; u < g.N; u++ {
		for _, w := range g.Adj[u] {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// BFS returns the distance from src to every node, with -1 for unreachable.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (vacuously true for N≤1).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Mesh returns the mesh graph of the given shape (no wraparound).
func Mesh(s mesh.Shape) *Graph {
	g := New(s.Nodes())
	s.EachEdge(func(e mesh.Edge) { g.AddEdge(e.U, e.V) })
	return g
}

// Torus returns the wraparound-mesh graph of the given shape.
func Torus(s mesh.Shape) *Graph {
	g := New(s.Nodes())
	s.EachTorusEdge(func(e mesh.Edge) { g.AddEdge(e.U, e.V) })
	return g
}

// Hypercube returns the Boolean n-cube graph.
func Hypercube(n int) *Graph {
	g := New(1 << uint(n))
	for v := 0; v < g.N; v++ {
		for d := 0; d < n; d++ {
			w := int(bits.FlipBit(uint64(v), d))
			if w > v {
				g.AddEdge(v, w)
			}
		}
	}
	return g
}

// PathGraph returns the path (linear array) on n nodes.
func PathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle on n nodes (n ≥ 3; n = 2 yields a single edge,
// n ≤ 1 no edges) — matching the torus edge convention of package mesh.
func Ring(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Product returns the Cartesian product g1 × g2 (Definition 4).  The node
// [u, v] has index v*g1.N + u, i.e. the g1 coordinate varies fastest,
// matching mesh.Shape index order when shapes are multiplied per axis.
func Product(g1, g2 *Graph) *Graph {
	g := New(g1.N * g2.N)
	// G1-type edges: for every node v of g2, a copy of g1.
	for v := 0; v < g2.N; v++ {
		base := v * g1.N
		g1.EachEdge(func(a, b int) { g.AddEdge(base+a, base+b) })
	}
	// G2-type edges: for every node u of g1, a copy of g2.
	for u := 0; u < g1.N; u++ {
		g2.EachEdge(func(a, b int) { g.AddEdge(a*g1.N+u, b*g1.N+u) })
	}
	return g
}

// IsSubgraphUnderMap checks that the map φ (guest node → host node) is
// injective and maps every guest edge to a host edge, i.e. it witnesses that
// guest is (isomorphic to) a subgraph of host.
func IsSubgraphUnderMap(guest, host *Graph, phi []int) error {
	if len(phi) != guest.N {
		return fmt.Errorf("graph: map covers %d of %d nodes", len(phi), guest.N)
	}
	seen := make(map[int]int, len(phi))
	for u, hu := range phi {
		if hu < 0 || hu >= host.N {
			return fmt.Errorf("graph: node %d maps outside host (%d)", u, hu)
		}
		if prev, dup := seen[hu]; dup {
			return fmt.Errorf("graph: nodes %d and %d both map to %d", prev, u, hu)
		}
		seen[hu] = u
	}
	var bad error
	guest.EachEdge(func(u, v int) {
		if bad == nil && !host.HasEdge(phi[u], phi[v]) {
			bad = fmt.Errorf("graph: guest edge (%d,%d) not preserved", u, v)
		}
	})
	return bad
}
