package embed

import (
	"repro/internal/cube"
	"repro/internal/gray"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// Gray returns the binary-reflected Gray-code embedding of the mesh
// (Section 3.1): axis i is encoded in ⌈log₂ ℓi⌉ bits, axis 0 in the least
// significant bits.  The dilation and congestion are one; the expansion is
// Π⌈ℓi⌉₂ / Πℓi, which is minimal exactly when Shape.GrayMinimal holds
// (Theorem 1 shows no dilation-one embedding can do better).
func Gray(s mesh.Shape) *Embedding {
	p := gray.NewProduct(s...)
	e := New(s, p.Bits())
	coord := make([]int, s.Dims())
	for idx := range e.Map {
		s.CoordInto(idx, coord)
		e.Map[idx] = cube.Node(p.Code(coord))
	}
	return e
}

// GrayRing returns the dilation-one embedding of a wraparound axis of
// power-of-two length: the cyclic Gray code.  For a multi-axis torus with
// all power-of-two axes, Gray already yields dilation one including the
// wraparound edges (set Family to torus on the result); this helper exists
// for rings.
func GrayRing(length int) *Embedding {
	e := Gray(mesh.Shape{length})
	e.Family = guest.Torus
	return e
}

// Identity returns the trivial embedding of a 1-node mesh into a 0-cube.
func Identity() *Embedding {
	return New(mesh.Shape{1}, 0)
}
