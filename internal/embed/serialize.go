package embed

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// The text format for embeddings:
//
//	repro-embedding v1
//	guest 5x6x7
//	wrap false
//	family cylinder      (only for families beyond mesh/torus; the torus
//	                      keeps its historical "wrap true" spelling)
//	cube 8
//	map
//	2 3 0 1 …            (host addresses in dense guest-index order,
//	                      any whitespace/line structure)
//
// Pinned paths are not serialized; metrics that depend on a specific path
// realization (congestion) are recomputed with e-cube routing after a load.

const formatHeader = "repro-embedding v1"

// SchemaVersion is the current version of the structured (JSON) embedding
// schema.  Serial carries it explicitly so API responses stay
// forward-compatible: readers reject versions they do not know instead of
// misparsing them.
const SchemaVersion = 1

// Serial is the structured, versioned form of an embedding, the schema the
// HTTP API serves.  It captures exactly what the text format does: pinned
// paths are not serialized, and path-dependent metrics are recomputed with
// e-cube routing after FromSerial.
type Serial struct {
	Version int      `json:"version"`
	Guest   string   `json:"guest"`
	Family  string   `json:"family,omitempty"` // guest family; empty means mesh (or torus when wrap is set)
	Wrap    bool     `json:"wrap,omitempty"`
	Cube    int      `json:"cube"`
	Map     []uint64 `json:"map"`
}

// Serial returns the structured form of the embedding.  Mesh embeddings
// omit both family and wrap (keeping the pre-family schema byte-identical);
// the torus keeps its historical wrap marker alongside the family name.
func (e *Embedding) Serial() *Serial {
	m := make([]uint64, len(e.Map))
	for i, h := range e.Map {
		m[i] = uint64(h)
	}
	fam := ""
	if e.Family != guest.Mesh {
		fam = e.Family.String()
	}
	return &Serial{Version: SchemaVersion, Guest: e.Guest.String(), Family: fam,
		Wrap: e.Family == guest.Torus, Cube: e.N, Map: m}
}

// resolveFamily reconciles the family and legacy wrap fields of a
// serialized embedding: an explicit family name wins (and must agree with
// wrap), a bare wrap marker means torus, neither means mesh.
func resolveFamily(name string, wrap bool) (guest.Family, error) {
	if name == "" {
		if wrap {
			return guest.Torus, nil
		}
		return guest.Mesh, nil
	}
	f, err := guest.ParseFamily(name)
	if err != nil {
		return 0, fmt.Errorf("embed: %v", err)
	}
	if wrap && f != guest.Torus {
		return 0, fmt.Errorf("embed: family %q contradicts wrap marker", name)
	}
	return f, nil
}

// FromSerial rebuilds an embedding from its structured form and validates
// it with VerifyManyToOne (the format stores many-to-one embeddings too, so
// one-to-one validity stays the caller's decision, as with Read).
func FromSerial(s *Serial) (*Embedding, error) {
	if s.Version != SchemaVersion {
		return nil, fmt.Errorf("embed: unsupported schema version %d (have %d)", s.Version, SchemaVersion)
	}
	gs, err := mesh.ParseShape(s.Guest)
	if err != nil {
		return nil, err
	}
	fam, err := resolveFamily(s.Family, s.Wrap)
	if err != nil {
		return nil, err
	}
	e := New(gs, s.Cube)
	e.Family = fam
	if len(s.Map) != len(e.Map) {
		return nil, fmt.Errorf("embed: map covers %d of %d guest nodes", len(s.Map), len(e.Map))
	}
	for i, h := range s.Map {
		e.Map[i] = cube.Node(h)
	}
	if err := e.VerifyManyToOne(); err != nil {
		return nil, err
	}
	return e, nil
}

// WriteTo serializes the embedding in the text format.  It returns the
// number of bytes written.
func (e *Embedding) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", formatHeader)
	fmt.Fprintf(&b, "guest %s\n", e.Guest)
	fmt.Fprintf(&b, "wrap %v\n", e.Family == guest.Torus)
	if e.Family != guest.Mesh && e.Family != guest.Torus {
		fmt.Fprintf(&b, "family %s\n", e.Family)
	}
	fmt.Fprintf(&b, "cube %d\n", e.N)
	b.WriteString("map\n")
	for i, h := range e.Map {
		if i > 0 {
			if i%16 == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString(strconv.FormatUint(uint64(h), 10))
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Read parses an embedding from the text format and validates it with
// VerifyManyToOne (one-to-one validity is the caller's decision, since the
// format also stores many-to-one embeddings).
func Read(r io.Reader) (*Embedding, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := func() (string, error) {
		for sc.Scan() {
			t := strings.TrimSpace(sc.Text())
			if t != "" {
				return t, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	h, err := line()
	if err != nil {
		return nil, err
	}
	if h != formatHeader {
		return nil, fmt.Errorf("embed: bad header %q", h)
	}
	var gs mesh.Shape
	var wrap bool
	var famName string
	var n = -1
	for {
		l, err := line()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(l)
		switch fields[0] {
		case "guest":
			if len(fields) != 2 {
				return nil, fmt.Errorf("embed: bad guest line %q", l)
			}
			gs, err = mesh.ParseShape(fields[1])
			if err != nil {
				return nil, err
			}
		case "wrap":
			if len(fields) != 2 {
				return nil, fmt.Errorf("embed: bad wrap line %q", l)
			}
			wrap, err = strconv.ParseBool(fields[1])
			if err != nil {
				return nil, err
			}
		case "family":
			if len(fields) != 2 {
				return nil, fmt.Errorf("embed: bad family line %q", l)
			}
			famName = fields[1]
		case "cube":
			if len(fields) != 2 {
				return nil, fmt.Errorf("embed: bad cube line %q", l)
			}
			n, err = strconv.Atoi(fields[1])
			if err != nil {
				return nil, err
			}
		case "map":
			if gs == nil || n < 0 {
				return nil, fmt.Errorf("embed: map before guest/cube")
			}
			fam, err := resolveFamily(famName, wrap)
			if err != nil {
				return nil, err
			}
			e := New(gs, n)
			e.Family = fam
			count := 0
			for count < len(e.Map) {
				l, err := line()
				if err != nil {
					return nil, fmt.Errorf("embed: map truncated at %d of %d entries", count, len(e.Map))
				}
				for _, f := range strings.Fields(l) {
					if count >= len(e.Map) {
						return nil, fmt.Errorf("embed: map has extra entries")
					}
					v, err := strconv.ParseUint(f, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("embed: bad map entry %q", f)
					}
					e.Map[count] = cube.Node(v)
					count++
				}
			}
			if err := e.VerifyManyToOne(); err != nil {
				return nil, err
			}
			return e, nil
		default:
			return nil, fmt.Errorf("embed: unknown field %q", fields[0])
		}
	}
}
