package embed

import (
	"context"
	"testing"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// benchGray returns the Gray embedding of the shape — the standard large
// unpinned-edge workload (every edge routed e-cube).
func benchGray(s mesh.Shape) *Embedding { return Gray(s) }

// benchFamily is benchGray under another guest family: the same map, with
// the edge set (and therefore the fused traversal) reinterpreted — the
// wraparound families add their wrap edges on top of the mesh edges.
func benchFamily(s mesh.Shape, f guest.Family) *Embedding {
	e := Gray(s)
	e.Family = f
	return e
}

// benchPinned returns a 3x5x17 embedding with a deliberately scrambled map
// (identity reshaping of the dense index into the 8-cube) so that many edges
// land at distance 2..4 and RealizeMinCongestion pins explicit paths — the
// pinned-path side of the metrics hot loop.
func benchPinned() *Embedding {
	s := mesh.Shape{3, 5, 17}
	e := New(s, s.MinCubeDim())
	for i := range e.Map {
		e.Map[i] = cube.Node(i)
	}
	e.RealizeMinCongestion()
	return e
}

func BenchmarkMeasure(b *testing.B) {
	cases := []struct {
		name string
		e    *Embedding
	}{
		{"16x16x16", benchGray(mesh.Shape{16, 16, 16})},
		{"64x64x64", benchGray(mesh.Shape{64, 64, 64})},
		{"3x5x17pinned", benchPinned()},
		{"torus64x64x64", benchFamily(mesh.Shape{64, 64, 64}, guest.Torus)},
		{"cylinder64x64x64", benchFamily(mesh.Shape{64, 64, 64}, guest.Cylinder)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := c.e.Measure()
				if m.Dilation < 1 {
					b.Fatalf("metrics: %s", m)
				}
			}
		})
	}
}

func BenchmarkLinkLoads(b *testing.B) {
	cases := []struct {
		name string
		e    *Embedding
	}{
		{"16x16x16", benchGray(mesh.Shape{16, 16, 16})},
		{"64x64x64", benchGray(mesh.Shape{64, 64, 64})},
		{"3x5x17pinned", benchPinned()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				loads := c.e.LinkLoads()
				if len(loads) == 0 {
					b.Fatal("no links")
				}
			}
		})
	}
}

// BenchmarkMeasureTraced measures the fully-traced Measure path (a root span
// per iteration, so the fused pass, sweep workers and shards all record) for
// the off-vs-on overhead comparison of EXPERIMENTS.md.
func BenchmarkMeasureTraced(b *testing.B) {
	cases := []struct {
		name string
		e    *Embedding
	}{
		{"16x16x16", benchGray(mesh.Shape{16, 16, 16})},
		{"64x64x64", benchGray(mesh.Shape{64, 64, 64})},
	}
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx, root := obs.StartRoot(context.Background(), "bench")
				m := c.e.MeasureParallelCtx(ctx, 0)
				root.End()
				if m.Dilation < 1 {
					b.Fatalf("metrics: %s", m)
				}
			}
		})
	}
}
