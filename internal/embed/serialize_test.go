package embed

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, s := range []mesh.Shape{{3, 5}, {5, 6, 7}, {1}, {17}} {
		e := Gray(s)
		if s.Dims() == 1 {
			e.Family = guest.Torus
		}
		var b strings.Builder
		if _, err := e.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !got.Guest.Equal(e.Guest) || got.N != e.N || got.Family != e.Family {
			t.Fatalf("%v: header mismatch", s)
		}
		for i := range e.Map {
			if got.Map[i] != e.Map[i] {
				t.Fatalf("%v: map[%d] = %d, want %d", s, i, got.Map[i], e.Map[i])
			}
		}
	}
}

func TestSerializeRoundTripRandom(t *testing.T) {
	f := func(a, b uint8, wrap bool) bool {
		s := mesh.Shape{int(a%7) + 1, int(b%7) + 1}
		e := Gray(s)
		if wrap {
			e.Family = guest.Torus
		}
		var sb strings.Builder
		if _, err := e.WriteTo(&sb); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return got.Guest.Equal(e.Guest) && got.Family == e.Family && got.Measure() == e.Measure()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// roundTrip pushes e through the text format and back.
func roundTrip(t *testing.T, e *Embedding) *Embedding {
	t.Helper()
	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// manyToOne builds a 2-to-1 embedding of the shape into a cube one
// dimension below minimal: consecutive snake... simply idx % hostNodes,
// which VerifyManyToOne accepts (injectivity is not required).
func manyToOne(s mesh.Shape) *Embedding {
	e := New(s, s.MinCubeDim()-1)
	hn := e.HostNodes()
	for i := range e.Map {
		e.Map[i] = cube.Node(i % hn)
	}
	return e
}

func TestSerializeRoundTripTorus(t *testing.T) {
	for _, s := range []mesh.Shape{{6, 10}, {4, 4, 4}} {
		e := Gray(s)
		e.Family = guest.Torus
		got := roundTrip(t, e)
		if got.Family != guest.Torus {
			t.Fatalf("%v: torus family lost", s)
		}
		if got.Measure() != e.Measure() {
			t.Fatalf("%v: metrics changed: %v vs %v", s, got.Measure(), e.Measure())
		}
	}
}

func TestSerializeRoundTripManyToOne(t *testing.T) {
	e := manyToOne(mesh.Shape{5, 7})
	got := roundTrip(t, e)
	if got.LoadFactor() != e.LoadFactor() || got.LoadFactor() < 2 {
		t.Fatalf("load factor %d vs %d", got.LoadFactor(), e.LoadFactor())
	}
	if got.Measure() != e.Measure() {
		t.Fatalf("metrics changed: %v vs %v", got.Measure(), e.Measure())
	}
}

func TestSerialRoundTrip(t *testing.T) {
	cases := []*Embedding{Gray(mesh.Shape{5, 6, 7}), manyToOne(mesh.Shape{9, 9})}
	torus := Gray(mesh.Shape{8, 4})
	torus.Family = guest.Torus
	cases = append(cases, torus)
	cyl := Gray(mesh.Shape{3, 4})
	cyl.Family = guest.Cylinder
	cases = append(cases, cyl, TreeInorder(mesh.Shape{15}))
	for _, e := range cases {
		s := e.Serial()
		if s.Version != SchemaVersion {
			t.Fatalf("serial version = %d, want %d", s.Version, SchemaVersion)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Serial
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := FromSerial(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Guest.Equal(e.Guest) || got.Family != e.Family || got.N != e.N {
			t.Fatalf("%s: header mismatch", e.Guest)
		}
		if got.Measure() != e.Measure() {
			t.Fatalf("%s: metrics changed", e.Guest)
		}
	}
}

func TestFromSerialRejects(t *testing.T) {
	base := Gray(mesh.Shape{3, 5}).Serial()
	wrongVersion := *base
	wrongVersion.Version = SchemaVersion + 1
	shortMap := *base
	shortMap.Map = shortMap.Map[:3]
	badGuest := *base
	badGuest.Guest = "3x0"
	outOfCube := *base
	outOfCube.Map = append([]uint64(nil), base.Map...)
	outOfCube.Map[0] = 1 << 60
	for name, s := range map[string]*Serial{
		"version": &wrongVersion, "short-map": &shortMap,
		"bad-guest": &badGuest, "out-of-cube": &outOfCube,
	} {
		if _, err := FromSerial(s); err == nil {
			t.Errorf("%s: accepted invalid serial", name)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-an-embedding",
		"repro-embedding v1\nguest 3x5\nwrap false\ncube 4\nmap\n1 2 3",                       // truncated
		"repro-embedding v1\nguest 3x5\nwrap false\ncube 4\nmap\n" + strings.Repeat("1 ", 20), // injectivity aside, extra entries
		"repro-embedding v1\nguest 3x0\nwrap false\ncube 4\nmap\n",
		"repro-embedding v1\nwrap maybe\n",
		"repro-embedding v1\nmystery field\n",
		"repro-embedding v1\nmap\n",                                   // map before guest
		"repro-embedding v1\nguest 2\nwrap false\ncube 1\nmap\n5 0\n", // out of cube
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted garbage %q", c)
		}
	}
}

func TestReadAcceptsManyToOne(t *testing.T) {
	in := "repro-embedding v1\nguest 2x2\nwrap false\ncube 1\nmap\n0 0 1 1\n"
	e, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e.LoadFactor() != 2 {
		t.Errorf("load = %d", e.LoadFactor())
	}
}

func BenchmarkSerialize(b *testing.B) {
	e := Gray(mesh.Shape{16, 16, 16})
	var sb strings.Builder
	e.WriteTo(&sb)
	data := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
