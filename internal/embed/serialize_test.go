package embed

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mesh"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, s := range []mesh.Shape{{3, 5}, {5, 6, 7}, {1}, {17}} {
		e := Gray(s)
		e.Wrap = s.Dims() == 1
		var b strings.Builder
		if _, err := e.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !got.Guest.Equal(e.Guest) || got.N != e.N || got.Wrap != e.Wrap {
			t.Fatalf("%v: header mismatch", s)
		}
		for i := range e.Map {
			if got.Map[i] != e.Map[i] {
				t.Fatalf("%v: map[%d] = %d, want %d", s, i, got.Map[i], e.Map[i])
			}
		}
	}
}

func TestSerializeRoundTripRandom(t *testing.T) {
	f := func(a, b uint8, wrap bool) bool {
		s := mesh.Shape{int(a%7) + 1, int(b%7) + 1}
		e := Gray(s)
		e.Wrap = wrap
		var sb strings.Builder
		if _, err := e.WriteTo(&sb); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return got.Guest.Equal(e.Guest) && got.Wrap == wrap && got.Measure() == e.Measure()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-an-embedding",
		"repro-embedding v1\nguest 3x5\nwrap false\ncube 4\nmap\n1 2 3",                       // truncated
		"repro-embedding v1\nguest 3x5\nwrap false\ncube 4\nmap\n" + strings.Repeat("1 ", 20), // injectivity aside, extra entries
		"repro-embedding v1\nguest 3x0\nwrap false\ncube 4\nmap\n",
		"repro-embedding v1\nwrap maybe\n",
		"repro-embedding v1\nmystery field\n",
		"repro-embedding v1\nmap\n",                                   // map before guest
		"repro-embedding v1\nguest 2\nwrap false\ncube 1\nmap\n5 0\n", // out of cube
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted garbage %q", c)
		}
	}
}

func TestReadAcceptsManyToOne(t *testing.T) {
	in := "repro-embedding v1\nguest 2x2\nwrap false\ncube 1\nmap\n0 0 1 1\n"
	e, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e.LoadFactor() != 2 {
		t.Errorf("load = %d", e.LoadFactor())
	}
}

func BenchmarkSerialize(b *testing.B) {
	e := Gray(mesh.Shape{16, 16, 16})
	var sb strings.Builder
	e.WriteTo(&sb)
	data := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
