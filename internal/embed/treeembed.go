package embed

import (
	mathbits "math/bits"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// TreeInorder embeds the complete binary tree on 2^h − 1 nodes (heap order,
// family tree) into its minimal h-cube by the classic inorder labeling: the
// heap node at depth d and left-to-right position p — a subtree root of
// height j = h−1−d — gets the cube address p·2^(j+1) + 2^j − 1, its inorder
// number.  A node's left child differs from it in exactly bit j−1 (Hamming
// distance 1) and its right child in bits j and j−1 (distance 2), so the
// dilation is 2 — and the embedding is always minimal, since 2^h − 1 nodes
// need an h-cube.
func TreeInorder(s mesh.Shape) *Embedding {
	if err := guest.Validate(guest.Tree, s); err != nil {
		panic(err)
	}
	n := s[0]
	h := mathbits.Len64(uint64(n)) // n = 2^h − 1
	e := New(s, s.MinCubeDim())
	e.Family = guest.Tree
	for i := 0; i < n; i++ {
		d := mathbits.Len64(uint64(i+1)) - 1 // heap depth of node i
		p := i + 1 - 1<<uint(d)              // position within its level
		j := uint(h - 1 - d)                 // subtree height
		e.Map[i] = cube.Node(uint64(p)<<(j+1) | 1<<j - 1)
	}
	return e
}
