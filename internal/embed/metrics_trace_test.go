package embed

import (
	"context"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
)

// grayEmbedding returns the Gray-coded embedding of the shape spec.
func grayEmbedding(t testing.TB, spec string) *Embedding {
	t.Helper()
	s, err := mesh.ParseShape(spec)
	if err != nil {
		t.Fatal(err)
	}
	return Gray(s)
}

func TestMeasureParallelCtxMatchesMeasure(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	for _, spec := range []string{"4x4x4", "8x8x8", "16x16x16", "5x6x7"} {
		e := grayEmbedding(t, spec)
		want := e.Measure()

		ctx, root := obs.StartRoot(context.Background(), "test")
		got := e.MeasureParallelCtx(ctx, 4)
		root.End()

		if got != want {
			t.Errorf("%s: traced metrics %+v != untraced %+v", spec, got, want)
		}
		snap := root.Snapshot()
		measure := snap.Find("measure")
		if measure == nil {
			t.Fatalf("%s: no measure span", spec)
		}
		if measure.Find("fused-pass") == nil {
			t.Fatalf("%s: no fused-pass span under measure", spec)
		}
	}
}

func TestFusedPassShardSpans(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	e := grayEmbedding(t, "16x16x16")
	ctx, root := obs.StartRoot(context.Background(), "test")
	e.MeasureParallelCtx(ctx, 4)
	root.End()

	snap := root.Snapshot()
	fp := snap.Find("fused-pass")
	if fp == nil {
		t.Fatal("no fused-pass span")
	}
	// Each shard span records its edge tally; the tallies must sum to the
	// guest edge count, proving the shards partition the edge set.
	var edges int64
	shards := 0
	var walk func(s *obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		if len(s.Name) >= 5 && s.Name[:5] == "shard" {
			shards++
			for _, a := range s.Attrs {
				if a.Key == "edges" {
					edges += a.Value.(int64)
				}
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(fp)
	if shards != 4 {
		t.Fatalf("shard spans = %d, want 4", shards)
	}
	if want := int64(e.NumGuestEdges()); edges != want {
		t.Fatalf("shard edge tallies sum to %d, want %d", edges, want)
	}
}
