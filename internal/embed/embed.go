// Package embed defines the Embedding value — a map from the nodes of a
// guest mesh to the nodes of a Boolean cube together with a realization of
// every guest edge as a cube path — and computes the quality measures of the
// paper: expansion, dilation, average dilation, congestion, average
// congestion and (for many-to-one embeddings) load factor.
package embed

import (
	"context"
	"fmt"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// Embedding maps a guest graph into a Boolean N-cube.
//
// The guest is a (Family, Shape) pair from the guest-family registry: the
// Shape fixes the node set (dense indices, axis 0 fastest) and the Family
// fixes the edge interpretation (mesh, torus, cylinder, tree, …).  The
// zero Family is guest.Mesh, so plain mesh embeddings need no extra setup.
//
// Map[i] is the cube node hosting guest node i.  For one-to-one embeddings
// Map must be injective; many-to-one embeddings (Section 7 of the paper)
// relax this and are validated with VerifyManyToOne.
//
// Paths, if non-nil, realizes guest edge e as an explicit cube path.  When a
// guest edge has no entry, metrics fall back to e-cube (dimension-ordered)
// shortest-path routing, which never changes the dilation (any realization
// of an edge uses at least Dist hops; stored paths are validated to be
// shortest unless AllowLongPaths is set).
type Embedding struct {
	Guest  mesh.Shape
	Family guest.Family // edge interpretation of Guest (zero: mesh)
	N      int          // host cube dimension
	Map    []cube.Node

	// Paths optionally pins the host path of selected guest edges,
	// keyed by the canonical edge (U < V handled by EdgeKey).
	Paths map[EdgeKey]cube.Path

	// AllowLongPaths permits stored paths longer than the cube distance
	// of their endpoints (used by the hierarchical embeddings of the
	// summary section, where an edge is routed through removed nodes).
	AllowLongPaths bool
}

// EdgeKey canonically identifies a guest edge by its dense endpoint indices.
type EdgeKey struct{ U, V int }

// Key returns the canonical key with U < V.
func Key(u, v int) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey{U: u, V: v}
}

// New allocates an embedding of the guest shape into an n-cube with an
// all-zero map (to be filled in by a constructor).  The family defaults to
// mesh; constructors of other families set Family themselves.
func New(s mesh.Shape, n int) *Embedding {
	return &Embedding{Guest: s.Clone(), N: n, Map: make([]cube.Node, s.Nodes())}
}

// HostNodes returns 2^N.
func (e *Embedding) HostNodes() int { return 1 << uint(e.N) }

// Expansion returns |V(H)| / |V(G)| (Definition 1).
func (e *Embedding) Expansion() float64 {
	return float64(e.HostNodes()) / float64(e.Guest.Nodes())
}

// Minimal reports whether the embedding uses the minimal cube:
// N == ⌈log₂ |V(G)|⌉.
func (e *Embedding) Minimal() bool { return e.N == e.Guest.MinCubeDim() }

// Wraps reports whether the guest family has wraparound edges.
func (e *Embedding) Wraps() bool { return guest.Get(e.Family).Wraps }

// eachGuestEdge iterates guest edges under the family's interpretation.
func (e *Embedding) eachGuestEdge(fn func(mesh.Edge)) {
	guest.Get(e.Family).EachEdgeRange(e.Guest, 0, e.Guest.Nodes(), fn)
}

// NumGuestEdges returns the number of guest edges under the family's
// interpretation.
func (e *Embedding) NumGuestEdges() int {
	return guest.Get(e.Family).Edges(e.Guest)
}

// EdgeDilation returns the dilation of one guest edge: the length of its
// pinned path if any, else the cube distance of the endpoint images.
func (e *Embedding) EdgeDilation(u, v int) int {
	if e.Paths != nil {
		if p, ok := e.Paths[Key(u, v)]; ok {
			return p.Len()
		}
	}
	return cube.Dist(e.Map[u], e.Map[v])
}

// Dilation returns the maximum edge dilation (Definition 2).  It is a thin
// wrapper over the fused metrics engine (metrics.go).
func (e *Embedding) Dilation() int {
	return e.fusedPass(context.Background(), 0, false).maxDil
}

// AvgDilation returns the mean edge dilation (Definition 2).  It returns 0
// for guests with no edges.
func (e *Embedding) AvgDilation() float64 {
	st := e.fusedPass(context.Background(), 0, false)
	if st.edges == 0 {
		return 0
	}
	return float64(st.dilSum) / float64(st.edges)
}

// AxisAvgDilation returns the mean dilation of the edges along one guest
// axis (the d̄₂(i) of Section 4.1), or 0 if the axis has no edges.
func (e *Embedding) AxisAvgDilation(axis int) float64 {
	st := e.fusedPass(context.Background(), 0, false)
	if axis < 0 || axis >= len(st.axisSum) || st.axisCnt[axis] == 0 {
		return 0
	}
	return float64(st.axisSum[axis]) / float64(st.axisCnt[axis])
}

// LinkLoads returns the congestion of every host link under the current
// path realization, indexed by cube.LinkIndex.
func (e *Embedding) LinkLoads() []int {
	st := e.fusedPass(context.Background(), 0, true)
	loads := make([]int, cube.NumLinks(e.N))
	for i, c := range st.loads {
		loads[i] = int(c)
	}
	return loads
}

// Congestion returns the maximum link congestion (Definition 3).
func (e *Embedding) Congestion() int {
	max := 0
	for _, c := range e.fusedPass(context.Background(), 0, true).loads {
		if int(c) > max {
			max = int(c)
		}
	}
	return max
}

// AvgCongestion returns the mean congestion over all host links
// (Definition 3), counting idle links.  The total load equals the dilation
// sum (a path of length d crosses d links), so no load vector is needed.
func (e *Embedding) AvgCongestion() float64 {
	numLinks := cube.NumLinks(e.N)
	if numLinks == 0 {
		return 0
	}
	return float64(e.fusedPass(context.Background(), 0, false).dilSum) / float64(numLinks)
}

// LoadFactor returns the maximum number of guest nodes sharing a host node
// (Definition 5).  For a valid one-to-one embedding it is 1.  Small cubes
// are counted in a dense slice; cubes above denseNodeLimit fall back to a
// map.
func (e *Embedding) LoadFactor() int {
	hn := e.HostNodes()
	if hn <= denseNodeLimit {
		counts := make([]int32, hn)
		max := int32(0)
		for _, h := range e.Map {
			if int64(h) >= int64(hn) {
				return e.loadFactorMap() // invalid image; stay permissive like the map path
			}
			counts[h]++
			if counts[h] > max {
				max = counts[h]
			}
		}
		return int(max)
	}
	return e.loadFactorMap()
}

func (e *Embedding) loadFactorMap() int {
	counts := make(map[cube.Node]int, len(e.Map))
	max := 0
	for _, h := range e.Map {
		counts[h]++
		if counts[h] > max {
			max = counts[h]
		}
	}
	return max
}

// OptimalLoadFactor returns ⌈|V(G)| / 2^N⌉, the best possible load factor.
func (e *Embedding) OptimalLoadFactor() int {
	hn := e.HostNodes()
	return (e.Guest.Nodes() + hn - 1) / hn
}

// Verify checks the structural invariants of a one-to-one embedding:
// the guest shape is valid, every image is inside the cube, the map is
// injective, and every pinned path is a valid cube walk joining the correct
// images with length ≥ the cube distance (== unless AllowLongPaths).
func (e *Embedding) Verify() error {
	if err := e.verifyCommon(); err != nil {
		return err
	}
	if hn := e.HostNodes(); hn <= denseNodeLimit {
		// Dense injectivity check: slot h holds 1 + the guest index mapped
		// there.  verifyCommon bounds every image, and the first duplicate
		// appears within the first hn+1 entries, so int32 suffices.
		seen := make([]int32, hn)
		for i, h := range e.Map {
			if prev := seen[h]; prev != 0 {
				return fmt.Errorf("embed: guest nodes %v and %v both map to cube node %d",
					e.Guest.Coord(int(prev-1)), e.Guest.Coord(i), h)
			}
			seen[h] = int32(i + 1)
		}
		return nil
	}
	seen := make(map[cube.Node]int, len(e.Map))
	for i, h := range e.Map {
		if prev, dup := seen[h]; dup {
			return fmt.Errorf("embed: guest nodes %v and %v both map to cube node %d",
				e.Guest.Coord(prev), e.Guest.Coord(i), h)
		}
		seen[h] = i
	}
	return nil
}

// VerifyManyToOne checks the invariants of a many-to-one embedding
// (everything Verify checks except injectivity).
func (e *Embedding) VerifyManyToOne() error { return e.verifyCommon() }

func (e *Embedding) verifyCommon() error {
	if err := guest.Validate(e.Family, e.Guest); err != nil {
		return err
	}
	if e.N < 0 || e.N > 62 {
		return fmt.Errorf("embed: cube dimension %d out of range", e.N)
	}
	if len(e.Map) != e.Guest.Nodes() {
		return fmt.Errorf("embed: map covers %d of %d guest nodes", len(e.Map), e.Guest.Nodes())
	}
	limit := cube.Node(1) << uint(e.N)
	for i, h := range e.Map {
		if h >= limit {
			return fmt.Errorf("embed: guest node %v maps to %d, outside the %d-cube",
				e.Guest.Coord(i), h, e.N)
		}
	}
	var bad error
	if e.Paths != nil {
		e.eachGuestEdge(func(ed mesh.Edge) {
			if bad != nil {
				return
			}
			p, ok := e.Paths[Key(ed.U, ed.V)]
			if !ok {
				return
			}
			if err := p.Validate(e.N); err != nil {
				bad = fmt.Errorf("embed: edge (%d,%d): %v", ed.U, ed.V, err)
				return
			}
			if len(p) == 0 || p[0] != e.Map[ed.U] || p[len(p)-1] != e.Map[ed.V] {
				// also accept the reversed orientation
				if len(p) == 0 || p[0] != e.Map[ed.V] || p[len(p)-1] != e.Map[ed.U] {
					bad = fmt.Errorf("embed: edge (%d,%d): path endpoints do not match images", ed.U, ed.V)
					return
				}
			}
			d := cube.Dist(e.Map[ed.U], e.Map[ed.V])
			if p.Len() < d || (!e.AllowLongPaths && p.Len() != d) {
				bad = fmt.Errorf("embed: edge (%d,%d): path length %d vs distance %d", ed.U, ed.V, p.Len(), d)
			}
		})
		// Reject paths for non-existent edges: they would silently skew
		// congestion accounting.
		valid := make(map[EdgeKey]bool, e.NumGuestEdges())
		e.eachGuestEdge(func(ed mesh.Edge) { valid[Key(ed.U, ed.V)] = true })
		for k := range e.Paths {
			if !valid[k] {
				return fmt.Errorf("embed: pinned path for non-edge (%d,%d)", k.U, k.V)
			}
		}
	}
	return bad
}

// RealizeMinCongestion pins, for every guest edge whose images are at
// distance 2, the shortest path that currently has the lighter maximum link
// load (greedy, deterministic order).  Distance-0/1 edges need no choice and
// distance ≥ 3 edges keep e-cube routing.  This is how the congestion-2
// figures of the direct embeddings are attained.
func (e *Embedding) RealizeMinCongestion() {
	loads := make([]int, cube.NumLinks(e.N))
	if e.Paths == nil {
		e.Paths = make(map[EdgeKey]cube.Path)
	}
	// Links are accumulated by walking paths pairwise — no per-path link
	// slices — and e-cube routes land in one reused scratch buffer.
	var route cube.Path
	addPath := func(p cube.Path) {
		for i := 1; i < len(p); i++ {
			loads[cube.LinkIndex(cube.LinkBetween(p[i-1], p[i]), e.N)]++
		}
	}
	worst := func(p cube.Path) int {
		w := 0
		for i := 1; i < len(p); i++ {
			if c := loads[cube.LinkIndex(cube.LinkBetween(p[i-1], p[i]), e.N)]; c > w {
				w = c
			}
		}
		return w
	}
	e.eachGuestEdge(func(ed mesh.Edge) {
		key := Key(ed.U, ed.V)
		if p, pinned := e.Paths[key]; pinned {
			addPath(p)
			return
		}
		a, b := e.Map[ed.U], e.Map[ed.V]
		d := cube.Dist(a, b)
		if d <= 1 || d > 4 {
			route = cube.RouteInto(route[:0], a, b)
			addPath(route)
			return
		}
		best := cube.Path(nil)
		bestW := int(^uint(0) >> 1)
		for _, p := range cube.ShortestPaths(a, b) {
			if w := worst(p); w < bestW {
				best, bestW = p, w
			}
		}
		e.Paths[key] = best
		addPath(best)
	})
}

// Metrics bundles the quality measures for reporting.  Family names the
// guest family ("mesh", "torus", "cylinder", "tree"); Wrap is kept as the
// historical torus marker for wire compatibility.
type Metrics struct {
	Guest         string
	Family        string
	Wrap          bool
	CubeDim       int
	Expansion     float64
	Minimal       bool
	Dilation      int
	AvgDilation   float64
	Wirelength    int64
	Congestion    int
	AvgCongestion float64
	LoadFactor    int
}

// Measure computes all metrics of the embedding in one fused edge pass
// (see metrics.go), parallelized over guest-node blocks for large meshes.
// The result is bit-identical for every worker count; MeasureParallel
// exposes the worker knob.
func (e *Embedding) Measure() Metrics {
	return e.MeasureParallel(0)
}

// String renders the metrics compactly.  The torus keeps its historical
// " (wraparound)" marker; other non-mesh families show their name.
func (m Metrics) String() string {
	w := ""
	switch {
	case m.Wrap || m.Family == "torus":
		w = " (wraparound)"
	case m.Family != "" && m.Family != "mesh":
		w = " (" + m.Family + ")"
	}
	return fmt.Sprintf("%s%s -> %d-cube: exp=%.4f minimal=%v dil=%d avgdil=%.4f wl=%d cong=%d avgcong=%.4f load=%d",
		m.Guest, w, m.CubeDim, m.Expansion, m.Minimal, m.Dilation, m.AvgDilation, m.Wirelength, m.Congestion, m.AvgCongestion, m.LoadFactor)
}
