package embed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
)

func TestGrayPowerOfTwoPerfect(t *testing.T) {
	for _, s := range []mesh.Shape{{4}, {8, 8}, {2, 4, 8}, {16, 16}} {
		e := Gray(s)
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		m := e.Measure()
		if m.Dilation != 1 || m.Expansion != 1 || m.Congestion != 1 || !m.Minimal {
			t.Errorf("%v: %s", s, m)
		}
	}
}

func TestGrayNonPowerOfTwo(t *testing.T) {
	e := Gray(mesh.Shape{3, 5})
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	m := e.Measure()
	if m.Dilation != 1 {
		t.Errorf("Gray dilation %d, want 1", m.Dilation)
	}
	// ⌈3⌉₂⌈5⌉₂ = 32 host nodes for 15 guests: expansion 32/15, not minimal.
	if m.CubeDim != 5 || m.Minimal {
		t.Errorf("unexpected: %s", m)
	}
}

func TestGrayDilationAlwaysOne(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := mesh.Shape{int(a%9) + 1, int(b%9) + 1, int(c%9) + 1}
		e := Gray(s)
		return e.Verify() == nil && e.Dilation() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGrayCongestionOne(t *testing.T) {
	for _, s := range []mesh.Shape{{5, 7}, {3, 3, 3}, {6, 5}} {
		e := Gray(s)
		if c := e.Congestion(); c != 1 {
			t.Errorf("%v: congestion %d, want 1", s, c)
		}
	}
}

func TestGrayRingWraparound(t *testing.T) {
	e := GrayRing(8)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 1 {
		t.Errorf("cyclic Gray ring dilation %d, want 1", d)
	}
}

func TestGrayTorusPowerOfTwo(t *testing.T) {
	e := Gray(mesh.Shape{4, 8})
	e.Family = guest.Torus
	if d := e.Dilation(); d != 1 {
		t.Errorf("power-of-two torus Gray dilation %d, want 1", d)
	}
	if c := e.Congestion(); c > 2 {
		t.Errorf("power-of-two torus Gray congestion %d", c)
	}
}

func TestExpansionAndLoad(t *testing.T) {
	e := New(mesh.Shape{3, 5}, 4)
	for i := range e.Map {
		e.Map[i] = cube.Node(i)
	}
	if e.Expansion() != 16.0/15.0 {
		t.Errorf("expansion = %v", e.Expansion())
	}
	if !e.Minimal() {
		t.Error("should be minimal")
	}
	if e.LoadFactor() != 1 {
		t.Errorf("load = %d", e.LoadFactor())
	}
	if e.OptimalLoadFactor() != 1 {
		t.Errorf("optimal load = %d", e.OptimalLoadFactor())
	}
}

func TestVerifyCatchesCollision(t *testing.T) {
	e := New(mesh.Shape{2, 2}, 2)
	// all map to node 0: collision
	if err := e.Verify(); err == nil {
		t.Error("collision not caught")
	}
	if err := e.VerifyManyToOne(); err != nil {
		t.Errorf("many-to-one should allow collisions: %v", err)
	}
	if e.LoadFactor() != 4 {
		t.Errorf("load = %d, want 4", e.LoadFactor())
	}
}

func TestVerifyCatchesOutOfRange(t *testing.T) {
	e := New(mesh.Shape{2}, 1)
	e.Map[0], e.Map[1] = 0, 2 // 2 is outside the 1-cube
	if err := e.Verify(); err == nil {
		t.Error("out-of-range image not caught")
	}
}

func TestPinnedPathValidation(t *testing.T) {
	e := New(mesh.Shape{2}, 2)
	e.Map[0], e.Map[1] = 0, 3
	e.Paths = map[EdgeKey]cube.Path{Key(0, 1): {0, 1, 3}}
	if err := e.Verify(); err != nil {
		t.Errorf("valid pinned path rejected: %v", err)
	}
	if e.EdgeDilation(0, 1) != 2 {
		t.Errorf("dilation via path = %d", e.EdgeDilation(0, 1))
	}
	// wrong endpoints
	e.Paths[Key(0, 1)] = cube.Path{0, 1}
	if err := e.Verify(); err == nil {
		t.Error("path with wrong endpoint accepted")
	}
	// broken walk
	e.Paths[Key(0, 1)] = cube.Path{0, 3}
	if err := e.Verify(); err == nil {
		t.Error("non-walk path accepted")
	}
	// longer than distance without AllowLongPaths
	e.Paths[Key(0, 1)] = cube.Path{0, 1, 0, 1, 3}
	if err := e.Verify(); err == nil {
		t.Error("over-long path accepted")
	}
	e.AllowLongPaths = true
	if err := e.Verify(); err != nil {
		t.Errorf("AllowLongPaths should accept it: %v", err)
	}
	// path for a non-edge
	e.Paths = map[EdgeKey]cube.Path{Key(5, 7): {0, 1}}
	if err := e.Verify(); err == nil {
		t.Error("path for non-edge accepted")
	}
}

func TestReversedPathAccepted(t *testing.T) {
	e := New(mesh.Shape{2}, 2)
	e.Map[0], e.Map[1] = 0, 3
	e.Paths = map[EdgeKey]cube.Path{Key(0, 1): {3, 2, 0}}
	if err := e.Verify(); err != nil {
		t.Errorf("reversed path rejected: %v", err)
	}
}

func TestCongestionAccounting(t *testing.T) {
	// Two guest edges forced over the same host link.
	e := New(mesh.Shape{3}, 2)
	e.Map[0], e.Map[1], e.Map[2] = 0, 1, 0 // invalid 1-1 but fine for counting
	loads := e.LinkLoads()
	total := 0
	for _, c := range loads {
		total += c
	}
	if total != 2 {
		t.Errorf("total link traversals = %d, want 2", total)
	}
	if e.Congestion() != 2 {
		t.Errorf("congestion = %d, want 2", e.Congestion())
	}
}

func TestRealizeMinCongestion(t *testing.T) {
	// A 2x2 guest into a 2-cube with both diagonals used: greedy path
	// choice must split the two distance-2 edges over disjoint paths.
	s := mesh.Shape{4}
	e := New(s, 2)
	e.Map[0], e.Map[1], e.Map[2], e.Map[3] = 0, 3, 0, 3
	_ = e.VerifyManyToOne()
	e.RealizeMinCongestion()
	if e.Congestion() > 2 {
		t.Errorf("congestion = %d", e.Congestion())
	}
	// With 3 guest edges each of dilation ≤ 2 over 4 links, greedy should
	// achieve congestion ≤ 2.
}

func TestRealizeMinCongestionKeepsDilation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := mesh.Shape{3, 3}
		e := New(s, 4)
		perm := r.Perm(16)
		for i := range e.Map {
			e.Map[i] = cube.Node(perm[i])
		}
		before := e.Dilation()
		avgBefore := e.AvgDilation()
		e.RealizeMinCongestion()
		if err := e.Verify(); err != nil {
			return false
		}
		return e.Dilation() == before && e.AvgDilation() == avgBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAxisAvgDilation(t *testing.T) {
	e := Gray(mesh.Shape{4, 4})
	if d := e.AxisAvgDilation(0); d != 1 {
		t.Errorf("axis 0 avg dilation = %v", d)
	}
	if d := e.AxisAvgDilation(5); d != 0 {
		t.Errorf("missing axis should give 0, got %v", d)
	}
}

func TestMetricsString(t *testing.T) {
	m := Gray(mesh.Shape{3, 5}).Measure()
	if m.String() == "" {
		t.Error("empty metrics string")
	}
	if m.Guest != "3x5" {
		t.Errorf("guest = %q", m.Guest)
	}
}

func TestIdentity(t *testing.T) {
	e := Identity()
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.N != 0 || e.Guest.Nodes() != 1 || e.Dilation() != 0 {
		t.Errorf("identity: %s", e.Measure())
	}
}

func BenchmarkGrayEmbedding(b *testing.B) {
	s := mesh.Shape{32, 32, 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gray(s)
	}
}

func BenchmarkDilation(b *testing.B) {
	e := Gray(mesh.Shape{32, 32, 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Dilation()
	}
}

func BenchmarkCongestion(b *testing.B) {
	e := Gray(mesh.Shape{16, 16, 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Congestion()
	}
}
