package embed

import (
	"sync"
	"testing"

	"repro/internal/cube"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// referenceMeasure recomputes Metrics the way the pre-fusion implementation
// did: one independent traversal per metric, paths materialized per edge.
// It is the oracle the fused engine must match bit for bit.
func referenceMeasure(e *Embedding) Metrics {
	edges := 0
	dilSum := 0
	maxDil := 0
	loads := make([]int, cube.NumLinks(e.N))
	visit := func(ed mesh.Edge) {
		d := e.EdgeDilation(ed.U, ed.V)
		edges++
		dilSum += d
		if d > maxDil {
			maxDil = d
		}
		var p cube.Path
		if e.Paths != nil {
			if pin, ok := e.Paths[Key(ed.U, ed.V)]; ok {
				p = pin
			}
		}
		if p == nil {
			p = cube.Route(e.Map[ed.U], e.Map[ed.V])
		}
		for _, l := range p.Links() {
			loads[cube.LinkIndex(l, e.N)]++
		}
	}
	switch e.Family {
	case guest.Torus:
		e.Guest.EachTorusEdge(visit)
	case guest.Cylinder:
		e.Guest.EachCylinderEdge(visit)
	case guest.Tree:
		e.Guest.EachTreeEdge(visit)
	default:
		e.Guest.EachEdge(visit)
	}
	m := Metrics{
		Guest:      e.Guest.String(),
		Family:     e.Family.String(),
		Wrap:       e.Family == guest.Torus,
		CubeDim:    e.N,
		Expansion:  e.Expansion(),
		Minimal:    e.Minimal(),
		Dilation:   maxDil,
		Wirelength: int64(dilSum),
	}
	if edges > 0 {
		m.AvgDilation = float64(dilSum) / float64(edges)
	}
	sum := 0
	for _, c := range loads {
		if c > m.Congestion {
			m.Congestion = c
		}
		sum += c
	}
	if len(loads) > 0 {
		m.AvgCongestion = float64(sum) / float64(len(loads))
	}
	counts := make(map[cube.Node]int)
	for _, h := range e.Map {
		counts[h]++
		if counts[h] > m.LoadFactor {
			m.LoadFactor = counts[h]
		}
	}
	return m
}

// metricsTestEmbeddings builds a grid of embeddings covering the engine's
// branches: Gray meshes of several arities, wraparound guests, and
// pinned-path embeddings from RealizeMinCongestion.
func metricsTestEmbeddings() map[string]*Embedding {
	out := map[string]*Embedding{
		"gray-17":      Gray(mesh.Shape{17}),
		"gray-3x5":     Gray(mesh.Shape{3, 5}),
		"gray-5x6x7":   Gray(mesh.Shape{5, 6, 7}),
		"gray-2x3x4x5": Gray(mesh.Shape{2, 3, 4, 5}),
		"gray-16x16":   Gray(mesh.Shape{16, 16}),
		"identity":     Identity(),
		"pinned":       benchPinned(),
	}
	torus := Gray(mesh.Shape{6, 10})
	torus.Family = guest.Torus
	out["torus-6x10"] = torus
	ring := GrayRing(8)
	out["ring-8"] = ring
	scrambledTorus := Gray(mesh.Shape{5, 7})
	scrambledTorus.Family = guest.Torus
	scrambledTorus.RealizeMinCongestion()
	out["torus-5x7-pinned"] = scrambledTorus
	cyl := Gray(mesh.Shape{3, 4, 8})
	cyl.Family = guest.Cylinder
	out["cylinder-3x4x8"] = cyl
	out["tree-31"] = TreeInorder(mesh.Shape{31})
	return out
}

func TestFusedMatchesReference(t *testing.T) {
	for name, e := range metricsTestEmbeddings() {
		want := referenceMeasure(e)
		if got := e.Measure(); got != want {
			t.Errorf("%s: fused %v != reference %v", name, got, want)
		}
	}
}

func TestMeasureParallelEquivalence(t *testing.T) {
	for name, e := range metricsTestEmbeddings() {
		want := e.MeasureParallel(1)
		for _, w := range []int{2, 4, 8} {
			if got := e.MeasureParallel(w); got != want {
				t.Errorf("%s: workers=%d gives %v, serial gives %v", name, w, got, want)
			}
		}
	}
}

// TestMeasureParallelLargeMesh forces the parallel path (the 24x24x24 Gray
// mesh has ~40k edges, above parallelEdgeThreshold) and checks it against
// the serial reference.
func TestMeasureParallelLargeMesh(t *testing.T) {
	e := Gray(mesh.Shape{24, 24, 24})
	if e.NumGuestEdges() < parallelEdgeThreshold {
		t.Fatal("test mesh too small to exercise the parallel path")
	}
	want := e.MeasureParallel(1)
	for _, w := range []int{2, 4, 8} {
		if got := e.MeasureParallel(w); got != want {
			t.Errorf("workers=%d gives %v, serial gives %v", w, got, want)
		}
	}
	if got := e.Measure(); got != want {
		t.Errorf("auto workers give %v, serial gives %v", got, want)
	}
}

// TestPerMetricWrappersMatchMeasure pins the thin-wrapper contract: each
// legacy per-metric method must agree with the fused Measure.
func TestPerMetricWrappersMatchMeasure(t *testing.T) {
	for name, e := range metricsTestEmbeddings() {
		m := e.Measure()
		if d := e.Dilation(); d != m.Dilation {
			t.Errorf("%s: Dilation %d != %d", name, d, m.Dilation)
		}
		if d := e.AvgDilation(); d != m.AvgDilation {
			t.Errorf("%s: AvgDilation %v != %v", name, d, m.AvgDilation)
		}
		if c := e.Congestion(); c != m.Congestion {
			t.Errorf("%s: Congestion %d != %d", name, c, m.Congestion)
		}
		if c := e.AvgCongestion(); c != m.AvgCongestion {
			t.Errorf("%s: AvgCongestion %v != %v", name, c, m.AvgCongestion)
		}
		if l := e.LoadFactor(); l != m.LoadFactor {
			t.Errorf("%s: LoadFactor %d != %d", name, l, m.LoadFactor)
		}
	}
}

// TestLinkLoadsMatchesCongestion checks LinkLoads against Congestion and
// the total-load == dilation-sum identity the engine relies on.
func TestLinkLoadsMatchesCongestion(t *testing.T) {
	for name, e := range metricsTestEmbeddings() {
		loads := e.LinkLoads()
		max, sum := 0, 0
		for _, c := range loads {
			if c > max {
				max = c
			}
			sum += c
		}
		if max != e.Congestion() {
			t.Errorf("%s: max load %d != congestion %d", name, max, e.Congestion())
		}
		if nl := cube.NumLinks(e.N); nl > 0 {
			if avg := float64(sum) / float64(nl); avg != e.AvgCongestion() {
				t.Errorf("%s: avg load %v != avg congestion %v", name, avg, e.AvgCongestion())
			}
		}
	}
}

// TestAxisAvgDilationFused checks the per-axis tallies against the direct
// per-axis recomputation, including out-of-range axes.
func TestAxisAvgDilationFused(t *testing.T) {
	for name, e := range metricsTestEmbeddings() {
		for axis := 0; axis < e.Guest.Dims(); axis++ {
			sum, cnt := 0, 0
			e.eachGuestEdge(func(ed mesh.Edge) {
				if ed.Axis == axis {
					sum += e.EdgeDilation(ed.U, ed.V)
					cnt++
				}
			})
			want := 0.0
			if cnt > 0 {
				want = float64(sum) / float64(cnt)
			}
			if got := e.AxisAvgDilation(axis); got != want {
				t.Errorf("%s axis %d: %v != %v", name, axis, got, want)
			}
		}
		if got := e.AxisAvgDilation(e.Guest.Dims() + 3); got != 0 {
			t.Errorf("%s: out-of-range axis gave %v", name, got)
		}
		if got := e.AxisAvgDilation(-1); got != 0 {
			t.Errorf("%s: negative axis gave %v", name, got)
		}
	}
}

// TestConcurrentMeasureSharedEmbedding hammers one shared Embedding (with a
// pinned-path map, so concurrent map reads are exercised) from many
// goroutines; run under -race via the Makefile race target.
func TestConcurrentMeasureSharedEmbedding(t *testing.T) {
	e := benchPinned()
	want := e.Measure()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if got := e.MeasureParallel(w%4 + 1); got != want {
					t.Errorf("concurrent measure diverged: %v != %v", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDenseVerifyMatchesMap checks that the dense injectivity check accepts
// and rejects exactly like the map fallback.
func TestDenseVerifyMatchesMap(t *testing.T) {
	e := Gray(mesh.Shape{5, 6, 7})
	if e.HostNodes() > denseNodeLimit {
		t.Fatal("expected dense path")
	}
	if err := e.Verify(); err != nil {
		t.Errorf("valid embedding rejected: %v", err)
	}
	e.Map[17] = e.Map[3] // introduce a collision
	if err := e.Verify(); err == nil {
		t.Error("dense check missed a collision")
	}
}

func TestLoadFactorDenseAndInvalidImages(t *testing.T) {
	e := New(mesh.Shape{3, 3}, 2)
	for i := range e.Map {
		e.Map[i] = cube.Node(i % 3)
	}
	if got := e.LoadFactor(); got != 3 {
		t.Errorf("load = %d, want 3", got)
	}
	// An out-of-cube image must not panic the dense counter.
	e.Map[0] = cube.Node(1 << 30)
	if got := e.LoadFactor(); got != 3 {
		t.Errorf("load with stray image = %d, want 3", got)
	}
}
