package embed

import (
	"reflect"
	"testing"

	"repro/internal/cube"
	"repro/internal/host"
)

// TestMeasureOnHostAgreesWithFused pins the host seam's reference
// semantics: measuring through the generic Host interface with the
// BooleanCube implementation must agree bit for bit with the fused
// cube-specialized engine, on every guest family in the metrics test set
// (mesh, torus, cylinder, tree, pinned paths).
func TestMeasureOnHostAgreesWithFused(t *testing.T) {
	bc := host.BooleanCube{}
	for name, e := range metricsTestEmbeddings() {
		got, want := e.MeasureOnHost(bc), e.Measure()
		if got != want {
			t.Errorf("%s:\n host  %+v\n fused %+v", name, got, want)
		}
	}
}

// TestScanBlockGenericAgreesWithFused pins the inlined tally body in the
// scanBlock closure against tallyEdge (which the registry-dispatched
// generic fallback uses): the two are deliberate copies for speed and must
// produce identical tallies on every family, loads included.
func TestScanBlockGenericAgreesWithFused(t *testing.T) {
	for name, e := range metricsTestEmbeddings() {
		nodes := e.Guest.Nodes()
		fused := newEdgeStats(e.Guest.Dims(), true, cube.NumLinks(e.N))
		e.scanBlock(0, nodes, &fused)
		generic := newEdgeStats(e.Guest.Dims(), true, cube.NumLinks(e.N))
		e.scanBlockGeneric(0, nodes, &generic)
		if !reflect.DeepEqual(fused, generic) {
			t.Errorf("%s: fused and generic tallies diverged:\n fused   %+v\n generic %+v",
				name, fused, generic)
		}
	}
}

// TestBooleanCubeHostContract spot-checks the Host implementation details
// the generic engine relies on: u→u routes as {u}, neighbor count, and
// canonicalization mapping node 0 to address 0 without changing distances.
func TestBooleanCubeHostContract(t *testing.T) {
	bc := host.BooleanCube{}
	const n = 4
	if got := bc.Route(5, 5, n); len(got) != 1 || got[0] != 5 {
		t.Errorf("Route(u,u) = %v, want {u}", got)
	}
	for u := host.Node(0); u < host.Node(bc.Nodes(n)); u++ {
		deg := 0
		bc.Neighbors(u, n, func(v host.Node) {
			deg++
			if bc.Dist(u, v, n) != 1 {
				t.Fatalf("neighbor %v of %v at distance %d", v, u, bc.Dist(u, v, n))
			}
		})
		if deg != n {
			t.Fatalf("node %v has degree %d, want %d", u, deg, n)
		}
	}
	m := []host.Node{6, 3, 12, 9}
	canon := bc.Canonicalize(m, n)
	if canon[0] != 0 {
		t.Errorf("Canonicalize did not map node 0 to address 0: %v", canon)
	}
	for i := range m {
		for j := range m {
			if bc.Dist(m[i], m[j], n) != bc.Dist(canon[i], canon[j], n) {
				t.Errorf("Canonicalize changed distance between %d and %d", i, j)
			}
		}
	}
	if bc.MinSize(1) != 0 || bc.MinSize(2) != 1 || bc.MinSize(5) != 3 || bc.MinSize(8) != 3 {
		t.Error("MinSize is not the ceiling log2")
	}
}
