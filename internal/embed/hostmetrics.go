package embed

import (
	"repro/internal/guest"
	"repro/internal/host"
	"repro/internal/mesh"
)

// MeasureOnHost computes the embedding's Metrics through the Host interface
// — generic addressing, routing and link indexing — instead of the fused
// cube-specialized engine of metrics.go.  It is the reference semantics of
// the host seam: for the Boolean cube it must agree with Measure bit for
// bit on every registered guest family (the conformance suite asserts
// this), and it is what a future non-cube host would be measured by before
// earning a specialized pass.
func (e *Embedding) MeasureOnHost(h host.Host) Metrics {
	loads := make([]int, h.NumLinks(e.N))
	edges, dilSum, maxDil := 0, 0, 0
	visit := func(ed mesh.Edge) {
		var p []host.Node
		if e.Paths != nil {
			if pin, ok := e.Paths[Key(ed.U, ed.V)]; ok {
				p = pin
			}
		}
		var d int
		if p != nil {
			d = len(p) - 1 // pinned path length, as in EdgeDilation
		} else {
			d = h.Dist(e.Map[ed.U], e.Map[ed.V], e.N)
			p = h.Route(e.Map[ed.U], e.Map[ed.V], e.N)
		}
		edges++
		dilSum += d
		if d > maxDil {
			maxDil = d
		}
		for i := 0; i+1 < len(p); i++ {
			loads[h.LinkIndex(p[i], p[i+1], e.N)]++
		}
	}
	guest.Get(e.Family).EachEdgeRange(e.Guest, 0, e.Guest.Nodes(), visit)

	m := Metrics{
		Guest:      e.Guest.String(),
		Family:     e.Family.String(),
		Wrap:       e.Family == guest.Torus,
		CubeDim:    e.N,
		Expansion:  float64(h.Nodes(e.N)) / float64(e.Guest.Nodes()),
		Minimal:    h.MinSize(e.Guest.Nodes()) == e.N,
		Dilation:   maxDil,
		Wirelength: int64(dilSum),
	}
	if edges > 0 {
		m.AvgDilation = float64(dilSum) / float64(edges)
	}
	sum := 0
	for _, c := range loads {
		if c > m.Congestion {
			m.Congestion = c
		}
		sum += c
	}
	if len(loads) > 0 {
		m.AvgCongestion = float64(sum) / float64(len(loads))
	}
	counts := make(map[host.Node]int)
	for _, img := range e.Map {
		counts[img]++
		if counts[img] > m.LoadFactor {
			m.LoadFactor = counts[img]
		}
	}
	return m
}
