package wrap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/mesh"
)

func TestHalvingRingDilation(t *testing.T) {
	// One-dimensional tori: base is a ⌈l/2⌉ path embedded by Gray
	// (dilation 1); Lemma 3 promises dilation ≤ 2 (= d+1), ≤ 1 when even.
	for l := 2; l <= 40; l++ {
		shape := mesh.Shape{l}
		base := embed.Gray(mesh.Shape{(l + 1) / 2})
		e := Halving(base, shape)
		if err := e.Verify(); err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		d := e.Dilation()
		limit := 2
		if l%2 == 0 {
			limit = 1
		}
		if d > limit {
			t.Errorf("l=%d: dilation %d > %d", l, d, limit)
		}
	}
}

func TestQuarteringRingDilation(t *testing.T) {
	for l := 2; l <= 83; l++ {
		shape := mesh.Shape{l}
		base := embed.Gray(mesh.Shape{(l + 3) / 4})
		e := Quartering(base, shape)
		if err := e.Verify(); err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if d := e.Dilation(); d > 2 {
			t.Errorf("l=%d: dilation %d > 2", l, d)
		}
	}
}

func TestHalving2D(t *testing.T) {
	// 6x10 torus: halved base 3x5 (direct table, dilation 2), all even →
	// dilation ≤ 2 and minimal: ⌈60⌉₂ = 64 = 4·⌈15⌉₂ ✓.
	shape := mesh.Shape{6, 10}
	if !HalvingMinimal(shape) {
		t.Fatal("6x10 should satisfy the halving condition")
	}
	base := core.PlanShape(mesh.Shape{3, 5}, core.DefaultOptions).Build()
	e := Halving(base, shape)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() {
		t.Errorf("not minimal: %s", e.Measure())
	}
	if d := e.Dilation(); d > 2 {
		t.Errorf("dilation %d > 2", d)
	}
}

func TestHalvingOddAxes(t *testing.T) {
	// 5x7 torus: base 3x4 Gray (dilation 1) → dilation ≤ 2.
	// Minimal: ⌈35⌉₂ = 64 = 4·⌈12⌉₂ = 4·16 ✓.
	shape := mesh.Shape{5, 7}
	if !HalvingMinimal(shape) {
		t.Fatal("5x7 should satisfy the halving condition")
	}
	base := embed.Gray(mesh.Shape{3, 4})
	e := Halving(base, shape)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() {
		t.Errorf("not minimal: %s", e.Measure())
	}
	if d := e.Dilation(); d > 2 { // d+1 with d = 1
		t.Errorf("dilation %d > 2", d)
	}
}

func TestQuartering2D(t *testing.T) {
	// 12x11 torus: quartered base 3x3 (Gray, dilation 1) → dilation ≤ 2.
	// Minimal: ⌈132⌉₂ = 256 = 16·⌈9⌉₂ = 16·16 ✓.
	shape := mesh.Shape{12, 11}
	if !QuarteringMinimal(shape) {
		t.Fatal("12x11 should satisfy the quartering condition")
	}
	base := embed.Gray(mesh.Shape{3, 3})
	e := Quartering(base, shape)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() {
		t.Errorf("not minimal: %s", e.Measure())
	}
	if d := e.Dilation(); d > 2 {
		t.Errorf("dilation %d > 2", d)
	}
}

func TestEmbedPowersOfTwo(t *testing.T) {
	e := Embed(mesh.Shape{8, 16}, core.Options{})
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.Dilation() != 1 || !e.Minimal() {
		t.Errorf("power-of-two torus: %s", e.Measure())
	}
}

func TestEmbedAlwaysValidAndMinimal(t *testing.T) {
	for _, s := range []mesh.Shape{{5}, {6, 10}, {5, 7}, {12, 11}, {3, 5, 7}, {9, 9}, {17, 3}} {
		e := Embed(s, core.Options{})
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !e.Wraps() {
			t.Errorf("%v: not marked wraparound", s)
		}
		if !e.Minimal() {
			t.Errorf("%v: not minimal: %s", s, e.Measure())
		}
	}
}

func TestCorollary3Examples(t *testing.T) {
	// Two-dimensional tori: dilation ≤ 2 when QuarteringMinimal or both
	// even (with dilation-2 bases); ≤ 3 when HalvingMinimal.
	for _, s := range []mesh.Shape{{12, 11}, {6, 10}, {10, 6}, {12, 20}} {
		e := Embed(s, core.DefaultOptions)
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if d := e.Dilation(); d > 2 {
			t.Errorf("%v: dilation %d, Corollary 3 promises ≤ 2", s, d)
		}
	}
	// HalvingMinimal-only example with an odd axis: 5x7.
	e := Embed(mesh.Shape{5, 7}, core.DefaultOptions)
	if d := e.Dilation(); d > 3 {
		t.Errorf("5x7: dilation %d, Corollary 3 promises ≤ 3", d)
	}
}

func TestHalvingPanicsOnBadBase(t *testing.T) {
	base := embed.Gray(mesh.Shape{3, 5})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Halving(base, mesh.Shape{6, 11}) // ⌈11/2⌉ = 6 ≠ 5
}

func TestMinimalityPredicates(t *testing.T) {
	if !HalvingMinimal(mesh.Shape{6, 10}) {
		t.Error("6x10 halving should be minimal")
	}
	if !AllEven(mesh.Shape{6, 10}) || AllEven(mesh.Shape{6, 11}) {
		t.Error("AllEven wrong")
	}
	// 2^k condition can fail: 3x3 torus — ⌈9⌉₂ = 16 vs 4·⌈4⌉₂ = 16 ✓.
	if !HalvingMinimal(mesh.Shape{3, 3}) {
		t.Error("3x3 halving should be minimal")
	}
	// 7x9: ⌈63⌉₂ = 64 vs 4·⌈4·5⌉₂ = 4·32 = 128 ✗.
	if HalvingMinimal(mesh.Shape{7, 9}) {
		t.Error("7x9 halving should not be minimal")
	}
}

func BenchmarkQuartering(b *testing.B) {
	shape := mesh.Shape{12, 11}
	base := embed.Gray(mesh.Shape{3, 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Quartering(base, shape)
	}
}

func BenchmarkTorusEmbed(b *testing.B) {
	shapes := []mesh.Shape{{6, 10}, {12, 11}, {5, 7}}
	for i := 0; i < b.N; i++ {
		_ = Embed(shapes[i%len(shapes)], core.Options{})
	}
}

func TestHalving3DTorus(t *testing.T) {
	// 6x6x6 torus: halved base 3x3x3 (direct table, dilation 2), all axes
	// even → dilation ≤ 2; minimal: ⌈216⌉₂ = 256 = 8·⌈27⌉₂ = 8·32 ✓.
	shape := mesh.Shape{6, 6, 6}
	if !HalvingMinimal(shape) {
		t.Fatal("6x6x6 should satisfy the halving condition")
	}
	base := core.PlanShape(mesh.Shape{3, 3, 3}, core.DefaultOptions).Build()
	e := Halving(base, shape)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("6x6x6 torus: %s", e.Measure())
	}
}

func TestQuartering3DTorus(t *testing.T) {
	// 12x12x11 torus over the 3x3x3 base: ⌈1584⌉₂ = 2048 = 64·⌈27⌉₂ ✓.
	shape := mesh.Shape{12, 12, 11}
	if !QuarteringMinimal(shape) {
		t.Fatal("12x12x11 should satisfy the quartering condition")
	}
	base := core.PlanShape(mesh.Shape{3, 3, 3}, core.DefaultOptions).Build()
	e := Quartering(base, shape)
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if !e.Minimal() || e.Dilation() > 2 {
		t.Errorf("12x12x11 torus: %s", e.Measure())
	}
}

func TestEmbedRandomTori(t *testing.T) {
	// Fuzz-ish sweep: every torus builds a valid minimal embedding.
	for a := 2; a <= 12; a++ {
		for b := a; b <= 12; b++ {
			e := Embed(mesh.Shape{a, b}, core.Options{})
			if err := e.Verify(); err != nil {
				t.Fatalf("%dx%d: %v", a, b, err)
			}
			if !e.Minimal() {
				t.Errorf("%dx%d: not minimal", a, b)
			}
		}
	}
}
