// Package wrap embeds wraparound meshes (tori) in Boolean cubes by the
// graph-decomposition constructions of Section 6: the halving construction
// of Lemma 3 (each axis ring is laid out in a 2×⌈ℓ/2⌉ strip whose two rows
// are one cube dimension apart) and the quartering construction of Lemma 4
// (a 4×⌈ℓ/4⌉ strip whose four rows form a Gray ring on two cube
// dimensions).  Removing the surplus strip nodes for axes not divisible by
// 2 (resp. 4) creates "logical edges" of dilation ≤ d+1 (resp. ≤ max(d,2)),
// exactly as in the paper's Figures 3 and 5.
//
// The strip layouts themselves live in internal/ring and the construction
// choice in the guest-family planner (core.PlanGuest with guest.Torus);
// this package keeps the historical constructor API on top of both.
package wrap

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/ring"
)

// Halving embeds the ℓ1×…×ℓk wraparound mesh by Lemma 3, given a base
// embedding of the ⌈ℓ1/2⌉×…×⌈ℓk/2⌉ mesh (without wraparound) with dilation
// d.  The result has dilation ≤ d+1, and ≤ max(d, 1) when every ℓi is even;
// it is minimal-expansion iff ⌈Πℓi⌉₂ == 2^k·⌈Π⌈ℓi/2⌉⌉₂ and the base is
// minimal.
func Halving(base *embed.Embedding, shape mesh.Shape) *embed.Embedding {
	checkBase(base, shape, 2)
	lays := make([]ring.Layout, shape.Dims())
	for i, l := range shape {
		lays[i] = ring.Half(l)
	}
	e := ring.Assemble(base, shape, lays)
	e.Family = guest.Torus
	return e
}

// Quartering embeds the ℓ1×…×ℓk wraparound mesh by Lemma 4, given a base
// embedding of the ⌈ℓ1/4⌉×…×⌈ℓk/4⌉ mesh with dilation d.  The result has
// dilation ≤ max(d, 2); it is minimal-expansion iff
// ⌈Πℓi⌉₂ == 4^k·⌈Π⌈ℓi/4⌉⌉₂ and the base is minimal.
func Quartering(base *embed.Embedding, shape mesh.Shape) *embed.Embedding {
	checkBase(base, shape, 4)
	lays := make([]ring.Layout, shape.Dims())
	for i, l := range shape {
		lays[i] = ring.Quarter(l)
	}
	e := ring.Assemble(base, shape, lays)
	e.Family = guest.Torus
	return e
}

func checkBase(base *embed.Embedding, shape mesh.Shape, div int) {
	if base.Family != guest.Mesh {
		panic("wrap: base embedding must be of a mesh without wraparound")
	}
	if base.Guest.Dims() != shape.Dims() {
		panic(fmt.Sprintf("wrap: base %v has wrong arity for torus %v", base.Guest, shape))
	}
	for i, l := range shape {
		if want := (l + div - 1) / div; base.Guest[i] != want {
			panic(fmt.Sprintf("wrap: base axis %d is %d, want ⌈%d/%d⌉ = %d",
				i, base.Guest[i], l, div, want))
		}
	}
}

// HalvingMinimal reports whether the halving construction reaches the
// minimal cube: ⌈Πℓi⌉₂ == 2^k·⌈Π⌈ℓi/2⌉⌉₂ (Lemma 3's side condition; always
// true when every ℓi is even).
func HalvingMinimal(shape mesh.Shape) bool {
	prod, half := uint64(1), uint64(1)
	for _, l := range shape {
		prod *= uint64(l)
		half *= uint64((l + 1) / 2)
	}
	k := uint(shape.Dims())
	return bits.CeilPow2(prod) == (1<<k)*bits.CeilPow2(half)
}

// QuarteringMinimal reports whether the quartering construction reaches the
// minimal cube: ⌈Πℓi⌉₂ == 4^k·⌈Π⌈ℓi/4⌉⌉₂ (Lemma 4's side condition).
func QuarteringMinimal(shape mesh.Shape) bool {
	prod, quarter := uint64(1), uint64(1)
	for _, l := range shape {
		prod *= uint64(l)
		quarter *= uint64((l + 3) / 4)
	}
	k := uint(shape.Dims())
	return bits.CeilPow2(prod) == (1<<(2*k))*bits.CeilPow2(quarter)
}

// AllEven reports whether every axis length is even.
func AllEven(shape mesh.Shape) bool {
	for _, l := range shape {
		if l%2 != 0 {
			return false
		}
	}
	return true
}

// Embed builds a minimal-expansion embedding of the wraparound mesh,
// choosing the construction with the lowest dilation bound:
//
//   - all axes powers of two: the cyclic Gray code (dilation 1);
//   - quartering over a planned base mesh (dilation ≤ max(d, 2));
//   - halving over a planned base mesh (dilation ≤ d+1, ≤ d when all even);
//   - otherwise the snake fallback (valid and minimal, dilation measured).
//
// Corollary 3 for two-dimensional tori follows: dilation ≤ 2 whenever
// QuarteringMinimal holds or both axes are even, and ≤ 3 whenever
// HalvingMinimal holds, given dilation-2 base embeddings.
//
// Embed is the historical entry point; it delegates to the guest-family
// planner (core.PlanGuest with guest.Torus), which makes the same choice.
func Embed(shape mesh.Shape, opts core.Options) *embed.Embedding {
	p, err := core.PlanGuest(guest.Torus, shape, opts)
	if err != nil {
		panic(err)
	}
	return p.Build()
}
