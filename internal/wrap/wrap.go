// Package wrap embeds wraparound meshes (tori) in Boolean cubes by the
// graph-decomposition constructions of Section 6: the halving construction
// of Lemma 3 (each axis ring is laid out in a 2×⌈ℓ/2⌉ strip whose two rows
// are one cube dimension apart) and the quartering construction of Lemma 4
// (a 4×⌈ℓ/4⌉ strip whose four rows form a Gray ring on two cube
// dimensions).  Removing the surplus strip nodes for axes not divisible by
// 2 (resp. 4) creates "logical edges" of dilation ≤ d+1 (resp. ≤ max(d,2)),
// exactly as in the paper's Figures 3 and 5.
package wrap

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// gray4 is the cyclic Gray code on 2 bits: consecutive rows (mod 4) are one
// cube dimension apart, and rows two apart differ in both bits.
var gray4 = [4]uint64{0b00, 0b01, 0b11, 0b10}

// axisLayout places the ring 0..l-1 into a rows×⌈l/rows⌉ strip: position w
// of the ring maps to row code Codes[w] (already Gray-encoded) and strip
// column Cols[w].
type axisLayout struct {
	Codes []uint64
	Cols  []int
}

// ringHalf lays the ring of length l into a 2×⌈l/2⌉ strip (Lemma 3): down
// one row and back along the other.  For odd l the strip slot (1,0) stays
// unused; the wrap edge (l−1, 0) becomes the "logical edge" through it with
// dilation ≤ d+1.
func ringHalf(l int) axisLayout {
	m := (l + 1) / 2
	lay := axisLayout{Codes: make([]uint64, l), Cols: make([]int, l)}
	for w := 0; w < l; w++ {
		if w < m {
			lay.Codes[w], lay.Cols[w] = 0, w
		} else {
			lay.Codes[w], lay.Cols[w] = 1, 2*m-1-w
		}
	}
	return lay
}

// ringQuarter lays the ring of length l into a 4×⌈l/4⌉ strip (Lemma 4).
// The four rows carry the cyclic Gray code gray4, so row steps of one cost
// one cube dimension and row jumps of two cost two; every ring edge then
// has dilation ≤ max(d, 2) where d is the dilation of the column embedding.
func ringQuarter(l int) axisLayout {
	m := (l + 3) / 4
	lay := axisLayout{Codes: make([]uint64, 0, l), Cols: make([]int, 0, l)}
	add := func(row, col int) {
		lay.Codes = append(lay.Codes, gray4[row])
		lay.Cols = append(lay.Cols, col)
	}
	if m == 1 {
		// Rings of length ≤ 4 live on the Gray 4-ring itself; for l = 3
		// the wrap edge jumps two rows (distance 2).
		for w := 0; w < l; w++ {
			add(w, 0)
		}
		return lay
	}
	r := 4*m - l // surplus strip slots: 0..3
	if r == 3 && m == 2 {
		// l = 5: (0,0) (0,1) (1,1) (2,1) (2,0), closing with a row jump.
		add(0, 0)
		add(0, 1)
		add(1, 1)
		add(2, 1)
		add(2, 0)
		return lay
	}
	// General pattern: row 0 rightward, row 1 leftward down to column c1,
	// row 2 rightward from column c1, row 3 leftward, and for odd surplus
	// an extra stop at (2,0) before the closing row jump (2,0)→(0,0).
	switch r {
	case 0:
		// Full boustrophedon; closure (3,0)→(0,0) is one row step.
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(1, c)
		}
		for c := 0; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
	case 2:
		// Skip (1,0) and (2,0); closure (3,0)→(0,0).
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 1; c-- {
			add(1, c)
		}
		for c := 1; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
	case 1:
		// Skip (1,0); detour through (2,0) and close with a row jump of
		// two, (2,0)→(0,0).
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 1; c-- {
			add(1, c)
		}
		for c := 1; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
		add(2, 0)
	case 3:
		// Skip (1,0), (1,1) and (2,1); needs m ≥ 3 (m = 2 handled above).
		for c := 0; c < m; c++ {
			add(0, c)
		}
		for c := m - 1; c >= 2; c-- {
			add(1, c)
		}
		for c := 2; c < m; c++ {
			add(2, c)
		}
		for c := m - 1; c >= 0; c-- {
			add(3, c)
		}
		add(2, 0)
	}
	return lay
}

// assemble builds the torus embedding from per-axis layouts and a base
// embedding of the strip-column mesh: host address = axis row codes
// (bitsPerAxis bits each, axis 0 lowest) concatenated above base.Map[cols].
func assemble(base *embed.Embedding, shape mesh.Shape, lays []axisLayout, bitsPerAxis int) *embed.Embedding {
	k := shape.Dims()
	e := embed.New(shape, base.N+k*bitsPerAxis)
	e.Wrap = true
	coord := make([]int, k)
	colCoord := make([]int, k)
	for idx := range e.Map {
		shape.CoordInto(idx, coord)
		var rowBits uint64
		for i := 0; i < k; i++ {
			w := coord[i]
			rowBits |= lays[i].Codes[w] << uint(i*bitsPerAxis)
			colCoord[i] = lays[i].Cols[w]
		}
		inner := base.Map[base.Guest.Index(colCoord)]
		e.Map[idx] = cube.Node(rowBits<<uint(base.N) | uint64(inner))
	}
	return e
}

// Halving embeds the ℓ1×…×ℓk wraparound mesh by Lemma 3, given a base
// embedding of the ⌈ℓ1/2⌉×…×⌈ℓk/2⌉ mesh (without wraparound) with dilation
// d.  The result has dilation ≤ d+1, and ≤ max(d, 1) when every ℓi is even;
// it is minimal-expansion iff ⌈Πℓi⌉₂ == 2^k·⌈Π⌈ℓi/2⌉⌉₂ and the base is
// minimal.
func Halving(base *embed.Embedding, shape mesh.Shape) *embed.Embedding {
	checkBase(base, shape, 2)
	lays := make([]axisLayout, shape.Dims())
	for i, l := range shape {
		lays[i] = ringHalf(l)
	}
	return assemble(base, shape, lays, 1)
}

// Quartering embeds the ℓ1×…×ℓk wraparound mesh by Lemma 4, given a base
// embedding of the ⌈ℓ1/4⌉×…×⌈ℓk/4⌉ mesh with dilation d.  The result has
// dilation ≤ max(d, 2); it is minimal-expansion iff
// ⌈Πℓi⌉₂ == 4^k·⌈Π⌈ℓi/4⌉⌉₂ and the base is minimal.
func Quartering(base *embed.Embedding, shape mesh.Shape) *embed.Embedding {
	checkBase(base, shape, 4)
	lays := make([]axisLayout, shape.Dims())
	for i, l := range shape {
		lays[i] = ringQuarter(l)
	}
	return assemble(base, shape, lays, 2)
}

func checkBase(base *embed.Embedding, shape mesh.Shape, div int) {
	if base.Wrap {
		panic("wrap: base embedding must be of a mesh without wraparound")
	}
	if base.Guest.Dims() != shape.Dims() {
		panic(fmt.Sprintf("wrap: base %v has wrong arity for torus %v", base.Guest, shape))
	}
	for i, l := range shape {
		if want := (l + div - 1) / div; base.Guest[i] != want {
			panic(fmt.Sprintf("wrap: base axis %d is %d, want ⌈%d/%d⌉ = %d",
				i, base.Guest[i], l, div, want))
		}
	}
}

// HalvingMinimal reports whether the halving construction reaches the
// minimal cube: ⌈Πℓi⌉₂ == 2^k·⌈Π⌈ℓi/2⌉⌉₂ (Lemma 3's side condition; always
// true when every ℓi is even).
func HalvingMinimal(shape mesh.Shape) bool {
	prod, half := uint64(1), uint64(1)
	for _, l := range shape {
		prod *= uint64(l)
		half *= uint64((l + 1) / 2)
	}
	k := uint(shape.Dims())
	return bits.CeilPow2(prod) == (1<<k)*bits.CeilPow2(half)
}

// QuarteringMinimal reports whether the quartering construction reaches the
// minimal cube: ⌈Πℓi⌉₂ == 4^k·⌈Π⌈ℓi/4⌉⌉₂ (Lemma 4's side condition).
func QuarteringMinimal(shape mesh.Shape) bool {
	prod, quarter := uint64(1), uint64(1)
	for _, l := range shape {
		prod *= uint64(l)
		quarter *= uint64((l + 3) / 4)
	}
	k := uint(shape.Dims())
	return bits.CeilPow2(prod) == (1<<(2*k))*bits.CeilPow2(quarter)
}

// AllEven reports whether every axis length is even.
func AllEven(shape mesh.Shape) bool {
	for _, l := range shape {
		if l%2 != 0 {
			return false
		}
	}
	return true
}

// Embed builds a minimal-expansion embedding of the wraparound mesh,
// choosing the construction with the lowest dilation bound:
//
//   - all axes powers of two: the cyclic Gray code (dilation 1);
//   - quartering over a planned base mesh (dilation ≤ max(d, 2));
//   - halving over a planned base mesh (dilation ≤ d+1, ≤ d when all even);
//   - otherwise the snake fallback (valid and minimal, dilation measured).
//
// Corollary 3 for two-dimensional tori follows: dilation ≤ 2 whenever
// QuarteringMinimal holds or both axes are even, and ≤ 3 whenever
// HalvingMinimal holds, given dilation-2 base embeddings.
func Embed(shape mesh.Shape, opts core.Options) *embed.Embedding {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	allPow2 := true
	for _, l := range shape {
		if !bits.IsPow2(uint64(l)) {
			allPow2 = false
			break
		}
	}
	if allPow2 {
		e := embed.Gray(shape)
		e.Wrap = true
		return e
	}
	type cand struct {
		e     *embed.Embedding
		bound int
	}
	var cands []cand
	if QuarteringMinimal(shape) {
		baseShape := divShape(shape, 4)
		basePlan := core.PlanShape(baseShape, opts)
		if basePlan.Minimal() {
			base := basePlan.Build()
			d := base.Dilation()
			cands = append(cands, cand{Quartering(base, shape), max(d, 2)})
		}
	}
	if HalvingMinimal(shape) {
		baseShape := divShape(shape, 2)
		basePlan := core.PlanShape(baseShape, opts)
		if basePlan.Minimal() {
			base := basePlan.Build()
			d := base.Dilation()
			bound := d + 1
			if AllEven(shape) {
				bound = max(d, 1)
			}
			cands = append(cands, cand{Halving(base, shape), bound})
		}
	}
	var best *embed.Embedding
	bestBound := int(^uint(0) >> 1)
	for _, c := range cands {
		if c.e.Minimal() && c.bound < bestBound {
			best, bestBound = c.e, c.bound
		}
	}
	if best != nil {
		return best
	}
	e := core.Snake(shape)
	e.Wrap = true
	return e
}

func divShape(s mesh.Shape, div int) mesh.Shape {
	out := make(mesh.Shape, len(s))
	for i, l := range s {
		out[i] = (l + div - 1) / div
	}
	return out
}
