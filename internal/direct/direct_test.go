package direct

import (
	"testing"

	"repro/internal/mesh"
)

func TestTablesProperties(t *testing.T) {
	for _, tab := range Tables {
		e, ok := Embedding(tab.Shape)
		if !ok {
			t.Fatalf("%v: Embedding not found", tab.Shape)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%v: %v", tab.Shape, err)
		}
		m := e.Measure()
		if !m.Minimal {
			t.Errorf("%v: not minimal expansion: %s", tab.Shape, m)
		}
		if m.Dilation != tab.Dilation {
			t.Errorf("%v: dilation %d, recorded %d", tab.Shape, m.Dilation, tab.Dilation)
		}
		if m.Congestion != tab.Congestion {
			t.Errorf("%v: congestion %d, recorded %d", tab.Shape, m.Congestion, tab.Congestion)
		}
		if m.LoadFactor != 1 {
			t.Errorf("%v: load %d", tab.Shape, m.LoadFactor)
		}
	}
}

func TestTwoDimensionalTablesCongestionTwo(t *testing.T) {
	// Section 3.3 / [13]: the 2D direct embeddings have congestion two.
	for _, s := range []mesh.Shape{{3, 5}, {7, 9}, {11, 11}} {
		e, ok := Embedding(s)
		if !ok {
			t.Fatalf("%v missing", s)
		}
		if c := e.Congestion(); c != 2 {
			t.Errorf("%v: congestion %d, want 2", s, c)
		}
	}
}

func TestLookupPermutation(t *testing.T) {
	// 5x3 must resolve to the 3x5 table via permutation.
	e, ok := Embedding(mesh.Shape{5, 3})
	if !ok {
		t.Fatal("5x3 not found")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.Dilation() > 2 {
		t.Errorf("permuted table dilation %d", e.Dilation())
	}
	// 7x3x3 resolves to 3x3x7.
	e, ok = Embedding(mesh.Shape{7, 3, 3})
	if !ok {
		t.Fatal("7x3x3 not found")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.Dilation() > 2 {
		t.Errorf("permuted 3D table dilation %d", e.Dilation())
	}
}

func TestLookupWithTrailingOnes(t *testing.T) {
	// 3x5x1 should match the 3x5 table with a padded axis.
	e, ok := Embedding(mesh.Shape{3, 5, 1})
	if !ok {
		t.Fatal("3x5x1 not found")
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if e.Dilation() > 2 || !e.Minimal() {
		t.Errorf("bad: %s", e.Measure())
	}
	// 3x1x5 likewise (permutation with the 1 in the middle).
	e, ok = Embedding(mesh.Shape{3, 1, 5})
	if !ok {
		t.Fatal("3x1x5 not found")
	}
	if e.Dilation() > 2 {
		t.Errorf("dilation %d", e.Dilation())
	}
}

func TestLookupMiss(t *testing.T) {
	for _, s := range []mesh.Shape{{4, 5}, {5, 5}, {3, 6}, {2, 3, 7}} {
		if _, _, ok := Lookup(s); ok {
			t.Errorf("%v unexpectedly matched a table", s)
		}
	}
}

func TestAvgDilationQuality(t *testing.T) {
	// The direct tables were polished for low average dilation; guard
	// against regressions that would degrade the product embeddings.
	limits := map[string]float64{
		"3x5":   1.25,
		"7x9":   1.70,
		"11x11": 1.70,
		"3x3x3": 1.40,
		"3x3x7": 1.70,
	}
	for _, tab := range Tables {
		e, _ := Embedding(tab.Shape)
		if avg := e.AvgDilation(); avg > limits[tab.Shape.String()] {
			t.Errorf("%v: avg dilation %.4f exceeds %v", tab.Shape, avg, limits[tab.Shape.String()])
		}
	}
}

func BenchmarkDirectEmbedding(b *testing.B) {
	s := mesh.Shape{7, 9}
	for i := 0; i < b.N; i++ {
		if _, ok := Embedding(s); !ok {
			b.Fatal("missing")
		}
	}
}
