// Package direct provides the direct low-dilation minimal-expansion
// embeddings of Section 3.3: the two-dimensional meshes 3x5, 7x9 and 11x11
// and the three-dimensional meshes 3x3x3 and 3x3x7.  These are the seed
// embeddings that, combined with Gray codes and the graph-decomposition
// technique (Corollary 2), cover the mesh families of Section 5.
//
// The original tables of Ho and Johnsson [13], [14] are not reproduced in
// the paper; the maps here were re-discovered with internal/solver
// (cmd/findembed, deterministic seeds) and satisfy the same properties the
// paper asserts: minimal expansion, dilation two, and — for the
// two-dimensional tables — congestion two under the pinned path
// realization.  The 3x3x7 table achieves congestion three; the paper makes
// no congestion claim for the three-dimensional direct embeddings.
package direct

import (
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/mesh"
)

// Table is a frozen direct embedding.
type Table struct {
	Shape mesh.Shape
	Map   []cube.Node

	// Dilation and Congestion record the verified properties of the
	// table (congestion under RealizeMinCongestion).
	Dilation   int
	Congestion int
}

// Tables lists all direct embeddings, smallest first.
var Tables = []Table{
	{Shape: mesh.Shape{3, 5}, Dilation: 2, Congestion: 2, Map: map3x5},
	{Shape: mesh.Shape{3, 3, 3}, Dilation: 2, Congestion: 2, Map: map3x3x3},
	{Shape: mesh.Shape{7, 9}, Dilation: 2, Congestion: 2, Map: map7x9},
	{Shape: mesh.Shape{3, 3, 7}, Dilation: 2, Congestion: 3, Map: map3x3x7},
	{Shape: mesh.Shape{11, 11}, Dilation: 2, Congestion: 2, Map: map11x11},
}

// Lookup returns the table for the given shape, trying all axis
// permutations, together with the permutation mapping table axes to shape
// axes (shape[i] == table.Shape[perm[i]]).  ok is false when no table
// matches.
func Lookup(s mesh.Shape) (t Table, perm []int, ok bool) {
	for _, tab := range Tables {
		if p, match := matchPermutation(s, tab.Shape); match {
			return tab, p, true
		}
	}
	return Table{}, nil, false
}

// matchPermutation finds a permutation p with s[i] == ref[p[i]] for all i,
// using each axis of ref exactly once.  Shapes of different arity are
// aligned by treating missing axes as length 1.
func matchPermutation(s, ref mesh.Shape) ([]int, bool) {
	k := len(s)
	if len(ref) > k {
		// ref has more axes; they must all be 1 to match, which never
		// happens for the tables here.
		return nil, false
	}
	refPad := make(mesh.Shape, k)
	copy(refPad, ref)
	for i := len(ref); i < k; i++ {
		refPad[i] = 1
	}
	used := make([]bool, k)
	perm := make([]int, k)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			return true
		}
		for j := 0; j < k; j++ {
			if !used[j] && refPad[j] == s[i] {
				used[j] = true
				perm[i] = j
				if rec(i + 1) {
					return true
				}
				used[j] = false
			}
		}
		return false
	}
	if rec(0) {
		return perm, true
	}
	return nil, false
}

// Embedding instantiates the direct embedding for the given shape (which
// must match a table up to axis permutation) with congestion-minimizing
// pinned paths.
func Embedding(s mesh.Shape) (*embed.Embedding, bool) {
	tab, perm, ok := Lookup(s)
	if !ok {
		return nil, false
	}
	n := tab.Shape.MinCubeDim()
	e := embed.New(s, n)
	refPad := padTo(tab.Shape, len(s))
	coord := make([]int, len(s))
	refCoord := make([]int, len(refPad))
	for idx := range e.Map {
		s.CoordInto(idx, coord)
		for i, j := range perm {
			refCoord[j] = coord[i]
		}
		e.Map[idx] = tab.Map[refPad.Index(refCoord)]
	}
	e.RealizeMinCongestion()
	return e, true
}

func padTo(s mesh.Shape, k int) mesh.Shape {
	if len(s) >= k {
		return s
	}
	out := make(mesh.Shape, k)
	copy(out, s)
	for i := len(s); i < k; i++ {
		out[i] = 1
	}
	return out
}
