package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseShape(t *testing.T) {
	s, err := ParseShape("5x6x7")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(Shape{5, 6, 7}) {
		t.Errorf("got %v", s)
	}
	if s.String() != "5x6x7" {
		t.Errorf("String = %q", s.String())
	}
	if _, err := ParseShape("5x0x7"); err == nil {
		t.Error("expected error for zero axis")
	}
	if _, err := ParseShape("5xax7"); err == nil {
		t.Error("expected error for non-numeric axis")
	}
	if s2, err := ParseShape(" 512 "); err != nil || !s2.Equal(Shape{512}) {
		t.Errorf("single axis parse: %v, %v", s2, err)
	}
}

func TestNodesEdges(t *testing.T) {
	cases := []struct {
		s     Shape
		nodes int
		edges int
	}{
		{Shape{1}, 1, 0},
		{Shape{5}, 5, 4},
		{Shape{3, 5}, 15, 2*5 + 4*3},
		{Shape{2, 2, 2}, 8, 12},
		{Shape{3, 3, 3}, 27, 3 * (2 * 9)},
		{Shape{5, 6, 7}, 210, 4*42 + 5*35 + 6*30},
	}
	for _, c := range cases {
		if got := c.s.Nodes(); got != c.nodes {
			t.Errorf("%v.Nodes() = %d, want %d", c.s, got, c.nodes)
		}
		if got := c.s.Edges(); got != c.edges {
			t.Errorf("%v.Edges() = %d, want %d", c.s, got, c.edges)
		}
	}
}

func TestEdgesMatchIteration(t *testing.T) {
	shapes := []Shape{{1}, {7}, {3, 5}, {4, 4}, {2, 3, 4}, {3, 3, 3}, {1, 5, 1}}
	for _, s := range shapes {
		count := 0
		s.EachEdge(func(e Edge) {
			count++
			if e.U >= e.V {
				t.Errorf("%v: edge not ordered: %+v", s, e)
			}
			// endpoints must differ by 1 along exactly the named axis
			cu, cv := s.Coord(e.U), s.Coord(e.V)
			diffAxes := 0
			for i := range cu {
				if cu[i] != cv[i] {
					diffAxes++
					if i != e.Axis || cv[i]-cu[i] != 1 {
						t.Errorf("%v: bad edge %+v (%v -> %v)", s, e, cu, cv)
					}
				}
			}
			if diffAxes != 1 {
				t.Errorf("%v: edge %+v spans %d axes", s, e, diffAxes)
			}
		})
		if count != s.Edges() {
			t.Errorf("%v: iterated %d edges, Edges() = %d", s, count, s.Edges())
		}
	}
}

func TestTorusEdges(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{1}, 0},
		{Shape{2}, 1},
		{Shape{3}, 3},
		{Shape{5}, 5},
		{Shape{2, 2}, 4},       // the 2x2 torus is the 4-cycle
		{Shape{3, 3}, 18},      // each node has degree 4
		{Shape{4, 5}, 40},      // 4*5 + 5*4 ring edges
		{Shape{1, 6}, 6},       // a single ring
		{Shape{2, 3}, 2*3 + 3}, // axis0 len2: 3 edges; axis1 len3: 2 rings of 3
	}
	for _, c := range cases {
		if got := c.s.TorusEdges(); got != c.want {
			t.Errorf("%v.TorusEdges() = %d, want %d", c.s, got, c.want)
		}
		count := 0
		c.s.EachTorusEdge(func(Edge) { count++ })
		if count != c.want {
			t.Errorf("%v: iterated %d torus edges, want %d", c.s, count, c.want)
		}
	}
}

func TestTorusEdgeValidity(t *testing.T) {
	shapes := []Shape{{3}, {4}, {3, 4}, {2, 5}, {3, 3, 3}, {2, 2, 2}}
	for _, s := range shapes {
		seen := make(map[[2]int]bool)
		s.EachTorusEdge(func(e Edge) {
			if e.U >= e.V {
				t.Errorf("%v: unordered torus edge %+v", s, e)
			}
			key := [2]int{e.U, e.V}
			if seen[key] {
				t.Errorf("%v: duplicate torus edge %+v", s, e)
			}
			seen[key] = true
			cu, cv := s.Coord(e.U), s.Coord(e.V)
			for i := range cu {
				d := cv[i] - cu[i]
				if i == e.Axis {
					if !(d == 1 || (e.Wrap && d == s[i]-1)) {
						t.Errorf("%v: bad torus edge %+v", s, e)
					}
				} else if d != 0 {
					t.Errorf("%v: torus edge %+v moves on axis %d", s, e, i)
				}
			}
		})
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := Shape{int(a%7) + 1, int(b%7) + 1, int(c%7) + 1}
		for idx := 0; idx < s.Nodes(); idx++ {
			if s.Index(s.Coord(idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinCubeDim(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{3, 5}, 4},    // 15 -> 16
		{Shape{3, 3, 3}, 5}, // 27 -> 32
		{Shape{7, 9}, 6},    // 63 -> 64
		{Shape{11, 11}, 7},  // 121 -> 128
		{Shape{512, 512, 512}, 27},
		{Shape{5, 6, 7}, 8}, // 210 -> 256
	}
	for _, c := range cases {
		if got := c.s.MinCubeDim(); got != c.want {
			t.Errorf("%v.MinCubeDim() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestGrayMinimal(t *testing.T) {
	// 5x10x11: ⌈5⌉₂⌈10⌉₂⌈11⌉₂ = 8*16*16 = 2048 vs ⌈550⌉₂ = 1024 — not minimal.
	if (Shape{5, 10, 11}).GrayMinimal() {
		t.Error("5x10x11 should not be Gray-minimal")
	}
	// 4x8x16 trivially minimal.
	if !(Shape{4, 8, 16}).GrayMinimal() {
		t.Error("4x8x16 should be Gray-minimal")
	}
	// 3x4: ⌈3⌉₂⌈4⌉₂ = 16 vs ⌈12⌉₂ = 16 — minimal despite axis 3.
	if !(Shape{3, 4}).GrayMinimal() {
		t.Error("3x4 should be Gray-minimal")
	}
}

func TestProduct(t *testing.T) {
	got := Shape{3, 5, 1}.Product(Shape{1, 5, 3})
	if !got.Equal(Shape{3, 25, 3}) {
		t.Errorf("Product = %v", got)
	}
	got = Shape{3, 5}.Product(Shape{4, 4, 2})
	if !got.Equal(Shape{12, 20, 2}) {
		t.Errorf("Product with padding = %v", got)
	}
}

func TestNeighbors(t *testing.T) {
	s := Shape{3, 3}
	center := s.Index([]int{1, 1})
	nb := s.Neighbors(center, nil)
	if len(nb) != 4 {
		t.Fatalf("center degree %d, want 4", len(nb))
	}
	corner := s.Index([]int{0, 0})
	nb = s.Neighbors(corner, nil)
	if len(nb) != 2 {
		t.Fatalf("corner degree %d, want 2", len(nb))
	}
}

func TestNeighborsMatchEdges(t *testing.T) {
	s := Shape{3, 4, 2}
	deg := make([]int, s.Nodes())
	s.EachEdge(func(e Edge) { deg[e.U]++; deg[e.V]++ })
	for idx := 0; idx < s.Nodes(); idx++ {
		if got := len(s.Neighbors(idx, nil)); got != deg[idx] {
			t.Errorf("node %d: Neighbors %d, edge degree %d", idx, got, deg[idx])
		}
	}
}

func TestSortedAndContains(t *testing.T) {
	s := Shape{7, 3, 5}
	if !s.Sorted().Equal(Shape{3, 5, 7}) {
		t.Errorf("Sorted = %v", s.Sorted())
	}
	if !s.Equal(Shape{7, 3, 5}) {
		t.Error("Sorted mutated the receiver")
	}
	if !(Shape{5, 6, 7}).Contains(Shape{5, 6}) {
		t.Error("5x6x7 should contain 5x6")
	}
	if (Shape{5, 6}).Contains(Shape{5, 6, 7}) {
		t.Error("5x6 should not contain 5x6x7")
	}
	if !(Shape{5, 6}).Contains(Shape{5, 6, 1, 1}) {
		t.Error("trailing 1s should be ignored")
	}
}

func TestValidate(t *testing.T) {
	if err := (Shape{}).Validate(); err == nil {
		t.Error("empty shape should be invalid")
	}
	if err := (Shape{3, 0}).Validate(); err == nil {
		t.Error("zero axis should be invalid")
	}
	if err := (Shape{3, 4}).Validate(); err != nil {
		t.Errorf("3x4 should be valid: %v", err)
	}
}

func TestCoordPanics(t *testing.T) {
	s := Shape{3, 3}
	for _, bad := range []int{-1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Coord(%d) did not panic", bad)
				}
			}()
			s.Coord(bad)
		}()
	}
}

func BenchmarkEachEdge(b *testing.B) {
	s := Shape{32, 32, 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.EachEdge(func(Edge) { n++ })
	}
}

func BenchmarkIndexCoord(b *testing.B) {
	s := Shape{17, 23, 31}
	out := make([]int, 3)
	r := rand.New(rand.NewSource(1))
	idxs := make([]int, 1024)
	for i := range idxs {
		idxs[i] = r.Intn(s.Nodes())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CoordInto(idxs[i&1023], out)
		_ = s.Index(out)
	}
}

// collectEdges gathers edges from a range iteration for comparison.
func collectEdges(s Shape, wrap bool, lo, hi int) []Edge {
	var out []Edge
	fn := func(e Edge) { out = append(out, e) }
	if wrap {
		s.EachTorusEdgeRange(lo, hi, fn)
	} else {
		s.EachEdgeRange(lo, hi, fn)
	}
	return out
}

func TestEdgeRangePartition(t *testing.T) {
	shapes := []Shape{{7}, {3, 5}, {4, 4}, {2, 3, 4}, {5, 1, 3}, {2, 2, 2, 2}}
	for _, s := range shapes {
		for _, wrap := range []bool{false, true} {
			full := collectEdges(s, wrap, 0, s.Nodes())
			// Any partition of the node range must reproduce the full edge
			// sequence block by block.
			for _, blocks := range []int{1, 2, 3, 4, 7} {
				var got []Edge
				n := s.Nodes()
				for b := 0; b < blocks; b++ {
					got = append(got, collectEdges(s, wrap, b*n/blocks, (b+1)*n/blocks)...)
				}
				if len(got) != len(full) {
					t.Fatalf("%v wrap=%v blocks=%d: %d edges, want %d", s, wrap, blocks, len(got), len(full))
				}
				for i := range full {
					if got[i] != full[i] {
						t.Errorf("%v wrap=%v blocks=%d: edge %d = %+v, want %+v", s, wrap, blocks, i, got[i], full[i])
					}
				}
			}
		}
	}
}

func TestEdgeRangeCountsMatchFormulas(t *testing.T) {
	s := Shape{3, 4, 5}
	if got := len(collectEdges(s, false, 0, s.Nodes())); got != s.Edges() {
		t.Errorf("mesh edges %d, want %d", got, s.Edges())
	}
	if got := len(collectEdges(s, true, 0, s.Nodes())); got != s.TorusEdges() {
		t.Errorf("torus edges %d, want %d", got, s.TorusEdges())
	}
}
