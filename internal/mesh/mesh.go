// Package mesh describes k-dimensional meshes (grids), with and without
// wraparound, as guest graphs for Boolean-cube embeddings.
//
// A mesh is identified by its Shape, the vector of axis lengths
// (ℓ₁, ℓ₂, …, ℓ_k).  Nodes are addressed either by coordinate vectors or by
// a dense row-major-like index in [0, ℓ₁ℓ₂⋯ℓ_k) with axis 0 varying fastest.
package mesh

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bits"
)

// Shape is the vector of axis lengths of a mesh.  All entries must be ≥ 1.
type Shape []int

// ParseShape parses strings like "5x6x7" or "512" into a Shape.
func ParseShape(s string) (Shape, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) == 0 {
		return nil, fmt.Errorf("mesh: empty shape %q", s)
	}
	out := make(Shape, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("mesh: bad axis %q in shape %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// MustParse is ParseShape panicking on error, for literals in tools and
// tests.
func MustParse(s string) Shape {
	out, err := ParseShape(s)
	if err != nil {
		panic(err)
	}
	return out
}

// String renders the shape as "ℓ1xℓ2x…".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, l := range s {
		parts[i] = strconv.Itoa(l)
	}
	return strings.Join(parts, "x")
}

// Validate reports an error if any axis length is < 1.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("mesh: shape has no axes")
	}
	for i, l := range s {
		if l < 1 {
			return fmt.Errorf("mesh: axis %d has non-positive length %d", i, l)
		}
	}
	return nil
}

// Dims returns the number of axes.
func (s Shape) Dims() int { return len(s) }

// Nodes returns the number of mesh nodes, Π ℓi.
func (s Shape) Nodes() int {
	n := 1
	for _, l := range s {
		n *= l
	}
	return n
}

// Edges returns the number of mesh edges without wraparound:
// Σ_i (ℓi − 1) · Π_{j≠i} ℓj.
func (s Shape) Edges() int {
	total := 0
	for i := range s {
		e := s[i] - 1
		for j := range s {
			if j != i {
				e *= s[j]
			}
		}
		total += e
	}
	return total
}

// TorusEdges returns the number of edges with wraparound.  An axis of
// length 1 contributes no ring edges and an axis of length 2 contributes a
// single edge per line (the wraparound edge coincides with the mesh edge).
func (s Shape) TorusEdges() int {
	total := 0
	for i := range s {
		var per int
		switch {
		case s[i] <= 1:
			per = 0
		case s[i] == 2:
			per = 1
		default:
			per = s[i]
		}
		line := 1
		for j := range s {
			if j != i {
				line *= s[j]
			}
		}
		total += per * line
	}
	return total
}

// MinCubeDim returns ⌈log₂ Π ℓi⌉, the dimension of the minimal Boolean cube
// that can host a one-to-one embedding of the mesh.
func (s Shape) MinCubeDim() int {
	return bits.CeilLog2(uint64(s.Nodes()))
}

// GrayCubeDim returns Σ ⌈log₂ ℓi⌉, the cube dimension consumed by the
// Gray-code embedding.
func (s Shape) GrayCubeDim() int {
	n := 0
	for _, l := range s {
		n += bits.CeilLog2(uint64(l))
	}
	return n
}

// GrayMinimal reports whether the Gray-code embedding is already
// minimal-expansion for this shape: Σ⌈log₂ ℓi⌉ == ⌈log₂ Πℓi⌉.
func (s Shape) GrayMinimal() bool {
	return s.GrayCubeDim() == s.MinCubeDim()
}

// Index converts a coordinate vector to a dense node index, axis 0 fastest.
func (s Shape) Index(coord []int) int {
	if len(coord) != len(s) {
		panic("mesh: coordinate arity mismatch")
	}
	idx := 0
	stride := 1
	for i, l := range s {
		c := coord[i]
		if c < 0 || c >= l {
			panic(fmt.Sprintf("mesh: coordinate %d out of range [0,%d) on axis %d", c, l, i))
		}
		idx += c * stride
		stride *= l
	}
	return idx
}

// Coord converts a dense node index back to a coordinate vector.
func (s Shape) Coord(idx int) []int {
	out := make([]int, len(s))
	s.CoordInto(idx, out)
	return out
}

// CoordInto is Coord without allocation; out must have length Dims().
func (s Shape) CoordInto(idx int, out []int) {
	if idx < 0 || idx >= s.Nodes() {
		panic(fmt.Sprintf("mesh: index %d out of range [0,%d)", idx, s.Nodes()))
	}
	for i, l := range s {
		out[i] = idx % l
		idx /= l
	}
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Sorted returns a copy with axis lengths in non-decreasing order.  Useful
// for canonicalizing shapes when counting meshes up to axis permutation.
func (s Shape) Sorted() Shape {
	out := s.Clone()
	sort.Ints(out)
	return out
}

// Equal reports componentwise equality.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Product returns the componentwise product s∘t, the shape of the Cartesian
// product mesh (Corollary 2: ℓ_j = ℓ_{1j}·ℓ_{2j}).  Shapes of unequal arity
// are padded with trailing 1s.
func (s Shape) Product(t Shape) Shape {
	k := len(s)
	if len(t) > k {
		k = len(t)
	}
	out := make(Shape, k)
	for i := range out {
		a, b := 1, 1
		if i < len(s) {
			a = s[i]
		}
		if i < len(t) {
			b = t[i]
		}
		out[i] = a * b
	}
	return out
}

// Edge is a pair of adjacent mesh nodes identified by dense indices.
// For wraparound edges, U and V are the two endpoints of the ring edge.
type Edge struct {
	U, V int
	Axis int // the axis along which the edge runs
	Wrap bool
}

// EachEdge calls fn for every mesh edge (no wraparound), with U < V.
// Iteration allocates one scratch coordinate vector.
func (s Shape) EachEdge(fn func(Edge)) {
	s.EachEdgeRange(0, s.Nodes(), fn)
}

// EachEdgeRange calls fn for the mesh edges generated by the node indices in
// [lo, hi): the edges whose lower endpoint is one of those nodes.  A
// partition of [0, Nodes()) therefore partitions the edge set, which is what
// the parallel metrics engine shards over.
func (s Shape) EachEdgeRange(lo, hi int, fn func(Edge)) {
	coord := make([]int, len(s))
	stride := make([]int, len(s))
	st := 1
	for i, l := range s {
		stride[i] = st
		st *= l
	}
	for idx := lo; idx < hi; idx++ {
		s.CoordInto(idx, coord)
		for i := range s {
			if coord[i]+1 < s[i] {
				fn(Edge{U: idx, V: idx + stride[i], Axis: i})
			}
		}
	}
}

// EachTorusEdge calls fn for every edge of the wraparound mesh.  Ring edges
// of an axis of length 2 are reported once (they coincide with mesh edges);
// axes of length 1 have no edges.
func (s Shape) EachTorusEdge(fn func(Edge)) {
	s.EachTorusEdgeRange(0, s.Nodes(), fn)
}

// EachTorusEdgeRange is EachEdgeRange for the wraparound mesh.  A wraparound
// edge is generated by its higher endpoint (the last hyperplane of its
// axis), so disjoint index ranges again generate disjoint edge sets.
func (s Shape) EachTorusEdgeRange(lo, hi int, fn func(Edge)) {
	coord := make([]int, len(s))
	stride := make([]int, len(s))
	st := 1
	for i, l := range s {
		stride[i] = st
		st *= l
	}
	for idx := lo; idx < hi; idx++ {
		s.CoordInto(idx, coord)
		for i := range s {
			if coord[i]+1 < s[i] {
				fn(Edge{U: idx, V: idx + stride[i], Axis: i})
			} else if s[i] > 2 && coord[i] == s[i]-1 {
				// wraparound edge from the last to the first hyperplane
				fn(Edge{U: idx - (s[i]-1)*stride[i], V: idx, Axis: i, Wrap: true})
			}
		}
	}
}

// Neighbors appends to dst the dense indices adjacent to idx (no wraparound)
// and returns the extended slice.
func (s Shape) Neighbors(idx int, dst []int) []int {
	coord := make([]int, len(s))
	s.CoordInto(idx, coord)
	stride := 1
	for i, l := range s {
		if coord[i] > 0 {
			dst = append(dst, idx-stride)
		}
		if coord[i]+1 < l {
			dst = append(dst, idx+stride)
		}
		stride *= l
	}
	return dst
}

// Contains reports whether a mesh of shape t fits inside s componentwise
// (after padding t with trailing 1s).
func (s Shape) Contains(t Shape) bool {
	if len(t) > len(s) {
		for _, l := range t[len(s):] {
			if l > 1 {
				return false
			}
		}
		t = t[:len(s)]
	}
	for i := range t {
		if t[i] > s[i] {
			return false
		}
	}
	return true
}
