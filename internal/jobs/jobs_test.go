package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/pkg/api"
)

func testConfig(dir string) Config {
	return Config{
		DataDir:         dir,
		CheckpointEvery: 3,
		Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

func censusReq(maxN int) api.JobSubmitRequest {
	return api.JobSubmitRequest{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: maxN}}
}

func epsilonReq(maxN int) api.JobSubmitRequest {
	return api.JobSubmitRequest{Kind: api.JobEpsilon, Epsilon: &api.EpsilonParams{MaxN: maxN}}
}

func plansweepReq() api.JobSubmitRequest {
	return api.JobSubmitRequest{
		Kind:      api.JobPlanSweep,
		PlanSweep: &api.PlanSweepParams{Dims: 3, MaxAxis: 8, MaxNodes: 256},
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitTerminal(t *testing.T, m *Manager, id string) api.JobStatus {
	t.Helper()
	var st api.JobStatus
	waitFor(t, 60*time.Second, "job "+id+" to finish", func() bool {
		var err error
		st, err = m.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		return st.State.Terminal()
	})
	return st
}

func closeManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func resultsBytes(t *testing.T, dataDir, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dataDir, id, resultsFile))
	if err != nil {
		t.Fatalf("reading results: %v", err)
	}
	return b
}

// runToCompletion runs one job on a fresh manager and returns its final
// status and result stream.
func runToCompletion(t *testing.T, req api.JobSubmitRequest) (api.JobStatus, []byte) {
	t.Helper()
	dir := t.TempDir()
	m, err := Open(testConfig(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != api.JobDone {
		t.Fatalf("job ended %s (error %q), want done", st.State, st.Error)
	}
	return st, resultsBytes(t, dir, st.ID)
}

// TestCensusJobMatchesFigure2 checks the result stream against the direct
// in-process census: same row values, one shard record per first axis, a
// summary accounting for every ordered shape.
func TestCensusJobMatchesFigure2(t *testing.T) {
	const maxN = 4
	st, raw := runToCompletion(t, censusReq(maxN))
	want := stats.Figure2Parallel(maxN, 1)

	var shards, rows int
	var summary api.SummaryRecord
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		switch head.Type {
		case api.RecordCensusShard:
			shards++
		case api.RecordCensusRow:
			var row api.CensusRowRecord
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Fatal(err)
			}
			ref := want[rows]
			if row.N != ref.N || row.Total != ref.Total || row.Exceptions != ref.Exceptions ||
				math.Abs(row.S[3]-ref.S[3]) > 1e-12 || math.Abs(row.S4Eps2-ref.S4Eps2) > 1e-12 {
				t.Errorf("row %d = %+v, want %+v", rows, row, ref)
			}
			rows++
		case api.RecordSummary:
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
		default:
			t.Errorf("unexpected record type %q", head.Type)
		}
	}
	if shards != 1<<maxN || rows != maxN {
		t.Errorf("stream has %d shards and %d rows, want %d and %d", shards, rows, 1<<maxN, maxN)
	}
	if wantShapes := uint64(1) << (3 * maxN); summary.Shapes != wantShapes {
		t.Errorf("summary shapes = %d, want %d (every ordered triple)", summary.Shapes, wantShapes)
	}
	if st.Progress.ResultBytes != int64(len(raw)) {
		t.Errorf("status ResultBytes = %d, file has %d", st.Progress.ResultBytes, len(raw))
	}
	if st.Progress.ChunksDone != st.Progress.ChunksTotal || st.Progress.ChunksTotal != 1<<maxN {
		t.Errorf("progress = %+v, want all %d chunks done", st.Progress, 1<<maxN)
	}
}

// TestKillAndResumeByteIdentical is the subsystem's core guarantee: abandon
// a run mid-job with no warning (the in-process equivalent of SIGKILL —
// the last checkpoint is stale and the result stream runs past it), reopen
// the manager over the same data dir, and the resumed job must finish with
// a result stream byte-identical to an uninterrupted run's.
func TestKillAndResumeByteIdentical(t *testing.T) {
	cases := []struct {
		name        string
		req         api.JobSubmitRequest
		abandonAt   int
		ckptEvery   int
		totalChunks int
	}{
		{"census", censusReq(4), 7, 3, 16},
		{"plansweep", plansweepReq(), 4, 2, 8},
		{"epsilon", epsilonReq(5), 3, 2, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, want := runToCompletion(t, tc.req)

			dir := t.TempDir()
			abandoned := make(chan struct{})
			cfg := testConfig(dir)
			cfg.CheckpointEvery = tc.ckptEvery
			cfg.afterChunk = func(id string, chunk int) error {
				if chunk == tc.abandonAt {
					close(abandoned)
					return errAbandoned
				}
				return nil
			}
			m1, err := Open(cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			st, err := m1.Submit(tc.req)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			<-abandoned
			closeManager(t, m1)

			// The on-disk stream must be longer than the checkpointed prefix:
			// the kill landed between checkpoints, so resume has real work to
			// redo (otherwise this test proves nothing about truncation).
			ck, err := readCheckpoint(filepath.Join(dir, st.ID))
			if err != nil || ck == nil {
				t.Fatalf("no checkpoint after abandon: %v", err)
			}
			if got := int64(len(resultsBytes(t, dir, st.ID))); got <= ck.Offset {
				t.Fatalf("stream %d bytes not past checkpoint offset %d; abandon point too early", got, ck.Offset)
			}
			if ck.NextChunk >= tc.totalChunks {
				t.Fatalf("checkpoint already at chunk %d of %d", ck.NextChunk, tc.totalChunks)
			}

			cfg2 := testConfig(dir)
			cfg2.CheckpointEvery = tc.ckptEvery
			m2, err := Open(cfg2)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer closeManager(t, m2)
			fin := waitTerminal(t, m2, st.ID)
			if fin.State != api.JobDone {
				t.Fatalf("resumed job ended %s (error %q)", fin.State, fin.Error)
			}
			if fin.Resumed != 1 {
				t.Errorf("Resumed = %d, want 1", fin.Resumed)
			}
			got := resultsBytes(t, dir, st.ID)
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed stream differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(want))
			}
		})
	}
}

// TestGracefulShutdownResume: Close interrupts a running job, which must be
// left resumable on disk and finish byte-identically after reopen.
func TestGracefulShutdownResume(t *testing.T) {
	_, want := runToCompletion(t, censusReq(4))

	dir := t.TempDir()
	cfg := testConfig(dir)
	midway := make(chan struct{})
	var once sync.Once
	cfg.afterChunk = func(id string, chunk int) error {
		if chunk >= 5 {
			once.Do(func() { close(midway) })
			time.Sleep(time.Millisecond) // give Close a window while chunks still remain
		}
		return nil
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := m1.Submit(censusReq(4))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-midway
	closeManager(t, m1)

	onDisk, err := readStatusFile(filepath.Join(dir, st.ID))
	if err != nil {
		t.Fatalf("status after shutdown: %v", err)
	}
	if onDisk.State.Terminal() {
		t.Fatalf("job reached %s before shutdown could interrupt; shrink the abandon window", onDisk.State)
	}

	m2, err := Open(testConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer closeManager(t, m2)
	fin := waitTerminal(t, m2, st.ID)
	if fin.State != api.JobDone || fin.Resumed != 1 {
		t.Fatalf("resumed job: state %s resumed %d, want done/1", fin.State, fin.Resumed)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(got, want) {
		t.Fatalf("post-shutdown stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestPanicRetry: a chunk that panics is retried in isolation and the job
// still produces the uninterrupted stream; a chunk that keeps panicking
// fails only its job, with the panic message surfaced.
func TestPanicRetry(t *testing.T) {
	_, want := runToCompletion(t, censusReq(3))

	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.beforeAttempt = func(id string, chunk, attempt int) {
		if chunk == 2 && attempt < 2 {
			panic(fmt.Sprintf("injected failure %d", attempt))
		}
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(censusReq(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != api.JobDone {
		t.Fatalf("job ended %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.Progress.Retries != 2 {
		t.Errorf("Retries = %d, want 2", fin.Progress.Retries)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(got, want) {
		t.Fatal("stream after retries differs from clean run")
	}
	if m.Stats().Retries != 2 {
		t.Errorf("manager retry counter = %d, want 2", m.Stats().Retries)
	}
}

func TestPanicExhaustsRetriesFailsJob(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.RetryLimit = 1
	cfg.beforeAttempt = func(id string, chunk, attempt int) {
		// Break only the first submission; the follow-up job must run clean.
		if strings.HasSuffix(id, "-000001") && chunk == 1 {
			panic("always broken")
		}
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(censusReq(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != api.JobFailed {
		t.Fatalf("job ended %s, want failed", fin.State)
	}
	if !bytes.Contains([]byte(fin.Error), []byte("always broken")) {
		t.Errorf("error %q does not surface the panic", fin.Error)
	}
	// The manager must survive: a fresh job on the same manager succeeds.
	st2, err := m.Submit(epsilonReq(2))
	if err != nil {
		t.Fatalf("Submit after failure: %v", err)
	}
	if fin2 := waitTerminal(t, m, st2.ID); fin2.State != api.JobDone {
		t.Fatalf("follow-up job ended %s, want done", fin2.State)
	}
}

// TestQueueBackpressure: with one runner wedged, QueueDepth bounds
// admissions and the overflow submission gets ErrQueueFull without leaving
// any state behind; a queued job can be cancelled before it ever runs.
func TestQueueBackpressure(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.QueueDepth = 1
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	cfg.beforeRun = func(id string) {
		once.Do(func() { close(started) })
		<-release
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)

	running, err := m.Submit(epsilonReq(2))
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	<-started // job 1 occupies the runner, not the queue
	queued, err := m.Submit(epsilonReq(2))
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	_, err = m.Submit(epsilonReq(2))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit 3 = %v, want ErrQueueFull", err)
	}
	if got := len(m.List()); got != 2 {
		t.Errorf("rejected job leaked into the list (len %d, want 2)", got)
	}

	st, err := m.Cancel(queued.ID)
	if err != nil || st.State != api.JobCancelled {
		t.Fatalf("cancel queued = %+v, %v; want cancelled", st.State, err)
	}
	close(release)
	if fin := waitTerminal(t, m, running.ID); fin.State != api.JobDone {
		t.Fatalf("job 1 ended %s, want done", fin.State)
	}
	// The cancelled job must stay cancelled — the runner discards it.
	waitFor(t, 5*time.Second, "queue to drain", func() bool {
		s := m.Stats()
		return s.Queued == 0 && s.Running == 0
	})
	if st, _ := m.Status(queued.ID); st.State != api.JobCancelled {
		t.Errorf("queued-then-cancelled job ended %s", st.State)
	}
}

// TestCancelRunningStreamsPrefix: cancelling mid-run finalizes as cancelled
// and the committed stream is an exact byte prefix of the uninterrupted
// run's — the guarantee that makes streaming results before completion
// sound.
func TestCancelRunningStreamsPrefix(t *testing.T) {
	_, full := runToCompletion(t, censusReq(4))

	dir := t.TempDir()
	cfg := testConfig(dir)
	atChunk := make(chan struct{})
	cancelled := make(chan struct{})
	var once sync.Once
	cfg.afterChunk = func(id string, chunk int) error {
		if chunk == 5 {
			once.Do(func() { close(atChunk) })
			<-cancelled
		}
		return nil
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(censusReq(4))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-atChunk
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(cancelled)
	fin := waitTerminal(t, m, st.ID)
	if fin.State != api.JobCancelled {
		t.Fatalf("job ended %s, want cancelled", fin.State)
	}
	got := resultsBytes(t, dir, st.ID)
	info, err := m.Results(st.ID)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if info.Committed > int64(len(got)) {
		t.Fatalf("committed %d exceeds file size %d", info.Committed, len(got))
	}
	committed := got[:info.Committed]
	if len(committed) == 0 || len(committed) >= len(full) {
		t.Fatalf("committed %d bytes, want a proper prefix of %d", len(committed), len(full))
	}
	if !bytes.Equal(committed, full[:len(committed)]) {
		t.Fatal("committed bytes are not a prefix of the uninterrupted stream")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := Open(testConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	bad := []api.JobSubmitRequest{
		{Kind: "nonsense"},
		{Kind: api.JobCensus}, // missing params
		{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 0}},     // under range
		{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 99}},    // over range
		{Kind: api.JobEpsilon, Epsilon: &api.EpsilonParams{MaxN: -1}}, // negative
		{Kind: api.JobPlanSweep, PlanSweep: &api.PlanSweepParams{Dims: 0, MaxAxis: 4, MaxNodes: 64}},
		{Kind: api.JobPlanSweep, PlanSweep: &api.PlanSweepParams{Dims: 3, MaxAxis: 4096, MaxNodes: 64}},
		{Kind: api.JobPlanSweep, PlanSweep: &api.PlanSweepParams{Dims: 3, MaxAxis: 4, MaxNodes: 0}},
	}
	for i, req := range bad {
		if _, err := m.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d: got %v, want ErrBadRequest", i, err)
		}
	}
	if got := len(m.List()); got != 0 {
		t.Errorf("rejected submissions leaked %d jobs into the list", got)
	}
	if _, err := m.Status("j-nope-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Status(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("j-nope-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Results("j-nope-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Results(unknown) = %v, want ErrNotFound", err)
	}
}

// TestConcurrentSubmitCancelWatch hammers the manager from many goroutines
// at once — submits, status polls, lists, cancels and stats — and is the
// test the -race run leans on.
func TestConcurrentSubmitCancelWatch(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Runners = 2
	cfg.QueueDepth = 64
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)

	const submitters, perSubmitter = 4, 4
	ids := make(chan string, submitters*perSubmitter)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				st, err := m.Submit(epsilonReq(3))
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids <- st.ID
				if (g+i)%2 == 0 {
					if _, err := m.Cancel(st.ID); err != nil {
						t.Errorf("Cancel: %v", err)
					}
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var watchers sync.WaitGroup
	for w := 0; w < 3; w++ {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, st := range m.List() {
						if _, err := m.Status(st.ID); err != nil {
							t.Errorf("Status: %v", err)
							return
						}
					}
					m.Stats()
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		st := waitTerminal(t, m, id)
		if st.State != api.JobDone && st.State != api.JobCancelled {
			t.Errorf("job %s ended %s", id, st.State)
		}
	}
	close(stop)
	watchers.Wait()
	if got := len(m.List()); got != submitters*perSubmitter {
		t.Errorf("List has %d jobs, want %d", got, submitters*perSubmitter)
	}
}

// TestSubmitAfterCloseRejected pins the ErrClosed path.
func TestSubmitAfterCloseRejected(t *testing.T) {
	m, err := Open(testConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	closeManager(t, m)
	if _, err := m.Submit(epsilonReq(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}
