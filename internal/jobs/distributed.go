package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mesh"
	"repro/internal/stats"
	"repro/pkg/api"
)

// distRunner extends kindRunner with the two halves of distributed
// execution.  Every job kind implements it: the worker side packages one
// chunk portably, the coordinator side folds shipped chunks back in index
// order.  The single-node chunk loop is untouched — a distributed run is
// the same runner driven by a fabric.Dispatch instead of a for loop, which
// is why the two produce byte-identical streams.
type distRunner interface {
	kindRunner
	// remote runs one chunk on a FRESH runner (worker side) and returns it
	// in portable form: the chunk's NDJSON rows plus the aggregate delta of
	// just this chunk (a fresh runner's post-chunk snapshot IS the delta),
	// or position-independent plan entries for plancensus.
	remote(ctx context.Context, chunk int) (*api.ChunkResult, error)
	// fold merges one shipped chunk into the runner (coordinator side),
	// appending the chunk's stream bytes to buf and returning its shape
	// count — the distributed counterpart of runChunk, called strictly in
	// chunk-index order.  Implementations validate before mutating, so a
	// failed fold leaves the aggregate untouched (same contract as
	// runChunk).
	fold(res *api.ChunkResult, buf *bytes.Buffer) (uint64, error)
}

// remoteRows is the shared worker-side path for the row-stream kinds:
// run the chunk into a buffer, snapshot the (fresh) aggregate as the delta.
func remoteRows(ctx context.Context, r kindRunner, chunk int) (*api.ChunkResult, error) {
	var buf bytes.Buffer
	n, err := r.runChunk(ctx, chunk, &buf)
	if err != nil {
		return nil, err
	}
	agg, err := r.snapshot()
	if err != nil {
		return nil, err
	}
	return &api.ChunkResult{Shapes: n, Rows: bytes.Clone(buf.Bytes()), Agg: agg}, nil
}

func (r *censusRunner) remote(ctx context.Context, chunk int) (*api.ChunkResult, error) {
	if r.agg != nil {
		return nil, errors.New("jobs: census remote chunk requires a fresh runner")
	}
	return remoteRows(ctx, r, chunk)
}

func (r *censusRunner) fold(res *api.ChunkResult, buf *bytes.Buffer) (uint64, error) {
	var part []stats.CensusTally
	if err := json.Unmarshal(res.Agg, &part); err != nil {
		return 0, fmt.Errorf("jobs: census chunk %d aggregate: %w", res.Chunk, err)
	}
	if len(part) != r.maxN+1 {
		return 0, fmt.Errorf("jobs: census chunk %d aggregate has %d buckets, want %d",
			res.Chunk, len(part), r.maxN+1)
	}
	buf.Write(res.Rows)
	// Element-wise integer addition of the chunk's delta — associative, so
	// folding deltas in index order equals the sequential aggregate exactly.
	r.agg = stats.MergeCensusTallies(r.agg, part)
	return res.Shapes, nil
}

func (r *epsilonRunner) remote(ctx context.Context, chunk int) (*api.ChunkResult, error) {
	return remoteRows(ctx, r, chunk)
}

// fold for epsilon is pure append: rows are independent, there is no
// aggregate.
func (r *epsilonRunner) fold(res *api.ChunkResult, buf *bytes.Buffer) (uint64, error) {
	buf.Write(res.Rows)
	return res.Shapes, nil
}

func (r *plansweepRunner) remote(ctx context.Context, chunk int) (*api.ChunkResult, error) {
	if len(r.hist) != 0 || r.minimal != 0 || r.optimal != 0 {
		return nil, errors.New("jobs: plansweep remote chunk requires a fresh runner")
	}
	return remoteRows(ctx, r, chunk)
}

func (r *plansweepRunner) fold(res *api.ChunkResult, buf *bytes.Buffer) (uint64, error) {
	var a plansweepAgg
	if err := json.Unmarshal(res.Agg, &a); err != nil {
		return 0, fmt.Errorf("jobs: plansweep chunk %d aggregate: %w", res.Chunk, err)
	}
	buf.Write(res.Rows)
	for k, v := range a.Hist {
		r.hist[k] += v
	}
	r.minimal += a.Minimal
	r.optimal += a.Optimal
	return res.Shapes, nil
}

// remote for plancensus cannot ship rows or artifact bytes — both embed
// the cumulative string cursor, which depends on every earlier chunk.  It
// ships one position-independent PlanEntry per shape in rank order instead;
// the coordinator's fold replays them through its own builder, which
// assigns the cursor and emits the chunk record, reproducing the exact
// bytes of a local run.
func (r *plancensusRunner) remote(ctx context.Context, chunk int) (*api.ChunkResult, error) {
	c := chunk + 1
	lo, hi := artifact.ChunkRange(r.params.Dims, c)
	plans := make([]api.PlanEntry, 0, hi-lo)
	var addErr error
	artifact.EachShapeWithMax(r.params.Dims, c, func(s mesh.Shape) {
		if addErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			addErr = err
			return
		}
		p := r.planner.PlanGuest(r.family, s)
		rec := artifact.RecFromPlan(p)
		plans = append(plans, api.PlanEntry{
			Kind: rec.Kind.String(), Method: rec.Method, Dilation: rec.Dilation,
			CubeDim: rec.CubeDim, Minimal: rec.Minimal, Plan: rec.Plan,
		})
	})
	if addErr != nil {
		return nil, addErr
	}
	if uint64(len(plans)) != hi-lo {
		return nil, fmt.Errorf("jobs: plancensus chunk %d enumerated %d shapes, want %d",
			c, len(plans), hi-lo)
	}
	return &api.ChunkResult{Shapes: hi - lo, Plans: plans}, nil
}

func (r *plancensusRunner) fold(res *api.ChunkResult, buf *bytes.Buffer) (uint64, error) {
	if err := r.ensureBuilder(); err != nil {
		return 0, err
	}
	c := res.Chunk + 1
	lo, hi := artifact.ChunkRange(r.params.Dims, c)
	if uint64(len(res.Plans)) != hi-lo {
		return 0, fmt.Errorf("jobs: plancensus chunk %d shipped %d plans, want %d",
			c, len(res.Plans), hi-lo)
	}
	hist := map[string]uint64{}
	var minimal uint64
	i := 0
	var foldErr error
	artifact.EachShapeWithMax(r.params.Dims, c, func(s mesh.Shape) {
		if foldErr != nil {
			return
		}
		if i >= len(res.Plans) {
			foldErr = fmt.Errorf("jobs: plancensus chunk %d ran out of shipped plans at rank %d", c, i)
			return
		}
		pe := res.Plans[i]
		i++
		kind, err := core.ParseKind(pe.Kind)
		if err != nil {
			foldErr = fmt.Errorf("jobs: plancensus chunk %d: %w", c, err)
			return
		}
		if err := r.b.AddRec(s, artifact.Rec{
			Kind: kind, Method: pe.Method, Dilation: pe.Dilation,
			CubeDim: pe.CubeDim, Minimal: pe.Minimal, Plan: pe.Plan,
		}); err != nil {
			foldErr = err
			return
		}
		if pe.Dilation < 0 {
			hist["unknown"]++
		} else {
			hist[strconv.Itoa(pe.Dilation)]++
		}
		if pe.Minimal {
			minimal++
		}
	})
	// A torn replay (foldErr below) leaves the builder position drifted
	// from the aggregate; ensureBuilder reopens it at the checkpointed
	// position on the next attempt, exactly like a failed local chunk.
	if foldErr != nil {
		return 0, foldErr
	}
	if err := r.b.Flush(); err != nil {
		return 0, err
	}
	next, cursor := r.b.Pos()
	if next != hi {
		return 0, fmt.Errorf("jobs: plancensus chunk %d wrote to rank %d, want %d", c, next, hi)
	}
	if err := writeRecord(buf, api.PlanCensusChunkRecord{
		Type: api.RecordPlanCensusChunk, MaxAxisValue: c,
		Records: hi - lo, RankLo: lo, RankHi: hi, StringBytes: cursor,
	}); err != nil {
		return 0, err
	}
	r.nextRank, r.cursor = next, cursor
	for k, v := range hist {
		r.hist[k] += v
	}
	r.minimal += minimal
	return hi - lo, nil
}

// runBodyDistributed is runBody's distributed twin: the same checkpoint
// restore and truncate-to-offset replay discipline, but chunks execute on
// fabric peers and arrive through a Dispatch that folds them strictly in
// index order on this goroutine — so the result stream, checkpoints, and
// final aggregate are byte-identical to the single-node chunk loop.
func (m *Manager) runBodyDistributed(ctx context.Context, j *job, r distRunner, pool *fabric.Pool) error {
	f, err := os.OpenFile(filepath.Join(j.dir, resultsFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	total := r.chunks()
	next, offset, shapes, retries := 0, int64(0), uint64(0), 0
	if ck, err := readCheckpoint(j.dir); err == nil && ck != nil &&
		ck.Version == api.JobSchemaVersion && ck.JobID == j.id {
		if err := r.restore(ck.Agg); err == nil {
			next, offset, shapes, retries = ck.NextChunk, ck.Offset, ck.Shapes, ck.Retries
		} else {
			m.log.Warn("jobs: checkpoint aggregate rejected; restarting job from scratch",
				"job", j.id, "err", err)
		}
	}
	if err := f.Truncate(offset); err != nil {
		return err
	}
	if _, err := f.Seek(offset, 0); err != nil {
		return err
	}

	d := fabric.NewDispatch(pool, j.req, total)
	j.mu.Lock()
	j.chunksDone, j.chunksTotal = next, total
	j.shapes, j.retries, j.committed = shapes, retries, offset
	j.dispatch = d
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		j.dispatch = nil
		j.mu.Unlock()
	}()

	runStart := time.Now()
	chunksAtStart, shapesAtStart := next, shapes
	lastCkpt := next
	folded := next
	var buf bytes.Buffer
	foldFn := func(res *api.ChunkResult) error {
		buf.Reset()
		n, err := r.fold(res, &buf)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf.Bytes()); err != nil {
			return err
		}
		written := int64(buf.Len())
		offset += written
		shapes += n
		folded = res.Chunk + 1
		m.chunksDone.Add(1)
		m.shapesDone.Add(n)
		m.resultBytes.Add(written)

		elapsed := time.Since(runStart).Seconds()
		j.mu.Lock()
		j.chunksDone = folded
		j.shapes = shapes
		j.committed = offset
		j.retries = retries
		if elapsed > 0 {
			j.shapesPerSec = float64(shapes-shapesAtStart) / elapsed
			perChunk := elapsed / float64(folded-chunksAtStart)
			j.etaMS = int64(perChunk * float64(total-folded) * 1000)
		}
		j.mu.Unlock()

		if hook := m.cfg.afterChunk; hook != nil {
			if err := hook(j.id, res.Chunk); err != nil {
				return err
			}
		}
		if folded < total && folded-lastCkpt >= m.cfg.CheckpointEvery {
			if err := m.writeCheckpointOwners(f, j, r, folded, offset, shapes, retries, d.Owners()); err != nil {
				return err
			}
			lastCkpt = folded
			m.persistStatus(j)
		}
		return nil
	}
	if err := d.Run(ctx, next, foldFn); err != nil {
		if errors.Is(err, errAbandoned) {
			return err // test hook: simulate a kill — no further disk writes
		}
		if ctx.Err() != nil {
			m.writeCheckpointOwners(f, j, r, folded, offset, shapes, retries, nil)
			return ctx.Err()
		}
		return err
	}

	// Same finish tail as runBody: checkpoint at (total, pre-finish
	// offset), then the finish records.
	if err := m.writeCheckpointOwners(f, j, r, total, offset, shapes, retries, nil); err != nil {
		return err
	}
	buf.Reset()
	if err := r.finish(&buf, shapes); err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	offset += int64(buf.Len())
	m.resultBytes.Add(int64(buf.Len()))
	j.mu.Lock()
	j.committed = offset
	j.mu.Unlock()
	return nil
}
