package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/pkg/api"
)

func plancensusReq(dims, maxAxis int, family string) api.JobSubmitRequest {
	return api.JobSubmitRequest{
		Kind:       api.JobPlanCensus,
		PlanCensus: &api.PlanCensusParams{Dims: dims, MaxAxis: maxAxis, Family: family},
	}
}

// artifactBytes reads the artifact file of a finished plancensus job.
func artifactBytes(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	path, err := m.ArtifactPath(id)
	if err != nil {
		t.Fatalf("ArtifactPath: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	return b
}

// TestPlanCensusJobBuildsArtifact runs a plancensus job end to end and
// checks the produced artifact against a fresh planner: loadable, complete,
// fingerprint-matched, and record-for-record identical to direct planning.
func TestPlanCensusJobBuildsArtifact(t *testing.T) {
	const dims, maxAxis = 3, 8
	for _, famName := range []string{"", "torus"} {
		name := famName
		if name == "" {
			name = "mesh"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m, err := Open(testConfig(dir))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer closeManager(t, m)
			st, err := m.Submit(plancensusReq(dims, maxAxis, famName))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			st = waitTerminal(t, m, st.ID)
			if st.State != api.JobDone {
				t.Fatalf("job ended %s (error %q), want done", st.State, st.Error)
			}

			path, err := m.ArtifactPath(st.ID)
			if err != nil {
				t.Fatalf("ArtifactPath: %v", err)
			}
			a, err := artifact.Open(path)
			if err != nil {
				t.Fatalf("artifact.Open: %v", err)
			}
			defer a.Close()

			desc, err := guest.ByName(famName)
			if err != nil {
				t.Fatalf("guest.ByName(%q): %v", famName, err)
			}
			fam := desc.Family
			pl := core.NewPlanner(core.DefaultOptions)
			hdr := a.Header()
			if hdr.Family != fam.String() || hdr.Dims != dims || hdr.MaxAxis != maxAxis {
				t.Fatalf("header = %+v, want family=%s dims=%d maxAxis=%d", hdr, fam, dims, maxAxis)
			}
			if hdr.Fingerprint != artifact.FingerprintHash(pl.Fingerprint()) {
				t.Fatalf("artifact fingerprint %x does not match planner %q", hdr.Fingerprint, pl.Fingerprint())
			}
			checked := uint64(0)
			for c := 1; c <= maxAxis; c++ {
				artifact.EachShapeWithMax(dims, c, func(s mesh.Shape) {
					p := pl.PlanGuest(fam, s)
					rec, ok, err := a.Lookup(s)
					if err != nil || !ok {
						t.Fatalf("Lookup(%v): ok=%v err=%v", s, ok, err)
					}
					dil := p.Dilation
					if dil == core.DilationUnknown {
						dil = -1
					}
					if rec.Plan != p.String() || rec.Kind != p.Kind || rec.Method != p.Method ||
						rec.CubeDim != p.CubeDim || rec.Dilation != dil || rec.Minimal != p.Minimal() {
						t.Fatalf("Lookup(%v) = %+v, planner says %v", s, rec, p)
					}
					checked++
				})
			}
			if checked != hdr.RecordCount {
				t.Fatalf("checked %d records, header says %d", checked, hdr.RecordCount)
			}

			// The NDJSON stream must carry one chunk record per largest-axis
			// value, tiling the rank space, and a summary whose ArtifactInfo
			// matches the loaded header.
			sc := bufio.NewScanner(bytes.NewReader(resultsBytes(t, dir, st.ID)))
			var chunkRecs []api.PlanCensusChunkRecord
			var sum *api.SummaryRecord
			for sc.Scan() {
				var probe struct {
					Type string `json:"type"`
				}
				if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
					t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
				}
				switch probe.Type {
				case api.RecordPlanCensusChunk:
					var r api.PlanCensusChunkRecord
					if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
						t.Fatal(err)
					}
					chunkRecs = append(chunkRecs, r)
				case api.RecordSummary:
					sum = new(api.SummaryRecord)
					if err := json.Unmarshal(sc.Bytes(), sum); err != nil {
						t.Fatal(err)
					}
				}
			}
			if len(chunkRecs) != maxAxis {
				t.Fatalf("%d chunk records, want %d", len(chunkRecs), maxAxis)
			}
			var next uint64
			for i, r := range chunkRecs {
				lo, hi := artifact.ChunkRange(dims, i+1)
				if r.MaxAxisValue != i+1 || r.RankLo != lo || r.RankHi != hi || r.RankLo != next {
					t.Fatalf("chunk record %d = %+v, want ranks [%d,%d)", i, r, lo, hi)
				}
				next = r.RankHi
			}
			if sum == nil || sum.Artifact == nil {
				t.Fatalf("no summary/artifact info in stream (summary %+v)", sum)
			}
			ai := sum.Artifact
			if ai.Records != hdr.RecordCount || ai.StringBytes != hdr.StringBytes ||
				ai.Fingerprint != pl.Fingerprint() {
				t.Fatalf("summary artifact info %+v does not match header %+v", ai, hdr)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if ai.Bytes != uint64(fi.Size()) {
				t.Fatalf("summary says %d bytes, file is %d", ai.Bytes, fi.Size())
			}
			if sum.Shapes != hdr.RecordCount {
				t.Fatalf("summary shapes %d, want %d", sum.Shapes, hdr.RecordCount)
			}
		})
	}
}

// TestPlanCensusKillAndResume abandons a plancensus job mid-run and resumes
// it on a fresh manager: both the NDJSON stream and the artifact file must
// come out byte-identical to an uninterrupted run, and the resumed artifact
// must still pass Open's checksum gate.
func TestPlanCensusKillAndResume(t *testing.T) {
	req := plancensusReq(3, 8, "")

	// Uninterrupted reference run.
	refDir := t.TempDir()
	mRef, err := Open(testConfig(refDir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stRef, err := mRef.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	stRef = waitTerminal(t, mRef, stRef.ID)
	if stRef.State != api.JobDone {
		t.Fatalf("reference job ended %s (error %q)", stRef.State, stRef.Error)
	}
	wantStream := resultsBytes(t, refDir, stRef.ID)
	wantArtifact := artifactBytes(t, mRef, stRef.ID)
	closeManager(t, mRef)

	// Interrupted run: abandon after chunk 4 with checkpoints every 2
	// chunks, so resume has a committed prefix plus real work to redo.
	dir := t.TempDir()
	abandoned := make(chan struct{})
	cfg := testConfig(dir)
	cfg.CheckpointEvery = 2
	cfg.afterChunk = func(id string, chunk int) error {
		if chunk == 4 {
			close(abandoned)
			return errAbandoned
		}
		return nil
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := m1.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-abandoned

	// Before the job finishes the artifact must be withheld.
	if _, err := m1.ArtifactPath(st.ID); !errors.Is(err, ErrNotReady) {
		t.Fatalf("ArtifactPath mid-run = %v, want ErrNotReady", err)
	}
	closeManager(t, m1)

	// The torn artifact on disk must be rejected by the loader.
	if _, err := artifact.Open(filepath.Join(dir, st.ID, ArtifactFile)); err == nil {
		t.Fatal("artifact.Open accepted a torn, unfinalized artifact")
	}

	cfg2 := testConfig(dir)
	cfg2.CheckpointEvery = 2
	m2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer closeManager(t, m2)
	fin := waitTerminal(t, m2, st.ID)
	if fin.State != api.JobDone {
		t.Fatalf("resumed job ended %s (error %q)", fin.State, fin.Error)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(got, wantStream) {
		t.Fatalf("resumed stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(wantStream))
	}
	if got := artifactBytes(t, m2, st.ID); !bytes.Equal(got, wantArtifact) {
		t.Fatalf("resumed artifact differs from uninterrupted build (%d vs %d bytes)", len(got), len(wantArtifact))
	}
	if a, err := artifact.Open(filepath.Join(dir, st.ID, ArtifactFile)); err != nil {
		t.Fatalf("resumed artifact fails Open: %v", err)
	} else {
		a.Close()
	}
}

// TestArtifactPathErrors pins the ArtifactPath error contract.
func TestArtifactPathErrors(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(testConfig(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	if _, err := m.ArtifactPath("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
	st, err := m.Submit(censusReq(2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, m, st.ID)
	if _, err := m.ArtifactPath(st.ID); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("wrong kind: %v, want ErrBadRequest", err)
	}
}
