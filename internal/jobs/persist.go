package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/pkg/api"
)

// On-disk layout: one directory per job under the manager's data dir,
// holding the job's status, its last checkpoint, the NDJSON result stream
// and (when tracing is on) the run's span tree.
//
//	<data-dir>/<job-id>/job.json          — api.JobStatus, rewritten on every transition
//	<data-dir>/<job-id>/checkpoint.json   — checkpoint, rewritten every CheckpointEvery chunks
//	<data-dir>/<job-id>/results.ndjson    — append-only record stream
//	<data-dir>/<job-id>/trace.json        — obs span tree of the last run
const (
	statusFile     = "job.json"
	checkpointFile = "checkpoint.json"
	resultsFile    = "results.ndjson"
	traceFile      = "trace.json"
)

// checkpoint is the resume point persisted between chunks.  Offset is the
// result-stream length covering chunks [0, NextChunk); on resume the stream
// is truncated to Offset, the aggregate restored from Agg, and execution
// continues at NextChunk — reproducing the uninterrupted stream byte for
// byte because chunks are deterministic and appended in order.
type checkpoint struct {
	Version   int             `json:"version"` // api.JobSchemaVersion
	JobID     string          `json:"job_id"`
	NextChunk int             `json:"next_chunk"`
	Offset    int64           `json:"offset"`
	Shapes    uint64          `json:"shapes"`
	Retries   int             `json:"retries"`
	Agg       json.RawMessage `json:"agg,omitempty"`
	// Owners records, for a distributed job, which peer each chunk in
	// flight at checkpoint time was assigned to (chunk index → peer
	// address).  Additive and informational — resume correctness is carried
	// entirely by NextChunk/Offset/Agg because folding is in-order; owners
	// let a recovered coordinator (and operators reading the file) see
	// where interrupted chunks were running.  Absent for local jobs, so the
	// schema version is unchanged.
	Owners map[string]string `json:"owners,omitempty"`
}

// writeFileAtomic writes data to path via a same-directory temp file, fsync
// and rename, so readers (and the resume scan after a kill) never observe a
// torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeJSONAtomic(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(b, '\n'))
}

// readCheckpoint loads a job directory's checkpoint; (nil, nil) when none
// was ever written.
func readCheckpoint(dir string) (*checkpoint, error) {
	b, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck checkpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		return nil, err
	}
	return &ck, nil
}

// readStatusFile loads a job directory's persisted status.
func readStatusFile(dir string) (api.JobStatus, error) {
	var st api.JobStatus
	b, err := os.ReadFile(filepath.Join(dir, statusFile))
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return st, fmt.Errorf("jobs: %s: %w", filepath.Join(dir, statusFile), err)
	}
	return st, nil
}
