// Package jobs is the asynchronous batch-sweep subsystem: a bounded job
// manager that runs the paper's whole-range sweeps (the Figure 2 coverage
// census, the ε-distribution table, full planner sweeps) as resumable
// background jobs over the shared sweep pool.
//
// Determinism is the load-bearing property.  A job's work is cut into
// chunks that execute sequentially in index order (parallelism lives inside
// a chunk, behind sweep.FoldCtx, whose reduction is index-ordered); every
// aggregate is integer-derived; records carry no timestamps.  The NDJSON
// result stream is therefore a pure function of the request — independent
// of worker count, scheduling, retries and resume points — which is what
// lets the manager checkpoint mid-job and, after a kill, truncate the
// stream to the last checkpoint and replay forward to a byte-identical
// final result.  It is also what makes streaming sound: bytes handed to a
// client are committed in the sense that any future replay reproduces them
// exactly, so a client can resume a broken stream by byte offset.
//
// Failure isolation: a panicking chunk is recovered, retried up to the
// configured budget, and fails only its own job; the manager, its other
// jobs, and the serving path stay up.
package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/pkg/api"
)

// Sentinel errors the API layer maps onto the error envelope.
var (
	// ErrQueueFull rejects a submission when the bounded queue is full.  The
	// job was not accepted, so resubmitting later is safe.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrBadRequest wraps every submission-validation failure.
	ErrBadRequest = errors.New("jobs: invalid request")
	// ErrClosed rejects submissions to a closing manager.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotReady reports an artifact download before the producing job
	// reached the done state.
	ErrNotReady = errors.New("jobs: job has not finished")
)

// errShutdown and errCancelled distinguish why a run's context died:
// shutdown checkpoints and leaves the job resumable, cancel is terminal.
var (
	errShutdown  = errors.New("jobs: manager shutting down")
	errCancelled = errors.New("jobs: cancelled by client")
	// errAbandoned is returned by the afterChunk test hook to make a run
	// vanish without any further disk write — the closest a test can get to
	// SIGKILL while staying in-process.
	errAbandoned = errors.New("jobs: run abandoned (test hook)")
)

// Config parameterizes a Manager.
type Config struct {
	// DataDir is the root of the on-disk job state (required).
	DataDir string
	// QueueDepth bounds the jobs waiting to run; submissions beyond it get
	// ErrQueueFull.  Default 8.
	QueueDepth int
	// Runners is the number of jobs executing concurrently.  Default 1:
	// batch sweeps are throughput work, and one at a time keeps them from
	// starving the interactive serving path.
	Runners int
	// DefaultWorkers is the per-chunk parallelism when a request does not
	// set workers (< 1 means GOMAXPROCS).
	DefaultWorkers int
	// MaxWorkers caps the per-chunk parallelism a request may ask for.
	// Default 32.
	MaxWorkers int
	// CheckpointEvery is the number of chunks between checkpoints.  Default
	// 8.  A kill loses at most that much progress — never correctness.
	CheckpointEvery int
	// RetryLimit is how many times a panicked chunk is retried before the
	// job fails.  Default 2.
	RetryLimit int
	// Planner, when set, is shared with the plansweep jobs (the server
	// passes its own so job planning warms the same plan cache).
	Planner *core.Planner
	// Fabric, when set, enables distributed jobs: submissions with
	// "distributed": true shard their chunk range across the pool's peers
	// (falling back to runBody — byte-identically — if a resumed job finds
	// no pool configured).
	Fabric *fabric.Pool
	// Logger receives job lifecycle records; nil means slog.Default().
	Logger *slog.Logger

	// Test hooks (white-box tests only).  afterChunk runs after chunk's
	// records are written but before the next checkpoint decision; returning
	// errAbandoned makes the run stop dead with no further disk writes,
	// simulating a kill.  beforeRun blocks a job at the top of its run.
	// beforeAttempt runs inside the panic-recovery scope of every chunk
	// attempt, so tests can inject panics.
	afterChunk    func(jobID string, chunk int) error
	beforeRun     func(jobID string)
	beforeAttempt func(jobID string, chunk, attempt int)
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 8
	}
	if cfg.Runners < 1 {
		cfg.Runners = 1
	}
	if cfg.MaxWorkers < 1 {
		cfg.MaxWorkers = 32
	}
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 8
	}
	if cfg.RetryLimit < 0 {
		cfg.RetryLimit = 0
	} else if cfg.RetryLimit == 0 {
		cfg.RetryLimit = 2
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Planner == nil {
		cfg.Planner = core.NewPlanner(core.DefaultOptions)
	}
	return cfg
}

// job is the in-memory state of one job.  All mutable fields are guarded by
// mu; the result stream's committed length is mirrored here so status and
// streaming never touch the file under the runner.
type job struct {
	id   string
	kind api.JobKind
	req  api.JobSubmitRequest
	dir  string

	mu           sync.Mutex
	state        api.JobState
	errMsg       string
	createdMS    int64
	startedMS    int64
	finishedMS   int64
	chunksDone   int
	chunksTotal  int
	shapes       uint64
	retries      int
	resumed      int
	committed    int64
	shapesPerSec float64
	etaMS        int64
	cancelled    bool
	cancelRun    context.CancelCauseFunc
	// dispatch is the live fabric dispatcher while a distributed run is in
	// flight; status reads it for the per-peer Fabric block.
	dispatch *fabric.Dispatch
}

func (j *job) statusLocked() api.JobStatus {
	st := api.JobStatus{
		Version: api.Version, ID: j.id, Kind: j.kind, State: j.state, Error: j.errMsg,
		Progress: api.JobProgress{
			ChunksDone: j.chunksDone, ChunksTotal: j.chunksTotal,
			Shapes: j.shapes, Retries: j.retries, ResultBytes: j.committed,
		},
		CreatedUnixMS: j.createdMS, StartedUnixMS: j.startedMS,
		FinishedUnixMS: j.finishedMS, Resumed: j.resumed,
	}
	if j.state == api.JobRunning {
		st.Progress.ShapesPerSec = j.shapesPerSec
		st.Progress.ETAMS = j.etaMS
	}
	req := j.req
	st.Request = &req
	if j.dispatch != nil && j.state == api.JobRunning {
		fp := j.dispatch.Progress()
		st.Fabric = &fp
	}
	return st
}

func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// Manager owns the job queue, the runner goroutines and the on-disk state.
type Manager struct {
	cfg Config
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // creation order, for List
	queue  chan *job
	closed bool
	seq    int
	prefix string

	chunksDone  atomic.Uint64
	shapesDone  atomic.Uint64
	retriesTot  atomic.Uint64
	resultBytes atomic.Int64
}

// Open creates (or reopens) a manager over cfg.DataDir, restores every job
// found there — terminal jobs become listable history, queued and running
// jobs are re-queued to resume from their last checkpoint — and starts the
// runner goroutines.
func Open(cfg Config) (*Manager, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("jobs: Config.DataDir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	m := &Manager{
		cfg:    cfg,
		log:    cfg.Logger,
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*job{},
		prefix: fmt.Sprintf("%08x", rand.Uint32()),
	}
	resumable, err := m.restore()
	if err != nil {
		cancel(nil)
		return nil, err
	}
	// The queue must admit every resumed job on top of QueueDepth fresh
	// submissions, so its capacity is sized after the restore scan.
	m.queue = make(chan *job, cfg.QueueDepth+len(resumable))
	for _, j := range resumable {
		m.queue <- j
	}
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runnerLoop()
	}
	return m, nil
}

// restore scans the data dir and rebuilds the job table in creation order.
// Jobs persisted mid-flight (queued or running) are returned for
// re-queueing, marked resumed.  Unreadable or version-skewed directories
// are skipped with a warning — one corrupt job must not brick the manager.
func (m *Manager) restore() ([]*job, error) {
	entries, err := os.ReadDir(m.cfg.DataDir)
	if err != nil {
		return nil, err
	}
	var loaded []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.cfg.DataDir, e.Name())
		st, err := readStatusFile(dir)
		if err != nil {
			m.log.Warn("jobs: skipping unreadable job dir", "dir", dir, "err", err)
			continue
		}
		if st.Version != api.JobSchemaVersion || st.ID == "" || st.Request == nil {
			m.log.Warn("jobs: skipping job with unknown schema", "dir", dir, "version", st.Version)
			continue
		}
		j := &job{
			id: st.ID, kind: st.Kind, req: *st.Request, dir: dir,
			state: st.State, errMsg: st.Error,
			createdMS: st.CreatedUnixMS, startedMS: st.StartedUnixMS, finishedMS: st.FinishedUnixMS,
			chunksDone: st.Progress.ChunksDone, chunksTotal: st.Progress.ChunksTotal,
			shapes: st.Progress.Shapes, retries: st.Progress.Retries,
			resumed: st.Resumed, committed: st.Progress.ResultBytes,
		}
		loaded = append(loaded, j)
	}
	sort.Slice(loaded, func(a, b int) bool {
		if loaded[a].createdMS != loaded[b].createdMS {
			return loaded[a].createdMS < loaded[b].createdMS
		}
		return loaded[a].id < loaded[b].id
	})
	var resumable []*job
	for _, j := range loaded {
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		if j.state.Terminal() {
			continue
		}
		// The committed count is rebuilt from the checkpoint when the run
		// restarts; until then advertise the checkpointed prefix only.
		if ck, err := readCheckpoint(j.dir); err == nil && ck != nil && ck.JobID == j.id && ck.Version == api.JobSchemaVersion {
			j.committed = ck.Offset
			j.chunksDone = ck.NextChunk
			j.shapes = ck.Shapes
		} else {
			j.committed, j.chunksDone, j.shapes = 0, 0, 0
		}
		j.state = api.JobQueued
		j.resumed++
		m.persistStatus(j)
		resumable = append(resumable, j)
		m.log.Info("jobs: resuming job from checkpoint",
			"job", j.id, "kind", j.kind, "next_chunk", j.chunksDone, "offset", j.committed)
	}
	return resumable, nil
}

// Submit validates the request, persists a queued job and enqueues it.
// The reply is the job's initial status (its id above all).
func (m *Manager) Submit(req api.JobSubmitRequest) (api.JobStatus, error) {
	if _, err := buildRunner(&req, m.workersFor(&req), m.cfg.Planner, ""); err != nil {
		return api.JobStatus{}, err
	}
	if req.Distributed && m.cfg.Fabric == nil {
		return api.JobStatus{}, fmt.Errorf(
			"%w: distributed jobs need a fabric pool (start the server with -fabric-secret)", ErrBadRequest)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return api.JobStatus{}, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("j-%s-%06d", m.prefix, m.seq)
	j := &job{
		id: id, kind: req.Kind, req: req,
		dir:   filepath.Join(m.cfg.DataDir, id),
		state: api.JobQueued, createdMS: nowUnixMS(),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		m.forget(id)
		return api.JobStatus{}, err
	}
	m.persistStatus(j)
	select {
	case m.queue <- j:
	default:
		m.forget(id)
		os.RemoveAll(j.dir)
		return api.JobStatus{}, ErrQueueFull
	}
	m.log.Info("jobs: submitted", "job", id, "kind", req.Kind)
	return j.status(), nil
}

func (m *Manager) forget(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func (m *Manager) workersFor(req *api.JobSubmitRequest) int {
	w := req.Workers
	if w < 1 {
		w = m.cfg.DefaultWorkers
	}
	if w > m.cfg.MaxWorkers {
		w = m.cfg.MaxWorkers
	}
	return w
}

// Status returns a job's current status.
func (m *Manager) Status(id string) (api.JobStatus, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return api.JobStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.status(), nil
}

// List returns every job's status in creation order.
func (m *Manager) List() []api.JobStatus {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]api.JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation.  A queued job is finalized immediately; a
// running one stops within a chunk item and finalizes on the runner.
// Cancelling a terminal job is a no-op returning its status.
func (m *Manager) Cancel(id string) (api.JobStatus, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return api.JobStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		st := j.statusLocked()
		j.mu.Unlock()
		return st, nil
	case j.state == api.JobQueued:
		j.cancelled = true
		j.state = api.JobCancelled
		j.finishedMS = nowUnixMS()
		st := j.statusLocked()
		j.mu.Unlock()
		m.persistStatus(j)
		m.log.Info("jobs: cancelled while queued", "job", id)
		return st, nil
	default: // running
		j.cancelled = true
		if j.cancelRun != nil {
			j.cancelRun(errCancelled)
		}
		st := j.statusLocked()
		j.mu.Unlock()
		return st, nil
	}
}

// ResultsInfo describes a job's result stream for the streaming endpoint.
type ResultsInfo struct {
	Path      string       // on-disk NDJSON file
	Committed int64        // replay-stable length; never stream beyond this
	State     api.JobState // terminal ⇒ Committed is final
}

// Results returns the streaming view of a job's result file.
func (m *Manager) Results(id string) (ResultsInfo, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return ResultsInfo{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return ResultsInfo{
		Path:      filepath.Join(j.dir, resultsFile),
		Committed: j.committed,
		State:     j.state,
	}, nil
}

// ArtifactPath returns the artifact file of a finished plancensus job.
// Unknown ids are ErrNotFound, other kinds ErrBadRequest, and unfinished
// jobs ErrNotReady (the file would be torn or still growing).
func (m *Manager) ArtifactPath(id string) (string, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.kind != api.JobPlanCensus {
		return "", fmt.Errorf("%w: job kind %q produces no artifact", ErrBadRequest, j.kind)
	}
	if j.state != api.JobDone {
		return "", fmt.Errorf("%w: job %s is %s", ErrNotReady, id, j.state)
	}
	return filepath.Join(j.dir, ArtifactFile), nil
}

// TracePath returns the span-tree file of a job's last run (written when
// tracing is active).  Unknown ids are ErrNotFound; a job whose run has not
// produced a trace yet (still running its first chunks, or tracing disabled)
// is ErrNotReady.
func (m *Manager) TracePath(id string) (string, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	p := filepath.Join(j.dir, traceFile)
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("%w: job %s has no trace (tracing off, or the run has not finished)", ErrNotReady, id)
	}
	return p, nil
}

// Stats is the manager snapshot exported on /metrics.
type Stats struct {
	Queued, Running, Done, Failed, Cancelled int
	QueueCap                                 int
	ChunksDone, Shapes, Retries              uint64
	ResultBytes                              int64
}

// Stats counts jobs by state and reports lifetime totals.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	s := Stats{QueueCap: cap(m.queue)}
	m.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		switch j.state {
		case api.JobQueued:
			s.Queued++
		case api.JobRunning:
			s.Running++
		case api.JobDone:
			s.Done++
		case api.JobFailed:
			s.Failed++
		case api.JobCancelled:
			s.Cancelled++
		}
		j.mu.Unlock()
	}
	s.ChunksDone = m.chunksDone.Load()
	s.Shapes = m.shapesDone.Load()
	s.Retries = m.retriesTot.Load()
	s.ResultBytes = m.resultBytes.Load()
	return s
}

// Close stops accepting submissions, interrupts running jobs (which
// checkpoint and stay resumable on disk) and waits for the runners to
// drain, up to ctx's deadline.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel(errShutdown)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *Manager) runnerLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob drives one job to a terminal state (or to a resumable stop on
// shutdown / abandon).
func (m *Manager) runJob(j *job) {
	if hook := m.cfg.beforeRun; hook != nil {
		hook(j.id)
	}
	runner, err := buildRunner(&j.req, m.workersFor(&j.req), m.cfg.Planner, j.dir)
	if err != nil {
		m.finalize(j, api.JobFailed, err)
		return
	}
	// Release runner-held resources (the plancensus artifact builder) on
	// every exit path; a cleanly finished runner has already let them go.
	if c, ok := runner.(runnerCloser); ok {
		defer c.close()
	}
	jctx, cancel := context.WithCancelCause(m.ctx)
	defer cancel(nil)
	j.mu.Lock()
	if j.cancelled || j.state.Terminal() {
		j.mu.Unlock()
		return // cancelled while queued; already finalized
	}
	j.state = api.JobRunning
	if j.startedMS == 0 {
		j.startedMS = nowUnixMS()
	}
	j.cancelRun = cancel
	j.mu.Unlock()
	m.persistStatus(j)

	jctx, span := obs.StartRoot(jctx, "job")
	if span != nil {
		span.SetAttr("job", j.id)
		span.SetAttr("kind", string(j.kind))
	}
	if dr, ok := runner.(distRunner); ok && j.req.Distributed && m.cfg.Fabric != nil {
		err = m.runBodyDistributed(jctx, j, dr, m.cfg.Fabric)
	} else {
		// Local chunk loop — also the fallback when a distributed job is
		// resumed on a server without a pool (the streams are identical
		// either way, so the resume stays byte-exact).
		err = m.runBody(jctx, j, runner)
	}
	j.mu.Lock()
	j.cancelRun = nil
	j.mu.Unlock()

	// Persist the trace before the terminal status: a client that saw the
	// job finish must be able to fetch its trace immediately.
	if !errors.Is(err, errAbandoned) {
		m.writeTrace(j, span)
	}
	switch {
	case err == nil:
		m.finalize(j, api.JobDone, nil)
	case errors.Is(err, errAbandoned):
		return // test hook: simulate a kill — no finalize, no disk writes
	case jctx.Err() != nil && errors.Is(context.Cause(jctx), errCancelled):
		m.finalize(j, api.JobCancelled, nil)
	case jctx.Err() != nil && errors.Is(context.Cause(jctx), errShutdown):
		// Leave the job queued on disk; the checkpoint written on the way
		// out makes the next Open resume it.
		j.mu.Lock()
		j.state = api.JobQueued
		j.mu.Unlock()
		m.persistStatus(j)
		m.log.Info("jobs: suspended for shutdown", "job", j.id, "chunks_done", j.chunksDone)
	default:
		m.finalize(j, api.JobFailed, err)
	}
}

// finalize moves a job to a terminal state and persists it.  A concurrent
// user cancel that already marked the job cancelled wins over Done so the
// API never reports a cancelled job as completed.
func (m *Manager) finalize(j *job, state api.JobState, err error) {
	j.mu.Lock()
	if j.state == api.JobCancelled && state == api.JobDone {
		state = api.JobCancelled
	}
	j.state = state
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finishedMS = nowUnixMS()
	j.shapesPerSec, j.etaMS = 0, 0
	j.mu.Unlock()
	m.persistStatus(j)
	switch state {
	case api.JobFailed:
		m.log.Error("jobs: failed", "job", j.id, "err", err)
	default:
		m.log.Info("jobs: finished", "job", j.id, "state", string(state),
			"shapes", j.shapes, "result_bytes", j.committed)
	}
}

// runBody executes the chunk loop: restore from checkpoint, run remaining
// chunks in order, append records, checkpoint periodically, then append the
// finish records.  On a dying context it writes a final checkpoint so the
// resume point is the last completed chunk.
func (m *Manager) runBody(ctx context.Context, j *job, r kindRunner) error {
	f, err := os.OpenFile(filepath.Join(j.dir, resultsFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	total := r.chunks()
	next, offset, shapes, retries := 0, int64(0), uint64(0), 0
	if ck, err := readCheckpoint(j.dir); err == nil && ck != nil &&
		ck.Version == api.JobSchemaVersion && ck.JobID == j.id {
		if err := r.restore(ck.Agg); err == nil {
			next, offset, shapes, retries = ck.NextChunk, ck.Offset, ck.Shapes, ck.Retries
		} else {
			m.log.Warn("jobs: checkpoint aggregate rejected; restarting job from scratch",
				"job", j.id, "err", err)
		}
	}
	// Drop any bytes past the resume point: they were written after the
	// checkpoint and will be regenerated identically.
	if err := f.Truncate(offset); err != nil {
		return err
	}
	if _, err := f.Seek(offset, 0); err != nil {
		return err
	}
	j.mu.Lock()
	j.chunksDone, j.chunksTotal = next, total
	j.shapes, j.retries, j.committed = shapes, retries, offset
	j.mu.Unlock()

	runStart := time.Now()
	chunksAtStart, shapesAtStart := next, shapes
	lastCkpt := next
	var buf bytes.Buffer
	for chunk := next; chunk < total; chunk++ {
		if ctx.Err() != nil {
			m.writeCheckpoint(f, j, r, chunk, offset, shapes, retries)
			return ctx.Err()
		}
		n, err := m.runChunk(ctx, j, r, chunk, &buf, &retries)
		if err != nil {
			if ctx.Err() != nil {
				m.writeCheckpoint(f, j, r, chunk, offset, shapes, retries)
				return ctx.Err()
			}
			return err
		}
		if _, err := f.Write(buf.Bytes()); err != nil {
			return err
		}
		written := int64(buf.Len())
		offset += written
		shapes += n
		m.chunksDone.Add(1)
		m.shapesDone.Add(n)
		m.resultBytes.Add(written)

		elapsed := time.Since(runStart).Seconds()
		j.mu.Lock()
		j.chunksDone = chunk + 1
		j.shapes = shapes
		j.committed = offset
		j.retries = retries
		if elapsed > 0 {
			// Throughput and ETA reflect this run only: a resumed job should
			// not let pre-kill progress inflate its live rate.
			j.shapesPerSec = float64(shapes-shapesAtStart) / elapsed
			perChunk := elapsed / float64(chunk+1-chunksAtStart)
			j.etaMS = int64(perChunk * float64(total-chunk-1) * 1000)
		}
		j.mu.Unlock()

		if hook := m.cfg.afterChunk; hook != nil {
			if err := hook(j.id, chunk); err != nil {
				return err
			}
		}
		if chunk+1 < total && chunk+1-lastCkpt >= m.cfg.CheckpointEvery {
			if err := m.writeCheckpoint(f, j, r, chunk+1, offset, shapes, retries); err != nil {
				return err
			}
			lastCkpt = chunk + 1
			m.persistStatus(j)
		}
	}

	// Checkpoint at (total, pre-finish offset): a crash between here and the
	// terminal status persist replays zero chunks and re-appends the finish
	// records onto an identical prefix.
	if err := m.writeCheckpoint(f, j, r, total, offset, shapes, retries); err != nil {
		return err
	}
	buf.Reset()
	if err := r.finish(&buf, shapes); err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	offset += int64(buf.Len())
	m.resultBytes.Add(int64(buf.Len()))
	j.mu.Lock()
	j.committed = offset
	j.mu.Unlock()
	return nil
}

// runChunk executes one chunk with panic isolation and bounded retry.  The
// buffer is reset per attempt; the runner's aggregate is untouched by a
// failed attempt (see kindRunner), so a retry starts from a clean slate.
func (m *Manager) runChunk(ctx context.Context, j *job, r kindRunner, chunk int, buf *bytes.Buffer, retries *int) (uint64, error) {
	for attempt := 0; ; attempt++ {
		buf.Reset()
		n, err := m.attemptChunk(ctx, j, r, chunk, attempt, buf)
		if err == nil {
			return n, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if attempt >= m.cfg.RetryLimit {
			return 0, fmt.Errorf("jobs: chunk %d failed after %d attempts: %w", chunk, attempt+1, err)
		}
		*retries++
		m.retriesTot.Add(1)
		m.log.Warn("jobs: chunk attempt failed; retrying",
			"job", j.id, "chunk", chunk, "attempt", attempt+1, "err", err)
	}
}

func (m *Manager) attemptChunk(ctx context.Context, j *job, r kindRunner, chunk, attempt int, buf *bytes.Buffer) (n uint64, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	cctx, span := obs.Start(ctx, fmt.Sprintf("chunk %d", chunk))
	if span != nil {
		defer span.End()
	}
	if hook := m.cfg.beforeAttempt; hook != nil {
		hook(j.id, chunk, attempt)
	}
	return r.runChunk(cctx, chunk, buf)
}

// writeCheckpoint syncs the result stream and atomically replaces the
// checkpoint file.  Ordering matters: the data covered by Offset must be
// durable before a checkpoint referencing it exists.
func (m *Manager) writeCheckpoint(f *os.File, j *job, r kindRunner, next int, offset int64, shapes uint64, retries int) error {
	return m.writeCheckpointOwners(f, j, r, next, offset, shapes, retries, nil)
}

// writeCheckpointOwners is writeCheckpoint plus the distributed run's
// per-chunk ownership snapshot (chunks in flight on peers at checkpoint
// time).
func (m *Manager) writeCheckpointOwners(f *os.File, j *job, r kindRunner, next int, offset int64, shapes uint64, retries int, owners map[string]string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	agg, err := r.snapshot()
	if err != nil {
		return err
	}
	ck := checkpoint{
		Version: api.JobSchemaVersion, JobID: j.id,
		NextChunk: next, Offset: offset, Shapes: shapes, Retries: retries, Agg: agg,
		Owners: owners,
	}
	return writeJSONAtomic(filepath.Join(j.dir, checkpointFile), ck)
}

func (m *Manager) persistStatus(j *job) {
	if err := writeJSONAtomic(filepath.Join(j.dir, statusFile), j.status()); err != nil {
		m.log.Error("jobs: persisting status failed", "job", j.id, "err", err)
	}
}

// writeTrace dumps the run's span tree next to the results when tracing is
// active; purely observability, never part of the result stream.
func (m *Manager) writeTrace(j *job, span *obs.Span) {
	if span == nil {
		return
	}
	span.End()
	snap := span.Snapshot()
	snap.TraceID = span.Context().TraceID
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return
	}
	if err := os.WriteFile(filepath.Join(j.dir, traceFile), append(b, '\n'), 0o644); err != nil {
		m.log.Warn("jobs: writing trace failed", "job", j.id, "err", err)
	}
}

func nowUnixMS() int64 { return time.Now().UnixMilli() }
