package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/pkg/api"
)

// loopbackExec is the worker entry point the in-process tests dispatch to:
// exactly what a remote embedserver's POST /v1/internal/chunks runs, minus
// the HTTP transport, which keeps byte-identity and kill-resume tests
// hermetic.
func loopbackExec(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
	return ExecuteChunk(ctx, req, 1, nil)
}

// distPool builds a pool of n in-process "remote" workers (no local
// fallback), health loop off.
func distPool(t *testing.T, n int) *fabric.Pool {
	t.Helper()
	p := fabric.NewPool(fabric.Config{
		Dial:        func(addr string) fabric.Transport { return fabric.Loopback(loopbackExec) },
		HealthEvery: -1,
	})
	t.Cleanup(p.Close)
	for i := 0; i < n; i++ {
		if err := p.Add(fmt.Sprintf("worker-%d", i+1)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return p
}

func distributed(req api.JobSubmitRequest) api.JobSubmitRequest {
	req.Distributed = true
	return req
}

// runDistributed runs one distributed job across n in-process workers and
// returns its final status, result stream, and data dir.
func runDistributed(t *testing.T, req api.JobSubmitRequest, n int) (api.JobStatus, []byte, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Fabric = distPool(t, n)
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(distributed(req))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != api.JobDone {
		t.Fatalf("distributed job ended %s (error %q), want done", st.State, st.Error)
	}
	return st, resultsBytes(t, dir, st.ID), dir
}

// TestDistributedByteIdentical is the fabric's core guarantee: for every
// job kind, the result stream of a distributed run — one worker or three —
// is byte-for-byte the single-node stream.  For plancensus the artifact
// file must match too (the coordinator replays shipped plan entries through
// its own builder, which owns the string cursor).
func TestDistributedByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		req  api.JobSubmitRequest
	}{
		{"census", censusReq(4)},
		{"epsilon", epsilonReq(4)},
		{"plansweep", plansweepReq()},
		{"plancensus", plancensusReq(3, 6, "")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, want := runToCompletion(t, tc.req)
			var wantArt []byte
			if tc.req.Kind == api.JobPlanCensus {
				// Re-run to grab the artifact (runToCompletion closes its
				// manager; artifact path needs a live one).
				dir := t.TempDir()
				m, err := Open(testConfig(dir))
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				st, err := m.Submit(tc.req)
				if err != nil {
					t.Fatalf("Submit: %v", err)
				}
				if st = waitTerminal(t, m, st.ID); st.State != api.JobDone {
					t.Fatalf("job ended %s", st.State)
				}
				wantArt = artifactBytes(t, m, st.ID)
				closeManager(t, m)
			}
			for _, peers := range []int{1, 3} {
				st, got, dir := runDistributed(t, tc.req, peers)
				if !bytes.Equal(got, want) {
					t.Fatalf("%d-peer stream differs from single-node (%d vs %d bytes)",
						peers, len(got), len(want))
				}
				if wantArt != nil {
					gotArt, err := os.ReadFile(filepath.Join(dir, st.ID, ArtifactFile))
					if err != nil {
						t.Fatalf("reading artifact: %v", err)
					}
					if !bytes.Equal(gotArt, wantArt) {
						t.Fatalf("%d-peer artifact differs from single-node (%d vs %d bytes)",
							peers, len(gotArt), len(wantArt))
					}
				}
			}
		})
	}
}

// dyingTransport executes chunks in-process but fails permanently after its
// kill count — the hermetic stand-in for a worker killed mid-run.
type dyingTransport struct {
	mu      sync.Mutex
	calls   int
	killAt  int
	started chan<- int // receives each call number before executing
}

func (d *dyingTransport) Execute(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
	d.mu.Lock()
	d.calls++
	call := d.calls
	d.mu.Unlock()
	if d.started != nil {
		select {
		case d.started <- call:
		default:
		}
	}
	if call > d.killAt {
		return nil, errors.New("connection reset by peer")
	}
	return loopbackExec(ctx, req)
}

func (d *dyingTransport) Healthy(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.calls > d.killAt {
		return errors.New("connection refused")
	}
	return nil
}

// TestDistributedWorkerLossFoldedOnce kills one of two workers mid-run: its
// in-flight chunks requeue to the survivor, every chunk folds exactly once,
// and the stream still matches single-node byte for byte.
func TestDistributedWorkerLossFoldedOnce(t *testing.T) {
	_, want := runToCompletion(t, censusReq(4))

	// Die after the first call: the initial launch wave always hands this
	// peer InFlightPerPeer (=2) chunks before any completion comes back, so
	// at least one execution fails and requeues regardless of timing.
	dying := &dyingTransport{killAt: 1}
	pool := fabric.NewPool(fabric.Config{
		Dial: func(addr string) fabric.Transport {
			if addr == "dying" {
				return dying
			}
			return fabric.Loopback(loopbackExec)
		},
		HealthEvery: -1,
	})
	t.Cleanup(pool.Close)
	for _, addr := range []string{"dying", "survivor"} {
		if err := pool.Add(addr); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}

	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Fabric = pool
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(distributed(censusReq(4)))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st = waitTerminal(t, m, st.ID); st.State != api.JobDone {
		t.Fatalf("job ended %s (error %q), want done", st.State, st.Error)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(got, want) {
		t.Fatalf("stream after worker loss differs from single-node (%d vs %d bytes)", len(got), len(want))
	}
	if stats := pool.Stats(); stats.Requeued == 0 {
		t.Error("worker death produced no requeues")
	} else if stats.Folded != uint64(st.Progress.ChunksTotal) {
		t.Errorf("pool folded %d chunks, want %d (each exactly once)", stats.Folded, st.Progress.ChunksTotal)
	}
}

// TestDistributedAbandonResumeByteIdentical is the coordinator-kill test:
// abandon a distributed run mid-job with no warning (stale checkpoint, the
// stream runs past it), reopen the manager with a fresh pool, and the
// resumed distributed job must produce the uninterrupted single-node bytes.
func TestDistributedAbandonResumeByteIdentical(t *testing.T) {
	_, want := runToCompletion(t, censusReq(4))

	dir := t.TempDir()
	abandoned := make(chan struct{})
	cfg := testConfig(dir)
	cfg.Fabric = distPool(t, 2)
	cfg.afterChunk = func(id string, chunk int) error {
		if chunk == 7 {
			close(abandoned)
			return errAbandoned
		}
		return nil
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := m1.Submit(distributed(censusReq(4)))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-abandoned
	closeManager(t, m1)

	cfg2 := testConfig(dir)
	cfg2.Fabric = distPool(t, 3)
	m2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer closeManager(t, m2)
	fin := waitTerminal(t, m2, st.ID)
	if fin.State != api.JobDone {
		t.Fatalf("resumed job ended %s (error %q)", fin.State, fin.Error)
	}
	if fin.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", fin.Resumed)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(got, want) {
		t.Fatalf("resumed distributed stream differs from single-node (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDistributedResumeWithoutFabricFallsBack: a distributed job
// interrupted on a fabric-enabled server must still resume — locally,
// byte-identically — on a server restarted without a pool.
func TestDistributedResumeWithoutFabricFallsBack(t *testing.T) {
	_, want := runToCompletion(t, censusReq(4))

	dir := t.TempDir()
	abandoned := make(chan struct{})
	cfg := testConfig(dir)
	cfg.Fabric = distPool(t, 2)
	cfg.afterChunk = func(id string, chunk int) error {
		if chunk == 6 {
			close(abandoned)
			return errAbandoned
		}
		return nil
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := m1.Submit(distributed(censusReq(4)))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-abandoned
	closeManager(t, m1)

	m2, err := Open(testConfig(dir)) // no Fabric: local chunk loop
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer closeManager(t, m2)
	fin := waitTerminal(t, m2, st.ID)
	if fin.State != api.JobDone {
		t.Fatalf("resumed job ended %s (error %q)", fin.State, fin.Error)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(got, want) {
		t.Fatal("local resume of a distributed job differs from single-node")
	}
}

// collectSpans walks a span tree pre-order, appending every span to out.
func collectSpans(t *obs.SpanJSON, out *[]*obs.SpanJSON) {
	if t == nil {
		return
	}
	*out = append(*out, t)
	for _, c := range t.Children {
		collectSpans(c, out)
	}
}

// TestDistributedTraceStitched is the cross-node trace guarantee: a 3-peer
// distributed run (one peer dying mid-run, forcing a requeue) writes ONE
// trace tree in which every chunk has a coordinator dispatch span with the
// worker's execution subtree stitched under it, every chunk has exactly one
// fold span, and the failed attempt is visible as an extra dispatch span
// with an error attr and no worker subtree — the requeue gap.
func TestDistributedTraceStitched(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	dying := &dyingTransport{killAt: 1}
	pool := fabric.NewPool(fabric.Config{
		Dial: func(addr string) fabric.Transport {
			if addr == "dying" {
				return dying
			}
			return fabric.Loopback(loopbackExec)
		},
		HealthEvery: -1,
	})
	t.Cleanup(pool.Close)
	for _, addr := range []string{"dying", "worker-2", "worker-3"} {
		if err := pool.Add(addr); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}

	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Fabric = pool
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(distributed(censusReq(4)))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st = waitTerminal(t, m, st.ID); st.State != api.JobDone {
		t.Fatalf("job ended %s (error %q), want done", st.State, st.Error)
	}
	if pool.Stats().Requeued == 0 {
		t.Fatal("dying peer produced no requeue; the gap the test exists for never happened")
	}

	path, err := m.TracePath(st.ID)
	if err != nil {
		t.Fatalf("TracePath: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var root obs.SpanJSON
	if err := json.Unmarshal(b, &root); err != nil {
		t.Fatalf("trace is not a span tree: %v", err)
	}
	if root.Name != "job" || root.TraceID == "" {
		t.Fatalf("root = %q (trace %q), want a job root with a trace ID", root.Name, root.TraceID)
	}

	var all []*obs.SpanJSON
	collectSpans(&root, &all)
	total := st.Progress.ChunksTotal
	var failedAttempts int
	for chunk := 0; chunk < total; chunk++ {
		dispatch, exec, fold := 0, 0, 0
		for _, s := range all {
			switch s.Name {
			case fmt.Sprintf("dispatch chunk %d", chunk):
				dispatch++
				for _, c := range s.Children {
					if c.Name == fmt.Sprintf("exec chunk %d", chunk) {
						exec++
						if c.TraceID != root.TraceID {
							t.Errorf("chunk %d: worker subtree trace %q != job trace %q", chunk, c.TraceID, root.TraceID)
						}
						if s.SpanID == "" || c.ParentSpanID != s.SpanID {
							t.Errorf("chunk %d: worker parent span %q != dispatch span %q", chunk, c.ParentSpanID, s.SpanID)
						}
					}
				}
				for _, a := range s.Attrs {
					if a.Key == "error" {
						failedAttempts++
					}
				}
			case fmt.Sprintf("fold chunk %d", chunk):
				fold++
			}
		}
		if dispatch == 0 {
			t.Errorf("chunk %d: no dispatch span", chunk)
		}
		if exec == 0 {
			t.Errorf("chunk %d: no stitched worker subtree", chunk)
		}
		if fold != 1 {
			t.Errorf("chunk %d: %d fold spans, want exactly 1", chunk, fold)
		}
	}
	if failedAttempts == 0 {
		t.Error("requeued chunk left no failed dispatch span (the trace gap is invisible)")
	}

	// The stitched tree must export as one Chrome trace with all three phases.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, &root); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	for _, phase := range []string{"dispatch chunk", "exec chunk", "fold chunk"} {
		if !bytes.Contains(buf.Bytes(), []byte(phase)) {
			t.Errorf("Chrome export missing %q events", phase)
		}
	}
}

// TestDistributedSubmitWithoutFabricRejected: "distributed": true on a
// server with no pool is a 400-class error, not a silent local run.
func TestDistributedSubmitWithoutFabricRejected(t *testing.T) {
	m, err := Open(testConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	if _, err := m.Submit(distributed(censusReq(3))); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Submit(distributed, no pool) = %v, want ErrBadRequest", err)
	}
}

// TestDistributedStatusShowsFabric: while a distributed job runs, its
// status carries the per-peer assignment block.
func TestDistributedStatusShowsFabric(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Fabric = distPool(t, 2)
	atChunk := make(chan string, 1)
	gate := make(chan struct{})
	var once sync.Once
	cfg.afterChunk = func(id string, chunk int) error {
		if chunk >= 2 {
			// Pause the fold loop mid-run so the main goroutine can observe
			// a running distributed job's status.
			once.Do(func() {
				atChunk <- id
				<-gate
			})
		}
		return nil
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(distributed(censusReq(4)))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := <-atChunk
	mid, err := m.Status(id)
	if err != nil {
		t.Fatalf("Status mid-run: %v", err)
	}
	if mid.Fabric == nil || len(mid.Fabric.Peers) == 0 {
		t.Errorf("running distributed job has no fabric block: %+v", mid)
	}
	close(gate)
	fin := waitTerminal(t, m, st.ID)
	if fin.State != api.JobDone {
		t.Fatalf("job ended %s (error %q)", fin.State, fin.Error)
	}
	if fin.Fabric != nil {
		t.Error("terminal status still carries a fabric block")
	}
}
